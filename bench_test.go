// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (see DESIGN.md §5), plus microbenchmarks for the pieces
// whose cost ratio is the paper's headline (instant model evaluation
// versus expensive detailed simulation).
//
// Regenerate a figure's data:
//
//	go test -bench=BenchmarkFig4 -benchtime=1x -v .
//
// Each figure benchmark reports the experiment's headline metric(s)
// via b.ReportMetric and prints nothing unless -v is given.
package repro_test

import (
	"testing"
	"unsafe"

	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/experiments"
	"repro/internal/funcsim"
	"repro/internal/harness"
	"repro/internal/pipeline"
	"repro/internal/power"
	"repro/internal/trace"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

// BenchmarkTable2Space enumerates and validates the 192-point space.
func BenchmarkTable2Space(b *testing.B) {
	for i := 0; i < b.N; i++ {
		space := dse.Space(uarch.Default())
		if len(space) != 192 {
			b.Fatalf("space size %d", len(space))
		}
	}
}

// BenchmarkFig3Validation regenerates Figure 3: model vs detailed CPI
// for the 19 MiBench-like benchmarks on the default configuration.
func BenchmarkFig3Validation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Summary.Mean, "avg-err-%")
		b.ReportMetric(100*r.Summary.Max, "max-err-%")
		if i == 0 && testing.Verbose() {
			b.Log("\n" + r.Render())
		}
	}
}

// BenchmarkFig4WidthSweep regenerates Figure 4: CPI stacks versus
// width for sha, tiffdither and dijkstra.
func BenchmarkFig4WidthSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		shaGain := r.Benchmarks["sha"][0].Stack.CPI() / r.Benchmarks["sha"][3].Stack.CPI()
		dijGain := r.Benchmarks["dijkstra"][0].Stack.CPI() / r.Benchmarks["dijkstra"][3].Stack.CPI()
		b.ReportMetric(shaGain, "sha-w4-speedup")
		b.ReportMetric(dijGain, "dijkstra-w4-speedup")
		if i == 0 && testing.Verbose() {
			b.Log("\n" + r.Render())
		}
	}
}

// BenchmarkFig5DesignSpace regenerates Figure 5 on a three-benchmark
// subset (the full 19-benchmark sweep lives in cmd/experiments; one
// iteration here stays under ~15 s).
func BenchmarkFig5DesignSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5([]string{"gsm_c", "tiff2bw", "rsynth"}, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Summary.Mean, "avg-err-%")
		b.ReportMetric(100*r.FracBelow6, "below-6%-%")
		if i == 0 && testing.Verbose() {
			b.Log("\n" + r.Render())
		}
	}
}

// BenchmarkFig6SPEC regenerates Figure 6: the memory-intensive
// SPEC-like validation.
func BenchmarkFig6SPEC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Summary.Mean, "avg-err-%")
		if i == 0 && testing.Verbose() {
			b.Log("\n" + r.Render())
		}
	}
}

// BenchmarkFig7InOrderVsOoO regenerates Figure 7.
func BenchmarkFig7InOrderVsOoO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		var inSum, ooSum float64
		for _, row := range r.Rows {
			inSum += row.InOrder.CPI()
			ooSum += row.OoO.CPI()
		}
		b.ReportMetric(inSum/ooSum, "inorder-vs-ooo-cpi-ratio")
		if i == 0 && testing.Verbose() {
			b.Log("\n" + r.Render())
		}
	}
}

// BenchmarkFig8CompilerOpts regenerates Figure 8.
func BenchmarkFig8CompilerOpts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		cells := r.Benchmarks["gsm_c"]
		b.ReportMetric(cells[0].Normalized, "gsm_c-nosched-norm")
		b.ReportMetric(cells[2].Normalized, "gsm_c-unroll-norm")
		if i == 0 && testing.Verbose() {
			b.Log("\n" + r.Render())
		}
	}
}

// BenchmarkFig9EDP regenerates Figure 9 (full 192-point exploration of
// the four EDP-study benchmarks with detailed-simulation validation).
func BenchmarkFig9EDP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(0)
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, row := range r.Rows {
			if row.EDPGapPercent > worst {
				worst = row.EDPGapPercent
			}
		}
		b.ReportMetric(worst, "worst-edp-gap-%")
		if i == 0 && testing.Verbose() {
			b.Log("\n" + r.Render())
		}
	}
}

// --- Microbenchmarks: where the 3-orders-of-magnitude speedup lives ---

func profiledFor(b *testing.B, name string) *harness.Profiled {
	b.Helper()
	spec, err := workloads.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	pw, err := harness.ProfileProgram(spec.Build())
	if err != nil {
		b.Fatal(err)
	}
	return pw
}

// BenchmarkTraceRecording measures recording a workload's dynamic
// trace into the chunked columnar store, and reports the encoding
// density: bytes per recorded instruction and the compaction factor
// over the legacy []trace.DynInst array-of-structs layout. Run with
// -benchmem so B/op and allocs/op land in the BENCH_N.json baseline —
// trace-memory regressions show up there.
func BenchmarkTraceRecording(b *testing.B) {
	spec, err := workloads.ByName("gsm_c")
	if err != nil {
		b.Fatal(err)
	}
	p := spec.Build()
	var tr *trace.Trace
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb := trace.NewBuilder()
		if _, err := funcsim.RunProgram(p, tb); err != nil {
			b.Fatal(err)
		}
		tr = tb.Trace()
	}
	b.SetBytes(tr.Len())
	aosBytes := tr.Len() * int64(unsafe.Sizeof(trace.DynInst{}))
	b.ReportMetric(float64(tr.SizeBytes())/float64(tr.Len()), "bytes/inst")
	b.ReportMetric(float64(aosBytes)/float64(tr.SizeBytes()), "compaction-x")
}

// BenchmarkProfiling measures the one-time per-binary profiling cost.
func BenchmarkProfiling(b *testing.B) {
	spec, _ := workloads.ByName("gsm_c")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := harness.ProfileProgram(spec.Build()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelEvaluation measures one closed-form model evaluation
// (machine statistics already collected) — the per-design-point cost.
func BenchmarkModelEvaluation(b *testing.B) {
	pw := profiledFor(b, "gsm_c")
	cfg := uarch.Default()
	in, err := pw.Inputs(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Predict(in, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMachineStats measures one trace replay through caches and
// predictor — the per-(hierarchy, predictor) statistics cost shared by
// many design points.
func BenchmarkMachineStats(b *testing.B) {
	pw := profiledFor(b, "gsm_c")
	cfg := uarch.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := harness.MachineStats(pw.Trace, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(pw.Trace.Len())
}

// BenchmarkMultiMachineStats measures the single-pass collection of
// machine statistics for all 16 Table 2 (L2, predictor) combinations —
// the replacement for 16 per-configuration replays.
func BenchmarkMultiMachineStats(b *testing.B) {
	pw := profiledFor(b, "gsm_c")
	space := dse.Space(uarch.Default())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := harness.CollectMultiStats(pw.Trace, space); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(pw.Trace.Len())
}

// BenchmarkDetailedSimulation measures one cycle-accurate run — what
// every design point costs without the model.
func BenchmarkDetailedSimulation(b *testing.B) {
	pw := profiledFor(b, "gsm_c")
	cfg := uarch.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.Simulate(pw.Trace, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(pw.Trace.Len())
}

// BenchmarkDetailedSimulationAnnotated measures the annotation-plane
// fast path for the same design point: machine events precomputed,
// timing-only replay (annotation cost excluded — it is paid once per
// machine component and shared across the whole design space).
func BenchmarkDetailedSimulationAnnotated(b *testing.B) {
	pw := profiledFor(b, "gsm_c")
	cfg := uarch.Default()
	ann, err := pw.Annotation(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.SimulateAnnotated(pw.Trace, cfg, ann); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(pw.Trace.Len())
}

// BenchmarkModelDesignSpace measures the model across all 192 points
// (machine statistics for the whole space come from a single trace
// replay).
func BenchmarkModelDesignSpace(b *testing.B) {
	pw := profiledFor(b, "gsm_c")
	space := dse.Space(uarch.Default())
	pm := power.NewModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dse.Explore(pw, space, pm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExploreValidatedFull measures the expensive path the model
// exists to avoid: the full 192-point space with detailed simulation
// at every point.
func BenchmarkExploreValidatedFull(b *testing.B) {
	pw := profiledFor(b, "gsm_c")
	space := dse.Space(uarch.Default())
	pm := power.NewModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dse.ExploreValidated(pw, space, pm, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExploreBatch measures the cold config-parallel validated
// sweep: every iteration starts from an empty annotation/timing cache
// (trace and profile shared), so the number is the true end-to-end
// cost of annotating and batch-replaying all 192 design points —
// unlike BenchmarkExploreValidatedFull, whose iterations after the
// first serve timing from the memo.
func BenchmarkExploreBatch(b *testing.B) {
	pw := profiledFor(b, "gsm_c")
	space := dse.Space(uarch.Default())
	pm := power.NewModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dse.ExploreValidated(pw.Fresh(), space, pm, 0); err != nil {
			b.Fatal(err)
		}
	}
}
