#!/usr/bin/env python3
"""check_load.py — gate a load test against committed thresholds.

Usage:
    scripts/check_load.py LOAD.json [THRESHOLDS.json]

LOAD.json is either cmd/loadgen's raw output or a BENCH_<N>.json
carrying a "load" section. THRESHOLDS.json defaults to
scripts/load_thresholds.json next to this script.

Fails (exit 1) when any phase's error rate exceeds max_error_rate,
when a phase's p99 (overall or per-op, for ops listed in max_p99_ms)
exceeds its ceiling, or when closed-loop saturation throughput falls
below min_saturation_qps. A BENCH file whose load section is null
fails too: the gate exists to notice exactly that kind of silent
probe death.
"""

import json
import os
import sys


def main():
    if len(sys.argv) not in (2, 3):
        sys.exit(__doc__)
    load_path = sys.argv[1]
    thr_path = (sys.argv[2] if len(sys.argv) == 3 else
                os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "load_thresholds.json"))
    doc = json.load(open(load_path))
    if "load" in doc:  # BENCH file
        doc = doc["load"]
    if doc is None:
        sys.exit(f"check_load: {load_path} has a null load section "
                 "(the load probe failed)")
    thr = json.load(open(thr_path))
    max_err = thr["max_error_rate"]
    min_sat = thr.get("min_saturation_qps", 0)
    p99_caps = thr.get("max_p99_ms", {})

    failures = []
    for phase_name in ("closed", "open"):
        phase = doc.get(phase_name)
        if phase is None:
            continue
        rate = phase.get("error_rate", 0)
        print(f"  {phase_name}: {phase.get('requests', 0)} requests, "
              f"error rate {rate:.4f}, p99 {phase['latency_ms']['p99']:.1f}ms, "
              f"{phase.get('achieved_qps', 0):.1f} qps")
        for code, n in sorted(phase.get("errors", {}).items()):
            print(f"    error {code}: {n}")
        if rate > max_err:
            failures.append(f"  {phase_name}: error rate {rate:.4f} > {max_err}")
        if "overall" in p99_caps and phase["latency_ms"]["p99"] > p99_caps["overall"]:
            failures.append(f"  {phase_name}: p99 {phase['latency_ms']['p99']:.1f}ms "
                            f"> {p99_caps['overall']}ms")
        for op_name, lat in sorted(phase.get("by_op", {}).items()):
            cap = p99_caps.get(op_name)
            if cap is not None and lat["p99"] > cap:
                failures.append(f"  {phase_name}/{op_name}: p99 {lat['p99']:.1f}ms "
                                f"> {cap}ms")

    sat = doc.get("saturation_qps", 0)
    if doc.get("closed") is not None and sat < min_sat:
        failures.append(f"  saturation {sat:.1f} qps < {min_sat} qps floor")
    else:
        print(f"  saturation: {sat:.1f} qps (floor {min_sat})")

    if failures:
        print(f"\nload gate FAILED ({len(failures)} threshold(s) exceeded):")
        print("\n".join(failures))
        sys.exit(1)
    print("\nload gate passed: all thresholds met")


if __name__ == "__main__":
    main()
