#!/usr/bin/env python3
"""check_bench.py — gate figure metrics against a committed baseline.

Usage:
    scripts/check_bench.py CANDIDATE.json [BASELINE.json]

Compares the *figure metrics* of a fresh bench run (CANDIDATE) against
a committed BENCH_N.json baseline (the highest-numbered one when not
given explicitly). Figure metrics are the model/simulator numbers the
benchmarks report — avg-err-%, speedups, CPI ratios — which are pure
functions of the committed code and must be bit-identical run to run;
wall time and allocation counters (ns/op, B/op, allocs/op, MB/s) vary
with the machine and are ignored. Exits non-zero on any drift, on a
figure metric that disappeared, or on a benchmark missing from the
candidate, printing a per-metric report either way.

Non-benchmark sections (artifact_store, robustness, search, load) are
validated explicitly: each must be a known section with its required
keys present (or null, for probe-backed telemetry), and an unknown
top-level section fails the check rather than being skipped silently.
Their values are telemetry and free to drift run to run.
"""

import glob
import json
import re
import sys

# Machine-dependent units: never part of the bit-identity gate.
SKIP_UNITS = {"B/op", "allocs/op", "MB/s"}

# Every top-level section a BENCH file may carry, mapped to the keys
# its object form must contain (None = no schema beyond presence).
# An unknown section is a hard failure: a silently-skipped section is
# how telemetry rots — it keeps being written but nothing would notice
# if its shape broke.
SECTION_SCHEMAS = {
    "suite": None,
    "benchmarks": None,          # the figure-metric gate below
    "baseline": None,
    "artifact_store": {"enabled", "dir", "warm"},
    "robustness": {"lifecycle", "store", "ingest"},
    "search": {"benchmark", "space", "budget", "seed", "wall_seconds",
               "evaluated", "generations", "stats_replays", "front_size",
               "cardinality"},
    "load": {"seed", "targets", "benches", "mix", "saturation_qps",
             "requests_total", "errors_total"},
}

# Telemetry sections whose *values* may drift between runs (wall
# times, counter noise, machine differences). They are schema-checked,
# never value-compared; only benchmarks{} figure metrics are the
# bit-identity gate.
DRIFT_OK = {"suite", "baseline", "artifact_store", "robustness", "search", "load"}

# Probe-backed sections record null when their probe failed; that is a
# tolerated (and printed) outcome, not a schema violation.
NULLABLE = {"robustness", "search", "load"}


def check_sections(doc, path):
    """Validate the document's top-level shape; returns failure lines."""
    failures = []
    for name in sorted(doc):
        if name not in SECTION_SCHEMAS:
            failures.append(f"  UNKNOWN  section {name!r} in {path} "
                            f"(known: {sorted(SECTION_SCHEMAS)})")
            continue
        required = SECTION_SCHEMAS[name]
        value = doc[name]
        if value is None:
            if name in NULLABLE:
                print(f"  note     section {name} is null in {path} (probe failed)")
            else:
                failures.append(f"  NULL     section {name} in {path} is not nullable")
            continue
        if required:
            if not isinstance(value, dict):
                failures.append(f"  SHAPE    section {name} in {path} is "
                                f"{type(value).__name__}, want object")
                continue
            missing = required - set(value)
            if missing:
                failures.append(f"  SCHEMA   section {name} in {path} is missing "
                                f"key(s) {sorted(missing)}")
    return failures


def figure_metrics(doc):
    out = {}
    for name, bench in doc.get("benchmarks", {}).items():
        for unit, val in bench.get("metrics", {}).items():
            if unit not in SKIP_UNITS:
                out[(name, unit)] = val
    return out


def latest_baseline(exclude):
    best = None
    for path in glob.glob("BENCH_*.json"):
        m = re.fullmatch(r"BENCH_(\d+)\.json", path)
        if m and path != exclude:
            n = int(m.group(1))
            if best is None or n > best[0]:
                best = (n, path)
    if best is None:
        sys.exit("check_bench: no committed BENCH_<N>.json baseline found")
    return best[1]


def main():
    if len(sys.argv) not in (2, 3):
        sys.exit(__doc__)
    cand_path = sys.argv[1]
    base_path = sys.argv[2] if len(sys.argv) == 3 else latest_baseline(cand_path)

    cand_doc = json.load(open(cand_path))
    base_doc = json.load(open(base_path))
    cand = figure_metrics(cand_doc)
    base = figure_metrics(base_doc)
    print(f"comparing {len(cand)} candidate figure metrics ({cand_path}) "
          f"against {len(base)} baseline metrics ({base_path})")

    failures = check_sections(cand_doc, cand_path)
    for name in sorted(set(cand_doc) & DRIFT_OK):
        print(f"  ok       section {name} (telemetry: schema-checked, values free to drift)")
    for key in sorted(base):
        name, unit = key
        if key not in cand:
            failures.append(f"  MISSING  {name} [{unit}] (baseline {base[key]})")
            continue
        if cand[key] != base[key]:
            failures.append(f"  DRIFT    {name} [{unit}]: {base[key]} -> {cand[key]}")
        else:
            print(f"  ok       {name} [{unit}] = {base[key]}")
    for key in sorted(set(cand) - set(base)):
        print(f"  new      {key[0]} [{key[1]}] = {cand[key]} (not in baseline)")

    if failures:
        print(f"\n{len(failures)} check(s) failed against {base_path}:")
        print("\n".join(failures))
        sys.exit(1)
    print("\nall sections well-formed; all figure metrics bit-identical to the baseline")


if __name__ == "__main__":
    main()
