#!/usr/bin/env python3
"""check_bench.py — gate figure metrics against a committed baseline.

Usage:
    scripts/check_bench.py CANDIDATE.json [BASELINE.json]

Compares the *figure metrics* of a fresh bench run (CANDIDATE) against
a committed BENCH_N.json baseline (the highest-numbered one when not
given explicitly). Figure metrics are the model/simulator numbers the
benchmarks report — avg-err-%, speedups, CPI ratios — which are pure
functions of the committed code and must be bit-identical run to run;
wall time and allocation counters (ns/op, B/op, allocs/op, MB/s) vary
with the machine and are ignored. Exits non-zero on any drift, on a
figure metric that disappeared, or on a benchmark missing from the
candidate, printing a per-metric report either way.
"""

import glob
import json
import re
import sys

# Machine-dependent units: never part of the bit-identity gate.
SKIP_UNITS = {"B/op", "allocs/op", "MB/s"}


def figure_metrics(doc):
    out = {}
    for name, bench in doc.get("benchmarks", {}).items():
        for unit, val in bench.get("metrics", {}).items():
            if unit not in SKIP_UNITS:
                out[(name, unit)] = val
    return out


def latest_baseline(exclude):
    best = None
    for path in glob.glob("BENCH_*.json"):
        m = re.fullmatch(r"BENCH_(\d+)\.json", path)
        if m and path != exclude:
            n = int(m.group(1))
            if best is None or n > best[0]:
                best = (n, path)
    if best is None:
        sys.exit("check_bench: no committed BENCH_<N>.json baseline found")
    return best[1]


def main():
    if len(sys.argv) not in (2, 3):
        sys.exit(__doc__)
    cand_path = sys.argv[1]
    base_path = sys.argv[2] if len(sys.argv) == 3 else latest_baseline(cand_path)

    cand = figure_metrics(json.load(open(cand_path)))
    base = figure_metrics(json.load(open(base_path)))
    print(f"comparing {len(cand)} candidate figure metrics ({cand_path}) "
          f"against {len(base)} baseline metrics ({base_path})")

    failures = []
    for key in sorted(base):
        name, unit = key
        if key not in cand:
            failures.append(f"  MISSING  {name} [{unit}] (baseline {base[key]})")
            continue
        if cand[key] != base[key]:
            failures.append(f"  DRIFT    {name} [{unit}]: {base[key]} -> {cand[key]}")
        else:
            print(f"  ok       {name} [{unit}] = {base[key]}")
    for key in sorted(set(cand) - set(base)):
        print(f"  new      {key[0]} [{key[1]}] = {cand[key]} (not in baseline)")

    if failures:
        print(f"\n{len(failures)} figure metric(s) drifted from {base_path}:")
        print("\n".join(failures))
        sys.exit(1)
    print("\nall figure metrics bit-identical to the baseline")


if __name__ == "__main__":
    main()
