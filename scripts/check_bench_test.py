#!/usr/bin/env python3
"""Unit tests for check_bench.py and check_load.py, run in CI.

Each case invokes the script as a subprocess (the same way the
workflows do) against synthetic JSON files, pinning the gate's verdict
for: identical metrics, drifted metrics, unknown sections, drifting
telemetry sections, and load-threshold violations.
"""

import copy
import json
import os
import subprocess
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
CHECK_BENCH = os.path.join(HERE, "check_bench.py")
CHECK_LOAD = os.path.join(HERE, "check_load.py")

BASE_DOC = {
    "suite": "go test -bench",
    "benchmarks": {
        "BenchmarkFigure3": {
            "iterations": 1,
            "wall_seconds": 1.5,
            "metrics": {"avg-err-%": 2.25, "B/op": 1000.0},
        },
    },
    "artifact_store": {"enabled": False, "dir": None, "warm": False},
    "robustness": {"lifecycle": {"cancelled": 1}, "store": {}, "ingest": {}},
    "search": {
        "benchmark": "crc32", "space": "extended", "budget": 512, "seed": 1,
        "wall_seconds": 2.0, "evaluated": 300, "generations": 10,
        "stats_replays": 5, "front_size": 7, "cardinality": 1024,
    },
    "load": {
        "seed": 1, "targets": ["http://127.0.0.1:1"], "benches": ["sha"],
        "mix": "predict:0.80 explore:0.15 ingest:0.05",
        "closed": {
            "duration_seconds": 5.0, "concurrency": 4, "achieved_qps": 120.0,
            "requests": 600, "errors": {}, "error_rate": 0.0,
            "latency_ms": {"p50": 5.0, "p95": 20.0, "p99": 40.0, "max": 80.0},
            "by_op": {"predict": {"p50": 4.0, "p95": 15.0, "p99": 30.0, "max": 60.0}},
        },
        "saturation_qps": 120.0, "requests_total": 600, "errors_total": 0,
    },
}

THRESHOLDS = {
    "max_error_rate": 0.0,
    "min_saturation_qps": 20.0,
    "max_p99_ms": {"overall": 2500.0, "predict": 2000.0},
}


def run(script, *docs_and_args):
    """Write each dict arg to a temp file; pass strings through."""
    with tempfile.TemporaryDirectory() as td:
        argv = [sys.executable, script]
        for i, a in enumerate(docs_and_args):
            if isinstance(a, dict):
                path = os.path.join(td, f"arg{i}.json")
                with open(path, "w") as f:
                    json.dump(a, f)
                argv.append(path)
            else:
                argv.append(a)
        return subprocess.run(argv, capture_output=True, text=True)


class CheckBenchTest(unittest.TestCase):
    def test_identical_passes(self):
        r = run(CHECK_BENCH, BASE_DOC, BASE_DOC)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_figure_drift_fails(self):
        cand = copy.deepcopy(BASE_DOC)
        cand["benchmarks"]["BenchmarkFigure3"]["metrics"]["avg-err-%"] = 9.9
        r = run(CHECK_BENCH, cand, BASE_DOC)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("DRIFT", r.stdout)

    def test_machine_unit_drift_ignored(self):
        cand = copy.deepcopy(BASE_DOC)
        cand["benchmarks"]["BenchmarkFigure3"]["metrics"]["B/op"] = 99999.0
        r = run(CHECK_BENCH, cand, BASE_DOC)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_unknown_section_fails(self):
        cand = copy.deepcopy(BASE_DOC)
        cand["mystery"] = {"anything": 1}
        r = run(CHECK_BENCH, cand, BASE_DOC)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("UNKNOWN", r.stdout)

    def test_telemetry_drift_allowed(self):
        cand = copy.deepcopy(BASE_DOC)
        cand["search"]["evaluated"] = 999
        cand["load"]["saturation_qps"] = 1.0
        cand["robustness"]["lifecycle"] = {"cancelled": 42}
        r = run(CHECK_BENCH, cand, BASE_DOC)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_schema_violation_fails(self):
        cand = copy.deepcopy(BASE_DOC)
        del cand["load"]["saturation_qps"]
        r = run(CHECK_BENCH, cand, BASE_DOC)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("SCHEMA", r.stdout)

    def test_null_probe_section_tolerated(self):
        cand = copy.deepcopy(BASE_DOC)
        cand["load"] = None
        cand["search"] = None
        r = run(CHECK_BENCH, cand, BASE_DOC)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)


class CheckLoadTest(unittest.TestCase):
    def test_clean_load_passes(self):
        r = run(CHECK_LOAD, BASE_DOC["load"], THRESHOLDS)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_bench_wrapper_accepted(self):
        r = run(CHECK_LOAD, BASE_DOC, THRESHOLDS)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_error_rate_fails(self):
        load = copy.deepcopy(BASE_DOC["load"])
        load["closed"]["error_rate"] = 0.01
        load["closed"]["errors"] = {"overloaded": 6}
        r = run(CHECK_LOAD, load, THRESHOLDS)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)

    def test_p99_ceiling_fails(self):
        load = copy.deepcopy(BASE_DOC["load"])
        load["closed"]["by_op"]["predict"]["p99"] = 5000.0
        r = run(CHECK_LOAD, load, THRESHOLDS)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)

    def test_saturation_floor_fails(self):
        load = copy.deepcopy(BASE_DOC["load"])
        load["saturation_qps"] = 5.0
        r = run(CHECK_LOAD, load, THRESHOLDS)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)

    def test_null_load_fails(self):
        r = run(CHECK_LOAD, {"load": None}, THRESHOLDS)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)

    def test_committed_thresholds_parse(self):
        # The committed thresholds file itself must gate the reference
        # load shape, so a malformed edit to it fails here first.
        r = run(CHECK_LOAD, BASE_DOC["load"],
                os.path.join(HERE, "load_thresholds.json"))
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)


if __name__ == "__main__":
    unittest.main(verbosity=2)
