#!/usr/bin/env bash
# bench.sh — run the figure-level benchmark suite once and record the
# per-figure wall time and headline metrics as a JSON baseline.
#
# Usage:
#   scripts/bench.sh [N]
#
# Writes BENCH_<N>.json (default N=1) at the repository root, seeding
# the performance trajectory: successive PRs append BENCH_2.json,
# BENCH_3.json, ... and compare against earlier baselines.
set -euo pipefail

cd "$(dirname "$0")/.."
n="${1:-1}"
out="BENCH_${n}.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "running benchmark suite (one iteration per figure)..." >&2
# -benchmem so B/op and allocs/op land in the JSON metrics: trace-memory
# regressions (bytes/recorded-instruction, replay allocations) are part
# of the baseline.
go test -run '^$' -bench . -benchtime=1x -benchmem . | tee "$raw" >&2

python3 - "$raw" "$out" <<'EOF'
import json, re, sys

raw_path, out_path = sys.argv[1], sys.argv[2]
benches = {}
line_re = re.compile(r'^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(\d+(?:\.\d+)?) ns/op(.*)$')
for line in open(raw_path):
    m = line_re.match(line.strip())
    if not m:
        continue
    name, iters, ns, rest = m.group(1), int(m.group(2)), float(m.group(3)), m.group(4)
    metrics = {}
    for val, unit in re.findall(r'([\d.e+-]+) ([\w/%-]+)', rest):
        metrics[unit] = float(val)
    benches[name] = {
        "iterations": iters,
        "wall_seconds": ns / 1e9,
        "metrics": metrics,
    }

with open(out_path, "w") as f:
    json.dump({"suite": "go test -bench=. -benchtime=1x -benchmem", "benchmarks": benches}, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path} with {len(benches)} benchmarks", file=sys.stderr)
EOF
