#!/usr/bin/env bash
# bench.sh — run the figure-level benchmark suite and record the
# per-figure wall time and headline metrics as a JSON baseline. Each
# benchmark runs -count=3 times on this 1-core runner and the baseline
# keeps the minimum wall time (the least-noisy estimate); figure
# metrics are bit-identical across repeats, so they are taken from the
# first run.
#
# Usage:
#   scripts/bench.sh [N]
#
# Writes BENCH_<N>.json (default N=1) at the repository root, seeding
# the performance trajectory: successive PRs append BENCH_2.json,
# BENCH_3.json, ... and compare against earlier baselines. When
# BENCH_<N-1>.json exists, each benchmark entry carries its wall-time
# speedup over that baseline ("speedup_vs_prev", >1 is faster) and the
# file records the baseline it was compared against.
set -euo pipefail

cd "$(dirname "$0")/.."
n="${1:-1}"
out="BENCH_${n}.json"
prev="BENCH_$((n - 1)).json"
raw="$(mktemp)"
robust="$(mktemp)"
loadj="$(mktemp)"
trap 'rm -f "$raw" "$robust" "$loadj"' EXIT

# With REPRO_ARTIFACT_DIR set, the experiment harness profiles through
# the persistent artifact store; record whether this run started warm
# (store already populated — workload profiling skipped) or cold, so
# successive BENCH wall times are compared like for like. Figure
# metrics are bit-identical either way.
art_dir="${REPRO_ARTIFACT_DIR:-}"
art_warm=0
if [[ -n "$art_dir" ]] && compgen -G "$art_dir/*.rpaf" > /dev/null; then
  art_warm=1
fi
export BENCH_ART_DIR="$art_dir" BENCH_ART_WARM="$art_warm"

echo "running benchmark suite (one iteration per figure, 3 repeats, min wall)..." >&2
if [[ -n "$art_dir" ]]; then
  echo "artifact store: $art_dir ($([[ "$art_warm" == 1 ]] && echo warm || echo cold))" >&2
fi
# -benchmem so B/op and allocs/op land in the JSON metrics: trace-memory
# regressions (bytes/recorded-instruction, replay allocations) are part
# of the baseline.
go test -run '^$' -bench . -benchtime=1x -count=3 -benchmem . | tee "$raw" >&2

# Robustness probes: boot a tightly-bounded modeld, drive one request
# into each lifecycle failure mode (deadline expiry, client disconnect,
# shed load), and record the /metrics lifecycle/store counters in the
# baseline. Best-effort: probes that don't land leave their counter at
# 0, they never fail the benchmark run.
echo "probing lifecycle counters (deadline/cancel/shed)..." >&2
if go build -o "${TMPDIR:-/tmp}/bench-modeld" ./cmd/modeld; then
  # -dyninsts scales profiling to seconds so there is a real window to
  # cancel into; -workers 1 makes one request enough to exhaust the pot.
  bport="${BENCH_MODELD_PORT:-18123}"
  "${TMPDIR:-/tmp}/bench-modeld" -addr "127.0.0.1:$bport" \
    -workers 1 -queue-wait 50ms -predict-timeout 5ms -dyninsts 50000000 \
    -quota-workloads 1 >&2 &
  mpid=$!
  for _ in $(seq 1 50); do
    curl -fsS "http://127.0.0.1:$bport/healthz" > /dev/null 2>&1 && break
    sleep 0.2
  done
  # deadline_exceeded: a cold profiling run cannot finish in 5ms.
  curl -s "http://127.0.0.1:$bport/v1/predict?bench=sha" > /dev/null || true
  # cancelled: the client abandons a cold exploration mid-profile
  # (explore has no deadline configured here, so the disconnect is
  # what ends it).
  curl -s -m 0.5 "http://127.0.0.1:$bport/v1/explore?bench=gsm_c" > /dev/null || true
  # shed: one exploration's profiling run holds the single worker
  # token; an exploration of a *different* benchmark (same-bench would
  # just join the singleflight) must wait past -queue-wait and is shed
  # with 429. The holder is abandoned after 1s so the probe stays fast.
  curl -s -m 1 "http://127.0.0.1:$bport/v1/explore?bench=crc32&validate=true" > /dev/null &
  cpid=$!
  sleep 0.1
  curl -s "http://127.0.0.1:$bport/v1/explore?bench=sha" > /dev/null || true
  wait "$cpid" || true
  # Ingestion probe: submit a tiny untrusted program, predict it by the
  # content-addressed name the server returns, then trip the per-tenant
  # workload quota (-quota-workloads 1) with a second, different program
  # — exercising accept, serve, and quota-reject in one pass.
  echo "probing workload ingestion (submit/predict/quota-reject)..." >&2
  ing_src=$'.mem 64\nmain:\n li r1, 0\n li r2, 100\n li r3, 0\nloop:\n add r3, r3, r1\n addi r1, r1, 1\n blt r1, r2, loop\nend:\n st r3, 0x10(r0)\n halt\n'
  ing_src2=$'.mem 64\nmain:\n li r1, 0\n li r2, 50\n li r3, 0\nloop:\n add r3, r3, r1\n addi r1, r1, 1\n blt r1, r2, loop\nend:\n st r3, 0x10(r0)\n halt\n'
  # The abandoned shed-probe exploration above may still hold the
  # single worker token for a beat after its client vanished; retry the
  # submission briefly so it isn't itself shed by the 50ms queue-wait.
  ing_name=""
  for _ in $(seq 1 10); do
    ing_name="$(curl -s -H 'X-Tenant: bench' --data-binary "$ing_src" \
      "http://127.0.0.1:$bport/v1/workloads" \
      | sed -n 's/.*"name": *"\([^"]*\)".*/\1/p' | head -1)" || true
    [[ -n "$ing_name" ]] && break
    sleep 0.2
  done
  if [[ -n "$ing_name" ]]; then
    curl -s "http://127.0.0.1:$bport/v1/predict?bench=$ing_name" > /dev/null || true
  fi
  curl -s -H 'X-Tenant: bench' --data-binary "$ing_src2" \
    "http://127.0.0.1:$bport/v1/workloads" > /dev/null || true
  curl -fsS "http://127.0.0.1:$bport/metrics" > "$robust" 2> /dev/null || true
  kill "$mpid" 2> /dev/null || true
  wait "$mpid" 2> /dev/null || true
fi
export BENCH_ROBUST_FILE="$robust"

# Pareto-search probe: one budgeted heuristic search over the extended
# typed domain, recording wall time, evaluation count and frontier size
# as a new baseline section. The search shares the exhaustive sweep's
# statistics/model/power code paths, so the figure metrics above are
# unaffected; this section is economy telemetry, not a figure gate.
# Best-effort like the lifecycle probes: a failed probe records null.
echo "probing Pareto search (extended space, budget 512)..." >&2
search_line=""
search_wall=""
if go build -o "${TMPDIR:-/tmp}/bench-dse" ./cmd/dse-explore; then
  s0="$(date +%s%N)"
  search_line="$("${TMPDIR:-/tmp}/bench-dse" -bench crc32 -space extended -search -budget 512 -seed 1 2> /dev/null \
    | sed -n 's/^search summary: //p' | head -1)" || true
  s1="$(date +%s%N)"
  if [[ -n "$search_line" ]]; then
    search_wall="$(awk -v a="$s0" -v b="$s1" 'BEGIN{printf "%.6f", (b-a)/1e9}')"
  fi
fi
export BENCH_SEARCH_LINE="$search_line" BENCH_SEARCH_WALL="$search_wall"

# Load probe: boot one unbounded modeld and drive the seeded loadgen
# profile against it for a few seconds, recording latency percentiles,
# error counts and saturation QPS as the BENCH "load" section. The
# probe shares nothing with the figure benchmarks above, so figure
# metrics stay bit-identical; scripts/check_load.py gates the numbers
# against scripts/load_thresholds.json in CI. Best-effort: a failed
# probe records null (and the nightly load gate catches that).
echo "probing load (seeded closed-loop, 3s)..." >&2
load_ok=0
if [[ -x "${TMPDIR:-/tmp}/bench-modeld" ]] \
  && go build -o "${TMPDIR:-/tmp}/bench-loadgen" ./cmd/loadgen; then
  lport="${BENCH_LOAD_PORT:-18124}"
  "${TMPDIR:-/tmp}/bench-modeld" -addr "127.0.0.1:$lport" >&2 &
  lpid=$!
  for _ in $(seq 1 50); do
    curl -fsS "http://127.0.0.1:$lport/healthz" > /dev/null 2>&1 && break
    sleep 0.2
  done
  if "${TMPDIR:-/tmp}/bench-loadgen" -targets "http://127.0.0.1:$lport" \
    -seed 1 -duration 3s -concurrency 4 -out "$loadj" >&2; then
    load_ok=1
  fi
  kill "$lpid" 2> /dev/null || true
  wait "$lpid" 2> /dev/null || true
fi
if [[ "$load_ok" == 1 ]]; then
  export BENCH_LOAD_FILE="$loadj"
else
  export BENCH_LOAD_FILE=""
fi

python3 - "$raw" "$out" "$prev" <<'EOF'
import json, os, re, sys

raw_path, out_path, prev_path = sys.argv[1], sys.argv[2], sys.argv[3]
benches = {}
line_re = re.compile(r'^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(\d+(?:\.\d+)?) ns/op(.*)$')
for line in open(raw_path):
    m = line_re.match(line.strip())
    if not m:
        continue
    name, iters, ns, rest = m.group(1), int(m.group(2)), float(m.group(3)), m.group(4)
    if name in benches:
        # Repeat from -count: keep the minimum wall time (least noise
        # on a shared 1-core runner). Figure metrics are bit-identical
        # across repeats, so the first run's metrics stand; allocation
        # columns can jitter and are deliberately not re-read.
        b = benches[name]
        b["samples"] += 1
        b["wall_seconds"] = min(b["wall_seconds"], ns / 1e9)
        continue
    metrics = {}
    for val, unit in re.findall(r'([\d.e+-]+) ([\w/%-]+)', rest):
        metrics[unit] = float(val)
    benches[name] = {
        "iterations": iters,
        "wall_seconds": ns / 1e9,
        "metrics": metrics,
        "samples": 1,
    }

doc = {"suite": "go test -bench=. -benchtime=1x -count=3 -benchmem (min wall of 3)", "benchmarks": benches}

# Warm/cold provenance: a warm run (artifact store already populated)
# skips workload profiling, so its wall times are not comparable with a
# cold run's. Figure metrics are bit-identical either way.
art_dir = os.environ.get("BENCH_ART_DIR", "")
doc["artifact_store"] = {
    "enabled": bool(art_dir),
    "dir": art_dir or None,
    "warm": os.environ.get("BENCH_ART_WARM") == "1",
}

# Lifecycle counters from the robustness probes (cancelled requests,
# deadline expiries, shed load, recovered panics, store guard state) —
# absent or unreadable metrics record as null, never fail the run.
doc["robustness"] = None
robust_path = os.environ.get("BENCH_ROBUST_FILE", "")
try:
    with open(robust_path) as f:
        m = json.load(f)
    doc["robustness"] = {
        "lifecycle": m.get("lifecycle"),
        "store": m.get("store"),
        "ingest": m.get("ingest"),
    }
except (OSError, ValueError):
    pass

# Pareto-search economy telemetry: wall time, evaluation count and
# frontier size of one budgeted extended-space search. Lives outside
# benchmarks{} so check_bench never treats it as a figure metric.
doc["search"] = None
line = os.environ.get("BENCH_SEARCH_LINE", "")
m = re.match(
    r'evaluated=(\d+) generations=(\d+) stats_replays=(\d+) '
    r'front=(\d+) cardinality=(\d+)$', line)
if m:
    wall = os.environ.get("BENCH_SEARCH_WALL", "")
    doc["search"] = {
        "benchmark": "crc32",
        "space": "extended",
        "budget": 512,
        "seed": 1,
        "wall_seconds": float(wall) if wall else None,
        "evaluated": int(m.group(1)),
        "generations": int(m.group(2)),
        "stats_replays": int(m.group(3)),
        "front_size": int(m.group(4)),
        "cardinality": int(m.group(5)),
    }

# Load-probe results: cmd/loadgen's full report (latency percentiles,
# error taxonomy, saturation QPS) verbatim. Telemetry like search —
# schema-checked by check_bench, thresholds gated by check_load.
doc["load"] = None
load_path = os.environ.get("BENCH_LOAD_FILE", "")
try:
    with open(load_path) as f:
        doc["load"] = json.load(f)
except (OSError, ValueError):
    pass

if os.path.exists(prev_path):
    prev = json.load(open(prev_path))["benchmarks"]
    for name, b in benches.items():
        old = prev.get(name)
        if old is None:
            continue
        # A figure whose wall time rounds to 0 has no meaningful ratio;
        # emit null instead of dividing by zero.
        if b["wall_seconds"] > 0 and old.get("wall_seconds", 0) > 0:
            b["speedup_vs_prev"] = round(old["wall_seconds"] / b["wall_seconds"], 3)
        else:
            b["speedup_vs_prev"] = None
    doc["baseline"] = prev_path
    print(f"speedups vs {prev_path}:", file=sys.stderr)
    for name in sorted(benches):
        s = benches[name].get("speedup_vs_prev")
        if s is not None:
            print(f"  {name:<34} {s:6.2f}x", file=sys.stderr)

with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path} with {len(benches)} benchmarks", file=sys.stderr)
EOF
