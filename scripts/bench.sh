#!/usr/bin/env bash
# bench.sh — run the figure-level benchmark suite once and record the
# per-figure wall time and headline metrics as a JSON baseline.
#
# Usage:
#   scripts/bench.sh [N]
#
# Writes BENCH_<N>.json (default N=1) at the repository root, seeding
# the performance trajectory: successive PRs append BENCH_2.json,
# BENCH_3.json, ... and compare against earlier baselines. When
# BENCH_<N-1>.json exists, each benchmark entry carries its wall-time
# speedup over that baseline ("speedup_vs_prev", >1 is faster) and the
# file records the baseline it was compared against.
set -euo pipefail

cd "$(dirname "$0")/.."
n="${1:-1}"
out="BENCH_${n}.json"
prev="BENCH_$((n - 1)).json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "running benchmark suite (one iteration per figure)..." >&2
# -benchmem so B/op and allocs/op land in the JSON metrics: trace-memory
# regressions (bytes/recorded-instruction, replay allocations) are part
# of the baseline.
go test -run '^$' -bench . -benchtime=1x -benchmem . | tee "$raw" >&2

python3 - "$raw" "$out" "$prev" <<'EOF'
import json, os, re, sys

raw_path, out_path, prev_path = sys.argv[1], sys.argv[2], sys.argv[3]
benches = {}
line_re = re.compile(r'^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(\d+(?:\.\d+)?) ns/op(.*)$')
for line in open(raw_path):
    m = line_re.match(line.strip())
    if not m:
        continue
    name, iters, ns, rest = m.group(1), int(m.group(2)), float(m.group(3)), m.group(4)
    metrics = {}
    for val, unit in re.findall(r'([\d.e+-]+) ([\w/%-]+)', rest):
        metrics[unit] = float(val)
    benches[name] = {
        "iterations": iters,
        "wall_seconds": ns / 1e9,
        "metrics": metrics,
    }

doc = {"suite": "go test -bench=. -benchtime=1x -benchmem", "benchmarks": benches}

if os.path.exists(prev_path):
    prev = json.load(open(prev_path))["benchmarks"]
    for name, b in benches.items():
        old = prev.get(name)
        if old is None:
            continue
        # A figure whose wall time rounds to 0 has no meaningful ratio;
        # emit null instead of dividing by zero.
        if b["wall_seconds"] > 0 and old.get("wall_seconds", 0) > 0:
            b["speedup_vs_prev"] = round(old["wall_seconds"] / b["wall_seconds"], 3)
        else:
            b["speedup_vs_prev"] = None
    doc["baseline"] = prev_path
    print(f"speedups vs {prev_path}:", file=sys.stderr)
    for name in sorted(benches):
        s = benches[name].get("speedup_vs_prev")
        if s is not None:
            print(f"  {name:<34} {s:6.2f}x", file=sys.stderr)

with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path} with {len(benches)} benchmarks", file=sys.stderr)
EOF
