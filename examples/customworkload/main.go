// Customworkload shows how a downstream user brings their own program
// to the model: write a kernel in the program-builder DSL, profile it,
// and explore design points — no simulator runs needed after the one
// profiling pass.
//
// The kernel is a fixed-point dot product with a strided second vector,
// small enough to read in one sitting.
//
//	go run ./examples/customworkload
package main

import (
	"fmt"
	"log"

	"repro/internal/harness"
	"repro/internal/program"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

// buildDotProduct constructs: sum = Σ a[i]*b[4i] over n elements.
func buildDotProduct(n int64) *program.Program {
	const (
		aBase = 0x100
		bBase = 0x4000
	)
	p := program.New("dotprod", bBase+4*n+64)
	// Synthetic input data.
	for i := int64(0); i < n; i++ {
		p.SetData(aBase+i, (i*37)%256-128)
		p.SetData(bBase+4*i, (i*91)%256-128)
	}

	i, acc := workloads.R(1), workloads.R(2)
	av, bv, t := workloads.R(3), workloads.R(4), workloads.R(5)
	nn, bptr := workloads.R(6), workloads.R(7)

	b := p.Block("init")
	b.Li(i, 0)
	b.Li(acc, 0)
	b.Li(nn, n)
	b.Li(bptr, bBase)

	// The loop is annotated with its trip-count multiple so the
	// unroller in internal/compiler could unroll it, too.
	b = p.LoopBlockN("dot", "dot", 4)
	b.Ld(av, i, aBase)
	b.Ld(bv, bptr, 0)
	b.Mul(t, av, bv)
	b.Add(acc, acc, t)
	b.Addi(bptr, bptr, 4)
	b.Addi(i, i, 1)
	b.Blt(i, nn, "dot")

	b = p.Block("done")
	b.St(acc, workloads.R(0), 0)
	b.Halt()
	return p
}

func main() {
	log.SetFlags(0)
	pw, err := harness.ProfileProgram(buildDotProduct(40000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("profile:", pw.Prof)
	fmt.Println()

	// Sweep a couple of interesting axes with the model.
	for _, w := range []int{1, 2, 4} {
		for _, df := range uarch.DepthFreqPoints() {
			cfg := uarch.Default().WithWidth(w).WithDepth(df)
			st, err := pw.Predict(cfg)
			if err != nil {
				log.Fatal(err)
			}
			secs := cfg.Seconds(st.Total())
			fmt.Printf("W=%d %d-stage @%4d MHz: CPI %.3f, runtime %.3f ms\n",
				w, cfg.PipelineStages(), cfg.FreqMHz, st.CPI(), 1e3*secs)
		}
	}
	fmt.Println("\nA validation run is one call away: pipeline.Simulate(pw.Trace, cfg).")
}
