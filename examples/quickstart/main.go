// Quickstart: profile a benchmark once, then predict its performance
// on the paper's default superscalar in-order processor — and check
// the prediction against the detailed cycle-accurate simulator.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/pipeline"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

func main() {
	log.SetFlags(0)

	// 1. Pick a workload and profile it. Profiling runs the program
	//    once on the functional simulator and collects the
	//    machine-independent statistics of the paper's Table 1.
	spec, err := workloads.ByName("sha")
	if err != nil {
		log.Fatal(err)
	}
	pw, err := harness.ProfileProgram(spec.Build())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("profile:", pw.Prof)

	// 2. Choose a design point (Table 2 default: 4-wide, 9 stages at
	//    1 GHz, 512 KB L2, 1 KB gshare) and evaluate the model.
	cfg := uarch.Default()
	stack, err := pw.Predict(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmechanistic model on %s:\n", cfg)
	fmt.Printf("  predicted CPI %.4f (T = %.0f cycles)\n", stack.CPI(), stack.Total())
	for c := core.Component(0); c < core.NumComponents; c++ {
		if stack.Cycles[c] > 0 {
			fmt.Printf("  %-12s %7.4f CPI\n", c, stack.CPIOf(c))
		}
	}

	// 3. Validate against detailed cycle-accurate simulation — the
	//    expensive path the model replaces.
	sim, err := pipeline.Simulate(pw.Trace, cfg)
	if err != nil {
		log.Fatal(err)
	}
	errPct := 100 * (stack.CPI() - sim.CPI()) / sim.CPI()
	fmt.Printf("\ndetailed simulation: CPI %.4f  -> model error %+.2f%%\n", sim.CPI(), errPct)
}
