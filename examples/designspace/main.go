// Designspace explores the paper's 192-point Table 2 design space for
// one benchmark using the mechanistic model only — the use case the
// model exists for: a whole design space in well under a second once
// the workload is profiled.
//
//	go run ./examples/designspace -bench patricia -top 10
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/dse"
	"repro/internal/harness"
	"repro/internal/power"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

func main() {
	log.SetFlags(0)
	bench := flag.String("bench", "patricia", "benchmark to explore")
	top := flag.Int("top", 10, "how many best-EDP configurations to print")
	flag.Parse()

	spec, err := workloads.ByName(*bench)
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	pw, err := harness.ProfileProgram(spec.Build())
	if err != nil {
		log.Fatal(err)
	}
	profTime := time.Since(t0)

	space := dse.Space(uarch.Default())
	t1 := time.Now()
	pts, err := dse.Explore(pw, space, power.NewModel())
	if err != nil {
		log.Fatal(err)
	}
	exploreTime := time.Since(t1)

	sort.Slice(pts, func(i, j int) bool { return pts[i].ModelEDP < pts[j].ModelEDP })
	fmt.Printf("%s: %d design points explored in %v (profiling took %v, once)\n\n",
		*bench, len(pts), exploreTime.Round(time.Millisecond), profTime.Round(time.Millisecond))
	fmt.Printf("%-36s %8s %10s %12s\n", "configuration", "CPI", "time", "EDP (J*s)")
	for i := 0; i < *top && i < len(pts); i++ {
		p := pts[i]
		fmt.Printf("%-36s %8.4f %8.2fms %12.4e\n",
			p.Cfg.Name, p.ModelCPI, 1e3*p.ModelSecs, p.ModelEDP)
	}
}
