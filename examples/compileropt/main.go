// Compileropt reproduces the Figure 8 case study for one benchmark:
// how instruction scheduling and loop unrolling change in-order
// performance, explained through the model's cycle stacks.
//
//	go run ./examples/compileropt -bench gsm_c
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/compiler"
	"repro/internal/harness"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

func main() {
	log.SetFlags(0)
	bench := flag.String("bench", "gsm_c", "benchmark to study")
	flag.Parse()

	spec, err := workloads.ByName(*bench)
	if err != nil {
		log.Fatal(err)
	}
	cfg := uarch.Default()

	fmt.Printf("%s under compiler optimizations (default core, cycles from the model)\n\n", *bench)
	fmt.Printf("%-8s %9s %12s %10s %10s %10s\n", "level", "N", "cycles", "deps", "taken", "base")
	var o3 float64
	for _, lvl := range compiler.Levels() {
		opt := compiler.Optimize(spec.Build(), lvl)
		pw, err := harness.ProfileProgram(opt)
		if err != nil {
			log.Fatal(err)
		}
		st, err := pw.Predict(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if lvl == compiler.O3 {
			o3 = st.Total()
		}
		fmt.Printf("%-8s %9d %12.0f %10.0f %10.0f %10.0f\n",
			lvl, pw.Prof.N, st.Total(),
			st.Cycles[10]+st.Cycles[11]+st.Cycles[12], st.Cycles[9], st.Cycles[0])
	}
	_ = o3
	fmt.Println("\nScheduling stretches dependency distances (deps shrink at equal N);")
	fmt.Println("unrolling removes branches and induction updates (N and taken shrink).")
}
