// Widthsweep reproduces the Figure 4 analysis for any benchmark: CPI
// stacks as a function of superscalar width, showing where the width
// benefit goes (and why it saturates — growing dependency stalls).
//
//	go run ./examples/widthsweep -bench dijkstra
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/harness"
	"repro/internal/pipeline"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

func main() {
	log.SetFlags(0)
	bench := flag.String("bench", "dijkstra", "benchmark to sweep")
	flag.Parse()

	spec, err := workloads.ByName(*bench)
	if err != nil {
		log.Fatal(err)
	}
	pw, err := harness.ProfileProgram(spec.Build())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: CPI stacks vs width (model) with detailed CPI for reference\n\n", *bench)
	fmt.Printf("%2s %8s %8s %8s %8s %8s %8s %8s | %8s %8s\n",
		"W", "base", "mul/div", "l2acc", "l2miss", "bpred", "taken", "deps", "CPI", "detail")
	for w := 1; w <= 4; w++ {
		cfg := uarch.Default().WithWidth(w)
		st, err := pw.Predict(cfg)
		if err != nil {
			log.Fatal(err)
		}
		sim, err := pipeline.Simulate(pw.Trace, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%2d %8.4f %8.4f %8.4f %8.4f %8.4f %8.4f %8.4f | %8.4f %8.4f\n",
			w, st.CPIOf(0), st.CPIOf(1), st.L2Access(), st.L2Miss(),
			st.CPIOf(8), st.CPIOf(9), st.Deps(), st.CPI(), sim.CPI())
	}
	fmt.Println("\nIf deps grow as base shrinks, extra width is being wasted on stalls —")
	fmt.Println("the paper's dijkstra observation.")
}
