// Package repro is a from-scratch Go reproduction of "A Mechanistic
// Performance Model for Superscalar In-Order Processors" (Breughe,
// Eyerman, Eeckhout; ISPASS 2012), together with every substrate the
// paper's evaluation depends on: an ISA and functional simulator, a
// profiler, single-pass cache/TLB and branch-predictor simulators, a
// cycle-accurate in-order pipeline simulator, an out-of-order interval
// model, a power/EDP model, compiler passes, 25 benchmark kernels and
// the full experiment harness regenerating the paper's tables and
// figures.
//
// Start with README.md, DESIGN.md (system inventory and experiment
// index) and EXPERIMENTS.md (paper-versus-measured results). The
// benchmarks in bench_test.go regenerate each figure:
//
//	go test -bench=Fig3 -benchtime=1x .
//
// The library lives under internal/; cmd/inorder-model and
// cmd/experiments are the command-line entry points, and examples/
// holds five runnable walkthroughs.
package repro
