// Package stats provides the small statistical helpers the experiment
// harness needs: summary statistics and empirical CDFs over error
// distributions (Figure 5 of the paper).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of non-negative values (e.g., CPI errors).
type Summary struct {
	N      int
	Mean   float64
	Median float64
	Max    float64
	P90    float64
	P95    float64
}

// Summarize computes a Summary (zero value for an empty sample).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	return Summary{
		N:      len(s),
		Mean:   sum / float64(len(s)),
		Median: Quantile(s, 0.5),
		Max:    s[len(s)-1],
		P90:    Quantile(s, 0.90),
		P95:    Quantile(s, 0.95),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4f median=%.4f p90=%.4f p95=%.4f max=%.4f",
		s.N, s.Mean, s.Median, s.P90, s.P95, s.Max)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an ascending-sorted
// sample using linear interpolation.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	P float64 // fraction of samples ≤ X
}

// CDF returns the empirical CDF of the sample, one point per sample.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([]CDFPoint, len(s))
	for i, v := range s {
		out[i] = CDFPoint{X: v, P: float64(i+1) / float64(len(s))}
	}
	return out
}

// FractionBelow returns the fraction of samples strictly below x.
func FractionBelow(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, v := range xs {
		if v < x {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// GeoMean returns the geometric mean of positive samples (0 if any
// sample is non-positive or the slice is empty).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, v := range xs {
		if v <= 0 {
			return 0
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(xs)))
}
