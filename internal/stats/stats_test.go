package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Mean != 2.5 || s.Max != 4 || s.Median != 2.5 {
		t.Errorf("summary = %+v", s)
	}
	if (Summary{}) != Summarize(nil) {
		t.Error("empty summary not zero")
	}
	if s.String() == "" {
		t.Error("empty string")
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); got != c.want {
			t.Errorf("Quantile(%f) = %f, want %f", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile not 0")
	}
	// Interpolation between points.
	if got := Quantile([]float64{0, 10}, 0.25); got != 2.5 {
		t.Errorf("interpolated quantile = %f, want 2.5", got)
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2})
	if len(pts) != 3 {
		t.Fatalf("CDF has %d points", len(pts))
	}
	if pts[0].X != 1 || pts[0].P != 1.0/3 {
		t.Errorf("first point = %+v", pts[0])
	}
	if pts[2].X != 3 || pts[2].P != 1 {
		t.Errorf("last point = %+v", pts[2])
	}
	if CDF(nil) != nil {
		t.Error("empty CDF not nil")
	}
}

func TestFractionBelow(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := FractionBelow(xs, 3); got != 0.5 {
		t.Errorf("FractionBelow = %f", got)
	}
	if FractionBelow(nil, 1) != 0 {
		t.Error("empty fraction not 0")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %f, want 2", got)
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Error("non-positive sample should yield 0")
	}
	if GeoMean(nil) != 0 {
		t.Error("empty should yield 0")
	}
}

// Property: quantiles are monotone in q, and the CDF is monotone in
// both coordinates.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(n%50) + 2
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		sort.Float64s(xs)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(xs, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		pts := CDF(xs)
		for i := 1; i < len(pts); i++ {
			if pts[i].X < pts[i-1].X || pts[i].P <= pts[i-1].P {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Summarize is permutation invariant and Mean lies within
// [min, max].
func TestSummarizeProperties(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(n%40) + 1
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = rng.Float64()
		}
		a := Summarize(xs)
		shuffled := append([]float64(nil), xs...)
		rng.Shuffle(m, func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		b := Summarize(shuffled)
		if a != b {
			return false
		}
		lo, hi := xs[0], xs[0]
		for _, v := range xs {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		return a.Mean >= lo-1e-12 && a.Mean <= hi+1e-12 && a.Max == hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
