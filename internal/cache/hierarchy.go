package cache

import (
	"fmt"

	"repro/internal/trace"
)

// InstrBytes is the size of one instruction in instruction memory;
// static instruction index i lives at byte address i*InstrBytes.
const InstrBytes = 4

// WordBytes is the size of one data word; data word address a lives at
// byte address a*WordBytes.
const WordBytes = 4

// HierarchyConfig describes a two-level hierarchy with split L1 caches,
// a unified L2 and split TLBs.
type HierarchyConfig struct {
	IL1, DL1, L2 Config
	ITLBEntries  int
	DTLBEntries  int
	PageBytes    int64
}

// Validate checks all components.
func (h HierarchyConfig) Validate() error {
	for _, c := range []Config{h.IL1, h.DL1, h.L2} {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	if h.ITLBEntries <= 0 || h.DTLBEntries <= 0 {
		return fmt.Errorf("hierarchy: non-positive TLB entries")
	}
	if h.PageBytes <= 0 || h.PageBytes&(h.PageBytes-1) != 0 {
		return fmt.Errorf("hierarchy: bad page size %d", h.PageBytes)
	}
	return nil
}

// Result reports the outcome of one hierarchy access.
type Result struct {
	L1Hit    bool
	L2Hit    bool // meaningful only when !L1Hit
	TLBHit   bool
	NewBlock bool // first touch of the L1 block since the previous fill
}

// Stats aggregates hierarchy event counts, split by reference type.
type Stats struct {
	IL1Accesses   int64
	IL1Misses     int64 // L1-I misses (block fills)
	IL2Misses     int64 // of those, also missed in L2
	DL1Accesses   int64
	DL1Misses     int64 // L1-D misses (loads+stores)
	DL2Misses     int64 // of those, also missed in L2
	DL1LoadMisses int64 // load subset of DL1Misses
	DL2LoadMisses int64 // load subset of DL2Misses
	ITLBMisses    int64
	DTLBMisses    int64
	Writebacks    int64
}

// Hierarchy simulates the full memory system.
type Hierarchy struct {
	Cfg  HierarchyConfig
	IL1c *Cache
	DL1c *Cache
	L2c  *Cache
	ITLB *TLB
	DTLB *TLB

	S Stats
}

// NewHierarchy builds the hierarchy.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := &Hierarchy{Cfg: cfg}
	var err error
	if h.IL1c, err = New(cfg.IL1); err != nil {
		return nil, err
	}
	if h.DL1c, err = New(cfg.DL1); err != nil {
		return nil, err
	}
	if h.L2c, err = New(cfg.L2); err != nil {
		return nil, err
	}
	if h.ITLB, err = NewTLB(cfg.ITLBEntries, cfg.PageBytes); err != nil {
		return nil, err
	}
	if h.DTLB, err = NewTLB(cfg.DTLBEntries, cfg.PageBytes); err != nil {
		return nil, err
	}
	return h, nil
}

// MustNewHierarchy is NewHierarchy that panics on error.
func MustNewHierarchy(cfg HierarchyConfig) *Hierarchy {
	h, err := NewHierarchy(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// AccessI performs an instruction fetch of the instruction at static
// index pc.
func (h *Hierarchy) AccessI(pc int64) Result {
	byteAddr := pc * InstrBytes
	var r Result
	r.TLBHit = h.ITLB.Access(byteAddr)
	if !r.TLBHit {
		h.S.ITLBMisses++
	}
	h.S.IL1Accesses++
	hit, _, _ := h.IL1c.Access(byteAddr, false)
	r.L1Hit = hit
	if !hit {
		h.S.IL1Misses++
		l2hit, wb, _ := h.L2c.Access(byteAddr, false)
		r.L2Hit = l2hit
		if wb {
			h.S.Writebacks++
		}
		if !l2hit {
			h.S.IL2Misses++
		}
	}
	return r
}

// AccessD performs a data access to word address addr.
func (h *Hierarchy) AccessD(addr int64, write bool) Result {
	byteAddr := addr * WordBytes
	var r Result
	r.TLBHit = h.DTLB.Access(byteAddr)
	if !r.TLBHit {
		h.S.DTLBMisses++
	}
	h.S.DL1Accesses++
	hit, wb1, victim := h.DL1c.Access(byteAddr, write)
	if wb1 {
		// Dirty L1 victim written back into its own L2 line.
		if _, wb2, _ := h.L2c.Access(victim, true); wb2 {
			h.S.Writebacks++
		}
	}
	r.L1Hit = hit
	if !hit {
		h.S.DL1Misses++
		if !write {
			h.S.DL1LoadMisses++
		}
		l2hit, wb, _ := h.L2c.Access(byteAddr, write)
		r.L2Hit = l2hit
		if wb {
			h.S.Writebacks++
		}
		if !l2hit {
			h.S.DL2Misses++
			if !write {
				h.S.DL2LoadMisses++
			}
		}
	}
	return r
}

// Reset clears contents and statistics.
func (h *Hierarchy) Reset() {
	h.IL1c.Reset()
	h.DL1c.Reset()
	h.L2c.Reset()
	h.ITLB.Reset()
	h.DTLB.Reset()
	h.S = Stats{}
}

// Collector adapts a Hierarchy to the trace.Consumer interface for
// profiling runs: every dynamic instruction performs an I-fetch, and
// loads/stores additionally access the data side.
type Collector struct {
	H *Hierarchy
}

// NewCollector wraps h.
func NewCollector(h *Hierarchy) *Collector { return &Collector{H: h} }

// Consume implements trace.Consumer.
func (c *Collector) Consume(d *trace.DynInst) {
	c.H.AccessI(d.PC)
	if d.IsLoad {
		c.H.AccessD(d.EffAddr, false)
	} else if d.IsStore {
		c.H.AccessD(d.EffAddr, true)
	}
}

// Stats returns the accumulated statistics.
func (c *Collector) Stats() Stats { return c.H.S }

// MultiCollector simulates several hierarchy configurations in a single
// pass over the trace — the "single-pass cache simulation" the paper
// relies on to cover the design space with one profiling run.
type MultiCollector struct {
	Collectors []*Collector
}

// NewMultiCollector builds one collector per configuration.
func NewMultiCollector(cfgs []HierarchyConfig) (*MultiCollector, error) {
	m := &MultiCollector{}
	for _, cfg := range cfgs {
		h, err := NewHierarchy(cfg)
		if err != nil {
			return nil, err
		}
		m.Collectors = append(m.Collectors, NewCollector(h))
	}
	return m, nil
}

// Consume implements trace.Consumer.
func (m *MultiCollector) Consume(d *trace.DynInst) {
	for _, c := range m.Collectors {
		c.Consume(d)
	}
}

// Stats returns per-configuration statistics in configuration order.
func (m *MultiCollector) Stats() []Stats {
	out := make([]Stats, len(m.Collectors))
	for i, c := range m.Collectors {
		out[i] = c.H.S
	}
	return out
}
