package cache

import (
	"fmt"

	"repro/internal/trace"
)

// InstrBytes is the size of one instruction in instruction memory;
// static instruction index i lives at byte address i*InstrBytes.
const InstrBytes = 4

// WordBytes is the size of one data word; data word address a lives at
// byte address a*WordBytes.
const WordBytes = 4

// HierarchyConfig describes a two-level hierarchy with split L1 caches,
// a unified L2 and split TLBs.
type HierarchyConfig struct {
	IL1, DL1, L2 Config
	ITLBEntries  int
	DTLBEntries  int
	PageBytes    int64
}

// Validate checks all components.
func (h HierarchyConfig) Validate() error {
	for _, c := range []Config{h.IL1, h.DL1, h.L2} {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	if h.ITLBEntries <= 0 || h.DTLBEntries <= 0 {
		return fmt.Errorf("hierarchy: non-positive TLB entries")
	}
	if h.PageBytes <= 0 || h.PageBytes&(h.PageBytes-1) != 0 {
		return fmt.Errorf("hierarchy: bad page size %d", h.PageBytes)
	}
	return nil
}

// Result reports the outcome of one hierarchy access.
type Result struct {
	L1Hit    bool
	L2Hit    bool // meaningful only when !L1Hit
	TLBHit   bool
	NewBlock bool // first touch of the L1 block since the previous fill
}

// Stats aggregates hierarchy event counts, split by reference type.
type Stats struct {
	IL1Accesses   int64
	IL1Misses     int64 // L1-I misses (block fills)
	IL2Misses     int64 // of those, also missed in L2
	DL1Accesses   int64
	DL1Misses     int64 // L1-D misses (loads+stores)
	DL2Misses     int64 // of those, also missed in L2
	DL1LoadMisses int64 // load subset of DL1Misses
	DL2LoadMisses int64 // load subset of DL2Misses
	ITLBMisses    int64
	DTLBMisses    int64
	Writebacks    int64
}

// Hierarchy simulates the full memory system.
type Hierarchy struct {
	Cfg  HierarchyConfig
	IL1c *Cache
	DL1c *Cache
	L2c  *Cache
	ITLB *TLB
	DTLB *TLB

	S Stats

	// Same-block fast path: a re-access to the most recent block is a
	// pure counter bump when that access hit everywhere, because
	// re-touching the MRU line of a set and the MRU page of a TLB
	// leaves all replacement state exactly as it was. Valid only while
	// blocks are no larger than pages (warmOK).
	warmOK   bool
	iWarm    bool  // last I-access hit L1 and ITLB
	lastITag int64 // last I-access block address
	dWarm    bool  // last D-access hit DL1 and DTLB
	dDirty   bool  // ... and left the block dirty
	lastDTag int64 // last D-access block address
}

// NewHierarchy builds the hierarchy.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := &Hierarchy{Cfg: cfg}
	// One backing array for all three caches' lines: a hierarchy is
	// built per detailed simulation, so allocation count matters.
	backing := make([]line, lineCount(cfg.IL1)+lineCount(cfg.DL1)+lineCount(cfg.L2))
	var err error
	if h.IL1c, err = newWithBacking(cfg.IL1, backing); err != nil {
		return nil, err
	}
	backing = backing[lineCount(cfg.IL1):]
	if h.DL1c, err = newWithBacking(cfg.DL1, backing); err != nil {
		return nil, err
	}
	backing = backing[lineCount(cfg.DL1):]
	if h.L2c, err = newWithBacking(cfg.L2, backing); err != nil {
		return nil, err
	}
	if h.ITLB, err = NewTLB(cfg.ITLBEntries, cfg.PageBytes); err != nil {
		return nil, err
	}
	if h.DTLB, err = NewTLB(cfg.DTLBEntries, cfg.PageBytes); err != nil {
		return nil, err
	}
	h.warmOK = cfg.IL1.BlockBytes <= cfg.PageBytes && cfg.DL1.BlockBytes <= cfg.PageBytes
	return h, nil
}

// MustNewHierarchy is NewHierarchy that panics on error.
func MustNewHierarchy(cfg HierarchyConfig) *Hierarchy {
	h, err := NewHierarchy(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// AccessIWarm is the inlinable same-block fast path of AccessI: if the
// fetch of pc touches the block of the previous all-hit I-access, no
// replacement state can change, so only the counters are bumped and
// the access is a guaranteed L1+TLB hit. It reports false when the
// caller must take the full AccessI path.
func (h *Hierarchy) AccessIWarm(pc int64) bool {
	if !h.iWarm || (pc*InstrBytes)>>h.IL1c.blkShift != h.lastITag {
		return false
	}
	h.S.IL1Accesses++
	h.IL1c.Accesses++
	h.ITLB.Accesses++
	return true
}

// IWarmHit reports whether fetching pc repeats the last all-hit
// I-access block: a guaranteed L1+TLB hit that changes no state. A
// caller on a hot loop batches such fetches and accounts them at the
// end with CreditIWarm(count) instead of bumping counters per fetch.
func (h *Hierarchy) IWarmHit(pc int64) bool {
	return h.iWarm && (pc*InstrBytes)>>h.IL1c.blkShift == h.lastITag
}

// CreditIWarm accounts n batched warm I-fetches (see IWarmHit).
func (h *Hierarchy) CreditIWarm(n int64) {
	h.S.IL1Accesses += n
	h.IL1c.Accesses += n
	h.ITLB.Accesses += n
}

// AccessI performs an instruction fetch of the instruction at static
// index pc.
func (h *Hierarchy) AccessI(pc int64) Result {
	if h.AccessIWarm(pc) {
		return Result{L1Hit: true, TLBHit: true}
	}
	byteAddr := pc * InstrBytes
	var r Result
	r.TLBHit = h.ITLB.Access(byteAddr)
	if !r.TLBHit {
		h.S.ITLBMisses++
	}
	h.S.IL1Accesses++
	hit, _, _ := h.IL1c.Access(byteAddr, false)
	r.L1Hit = hit
	if !hit {
		h.S.IL1Misses++
		l2hit, wb, _ := h.L2c.Access(byteAddr, false)
		r.L2Hit = l2hit
		if wb {
			h.S.Writebacks++
		}
		if !l2hit {
			h.S.IL2Misses++
		}
	}
	h.lastITag = byteAddr >> h.IL1c.blkShift
	h.iWarm = h.warmOK && r.L1Hit && r.TLBHit
	return r
}

// AccessDWarm is AccessIWarm's data-side counterpart. A write
// additionally requires the block to already be dirty, otherwise the
// full path must set its dirty bit.
func (h *Hierarchy) AccessDWarm(addr int64, write bool) bool {
	if !h.dWarm || (addr*WordBytes)>>h.DL1c.blkShift != h.lastDTag || (write && !h.dDirty) {
		return false
	}
	h.S.DL1Accesses++
	h.DL1c.Accesses++
	h.DTLB.Accesses++
	return true
}

// AccessD performs a data access to word address addr.
func (h *Hierarchy) AccessD(addr int64, write bool) Result {
	if h.AccessDWarm(addr, write) {
		return Result{L1Hit: true, TLBHit: true}
	}
	byteAddr := addr * WordBytes
	var r Result
	r.TLBHit = h.DTLB.Access(byteAddr)
	if !r.TLBHit {
		h.S.DTLBMisses++
	}
	h.S.DL1Accesses++
	hit, wb1, victim := h.DL1c.Access(byteAddr, write)
	if wb1 {
		// Dirty L1 victim written back into its own L2 line.
		if _, wb2, _ := h.L2c.Access(victim, true); wb2 {
			h.S.Writebacks++
		}
	}
	r.L1Hit = hit
	if !hit {
		h.S.DL1Misses++
		if !write {
			h.S.DL1LoadMisses++
		}
		l2hit, wb, _ := h.L2c.Access(byteAddr, write)
		r.L2Hit = l2hit
		if wb {
			h.S.Writebacks++
		}
		if !l2hit {
			h.S.DL2Misses++
			if !write {
				h.S.DL2LoadMisses++
			}
		}
	}
	h.lastDTag = byteAddr >> h.DL1c.blkShift
	h.dWarm = h.warmOK && r.L1Hit && r.TLBHit
	// After a write the block is certainly dirty; after a read hit it
	// may be dirty from before, but assuming clean only routes the
	// next write through the full path (which re-marks it dirty).
	h.dDirty = write
	return r
}

// Reset clears contents and statistics.
func (h *Hierarchy) Reset() {
	h.IL1c.Reset()
	h.DL1c.Reset()
	h.L2c.Reset()
	h.ITLB.Reset()
	h.DTLB.Reset()
	h.S = Stats{}
	h.iWarm, h.dWarm, h.dDirty = false, false, false
	h.lastITag, h.lastDTag = 0, 0
}

// Collector adapts a Hierarchy to the trace.Consumer interface for
// profiling runs: every dynamic instruction performs an I-fetch, and
// loads/stores additionally access the data side.
type Collector struct {
	H *Hierarchy
}

// NewCollector wraps h.
func NewCollector(h *Hierarchy) *Collector { return &Collector{H: h} }

// Consume implements trace.Consumer.
func (c *Collector) Consume(d *trace.DynInst) {
	if !c.H.AccessIWarm(d.PC) {
		c.H.AccessI(d.PC)
	}
	if d.IsLoad {
		if !c.H.AccessDWarm(d.EffAddr, false) {
			c.H.AccessD(d.EffAddr, false)
		}
	} else if d.IsStore {
		if !c.H.AccessDWarm(d.EffAddr, true) {
			c.H.AccessD(d.EffAddr, true)
		}
	}
}

// Stats returns the accumulated statistics.
func (c *Collector) Stats() Stats { return c.H.S }

// MultiCollector simulates several hierarchy configurations in a single
// pass over the trace — the "single-pass cache simulation" the paper
// relies on to cover the design space with one profiling run.
type MultiCollector struct {
	Collectors []*Collector
}

// NewMultiCollector builds one collector per configuration.
func NewMultiCollector(cfgs []HierarchyConfig) (*MultiCollector, error) {
	m := &MultiCollector{}
	for _, cfg := range cfgs {
		h, err := NewHierarchy(cfg)
		if err != nil {
			return nil, err
		}
		m.Collectors = append(m.Collectors, NewCollector(h))
	}
	return m, nil
}

// Consume implements trace.Consumer.
func (m *MultiCollector) Consume(d *trace.DynInst) {
	for _, c := range m.Collectors {
		c.Consume(d)
	}
}

// Stats returns per-configuration statistics in configuration order.
func (m *MultiCollector) Stats() []Stats {
	out := make([]Stats, len(m.Collectors))
	for i, c := range m.Collectors {
		out[i] = c.H.S
	}
	return out
}
