package cache

// StackSim is an all-associativity stack-distance simulator in the
// style of Mattson et al. (1970) and Hill & Smith (1989): for a fixed
// number of sets and block size, one pass over the address stream
// yields hit counts for *every* associativity simultaneously, because
// under LRU a reference hits in an A-way cache iff its depth in the
// per-set LRU stack is < A (stack inclusion property).
type StackSim struct {
	sets     int64
	blkShift uint

	stacks [][]int64 // per-set LRU stacks, MRU first (unbounded)
	// DepthHist[d] counts references found at stack depth d (0-based);
	// references to blocks never seen before are counted in ColdMisses.
	DepthHist  []int64
	ColdMisses int64
	Accesses   int64
}

// NewStackSim builds a stack simulator for the given set count and
// block size (both powers of two).
func NewStackSim(sets int64, blockBytes int64) *StackSim {
	return &StackSim{
		sets:     sets,
		blkShift: log2(blockBytes),
		stacks:   make([][]int64, sets),
	}
}

// Access records a reference to byteAddr.
func (s *StackSim) Access(byteAddr int64) {
	s.Accesses++
	tag := byteAddr >> s.blkShift
	set := tag & (s.sets - 1)
	st := s.stacks[set]
	for i, t := range st {
		if t == tag {
			if i >= len(s.DepthHist) {
				grown := make([]int64, i+1)
				copy(grown, s.DepthHist)
				s.DepthHist = grown
			}
			s.DepthHist[i]++
			copy(st[1:i+1], st[0:i])
			st[0] = tag
			return
		}
	}
	s.ColdMisses++
	s.stacks[set] = append(st, 0)
	st = s.stacks[set]
	copy(st[1:], st[0:len(st)-1])
	st[0] = tag
}

// MissesFor returns the number of misses the stream would incur in an
// LRU cache with this simulator's set count and the given associativity.
func (s *StackSim) MissesFor(assoc int) int64 {
	misses := s.ColdMisses
	for d := assoc; d < len(s.DepthHist); d++ {
		misses += s.DepthHist[d]
	}
	return misses
}

// HitsFor returns hits for the given associativity.
func (s *StackSim) HitsFor(assoc int) int64 {
	return s.Accesses - s.MissesFor(assoc)
}

// StreamClass labels one reference of a cache's input stream so a
// single stack simulation can attribute its per-associativity miss
// counts to the sources the model distinguishes (instruction fetches,
// demand loads, demand stores, and L1 victim writebacks).
type StreamClass uint8

// The stream classes of the unified L2's input stream.
const (
	StreamInstr StreamClass = iota
	StreamLoad
	StreamStore
	StreamWriteback
	NumStreamClasses
)

// cleanAll marks a stack entry that is clean in every cache.
const cleanAll = int32(1<<31 - 1)

// wbEntry is one block in a WBStackSim LRU stack. cleanLimit encodes
// the per-associativity dirty state compactly: the block is dirty in
// the A-way cache iff A > cleanLimit. A write sets cleanLimit to 0
// (write-allocate marks every cache's copy dirty); a read hit at stack
// depth d raises it to at least d (caches with ≤ d ways missed and
// refilled the block clean); cleanAll means dirty nowhere.
type wbEntry struct {
	tag        int64
	cleanLimit int32
}

// WBStackSim extends the stack-distance simulation with per-class
// depth histograms and exact per-associativity writeback counts. One
// pass over a cache's input stream yields, for every associativity at
// this set count, the same per-class miss counts and dirty-eviction
// counts a real LRU write-back cache of that geometry would observe.
//
// Writeback counting exploits that a block's stack depth grows by at
// most one per access: an entry pushed from depth A-1 to depth A is,
// at that instant, the block the A-way cache evicts (stack inclusion),
// and the eviction writes back iff the block is dirty there.
type WBStackSim struct {
	sets     int64
	blkShift uint

	stacks [][]wbEntry
	hist   [NumStreamClasses][]int64 // hist[class][depth]
	cold   [NumStreamClasses]int64
	acc    [NumStreamClasses]int64
	wb     []int64 // wb[A]: dirty evictions in the A-way cache; index 0 unused
}

// NewWBStackSim builds a class-attributed, writeback-counting stack
// simulator for the given set count and block size (powers of two).
func NewWBStackSim(sets int64, blockBytes int64) *WBStackSim {
	return &WBStackSim{
		sets:     sets,
		blkShift: log2(blockBytes),
		stacks:   make([][]wbEntry, sets),
	}
}

// Sets returns the simulated set count.
func (s *WBStackSim) Sets() int64 { return s.sets }

// ColdDepth is the stack depth Access reports for a never-seen block:
// deeper than any finite associativity, so `depth < ways` uniformly
// decides hit/miss.
const ColdDepth = int(1) << 30

// Access records one reference of the given class; write marks the
// block dirty exactly as a write-allocate write-back cache would. It
// returns the reference's LRU stack depth (0-based; ColdDepth for a
// cold reference): by stack inclusion the reference hits an A-way
// cache of this set count iff depth < A, which is how annotation
// passes recover the per-access outcome for every candidate geometry
// from the one shared simulation.
func (s *WBStackSim) Access(byteAddr int64, class StreamClass, write bool) int {
	s.acc[class]++
	tag := byteAddr >> s.blkShift
	set := tag & (s.sets - 1)
	st := s.stacks[set]
	for i := range st {
		if st[i].tag != tag {
			continue
		}
		// Reference at depth i: a hit for every associativity > i.
		if i >= len(s.hist[class]) {
			grown := make([]int64, i+1)
			copy(grown, s.hist[class])
			s.hist[class] = grown
		}
		s.hist[class][i]++
		e := st[i]
		s.sink(st[:i])
		if write {
			e.cleanLimit = 0
		} else if int32(i) > e.cleanLimit {
			// Caches with ≤ i ways missed and refilled clean.
			e.cleanLimit = int32(i)
		}
		st[0] = e
		return i
	}
	// Cold reference: a miss at every associativity.
	s.cold[class]++
	st = append(st, wbEntry{})
	s.stacks[set] = st
	s.sink(st[:len(st)-1])
	e := wbEntry{tag: tag, cleanLimit: cleanAll}
	if write {
		e.cleanLimit = 0
	}
	st[0] = e
	return ColdDepth
}

// sink pushes every entry of st one position deeper, charging the
// writeback each crossing implies. st aliases the head of the per-set
// stack, whose backing array has room for one more entry.
func (s *WBStackSim) sink(st []wbEntry) {
	full := st[:len(st)+1]
	for p := len(st) - 1; p >= 0; p-- {
		e := st[p]
		if int32(p+1) > e.cleanLimit {
			// The (p+1)-way cache evicts this block now, dirty.
			if p+1 >= len(s.wb) {
				grown := make([]int64, p+2)
				copy(grown, s.wb)
				s.wb = grown
			}
			s.wb[p+1]++
		}
		full[p+1] = e
	}
}

// ClassAccesses returns the number of references seen for one class.
func (s *WBStackSim) ClassAccesses(class StreamClass) int64 { return s.acc[class] }

// ClassMisses returns the misses references of one class would incur
// in an LRU cache with this set count and the given associativity.
func (s *WBStackSim) ClassMisses(class StreamClass, assoc int) int64 {
	misses := s.cold[class]
	h := s.hist[class]
	for d := assoc; d < len(h); d++ {
		misses += h[d]
	}
	return misses
}

// MissesFor returns total misses (all classes) at the given
// associativity.
func (s *WBStackSim) MissesFor(assoc int) int64 {
	var misses int64
	for c := StreamClass(0); c < NumStreamClasses; c++ {
		misses += s.ClassMisses(c, assoc)
	}
	return misses
}

// Writebacks returns the number of dirty blocks an LRU write-back
// cache with this set count and the given associativity would have
// evicted over the stream.
func (s *WBStackSim) Writebacks(assoc int) int64 {
	if assoc < len(s.wb) {
		return s.wb[assoc]
	}
	return 0
}
