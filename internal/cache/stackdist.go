package cache

// StackSim is an all-associativity stack-distance simulator in the
// style of Mattson et al. (1970) and Hill & Smith (1989): for a fixed
// number of sets and block size, one pass over the address stream
// yields hit counts for *every* associativity simultaneously, because
// under LRU a reference hits in an A-way cache iff its depth in the
// per-set LRU stack is < A (stack inclusion property).
type StackSim struct {
	sets     int64
	blkShift uint

	stacks [][]int64 // per-set LRU stacks, MRU first (unbounded)
	// DepthHist[d] counts references found at stack depth d (0-based);
	// references to blocks never seen before are counted in ColdMisses.
	DepthHist  []int64
	ColdMisses int64
	Accesses   int64
}

// NewStackSim builds a stack simulator for the given set count and
// block size (both powers of two).
func NewStackSim(sets int64, blockBytes int64) *StackSim {
	return &StackSim{
		sets:     sets,
		blkShift: log2(blockBytes),
		stacks:   make([][]int64, sets),
	}
}

// Access records a reference to byteAddr.
func (s *StackSim) Access(byteAddr int64) {
	s.Accesses++
	tag := byteAddr >> s.blkShift
	set := tag & (s.sets - 1)
	st := s.stacks[set]
	for i, t := range st {
		if t == tag {
			if i >= len(s.DepthHist) {
				grown := make([]int64, i+1)
				copy(grown, s.DepthHist)
				s.DepthHist = grown
			}
			s.DepthHist[i]++
			copy(st[1:i+1], st[0:i])
			st[0] = tag
			return
		}
	}
	s.ColdMisses++
	s.stacks[set] = append(st, 0)
	st = s.stacks[set]
	copy(st[1:], st[0:len(st)-1])
	st[0] = tag
}

// MissesFor returns the number of misses the stream would incur in an
// LRU cache with this simulator's set count and the given associativity.
func (s *StackSim) MissesFor(assoc int) int64 {
	misses := s.ColdMisses
	for d := assoc; d < len(s.DepthHist); d++ {
		misses += s.DepthHist[d]
	}
	return misses
}

// HitsFor returns hits for the given associativity.
func (s *StackSim) HitsFor(assoc int) int64 {
	return s.Accesses - s.MissesFor(assoc)
}
