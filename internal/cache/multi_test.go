package cache

import (
	"math/rand"
	"testing"

	"repro/internal/trace"
)

// table2L2s returns the eight Table 2 L2 geometries (4 sizes × 2
// associativities, 64 B blocks).
func table2L2s() []Config {
	var out []Config
	for _, sizeKB := range []int64{128, 256, 512, 1024} {
		for _, ways := range []int{8, 16} {
			out = append(out, Config{Name: "l2", SizeBytes: sizeKB * 1024, Ways: ways, BlockBytes: 64})
		}
	}
	return out
}

func testFront() HierarchyConfig {
	return HierarchyConfig{
		IL1:         Config{Name: "il1", SizeBytes: 2048, Ways: 2, BlockBytes: 64},
		DL1:         Config{Name: "dl1", SizeBytes: 2048, Ways: 2, BlockBytes: 64},
		ITLBEntries: 4, DTLBEntries: 4, PageBytes: 4096,
	}
}

// randTrace synthesizes a dynamic instruction stream with clustered,
// reused addresses so that all of L1 hits, L2 hits, L2 misses, dirty
// evictions and TLB misses occur.
func randTrace(rng *rand.Rand, n int) []trace.DynInst {
	tr := make([]trace.DynInst, n)
	pc := int64(0)
	for i := range tr {
		d := &tr[i]
		d.Seq = int64(i)
		d.PC = pc
		switch rng.Intn(8) {
		case 0: // jump to a random region: spreads the I-stream
			pc = int64(rng.Intn(8)) * 512
		default:
			pc++
		}
		switch rng.Intn(4) {
		case 0:
			d.IsLoad = true
			d.EffAddr = int64(rng.Intn(6000)) * 16 // word addresses, 64 B blocks collide
		case 1:
			d.IsStore = true
			d.EffAddr = int64(rng.Intn(6000)) * 16
		}
	}
	return tr
}

// TestL2SpaceSimMatchesHierarchy is the tentpole equivalence property:
// for every Table 2 L2 geometry, the single-pass engine must
// reconstruct the exact Stats a dedicated Hierarchy replay collects —
// including the load/store miss split and dirty writeback counts.
func TestL2SpaceSimMatchesHierarchy(t *testing.T) {
	front := testFront()
	l2s := table2L2s()
	// A smaller L2 set than Table 2 exercises capacity pressure harder.
	l2s = append(l2s,
		Config{Name: "l2", SizeBytes: 16 * 1024, Ways: 8, BlockBytes: 64},
		Config{Name: "l2", SizeBytes: 32 * 1024, Ways: 16, BlockBytes: 64},
		Config{Name: "l2", SizeBytes: 8 * 1024, Ways: 1, BlockBytes: 64},
	)
	for _, seed := range []int64{1, 7, 42} {
		tr := randTrace(rand.New(rand.NewSource(seed)), 60000)
		eng, err := NewL2SpaceSim(front, l2s)
		if err != nil {
			t.Fatal(err)
		}
		for i := range tr {
			eng.Consume(&tr[i])
		}
		for _, l2 := range l2s {
			hcfg := front
			hcfg.L2 = l2
			h := MustNewHierarchy(hcfg)
			col := NewCollector(h)
			for i := range tr {
				col.Consume(&tr[i])
			}
			got, err := eng.StatsFor(l2)
			if err != nil {
				t.Fatal(err)
			}
			if got != col.Stats() {
				t.Errorf("seed %d, %s: single-pass stats diverge\n got  %+v\n want %+v",
					seed, l2, got, col.Stats())
			}
		}
	}
}

// TestWBStackSimMatchesExactCaches extends the classic stack-distance
// equivalence to the class/writeback-aware simulator: per-class miss
// counts and writeback counts must match real write-back LRU caches at
// every associativity.
func TestWBStackSimMatchesExactCaches(t *testing.T) {
	const (
		sets  = 16
		block = 64
	)
	type shadow struct {
		c      *Cache
		wb     int64
		misses [NumStreamClasses]int64
	}
	rng := rand.New(rand.NewSource(99))
	ss := NewWBStackSim(sets, block)
	shadows := map[int]*shadow{}
	for _, ways := range []int{1, 2, 4, 8, 16} {
		shadows[ways] = &shadow{c: MustNew(Config{
			Name: "t", SizeBytes: sets * int64(ways) * block, Ways: ways, BlockBytes: block,
		})}
	}
	for i := 0; i < 40000; i++ {
		addr := int64(rng.Intn(500)) * block / 2
		class := StreamClass(rng.Intn(int(NumStreamClasses)))
		write := class == StreamStore || class == StreamWriteback
		ss.Access(addr, class, write)
		for _, sh := range shadows {
			hit, wb, _ := sh.c.Access(addr, write)
			if !hit {
				sh.misses[class]++
			}
			if wb {
				sh.wb++
			}
		}
	}
	for ways, sh := range shadows {
		for c := StreamClass(0); c < NumStreamClasses; c++ {
			if got, want := ss.ClassMisses(c, ways), sh.misses[c]; got != want {
				t.Errorf("assoc %d class %d: stack misses %d, exact %d", ways, c, got, want)
			}
		}
		if got := ss.MissesFor(ways); got != sh.c.Misses {
			t.Errorf("assoc %d: total stack misses %d, exact %d", ways, got, sh.c.Misses)
		}
		if got, want := ss.Writebacks(ways), sh.wb; got != want {
			t.Errorf("assoc %d: stack writebacks %d, exact %d", ways, got, want)
		}
	}
}

func TestL2SpaceSimRejectsBadInput(t *testing.T) {
	front := testFront()
	if _, err := NewL2SpaceSim(front, nil); err == nil {
		t.Error("empty L2 set accepted")
	}
	mixed := []Config{
		{Name: "a", SizeBytes: 128 * 1024, Ways: 8, BlockBytes: 64},
		{Name: "b", SizeBytes: 128 * 1024, Ways: 8, BlockBytes: 32},
	}
	if _, err := NewL2SpaceSim(front, mixed); err == nil {
		t.Error("mixed block sizes accepted")
	}
	eng, err := NewL2SpaceSim(front, mixed[:1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.StatsFor(Config{Name: "c", SizeBytes: 64 * 1024, Ways: 1, BlockBytes: 64}); err == nil {
		t.Error("unregistered set count accepted")
	}
	if _, err := eng.StatsFor(mixed[1]); err == nil {
		t.Error("wrong block size accepted")
	}
}

// rawHierarchy replays the seed's AccessI/AccessD sequence with bare
// Cache/TLB components — no same-block fast path — so the fast-pathed
// Hierarchy has an independent reference.
type rawHierarchy struct {
	il1, dl1, l2 *Cache
	itlb, dtlb   *TLB
	s            Stats
}

func newRawHierarchy(cfg HierarchyConfig) *rawHierarchy {
	return &rawHierarchy{
		il1:  MustNew(cfg.IL1),
		dl1:  MustNew(cfg.DL1),
		l2:   MustNew(cfg.L2),
		itlb: MustNewTLB(cfg.ITLBEntries, cfg.PageBytes),
		dtlb: MustNewTLB(cfg.DTLBEntries, cfg.PageBytes),
	}
}

func (h *rawHierarchy) consume(d *trace.DynInst) {
	byteAddr := d.PC * InstrBytes
	if !h.itlb.Access(byteAddr) {
		h.s.ITLBMisses++
	}
	h.s.IL1Accesses++
	if hit, _, _ := h.il1.Access(byteAddr, false); !hit {
		h.s.IL1Misses++
		l2hit, wb, _ := h.l2.Access(byteAddr, false)
		if wb {
			h.s.Writebacks++
		}
		if !l2hit {
			h.s.IL2Misses++
		}
	}
	if !d.IsLoad && !d.IsStore {
		return
	}
	write := d.IsStore
	byteAddr = d.EffAddr * WordBytes
	if !h.dtlb.Access(byteAddr) {
		h.s.DTLBMisses++
	}
	h.s.DL1Accesses++
	hit, wb1, victim := h.dl1.Access(byteAddr, write)
	if wb1 {
		if _, wb2, _ := h.l2.Access(victim, true); wb2 {
			h.s.Writebacks++
		}
	}
	if !hit {
		h.s.DL1Misses++
		if !write {
			h.s.DL1LoadMisses++
		}
		l2hit, wb, _ := h.l2.Access(byteAddr, write)
		if wb {
			h.s.Writebacks++
		}
		if !l2hit {
			h.s.DL2Misses++
			if !write {
				h.s.DL2LoadMisses++
			}
		}
	}
}

// TestHierarchyFastPathExact pins the same-block fast path: Hierarchy
// must collect statistics identical to a bare-component replay with no
// fast path, on streams dense in same-block repeats.
func TestHierarchyFastPathExact(t *testing.T) {
	cfg := testFront()
	cfg.L2 = Config{Name: "l2", SizeBytes: 16 * 1024, Ways: 4, BlockBytes: 64}
	for _, seed := range []int64{3, 11} {
		rng := rand.New(rand.NewSource(seed))
		tr := make([]trace.DynInst, 80000)
		pc := int64(0)
		addr := int64(0)
		for i := range tr {
			d := &tr[i]
			d.PC = pc
			if rng.Intn(12) == 0 {
				pc = int64(rng.Intn(4096)) // jump far: new block, maybe new page
			} else {
				pc++ // sequential: same-block repeats dominate
			}
			switch rng.Intn(5) {
			case 0, 1:
				d.IsLoad = true
			case 2:
				d.IsStore = true
			default:
				continue
			}
			if rng.Intn(3) > 0 {
				addr++ // walk: same-block repeats with read/write mixes
			} else {
				addr = int64(rng.Intn(5000)) * 16
			}
			d.EffAddr = addr
		}
		h := MustNewHierarchy(cfg)
		raw := newRawHierarchy(cfg)
		for i := range tr {
			d := &tr[i]
			h.AccessI(d.PC)
			if d.IsLoad {
				h.AccessD(d.EffAddr, false)
			} else if d.IsStore {
				h.AccessD(d.EffAddr, true)
			}
			raw.consume(d)
		}
		if h.S != raw.s {
			t.Errorf("seed %d: fast-path stats diverge\n got  %+v\n want %+v", seed, h.S, raw.s)
		}
	}
}
