package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func cfg(sizeBytes int64, ways int, block int64) Config {
	return Config{Name: "t", SizeBytes: sizeBytes, Ways: ways, BlockBytes: block}
}

func TestConfigValidate(t *testing.T) {
	good := cfg(1024, 2, 64)
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		cfg(0, 2, 64),
		cfg(1024, 0, 64),
		cfg(1024, 2, 0),
		cfg(1000, 2, 64), // size not divisible
		cfg(1024, 2, 48), // block not power of two
		cfg(64*3, 1, 64), // 3 sets, not power of two
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("invalid config %+v accepted", c)
		}
	}
	if good.Sets() != 8 {
		t.Errorf("Sets = %d, want 8", good.Sets())
	}
}

func TestDirectMappedConflicts(t *testing.T) {
	// 2 sets, direct mapped, 64 B blocks: addresses 0 and 128 conflict.
	c := MustNew(cfg(128, 1, 64))
	access := func(a int64) bool { h, _, _ := c.Access(a, false); return h }
	if access(0) {
		t.Error("cold access hit")
	}
	if !access(0) {
		t.Error("re-access missed")
	}
	if access(128) {
		t.Error("conflicting cold access hit")
	}
	if access(0) {
		t.Error("evicted block still resident")
	}
	if access(64) {
		t.Error("other set affected")
	}
	if c.Misses != 4 || c.Accesses != 5 {
		t.Errorf("misses=%d accesses=%d, want 4/5", c.Misses, c.Accesses)
	}
}

func TestLRUOrder(t *testing.T) {
	// One set, 2-way: A, B, A, C should evict B (LRU), not A.
	c := MustNew(cfg(128, 2, 64))
	addrs := map[string]int64{"A": 0, "B": 128, "C": 256}
	for _, k := range []string{"A", "B", "A", "C"} {
		c.Access(addrs[k], false)
	}
	if !c.Contains(addrs["A"]) {
		t.Error("A evicted despite being MRU")
	}
	if c.Contains(addrs["B"]) {
		t.Error("B not evicted despite being LRU")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := MustNew(cfg(64, 1, 64)) // single line
	c.Access(0, true)            // write-allocate, dirty
	_, wb, victim := c.Access(64, false)
	if !wb {
		t.Error("dirty eviction did not report writeback")
	}
	if victim != 0 {
		t.Errorf("victim address = %d, want 0", victim)
	}
	_, wb, _ = c.Access(128, false) // evicts clean block 64
	if wb {
		t.Error("clean eviction reported writeback")
	}
}

func TestContainsDoesNotTouchLRU(t *testing.T) {
	c := MustNew(cfg(128, 2, 64))
	c.Access(0, false)
	c.Access(128, false)
	// 0 is LRU; Contains must not promote it.
	if !c.Contains(0) {
		t.Fatal("Contains(0) = false")
	}
	c.Access(256, false) // evicts LRU
	if c.Contains(0) {
		t.Error("Contains promoted the probed block")
	}
}

func TestMissRateAndReset(t *testing.T) {
	c := MustNew(cfg(128, 2, 64))
	if c.MissRate() != 0 {
		t.Error("miss rate of untouched cache not 0")
	}
	c.Access(0, false)
	c.Access(0, false)
	if c.MissRate() != 0.5 {
		t.Errorf("miss rate = %f, want 0.5", c.MissRate())
	}
	c.Reset()
	if c.Accesses != 0 || c.Misses != 0 || c.Contains(0) {
		t.Error("Reset did not clear state")
	}
}

func TestTLB(t *testing.T) {
	tlb := MustNewTLB(2, 4096)
	if tlb.Access(0) {
		t.Error("cold TLB access hit")
	}
	if !tlb.Access(100) { // same page
		t.Error("same-page access missed")
	}
	tlb.Access(4096) // second page
	tlb.Access(8192) // third page evicts page 0 (LRU)
	if tlb.Access(0) {
		t.Error("evicted page still mapped")
	}
	if tlb.MissRate() <= 0 {
		t.Error("miss rate not positive")
	}
	tlb.Reset()
	if tlb.Accesses != 0 || tlb.Access(0) {
		t.Error("Reset did not clear TLB")
	}
}

func TestTLBRejectsBadConfig(t *testing.T) {
	if _, err := NewTLB(0, 4096); err == nil {
		t.Error("zero-entry TLB accepted")
	}
	if _, err := NewTLB(4, 1000); err == nil {
		t.Error("non-power-of-two page accepted")
	}
}

// TestStackSimMatchesExactCaches is the key single-pass property: for a
// fixed set count and block size, one stack-distance pass must predict
// the exact miss count of real LRU caches at every associativity.
func TestStackSimMatchesExactCaches(t *testing.T) {
	const (
		sets  = 16
		block = 64
	)
	rng := rand.New(rand.NewSource(42))
	ss := NewStackSim(sets, block)
	caches := map[int]*Cache{}
	for _, ways := range []int{1, 2, 4, 8} {
		caches[ways] = MustNew(cfg(sets*int64(ways)*block, ways, block))
	}
	for i := 0; i < 20000; i++ {
		addr := int64(rng.Intn(400)) * block / 2 // overlapping, reused blocks
		ss.Access(addr)
		for _, c := range caches {
			c.Access(addr, false)
		}
	}
	for ways, c := range caches {
		if got, want := ss.MissesFor(ways), c.Misses; got != want {
			t.Errorf("assoc %d: stack-distance misses %d, exact %d", ways, got, want)
		}
		if got := ss.HitsFor(ways); got != ss.Accesses-c.Misses {
			t.Errorf("assoc %d: hits %d inconsistent", ways, got)
		}
	}
}

func TestStackSimMonotoneInAssociativity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ss := NewStackSim(4, 64)
		for i := 0; i < 500; i++ {
			ss.Access(int64(rng.Intn(64)) * 64)
		}
		prev := ss.MissesFor(1)
		for a := 2; a <= 16; a++ {
			m := ss.MissesFor(a)
			if m > prev {
				return false // more ways can never mean more misses (LRU inclusion)
			}
			prev = m
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestHierarchyCounts(t *testing.T) {
	h := MustNewHierarchy(HierarchyConfig{
		IL1:         cfg(128, 1, 64),
		DL1:         cfg(128, 1, 64),
		L2:          cfg(1024, 2, 64),
		ITLBEntries: 2, DTLBEntries: 2, PageBytes: 4096,
	})
	// Data access to word 0: DL1 miss, L2 miss, DTLB miss.
	r := h.AccessD(0, false)
	if r.L1Hit || r.L2Hit || r.TLBHit {
		t.Errorf("cold access results: %+v", r)
	}
	// Re-access: all hits.
	r = h.AccessD(1, false) // same 64 B block (words 4 B)
	if !r.L1Hit || !r.TLBHit {
		t.Errorf("warm access results: %+v", r)
	}
	s := h.S
	if s.DL1Accesses != 2 || s.DL1Misses != 1 || s.DL2Misses != 1 || s.DTLBMisses != 1 {
		t.Errorf("stats: %+v", s)
	}
	if s.DL1LoadMisses != 1 {
		t.Errorf("load-miss split: %+v", s)
	}
	// Instruction fetch.
	h.AccessI(0)
	h.AccessI(1)
	if h.S.IL1Accesses != 2 || h.S.IL1Misses != 1 {
		t.Errorf("I-side stats: %+v", h.S)
	}
	h.Reset()
	if h.S != (Stats{}) {
		t.Error("Reset did not clear stats")
	}
}

func TestHierarchyL1MissL2Hit(t *testing.T) {
	// DL1 is tiny (1 line), L2 holds both blocks: the second round of
	// accesses must miss L1 but hit L2.
	h := MustNewHierarchy(HierarchyConfig{
		IL1:         cfg(64, 1, 64),
		DL1:         cfg(64, 1, 64),
		L2:          cfg(4096, 4, 64),
		ITLBEntries: 8, DTLBEntries: 8, PageBytes: 4096,
	})
	h.AccessD(0, false)  // cold: miss both
	h.AccessD(16, false) // conflicting block (64 B apart = word 16): evicts
	r := h.AccessD(0, false)
	if r.L1Hit {
		t.Error("expected L1 miss")
	}
	if !r.L2Hit {
		t.Error("expected L2 hit")
	}
}

func TestWritebackGoesToVictimLine(t *testing.T) {
	// Single-line L1; write block A, then read conflicting block B.
	// The dirty writeback must touch A's line in L2, making A an L2
	// hit later even if it was never explicitly filled... it was filled
	// on the initial miss; instead verify Writebacks counting only.
	h := MustNewHierarchy(HierarchyConfig{
		IL1:         cfg(64, 1, 64),
		DL1:         cfg(64, 1, 64),
		L2:          cfg(128, 1, 64), // 2 sets direct-mapped
		ITLBEntries: 8, DTLBEntries: 8, PageBytes: 4096,
	})
	h.AccessD(0, true)   // dirty in L1
	h.AccessD(16, false) // evicts dirty block 0 -> writeback into L2 set 0
	// Block 0 must still be resident in L2 (refreshed by writeback).
	if !h.L2c.Contains(0) {
		t.Error("victim block lost from L2 after writeback")
	}
}

func TestMultiCollectorMatchesIndividual(t *testing.T) {
	cfgs := []HierarchyConfig{
		{IL1: cfg(128, 1, 64), DL1: cfg(128, 1, 64), L2: cfg(1024, 2, 64),
			ITLBEntries: 2, DTLBEntries: 2, PageBytes: 4096},
		{IL1: cfg(256, 2, 64), DL1: cfg(256, 2, 64), L2: cfg(2048, 2, 64),
			ITLBEntries: 4, DTLBEntries: 4, PageBytes: 4096},
	}
	mc, err := NewMultiCollector(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	ind := []*Collector{
		NewCollector(MustNewHierarchy(cfgs[0])),
		NewCollector(MustNewHierarchy(cfgs[1])),
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		d := randomMemInst(rng, int64(i))
		mc.Consume(&d)
		for _, c := range ind {
			c.Consume(&d)
		}
	}
	for i, s := range mc.Stats() {
		if s != ind[i].Stats() {
			t.Errorf("config %d: multi %+v != individual %+v", i, s, ind[i].Stats())
		}
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	if _, err := New(cfg(100, 3, 64)); err == nil {
		t.Error("invalid cache accepted")
	}
	if _, err := NewHierarchy(HierarchyConfig{}); err == nil {
		t.Error("zero hierarchy accepted")
	}
	if _, err := NewMultiCollector([]HierarchyConfig{{}}); err == nil {
		t.Error("multi-collector with bad config accepted")
	}
}

// randomMemInst builds a plausible dynamic instruction for collector
// tests: sequential PCs, mixed loads/stores over a modest footprint.
func randomMemInst(rng *rand.Rand, seq int64) trace.DynInst {
	d := trace.DynInst{Seq: seq, PC: seq % 500}
	switch rng.Intn(3) {
	case 0:
		d.IsLoad = true
		d.EffAddr = int64(rng.Intn(3000))
	case 1:
		d.IsStore = true
		d.EffAddr = int64(rng.Intn(3000))
	}
	return d
}
