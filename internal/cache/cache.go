// Package cache implements the memory-hierarchy substrate: LRU
// set-associative caches, a two-level hierarchy with TLBs, a
// multi-configuration single-pass simulator, and a stack-distance
// (all-associativity) simulator in the style of Mattson et al. and
// Hill & Smith — the single-pass techniques the paper cites for
// collecting cache statistics for many configurations in one run.
package cache

import "fmt"

// Config describes one cache.
type Config struct {
	Name       string
	SizeBytes  int64
	Ways       int
	BlockBytes int64
}

// Sets returns the number of sets.
func (c Config) Sets() int64 {
	return c.SizeBytes / (int64(c.Ways) * c.BlockBytes)
}

// Validate checks structural sanity.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.BlockBytes <= 0 {
		return fmt.Errorf("cache %q: non-positive geometry %+v", c.Name, c)
	}
	if c.SizeBytes%(int64(c.Ways)*c.BlockBytes) != 0 {
		return fmt.Errorf("cache %q: size %d not divisible by ways*block (%d*%d)",
			c.Name, c.SizeBytes, c.Ways, c.BlockBytes)
	}
	s := c.Sets()
	if s&(s-1) != 0 {
		return fmt.Errorf("cache %q: %d sets not a power of two", c.Name, s)
	}
	if c.BlockBytes&(c.BlockBytes-1) != 0 {
		return fmt.Errorf("cache %q: block size %d not a power of two", c.Name, c.BlockBytes)
	}
	return nil
}

func (c Config) String() string {
	return fmt.Sprintf("%s %dKB/%dway/%dB", c.Name, c.SizeBytes/1024, c.Ways, c.BlockBytes)
}

// Cache is an LRU set-associative cache. Tags are block addresses; the
// cache stores no data (timing/statistics simulation only).
type Cache struct {
	cfg      Config
	sets     int64
	blkShift uint
	// lines[set*ways+way]: tag, ordered most- to least-recently used.
	lines []line

	Accesses int64
	Misses   int64
}

type line struct {
	tag   int64
	valid bool
	dirty bool
}

// New builds a cache; the configuration must be valid.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cache{cfg: cfg, sets: cfg.Sets(), blkShift: log2(cfg.BlockBytes)}
	c.lines = make([]line, c.sets*int64(cfg.Ways))
	return c, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// BlockAddr returns the block address of a byte address.
func (c *Cache) BlockAddr(byteAddr int64) int64 { return byteAddr >> c.blkShift }

// Access looks up the block containing byteAddr, allocating on miss
// (write-allocate). It returns true on hit. If write is set and the
// block is resident or allocated, it is marked dirty. On a miss that
// evicts a dirty block, writeback is true and victimAddr is the byte
// address of the evicted block (for write-back traffic to the next
// level).
func (c *Cache) Access(byteAddr int64, write bool) (hit, writeback bool, victimAddr int64) {
	c.Accesses++
	tag := byteAddr >> c.blkShift
	set := tag & (c.sets - 1)
	base := set * int64(c.cfg.Ways)
	ways := c.cfg.Ways
	ls := c.lines[base : base+int64(ways)]

	for i := 0; i < ways; i++ {
		if ls[i].valid && ls[i].tag == tag {
			// Move to MRU position.
			hitLine := ls[i]
			copy(ls[1:i+1], ls[0:i])
			if write {
				hitLine.dirty = true
			}
			ls[0] = hitLine
			return true, false, 0
		}
	}
	c.Misses++
	victim := ls[ways-1]
	writeback = victim.valid && victim.dirty
	copy(ls[1:], ls[0:ways-1])
	ls[0] = line{tag: tag, valid: true, dirty: write}
	return false, writeback, victim.tag << c.blkShift
}

// Contains reports whether the block holding byteAddr is resident,
// without touching LRU state.
func (c *Cache) Contains(byteAddr int64) bool {
	tag := byteAddr >> c.blkShift
	set := tag & (c.sets - 1)
	base := set * int64(c.cfg.Ways)
	for i := 0; i < c.cfg.Ways; i++ {
		if c.lines[base+int64(i)].valid && c.lines[base+int64(i)].tag == tag {
			return true
		}
	}
	return false
}

// MissRate returns misses/accesses (0 if no accesses).
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	c.Accesses, c.Misses = 0, 0
}

// TLB is a fully-associative LRU translation buffer.
type TLB struct {
	Entries   int
	PageBytes int64

	pages     []int64 // MRU..LRU page numbers
	pageShift uint

	Accesses int64
	Misses   int64
}

// NewTLB builds a TLB with the given entry count and page size (both
// must be positive; page size a power of two).
func NewTLB(entries int, pageBytes int64) (*TLB, error) {
	if entries <= 0 {
		return nil, fmt.Errorf("tlb: non-positive entries %d", entries)
	}
	if pageBytes <= 0 || pageBytes&(pageBytes-1) != 0 {
		return nil, fmt.Errorf("tlb: page size %d not a positive power of two", pageBytes)
	}
	return &TLB{Entries: entries, PageBytes: pageBytes,
		pages: make([]int64, 0, entries), pageShift: log2(pageBytes)}, nil
}

// MustNewTLB is NewTLB that panics on error.
func MustNewTLB(entries int, pageBytes int64) *TLB {
	t, err := NewTLB(entries, pageBytes)
	if err != nil {
		panic(err)
	}
	return t
}

// Access translates byteAddr, returning true on TLB hit.
func (t *TLB) Access(byteAddr int64) bool {
	t.Accesses++
	page := byteAddr >> t.pageShift
	for i, p := range t.pages {
		if p == page {
			copy(t.pages[1:i+1], t.pages[0:i])
			t.pages[0] = page
			return true
		}
	}
	t.Misses++
	if len(t.pages) < t.Entries {
		t.pages = append(t.pages, 0)
	}
	copy(t.pages[1:], t.pages[0:len(t.pages)-1])
	t.pages[0] = page
	return false
}

// MissRate returns misses/accesses (0 if no accesses).
func (t *TLB) MissRate() float64 {
	if t.Accesses == 0 {
		return 0
	}
	return float64(t.Misses) / float64(t.Accesses)
}

// Reset clears contents and statistics.
func (t *TLB) Reset() {
	t.pages = t.pages[:0]
	t.Accesses, t.Misses = 0, 0
}

func log2(v int64) uint {
	var s uint
	for v > 1 {
		v >>= 1
		s++
	}
	return s
}
