package cache

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// L2SpaceSim simulates the fixed part of a hierarchy (split L1s and
// TLBs) exactly once and, behind it, every candidate L2 geometry at
// the same time: the L2's input stream depends only on the fixed L1s,
// so one WBStackSim per distinct L2 set count recovers the exact
// per-configuration miss and writeback counts for every (size, ways)
// pair via the stack-inclusion property. This is the single-pass
// engine that collapses the per-configuration trace replays of the
// design-space exploration into one traversal.
type L2SpaceSim struct {
	il1, dl1   *Cache
	itlb, dtlb *TLB

	fixed   Stats // counters independent of the L2 geometry
	l2Block int64
	sims    []*WBStackSim // one per distinct L2 set count
	bySets  map[int64]int // set count -> index into sims

	// Annotation-plane recording (RecordPlanes): per-access stack
	// depths of the current instruction's L2 accesses, and one
	// byte-plane builder per recorded geometry.
	rec     []planeGeom
	iDepths []int32 // depth per sims[k] of this instruction's I-side L2 access
	dDepths []int32 // ... and of its demand D-side L2 access

	// iStalls counts instructions whose fetch missed a TLB or L1 (any
	// non-zero I-side event class). The detailed simulator re-accesses
	// the hierarchy when fetch resumes after such a stall — a
	// guaranteed hit that bumps only IL1Accesses — so reconstructing
	// its exact Stats needs this count (see IStallEvents).
	iStalls int64

	// Same-block fast path, mirroring Hierarchy's: re-touching the MRU
	// line and MRU page changes no replacement state and cannot reach
	// the L2, so an all-hit repeat access is a pure counter bump.
	warmOK   bool
	iWarm    bool
	lastITag int64
	dWarm    bool
	dDirty   bool
	lastDTag int64
}

// NewL2SpaceSim builds the engine for the fixed front of base (base's
// own L2 is ignored) and the candidate L2 configurations l2s, which
// must all share one block size.
func NewL2SpaceSim(base HierarchyConfig, l2s []Config) (*L2SpaceSim, error) {
	if len(l2s) == 0 {
		return nil, fmt.Errorf("cache: L2SpaceSim needs at least one L2 configuration")
	}
	if base.ITLBEntries <= 0 || base.DTLBEntries <= 0 {
		return nil, fmt.Errorf("cache: L2SpaceSim: non-positive TLB entries")
	}
	s := &L2SpaceSim{l2Block: l2s[0].BlockBytes, bySets: make(map[int64]int)}
	var err error
	if s.il1, err = New(base.IL1); err != nil {
		return nil, err
	}
	if s.dl1, err = New(base.DL1); err != nil {
		return nil, err
	}
	if s.itlb, err = NewTLB(base.ITLBEntries, base.PageBytes); err != nil {
		return nil, err
	}
	if s.dtlb, err = NewTLB(base.DTLBEntries, base.PageBytes); err != nil {
		return nil, err
	}
	setCounts := map[int64]bool{}
	for _, l2 := range l2s {
		if err := l2.Validate(); err != nil {
			return nil, err
		}
		if l2.BlockBytes != s.l2Block {
			return nil, fmt.Errorf("cache: L2SpaceSim: mixed L2 block sizes %d and %d",
				s.l2Block, l2.BlockBytes)
		}
		setCounts[l2.Sets()] = true
	}
	// Deterministic simulator order (stats are order-independent, but
	// determinism keeps memory layout and profiles stable).
	ordered := make([]int64, 0, len(setCounts))
	for sc := range setCounts {
		ordered = append(ordered, sc)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	for _, sc := range ordered {
		s.bySets[sc] = len(s.sims)
		s.sims = append(s.sims, NewWBStackSim(sc, s.l2Block))
	}
	s.warmOK = base.IL1.BlockBytes <= base.PageBytes && base.DL1.BlockBytes <= base.PageBytes
	return s, nil
}

func (s *L2SpaceSim) l2Access(byteAddr int64, class StreamClass, write bool) {
	for _, sim := range s.sims {
		sim.Access(byteAddr, class, write)
	}
}

// l2AccessDepths is l2Access recording each simulator's stack depth
// into depths (annotation mode).
func (s *L2SpaceSim) l2AccessDepths(byteAddr int64, class StreamClass, write bool, depths []int32) {
	for k, sim := range s.sims {
		depths[k] = int32(sim.Access(byteAddr, class, write))
	}
}

// planeGeom is one recorded L2 geometry: which shared simulator
// resolves it and at what associativity, plus the plane being built.
type planeGeom struct {
	sim  int // index into sims
	ways int32
	b    *trace.BytePlaneBuilder
}

// RecordPlanes switches the engine into annotation mode: from now on
// every consumed instruction appends one memory-event class byte (see
// trace.Ann* bits) to a plane per candidate L2 geometry. Must be
// called before the first Consume. The front outcomes (TLB and L1
// bits) are shared across geometries; the per-geometry L2 bits are
// decided by the reference's stack depth in the geometry's set-count
// simulator (hit iff depth < ways).
func (s *L2SpaceSim) RecordPlanes(l2s []Config) error {
	type key struct {
		sim  int
		ways int32
	}
	seen := make(map[key]bool)
	for _, l2 := range l2s {
		if err := l2.Validate(); err != nil {
			return err
		}
		if l2.BlockBytes != s.l2Block {
			return fmt.Errorf("cache: L2SpaceSim: block size %d not simulated (engine uses %d)",
				l2.BlockBytes, s.l2Block)
		}
		k, ok := s.bySets[l2.Sets()]
		if !ok {
			return fmt.Errorf("cache: L2SpaceSim: set count %d not simulated", l2.Sets())
		}
		id := key{sim: k, ways: int32(l2.Ways)}
		if seen[id] {
			continue
		}
		seen[id] = true
		s.rec = append(s.rec, planeGeom{sim: k, ways: int32(l2.Ways), b: trace.NewBytePlaneBuilder()})
	}
	s.iDepths = make([]int32, len(s.sims))
	s.dDepths = make([]int32, len(s.sims))
	return nil
}

// PlaneFor returns the recorded annotation plane of one L2 geometry.
func (s *L2SpaceSim) PlaneFor(l2 Config) (*trace.BytePlane, error) {
	if err := l2.Validate(); err != nil {
		return nil, err
	}
	k, ok := s.bySets[l2.Sets()]
	if !ok {
		return nil, fmt.Errorf("cache: L2SpaceSim: set count %d not simulated", l2.Sets())
	}
	for _, g := range s.rec {
		if g.sim == k && g.ways == int32(l2.Ways) {
			return g.b.Plane(), nil
		}
	}
	return nil, fmt.Errorf("cache: L2SpaceSim: geometry %dKB/%dw not recorded", l2.SizeBytes/1024, l2.Ways)
}

// Consume implements trace.Consumer, mirroring Hierarchy's access
// sequence exactly: I-fetch first, then (for loads/stores) the dirty
// L1 victim's L2 writeback, then the demand data access. In annotation
// mode it additionally appends this instruction's event-class byte to
// every recorded geometry's plane.
func (s *L2SpaceSim) Consume(d *trace.DynInst) {
	var front uint8 // shared TLB/L1 outcome bits of this instruction
	il1Miss, dl1Miss := false, false

	byteAddr := d.PC * InstrBytes
	if tag := byteAddr >> s.il1.blkShift; s.iWarm && tag == s.lastITag {
		s.fixed.IL1Accesses++
		s.il1.Accesses++
		s.itlb.Accesses++
	} else {
		tlbHit := s.itlb.Access(byteAddr)
		if !tlbHit {
			s.fixed.ITLBMisses++
			front |= trace.AnnITLBMiss
		}
		s.fixed.IL1Accesses++
		hit, _, _ := s.il1.Access(byteAddr, false)
		if !hit {
			s.fixed.IL1Misses++
			front |= trace.AnnIL1Miss
			il1Miss = true
			if s.rec != nil {
				s.l2AccessDepths(byteAddr, StreamInstr, false, s.iDepths)
			} else {
				s.l2Access(byteAddr, StreamInstr, false)
			}
		}
		s.lastITag = tag
		s.iWarm = s.warmOK && hit && tlbHit
		if front != 0 {
			s.iStalls++
		}
	}

	if d.IsLoad || d.IsStore {
		write := d.IsStore
		byteAddr = d.EffAddr * WordBytes
		if tag := byteAddr >> s.dl1.blkShift; s.dWarm && tag == s.lastDTag && (s.dDirty || !write) {
			s.fixed.DL1Accesses++
			s.dl1.Accesses++
			s.dtlb.Accesses++
		} else {
			tlbHit := s.dtlb.Access(byteAddr)
			if !tlbHit {
				s.fixed.DTLBMisses++
				front |= trace.AnnDTLBMiss
			}
			s.fixed.DL1Accesses++
			hit, wb, victim := s.dl1.Access(byteAddr, write)
			if wb {
				s.l2Access(victim, StreamWriteback, true)
			}
			if !hit {
				s.fixed.DL1Misses++
				front |= trace.AnnDL1Miss
				dl1Miss = true
				class := StreamStore
				if !write {
					s.fixed.DL1LoadMisses++
					class = StreamLoad
				}
				if s.rec != nil {
					s.l2AccessDepths(byteAddr, class, write, s.dDepths)
				} else {
					s.l2Access(byteAddr, class, write)
				}
			}
			s.lastDTag = byteAddr >> s.dl1.blkShift
			s.dWarm = s.warmOK && hit && tlbHit
			s.dDirty = write
		}
	}

	if s.rec == nil {
		return
	}
	for i := range s.rec {
		g := &s.rec[i]
		b := front
		if il1Miss && s.iDepths[g.sim] >= g.ways {
			b |= trace.AnnIL2Miss
		}
		if dl1Miss && s.dDepths[g.sim] >= g.ways {
			b |= trace.AnnDL2Miss
		}
		g.b.Append(b)
	}
}

// IStallEvents returns the number of instruction fetches that stalled
// on a TLB or L1-I miss. The detailed pipeline simulator performs one
// extra (hitting) hierarchy access per such event when fetch resumes,
// so its reported IL1Accesses exceeds the program-order count by
// exactly this number.
func (s *L2SpaceSim) IStallEvents() int64 { return s.iStalls }

// StatsFor reconstructs the full Stats a Hierarchy with the fixed
// front and the given L2 would have collected over the same stream.
func (s *L2SpaceSim) StatsFor(l2 Config) (Stats, error) {
	if err := l2.Validate(); err != nil {
		return Stats{}, err
	}
	if l2.BlockBytes != s.l2Block {
		return Stats{}, fmt.Errorf("cache: L2SpaceSim: block size %d not simulated (engine uses %d)",
			l2.BlockBytes, s.l2Block)
	}
	i, ok := s.bySets[l2.Sets()]
	if !ok {
		return Stats{}, fmt.Errorf("cache: L2SpaceSim: set count %d not simulated", l2.Sets())
	}
	sim := s.sims[i]
	out := s.fixed
	out.IL2Misses = sim.ClassMisses(StreamInstr, l2.Ways)
	out.DL2LoadMisses = sim.ClassMisses(StreamLoad, l2.Ways)
	out.DL2Misses = out.DL2LoadMisses + sim.ClassMisses(StreamStore, l2.Ways)
	out.Writebacks = sim.Writebacks(l2.Ways)
	return out, nil
}
