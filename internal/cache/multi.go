package cache

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// L2SpaceSim simulates the fixed part of a hierarchy (split L1s and
// TLBs) exactly once and, behind it, every candidate L2 geometry at
// the same time: the L2's input stream depends only on the fixed L1s,
// so one WBStackSim per distinct L2 set count recovers the exact
// per-configuration miss and writeback counts for every (size, ways)
// pair via the stack-inclusion property. This is the single-pass
// engine that collapses the per-configuration trace replays of the
// design-space exploration into one traversal.
type L2SpaceSim struct {
	il1, dl1   *Cache
	itlb, dtlb *TLB

	fixed   Stats // counters independent of the L2 geometry
	l2Block int64
	sims    []*WBStackSim // one per distinct L2 set count
	bySets  map[int64]int // set count -> index into sims

	// Same-block fast path, mirroring Hierarchy's: re-touching the MRU
	// line and MRU page changes no replacement state and cannot reach
	// the L2, so an all-hit repeat access is a pure counter bump.
	warmOK   bool
	iWarm    bool
	lastITag int64
	dWarm    bool
	dDirty   bool
	lastDTag int64
}

// NewL2SpaceSim builds the engine for the fixed front of base (base's
// own L2 is ignored) and the candidate L2 configurations l2s, which
// must all share one block size.
func NewL2SpaceSim(base HierarchyConfig, l2s []Config) (*L2SpaceSim, error) {
	if len(l2s) == 0 {
		return nil, fmt.Errorf("cache: L2SpaceSim needs at least one L2 configuration")
	}
	if base.ITLBEntries <= 0 || base.DTLBEntries <= 0 {
		return nil, fmt.Errorf("cache: L2SpaceSim: non-positive TLB entries")
	}
	s := &L2SpaceSim{l2Block: l2s[0].BlockBytes, bySets: make(map[int64]int)}
	var err error
	if s.il1, err = New(base.IL1); err != nil {
		return nil, err
	}
	if s.dl1, err = New(base.DL1); err != nil {
		return nil, err
	}
	if s.itlb, err = NewTLB(base.ITLBEntries, base.PageBytes); err != nil {
		return nil, err
	}
	if s.dtlb, err = NewTLB(base.DTLBEntries, base.PageBytes); err != nil {
		return nil, err
	}
	setCounts := map[int64]bool{}
	for _, l2 := range l2s {
		if err := l2.Validate(); err != nil {
			return nil, err
		}
		if l2.BlockBytes != s.l2Block {
			return nil, fmt.Errorf("cache: L2SpaceSim: mixed L2 block sizes %d and %d",
				s.l2Block, l2.BlockBytes)
		}
		setCounts[l2.Sets()] = true
	}
	// Deterministic simulator order (stats are order-independent, but
	// determinism keeps memory layout and profiles stable).
	ordered := make([]int64, 0, len(setCounts))
	for sc := range setCounts {
		ordered = append(ordered, sc)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	for _, sc := range ordered {
		s.bySets[sc] = len(s.sims)
		s.sims = append(s.sims, NewWBStackSim(sc, s.l2Block))
	}
	s.warmOK = base.IL1.BlockBytes <= base.PageBytes && base.DL1.BlockBytes <= base.PageBytes
	return s, nil
}

func (s *L2SpaceSim) l2Access(byteAddr int64, class StreamClass, write bool) {
	for _, sim := range s.sims {
		sim.Access(byteAddr, class, write)
	}
}

// Consume implements trace.Consumer, mirroring Hierarchy's access
// sequence exactly: I-fetch first, then (for loads/stores) the dirty
// L1 victim's L2 writeback, then the demand data access.
func (s *L2SpaceSim) Consume(d *trace.DynInst) {
	byteAddr := d.PC * InstrBytes
	if tag := byteAddr >> s.il1.blkShift; s.iWarm && tag == s.lastITag {
		s.fixed.IL1Accesses++
		s.il1.Accesses++
		s.itlb.Accesses++
	} else {
		tlbHit := s.itlb.Access(byteAddr)
		if !tlbHit {
			s.fixed.ITLBMisses++
		}
		s.fixed.IL1Accesses++
		hit, _, _ := s.il1.Access(byteAddr, false)
		if !hit {
			s.fixed.IL1Misses++
			s.l2Access(byteAddr, StreamInstr, false)
		}
		s.lastITag = tag
		s.iWarm = s.warmOK && hit && tlbHit
	}

	if !d.IsLoad && !d.IsStore {
		return
	}
	write := d.IsStore
	byteAddr = d.EffAddr * WordBytes
	if tag := byteAddr >> s.dl1.blkShift; s.dWarm && tag == s.lastDTag && (s.dDirty || !write) {
		s.fixed.DL1Accesses++
		s.dl1.Accesses++
		s.dtlb.Accesses++
		return
	}
	tlbHit := s.dtlb.Access(byteAddr)
	if !tlbHit {
		s.fixed.DTLBMisses++
	}
	s.fixed.DL1Accesses++
	hit, wb, victim := s.dl1.Access(byteAddr, write)
	if wb {
		s.l2Access(victim, StreamWriteback, true)
	}
	if !hit {
		s.fixed.DL1Misses++
		class := StreamStore
		if !write {
			s.fixed.DL1LoadMisses++
			class = StreamLoad
		}
		s.l2Access(byteAddr, class, write)
	}
	s.lastDTag = byteAddr >> s.dl1.blkShift
	s.dWarm = s.warmOK && hit && tlbHit
	s.dDirty = write
}

// StatsFor reconstructs the full Stats a Hierarchy with the fixed
// front and the given L2 would have collected over the same stream.
func (s *L2SpaceSim) StatsFor(l2 Config) (Stats, error) {
	if err := l2.Validate(); err != nil {
		return Stats{}, err
	}
	if l2.BlockBytes != s.l2Block {
		return Stats{}, fmt.Errorf("cache: L2SpaceSim: block size %d not simulated (engine uses %d)",
			l2.BlockBytes, s.l2Block)
	}
	i, ok := s.bySets[l2.Sets()]
	if !ok {
		return Stats{}, fmt.Errorf("cache: L2SpaceSim: set count %d not simulated", l2.Sets())
	}
	sim := s.sims[i]
	out := s.fixed
	out.IL2Misses = sim.ClassMisses(StreamInstr, l2.Ways)
	out.DL2LoadMisses = sim.ClassMisses(StreamLoad, l2.Ways)
	out.DL2Misses = out.DL2LoadMisses + sim.ClassMisses(StreamStore, l2.Ways)
	out.Writebacks = sim.Writebacks(l2.Ways)
	return out, nil
}
