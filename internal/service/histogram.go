package service

import (
	"sort"
	"sync/atomic"
	"time"
)

// latencyBoundsSeconds are the fixed upper bounds of the per-endpoint
// latency histogram buckets (le semantics, Prometheus-style), spanning
// 500µs to 10s — the service's whole range from cached predict to cold
// profiling. A fixed layout keeps observation O(log buckets) with zero
// allocation and makes snapshots from different nodes directly
// addable.
var latencyBoundsSeconds = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// numLatencyBuckets is len(latencyBoundsSeconds)+1: the last bucket is
// the +Inf overflow.
const numLatencyBuckets = 15

// histogram is a cheap fixed-bucket latency histogram, safe for
// concurrent observation.
type histogram struct {
	counts   [numLatencyBuckets]atomic.Int64
	sumNanos atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	sec := d.Seconds()
	i := sort.SearchFloat64s(latencyBoundsSeconds, sec)
	h.counts[i].Add(1)
	h.sumNanos.Add(int64(d))
}

// HistogramJSON is one endpoint's latency distribution in /metrics.
// Percentiles are bucket-upper-bound estimates: the true quantile is
// at most the reported value (the overflow bucket reports the last
// finite bound). They exist so a load test's client-side percentiles
// can be cross-checked server-side without scraping raw buckets.
type HistogramJSON struct {
	Count           int64     `json:"count"`
	SumSeconds      float64   `json:"sum_seconds"`
	BucketLeSeconds []float64 `json:"bucket_le_seconds"`
	Counts          []int64   `json:"counts"`
	P50Seconds      float64   `json:"p50_seconds"`
	P95Seconds      float64   `json:"p95_seconds"`
	P99Seconds      float64   `json:"p99_seconds"`
}

// snapshot materializes the histogram for /metrics.
func (h *histogram) snapshot() HistogramJSON {
	out := HistogramJSON{
		BucketLeSeconds: latencyBoundsSeconds,
		Counts:          make([]int64, numLatencyBuckets),
	}
	for i := range h.counts {
		out.Counts[i] = h.counts[i].Load()
		out.Count += out.Counts[i]
	}
	out.SumSeconds = float64(h.sumNanos.Load()) / 1e9
	out.P50Seconds = quantileUpperBound(out.Counts, out.Count, 0.50)
	out.P95Seconds = quantileUpperBound(out.Counts, out.Count, 0.95)
	out.P99Seconds = quantileUpperBound(out.Counts, out.Count, 0.99)
	return out
}

// quantileUpperBound returns the upper bound of the bucket containing
// the q-quantile observation (0 when the histogram is empty). The
// overflow bucket reports the largest finite bound — an understatement
// flagged by its bucket count being non-zero.
func quantileUpperBound(counts []int64, total int64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			if i < len(latencyBoundsSeconds) {
				return latencyBoundsSeconds[i]
			}
			return latencyBoundsSeconds[len(latencyBoundsSeconds)-1]
		}
	}
	return latencyBoundsSeconds[len(latencyBoundsSeconds)-1]
}
