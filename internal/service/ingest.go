package service

import (
	"context"
	"io"
	"net/http"

	"repro/internal/asm"
	"repro/internal/harness"
	"repro/internal/ingest"
	"repro/internal/program"
)

// TenantHeader names the request header carrying the submitter's
// identity. Absent means ingest.DefaultTenant: anonymous submitters
// share one quota bucket instead of minting a fresh one per request.
const TenantHeader = "X-Tenant"

// tenantOf extracts and normalizes the request's tenant identity.
func tenantOf(r *http.Request) (string, error) {
	return ingest.CleanTenant(r.Header.Get(TenantHeader))
}

// IngestResponse answers POST /v1/workloads. Name is usable anywhere a
// built-in benchmark name is: /v1/predict, /v1/explore, /v1/workloads.
type IngestResponse struct {
	Name         string `json:"name"`         // content-addressed workload name
	Fingerprint  string `json:"fingerprint"`  // full program fingerprint
	Instructions int64  `json:"instructions"` // dynamic instructions profiled
	SourceBytes  int    `json:"source_bytes"` // canonical source size (what quotas bill)
	Created      bool   `json:"created"`      // first registration of this content
	Stored       bool   `json:"stored"`       // canonical source persisted for warm restart
	Resident     bool   `json:"resident"`     // profiled workload resident in memory
	Tenant       string `json:"tenant"`
}

// handleIngest serves POST /v1/workloads: untrusted assembly text in
// the body becomes a profiled, predictable workload — or a typed
// rejection. The gauntlet, in order of increasing cost:
//
//  1. tenant normalization and the shared request-body byte cap
//  2. static source/structural limits (ingest.Parse)
//  3. per-tenant quotas: an in-flight slot for the whole job, then a
//     storage charge keyed by the content-derived name (idempotent —
//     re-submitting held content is free; failures refund)
//  4. sandboxed profiling through the workload pool: concurrent
//     duplicate submissions singleflight onto one run, content already
//     in the artifact store rehydrates with zero execution, and a
//     fresh run is budget-capped, deadline-polled, panic-contained
//
// Success registers the canonical source so the workload survives a
// restart (201 on first registration, 200 for duplicates).
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	s.ingSubmitted.Add(1)
	resp, status, err, fallback := s.ingestOne(r)
	if err != nil {
		s.ingRejected.Add(1)
		s.writeErr(w, err, fallback)
		return
	}
	s.ingAccepted.Add(1)
	s.writeJSONStatus(w, status, resp)
}

// ingestOne runs one submission through the gauntlet, returning either
// a response with its HTTP status or an error with its fallback code.
func (s *Server) ingestOne(r *http.Request) (*IngestResponse, int, error, string) {
	tenant, err := tenantOf(r)
	if err != nil {
		return nil, 0, err, codeBadRequest
	}
	// The shared MaxBytesReader cap (see count) surfaces here as
	// *http.MaxBytesError → payload_too_large.
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return nil, 0, err, codeBadRequest
	}
	src := string(body)
	lim := s.cfg.Ingest
	if err := ingest.CheckSource(src, lim); err != nil {
		return nil, 0, err, codeBadRequest
	}

	// Reserve the tenant's in-flight slot for everything that follows —
	// parsing included, so a tenant cannot parallelize parse bombs any
	// wider than profiling runs.
	release, err := s.quotas.Begin(tenant)
	if err != nil {
		return nil, 0, err, codeQuotaExceeded
	}
	defer release()

	prog, err := ingest.Parse(src, lim)
	if err != nil {
		return nil, 0, err, codeInvalidProgram
	}
	fp := prog.Fingerprint()
	name := ingest.WorkloadName(fp)
	canon := asm.Disassemble(prog)

	// Bill storage before profiling: quota rejections must cost the
	// server parsing, never a profiling run.
	charged, err := s.quotas.Charge(tenant, name, int64(len(canon)))
	if err != nil {
		return nil, 0, err, codeQuotaExceeded
	}

	pw, err := s.pool.GetBuiltCtx(r.Context(), name,
		func() *program.Program { return prog },
		func(wctx context.Context, p *program.Program) (*harness.Profiled, error) {
			n, err := s.queue.Acquire(wctx, 1)
			if err != nil {
				return nil, err
			}
			defer s.budget.Release(n)
			pw, err := ingest.Profile(wctx, p, s.cfg.MinDynInsts, lim)
			if err != nil {
				return nil, err
			}
			// The program was assembled under the canonical content name;
			// the resident entry answers to the public one.
			pw.Name = name
			return pw, nil
		})
	if err != nil {
		// The workload never became servable; undo this tenant's bill.
		if charged {
			s.quotas.Refund(tenant, name)
		}
		return nil, 0, err, codeInternal
	}

	entry, created := s.registry.Add(prog, canon)
	status := http.StatusOK
	if created {
		s.ingCreated.Add(1)
		status = http.StatusCreated
	}
	return &IngestResponse{
		Name:         name,
		Fingerprint:  fp,
		Instructions: pw.Prof.N,
		SourceBytes:  len(canon),
		Created:      created,
		Stored:       entry.Stored,
		Resident:     s.pool.Resident(name),
		Tenant:       tenant,
	}, status, nil, ""
}
