// Package service implements modeld's HTTP/JSON API: a long-running
// prediction service around the paper's workflow. A workload is
// profiled once on first request (singleflight, LRU-bounded via
// harness.Pool), after which any design-point question — a single
// prediction, a full or filtered Table 2 exploration, optionally
// validated through the annotation-plane fast path — is answered from
// the resident trace in microseconds-to-milliseconds. Results are
// bit-identical to the cmd/inorder-model and cmd/dse-explore CLIs: the
// handlers call the exact same harness/dse entry points.
//
// Every handler runs under the request's context plus an optional
// per-endpoint deadline: a disconnected client or an elapsed deadline
// cancels the compute stack at trace-chunk granularity, and the
// response carries a machine-readable error code (see errors.go).
// Worker tokens are handed out through a bounded admission queue that
// sheds load early (429) instead of letting waiters pile up, and the
// artifact tier sits behind a retry/circuit-breaker guard so a dying
// disk degrades the service to compute-only instead of slowing it.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"path/filepath"

	"repro/internal/artifact"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/harness"
	"repro/internal/ingest"
	"repro/internal/par"
	"repro/internal/power"
	"repro/internal/program"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

// Hooks are test seams: chaos tests inject handler panics and disk
// faults here. Both are nil in production.
type Hooks struct {
	// BeforeHandle, when non-nil, runs at the top of every counted
	// handler, inside the panic-recovery scope.
	BeforeHandle func(*http.Request)
	// WrapTier, when non-nil, interposes on the artifact tier between
	// the store and the retry/breaker guard (e.g. a faultfs.Tier).
	WrapTier func(harness.ArtifactTier) harness.ArtifactTier
}

// Config bounds and sizes a Server.
type Config struct {
	// MaxWorkloads bounds resident profiled workloads (LRU eviction);
	// ≤ 0 means unbounded.
	MaxWorkloads int
	// MaxPlaneBytes bounds resident annotation-plane and
	// memoized-timing bytes: a total across all workloads when
	// MaxWorkloads > 0 (each gets an equal slice), per workload when
	// the workload count is unbounded. ≤ 0 means unbounded.
	MaxPlaneBytes int64
	// Workers is the total worker-token pot shared by all in-flight
	// requests; ≤ 0 means the process default (GOMAXPROCS).
	Workers int
	// ExploreWorkers caps the tokens one /v1/explore request may hold,
	// so a validated exploration cannot starve concurrent requests;
	// ≤ 0 means half the pot (minimum 1).
	ExploreWorkers int
	// MinDynInsts is the dynamic-instruction floor used when profiling
	// (the -dyninsts scaling knob); ≤ 0 means one run.
	MinDynInsts int64
	// ArtifactDir enables the persistent artifact tier: profiled
	// workloads and annotation planes are written through to this
	// content-addressed store and rehydrated — bit-identically — on
	// admission, so a restarted service answers with zero profiling
	// for every workload already on disk. "" disables the tier.
	ArtifactDir string

	// PredictTimeout caps one /v1/predict request; ≤ 0 means no
	// deadline. Elapsing answers 503 {"error":{"code":"deadline_exceeded"}}.
	PredictTimeout time.Duration
	// ExploreTimeout caps one /v1/explore request; ≤ 0 means no
	// deadline.
	ExploreTimeout time.Duration
	// QueueDepth bounds requests parked waiting for a worker token;
	// arrivals beyond it are shed with 429. ≤ 0 means unbounded.
	QueueDepth int
	// QueueWait bounds how long a request may park before being shed
	// with 429. ≤ 0 means unbounded.
	QueueWait time.Duration

	// StoreRetries is the extra attempts per failed artifact-store
	// operation (0 means the default of 2; negative disables retries).
	StoreRetries int
	// StoreBackoff is the sleep before the first retry, doubling per
	// attempt; ≤ 0 means the default (10ms).
	StoreBackoff time.Duration
	// StoreTripAfter opens the circuit breaker after this many
	// consecutive failed store operations (0 means the default of 5).
	StoreTripAfter int
	// StoreCooldown is how long a tripped breaker keeps the service
	// compute-only before probing the store again; ≤ 0 means the
	// default (30s).
	StoreCooldown time.Duration

	// MaxBodyBytes caps every request body via http.MaxBytesReader
	// (reads past it fail and answer 413 payload_too_large). 0 means
	// the 2 MiB default; negative disables the cap. This is the coarse
	// transport wall; the ingestion source-byte limit below is the
	// precise one.
	MaxBodyBytes int64
	// Ingest bounds one POST /v1/workloads submission; zero fields
	// take ingest.DefaultLimits.
	Ingest ingest.Limits
	// Quota bounds each tenant's ingestion footprint; zero fields take
	// ingest.DefaultQuota.
	Quota ingest.QuotaConfig

	// ClusterSelf is this node's own advertised address ("host:port")
	// when running as a fleet member; it must appear in ClusterPeers.
	// "" (with no peers) runs the classic single-process service.
	ClusterSelf string
	// ClusterPeers is the full fleet member list, including self. All
	// members must pass the same set (order-insensitive) so every node
	// builds the same consistent-hash ring.
	ClusterPeers []string
	// VirtualNodes is the per-member virtual point count on the ring;
	// ≤ 0 means cluster.DefaultVirtualNodes.
	VirtualNodes int
	// ProxyTimeout caps one proxied request to the owning node; ≤ 0
	// means DefaultProxyTimeout.
	ProxyTimeout time.Duration

	// Hooks are chaos-test injection points; zero in production.
	Hooks Hooks
}

// Server serves the modeld API. Create with New and mount Handler.
type Server struct {
	cfg      Config
	pool     *harness.Pool
	store    *artifact.Store
	guard    *storeGuard
	budget   *par.Budget
	queue    *par.Queue
	pm       power.Model
	mux      *http.ServeMux
	registry *ingest.Registry
	quotas   *ingest.Quotas

	// Fleet state: nil ring means single-process mode. The remote tier
	// is the peer-fetching artifact layer, kept for its counters.
	ring        *cluster.Ring
	remote      *artifact.RemoteTier
	proxyClient *http.Client

	// latency holds one fixed-bucket histogram per counted endpoint,
	// keyed by the endpoint name used in the requests map.
	latency map[string]*histogram

	reqPredict     atomic.Int64
	reqExplore     atomic.Int64
	reqWorkloads   atomic.Int64
	reqArtifacts   atomic.Int64
	reqArtifactGet atomic.Int64
	reqIngest      atomic.Int64
	reqHealth      atomic.Int64
	reqMetrics     atomic.Int64
	errCount       atomic.Int64
	inFlight       atomic.Int64

	proxied         atomic.Int64 // requests this node forwarded to their owner
	proxyReceived   atomic.Int64 // forwarded requests this node served (loop guard)
	proxyFallback   atomic.Int64 // owner-unreachable local-compute fallbacks
	artifactsServed atomic.Int64 // raw artifacts served to peers

	ingSubmitted atomic.Int64
	ingAccepted  atomic.Int64
	ingCreated   atomic.Int64
	ingRejected  atomic.Int64

	cancelled        atomic.Int64
	deadlineExceeded atomic.Int64
	panics           atomic.Int64

	searchRuns        atomic.Int64
	searchEvaluated   atomic.Int64
	searchGenerations atomic.Int64
	searchReplays     atomic.Int64

	// ids memoizes each benchmark's artifact identity (building the
	// program once per process to fingerprint its IR), so listing and
	// warm-start paths don't rebuild every workload per request.
	ids sync.Map // string -> artifact.WorkloadID
}

// workloadID returns the artifact identity of a benchmark under this
// server's configuration, building (and memoizing) the program's
// content fingerprint on first use.
func (s *Server) workloadID(spec workloads.Spec) artifact.WorkloadID {
	if v, ok := s.ids.Load(spec.Name); ok {
		return v.(artifact.WorkloadID)
	}
	id := artifact.WorkloadID{
		Name:        spec.Name,
		MinDynInsts: s.cfg.MinDynInsts,
		Code:        spec.Build().Fingerprint(),
	}
	s.ids.Store(spec.Name, id)
	return id
}

// DefaultMaxBodyBytes is the request-body cap applied when
// Config.MaxBodyBytes is zero.
const DefaultMaxBodyBytes = 2 << 20

// New builds a Server with the given bounds, opening the artifact
// store when one is configured.
func New(cfg Config) (*Server, error) {
	// Normalize the ingestion posture once so the handler, registry,
	// and flags all enforce the same numbers.
	cfg.Ingest = cfg.Ingest.WithDefaults()
	cfg.Quota = cfg.Quota.WithDefaults()
	// Fleet membership: peers without a self identity (or vice versa)
	// is a configuration mistake, and self must be a ring member —
	// otherwise this node would proxy every request and own nothing.
	var ring *cluster.Ring
	if len(cfg.ClusterPeers) > 0 || cfg.ClusterSelf != "" {
		if cfg.ClusterSelf == "" {
			return nil, fmt.Errorf("service: cluster peers configured without a self address")
		}
		peers := cfg.ClusterPeers
		if len(peers) == 0 {
			peers = []string{cfg.ClusterSelf}
		}
		var err error
		if ring, err = cluster.New(peers, cfg.VirtualNodes); err != nil {
			return nil, err
		}
		if !ring.Contains(cfg.ClusterSelf) {
			return nil, fmt.Errorf("service: self address %q is not in the peer list %v", cfg.ClusterSelf, ring.Nodes())
		}
	}
	var store *artifact.Store
	var guard *storeGuard
	var remote *artifact.RemoteTier
	if cfg.ArtifactDir != "" {
		var err error
		if store, err = artifact.Open(cfg.ArtifactDir); err != nil {
			return nil, err
		}
		var tier harness.ArtifactTier = store
		// With ring peers, the remote tier sits directly over the local
		// store: a local miss pulls the finished artifact from the
		// workload's previous owner instead of re-profiling. The chaos
		// WrapTier and the retry/breaker guard stack on top, so peer
		// fetches ride the same resilience machinery as disk reads.
		if ring != nil && ring.Len() > 1 {
			var others []string
			for _, p := range ring.Nodes() {
				if p != cfg.ClusterSelf {
					others = append(others, p)
				}
			}
			if remote, err = artifact.NewRemoteTier(store, artifact.RemoteOptions{Peers: others}); err != nil {
				return nil, err
			}
			tier = remote
		}
		if cfg.Hooks.WrapTier != nil {
			tier = cfg.Hooks.WrapTier(tier)
		}
		retries := cfg.StoreRetries
		switch {
		case retries == 0:
			retries = 2
		case retries < 0:
			retries = 0
		}
		tripAfter := cfg.StoreTripAfter
		if tripAfter == 0 {
			tripAfter = 5
		}
		guard = newStoreGuard(tier, retries, cfg.StoreBackoff, tripAfter, cfg.StoreCooldown)
	}
	budget := par.NewBudget(cfg.Workers)
	poolOpts := harness.PoolOptions{
		MaxWorkloads:  cfg.MaxWorkloads,
		MaxPlaneBytes: cfg.MaxPlaneBytes,
		MinDynInsts:   cfg.MinDynInsts,
	}
	if guard != nil {
		poolOpts.Store = guard
	}
	// The ingestion registry persists alongside the artifact store (an
	// "ingest" subdirectory) so both survive the same restarts; without
	// a store it is memory-only and ingested workloads live until the
	// process does.
	regDir := ""
	if cfg.ArtifactDir != "" {
		regDir = filepath.Join(cfg.ArtifactDir, "ingest")
	}
	registry, err := ingest.OpenRegistry(regDir, cfg.Ingest)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		store:    store,
		guard:    guard,
		pool:     harness.NewPool(poolOpts),
		budget:   budget,
		queue:    par.NewQueue(budget, cfg.QueueDepth, cfg.QueueWait),
		pm:       power.NewModel(),
		mux:      http.NewServeMux(),
		registry: registry,
		quotas:   ingest.NewQuotas(cfg.Quota),
		ring:     ring,
		remote:   remote,
		latency:  make(map[string]*histogram),
	}
	if ring != nil {
		pt := cfg.ProxyTimeout
		if pt <= 0 {
			pt = DefaultProxyTimeout
		}
		s.proxyClient = &http.Client{Timeout: pt}
	}
	if s.cfg.ExploreWorkers <= 0 {
		s.cfg.ExploreWorkers = s.budget.Cap() / 2
	}
	if s.cfg.ExploreWorkers < 1 {
		s.cfg.ExploreWorkers = 1
	}
	s.mux.HandleFunc("GET /v1/predict", s.count("predict", &s.reqPredict, s.handlePredict))
	s.mux.HandleFunc("GET /v1/explore", s.count("explore", &s.reqExplore, s.handleExplore))
	s.mux.HandleFunc("GET /v1/workloads", s.count("workloads", &s.reqWorkloads, s.handleWorkloads))
	s.mux.HandleFunc("POST /v1/workloads", s.count("ingest", &s.reqIngest, s.handleIngest))
	s.mux.HandleFunc("GET /v1/artifacts", s.count("artifacts", &s.reqArtifacts, s.handleArtifacts))
	s.mux.HandleFunc("GET /v1/artifacts/{key}", s.count("artifact_get", &s.reqArtifactGet, s.handleArtifactGet))
	s.mux.HandleFunc("GET /healthz", s.count("healthz", &s.reqHealth, s.handleHealth))
	s.mux.HandleFunc("GET /metrics", s.count("metrics", &s.reqMetrics, s.handleMetrics))
	return s, nil
}

// WarmStart admits every workload already stored in the artifact
// store (up to the MaxWorkloads bound), so the first client request
// for any of them is answered from memory with zero profiling. It
// returns the number of workloads rehydrated; without a store it is a
// no-op. modeld calls this in the background on boot.
func (s *Server) WarmStart() (int, error) {
	if s.store == nil {
		return 0, nil
	}
	loaded := 0
	var firstErr error
	for _, spec := range workloads.All() {
		if s.cfg.MaxWorkloads > 0 && loaded >= s.cfg.MaxWorkloads {
			break
		}
		// A fleet member warms only the workloads it owns; unowned ones
		// are the peers' hot set and would just be evicted here.
		if !s.owned(spec.Name) {
			continue
		}
		if !s.store.HasWorkload(s.workloadID(spec)) {
			continue
		}
		if _, _, err := s.profiled(context.Background(), spec.Name); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("warm-starting %s: %w", spec.Name, err)
			}
			continue
		}
		loaded++
	}
	// Ingested workloads warm-start the same way: the registry restored
	// their names and programs, and any whose artifact is stored
	// rehydrate without re-executing untrusted code.
	for _, entry := range s.registry.List() {
		if s.cfg.MaxWorkloads > 0 && loaded >= s.cfg.MaxWorkloads {
			break
		}
		if !s.owned(entry.Name) {
			continue
		}
		if !s.store.HasWorkload(s.ingestedID(entry)) {
			continue
		}
		if _, _, err := s.profiled(context.Background(), entry.Name); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("warm-starting %s: %w", entry.Name, err)
			}
			continue
		}
		loaded++
	}
	return loaded, firstErr
}

// owned reports whether this node serves bench directly: always true
// in single-process mode, the ring's verdict in a fleet.
func (s *Server) owned(bench string) bool {
	return s.ring == nil || s.ring.Owner(bench) == s.cfg.ClusterSelf
}

// ingestedID returns the artifact identity of an ingested workload —
// the same shape GetBuiltCtx derives during admission, so warm-start
// residency checks and admissions agree on the key.
func (s *Server) ingestedID(entry *ingest.Entry) artifact.WorkloadID {
	return artifact.WorkloadID{
		Name:        entry.Name,
		MinDynInsts: s.cfg.MinDynInsts,
		Code:        entry.Fingerprint,
	}
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Pool exposes the workload cache (tests assert its counters).
func (s *Server) Pool() *harness.Pool { return s.pool }

// BeginShutdown starts the graceful drain: requests parked in the
// admission queue are rejected immediately with 503
// {"error":{"code":"shutting_down"}}, and no later request can park.
// Requests already holding worker tokens run to completion under
// http.Server.Shutdown's grace period. modeld calls this when the
// termination signal arrives, before shutting the listener down.
func (s *Server) BeginShutdown() { s.queue.Close() }

// maxBodyBytes resolves the configured request-body cap; 0 means
// uncapped (explicitly disabled with a negative config value).
func (s *Server) maxBodyBytes() int64 {
	switch {
	case s.cfg.MaxBodyBytes > 0:
		return s.cfg.MaxBodyBytes
	case s.cfg.MaxBodyBytes < 0:
		return 0
	}
	return DefaultMaxBodyBytes
}

// count is the per-endpoint middleware: request counting, latency
// observation, in-flight tracking, the shared body cap, the chaos
// hook, and panic recovery — a panicking handler answers 500
// {"error":{"code":"panic"}} and bumps a counter instead of killing
// the process. Histograms are registered at New time (one per counted
// endpoint), so observation is lock-free.
func (s *Server) count(name string, c *atomic.Int64, h http.HandlerFunc) http.HandlerFunc {
	hist := &histogram{}
	s.latency[name] = hist
	return func(w http.ResponseWriter, r *http.Request) {
		c.Add(1)
		s.inFlight.Add(1)
		start := time.Now()
		defer func() { hist.observe(time.Since(start)) }()
		defer s.inFlight.Add(-1)
		defer func() {
			if v := recover(); v != nil {
				s.panics.Add(1)
				s.writeErr(w, fmt.Errorf("handler panicked: %v", v), codePanic)
			}
		}()
		// Every handler reads its body (if any) under one cap: a read
		// past it fails with *http.MaxBytesError, which writeErr turns
		// into 413 payload_too_large.
		if max := s.maxBodyBytes(); max > 0 && r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, max)
		}
		if s.cfg.Hooks.BeforeHandle != nil {
			s.cfg.Hooks.BeforeHandle(r)
		}
		h(w, r)
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeJSONStatus is writeJSON with an explicit HTTP status (201 for
// first-time ingestion registrations).
func (s *Server) writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// deadlineCtx derives the handler context: the request's own context
// (cancelled when the client disconnects) plus the endpoint's
// deadline, when one is configured.
func deadlineCtx(r *http.Request, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), d)
}

// profiled resolves a benchmark through the bounded workload pool
// under ctx, returning the taxonomy fallback code for failures: an
// unknown name is the client's mistake (not_found), a failed profiling
// run is ours (internal); lifecycle errors classify themselves. The
// profiling run executes under the admission's work context — shared
// by every singleflight waiter, alive as long as any of them stays,
// cancelled when the last one leaves — and draws its worker token
// through the admission queue, so profiling load is shed like any
// other work. Singleflight waiters park tokenless, so requests for
// resident benchmarks are never stalled behind an unrelated profiling
// queue.
func (s *Server) profiled(ctx context.Context, name string) (*harness.Profiled, string, error) {
	var build func() *program.Program
	var profile func(wctx context.Context, prog *program.Program) (*harness.Profiled, error)
	if spec, err := workloads.ByName(name); err == nil {
		build = spec.Build
		profile = func(wctx context.Context, prog *program.Program) (*harness.Profiled, error) {
			n, err := s.queue.Acquire(wctx, 1)
			if err != nil {
				return nil, err
			}
			defer s.budget.Release(n)
			return harness.ProfileProgramScaledCtx(wctx, prog, s.cfg.MinDynInsts)
		}
	} else if entry, ok := s.registry.Lookup(name); ok {
		// An ingested workload. Evicted (or never-stored) entries
		// re-profile from the registered program, under the same
		// sandbox budgets as first submission: registration does not
		// promote a program to trusted.
		build = func() *program.Program { return entry.Prog }
		profile = func(wctx context.Context, prog *program.Program) (*harness.Profiled, error) {
			n, err := s.queue.Acquire(wctx, 1)
			if err != nil {
				return nil, err
			}
			defer s.budget.Release(n)
			pw, err := ingest.Profile(wctx, prog, s.cfg.MinDynInsts, s.cfg.Ingest)
			if err != nil {
				return nil, err
			}
			pw.Name = name
			return pw, nil
		}
	} else {
		return nil, codeNotFound, err
	}
	pw, err := s.pool.GetBuiltCtx(ctx, name, build, profile)
	if err != nil {
		return nil, codeInternal, err
	}
	return pw, "", nil
}

// checkParams rejects query parameters outside the endpoint's
// contract: a misspelled name (predictor=, l2_kb=) would otherwise be
// silently dropped and its default substituted — wrong numbers with a
// 200, from a service whose decoding is strict everywhere else.
func checkParams(r *http.Request, allowed ...string) error {
	for k := range r.URL.Query() {
		ok := false
		for _, a := range allowed {
			ok = ok || a == k
		}
		if !ok {
			return fmt.Errorf("unknown parameter %q (allowed: %v)", k, allowed)
		}
	}
	return nil
}

// boolParam parses a boolean query parameter (absent means false),
// rejecting unparsable spellings with an error — consistent with the
// strict Table 2 decoding of the numeric parameters.
func boolParam(r *http.Request, name string) (bool, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return false, nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, fmt.Errorf("parameter %s=%q is not a boolean", name, v)
	}
	return b, nil
}

// intParam parses an integer query parameter, returning def when
// absent.
func intParam(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("parameter %s=%q is not an integer", name, v)
	}
	return n, nil
}

// int64Param parses a 64-bit integer query parameter (search seeds),
// returning def when absent.
func int64Param(r *http.Request, name string, def int64) (int64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %s=%q is not an integer", name, v)
	}
	return n, nil
}

// decodeConfig builds the requested design point from query
// parameters, validated against the Table 2 domain by the same
// uarch.Table2Config validator cmd/inorder-model uses.
func decodeConfig(r *http.Request) (uarch.Config, error) {
	width, err := intParam(r, "width", 4)
	if err != nil {
		return uarch.Config{}, err
	}
	stages, err := intParam(r, "stages", 9)
	if err != nil {
		return uarch.Config{}, err
	}
	l2kb, err := intParam(r, "l2kb", 512)
	if err != nil {
		return uarch.Config{}, err
	}
	l2ways, err := intParam(r, "l2ways", 8)
	if err != nil {
		return uarch.Config{}, err
	}
	pred := r.URL.Query().Get("pred")
	if pred == "" {
		pred = "gshare"
	}
	return uarch.Table2Config(uarch.Default(), width, stages, l2kb, l2ways, pred)
}

// ConfigJSON describes one design point in a response.
type ConfigJSON struct {
	Name      string `json:"name"`
	Width     int    `json:"width"`
	Stages    int    `json:"stages"`
	FreqMHz   int    `json:"freq_mhz"`
	L2KB      int64  `json:"l2_kb"`
	L2Ways    int    `json:"l2_ways"`
	Predictor string `json:"predictor"`
}

func configJSON(cfg uarch.Config) ConfigJSON {
	return ConfigJSON{
		Name:      cfg.String(),
		Width:     cfg.Width,
		Stages:    cfg.PipelineStages(),
		FreqMHz:   cfg.FreqMHz,
		L2KB:      cfg.Hier.L2.SizeBytes / uarch.KB,
		L2Ways:    cfg.Hier.L2.Ways,
		Predictor: uarch.PredictorName(cfg.Predictor),
	}
}

// ModelJSON is the mechanistic model's answer for one design point.
type ModelJSON struct {
	Cycles   float64            `json:"cycles"`
	CPI      float64            `json:"cpi"`
	Seconds  float64            `json:"seconds"`
	CPIStack map[string]float64 `json:"cpi_stack"`
}

// SimJSON is the detailed simulator's reference for one design point.
type SimJSON struct {
	Cycles        int64   `json:"cycles"`
	CPI           float64 `json:"cpi"`
	CPIErrPercent float64 `json:"cpi_err_percent"`
}

// PredictResponse answers /v1/predict.
type PredictResponse struct {
	Benchmark    string     `json:"benchmark"`
	Instructions int64      `json:"instructions"`
	Config       ConfigJSON `json:"config"`
	Model        ModelJSON  `json:"model"`
	Sim          *SimJSON   `json:"sim,omitempty"`
}

// handlePredict serves one (benchmark, design point) prediction —
// the service form of `inorder-model -bench B -width ... [-validate]`.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if err := checkParams(r, "bench", "width", "stages", "l2kb", "l2ways", "pred", "validate"); err != nil {
		s.writeErr(w, err, codeBadRequest)
		return
	}
	bench := r.URL.Query().Get("bench")
	if bench == "" {
		s.writeErr(w, fmt.Errorf("missing required parameter bench"), codeBadRequest)
		return
	}
	if s.proxyToOwner(w, r, bench) {
		return
	}
	cfg, err := decodeConfig(r)
	if err != nil {
		s.writeErr(w, err, codeBadRequest)
		return
	}
	validate, err := boolParam(r, "validate")
	if err != nil {
		s.writeErr(w, err, codeBadRequest)
		return
	}
	ctx, cancel := deadlineCtx(r, s.cfg.PredictTimeout)
	defer cancel()
	pw, fallback, err := s.profiled(ctx, bench)
	if err != nil {
		s.writeErr(w, err, fallback)
		return
	}
	n, err := s.queue.Acquire(ctx, 1)
	if err != nil {
		s.writeErr(w, err, codeInternal)
		return
	}
	defer s.budget.Release(n)

	st, err := pw.PredictCtx(ctx, cfg)
	if err != nil {
		s.writeErr(w, err, codeInternal)
		return
	}
	stack := make(map[string]float64)
	for c := core.Component(0); c < core.NumComponents; c++ {
		if st.Cycles[c] != 0 {
			stack[c.String()] = st.CPIOf(c)
		}
	}
	resp := PredictResponse{
		Benchmark:    bench,
		Instructions: pw.Prof.N,
		Config:       configJSON(cfg),
		Model: ModelJSON{
			Cycles:   st.Total(),
			CPI:      st.CPI(),
			Seconds:  cfg.Seconds(st.Total()),
			CPIStack: stack,
		},
	}
	if validate {
		sim, err := pw.SimulateDetailedCtx(ctx, cfg)
		if err != nil {
			s.writeErr(w, err, codeInternal)
			return
		}
		sj := &SimJSON{Cycles: sim.Cycles, CPI: sim.CPI()}
		if sim.CPI() != 0 {
			sj.CPIErrPercent = 100 * abs(st.CPI()-sim.CPI()) / sim.CPI()
		}
		resp.Sim = sj
	}
	s.writeJSON(w, resp)
}

// ExplorePoint is one design point of an exploration response. Errors
// are reported in percent, matching /v1/predict and the response
// summary.
type ExplorePoint struct {
	Name          string  `json:"name"`
	ModelCPI      float64 `json:"model_cpi"`
	ModelEDP      float64 `json:"model_edp"`
	ModelCycles   float64 `json:"model_cycles"`
	SimCPI        float64 `json:"sim_cpi,omitempty"`
	SimEDP        float64 `json:"sim_edp,omitempty"`
	SimCycles     int64   `json:"sim_cycles,omitempty"`
	CPIErrPercent float64 `json:"cpi_err_percent"`
}

// ExploreResponse answers /v1/explore.
type ExploreResponse struct {
	Benchmark     string         `json:"benchmark"`
	Count         int            `json:"count"`
	Validated     bool           `json:"validated"`
	Workers       int            `json:"workers"`
	ModelBest     string         `json:"model_best"`
	SimBest       string         `json:"sim_best,omitempty"`
	AvgErrPercent float64        `json:"avg_err_percent"`
	MaxErrPercent float64        `json:"max_err_percent"`
	Points        []ExplorePoint `json:"points"`
}

// domainFilter narrows a typed domain's enumeration by optional
// per-axis query parameters (the axis request names: width, stages,
// l2kb, ..., and on the extended space also l1kb, l1ways, fscale).
// Each present value is validated by the axis itself, so the rejection
// lists the valid spellings dynamically.
func domainFilter(r *http.Request, d *uarch.Domain) ([]uarch.Config, error) {
	pts := d.EnumeratePoints()
	axes := d.Axes()
	for ai := range axes {
		v := r.URL.Query().Get(axes[ai].Name)
		if v == "" {
			continue
		}
		idx, err := axes[ai].IndexOfValue(v)
		if err != nil {
			return nil, err
		}
		var kept []uarch.Point
		for _, pt := range pts {
			if pt[ai] == idx {
				kept = append(kept, pt)
			}
		}
		pts = kept
	}
	space := make([]uarch.Config, len(pts))
	for i, pt := range pts {
		cfg, err := d.Apply(uarch.Default(), pt)
		if err != nil {
			return nil, err
		}
		space[i] = cfg
	}
	return space, nil
}

// handleExplore serves design-space exploration — the service form of
// `dse-explore -bench B [-space S] [-validate] [-search]`. The space
// parameter picks a typed parameter domain (default table2); mode=
// sweep (the default) evaluates every point, optionally narrowed by
// per-axis filters, while mode=search runs the Pareto-aware heuristic
// search and streams NDJSON batches as generations complete, ending
// with a frontier summary line. With validate=true the detailed
// simulator runs at every evaluated point through the annotation-plane
// fast path, under the per-request worker budget.
func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	spaceName := r.URL.Query().Get("space")
	if spaceName == "" {
		spaceName = "table2"
	}
	domain, err := uarch.DomainByName(spaceName)
	if err != nil {
		s.writeErr(w, err, codeBadRequest)
		return
	}
	allowed := []string{"bench", "space", "mode", "budget", "seed", "validate", "top"}
	for _, ax := range domain.Axes() {
		allowed = append(allowed, ax.Name)
	}
	if err := checkParams(r, allowed...); err != nil {
		s.writeErr(w, err, codeBadRequest)
		return
	}
	bench := r.URL.Query().Get("bench")
	if bench == "" {
		s.writeErr(w, fmt.Errorf("missing required parameter bench"), codeBadRequest)
		return
	}
	if s.proxyToOwner(w, r, bench) {
		return
	}
	top, err := intParam(r, "top", 0)
	if err != nil {
		s.writeErr(w, err, codeBadRequest)
		return
	}
	validate, err := boolParam(r, "validate")
	if err != nil {
		s.writeErr(w, err, codeBadRequest)
		return
	}
	switch mode := r.URL.Query().Get("mode"); mode {
	case "search":
		s.exploreSearch(w, r, domain, bench, validate, top)
		return
	case "", "sweep":
	default:
		s.writeErr(w, fmt.Errorf("unknown mode %q (use sweep or search)", mode), codeBadRequest)
		return
	}
	for _, p := range []string{"budget", "seed"} {
		if r.URL.Query().Get(p) != "" {
			s.writeErr(w, fmt.Errorf("parameter %s applies to mode=search only", p), codeBadRequest)
			return
		}
	}
	space, err := domainFilter(r, domain)
	if err != nil {
		s.writeErr(w, err, codeBadRequest)
		return
	}
	ctx, cancel := deadlineCtx(r, s.cfg.ExploreTimeout)
	defer cancel()
	pw, fallback, err := s.profiled(ctx, bench)
	if err != nil {
		s.writeErr(w, err, fallback)
		return
	}

	// A validated exploration fans out across worker tokens, but may
	// hold at most ExploreWorkers of them: concurrent requests always
	// find the rest of the pot.
	want := 1
	if validate {
		// No point holding more tokens than there are design points.
		want = s.cfg.ExploreWorkers
		if want > len(space) {
			want = len(space)
		}
		if want < 1 {
			want = 1
		}
	}
	tokens, err := s.queue.Acquire(ctx, want)
	if err != nil {
		s.writeErr(w, err, codeInternal)
		return
	}
	defer s.budget.Release(tokens)

	var pts []dse.Point
	if validate {
		pts, err = dse.ExploreValidatedCtx(ctx, pw, space, s.pm, tokens)
	} else {
		pts, err = dse.ExploreCtx(ctx, pw, space, s.pm)
	}
	if err != nil {
		s.writeErr(w, err, codeInternal)
		return
	}

	resp := ExploreResponse{
		Benchmark: bench,
		Count:     len(pts),
		Validated: validate,
		Workers:   tokens,
	}
	mBest, sBest := dse.BestEDP(pts)
	if mBest >= 0 {
		resp.ModelBest = pts[mBest].Cfg.Name
	}
	if sBest >= 0 {
		resp.SimBest = pts[sBest].Cfg.Name
	}
	out := pts
	if top > 0 {
		out = append([]dse.Point(nil), pts...)
		sort.Slice(out, func(i, j int) bool { return out[i].ModelEDP < out[j].ModelEDP })
		if top < len(out) {
			out = out[:top]
		}
	}
	resp.Points = make([]ExplorePoint, len(out))
	for i, p := range out {
		ep := ExplorePoint{
			Name:        p.Cfg.Name,
			ModelCPI:    p.ModelCPI,
			ModelEDP:    p.ModelEDP,
			ModelCycles: p.ModelCycles,
		}
		if p.Sim != nil {
			ep.SimCPI = p.SimCPI
			ep.SimEDP = p.SimEDP
			ep.SimCycles = p.Sim.Cycles
			ep.CPIErrPercent = 100 * p.CPIErr
		}
		resp.Points[i] = ep
	}
	if validate && len(pts) > 0 {
		var sum, max float64
		for _, p := range pts {
			sum += p.CPIErr
			if p.CPIErr > max {
				max = p.CPIErr
			}
		}
		resp.AvgErrPercent = 100 * sum / float64(len(pts))
		resp.MaxErrPercent = 100 * max
	}
	s.writeJSON(w, resp)
}

// SearchPoint is one evaluated design point of a mode=search stream.
type SearchPoint struct {
	Name          string  `json:"name"`
	ModelCPI      float64 `json:"model_cpi"`
	ModelEDP      float64 `json:"model_edp"`
	ModelSeconds  float64 `json:"model_seconds"`
	ModelEnergyJ  float64 `json:"model_energy_j"`
	SimCPI        float64 `json:"sim_cpi,omitempty"`
	SimEDP        float64 `json:"sim_edp,omitempty"`
	CPIErrPercent float64 `json:"cpi_err_percent,omitempty"`
}

func searchPoints(pts []dse.Point) []SearchPoint {
	out := make([]SearchPoint, len(pts))
	for i, p := range pts {
		sp := SearchPoint{
			Name:         p.Cfg.Name,
			ModelCPI:     p.ModelCPI,
			ModelEDP:     p.ModelEDP,
			ModelSeconds: p.ModelSecs,
			ModelEnergyJ: p.ModelEnergyJ,
		}
		if p.Sim != nil {
			sp.SimCPI = p.SimCPI
			sp.SimEDP = p.SimEDP
			sp.CPIErrPercent = 100 * p.CPIErr
		}
		out[i] = sp
	}
	return out
}

// SearchBatchLine is one NDJSON line of a mode=search response: a
// generation's evaluated points, streamed as soon as they exist.
type SearchBatchLine struct {
	Type   string        `json:"type"` // "batch"
	Gen    int           `json:"gen"`
	Points []SearchPoint `json:"points"`
}

// SearchSummaryLine is the final NDJSON line of a mode=search
// response: the Pareto frontier over every evaluated point plus the
// search's economy counters.
type SearchSummaryLine struct {
	Type        string        `json:"type"` // "summary"
	Benchmark   string        `json:"benchmark"`
	Space       string        `json:"space"`
	Cardinality int64         `json:"cardinality"`
	Budget      int           `json:"budget"`
	Seed        int64         `json:"seed"`
	Validated   bool          `json:"validated"`
	Workers     int           `json:"workers"`
	Evaluated   int           `json:"evaluated"`
	Generations int           `json:"generations"`
	Replays     int           `json:"stats_replays"`
	BestEDP     string        `json:"best_edp"`
	FrontSize   int           `json:"front_size"`
	Front       []SearchPoint `json:"front"`
}

// SearchErrorLine is the trailing NDJSON line of a mode=search stream
// that failed after batches were already flushed (the status is long
// gone, so the error travels in-band).
type SearchErrorLine struct {
	Type string `json:"type"` // "error"
	ErrorBody
}

// exploreSearch serves /v1/explore?mode=search: the heuristic search
// over a typed domain, streamed as NDJSON — one line per generation,
// then a summary line carrying the Pareto frontier.
func (s *Server) exploreSearch(w http.ResponseWriter, r *http.Request, domain *uarch.Domain, bench string, validate bool, top int) {
	for _, ax := range domain.Axes() {
		if r.URL.Query().Get(ax.Name) != "" {
			s.writeErr(w, fmt.Errorf("parameter %s applies to mode=sweep only", ax.Name), codeBadRequest)
			return
		}
	}
	budget, err := intParam(r, "budget", 0)
	if err != nil {
		s.writeErr(w, err, codeBadRequest)
		return
	}
	if budget < 0 {
		s.writeErr(w, fmt.Errorf("parameter budget=%d is negative", budget), codeBadRequest)
		return
	}
	seed, err := int64Param(r, "seed", 0)
	if err != nil {
		s.writeErr(w, err, codeBadRequest)
		return
	}
	ctx, cancel := deadlineCtx(r, s.cfg.ExploreTimeout)
	defer cancel()
	pw, fallback, err := s.profiled(ctx, bench)
	if err != nil {
		s.writeErr(w, err, fallback)
		return
	}
	want := 1
	if validate {
		want = s.cfg.ExploreWorkers
		if want < 1 {
			want = 1
		}
	}
	tokens, err := s.queue.Acquire(ctx, want)
	if err != nil {
		s.writeErr(w, err, codeInternal)
		return
	}
	defer s.budget.Release(tokens)

	s.searchRuns.Add(1)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	streamed := false
	opts := dse.SearchOptions{
		Budget:   budget,
		Seed:     seed,
		Validate: validate,
		Workers:  tokens,
		OnBatch: func(gen int, pts []dse.Point) error {
			if !streamed {
				w.Header().Set("Content-Type", "application/x-ndjson")
				streamed = true
			}
			if err := enc.Encode(SearchBatchLine{Type: "batch", Gen: gen, Points: searchPoints(pts)}); err != nil {
				return err
			}
			if flusher != nil {
				flusher.Flush()
			}
			return nil
		},
	}
	res, err := dse.Search(ctx, pw, domain, uarch.Default(), s.pm, opts)
	s.searchEvaluated.Add(int64(res.Evaluated))
	s.searchGenerations.Add(int64(res.Generations))
	s.searchReplays.Add(int64(res.Replays))
	if err != nil {
		if !streamed {
			s.writeErr(w, err, codeInternal)
			return
		}
		var line SearchErrorLine
		line.Type = "error"
		line.Error.Code = s.countErr(err, codeInternal)
		line.Error.Message = err.Error()
		_ = enc.Encode(line)
		return
	}
	summary := SearchSummaryLine{
		Type:        "summary",
		Benchmark:   bench,
		Space:       domain.Name,
		Cardinality: domain.Cardinality(),
		Budget:      budget,
		Seed:        seed,
		Validated:   validate,
		Workers:     tokens,
		Evaluated:   res.Evaluated,
		Generations: res.Generations,
		Replays:     res.Replays,
		FrontSize:   len(res.Front),
	}
	if mBest, sBest := dse.BestEDP(res.Front); sBest >= 0 {
		summary.BestEDP = res.Front[sBest].Cfg.Name
	} else if mBest >= 0 {
		summary.BestEDP = res.Front[mBest].Cfg.Name
	}
	front := res.Front
	if top > 0 && top < len(front) {
		front = front[:top]
	}
	summary.Front = searchPoints(front)
	if !streamed {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	_ = enc.Encode(summary)
	if flusher != nil {
		flusher.Flush()
	}
}

// WorkloadInfo is one /v1/workloads row.
type WorkloadInfo struct {
	Name     string `json:"name"`
	Domain   string `json:"domain"`
	Resident bool   `json:"resident"`
}

// IngestedDomain is the Domain /v1/workloads reports for ingested
// (user-submitted) workloads, distinguishing them from the compiled-in
// benchmark suite.
const IngestedDomain = "user"

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	var out []WorkloadInfo
	for _, spec := range workloads.All() {
		out = append(out, WorkloadInfo{
			Name:     spec.Name,
			Domain:   spec.Domain,
			Resident: s.pool.Resident(spec.Name),
		})
	}
	for _, entry := range s.registry.List() {
		out = append(out, WorkloadInfo{
			Name:     entry.Name,
			Domain:   IngestedDomain,
			Resident: s.pool.Resident(entry.Name),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	s.writeJSON(w, map[string]any{"workloads": out})
}

// StoreHealth reports the artifact store's state in /healthz.
type StoreHealth struct {
	Dir           string `json:"dir"`
	FormatVersion int    `json:"format_version"`
	Writable      bool   `json:"writable"`
	Error         string `json:"error,omitempty"`
}

// HealthResponse answers /healthz. Status stays "ok" as long as the
// service can answer requests; it becomes "degraded" while the
// artifact-store circuit breaker is open (cold profiling keeps
// working, disk is skipped) — reported without failing liveness.
type HealthResponse struct {
	Status        string       `json:"status"`
	ArtifactStore *StoreHealth `json:"artifact_store,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{Status: "ok"}
	if s.store != nil {
		sh := &StoreHealth{Dir: s.store.Dir(), FormatVersion: artifact.FormatVersion}
		if s.guard != nil && s.guard.Degraded() {
			// Don't probe a disk the breaker just gave up on: that
			// would reintroduce the latency the cooldown exists to
			// avoid.
			resp.Status = "degraded"
			sh.Error = "circuit breaker open: store operations suspended for cooldown"
		} else if err := s.store.Probe(); err != nil {
			sh.Error = err.Error()
		} else {
			sh.Writable = true
		}
		resp.ArtifactStore = sh
	}
	s.writeJSON(w, resp)
}

// ArtifactWorkload is one /v1/artifacts residency row: whether a known
// benchmark has a stored artifact under this server's identity
// parameters, and whether it is currently resident in memory.
type ArtifactWorkload struct {
	Name     string `json:"name"`
	Key      string `json:"key"`
	Stored   bool   `json:"stored"`
	Resident bool   `json:"resident"`
}

// ArtifactsResponse answers /v1/artifacts.
type ArtifactsResponse struct {
	Enabled       bool               `json:"enabled"`
	Dir           string             `json:"dir,omitempty"`
	FormatVersion int                `json:"format_version"`
	Entries       []artifact.Info    `json:"entries"`
	Workloads     []ArtifactWorkload `json:"workloads"`
}

// handleArtifacts lists the store's contents plus a per-benchmark
// residency view (stored on disk / resident in memory).
func (s *Server) handleArtifacts(w http.ResponseWriter, r *http.Request) {
	resp := ArtifactsResponse{FormatVersion: artifact.FormatVersion}
	if s.store == nil {
		s.writeJSON(w, resp)
		return
	}
	resp.Enabled = true
	resp.Dir = s.store.Dir()
	entries, err := s.store.List()
	if err != nil {
		s.writeErr(w, err, codeInternal)
		return
	}
	resp.Entries = entries
	for _, spec := range workloads.All() {
		id := s.workloadID(spec)
		resp.Workloads = append(resp.Workloads, ArtifactWorkload{
			Name:     spec.Name,
			Key:      s.store.WorkloadKey(id),
			Stored:   s.store.HasWorkload(id),
			Resident: s.pool.Resident(spec.Name),
		})
	}
	for _, entry := range s.registry.List() {
		id := s.ingestedID(entry)
		resp.Workloads = append(resp.Workloads, ArtifactWorkload{
			Name:     entry.Name,
			Key:      s.store.WorkloadKey(id),
			Stored:   s.store.HasWorkload(id),
			Resident: s.pool.Resident(entry.Name),
		})
	}
	sort.Slice(resp.Workloads, func(i, j int) bool { return resp.Workloads[i].Name < resp.Workloads[j].Name })
	s.writeJSON(w, resp)
}

// Metrics is the expvar-style counter snapshot served at /metrics.
type Metrics struct {
	Requests map[string]int64  `json:"requests"`
	Errors   int64             `json:"errors"`
	InFlight int64             `json:"in_flight"`
	Pool     harness.PoolStats `json:"workload_cache"`
	Workers  struct {
		Cap        int `json:"cap"`
		InUse      int `json:"in_use"`
		PerExplore int `json:"per_explore"`
	} `json:"workers"`
	Lifecycle struct {
		Cancelled        int64 `json:"cancelled"`
		DeadlineExceeded int64 `json:"deadline_exceeded"`
		Shed             int64 `json:"shed"`
		ShedFull         int64 `json:"shed_full"`
		ShedWait         int64 `json:"shed_wait"`
		QueueDepth       int   `json:"queue_depth"`
		PanicsRecovered  int64 `json:"panics_recovered"`
	} `json:"lifecycle"`
	Search struct {
		Runs        int64 `json:"runs"`
		Evaluated   int64 `json:"evaluated"`
		Generations int64 `json:"generations"`
		Replays     int64 `json:"stats_replays"`
	} `json:"search"`
	Store struct {
		Retries  int64 `json:"store_retries"`
		Trips    int64 `json:"store_trips"`
		Degraded bool  `json:"store_degraded"`
	} `json:"store"`
	Ingest struct {
		Submitted          int64             `json:"submitted"`
		Accepted           int64             `json:"accepted"`
		Created            int64             `json:"created"`
		Rejected           int64             `json:"rejected"`
		Registered         int               `json:"registered"`
		RegistryLoadErrors int64             `json:"registry_load_errors"`
		RegistrySaveErrors int64             `json:"registry_save_errors"`
		Quota              ingest.QuotaStats `json:"quota"`
	} `json:"ingest"`
	Cluster struct {
		Enabled            bool                  `json:"enabled"`
		Self               string                `json:"self,omitempty"`
		Peers              []string              `json:"peers,omitempty"`
		VirtualNodes       int                   `json:"virtual_nodes,omitempty"`
		Proxied            int64                 `json:"proxied"`
		ProxyReceived      int64                 `json:"proxy_received"`
		ProxyFallbackLocal int64                 `json:"proxy_fallback_local"`
		ArtifactsServed    int64                 `json:"artifacts_served"`
		ArtifactFetch      *artifact.RemoteStats `json:"artifact_fetch,omitempty"`
	} `json:"cluster"`
	// Latency is one fixed-bucket histogram per endpoint (the requests
	// map's keys), letting a load generator's client-side percentiles
	// be cross-checked against the server's own observations.
	Latency          map[string]HistogramJSON `json:"latency"`
	PlaneBudgetBytes int64                    `json:"plane_budget_bytes"`
}

// MetricsSnapshot returns the current counters (also served at
// /metrics).
func (s *Server) MetricsSnapshot() Metrics {
	m := Metrics{
		Requests: map[string]int64{
			"predict":   s.reqPredict.Load(),
			"explore":   s.reqExplore.Load(),
			"workloads": s.reqWorkloads.Load(),
			"artifacts": s.reqArtifacts.Load(),
			"ingest":    s.reqIngest.Load(),
			"healthz":   s.reqHealth.Load(),
			"metrics":   s.reqMetrics.Load(),
		},
		Errors:           s.errCount.Load(),
		InFlight:         s.inFlight.Load(),
		Pool:             s.pool.Stats(),
		PlaneBudgetBytes: s.cfg.MaxPlaneBytes,
	}
	m.Workers.Cap = s.budget.Cap()
	m.Workers.InUse = s.budget.InUse()
	m.Workers.PerExplore = s.cfg.ExploreWorkers
	m.Lifecycle.Cancelled = s.cancelled.Load()
	m.Lifecycle.DeadlineExceeded = s.deadlineExceeded.Load()
	m.Lifecycle.ShedFull = s.queue.ShedFull()
	m.Lifecycle.ShedWait = s.queue.ShedWait()
	m.Lifecycle.Shed = m.Lifecycle.ShedFull + m.Lifecycle.ShedWait
	m.Lifecycle.QueueDepth = s.queue.Depth()
	m.Lifecycle.PanicsRecovered = s.panics.Load()
	m.Search.Runs = s.searchRuns.Load()
	m.Search.Evaluated = s.searchEvaluated.Load()
	m.Search.Generations = s.searchGenerations.Load()
	m.Search.Replays = s.searchReplays.Load()
	if s.guard != nil {
		m.Store.Retries = s.guard.Retried()
		m.Store.Trips = s.guard.Trips()
		m.Store.Degraded = s.guard.Degraded()
	}
	m.Cluster.Enabled = s.ring != nil
	if s.ring != nil {
		m.Cluster.Self = s.cfg.ClusterSelf
		m.Cluster.Peers = s.ring.Nodes()
		m.Cluster.VirtualNodes = s.ring.VirtualNodes()
	}
	m.Cluster.Proxied = s.proxied.Load()
	m.Cluster.ProxyReceived = s.proxyReceived.Load()
	m.Cluster.ProxyFallbackLocal = s.proxyFallback.Load()
	m.Cluster.ArtifactsServed = s.artifactsServed.Load()
	if s.remote != nil {
		st := s.remote.Stats()
		m.Cluster.ArtifactFetch = &st
	}
	m.Latency = make(map[string]HistogramJSON, len(s.latency))
	for name, h := range s.latency {
		m.Latency[name] = h.snapshot()
	}
	m.Ingest.Submitted = s.ingSubmitted.Load()
	m.Ingest.Accepted = s.ingAccepted.Load()
	m.Ingest.Created = s.ingCreated.Load()
	m.Ingest.Rejected = s.ingRejected.Load()
	m.Ingest.Registered = s.registry.Len()
	m.Ingest.RegistryLoadErrors = s.registry.LoadErrors()
	m.Ingest.RegistrySaveErrors = s.registry.SaveErrors()
	m.Ingest.Quota = s.quotas.Stats()
	return m
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, s.MetricsSnapshot())
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
