package service

import (
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/artifact"
)

// ForwardedHeader marks a request already proxied once by a ring
// member. A receiving node serves such a request locally no matter who
// owns the workload — the single-hop loop guard: two nodes with
// momentarily divergent member lists bounce a request at most once
// instead of forever.
const ForwardedHeader = "X-Repro-Forwarded"

// DefaultProxyTimeout bounds one proxied request when
// Config.ProxyTimeout is zero. It is deliberately generous: the owner
// may be cold-profiling the workload, which is the expensive path
// sharding exists to keep on one node.
const DefaultProxyTimeout = 60 * time.Second

// proxyToOwner routes a predict/explore request for bench to its ring
// owner and relays the response, returning true when it fully handled
// the request. It returns false — compute locally — when the fleet is
// off, this node owns bench, or the owner is unreachable (degradation:
// a dead peer costs cache duplication, never availability).
func (s *Server) proxyToOwner(w http.ResponseWriter, r *http.Request, bench string) bool {
	if s.ring == nil {
		return false
	}
	if r.Header.Get(ForwardedHeader) != "" {
		// Loop guard: one hop only. Serve locally even if the ring says
		// someone else owns it.
		s.proxyReceived.Add(1)
		return false
	}
	owner := s.ring.Owner(bench)
	if owner == s.cfg.ClusterSelf {
		return false
	}
	out, err := http.NewRequestWithContext(r.Context(), r.Method,
		"http://"+owner+r.URL.RequestURI(), nil)
	if err != nil {
		s.proxyFallback.Add(1)
		return false
	}
	out.Header.Set(ForwardedHeader, s.cfg.ClusterSelf)
	resp, err := s.proxyClient.Do(out)
	if err != nil {
		// Owner down or unreachable: fall back to local compute. The
		// hot set stops being disjoint for this workload until the
		// owner returns — strictly better than failing the request.
		s.proxyFallback.Add(1)
		return false
	}
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	flushCopy(w, resp.Body)
	s.proxied.Add(1)
	return true
}

// flushCopy relays body to w, flushing after every read so streamed
// NDJSON exploration batches cross the proxy hop with the same
// incremental delivery a direct connection gives.
func flushCopy(w http.ResponseWriter, body io.Reader) {
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	for {
		n, err := body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// handleArtifactGet serves one raw store object to ring peers —
// the transport behind the shared artifact tier. The bytes are the
// self-verifying artifact file (magic, identity, digests), so the
// fetching node trusts its own verification, not this peer.
func (s *Server) handleArtifactGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !artifact.ValidKey(key) {
		s.writeErr(w, fmt.Errorf("malformed artifact key %q", key), codeBadRequest)
		return
	}
	if s.store == nil {
		s.writeErr(w, fmt.Errorf("no artifact store configured"), codeNotFound)
		return
	}
	data, err := s.store.ReadRaw(key)
	if err != nil {
		s.writeErr(w, err, codeNotFound)
		return
	}
	s.artifactsServed.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(len(data)))
	_, _ = w.Write(data)
}
