package service

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/dse"
	"repro/internal/power"
	"repro/internal/uarch"
)

// searchLines runs one mode=search request and splits the NDJSON
// stream into batch lines and the trailing summary.
func searchLines(t *testing.T, url string) ([]SearchBatchLine, SearchSummaryLine) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q, want application/x-ndjson", ct)
	}
	var batches []SearchBatchLine
	var summary SearchSummaryLine
	sawSummary := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var kind struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &kind); err != nil {
			t.Fatalf("unparsable NDJSON line %q: %v", line, err)
		}
		switch kind.Type {
		case "batch":
			if sawSummary {
				t.Fatal("batch line after the summary")
			}
			var b SearchBatchLine
			if err := json.Unmarshal(line, &b); err != nil {
				t.Fatal(err)
			}
			batches = append(batches, b)
		case "summary":
			sawSummary = true
			if err := json.Unmarshal(line, &summary); err != nil {
				t.Fatal(err)
			}
		default:
			t.Fatalf("unexpected line type %q", kind.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawSummary {
		t.Fatal("stream ended without a summary line")
	}
	return batches, summary
}

// TestExploreSearchStreamsAndMatchesDSE pins the mode=search contract:
// the NDJSON stream carries every evaluated point batch-by-batch, the
// summary's counters agree with the stream, and the frontier is
// bit-identical to a direct dse.Search run with the same seed and
// budget (the service adds no float paths of its own).
func TestExploreSearchStreamsAndMatchesDSE(t *testing.T) {
	ts := newTestServer(t, Config{})
	batches, summary := searchLines(t, ts.URL+"/v1/explore?bench=crc32&mode=search&space=table2&budget=64&seed=9")

	streamed := 0
	for i, b := range batches {
		if b.Gen != i {
			t.Fatalf("batch %d has gen %d", i, b.Gen)
		}
		streamed += len(b.Points)
	}
	if streamed != summary.Evaluated {
		t.Fatalf("streamed %d points, summary evaluated %d", streamed, summary.Evaluated)
	}
	if summary.Generations != len(batches) {
		t.Fatalf("summary generations %d, streamed %d batches", summary.Generations, len(batches))
	}
	if summary.Space != "table2" || summary.Budget != 64 || summary.Seed != 9 {
		t.Fatalf("summary echo wrong: %+v", summary)
	}
	if summary.Cardinality != 192 {
		t.Fatalf("cardinality %d, want 192", summary.Cardinality)
	}
	if summary.FrontSize != len(summary.Front) || summary.FrontSize == 0 {
		t.Fatalf("front size %d, %d points", summary.FrontSize, len(summary.Front))
	}

	pw := profiledDirect(t, "crc32")
	res, err := dse.Search(context.Background(), pw, uarch.Table2Domain(), uarch.Default(), power.NewModel(), dse.SearchOptions{Budget: 64, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if summary.Evaluated != res.Evaluated || len(summary.Front) != len(res.Front) {
		t.Fatalf("summary evaluated=%d front=%d, dse.Search evaluated=%d front=%d",
			summary.Evaluated, len(summary.Front), res.Evaluated, len(res.Front))
	}
	if summary.BestEDP == "" {
		t.Fatal("summary has no best-EDP point")
	}
	for i, p := range res.Front {
		if summary.Front[i].Name != p.Cfg.Name || summary.Front[i].ModelEDP != p.ModelEDP {
			t.Fatalf("front[%d] = %s/%v, want %s/%v",
				i, summary.Front[i].Name, summary.Front[i].ModelEDP, p.Cfg.Name, p.ModelEDP)
		}
	}
}

// TestExploreSearchMetrics pins that search runs feed the /metrics
// counters.
func TestExploreSearchMetrics(t *testing.T) {
	ts := newTestServer(t, Config{})
	_, summary := searchLines(t, ts.URL+"/v1/explore?bench=crc32&mode=search&budget=32&seed=1")
	var m Metrics
	if resp := getJSON(t, ts.URL+"/metrics", &m); resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if m.Search.Runs != 1 {
		t.Errorf("search runs = %d, want 1", m.Search.Runs)
	}
	if m.Search.Evaluated != int64(summary.Evaluated) {
		t.Errorf("search evaluated = %d, want %d", m.Search.Evaluated, summary.Evaluated)
	}
	if m.Search.Generations != int64(summary.Generations) {
		t.Errorf("search generations = %d, want %d", m.Search.Generations, summary.Generations)
	}
	if m.Search.Replays != int64(summary.Replays) {
		t.Errorf("search replays = %d, want %d", m.Search.Replays, summary.Replays)
	}
}

// TestExploreSpaceParam covers the typed-domain request surface: the
// extended space sweeps and filters by its own axes, and malformed
// space/mode/search parameters are rejected up front with 400s.
func TestExploreSpaceParam(t *testing.T) {
	ts := newTestServer(t, Config{})

	// A filtered sweep of the extended space: pin one value on every
	// non-Table-2 axis and the response is a Table-2-sized slice.
	var got ExploreResponse
	resp := getJSON(t, ts.URL+"/v1/explore?bench=crc32&space=extended&l1kb=32&l1ways=2&fscale=1&width=1&stages=5&l2kb=128&l2ways=8&pred=gshare", &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("extended sweep status %d", resp.StatusCode)
	}
	if got.Count != 1 {
		t.Fatalf("fully filtered extended sweep has %d points, want 1", got.Count)
	}
	if name := got.Points[0].Name; !strings.Contains(name, "l1_32k_2w") || !strings.Contains(name, "f1") {
		t.Fatalf("point %q does not carry the extended axes", name)
	}

	for _, c := range []struct {
		url  string
		code string
	}{
		{"/v1/explore?bench=crc32&space=galactic", "bad_request"},            // unknown domain
		{"/v1/explore?bench=crc32&mode=anneal", "bad_request"},               // unknown mode
		{"/v1/explore?bench=crc32&budget=64", "bad_request"},                 // budget without search
		{"/v1/explore?bench=crc32&seed=1", "bad_request"},                    // seed without search
		{"/v1/explore?bench=crc32&mode=search&width=2", "bad_request"},       // filter in search mode
		{"/v1/explore?bench=crc32&mode=search&budget=-3", "bad_request"},     // negative budget
		{"/v1/explore?bench=crc32&l1kb=32", "bad_request"},                   // extended axis on table2
		{"/v1/explore?bench=crc32&space=extended&l1kb=48", "bad_request"},    // out-of-domain axis value
		{"/v1/explore?bench=crc32&mode=search&seed=zebra", "bad_request"},    // unparsable seed
		{"/v1/explore?bench=nosuch&mode=search", "not_found"},                // unknown benchmark
		{"/v1/explore?bench=crc32&space=extended&fscale=7.5", "bad_request"}, // out-of-domain float
	} {
		var body ErrorBody
		resp, err := http.Get(ts.URL + c.url)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("%s: undecodable error body: %v", c.url, err)
		}
		resp.Body.Close()
		if body.Error.Code != c.code {
			t.Errorf("%s: code %q, want %q (message %q)", c.url, body.Error.Code, c.code, body.Error.Message)
		}
	}
}
