package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/harness"
)

// serveCtx drives one request through the full handler chain under an
// explicit context, returning the recorded response.
func serveCtx(srv *Server, ctx context.Context, url string) *httptest.ResponseRecorder {
	req := httptest.NewRequest("GET", url, nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	return rec
}

func errBody(t *testing.T, rec *httptest.ResponseRecorder) ErrorBody {
	t.Helper()
	var body ErrorBody
	if err := json.NewDecoder(rec.Body).Decode(&body); err != nil {
		t.Fatalf("decoding error body %q: %v", rec.Body.String(), err)
	}
	return body
}

// settle polls until the process goroutine count drops back to at most
// base+slack, so chaos tests prove cancelled work actually unwinds.
func settle(t *testing.T, base int, what string) {
	t.Helper()
	const slack = 4
	deadline := time.Now().Add(10 * time.Second)
	for {
		if runtime.NumGoroutine() <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s leaked goroutines: %d running, started from %d", what, runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCancelledRequestNeverAcquiresTokens is the regression test for
// the detached-context bug: a request that is already cancelled when
// it arrives must be rejected before any admission work — no worker
// token is acquired and no profiling run starts on its behalf.
func TestCancelledRequestNeverAcquiresTokens(t *testing.T) {
	srv := mustNew(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	rec := serveCtx(srv, ctx, "/v1/predict?bench=crc32")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("cancelled request answered %d, want 503", rec.Code)
	}
	if body := errBody(t, rec); body.Error.Code != "cancelled" {
		t.Fatalf("cancelled request coded %q, want cancelled", body.Error.Code)
	}
	if n := srv.Pool().ProfileCount(); n != 0 {
		t.Fatalf("cancelled request triggered %d profiling runs, want 0", n)
	}
	if st := srv.Pool().Stats(); st.InFlight != 0 {
		t.Fatalf("cancelled request left %d admissions in flight", st.InFlight)
	}
	if n := srv.budget.InUse(); n != 0 {
		t.Fatalf("cancelled request holds %d worker tokens, want 0", n)
	}
	m := srv.MetricsSnapshot()
	if m.Lifecycle.Cancelled != 1 {
		t.Fatalf("cancelled counter = %d, want 1", m.Lifecycle.Cancelled)
	}
}

// TestPredictDeadlineExceeded pins the per-endpoint deadline: a
// timeout too short for profiling answers 503 deadline_exceeded, the
// aborted admission is not cached, and a follow-up request with no
// deadline succeeds.
func TestPredictDeadlineExceeded(t *testing.T) {
	srv := mustNew(t, Config{PredictTimeout: time.Nanosecond})
	rec := serveCtx(srv, context.Background(), "/v1/predict?bench=crc32")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("deadline request answered %d, want 503", rec.Code)
	}
	if body := errBody(t, rec); body.Error.Code != "deadline_exceeded" {
		t.Fatalf("deadline request coded %q, want deadline_exceeded", body.Error.Code)
	}
	if m := srv.MetricsSnapshot(); m.Lifecycle.DeadlineExceeded != 1 {
		t.Fatalf("deadline_exceeded counter = %d, want 1", m.Lifecycle.DeadlineExceeded)
	}

	srv.cfg.PredictTimeout = 0
	if rec := serveCtx(srv, context.Background(), "/v1/predict?bench=crc32"); rec.Code != http.StatusOK {
		t.Fatalf("predict after deadline chaos answered %d: %s", rec.Code, rec.Body.String())
	}
}

// TestLoadShedding pins admission control: with the pot occupied, one
// request may park in the depth-1 queue, the next is shed immediately
// with 429 + Retry-After, and the parked request completes once a
// token frees up.
func TestLoadShedding(t *testing.T) {
	srv := mustNew(t, Config{Workers: 1, QueueDepth: 1})
	// Make crc32 resident first so the parked request needs only the
	// post-admission prediction token.
	if rec := serveCtx(srv, context.Background(), "/v1/predict?bench=crc32"); rec.Code != http.StatusOK {
		t.Fatalf("warm-up predict answered %d", rec.Code)
	}

	held, err := srv.budget.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	parked := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		parked <- serveCtx(srv, context.Background(), "/v1/predict?bench=crc32")
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.queue.Depth() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("request never parked in the admission queue")
		}
		time.Sleep(time.Millisecond)
	}

	shed := serveCtx(srv, context.Background(), "/v1/predict?bench=crc32")
	if shed.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow request answered %d, want 429", shed.Code)
	}
	if shed.Header().Get("Retry-After") == "" {
		t.Fatal("shed response carries no Retry-After")
	}
	if body := errBody(t, shed); body.Error.Code != "overloaded" {
		t.Fatalf("shed request coded %q, want overloaded", body.Error.Code)
	}

	srv.budget.Release(held)
	if rec := <-parked; rec.Code != http.StatusOK {
		t.Fatalf("parked request answered %d after the token freed: %s", rec.Code, rec.Body.String())
	}
	m := srv.MetricsSnapshot()
	if m.Lifecycle.Shed != 1 || m.Lifecycle.ShedFull != 1 {
		t.Fatalf("shed counters = %+v, want exactly one full-queue shed", m.Lifecycle)
	}
	if m.Lifecycle.QueueDepth != 0 {
		t.Fatalf("queue depth %d after drain, want 0", m.Lifecycle.QueueDepth)
	}
}

// TestQueueWaitShedding pins the wait-time cap: a request that cannot
// obtain a token within QueueWait is shed with 429 instead of parking
// forever.
func TestQueueWaitShedding(t *testing.T) {
	srv := mustNew(t, Config{Workers: 1, QueueWait: 20 * time.Millisecond})
	if rec := serveCtx(srv, context.Background(), "/v1/predict?bench=crc32"); rec.Code != http.StatusOK {
		t.Fatalf("warm-up predict answered %d", rec.Code)
	}
	held, err := srv.budget.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.budget.Release(held)

	rec := serveCtx(srv, context.Background(), "/v1/predict?bench=crc32")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("wait-capped request answered %d, want 429", rec.Code)
	}
	if m := srv.MetricsSnapshot(); m.Lifecycle.ShedWait != 1 {
		t.Fatalf("shed_wait counter = %d, want 1", m.Lifecycle.ShedWait)
	}
}

// TestShutdownDrainsQueue pins the graceful drain: BeginShutdown
// rejects parked requests immediately with 503 shutting_down, rejects
// new arrivals the same way, and leaves already-acquired tokens valid.
func TestShutdownDrainsQueue(t *testing.T) {
	srv := mustNew(t, Config{Workers: 1})
	if rec := serveCtx(srv, context.Background(), "/v1/predict?bench=crc32"); rec.Code != http.StatusOK {
		t.Fatalf("warm-up predict answered %d", rec.Code)
	}
	held, err := srv.budget.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.budget.Release(held)

	parked := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		parked <- serveCtx(srv, context.Background(), "/v1/predict?bench=crc32")
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.queue.Depth() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("request never parked in the admission queue")
		}
		time.Sleep(time.Millisecond)
	}

	srv.BeginShutdown()
	rec := <-parked
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("parked request answered %d during drain, want 503", rec.Code)
	}
	if body := errBody(t, rec); body.Error.Code != "shutting_down" {
		t.Fatalf("parked request coded %q, want shutting_down", body.Error.Code)
	}
	late := serveCtx(srv, context.Background(), "/v1/predict?bench=crc32")
	if late.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request answered %d, want 503", late.Code)
	}
	if body := errBody(t, late); body.Error.Code != "shutting_down" {
		t.Fatalf("post-drain request coded %q, want shutting_down", body.Error.Code)
	}
}

// TestHandlerPanicRecovered pins the panic middleware: an injected
// handler panic answers 500 {"error":{"code":"panic"}} and bumps the
// counter; the process — and the next request — survive.
func TestHandlerPanicRecovered(t *testing.T) {
	srv := mustNew(t, Config{Hooks: Hooks{BeforeHandle: func(r *http.Request) {
		if r.Header.Get("X-Chaos-Panic") != "" {
			panic("injected chaos panic")
		}
	}}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req, _ := http.NewRequest("GET", ts.URL+"/v1/workloads", nil)
	req.Header.Set("X-Chaos-Panic", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var body ErrorBody
	_ = json.NewDecoder(resp.Body).Decode(&body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError || body.Error.Code != "panic" {
		t.Fatalf("panicking handler answered %d %q, want 500 panic", resp.StatusCode, body.Error.Code)
	}

	ok, err := http.Get(ts.URL + "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	ok.Body.Close()
	if ok.StatusCode != http.StatusOK {
		t.Fatalf("request after recovered panic answered %d", ok.StatusCode)
	}
	if m := srv.MetricsSnapshot(); m.Lifecycle.PanicsRecovered != 1 {
		t.Fatalf("panics_recovered = %d, want 1", m.Lifecycle.PanicsRecovered)
	}
}

// TestStoreRetriesTransientFault pins the retry layer: a single
// transient disk fault is absorbed by an in-place retry — the request
// succeeds, the workload still reaches the store, and no breaker
// trips.
func TestStoreRetriesTransientFault(t *testing.T) {
	var ft *faultfs.Tier
	srv := mustNew(t, Config{
		ArtifactDir:  t.TempDir(),
		StoreRetries: 2,
		StoreBackoff: time.Millisecond,
		Hooks: Hooks{WrapTier: func(inner harness.ArtifactTier) harness.ArtifactTier {
			ft = faultfs.Wrap(inner)
			return ft
		}},
	})
	ft.SetPlan(faultfs.Plan{Err: errors.New("transient I/O glitch"), Remaining: 1})

	if rec := serveCtx(srv, context.Background(), "/v1/predict?bench=crc32"); rec.Code != http.StatusOK {
		t.Fatalf("predict over glitching store answered %d: %s", rec.Code, rec.Body.String())
	}
	m := srv.MetricsSnapshot()
	if m.Store.Retries == 0 {
		t.Fatal("transient fault was not retried")
	}
	if m.Store.Trips != 0 || m.Store.Degraded {
		t.Fatalf("single transient fault tripped the breaker: %+v", m.Store)
	}
	if m.Pool.DiskWrites == 0 {
		t.Fatalf("workload never reached the store after retry: %+v", m.Pool)
	}
}

// TestStoreBreakerTripsAndRecovers pins degraded mode end to end: a
// persistently failing store trips the breaker after the configured
// consecutive failures, /healthz reports "degraded" while requests
// keep succeeding compute-only, and after the cooldown (with the disk
// healthy again) the service returns to "ok" and resumes writing
// through.
func TestStoreBreakerTripsAndRecovers(t *testing.T) {
	var ft *faultfs.Tier
	srv := mustNew(t, Config{
		ArtifactDir:    t.TempDir(),
		StoreRetries:   -1, // no retries: each faulted op counts once
		StoreTripAfter: 2,
		StoreCooldown:  time.Hour, // expired manually below, so slow runs can't race it
		Hooks: Hooks{WrapTier: func(inner harness.ArtifactTier) harness.ArtifactTier {
			ft = faultfs.Wrap(inner)
			return ft
		}},
	})
	ft.SetPlan(faultfs.Plan{Err: errors.New("disk on fire")})

	// One admission = one failed load + one failed save = the trip
	// threshold. The request itself must still succeed.
	if rec := serveCtx(srv, context.Background(), "/v1/predict?bench=crc32"); rec.Code != http.StatusOK {
		t.Fatalf("predict over dead store answered %d: %s", rec.Code, rec.Body.String())
	}
	m := srv.MetricsSnapshot()
	if m.Store.Trips != 1 || !m.Store.Degraded {
		t.Fatalf("breaker state after faults = %+v, want tripped+degraded", m.Store)
	}
	if m.Pool.DiskErrors == 0 {
		t.Fatalf("pool observed no disk errors: %+v", m.Pool)
	}

	rec := serveCtx(srv, context.Background(), "/healthz")
	var health HealthResponse
	if err := json.NewDecoder(rec.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" {
		t.Fatalf("healthz during open breaker = %q, want degraded", health.Status)
	}

	// Degraded mode: requests still work, the store is not touched.
	before := ft.Ops()
	if rec := serveCtx(srv, context.Background(), "/v1/predict?bench=sha"); rec.Code != http.StatusOK {
		t.Fatalf("predict while degraded answered %d", rec.Code)
	}
	if after := ft.Ops(); after != before {
		t.Fatalf("degraded service still touched the store (%d → %d ops)", before, after)
	}

	// Disk recovers; the cooldown elapses (fast-forwarded so the test
	// doesn't depend on wall-clock pacing); the breaker closes on the
	// next successful operation and writes resume.
	ft.Clear()
	srv.guard.mu.Lock()
	srv.guard.degradedUntil = time.Now()
	srv.guard.mu.Unlock()
	if rec := serveCtx(srv, context.Background(), "/v1/predict?bench=dijkstra"); rec.Code != http.StatusOK {
		t.Fatalf("predict after recovery answered %d", rec.Code)
	}
	m = srv.MetricsSnapshot()
	if m.Store.Degraded {
		t.Fatal("breaker still open after cooldown with a healthy disk")
	}
	if m.Pool.DiskWrites == 0 {
		t.Fatalf("no write-through after recovery: %+v", m.Pool)
	}
	rec = serveCtx(srv, context.Background(), "/healthz")
	health = HealthResponse{}
	if err := json.NewDecoder(rec.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" {
		t.Fatalf("healthz after recovery = %q, want ok", health.Status)
	}
}

// TestClientDisconnectStopsExplore is the end-to-end chaos case: a
// client abandons a validated exploration mid-flight. The handler must
// return promptly with 503 cancelled, the fan-out must unwind (bounded
// goroutines, no tokens held), and a concurrent prediction on the same
// workload — the non-faulted path — must stay bit-identical to the
// direct harness answer.
func TestClientDisconnectStopsExplore(t *testing.T) {
	base := runtime.NumGoroutine()
	srv := mustNew(t, Config{Workers: 4, ExploreWorkers: 2})
	if rec := serveCtx(srv, context.Background(), "/v1/predict?bench=crc32"); rec.Code != http.StatusOK {
		t.Fatalf("warm-up predict answered %d", rec.Code)
	}

	ctx, cancel := context.WithCancel(context.Background())
	exploreDone := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		exploreDone <- serveCtx(srv, ctx, "/v1/explore?bench=crc32&validate=true")
	}()
	// Wait until the exploration actually holds worker tokens, then
	// pull the plug.
	deadline := time.Now().Add(10 * time.Second)
	for srv.budget.InUse() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("exploration never started")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()

	var rec *httptest.ResponseRecorder
	select {
	case rec = <-exploreDone:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled exploration did not return promptly")
	}
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("abandoned explore answered %d: %s", rec.Code, rec.Body.String())
	}
	if body := errBody(t, rec); body.Error.Code != "cancelled" {
		t.Fatalf("abandoned explore coded %q, want cancelled", body.Error.Code)
	}

	// The non-faulted path stays bit-identical to the direct harness
	// answer after the chaos.
	pred := serveCtx(srv, context.Background(), "/v1/predict?bench=crc32&validate=true")
	if pred.Code != http.StatusOK {
		t.Fatalf("predict after cancelled explore answered %d", pred.Code)
	}
	var got PredictResponse
	if err := json.NewDecoder(pred.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	pw := profiledDirect(t, "crc32")
	cfg, err := decodeConfig(httptest.NewRequest("GET", "/v1/predict?bench=crc32", nil))
	if err != nil {
		t.Fatal(err)
	}
	st, err := pw.Predict(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := pw.SimulateDetailed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Model.CPI != st.CPI() || got.Model.Cycles != st.Total() {
		t.Errorf("post-chaos model = %v/%v, want %v/%v", got.Model.Cycles, got.Model.CPI, st.Total(), st.CPI())
	}
	if got.Sim == nil || got.Sim.Cycles != sim.Cycles || got.Sim.CPI != sim.CPI() {
		t.Errorf("post-chaos sim diverges: %+v, want cycles %d CPI %v", got.Sim, sim.Cycles, sim.CPI())
	}

	// Everything the cancelled fan-out started must unwind: no worker
	// tokens held, no admissions in flight, goroutines settle.
	deadline = time.Now().Add(10 * time.Second)
	for srv.budget.InUse() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("cancelled explore still holds %d worker tokens", srv.budget.InUse())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := srv.Pool().Stats(); st.InFlight != 0 {
		t.Fatalf("admissions still in flight after chaos: %+v", st)
	}
	if m := srv.MetricsSnapshot(); m.Lifecycle.Cancelled == 0 {
		t.Fatal("cancelled counter never moved")
	}
	settle(t, base, "client-disconnect chaos")
}
