package service

import (
	"net/http/httptest"
	"runtime"
	"testing"

	"repro/internal/artifact"
	"repro/internal/harness"
)

// mmapPlatform reports whether artifact loads go through the mapped
// zero-copy path on this build (the !unix fallback always decodes).
func mmapPlatform() bool {
	switch runtime.GOOS {
	case "linux", "darwin", "freebsd", "netbsd", "openbsd", "dragonfly":
		return true
	}
	return false
}

// TestWarmExploreServesFromMappedArtifacts is the exploration half of
// the warm-start acceptance criteria: a warm server answering a
// validated /v1/explore runs zero profiling and zero annotation
// traversals — every plane rehydrates from the artifact store, through
// the memory-mapped read path where the platform supports it — and the
// response is byte-identical to the fresh server's.
func TestWarmExploreServesFromMappedArtifacts(t *testing.T) {
	dir := t.TempDir()
	// width/stages/l2 pinned, predictor free: two design points that
	// share one mem plane and split across both branch planes.
	const query = "/v1/explore?bench=crc32&width=2&stages=7&l2kb=256&l2ways=8&validate=true"

	cold := mustNew(t, Config{ArtifactDir: dir})
	tsCold := httptest.NewServer(cold.Handler())
	defer tsCold.Close()
	coldBody := fetchBody(t, tsCold.URL+query)
	if n := cold.Pool().ProfileCount(); n != 1 {
		t.Fatalf("cold server ran %d profiles, want 1", n)
	}

	warm := mustNew(t, Config{ArtifactDir: dir})
	if _, err := warm.WarmStart(); err != nil {
		t.Fatal(err)
	}
	tsWarm := httptest.NewServer(warm.Handler())
	defer tsWarm.Close()

	cacheBefore := harness.CacheAnnotationCount()
	branchBefore := harness.BranchAnnotationCount()
	mappedBefore := artifact.MappedLoadCount()
	warmBody := fetchBody(t, tsWarm.URL+query)
	if n := warm.Pool().ProfileCount(); n != 0 {
		t.Fatalf("warm server ran %d profiles, want 0", n)
	}
	if d := harness.CacheAnnotationCount() - cacheBefore; d != 0 {
		t.Fatalf("warm explore ran %d cache annotation traversals, want 0", d)
	}
	if d := harness.BranchAnnotationCount() - branchBefore; d != 0 {
		t.Fatalf("warm explore ran %d branch annotation traversals, want 0", d)
	}
	if mmapPlatform() {
		// One mem plane and two branch planes rehydrate from disk; all
		// three must come through the mapped path.
		if d := artifact.MappedLoadCount() - mappedBefore; d < 3 {
			t.Fatalf("warm explore served %d mapped loads, want >= 3", d)
		}
	}
	if coldBody != warmBody {
		t.Fatalf("warm exploration differs from fresh:\n cold: %s\n warm: %s", coldBody, warmBody)
	}
}
