package service

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/artifact"
	"repro/internal/cache"
	"repro/internal/harness"
	"repro/internal/profile"
	"repro/internal/trace"
)

// errStoreDegraded marks operations refused by the tripped breaker.
// The pool treats it like any other disk error — profiling proceeds —
// so a degraded store costs one error per save, never a request.
var errStoreDegraded = errors.New("service: artifact store degraded, skipping disk")

// storeGuard wraps the artifact tier with retry-with-backoff and a
// circuit breaker. A transient I/O fault is retried in place; a store
// that keeps failing trips the breaker, and for a cooldown window the
// service runs compute-only — loads answer ErrNotFound (profile
// fresh), saves are skipped — instead of paying a dying disk's latency
// on every request. After the cooldown the next operation probes the
// store again and a success closes the breaker.
//
// ErrNotFound and ErrInvalid never count as faults and are never
// retried: they are the store answering truthfully ("nothing here",
// "this file is unusable"), not the disk failing to answer.
type storeGuard struct {
	inner     harness.ArtifactTier
	retries   int           // extra attempts per operation after the first
	backoff   time.Duration // sleep before retry n is backoff << (n-1)
	tripAfter int           // consecutive failed operations that open the breaker
	cooldown  time.Duration // how long an open breaker refuses the store

	mu            sync.Mutex
	consecutive   int
	degradedUntil time.Time

	retried atomic.Int64 // retry attempts performed
	trips   atomic.Int64 // times the breaker opened
}

func newStoreGuard(inner harness.ArtifactTier, retries int, backoff time.Duration, tripAfter int, cooldown time.Duration) *storeGuard {
	if retries < 0 {
		retries = 0
	}
	if backoff <= 0 {
		backoff = 10 * time.Millisecond
	}
	if tripAfter < 1 {
		tripAfter = 1
	}
	if cooldown <= 0 {
		cooldown = 30 * time.Second
	}
	return &storeGuard{inner: inner, retries: retries, backoff: backoff, tripAfter: tripAfter, cooldown: cooldown}
}

// Degraded reports whether the breaker is currently open.
func (g *storeGuard) Degraded() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return time.Now().Before(g.degradedUntil)
}

// Retried returns the number of retry attempts performed.
func (g *storeGuard) Retried() int64 { return g.retried.Load() }

// Trips returns how many times the breaker opened.
func (g *storeGuard) Trips() int64 { return g.trips.Load() }

// truthful reports errors that are answers, not faults.
func truthful(err error) bool {
	return err == nil || errors.Is(err, artifact.ErrNotFound) || errors.Is(err, artifact.ErrInvalid)
}

// run executes op under the retry/breaker policy. It returns
// errStoreDegraded without touching the store while the breaker is
// open.
func (g *storeGuard) run(op func() error) error {
	if g.Degraded() {
		return errStoreDegraded
	}
	var err error
	for attempt := 0; ; attempt++ {
		err = op()
		if truthful(err) {
			g.mu.Lock()
			g.consecutive = 0
			g.mu.Unlock()
			return err
		}
		if attempt >= g.retries {
			break
		}
		g.retried.Add(1)
		time.Sleep(g.backoff << attempt)
	}
	g.mu.Lock()
	g.consecutive++
	if g.consecutive >= g.tripAfter {
		g.consecutive = 0
		g.degradedUntil = time.Now().Add(g.cooldown)
		g.trips.Add(1)
	}
	g.mu.Unlock()
	return err
}

// WorkloadKey is pure computation; it never touches the disk and so
// bypasses the breaker.
func (g *storeGuard) WorkloadKey(id artifact.WorkloadID) string { return g.inner.WorkloadKey(id) }

func (g *storeGuard) LoadWorkload(id artifact.WorkloadID) (tr *trace.Trace, prof *profile.Profile, err error) {
	rerr := g.run(func() error {
		tr, prof, err = g.inner.LoadWorkload(id)
		return err
	})
	if errors.Is(rerr, errStoreDegraded) {
		// Compute-only mode: report a miss so the caller profiles fresh.
		return nil, nil, artifact.ErrNotFound
	}
	return tr, prof, rerr
}

func (g *storeGuard) SaveWorkload(id artifact.WorkloadID, tr *trace.Trace, prof *profile.Profile) (key string, err error) {
	rerr := g.run(func() error {
		key, err = g.inner.SaveWorkload(id, tr, prof)
		return err
	})
	if rerr != nil {
		return "", rerr
	}
	return key, nil
}

func (g *storeGuard) LoadMemPlane(workloadKey string, h cache.HierarchyConfig) (p *trace.BytePlane, st cache.Stats, err error) {
	rerr := g.run(func() error {
		p, st, err = g.inner.LoadMemPlane(workloadKey, h)
		return err
	})
	if errors.Is(rerr, errStoreDegraded) {
		return nil, cache.Stats{}, artifact.ErrNotFound
	}
	return p, st, rerr
}

func (g *storeGuard) SaveMemPlane(workloadKey string, h cache.HierarchyConfig, classes *trace.BytePlane, st cache.Stats) error {
	return g.run(func() error {
		return g.inner.SaveMemPlane(workloadKey, h, classes, st)
	})
}

func (g *storeGuard) LoadBranchPlane(workloadKey, predictor string) (p *trace.BitPlane, err error) {
	rerr := g.run(func() error {
		p, err = g.inner.LoadBranchPlane(workloadKey, predictor)
		return err
	})
	if errors.Is(rerr, errStoreDegraded) {
		return nil, artifact.ErrNotFound
	}
	return p, rerr
}

func (g *storeGuard) SaveBranchPlane(workloadKey, predictor string, p *trace.BitPlane) error {
	return g.run(func() error {
		return g.inner.SaveBranchPlane(workloadKey, predictor, p)
	})
}

// Interface check.
var _ harness.ArtifactTier = (*storeGuard)(nil)
