package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/artifact"
	"repro/internal/dse"
	"repro/internal/harness"
	"repro/internal/power"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

func mustNew(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(mustNew(t, cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

func profiledDirect(t *testing.T, name string) *harness.Profiled {
	t.Helper()
	spec, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	pw, err := harness.ProfileProgram(spec.Build())
	if err != nil {
		t.Fatal(err)
	}
	return pw
}

// TestPredictMatchesHarness pins the acceptance contract: a validated
// /v1/predict answer is bit-identical to what the inorder-model CLI
// computes through pw.Predict and pw.SimulateDetailed. Profiling is
// deterministic, so an independently profiled reference reproduces the
// service's floats exactly (JSON round-trips float64 losslessly).
func TestPredictMatchesHarness(t *testing.T) {
	ts := newTestServer(t, Config{})
	var got PredictResponse
	resp := getJSON(t, ts.URL+"/v1/predict?bench=crc32&width=2&stages=5&l2kb=256&l2ways=16&pred=hybrid&validate=true", &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	cfg, err := uarch.Table2Config(uarch.Default(), 2, 5, 256, 16, "hybrid")
	if err != nil {
		t.Fatal(err)
	}
	pw := profiledDirect(t, "crc32")
	st, err := pw.Predict(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := pw.SimulateDetailed(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if got.Instructions != pw.Prof.N {
		t.Errorf("instructions = %d, want %d", got.Instructions, pw.Prof.N)
	}
	if got.Model.CPI != st.CPI() || got.Model.Cycles != st.Total() {
		t.Errorf("model = cycles %v CPI %v, want cycles %v CPI %v",
			got.Model.Cycles, got.Model.CPI, st.Total(), st.CPI())
	}
	if got.Sim == nil {
		t.Fatal("validate=true returned no sim block")
	}
	if got.Sim.Cycles != sim.Cycles || got.Sim.CPI != sim.CPI() {
		t.Errorf("sim = cycles %d CPI %v, want cycles %d CPI %v",
			got.Sim.Cycles, got.Sim.CPI, sim.Cycles, sim.CPI())
	}
	if got.Config.Width != 2 || got.Config.Stages != 5 || got.Config.L2KB != 256 ||
		got.Config.L2Ways != 16 || got.Config.Predictor != "hybrid" {
		t.Errorf("echoed config %+v does not match request", got.Config)
	}
}

// TestExploreMatchesDSE pins the exploration contract: a validated,
// filtered /v1/explore returns exactly dse.ExploreValidated's numbers
// for the same filtered space, point for point.
func TestExploreMatchesDSE(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 2})
	var got ExploreResponse
	resp := getJSON(t, ts.URL+"/v1/explore?bench=crc32&validate=true&width=2&l2kb=128&pred=gshare", &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	var space []uarch.Config
	for _, c := range dse.Space(uarch.Default()) {
		if c.Width == 2 && c.Hier.L2.SizeBytes == 128*uarch.KB && c.Predictor == uarch.PredGShare1KB {
			space = append(space, c)
		}
	}
	if len(space) == 0 || got.Count != len(space) {
		t.Fatalf("filtered space: service %d points, reference %d", got.Count, len(space))
	}
	pw := profiledDirect(t, "crc32")
	want, err := dse.ExploreValidated(pw, space, power.NewModel(), 2)
	if err != nil {
		t.Fatal(err)
	}
	wantByName := make(map[string]dse.Point, len(want))
	for _, p := range want {
		wantByName[p.Cfg.Name] = p
	}
	mBest, sBest := dse.BestEDP(want)
	if got.ModelBest != want[mBest].Cfg.Name || got.SimBest != want[sBest].Cfg.Name {
		t.Errorf("best points %q/%q, want %q/%q",
			got.ModelBest, got.SimBest, want[mBest].Cfg.Name, want[sBest].Cfg.Name)
	}
	for _, gp := range got.Points {
		wp, ok := wantByName[gp.Name]
		if !ok {
			t.Fatalf("service returned unknown point %q", gp.Name)
		}
		if gp.ModelCPI != wp.ModelCPI || gp.ModelEDP != wp.ModelEDP ||
			gp.SimCPI != wp.SimCPI || gp.SimEDP != wp.SimEDP || gp.CPIErrPercent != 100*wp.CPIErr {
			t.Errorf("point %s diverges:\n got  %+v\n want model %v/%v sim %v/%v err %v",
				gp.Name, gp, wp.ModelCPI, wp.ModelEDP, wp.SimCPI, wp.SimEDP, wp.CPIErr)
		}
	}
}

// TestPredictSingleflight pins the admission contract end to end:
// concurrent requests for one benchmark profile it exactly once.
func TestPredictSingleflight(t *testing.T) {
	srv := mustNew(t, Config{MaxWorkloads: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const callers = 12
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/predict?bench=crc32")
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	if n := srv.Pool().ProfileCount(); n != 1 {
		t.Fatalf("%d concurrent predicts ran %d profiling executions, want 1", callers, n)
	}
	var m Metrics
	getJSON(t, ts.URL+"/metrics", &m)
	if m.Pool.Profiles != 1 || m.Requests["predict"] != callers {
		t.Fatalf("metrics = %+v, want 1 profile and %d predict requests", m, callers)
	}
}

// TestWorkloadEviction pins the LRU bound through the HTTP surface.
func TestWorkloadEviction(t *testing.T) {
	srv := mustNew(t, Config{MaxWorkloads: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, bench := range []string{"crc32", "sha"} {
		resp, err := http.Get(fmt.Sprintf("%s/v1/predict?bench=%s", ts.URL, bench))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict %s: status %d", bench, resp.StatusCode)
		}
	}
	st := srv.Pool().Stats()
	if st.Resident != 1 || st.Evictions != 1 {
		t.Fatalf("pool stats %+v, want 1 resident and 1 eviction", st)
	}
	if srv.Pool().Resident("crc32") {
		t.Fatal("LRU workload crc32 still resident")
	}
}

// TestWorkloadsEndpoint pins the listing plus residency flags.
func TestWorkloadsEndpoint(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/predict?bench=crc32")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var got struct {
		Workloads []WorkloadInfo `json:"workloads"`
	}
	getJSON(t, ts.URL+"/v1/workloads", &got)
	if len(got.Workloads) != len(workloads.All()) {
		t.Fatalf("listed %d workloads, want %d", len(got.Workloads), len(workloads.All()))
	}
	found := false
	for _, w := range got.Workloads {
		if w.Name == "crc32" {
			found = true
			if !w.Resident {
				t.Error("crc32 not marked resident after a predict")
			}
		} else if w.Resident {
			t.Errorf("%s marked resident without being requested", w.Name)
		}
	}
	if !found {
		t.Fatal("crc32 missing from workload list")
	}
}

// TestHealthz pins the liveness endpoint, with and without a store.
func TestHealthz(t *testing.T) {
	ts := newTestServer(t, Config{})
	var got HealthResponse
	resp := getJSON(t, ts.URL+"/healthz", &got)
	if resp.StatusCode != http.StatusOK || got.Status != "ok" {
		t.Fatalf("healthz = %d %+v", resp.StatusCode, got)
	}
	if got.ArtifactStore != nil {
		t.Fatalf("healthz reports a store without one configured: %+v", got.ArtifactStore)
	}

	dir := t.TempDir()
	ts2 := newTestServer(t, Config{ArtifactDir: dir})
	var got2 HealthResponse
	if resp := getJSON(t, ts2.URL+"/healthz", &got2); resp.StatusCode != http.StatusOK || got2.Status != "ok" {
		t.Fatalf("healthz with store = %d %+v", resp.StatusCode, got2)
	}
	sh := got2.ArtifactStore
	if sh == nil || sh.Dir != dir || !sh.Writable || sh.FormatVersion != artifact.FormatVersion {
		t.Fatalf("healthz store report = %+v, want writable dir %s at format version %d", sh, dir, artifact.FormatVersion)
	}
}

// TestRequestValidation pins the shared Table 2 validator and the
// error taxonomy of the API surface: the same inputs that must not
// panic the CLIs must come back as clean 4xx JSON errors here, each
// carrying its machine-readable {"error":{"code":...}} body.
func TestRequestValidation(t *testing.T) {
	ts := newTestServer(t, Config{})
	cases := []struct {
		url  string
		code int
		tax  string
	}{
		{"/v1/predict", http.StatusBadRequest, "bad_request"},                      // missing bench
		{"/v1/predict?bench=nosuch", http.StatusNotFound, "not_found"},             // unknown workload
		{"/v1/predict?bench=crc32&width=0", http.StatusBadRequest, "bad_request"},  // below Table 2
		{"/v1/predict?bench=crc32&width=7", http.StatusBadRequest, "bad_request"},  // above Table 2
		{"/v1/predict?bench=crc32&l2kb=100", http.StatusBadRequest, "bad_request"}, // non-power-of-two L2
		{"/v1/predict?bench=crc32&l2ways=5", http.StatusBadRequest, "bad_request"}, // bad associativity
		{"/v1/predict?bench=crc32&stages=6", http.StatusBadRequest, "bad_request"}, // bad depth
		{"/v1/predict?bench=crc32&pred=alwaystaken", http.StatusBadRequest, "bad_request"},
		{"/v1/predict?bench=crc32&width=abc", http.StatusBadRequest, "bad_request"},        // non-integer
		{"/v1/predict?bench=crc32&validate=yes", http.StatusBadRequest, "bad_request"},     // non-boolean
		{"/v1/predict?bench=crc32&predictor=hybrid", http.StatusBadRequest, "bad_request"}, // misspelled param
		{"/v1/explore?bench=crc32&l2_kb=256", http.StatusBadRequest, "bad_request"},        // misspelled filter
		{"/v1/explore?bench=crc32&l2kb=100", http.StatusBadRequest, "bad_request"},         // bad filter
		{"/v1/explore", http.StatusBadRequest, "bad_request"},                              // missing bench
	}
	for _, c := range cases {
		resp, err := http.Get(ts.URL + c.url)
		if err != nil {
			t.Fatal(err)
		}
		var body ErrorBody
		_ = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if resp.StatusCode != c.code {
			t.Errorf("%s: status %d, want %d", c.url, resp.StatusCode, c.code)
		}
		if body.Error.Code != c.tax {
			t.Errorf("%s: error code %q, want %q", c.url, body.Error.Code, c.tax)
		}
		if body.Error.Message == "" {
			t.Errorf("%s: no JSON error message", c.url)
		}
	}

	// A negative top is clamped (the dse-explore CLI used to panic on
	// this): the full filtered space comes back, no error.
	var got ExploreResponse
	resp := getJSON(t, ts.URL+"/v1/explore?bench=crc32&width=1&l2kb=128&l2ways=8&pred=gshare&top=-3", &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("negative top: status %d", resp.StatusCode)
	}
	if got.Count != 3 || len(got.Points) != 3 { // 3 depth/frequency settings remain
		t.Fatalf("negative top: %d points (len %d), want 3", got.Count, len(got.Points))
	}
}
