package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/par"
)

// Error taxonomy codes. Every failing response carries exactly one of
// these in {"error":{"code":...}}, so clients and load balancers can
// branch on machine-readable causes instead of parsing messages.
const (
	codeBadRequest   = "bad_request"       // 400: the request itself is malformed
	codeNotFound     = "not_found"         // 404: unknown benchmark
	codeOverloaded   = "overloaded"        // 429: shed by the admission queue; retry later
	codeInternal     = "internal"          // 500: a compute path failed
	codePanic        = "panic"             // 500: a handler panicked (recovered)
	codeCancelled    = "cancelled"         // 503: the client went away mid-request
	codeDeadline     = "deadline_exceeded" // 503: the per-endpoint deadline elapsed
	codeShuttingDown = "shutting_down"     // 503: queued behind a draining server
)

// codeStatus maps taxonomy codes to their HTTP statuses.
var codeStatus = map[string]int{
	codeBadRequest:   http.StatusBadRequest,
	codeNotFound:     http.StatusNotFound,
	codeOverloaded:   http.StatusTooManyRequests,
	codeInternal:     http.StatusInternalServerError,
	codePanic:        http.StatusInternalServerError,
	codeCancelled:    http.StatusServiceUnavailable,
	codeDeadline:     http.StatusServiceUnavailable,
	codeShuttingDown: http.StatusServiceUnavailable,
}

// classify maps an error to its taxonomy code. Lifecycle errors —
// cancellation, deadlines, shed load, a draining queue — win over the
// handler's fallback, because they can surface from any depth of the
// compute stack wrapped in arbitrary context.
func classify(err error, fallback string) string {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return codeDeadline
	case errors.Is(err, context.Canceled):
		return codeCancelled
	case errors.Is(err, par.ErrQueueFull), errors.Is(err, par.ErrQueueWait):
		return codeOverloaded
	case errors.Is(err, par.ErrQueueClosed):
		return codeShuttingDown
	}
	return fallback
}

// ErrorBody is the JSON shape of every failing response.
type ErrorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// writeErr classifies err against the taxonomy (fallback names the
// handler's own diagnosis), bumps the matching counters, and writes
// the error body. Shed responses carry Retry-After so well-behaved
// clients back off.
func (s *Server) writeErr(w http.ResponseWriter, err error, fallback string) {
	code := classify(err, fallback)
	s.errCount.Add(1)
	switch code {
	case codeCancelled:
		s.cancelled.Add(1)
	case codeDeadline:
		s.deadlineExceeded.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	if code == codeOverloaded {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(codeStatus[code])
	var body ErrorBody
	body.Error.Code = code
	body.Error.Message = err.Error()
	_ = json.NewEncoder(w).Encode(body)
}
