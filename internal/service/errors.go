package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/ingest"
	"repro/internal/par"
)

// Error taxonomy codes. Every failing response carries exactly one of
// these in {"error":{"code":...}}, so clients and load balancers can
// branch on machine-readable causes instead of parsing messages.
const (
	codeBadRequest   = "bad_request"       // 400: the request itself is malformed
	codeNotFound     = "not_found"         // 404: unknown benchmark
	codeOverloaded   = "overloaded"        // 429: shed by the admission queue; retry later
	codeInternal     = "internal"          // 500: a compute path failed
	codePanic        = "panic"             // 500: a handler panicked (recovered)
	codeCancelled    = "cancelled"         // 503: the client went away mid-request
	codeDeadline     = "deadline_exceeded" // 503: the per-endpoint deadline elapsed
	codeShuttingDown = "shutting_down"     // 503: queued behind a draining server

	// Ingestion codes (POST /v1/workloads and the shared body cap).
	codePayloadTooLarge = "payload_too_large" // 413: body or source over the byte cap
	codeInvalidProgram  = "invalid_program"   // 400: submission failed parse/structural limits
	codeBudgetExceeded  = "budget_exceeded"   // 422: submission blew its execution budget
	codeExecFailed      = "execution_failed"  // 422: submission faulted while executing
	codeQuotaExceeded   = "quota_exceeded"    // 429: tenant over a storage/concurrency quota
)

// codeStatus maps taxonomy codes to their HTTP statuses.
var codeStatus = map[string]int{
	codeBadRequest:   http.StatusBadRequest,
	codeNotFound:     http.StatusNotFound,
	codeOverloaded:   http.StatusTooManyRequests,
	codeInternal:     http.StatusInternalServerError,
	codePanic:        http.StatusInternalServerError,
	codeCancelled:    http.StatusServiceUnavailable,
	codeDeadline:     http.StatusServiceUnavailable,
	codeShuttingDown: http.StatusServiceUnavailable,

	codePayloadTooLarge: http.StatusRequestEntityTooLarge,
	codeInvalidProgram:  http.StatusBadRequest,
	codeBudgetExceeded:  http.StatusUnprocessableEntity,
	codeExecFailed:      http.StatusUnprocessableEntity,
	codeQuotaExceeded:   http.StatusTooManyRequests,
}

// classify maps an error to its taxonomy code. Lifecycle errors —
// cancellation, deadlines, shed load, a draining queue — win over the
// handler's fallback, because they can surface from any depth of the
// compute stack wrapped in arbitrary context.
func classify(err error, fallback string) string {
	// Ingestion verdicts come first: the sandbox has already separated
	// the submission's own budget overrun (ErrBudget) from the request's
	// lifecycle (raw ctx.Err()), so a wall-clock-killed program must not
	// be re-filed under deadline_exceeded below.
	var tooBig *http.MaxBytesError
	switch {
	case errors.As(err, &tooBig), errors.Is(err, ingest.ErrTooLarge):
		return codePayloadTooLarge
	case errors.Is(err, ingest.ErrQuota):
		return codeQuotaExceeded
	case errors.Is(err, ingest.ErrBudget):
		return codeBudgetExceeded
	case errors.Is(err, ingest.ErrRuntime):
		return codeExecFailed
	case errors.Is(err, ingest.ErrInvalid):
		return codeInvalidProgram
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return codeDeadline
	case errors.Is(err, context.Canceled):
		return codeCancelled
	case errors.Is(err, par.ErrQueueFull), errors.Is(err, par.ErrQueueWait):
		return codeOverloaded
	case errors.Is(err, par.ErrQueueClosed):
		return codeShuttingDown
	}
	return fallback
}

// ErrorBody is the JSON shape of every failing response.
type ErrorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// countErr classifies err against the taxonomy (fallback names the
// handler's own diagnosis) and bumps the matching counters without
// writing anything — the NDJSON streaming path reports errors as a
// trailing line on an already-started 200 stream, where the status and
// headers are long gone.
func (s *Server) countErr(err error, fallback string) string {
	code := classify(err, fallback)
	s.errCount.Add(1)
	switch code {
	case codeCancelled:
		s.cancelled.Add(1)
	case codeDeadline:
		s.deadlineExceeded.Add(1)
	}
	return code
}

// writeErr classifies and counts err via countErr, then writes the
// error body. Shed responses carry Retry-After so well-behaved
// clients back off.
func (s *Server) writeErr(w http.ResponseWriter, err error, fallback string) {
	code := s.countErr(err, fallback)
	w.Header().Set("Content-Type", "application/json")
	if code == codeOverloaded {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(codeStatus[code])
	var body ErrorBody
	body.Error.Code = code
	body.Error.Message = err.Error()
	_ = json.NewEncoder(w).Encode(body)
}
