package service

import (
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/cluster"
)

// fleetNode is one member of a test fleet: a Server bound to a real
// TCP listener (the proxy dials peer addresses, so httptest's
// URL-per-server shape doesn't fit).
type fleetNode struct {
	srv  *Server
	addr string
	hs   *http.Server
}

func (n *fleetNode) url(path string) string { return "http://" + n.addr + path }

// readAll drains and closes a response body.
func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// splitBenches are cheap kernels the fleet tests shard over.
var splitBenches = []string{"sha", "crc32", "adpcm_c", "qsort", "dijkstra", "stringsearch"}

// startFleet boots n ring members on ephemeral ports, re-rolling the
// port allocation until every node owns at least one of splitBenches
// (ownership follows the hash of the ephemeral addresses, so a pure
// re-listen redraws the placement). mutate, when non-nil, adjusts each
// node's Config before New.
func startFleet(t *testing.T, n int, mutate func(i int, cfg *Config)) []*fleetNode {
	t.Helper()
	for attempt := 0; attempt < 40; attempt++ {
		lns := make([]net.Listener, n)
		addrs := make([]string, n)
		for i := range lns {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			lns[i] = ln
			addrs[i] = ln.Addr().String()
		}
		ring, err := cluster.New(addrs, 0)
		if err != nil {
			t.Fatal(err)
		}
		owners := make(map[string]bool)
		for _, b := range splitBenches {
			owners[ring.Owner(b)] = true
		}
		if len(owners) < n {
			for _, ln := range lns {
				_ = ln.Close()
			}
			continue
		}
		nodes := make([]*fleetNode, n)
		for i := range lns {
			cfg := Config{
				ClusterSelf:  addrs[i],
				ClusterPeers: addrs,
				ArtifactDir:  t.TempDir(),
			}
			if mutate != nil {
				mutate(i, &cfg)
			}
			node := &fleetNode{srv: mustNew(t, cfg), addr: addrs[i]}
			node.hs = &http.Server{Handler: node.srv.Handler()}
			go func(hs *http.Server, ln net.Listener) { _ = hs.Serve(ln) }(node.hs, lns[i])
			t.Cleanup(func() { _ = node.hs.Close() })
			nodes[i] = node
		}
		return nodes
	}
	t.Fatal("40 port draws never split the benches across all nodes")
	return nil
}

// benchOwnedBy returns a splitBenches member owned (or not owned,
// per want) by the node.
func benchOwnedBy(t *testing.T, node *fleetNode, want bool) string {
	t.Helper()
	for _, b := range splitBenches {
		if node.srv.owned(b) == want {
			return b
		}
	}
	t.Fatalf("no bench with owned=%v on %s", want, node.addr)
	return ""
}

// TestClusterProxiedPredictByteIdentical is the core sharding
// acceptance: asking the wrong node answers byte-identically to a
// single-node deployment, via one proxy hop to the owner.
func TestClusterProxiedPredictByteIdentical(t *testing.T) {
	nodes := startFleet(t, 2, nil)
	a, b := nodes[0], nodes[1]
	bench := benchOwnedBy(t, b, true) // owned by b, so a must proxy
	const params = "&width=2&stages=7&l2kb=256&pred=hybrid"
	query := "/v1/predict?bench=" + bench + params

	solo := newTestServer(t, Config{})
	want := fetchBody(t, solo.URL+query)

	got := fetchBody(t, a.url(query))
	if got != want {
		t.Fatalf("proxied predict differs from single-node:\n solo  %s\n fleet %s", want, got)
	}
	if n := a.srv.proxied.Load(); n != 1 {
		t.Fatalf("non-owner proxied %d requests, want 1", n)
	}
	if n := b.srv.proxyReceived.Load(); n != 1 {
		t.Fatalf("owner received %d forwarded requests, want 1", n)
	}
	// The hop is invisible to the LRU split: only the owner computed.
	if n := a.srv.Pool().ProfileCount(); n != 0 {
		t.Fatalf("non-owner profiled %d workloads, want 0", n)
	}
	if n := b.srv.Pool().ProfileCount(); n != 1 {
		t.Fatalf("owner profiled %d workloads, want 1", n)
	}
}

// TestClusterDisjointHotSets drives every split bench through ONE
// node; proxying must land each workload only on its owner, so the
// two pools partition the set with no overlap.
func TestClusterDisjointHotSets(t *testing.T) {
	nodes := startFleet(t, 2, nil)
	a, b := nodes[0], nodes[1]
	for _, bench := range splitBenches {
		fetchBody(t, a.url("/v1/predict?bench="+bench))
	}
	var wantA, wantB int64
	for _, bench := range splitBenches {
		owner, other := a, b
		if !a.srv.owned(bench) {
			owner, other = b, a
		}
		if owner == a {
			wantA++
		} else {
			wantB++
		}
		if !owner.srv.Pool().Resident(bench) {
			t.Errorf("bench %s not resident on its owner %s", bench, owner.addr)
		}
		if other.srv.Pool().Resident(bench) {
			t.Errorf("bench %s resident on non-owner %s: hot sets overlap", bench, other.addr)
		}
	}
	if gotA, gotB := a.srv.Pool().ProfileCount(), b.srv.Pool().ProfileCount(); gotA != wantA || gotB != wantB {
		t.Fatalf("profile counts (a=%d, b=%d) don't match ownership (a=%d, b=%d)",
			gotA, gotB, wantA, wantB)
	}
}

// TestClusterPeerArtifactRehydration: after the owner profiles and
// persists a workload, a peer forced to serve it locally (forwarded
// request — the loop guard path) answers byte-identically with ZERO
// profiling runs: the artifact tier pulled the owner's stored planes
// over HTTP instead of recomputing.
func TestClusterPeerArtifactRehydration(t *testing.T) {
	nodes := startFleet(t, 2, nil)
	a, b := nodes[0], nodes[1]
	bench := benchOwnedBy(t, b, true)
	// validate=true persists the mem/branch planes too, so the peer's
	// validated replay rehydrates everything.
	query := "/v1/predict?bench=" + bench + "&width=2&stages=7&l2kb=256&pred=hybrid&validate=true"
	want := fetchBody(t, b.url(query))

	// A forwarded request pins a to its local compute path (the loop
	// guard forbids a second hop), exactly what a would do for this
	// bench if b's member entry vanished from a future member list.
	req, err := http.NewRequest("GET", a.url(query), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(ForwardedHeader, b.addr)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded predict on non-owner: status %d: %s", resp.StatusCode, body)
	}
	if body != want {
		t.Fatalf("peer-rehydrated predict differs from owner's:\n owner %s\n peer  %s", want, body)
	}
	if n := a.srv.Pool().ProfileCount(); n != 0 {
		t.Fatalf("peer ran %d profiling runs, want 0 (artifact came from the owner)", n)
	}
	if n := a.srv.Pool().DiskHitCount(); n != 1 {
		t.Fatalf("peer disk hits = %d, want 1", n)
	}
	st := a.srv.remote.Stats()
	if st.Hits == 0 {
		t.Fatalf("remote tier never fetched from the owner: %+v", st)
	}
	if n := b.srv.artifactsServed.Load(); n == 0 {
		t.Fatal("owner served no raw artifacts")
	}
}

// TestClusterOwnerDownFallsBackLocal: killing the owner must not fail
// a single request — the non-owner detects the dead peer and computes
// locally, counting the degradation.
func TestClusterOwnerDownFallsBackLocal(t *testing.T) {
	nodes := startFleet(t, 2, func(i int, cfg *Config) {
		cfg.ProxyTimeout = 2 * time.Second
	})
	a, b := nodes[0], nodes[1]
	bench := benchOwnedBy(t, b, true)
	if err := b.hs.Close(); err != nil {
		t.Fatal(err)
	}
	body := fetchBody(t, a.url("/v1/predict?bench="+bench))
	if body == "" {
		t.Fatal("empty predict body")
	}
	if n := a.srv.proxyFallback.Load(); n < 1 {
		t.Fatalf("proxy_fallback_local = %d, want >= 1", n)
	}
	if n := a.srv.Pool().ProfileCount(); n != 1 {
		t.Fatalf("fallback profiled %d workloads, want 1 (local compute)", n)
	}
}

// TestProxyLoopGuard is the regression for the single-hop rule: a
// request already carrying the forwarded header is served locally by
// a non-owner, never forwarded again.
func TestProxyLoopGuard(t *testing.T) {
	nodes := startFleet(t, 2, nil)
	a, b := nodes[0], nodes[1]
	bench := benchOwnedBy(t, a, false) // a is NOT the owner
	req, err := http.NewRequest("GET", a.url("/v1/predict?bench="+bench), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(ForwardedHeader, b.addr)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded request on non-owner: status %d: %s", resp.StatusCode, body)
	}
	if n := a.srv.proxied.Load(); n != 0 {
		t.Fatalf("non-owner re-forwarded %d forwarded requests: loop guard broken", n)
	}
	if n := a.srv.proxyReceived.Load(); n != 1 {
		t.Fatalf("proxy_received = %d, want 1", n)
	}
	// The loop guard implies local compute.
	if n := a.srv.Pool().ProfileCount(); n != 1 {
		t.Fatalf("non-owner profiled %d workloads under the loop guard, want 1", n)
	}
}

// TestClusterConfigValidation pins the fleet misconfiguration
// rejections.
func TestClusterConfigValidation(t *testing.T) {
	if _, err := New(Config{ClusterPeers: []string{"a:1"}}); err == nil {
		t.Fatal("peers without self accepted")
	}
	if _, err := New(Config{ClusterSelf: "b:1", ClusterPeers: []string{"a:1"}}); err == nil {
		t.Fatal("self outside the peer list accepted")
	}
	srv, err := New(Config{ClusterSelf: "a:1", ClusterPeers: []string{"a:1"}})
	if err != nil {
		t.Fatalf("single-member fleet rejected: %v", err)
	}
	if !srv.owned("anything") {
		t.Fatal("single-member fleet does not own every workload")
	}
}
