package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ingest"
)

// Adversarial ingestion suite: every hostile shape a tenant can throw
// at POST /v1/workloads must come back as a machine-readable taxonomy
// error, with the server still healthy, counters pinned, and no
// goroutines leaked. The well-behaved path must produce a workload
// indistinguishable from a built-in.

const (
	ingGood = ".mem 64\nmain:\n li r1, 0\n li r2, 200\n li r3, 0\nloop:\n add r3, r3, r1\n addi r1, r1, 1\n blt r1, r2, loop\nend:\n st r3, 0x10(r0)\n halt\n"
	// ingGood2 differs in one immediate: a distinct fingerprint.
	ingGood2 = ".mem 64\nmain:\n li r1, 0\n li r2, 100\n li r3, 0\nloop:\n add r3, r3, r1\n addi r1, r1, 1\n blt r1, r2, loop\nend:\n st r3, 0x10(r0)\n halt\n"
	ingSpin  = ".mem 8\nmain:\n li r1, 0\nloop:\n addi r1, r1, 1\n jmp loop\n"
	ingOOB   = ".mem 8\nmain:\n li r1, 7\n st r1, 4096(r0)\n halt\n"
)

// postCtx drives one POST through the full handler chain.
func postCtx(srv *Server, ctx context.Context, url, body, tenant string) *httptest.ResponseRecorder {
	req := httptest.NewRequest("POST", url, strings.NewReader(body)).WithContext(ctx)
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	return rec
}

func submit(t *testing.T, srv *Server, body, tenant string, wantStatus int) IngestResponse {
	t.Helper()
	rec := postCtx(srv, context.Background(), "/v1/workloads", body, tenant)
	if rec.Code != wantStatus {
		t.Fatalf("submission answered %d (%s), want %d", rec.Code, rec.Body.String(), wantStatus)
	}
	var resp IngestResponse
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatalf("decoding ingest response: %v", err)
	}
	return resp
}

// TestIngestEndToEnd: the well-behaved path. Submit, predict by the
// returned name, re-submit as a different tenant (shared content, no
// second profiling run), and see it listed beside the built-ins.
func TestIngestEndToEnd(t *testing.T) {
	srv := mustNew(t, Config{})
	resp := submit(t, srv, ingGood, "team-a", http.StatusCreated)
	if !strings.HasPrefix(resp.Name, "user-") || !resp.Created || !resp.Resident {
		t.Fatalf("unexpected response: %+v", resp)
	}
	if resp.Instructions == 0 {
		t.Fatal("accepted workload profiled zero instructions")
	}

	rec := serveCtx(srv, context.Background(), "/v1/predict?bench="+resp.Name+"&validate=true")
	if rec.Code != http.StatusOK {
		t.Fatalf("predict on ingested workload answered %d: %s", rec.Code, rec.Body.String())
	}

	// Identical content from another tenant: duplicate, one profile.
	dup := submit(t, srv, ingGood, "team-b", http.StatusOK)
	if dup.Created || dup.Name != resp.Name || dup.Fingerprint != resp.Fingerprint {
		t.Fatalf("duplicate submission diverged: %+v vs %+v", dup, resp)
	}
	if n := srv.Pool().ProfileCount(); n != 1 {
		t.Fatalf("profiling runs = %d, want 1 (content shared across tenants)", n)
	}

	// Listed with the user domain.
	recW := serveCtx(srv, context.Background(), "/v1/workloads")
	var list struct {
		Workloads []WorkloadInfo `json:"workloads"`
	}
	if err := json.NewDecoder(recW.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, wl := range list.Workloads {
		if wl.Name == resp.Name {
			found = wl.Domain == IngestedDomain && wl.Resident
		}
	}
	if !found {
		t.Fatalf("ingested workload missing or mislabeled in %+v", list.Workloads)
	}

	m := srv.MetricsSnapshot()
	if m.Ingest.Submitted != 2 || m.Ingest.Accepted != 2 || m.Ingest.Created != 1 || m.Ingest.Rejected != 0 {
		t.Fatalf("ingest counters = %+v", m.Ingest)
	}
	if m.Ingest.Quota.Tenants != 2 || m.Ingest.Quota.StoredWorkloads != 2 {
		t.Fatalf("quota stats = %+v, want both tenants billed once each", m.Ingest.Quota)
	}
}

// TestIngestHostileShapes: each adversarial payload yields its typed
// rejection; the server stays healthy throughout; nothing leaks.
func TestIngestHostileShapes(t *testing.T) {
	base := runtime.NumGoroutine()
	srv := mustNew(t, Config{
		Ingest: ingest.Limits{
			MaxDynInsts: 50_000,
			MaxRunTime:  2 * time.Second,
		},
	})
	cases := []struct {
		name       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"infinite loop", ingSpin, http.StatusUnprocessableEntity, "budget_exceeded"},
		{"oob store", ingOOB, http.StatusUnprocessableEntity, "execution_failed"},
		{"garbage", "not assembly at all", http.StatusBadRequest, "invalid_program"},
		{"empty body", "", http.StatusBadRequest, "invalid_program"},
		{"memory bomb", ".mem 1099511627776\nmain:\n halt\n", http.StatusBadRequest, "invalid_program"},
		{"block bomb", strings.Repeat("a:\n halt\n", 5000), http.StatusBadRequest, "invalid_program"},
		{"runs off the end", ".mem 8\nmain:\n li r1, 1\n", http.StatusUnprocessableEntity, "execution_failed"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rec := postCtx(srv, context.Background(), "/v1/workloads", c.body, "")
			if rec.Code != c.wantStatus {
				t.Fatalf("answered %d (%s), want %d", rec.Code, rec.Body.String(), c.wantStatus)
			}
			if body := errBody(t, rec); body.Error.Code != c.wantCode {
				t.Fatalf("code %q, want %q", body.Error.Code, c.wantCode)
			}
			// The server must remain fully healthy after every attack.
			if rec := serveCtx(srv, context.Background(), "/healthz"); rec.Code != http.StatusOK {
				t.Fatalf("healthz answered %d after attack", rec.Code)
			}
		})
	}
	m := srv.MetricsSnapshot()
	if m.Ingest.Rejected != int64(len(cases)) || m.Ingest.Accepted != 0 {
		t.Fatalf("rejected = %d accepted = %d, want %d/0", m.Ingest.Rejected, m.Ingest.Accepted, len(cases))
	}
	// Failed submissions must not consume storage quota.
	if m.Ingest.Quota.StoredWorkloads != 0 || m.Ingest.Quota.StoredBytes != 0 {
		t.Fatalf("failed submissions left quota charges: %+v", m.Ingest.Quota)
	}
	if m.Lifecycle.PanicsRecovered != 0 {
		t.Fatalf("attacks caused %d handler panics", m.Lifecycle.PanicsRecovered)
	}
	settle(t, base, "hostile ingestion")
}

// TestIngestOversizedBodies: both walls answer 413 payload_too_large —
// the coarse transport cap (MaxBytesReader) and the precise
// source-byte limit behind it.
func TestIngestOversizedBodies(t *testing.T) {
	srv := mustNew(t, Config{
		MaxBodyBytes: 4 << 10,
		Ingest:       ingest.Limits{MaxSourceBytes: 1 << 10},
	})
	t.Run("transport cap", func(t *testing.T) {
		rec := postCtx(srv, context.Background(), "/v1/workloads", strings.Repeat("x", 64<<10), "")
		if rec.Code != http.StatusRequestEntityTooLarge {
			t.Fatalf("answered %d, want 413", rec.Code)
		}
		if body := errBody(t, rec); body.Error.Code != "payload_too_large" {
			t.Fatalf("code %q, want payload_too_large", body.Error.Code)
		}
	})
	t.Run("source cap", func(t *testing.T) {
		// Fits the transport cap, exceeds the source cap.
		rec := postCtx(srv, context.Background(), "/v1/workloads", strings.Repeat(";\n", 1<<10), "")
		if rec.Code != http.StatusRequestEntityTooLarge {
			t.Fatalf("answered %d, want 413", rec.Code)
		}
		if body := errBody(t, rec); body.Error.Code != "payload_too_large" {
			t.Fatalf("code %q, want payload_too_large", body.Error.Code)
		}
	})
}

// TestIngestQuotaExhaustion: a tenant at its workload cap gets 429
// quota_exceeded; other tenants are untouched; rejections are counted.
func TestIngestQuotaExhaustion(t *testing.T) {
	srv := mustNew(t, Config{Quota: ingest.QuotaConfig{MaxWorkloads: 1}})
	submit(t, srv, ingGood, "hog", http.StatusCreated)

	rec := postCtx(srv, context.Background(), "/v1/workloads", ingGood2, "hog")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota submission answered %d (%s), want 429", rec.Code, rec.Body.String())
	}
	if body := errBody(t, rec); body.Error.Code != "quota_exceeded" {
		t.Fatalf("code %q, want quota_exceeded", body.Error.Code)
	}

	// The neighbor is unaffected.
	submit(t, srv, ingGood2, "polite", http.StatusCreated)

	m := srv.MetricsSnapshot()
	if m.Ingest.Quota.Rejections == 0 {
		t.Fatal("quota rejection not counted")
	}
	// The hog re-submitting content it already holds stays free (idempotent).
	submit(t, srv, ingGood, "hog", http.StatusOK)
}

// TestIngestBudgetFailureRefundsQuota: a submission that dies in the
// sandbox must not eat the tenant's storage quota.
func TestIngestBudgetFailureRefundsQuota(t *testing.T) {
	srv := mustNew(t, Config{
		Ingest: ingest.Limits{MaxDynInsts: 10_000},
		Quota:  ingest.QuotaConfig{MaxWorkloads: 1},
	})
	rec := postCtx(srv, context.Background(), "/v1/workloads", ingSpin, "t1")
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("spin answered %d, want 422", rec.Code)
	}
	// The single workload slot must still be free.
	submit(t, srv, ingGood, "t1", http.StatusCreated)
}

// TestIngestConcurrentDuplicates: N racing submissions of one program
// singleflight onto one profiling run, one registration, one charge.
func TestIngestConcurrentDuplicates(t *testing.T) {
	srv := mustNew(t, Config{Quota: ingest.QuotaConfig{MaxInFlight: 64}})
	const n = 16
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := postCtx(srv, context.Background(), "/v1/workloads", ingGood, "racer")
			codes[i] = rec.Code
		}(i)
	}
	wg.Wait()
	created, dup := 0, 0
	for _, c := range codes {
		switch c {
		case http.StatusCreated:
			created++
		case http.StatusOK:
			dup++
		default:
			t.Fatalf("racing submission answered %d", c)
		}
	}
	if created != 1 || dup != n-1 {
		t.Fatalf("created=%d dup=%d, want 1/%d", created, dup, n-1)
	}
	if pc := srv.Pool().ProfileCount(); pc != 1 {
		t.Fatalf("profiling runs = %d, want 1", pc)
	}
	m := srv.MetricsSnapshot()
	if m.Ingest.Registered != 1 {
		t.Fatalf("registered = %d, want 1", m.Ingest.Registered)
	}
	if m.Ingest.Quota.StoredWorkloads != 1 {
		t.Fatalf("quota charges = %d, want 1", m.Ingest.Quota.StoredWorkloads)
	}
}

// TestIngestInFlightQuota: a tenant's concurrent submissions beyond
// MaxInFlight are rejected while a slow job holds the slot.
func TestIngestInFlightQuota(t *testing.T) {
	srv := mustNew(t, Config{
		Ingest: ingest.Limits{MaxDynInsts: 1 << 30, MaxRunTime: 10 * time.Second},
		Quota:  ingest.QuotaConfig{MaxInFlight: 1},
	})
	// Big-but-finite loop: holds the in-flight slot long enough to race.
	slow := ".mem 8\nmain:\n li r1, 0\n li r2, 50000000\nloop:\n addi r1, r1, 1\n blt r1, r2, loop\n halt\n"
	started := make(chan struct{})
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		close(started)
		done <- postCtx(srv, context.Background(), "/v1/workloads", slow, "busy")
	}()
	<-started
	// Poll until the slot is observably held, then expect rejection.
	deadline := time.Now().Add(5 * time.Second)
	var rec *httptest.ResponseRecorder
	for {
		rec = postCtx(srv, context.Background(), "/v1/workloads", ingGood, "busy")
		if rec.Code == http.StatusTooManyRequests || time.Now().After(deadline) {
			break
		}
		if rec.Code == http.StatusCreated || rec.Code == http.StatusOK {
			// Raced ahead of the slow job; the slow one will hold next.
			time.Sleep(5 * time.Millisecond)
			continue
		}
		t.Fatalf("unexpected status %d (%s)", rec.Code, rec.Body.String())
	}
	if rec.Code == http.StatusTooManyRequests {
		if body := errBody(t, rec); body.Error.Code != "quota_exceeded" {
			t.Fatalf("code %q, want quota_exceeded", body.Error.Code)
		}
	}
	<-done
}

// TestIngestWarmRestart: a restarted server serves a previously
// ingested workload byte-identically with zero profiling runs — the
// registry restores the name, the artifact store restores the trace.
func TestIngestWarmRestart(t *testing.T) {
	dir := t.TempDir()

	srv1 := mustNew(t, Config{ArtifactDir: dir})
	resp := submit(t, srv1, ingGood, "team-a", http.StatusCreated)
	if !resp.Stored {
		t.Fatal("submission not persisted despite a configured artifact dir")
	}
	rec1 := serveCtx(srv1, context.Background(), "/v1/predict?bench="+resp.Name+"&validate=true")
	if rec1.Code != http.StatusOK {
		t.Fatalf("predict answered %d", rec1.Code)
	}

	// "Restart": a fresh server over the same directory.
	srv2 := mustNew(t, Config{ArtifactDir: dir})
	if n, err := srv2.WarmStart(); err != nil || n != 1 {
		t.Fatalf("warm start rehydrated %d workloads (err %v), want 1", n, err)
	}
	rec2 := serveCtx(srv2, context.Background(), "/v1/predict?bench="+resp.Name+"&validate=true")
	if rec2.Code != http.StatusOK {
		t.Fatalf("warm predict answered %d (%s)", rec2.Code, rec2.Body.String())
	}
	if rec1.Body.String() != rec2.Body.String() {
		t.Fatal("warm-restarted prediction is not byte-identical")
	}
	if pc := srv2.Pool().ProfileCount(); pc != 0 {
		t.Fatalf("warm server executed %d profiling runs, want 0", pc)
	}
	if dh := srv2.Pool().DiskHitCount(); dh != 1 {
		t.Fatalf("disk hits = %d, want 1", dh)
	}
	m := srv2.MetricsSnapshot()
	if m.Ingest.Registered != 1 || m.Ingest.RegistryLoadErrors != 0 {
		t.Fatalf("restarted registry state: %+v", m.Ingest)
	}
}

// TestIngestEvictionReprofilesUnderSandbox: without an artifact store,
// an evicted ingested workload re-profiles on demand from the registry
// — still inside the sandbox.
func TestIngestEvictionReprofilesUnderSandbox(t *testing.T) {
	srv := mustNew(t, Config{MaxWorkloads: 1})
	resp := submit(t, srv, ingGood, "", http.StatusCreated)
	// Evict it by admitting a different workload into the single slot.
	submit(t, srv, ingGood2, "", http.StatusCreated)
	rec := serveCtx(srv, context.Background(), "/v1/predict?bench="+resp.Name)
	if rec.Code != http.StatusOK {
		t.Fatalf("predict after eviction answered %d (%s)", rec.Code, rec.Body.String())
	}
	if pc := srv.Pool().ProfileCount(); pc != 3 {
		t.Fatalf("profiling runs = %d, want 3 (two admissions + one re-profile)", pc)
	}
}
