package service

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/artifact"
)

// fetchBody returns a response body as a string, failing on non-200.
func fetchBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return string(body)
}

// TestWarmStartServesFromDiskBitIdentically is the service half of the
// acceptance criteria: a second server booting on a populated artifact
// dir performs zero profiling (counter-pinned) and its /v1/predict
// responses are byte-identical to the fresh server's.
func TestWarmStartServesFromDiskBitIdentically(t *testing.T) {
	dir := t.TempDir()
	const query = "/v1/predict?bench=crc32&width=2&stages=7&l2kb=256&pred=hybrid&validate=true"

	cold := mustNew(t, Config{ArtifactDir: dir})
	tsCold := httptest.NewServer(cold.Handler())
	defer tsCold.Close()
	coldBody := fetchBody(t, tsCold.URL+query)
	if n := cold.Pool().ProfileCount(); n != 1 {
		t.Fatalf("cold server ran %d profiles, want 1", n)
	}

	warm := mustNew(t, Config{ArtifactDir: dir})
	loaded, err := warm.WarmStart()
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 1 {
		t.Fatalf("WarmStart rehydrated %d workloads, want 1", loaded)
	}
	tsWarm := httptest.NewServer(warm.Handler())
	defer tsWarm.Close()
	warmBody := fetchBody(t, tsWarm.URL+query)
	if n := warm.Pool().ProfileCount(); n != 0 {
		t.Fatalf("warm server ran %d profiles, want 0", n)
	}
	if warm.Pool().DiskHitCount() != 1 {
		t.Fatalf("warm server disk hits = %d, want 1", warm.Pool().DiskHitCount())
	}
	if coldBody != warmBody {
		t.Fatalf("from-disk prediction differs from fresh:\n cold: %s\n warm: %s", coldBody, warmBody)
	}

	// Warm-start respects the MaxWorkloads bound.
	bounded := mustNew(t, Config{ArtifactDir: dir, MaxWorkloads: 1})
	if n, err := bounded.WarmStart(); err != nil || n > 1 {
		t.Fatalf("bounded WarmStart = %d, %v; want <= 1 rehydrations and no error", n, err)
	}
}

// TestArtifactsEndpoint pins the listing + residency surface.
func TestArtifactsEndpoint(t *testing.T) {
	dir := t.TempDir()
	srv := mustNew(t, Config{ArtifactDir: dir})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var empty ArtifactsResponse
	getJSON(t, ts.URL+"/v1/artifacts", &empty)
	if !empty.Enabled || empty.Dir != dir || len(empty.Entries) != 0 {
		t.Fatalf("empty store listing = %+v", empty)
	}

	resp, err := http.Get(ts.URL + "/v1/predict?bench=crc32&validate=true")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var got ArtifactsResponse
	getJSON(t, ts.URL+"/v1/artifacts", &got)
	if got.FormatVersion != artifact.FormatVersion {
		t.Fatalf("format version %d, want %d", got.FormatVersion, artifact.FormatVersion)
	}
	// A validated predict writes the workload plus one mem plane and
	// one branch plane through to disk.
	kinds := map[string]int{}
	for _, e := range got.Entries {
		kinds[e.Kind]++
	}
	if kinds["workload"] != 1 || kinds["mem-plane"] != 1 || kinds["branch-plane"] != 1 {
		t.Fatalf("store kinds after validated predict = %v, want one of each", kinds)
	}
	found := false
	for _, w := range got.Workloads {
		if w.Name == "crc32" {
			found = true
			if !w.Stored || !w.Resident || w.Key == "" {
				t.Fatalf("crc32 residency row = %+v, want stored+resident", w)
			}
		} else if w.Stored || w.Resident {
			t.Fatalf("%s claims artifacts without being requested: %+v", w.Name, w)
		}
	}
	if !found {
		t.Fatal("crc32 missing from artifact residency rows")
	}

	// Without a store the endpoint reports disabled rather than erroring.
	plain := newTestServer(t, Config{})
	var off ArtifactsResponse
	getJSON(t, plain.URL+"/v1/artifacts", &off)
	if off.Enabled || off.Dir != "" {
		t.Fatalf("store-less listing = %+v, want disabled", off)
	}
}
