package harness

import (
	"testing"

	"repro/internal/uarch"
	"repro/internal/workloads"
)

// TestCollectorsMatchSimulatorCounts pins a structural invariant the
// model depends on: the cache/TLB/branch event counts collected by the
// profiling-side collectors must be exactly the counts the detailed
// simulator observes (same trace, same configuration), because the
// model charges penalties for precisely those events.
func TestCollectorsMatchSimulatorCounts(t *testing.T) {
	cfg := uarch.Default()
	for _, name := range []string{"sha", "dijkstra", "tiff2bw", "lbm_like"} {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, err := workloads.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			pw := MustProfileProgram(spec.Build())
			ms, bs, err := MachineStats(pw.Trace, cfg)
			if err != nil {
				t.Fatal(err)
			}
			v, err := pw.Validate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sim := v.Sim
			if sim.Cache.DL1Misses != ms.DL1Misses || sim.Cache.DL2Misses != ms.DL2Misses {
				t.Errorf("D-miss counts differ: sim %d/%d vs collector %d/%d",
					sim.Cache.DL1Misses, sim.Cache.DL2Misses, ms.DL1Misses, ms.DL2Misses)
			}
			if sim.Cache.IL1Misses != ms.IL1Misses || sim.Cache.IL2Misses != ms.IL2Misses {
				t.Errorf("I-miss counts differ: sim %d/%d vs collector %d/%d",
					sim.Cache.IL1Misses, sim.Cache.IL2Misses, ms.IL1Misses, ms.IL2Misses)
			}
			if sim.Cache.DTLBMisses != ms.DTLBMisses || sim.Cache.ITLBMisses != ms.ITLBMisses {
				t.Errorf("TLB counts differ: sim %d/%d vs collector %d/%d",
					sim.Cache.ITLBMisses, sim.Cache.DTLBMisses, ms.ITLBMisses, ms.DTLBMisses)
			}
			if sim.Mispredicts != bs.Mispredicts {
				t.Errorf("mispredicts differ: sim %d vs collector %d", sim.Mispredicts, bs.Mispredicts)
			}
			if sim.TakenBubbles != bs.TakenBubbles() {
				t.Errorf("taken bubbles differ: sim %d vs collector %d", sim.TakenBubbles, bs.TakenBubbles())
			}
		})
	}
}

// TestProfileOnceSufficesAcrossWidths verifies the paper's central
// workflow property: the same Profiled value serves every design
// point — predictions must depend only on (profile, machine stats),
// not on hidden state accumulated across Predict calls.
func TestProfileOnceSufficesAcrossWidths(t *testing.T) {
	spec, err := workloads.ByName("gsm_c")
	if err != nil {
		t.Fatal(err)
	}
	pw := MustProfileProgram(spec.Build())
	cfg := uarch.Default()
	first := make(map[int]float64)
	for round := 0; round < 2; round++ {
		for w := 1; w <= 4; w++ {
			st, err := pw.Predict(cfg.WithWidth(w))
			if err != nil {
				t.Fatal(err)
			}
			if round == 0 {
				first[w] = st.CPI()
			} else if st.CPI() != first[w] {
				t.Errorf("W=%d: prediction changed across calls: %f vs %f", w, st.CPI(), first[w])
			}
		}
	}
	// Wider cannot be slower according to the base term; total CPI may
	// cross slightly, but cycles at W=4 must undercut W=1 for gsm_c.
	if !(first[4] < first[1]) {
		t.Errorf("CPI at W=4 (%f) not below W=1 (%f)", first[4], first[1])
	}
}

func TestValidationAccessors(t *testing.T) {
	v := Validation{ModelCPI: 1.1, SimCPI: 1.0}
	if e := v.AbsErr(); e < 0.0999 || e > 0.1001 {
		t.Errorf("AbsErr = %f", e)
	}
	if (Validation{}).AbsErr() != 0 {
		t.Error("zero validation AbsErr not 0")
	}
}

func TestProfileProgramErrors(t *testing.T) {
	spec, _ := workloads.ByName("sha")
	p := spec.Build()
	p.MemWords = 0 // break it
	if _, err := ProfileProgram(p); err == nil {
		t.Error("broken program profiled without error")
	}
}
