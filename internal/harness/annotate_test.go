package harness

import (
	"testing"

	"repro/internal/pipeline"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

// TestSimulateDetailedMatchesSimulate pins the harness-level fast
// path (plane cache + timing memo) against the self-contained
// simulator, including the memoized-reuse path: two configurations
// sharing planes and timing must both come out bit-identical.
func TestSimulateDetailedMatchesSimulate(t *testing.T) {
	spec, err := workloads.ByName("dijkstra")
	if err != nil {
		t.Fatal(err)
	}
	pw := MustProfileProgram(spec.Build())
	base := uarch.Default()
	cfgs := []uarch.Config{
		base,
		base, // repeated: memoized timing, stamped stats
		base.WithL2(1024, 16),
		base.WithWidth(2).WithPredictor(uarch.PredHybrid3_5KB),
	}
	for i, cfg := range cfgs {
		got, err := pw.SimulateDetailed(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := pipeline.Simulate(pw.Trace, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("cfg %d (%s): SimulateDetailed diverges:\n got  %+v\n want %+v", i, cfg, got, want)
		}
	}
}

// TestEnsureAnnotatedFailureIsRetryable pins the error handling of
// the plane cache: a bad hierarchy in a batch must not poison valid
// components, and the failed entry must be evicted so later calls see
// the error again (a retry) instead of silently-cached staleness.
func TestEnsureAnnotatedFailureIsRetryable(t *testing.T) {
	spec, err := workloads.ByName("crc32")
	if err != nil {
		t.Fatal(err)
	}
	pw := MustProfileProgram(spec.Build())
	good := uarch.Default()
	bad := uarch.Default()
	bad.Hier.ITLBEntries = 0 // invalid front

	if err := pw.EnsureAnnotated([]uarch.Config{bad, good}, 2); err == nil {
		t.Fatal("EnsureAnnotated accepted an invalid hierarchy")
	}
	// The valid hierarchy from the same batch must be usable.
	if _, err := pw.SimulateDetailed(good); err != nil {
		t.Errorf("valid config poisoned by batch-mate's failure: %v", err)
	}
	// The invalid one must fail again (fresh attempt, not a stale
	// cached error on a zombie entry).
	if err := pw.EnsureAnnotated([]uarch.Config{bad}, 1); err == nil {
		t.Error("second EnsureAnnotated of invalid hierarchy did not error")
	}
	if _, err := pw.SimulateDetailed(good); err != nil {
		t.Errorf("valid config broken after retry of invalid one: %v", err)
	}
}
