package harness

import (
	"context"
	"fmt"

	"repro/internal/cache"
	"repro/internal/par"
	"repro/internal/pipeline"
	"repro/internal/trace"
	"repro/internal/uarch"
)

// safeSimulateAnnotatedBatch runs the config-parallel replay kernel
// with panics converted to errors (see safeAnnotateFront): a panic
// unwinding past claimed timing entries would wedge their waiters.
func safeSimulateAnnotatedBatch(ctx context.Context, tr *trace.Trace, pts []pipeline.BatchPoint) (res []pipeline.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("harness: batch detailed simulation of %d points panicked: %v", len(pts), r)
		}
	}()
	return pipeline.SimulateAnnotatedBatchCtx(ctx, tr, pts)
}

// SimulateDetailedBatch runs the detailed cycle-accurate simulation of
// every design point in cfgs through the config-parallel batch kernel:
// the trace is annotated once per distinct component, the points are
// deduplicated through the same timing memo as SimulateDetailed, and
// all memo-missing points replay together in one pass over each trace
// chunk (pipeline.SimulateAnnotatedBatch), sharded across workers.
// Results are indexed like cfgs and each is bit-identical to
// pipeline.Simulate's — and to SimulateDetailed's, whose memo entries
// this path shares: a point simulated by either path is a memo hit for
// the other.
func (pw *Profiled) SimulateDetailedBatch(cfgs []uarch.Config, workers int) ([]pipeline.Result, error) {
	return pw.SimulateDetailedBatchCtx(context.Background(), cfgs, workers)
}

// SimulateDetailedBatchCtx is SimulateDetailedBatch under a request
// context, with the same claimant/waiter contract as
// SimulateDetailedCtx: own replays abort at chunk boundaries once ctx
// ends, waits on other requests' in-flight entries abandon promptly,
// and another request's cancellation is recomputed rather than
// reported. A cancelled batch resolves and removes every timing entry
// it claimed — no partial memo entries survive.
func (pw *Profiled) SimulateDetailedBatchCtx(ctx context.Context, cfgs []uarch.Config, workers int) ([]pipeline.Result, error) {
	for {
		res, err := pw.simulateDetailedBatch(ctx, cfgs, workers)
		if err != nil && isCancellation(err) && ctx.Err() == nil {
			continue
		}
		return res, err
	}
}

func (pw *Profiled) simulateDetailedBatch(ctx context.Context, cfgs []uarch.Config, workers int) ([]pipeline.Result, error) {
	if len(cfgs) == 0 {
		return nil, nil
	}
	if err := pw.ensureAnnotated(ctx, cfgs, workers, nil); err != nil {
		return nil, err
	}
	anns := make([]pipeline.Annotation, len(cfgs))
	for i, cfg := range cfgs {
		ann, err := pw.annotation(ctx, cfg) // cache hit after ensureAnnotated
		if err != nil {
			return nil, err
		}
		anns[i] = ann
	}

	// Partition the points over the timing memo: the first point of
	// each memo-missing key claims it (singleflight — concurrent
	// requests for the same key wait below), repeat keys within this
	// call ride the claim, and present keys are waited on.
	st := &pw.annot
	st.mu.Lock()
	if st.timing == nil {
		st.timing = make(map[timingKey]*annotEntry[pipeline.Result])
	}
	keys := make([]timingKey, len(cfgs))
	own := make(map[timingKey]*annotEntry[pipeline.Result])
	waits := make(map[timingKey]*annotEntry[pipeline.Result])
	var claimKeys []timingKey
	var claimRep []int // index of the claiming (representative) config
	for i, cfg := range cfgs {
		k := timingKeyOf(cfg, anns[i].Mem, anns[i].Br)
		keys[i] = k
		if _, mine := own[k]; mine {
			continue
		}
		if e, ok := st.timing[k]; ok {
			st.touchLocked(&e.lastUse)
			waits[k] = e
			continue
		}
		e := &annotEntry[pipeline.Result]{done: make(chan struct{})}
		st.timing[k] = e
		own[k] = e
		claimKeys = append(claimKeys, k)
		claimRep = append(claimRep, i)
	}
	st.mu.Unlock()

	// Replay every claimed key in config-parallel batches, one shard
	// per worker. Every claim is resolved exactly once below — a shard
	// error (including cancellation and converted panics) resolves its
	// claims with the error and removes them so a later call retries;
	// completed shards publish even when a sibling failed, so their
	// work is kept.
	ownRes := make(map[timingKey]pipeline.Result, len(claimKeys))
	if len(claimKeys) > 0 {
		ns := par.Workers(workers)
		if ns > len(claimKeys) {
			ns = len(claimKeys)
		}
		shardRes := make([][]pipeline.Result, ns)
		shardErr := make([]error, ns)
		lo := func(s int) int { return s * len(claimKeys) / ns }
		cutErr := par.ForEachCtx(ctx, workers, ns, func(s int) error {
			a, b := lo(s), lo(s+1)
			pts := make([]pipeline.BatchPoint, b-a)
			for j := a; j < b; j++ {
				i := claimRep[j]
				pts[j-a] = pipeline.BatchPoint{Cfg: cfgs[i], Ann: anns[i]}
			}
			shardRes[s], shardErr[s] = safeSimulateAnnotatedBatch(ctx, pw.Trace, pts)
			return nil
		})
		var firstErr error
		st.mu.Lock()
		for s := 0; s < ns; s++ {
			err := shardErr[s]
			if err == nil && shardRes[s] == nil {
				err = cutErr // shard never ran: the cancellation cut it
			}
			for j := lo(s); j < lo(s+1); j++ {
				k := claimKeys[j]
				e := own[k]
				if err != nil {
					e.err = err
					if firstErr == nil {
						firstErr = err
					}
					if st.timing[k] == e {
						delete(st.timing, k)
					}
				} else {
					e.val = shardRes[s][j-lo(s)]
					e.val.Cache = cache.Stats{} // stamped per configuration on use
					st.chargeTimingLocked(k, e)
					ownRes[k] = e.val
				}
				close(e.done)
			}
		}
		st.evictLocked()
		st.mu.Unlock()
		if firstErr != nil {
			return nil, firstErr
		}
	}

	// Waits on other requests' claims abandon when ctx ends — every
	// claim of this call is already resolved above.
	waitRes := make(map[timingKey]pipeline.Result, len(waits))
	for k, e := range waits {
		select {
		case <-e.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if e.err != nil {
			return nil, e.err
		}
		waitRes[k] = e.val
	}

	out := make([]pipeline.Result, len(cfgs))
	for i := range cfgs {
		res, ok := ownRes[keys[i]]
		if !ok {
			res = waitRes[keys[i]]
		}
		res.Cache = anns[i].MemStats
		out[i] = res
	}
	return out, nil
}
