// Package harness wires the substrates together: it runs the
// functional simulator to produce a trace and the machine-independent
// profile (once per program), collects mixed program/machine statistics
// for chosen cache hierarchies and branch predictors, evaluates the
// mechanistic model, and validates it against the detailed pipeline
// simulator. It mirrors the modeling framework of Figure 2 in the paper.
package harness

import (
	"context"
	"fmt"
	"math"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/funcsim"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/program"
	"repro/internal/trace"
	"repro/internal/uarch"
)

// Profiled is a program together with its recorded dynamic trace and
// machine-independent profile. Profiling happens once; the trace is
// replayed for every design point of interest. Annotation planes —
// precomputed per-instruction machine events consumed by the detailed
// simulator's fast path — are cached here keyed by the machine
// component they depend on (see EnsureAnnotated), so figures sharing a
// workload share the annotation work.
type Profiled struct {
	Name  string
	Trace *trace.Trace
	Prof  *profile.Profile

	annot annotStore

	// Persistent plane tier (see AttachArtifacts): when set, the
	// annotation paths rehydrate per-component planes from the
	// artifact store before computing and write computed planes
	// through to it. storeKey is the workload's content key.
	store    ArtifactTier
	storeKey string
}

// ProfileProgram runs p once, recording the trace and the profile in a
// single pass: the chunked trace builder appends without growth
// copies, so no sizing pre-pass (and no second execution) is needed.
func ProfileProgram(p *program.Program) (*Profiled, error) {
	return ProfileProgramScaled(p, 0)
}

// ProfileProgramScaled is ProfileProgram with a dynamic-instruction
// floor: the program is re-executed (fresh machine state, same binary)
// until at least minDyn instructions have been recorded, appending
// every run to one trace and one profile as if it were a single long
// execution. minDyn ≤ 0 means one run. This is the -dyninsts scaling
// knob: the columnar store keeps 10×+ workloads affordable.
func ProfileProgramScaled(p *program.Program, minDyn int64) (*Profiled, error) {
	return ProfileProgramScaledCtx(context.Background(), p, minDyn)
}

// ProfileProgramScaledCtx is ProfileProgramScaled under a context.
// Cancellation is observed between executions of the program (one run
// is the atomic unit of profiling — a partially recorded run would not
// satisfy the profile's invariants), so with minDyn ≤ one run's length
// the func behaves like the uncancellable original.
func ProfileProgramScaledCtx(ctx context.Context, p *program.Program, minDyn int64) (*Profiled, error) {
	b := trace.NewBuilder()
	col := profile.NewCollector(p.Name)
	var total int64
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		m, err := funcsim.New(p)
		if err != nil {
			return nil, fmt.Errorf("harness: profiling %q: %w", p.Name, err)
		}
		var sink trace.Consumer
		if total == 0 {
			sink = trace.Tee{b, col}
		} else {
			// Repeat runs restart the machine's Seq at 0; shift it to
			// the global position so the profile's dependency
			// distances see one continuous stream (the builder derives
			// Seq from position and is unaffected).
			base := total
			sink = trace.Tee{b, trace.ConsumerFunc(func(d *trace.DynInst) {
				d.Seq += base
				col.Consume(d)
			})}
		}
		n, err := m.Run(sink)
		if err != nil {
			return nil, fmt.Errorf("harness: profiling %q: %w", p.Name, err)
		}
		if n == 0 {
			return nil, fmt.Errorf("harness: program %q executed zero instructions", p.Name)
		}
		total += n
		if total >= minDyn {
			break
		}
	}
	return &Profiled{Name: p.Name, Trace: b.Trace(), Prof: col.Result()}, nil
}

// ProfileProgramSandboxedCtx is ProfileProgramScaledCtx hardened for
// untrusted programs: execution carries a hard dynamic-instruction cap
// maxDyn across all scaling runs (funcsim.ErrMaxInstructions when it
// would be exceeded before the minDyn floor is met), the context is
// polled inside each run at chunk granularity (funcsim.RunCtx), so a
// wall-clock deadline stops even a tight infinite loop, and a panic
// anywhere in the build/execute/collect stack is converted into an
// error — a hostile submission can fail only itself, never the
// process. maxDyn ≤ 0 means funcsim.DefaultMaxInstructions per run.
func ProfileProgramSandboxedCtx(ctx context.Context, p *program.Program, minDyn, maxDyn int64) (pw *Profiled, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			pw, err = nil, fmt.Errorf("harness: profiling %q panicked: %v", p.Name, rec)
		}
	}()
	b := trace.NewBuilder()
	col := profile.NewCollector(p.Name)
	var total int64
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		m, err := funcsim.New(p)
		if err != nil {
			return nil, fmt.Errorf("harness: profiling %q: %w", p.Name, err)
		}
		if maxDyn > 0 {
			remaining := maxDyn - total
			if remaining <= 0 {
				return nil, fmt.Errorf("harness: profiling %q: %w (budget %d)", p.Name, funcsim.ErrMaxInstructions, maxDyn)
			}
			m.MaxInstructions = remaining
		}
		var sink trace.Consumer
		if total == 0 {
			sink = trace.Tee{b, col}
		} else {
			base := total
			sink = trace.Tee{b, trace.ConsumerFunc(func(d *trace.DynInst) {
				d.Seq += base
				col.Consume(d)
			})}
		}
		n, err := m.RunCtx(ctx, sink)
		if err != nil {
			return nil, fmt.Errorf("harness: profiling %q: %w", p.Name, err)
		}
		if n == 0 {
			return nil, fmt.Errorf("harness: program %q executed zero instructions", p.Name)
		}
		total += n
		if total >= minDyn {
			break
		}
	}
	return &Profiled{Name: p.Name, Trace: b.Trace(), Prof: col.Result()}, nil
}

// Fresh returns a Profiled sharing this one's trace and profile but
// with an empty annotation/timing cache and no artifact tier attached.
// Benchmarks use it to measure cold exploration paths repeatedly
// without paying for re-profiling, and without warm-cache iterations
// polluting the mean.
func (pw *Profiled) Fresh() *Profiled {
	return &Profiled{Name: pw.Name, Trace: pw.Trace, Prof: pw.Prof}
}

// MustProfileProgram is ProfileProgram that panics on error.
func MustProfileProgram(p *program.Program) *Profiled {
	pw, err := ProfileProgram(p)
	if err != nil {
		panic(err)
	}
	return pw
}

// MachineStats replays the trace through the cache hierarchy and
// branch predictor of cfg, producing the mixed program/machine inputs
// of the model.
func MachineStats(tr *trace.Trace, cfg uarch.Config) (cache.Stats, branch.Stats, error) {
	return MachineStatsCtx(context.Background(), tr, cfg)
}

// MachineStatsCtx is MachineStats under a context; cancellation is
// observed at trace chunk boundaries (see trace.ReplayCtx) and aborts
// the traversal with ctx.Err().
func MachineStatsCtx(ctx context.Context, tr *trace.Trace, cfg uarch.Config) (cache.Stats, branch.Stats, error) {
	h, err := cache.NewHierarchy(cfg.Hier)
	if err != nil {
		return cache.Stats{}, branch.Stats{}, err
	}
	cc := cache.NewCollector(h)
	bc := branch.NewCollector(cfg.Predictor.New())
	replays.Add(1)
	if err := tr.ReplayCtx(ctx, trace.Tee{cc, bc}); err != nil {
		return cache.Stats{}, branch.Stats{}, err
	}
	return cc.Stats(), bc.S, nil
}

// Inputs assembles the full model inputs for one design point.
func (pw *Profiled) Inputs(cfg uarch.Config) (core.Inputs, error) {
	return pw.InputsCtx(context.Background(), cfg)
}

// InputsCtx is Inputs under a context (see MachineStatsCtx).
func (pw *Profiled) InputsCtx(ctx context.Context, cfg uarch.Config) (core.Inputs, error) {
	ms, bs, err := MachineStatsCtx(ctx, pw.Trace, cfg)
	if err != nil {
		return core.Inputs{}, err
	}
	return core.Inputs{Prof: pw.Prof, Mem: ms, Branch: bs}, nil
}

// Predict profiles-to-prediction for one design point.
func (pw *Profiled) Predict(cfg uarch.Config) (*core.Stack, error) {
	return pw.PredictOpts(cfg, core.Options{})
}

// PredictCtx is Predict under a context: the statistics replay aborts
// at a chunk boundary once ctx ends, returning ctx.Err().
func (pw *Profiled) PredictCtx(ctx context.Context, cfg uarch.Config) (*core.Stack, error) {
	in, err := pw.InputsCtx(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return core.PredictOpts(in, cfg, core.Options{})
}

// PredictOpts is Predict with explicit model options (for the
// second-order-correction ablations).
func (pw *Profiled) PredictOpts(cfg uarch.Config, opt core.Options) (*core.Stack, error) {
	in, err := pw.Inputs(cfg)
	if err != nil {
		return nil, err
	}
	return core.PredictOpts(in, cfg, opt)
}

// Validation compares the model against the detailed simulator on one
// design point.
type Validation struct {
	Name     string
	Cfg      uarch.Config
	Model    *core.Stack
	Sim      pipeline.Result
	ModelCPI float64
	SimCPI   float64
}

// AbsErr returns |model-sim|/sim.
func (v Validation) AbsErr() float64 {
	if v.SimCPI == 0 {
		return 0
	}
	return math.Abs(v.ModelCPI-v.SimCPI) / v.SimCPI
}

// Validate runs both the model and the detailed simulator.
func (pw *Profiled) Validate(cfg uarch.Config) (Validation, error) {
	return pw.ValidateOpts(cfg, core.Options{})
}

// ValidateOpts is Validate with explicit model options. The detailed
// reference runs through the annotated fast path (SimulateDetailed):
// bit-identical to pipeline.Simulate, and the annotation is cached on
// pw for every later design point sharing its hierarchy or predictor.
func (pw *Profiled) ValidateOpts(cfg uarch.Config, opt core.Options) (Validation, error) {
	st, err := pw.PredictOpts(cfg, opt)
	if err != nil {
		return Validation{}, err
	}
	sim, err := pw.SimulateDetailed(cfg)
	if err != nil {
		return Validation{}, err
	}
	return Validation{
		Name:     pw.Name,
		Cfg:      cfg,
		Model:    st,
		Sim:      sim,
		ModelCPI: st.CPI(),
		SimCPI:   sim.CPI(),
	}, nil
}
