package harness

import (
	"testing"

	"repro/internal/uarch"
	"repro/internal/workloads"
)

// table2Combos enumerates the 16 distinct (L2 size, L2 ways, predictor)
// statistics sets behind the 192-point Table 2 space.
func table2Combos() []uarch.Config {
	var out []uarch.Config
	base := uarch.Default()
	for _, sizeKB := range []int{128, 256, 512, 1024} {
		for _, ways := range []int{8, 16} {
			for _, pk := range []uarch.PredictorKind{uarch.PredGShare1KB, uarch.PredHybrid3_5KB} {
				out = append(out, base.WithL2(sizeKB, ways).WithPredictor(pk))
			}
		}
	}
	return out
}

// TestMultiStatsMatchesPerConfigReplay pins the tentpole property: the
// single-pass engine must reproduce, bit for bit, the statistics the
// per-configuration replay collects for every Table 2 combination.
func TestMultiStatsMatchesPerConfigReplay(t *testing.T) {
	for _, name := range []string{"sha", "tiff2bw"} {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, err := workloads.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			pw := MustProfileProgram(spec.Build())
			combos := table2Combos()
			ms, err := CollectMultiStats(pw.Trace, combos)
			if err != nil {
				t.Fatal(err)
			}
			for _, cfg := range combos {
				wantC, wantB, err := MachineStats(pw.Trace, cfg)
				if err != nil {
					t.Fatal(err)
				}
				gotC, gotB, err := ms.Stats(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if gotC != wantC {
					t.Errorf("%s: cache stats diverge\n got  %+v\n want %+v", cfg, gotC, wantC)
				}
				if gotB != wantB {
					t.Errorf("%s: branch stats diverge\n got  %+v\n want %+v", cfg, gotB, wantB)
				}
			}
		})
	}
}

// TestCollectMultiStatsSinglePass asserts the whole Table 2 space
// costs exactly one trace traversal.
func TestCollectMultiStatsSinglePass(t *testing.T) {
	spec, err := workloads.ByName("sha")
	if err != nil {
		t.Fatal(err)
	}
	pw := MustProfileProgram(spec.Build())
	before := ReplayCount()
	if _, err := CollectMultiStats(pw.Trace, table2Combos()); err != nil {
		t.Fatal(err)
	}
	if got := ReplayCount() - before; got != 1 {
		t.Errorf("CollectMultiStats over 16 combos took %d replays, want 1", got)
	}
}

// TestMultiStatsUnknownConfig verifies lookups outside the collected
// space fail loudly instead of returning zero statistics.
func TestMultiStatsUnknownConfig(t *testing.T) {
	spec, err := workloads.ByName("sha")
	if err != nil {
		t.Fatal(err)
	}
	pw := MustProfileProgram(spec.Build())
	base := uarch.Default()
	ms, err := CollectMultiStats(pw.Trace, []uarch.Config{base})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ms.Stats(base.WithL2(128, 16)); err == nil {
		t.Error("unknown hierarchy accepted")
	}
	if _, _, err := ms.Stats(base.WithPredictor(uarch.PredBimodal2KB)); err == nil {
		t.Error("unknown predictor accepted")
	}
}
