package harness

import (
	"sync"
	"sync/atomic"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/par"
	"repro/internal/pipeline"
	"repro/internal/trace"
	"repro/internal/uarch"
)

// cacheAnnotates / branchAnnotates count distinct machine components
// annotated (not traversals: one traversal can cover several L2
// geometries sharing a front). Tests pin the exploration invariant
// "one annotation per distinct hierarchy and per distinct predictor".
var (
	cacheAnnotates  atomic.Int64
	branchAnnotates atomic.Int64
)

// CacheAnnotationCount returns the number of distinct cache
// hierarchies annotated so far in this process.
func CacheAnnotationCount() int64 { return cacheAnnotates.Load() }

// BranchAnnotationCount returns the number of distinct branch
// predictors annotated so far in this process.
func BranchAnnotationCount() int64 { return branchAnnotates.Load() }

// MemPlane is the cache half of an annotation: per-instruction
// memory-event classes for one hierarchy, plus the exact end-of-run
// statistics the detailed simulator would report (including its
// fetch-retry accounting of I-side stalls).
type MemPlane struct {
	Classes *trace.BytePlane
	Stats   cache.Stats
}

// groupByFront buckets distinct hierarchies by their L1/TLB front —
// the unit one annotation traversal covers.
func groupByFront(hiers []cache.HierarchyConfig) ([]hierFront, map[hierFront][]cache.HierarchyConfig) {
	byFront := make(map[hierFront][]cache.HierarchyConfig)
	seen := make(map[cache.HierarchyConfig]bool)
	var fronts []hierFront
	for _, h := range hiers {
		if seen[h] {
			continue
		}
		seen[h] = true
		f := frontOf(h)
		if _, ok := byFront[f]; !ok {
			fronts = append(fronts, f)
		}
		byFront[f] = append(byFront[f], h)
	}
	return fronts, byFront
}

// annotateFront runs one annotation traversal for every hierarchy
// sharing one L1/TLB front: the shared stack-distance engine resolves
// each instruction's L2 outcome for all candidate geometries at once.
func annotateFront(tr *trace.Trace, f hierFront, group []cache.HierarchyConfig) (map[cache.HierarchyConfig]*MemPlane, error) {
	base := cache.HierarchyConfig{
		IL1: f.il1, DL1: f.dl1,
		ITLBEntries: f.itlbEntries, DTLBEntries: f.dtlbEntries,
		PageBytes: f.pageBytes,
	}
	l2s := make([]cache.Config, len(group))
	for k, h := range group {
		l2s[k] = h.L2
	}
	eng, err := cache.NewL2SpaceSim(base, l2s)
	if err != nil {
		return nil, err
	}
	if err := eng.RecordPlanes(l2s); err != nil {
		return nil, err
	}
	tr.Replay(eng)
	// Canonicalize: two geometries whose planes came out identical
	// (common — the trace's L2 misses are often all cold) share one
	// plane object, so timing-replay memoization can key on plane
	// identity. Stats stay per-hierarchy (writeback counts differ
	// even when the per-instruction event classes coincide).
	out := make(map[cache.HierarchyConfig]*MemPlane, len(group))
	var canon []*trace.BytePlane
	for _, h := range group {
		plane, err := eng.PlaneFor(h.L2)
		if err != nil {
			return nil, err
		}
		dedup := false
		for _, c := range canon {
			if c.Equal(plane) {
				plane, dedup = c, true
				break
			}
		}
		if !dedup {
			canon = append(canon, plane)
		}
		stats, err := eng.StatsFor(h.L2)
		if err != nil {
			return nil, err
		}
		// The detailed simulator re-accesses the hierarchy once per
		// I-side stall when fetch resumes (a guaranteed hit that
		// bumps only IL1Accesses); fold that in so MemPlane.Stats
		// is bit-identical to Simulate's Result.Cache.
		stats.IL1Accesses += eng.IStallEvents()
		out[h] = &MemPlane{Classes: plane, Stats: stats}
	}
	cacheAnnotates.Add(int64(len(group)))
	return out, nil
}

// AnnotateCaches computes memory-event planes for every distinct
// hierarchy in hiers, one trace traversal per distinct L1/TLB front.
// Fronts are annotated in parallel across workers (≤0 means the
// process default).
func AnnotateCaches(tr *trace.Trace, hiers []cache.HierarchyConfig, workers int) (map[cache.HierarchyConfig]*MemPlane, error) {
	fronts, byFront := groupByFront(hiers)
	out := make(map[cache.HierarchyConfig]*MemPlane)
	var mu sync.Mutex
	err := par.ForEach(workers, len(fronts), func(i int) error {
		part, err := annotateFront(tr, fronts[i], byFront[fronts[i]])
		if err != nil {
			return err
		}
		mu.Lock()
		for h, mp := range part {
			out[h] = mp
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AnnotateBranches computes mispredict planes for every distinct
// predictor kind, in parallel across workers.
func AnnotateBranches(tr *trace.Trace, preds []uarch.PredictorKind, workers int) (map[uarch.PredictorKind]*trace.BitPlane, error) {
	var kinds []uarch.PredictorKind
	seen := make(map[uarch.PredictorKind]bool)
	for _, pk := range preds {
		if !seen[pk] {
			seen[pk] = true
			kinds = append(kinds, pk)
		}
	}
	out := make(map[uarch.PredictorKind]*trace.BitPlane, len(kinds))
	var mu sync.Mutex
	err := par.ForEach(workers, len(kinds), func(i int) error {
		p := branch.AnnotateMispredicts(tr, kinds[i].New())
		mu.Lock()
		out[kinds[i]] = p
		mu.Unlock()
		branchAnnotates.Add(1)
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Canonicalize identical planes (two predictors can mispredict the
	// exact same branches) so timing memoization can key on identity.
	var canon []*trace.BitPlane
	for _, pk := range kinds {
		p := out[pk]
		dedup := false
		for _, c := range canon {
			if c.Equal(p) {
				out[pk], dedup = c, true
				break
			}
		}
		if !dedup {
			canon = append(canon, p)
		}
	}
	return out, nil
}

// annotStore is the per-Profiled plane cache: planes are keyed by the
// machine component they depend on, so every design point (and every
// figure) sharing a hierarchy or predictor shares the one annotation.
// Entries are singleflight: concurrent requesters of the same
// component wait for the first computation instead of repeating it.
type annotStore struct {
	mu     sync.Mutex
	mem    map[cache.HierarchyConfig]*annotEntry[*MemPlane]
	br     map[uarch.PredictorKind]*annotEntry[*trace.BitPlane]
	timing map[timingKey]*annotEntry[pipeline.Result]
}

type annotEntry[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// timingKey captures every input of SimulateAnnotated other than the
// trace: the timing parameters of the design point and the identity of
// the (canonicalized) annotation planes. Two design points with equal
// keys replay to the same timing Result — only their Result.Cache
// (stamped from MemPlane.Stats afterwards) can differ — so e.g. the
// Table 2 space's 192 points collapse to one replay per distinct
// (width, depth/frequency, plane-content) combination.
type timingKey struct {
	width, depth        int
	mulLat, divLat      int
	l2hit, l2miss, walk int
	mem                 *trace.BytePlane
	br                  *trace.BitPlane
}

func timingKeyOf(cfg uarch.Config, mem *trace.BytePlane, br *trace.BitPlane) timingKey {
	return timingKey{
		width: cfg.Width, depth: cfg.FrontEndDepth,
		mulLat: cfg.MulLatency, divLat: cfg.DivLatency,
		l2hit: cfg.L2HitCycles(), l2miss: cfg.L2MissCycles(), walk: cfg.TLBWalkCycles(),
		mem: mem, br: br,
	}
}

// EnsureAnnotated computes (or waits for) the annotation planes of
// every distinct hierarchy and predictor in cfgs: one cache-annotation
// traversal per distinct front covers all its L2 geometries, and each
// distinct predictor is annotated once. Front and predictor traversals
// are independent, so they all fan out through one worker pool.
// Subsequent Annotation/SimulateDetailed calls for these
// configurations are cache hits; a component whose annotation failed
// is evicted so a later call can retry it.
func (pw *Profiled) EnsureAnnotated(cfgs []uarch.Config, workers int) error {
	st := &pw.annot
	st.mu.Lock()
	if st.mem == nil {
		st.mem = make(map[cache.HierarchyConfig]*annotEntry[*MemPlane])
		st.br = make(map[uarch.PredictorKind]*annotEntry[*trace.BitPlane])
	}
	var (
		mineH    []cache.HierarchyConfig
		mineP    []uarch.PredictorKind
		waitH    []*annotEntry[*MemPlane]
		waitP    []*annotEntry[*trace.BitPlane]
		claimed  = make(map[cache.HierarchyConfig]*annotEntry[*MemPlane])
		claimedP = make(map[uarch.PredictorKind]*annotEntry[*trace.BitPlane])
	)
	for _, cfg := range cfgs {
		if e, ok := st.mem[cfg.Hier]; ok {
			if claimed[cfg.Hier] == nil {
				waitH = append(waitH, e)
			}
		} else {
			e := &annotEntry[*MemPlane]{done: make(chan struct{})}
			st.mem[cfg.Hier] = e
			claimed[cfg.Hier] = e
			mineH = append(mineH, cfg.Hier)
		}
		if e, ok := st.br[cfg.Predictor]; ok {
			if claimedP[cfg.Predictor] == nil {
				waitP = append(waitP, e)
			}
		} else {
			e := &annotEntry[*trace.BitPlane]{done: make(chan struct{})}
			st.br[cfg.Predictor] = e
			claimedP[cfg.Predictor] = e
			mineP = append(mineP, cfg.Predictor)
		}
	}
	// Snapshot the planes of already-completed entries — but only when
	// this call actually claimed annotation work: a newly computed
	// plane equal to a cached one canonicalizes onto it, so timing
	// memoization keeps sharing replays across batches. Pure cache-hit
	// calls (every per-point call after the up-front annotation pass)
	// skip the walk entirely.
	var memSeeds []*trace.BytePlane
	var brSeeds []*trace.BitPlane
	if len(mineH)+len(mineP) > 0 {
		for _, e := range st.mem {
			select {
			case <-e.done:
				if e.err == nil && e.val != nil {
					memSeeds = append(memSeeds, e.val.Classes)
				}
			default:
			}
		}
		for _, e := range st.br {
			select {
			case <-e.done:
				if e.err == nil && e.val != nil {
					brSeeds = append(brSeeds, e.val)
				}
			default:
			}
		}
	}
	st.mu.Unlock()

	var firstErr error
	if len(mineH)+len(mineP) > 0 {
		fronts, byFront := groupByFront(mineH)
		nf := len(fronts)
		frontRes := make([]map[cache.HierarchyConfig]*MemPlane, nf)
		frontErr := make([]error, nf)
		brRes := make([]*trace.BitPlane, len(mineP))
		// One pool for cache fronts and predictors together: the
		// traversals are independent, so none serializes behind the
		// others. Per-task errors are recorded, not returned, so one
		// bad hierarchy cannot fail unrelated components.
		_ = par.ForEach(workers, nf+len(mineP), func(i int) error {
			if i < nf {
				frontRes[i], frontErr[i] = annotateFront(pw.Trace, fronts[i], byFront[fronts[i]])
			} else {
				brRes[i-nf] = branch.AnnotateMispredicts(pw.Trace, mineP[i-nf].New())
				branchAnnotates.Add(1)
			}
			return nil
		})

		var failedH []cache.HierarchyConfig
		for i, f := range fronts {
			for _, h := range byFront[f] {
				e := claimed[h]
				if frontErr[i] != nil {
					e.err = frontErr[i]
					failedH = append(failedH, h)
					if firstErr == nil {
						firstErr = frontErr[i]
					}
				} else {
					mp := frontRes[i][h]
					for _, c := range memSeeds {
						if c.Equal(mp.Classes) {
							mp.Classes = c
							break
						}
					}
					memSeeds = append(memSeeds, mp.Classes)
					e.val = mp
				}
				close(e.done)
			}
		}
		for i, pk := range mineP {
			p := brRes[i]
			for _, c := range brSeeds {
				if c.Equal(p) {
					p = c
					break
				}
			}
			brSeeds = append(brSeeds, p)
			e := claimedP[pk]
			e.val = p
			close(e.done)
		}
		if len(failedH) > 0 {
			// Evict failed entries: waiters of this batch observe the
			// error, later calls recompute.
			st.mu.Lock()
			for _, h := range failedH {
				if st.mem[h] == claimed[h] {
					delete(st.mem, h)
				}
			}
			st.mu.Unlock()
		}
	}
	for _, e := range waitH {
		<-e.done
		if e.err != nil && firstErr == nil {
			firstErr = e.err
		}
	}
	for _, e := range waitP {
		<-e.done
		if e.err != nil && firstErr == nil {
			firstErr = e.err
		}
	}
	return firstErr
}

// Annotation returns the annotation planes for one design point,
// computing and caching them if needed.
func (pw *Profiled) Annotation(cfg uarch.Config) (pipeline.Annotation, error) {
	if err := pw.EnsureAnnotated([]uarch.Config{cfg}, 1); err != nil {
		return pipeline.Annotation{}, err
	}
	st := &pw.annot
	st.mu.Lock()
	me := st.mem[cfg.Hier]
	be := st.br[cfg.Predictor]
	st.mu.Unlock()
	<-me.done
	<-be.done
	if me.err != nil {
		return pipeline.Annotation{}, me.err
	}
	if be.err != nil {
		return pipeline.Annotation{}, be.err
	}
	return pipeline.Annotation{Mem: me.val.Classes, MemStats: me.val.Stats, Br: be.val}, nil
}

// SimulateDetailed runs the detailed cycle-accurate simulation of one
// design point through the annotated fast path: machine events come
// from the (cached) planes and the replay is timing-only arithmetic.
// Timing results are additionally memoized by (timing parameters,
// plane identity) — design points whose planes canonicalized to the
// same objects share one replay, and only the hierarchy statistics are
// stamped per configuration. The Result is bit-identical to
// pipeline.Simulate's.
func (pw *Profiled) SimulateDetailed(cfg uarch.Config) (pipeline.Result, error) {
	ann, err := pw.Annotation(cfg)
	if err != nil {
		return pipeline.Result{}, err
	}
	key := timingKeyOf(cfg, ann.Mem, ann.Br)
	st := &pw.annot
	st.mu.Lock()
	if st.timing == nil {
		st.timing = make(map[timingKey]*annotEntry[pipeline.Result])
	}
	e, ok := st.timing[key]
	if !ok {
		e = &annotEntry[pipeline.Result]{done: make(chan struct{})}
		st.timing[key] = e
	}
	st.mu.Unlock()
	if ok {
		<-e.done
		if e.err != nil {
			return pipeline.Result{}, e.err
		}
		res := e.val
		res.Cache = ann.MemStats
		return res, nil
	}
	res, err := pipeline.SimulateAnnotated(pw.Trace, cfg, ann)
	e.err = err
	if err == nil {
		e.val = res
		e.val.Cache = cache.Stats{} // stamped per configuration on reuse
	}
	close(e.done)
	return res, err
}
