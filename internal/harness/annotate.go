package harness

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/par"
	"repro/internal/pipeline"
	"repro/internal/trace"
	"repro/internal/uarch"
)

// cacheAnnotates / branchAnnotates count distinct machine components
// annotated (not traversals: one traversal can cover several L2
// geometries sharing a front). Tests pin the exploration invariant
// "one annotation per distinct hierarchy and per distinct predictor".
var (
	cacheAnnotates  atomic.Int64
	branchAnnotates atomic.Int64
)

// CacheAnnotationCount returns the number of distinct cache
// hierarchies annotated so far in this process.
func CacheAnnotationCount() int64 { return cacheAnnotates.Load() }

// BranchAnnotationCount returns the number of distinct branch
// predictors annotated so far in this process.
func BranchAnnotationCount() int64 { return branchAnnotates.Load() }

// canonicalize returns the first plane in seeds with contents equal to
// p — sharing its pointer, so timing memoization can key on plane
// identity — or p itself when no seed matches. Every site that
// publishes a plane into a cache must route through this: replay
// sharing depends on equal planes collapsing to one object.
func canonicalize[P interface{ Equal(P) bool }](seeds []P, p P) P {
	for _, c := range seeds {
		if c.Equal(p) {
			return c
		}
	}
	return p
}

// MemPlane is the cache half of an annotation: per-instruction
// memory-event classes for one hierarchy, plus the exact end-of-run
// statistics the detailed simulator would report (including its
// fetch-retry accounting of I-side stalls).
type MemPlane struct {
	Classes *trace.BytePlane
	Stats   cache.Stats
}

// groupByFront buckets distinct hierarchies by their L1/TLB front —
// the unit one annotation traversal covers.
func groupByFront(hiers []cache.HierarchyConfig) ([]hierFront, map[hierFront][]cache.HierarchyConfig) {
	byFront := make(map[hierFront][]cache.HierarchyConfig)
	seen := make(map[cache.HierarchyConfig]bool)
	var fronts []hierFront
	for _, h := range hiers {
		if seen[h] {
			continue
		}
		seen[h] = true
		f := frontOf(h)
		if _, ok := byFront[f]; !ok {
			fronts = append(fronts, f)
		}
		byFront[f] = append(byFront[f], h)
	}
	return fronts, byFront
}

// annotateFront runs one annotation traversal for every hierarchy
// sharing one L1/TLB front: the shared stack-distance engine resolves
// each instruction's L2 outcome for all candidate geometries at once.
// Cancellation is observed at trace chunk boundaries; an aborted
// traversal returns ctx.Err() and publishes nothing.
//
// The second return value carries each hierarchy's raw end-of-run
// statistics (before the I-stall fold below) — bit-identical to what
// CollectMultiStats' plain engine reports, so a caller that needs both
// planes and model inputs pays one traversal (see ExploreInputs).
func annotateFront(ctx context.Context, tr *trace.Trace, f hierFront, group []cache.HierarchyConfig) (map[cache.HierarchyConfig]*MemPlane, map[cache.HierarchyConfig]cache.Stats, error) {
	base := cache.HierarchyConfig{
		IL1: f.il1, DL1: f.dl1,
		ITLBEntries: f.itlbEntries, DTLBEntries: f.dtlbEntries,
		PageBytes: f.pageBytes,
	}
	l2s := make([]cache.Config, len(group))
	for k, h := range group {
		l2s[k] = h.L2
	}
	eng, err := cache.NewL2SpaceSim(base, l2s)
	if err != nil {
		return nil, nil, err
	}
	if err := eng.RecordPlanes(l2s); err != nil {
		return nil, nil, err
	}
	if err := tr.ReplayCtx(ctx, eng); err != nil {
		return nil, nil, err
	}
	// Canonicalize: two geometries whose planes came out identical
	// (common — the trace's L2 misses are often all cold) share one
	// plane object, so timing-replay memoization can key on plane
	// identity. Stats stay per-hierarchy (writeback counts differ
	// even when the per-instruction event classes coincide).
	out := make(map[cache.HierarchyConfig]*MemPlane, len(group))
	raw := make(map[cache.HierarchyConfig]cache.Stats, len(group))
	var canon []*trace.BytePlane
	for _, h := range group {
		plane, err := eng.PlaneFor(h.L2)
		if err != nil {
			return nil, nil, err
		}
		if q := canonicalize(canon, plane); q != plane {
			plane = q
		} else {
			canon = append(canon, plane)
		}
		stats, err := eng.StatsFor(h.L2)
		if err != nil {
			return nil, nil, err
		}
		raw[h] = stats
		// The detailed simulator re-accesses the hierarchy once per
		// I-side stall when fetch resumes (a guaranteed hit that
		// bumps only IL1Accesses); fold that in so MemPlane.Stats
		// is bit-identical to Simulate's Result.Cache.
		stats.IL1Accesses += eng.IStallEvents()
		out[h] = &MemPlane{Classes: plane, Stats: stats}
	}
	cacheAnnotates.Add(int64(len(group)))
	return out, raw, nil
}

// safeAnnotateFront is annotateFront with panics converted to errors:
// a panic unwinding past a claimed singleflight entry would leave its
// done channel unclosed and wedge every future request for the
// component (net/http recovers handler panics, so a long-running
// service would otherwise keep the dead claim forever).
func safeAnnotateFront(ctx context.Context, tr *trace.Trace, f hierFront, group []cache.HierarchyConfig) (out map[cache.HierarchyConfig]*MemPlane, raw map[cache.HierarchyConfig]cache.Stats, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, raw, err = nil, nil, fmt.Errorf("harness: cache annotation panicked: %v", r)
		}
	}()
	return annotateFront(ctx, tr, f, group)
}

// safeAnnotateBranch annotates one predictor with the same panic
// protection (see safeAnnotateFront), returning the fused end-of-run
// predictor statistics alongside the plane. The annotation counter is
// bumped only on completion: a cancelled traversal annotated nothing.
func safeAnnotateBranch(ctx context.Context, tr *trace.Trace, pk uarch.PredictorKind) (p *trace.BitPlane, bs branch.Stats, err error) {
	defer func() {
		if r := recover(); r != nil {
			p, bs, err = nil, branch.Stats{}, fmt.Errorf("harness: branch annotation for %v panicked: %v", pk, r)
		}
	}()
	p, bs, err = branch.AnnotateMispredictsStatsCtx(ctx, tr, pk.New())
	if err != nil {
		return nil, branch.Stats{}, err
	}
	branchAnnotates.Add(1)
	return p, bs, nil
}

// safeSimulateAnnotated runs the timing replay with the same panic
// protection (see safeAnnotateFront).
func safeSimulateAnnotated(ctx context.Context, tr *trace.Trace, cfg uarch.Config, ann pipeline.Annotation) (res pipeline.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = pipeline.Result{}, fmt.Errorf("harness: detailed simulation of %s panicked: %v", cfg, r)
		}
	}()
	return pipeline.SimulateAnnotatedCtx(ctx, tr, cfg, ann)
}

// AnnotateCaches computes memory-event planes for every distinct
// hierarchy in hiers, one trace traversal per distinct L1/TLB front.
// Fronts are annotated in parallel across workers (≤0 means the
// process default).
func AnnotateCaches(tr *trace.Trace, hiers []cache.HierarchyConfig, workers int) (map[cache.HierarchyConfig]*MemPlane, error) {
	fronts, byFront := groupByFront(hiers)
	out := make(map[cache.HierarchyConfig]*MemPlane)
	var mu sync.Mutex
	err := par.ForEach(workers, len(fronts), func(i int) error {
		part, _, err := annotateFront(context.Background(), tr, fronts[i], byFront[fronts[i]])
		if err != nil {
			return err
		}
		mu.Lock()
		for h, mp := range part {
			out[h] = mp
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AnnotateBranches computes mispredict planes for every distinct
// predictor kind, in parallel across workers.
func AnnotateBranches(tr *trace.Trace, preds []uarch.PredictorKind, workers int) (map[uarch.PredictorKind]*trace.BitPlane, error) {
	var kinds []uarch.PredictorKind
	seen := make(map[uarch.PredictorKind]bool)
	for _, pk := range preds {
		if !seen[pk] {
			seen[pk] = true
			kinds = append(kinds, pk)
		}
	}
	out := make(map[uarch.PredictorKind]*trace.BitPlane, len(kinds))
	var mu sync.Mutex
	err := par.ForEach(workers, len(kinds), func(i int) error {
		p := branch.AnnotateMispredicts(tr, kinds[i].New())
		mu.Lock()
		out[kinds[i]] = p
		mu.Unlock()
		branchAnnotates.Add(1)
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Canonicalize identical planes (two predictors can mispredict the
	// exact same branches) so timing memoization can key on identity.
	var canon []*trace.BitPlane
	for _, pk := range kinds {
		if q := canonicalize(canon, out[pk]); q != out[pk] {
			out[pk] = q
		} else {
			canon = append(canon, out[pk])
		}
	}
	return out, nil
}

// annotStore is the per-Profiled plane cache: planes are keyed by the
// machine component they depend on, so every design point (and every
// figure) sharing a hierarchy or predictor shares the one annotation.
// Entries are singleflight: concurrent requesters of the same
// component wait for the first computation instead of repeating it.
//
// The store is byte-accounted: every resident plane (counted once per
// distinct object — canonicalized planes shared by several entries are
// charged once) plus a fixed per-entry overhead contributes to
// usedBytes, and when a budget is set (SetAnnotBudget) completed
// entries are evicted least-recently-used until the store fits. A
// long-running process can therefore serve an unbounded stream of
// design points in bounded memory; evicted components are simply
// recomputed on next use.
type annotStore struct {
	mu     sync.Mutex
	mem    map[cache.HierarchyConfig]*annotEntry[*MemPlane]
	br     map[uarch.PredictorKind]*annotEntry[*trace.BitPlane]
	timing map[timingKey]*annotEntry[pipeline.Result]

	budget    int64 // resident-byte budget; ≤ 0 means unbounded
	usedBytes int64 // bytes charged for resident completed entries
	clock     int64 // LRU clock; entries stamp it on insert and touch
	evictions int64
	planeRefs map[any]*planeRef // distinct plane object -> charge state
}

type annotEntry[T any] struct {
	done    chan struct{}
	val     T
	err     error
	lastUse int64
}

// planeRef tracks how many resident entries reference one distinct
// plane object, so shared (canonicalized) planes are charged once and
// uncharged only when the last referencing entry is evicted.
type planeRef struct {
	bytes int64
	refs  int
}

// Fixed per-entry charges covering the entry, key and map-slot
// footprint beyond the planes themselves.
const (
	annotEntryOverheadBytes  = 160
	timingEntryOverheadBytes = 512
)

// entryDone reports whether an entry's computation has completed.
func entryDone[T any](e *annotEntry[T]) bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// touchLocked stamps an entry's last use. Callers hold st.mu.
func (st *annotStore) touchLocked(lastUse *int64) {
	st.clock++
	*lastUse = st.clock
}

// retainLocked charges one reference to a plane object, adding its
// bytes on the first reference. Callers hold st.mu.
func (st *annotStore) retainLocked(p any, bytes int64) {
	if p == nil {
		return
	}
	if st.planeRefs == nil {
		st.planeRefs = make(map[any]*planeRef)
	}
	r := st.planeRefs[p]
	if r == nil {
		r = &planeRef{bytes: bytes}
		st.planeRefs[p] = r
		st.usedBytes += bytes
	}
	r.refs++
}

// releaseLocked drops one reference to a plane object, uncharging its
// bytes when the last reference goes. Callers hold st.mu.
func (st *annotStore) releaseLocked(p any) {
	if p == nil {
		return
	}
	r := st.planeRefs[p]
	if r == nil {
		return
	}
	r.refs--
	if r.refs <= 0 {
		st.usedBytes -= r.bytes
		delete(st.planeRefs, p)
	}
}

// seedsLocked snapshots every charged plane object — resident entries
// and planes kept alive only by memoized timing results — as
// canonicalization seeds. Seeding from planeRefs rather than the
// entry maps matters under a byte budget: when a component entry is
// evicted but its timing memos survive, a recomputed plane equal to
// the evicted one adopts the old pointer, so those memos become
// hittable again instead of dead weight. Callers hold st.mu.
func (st *annotStore) seedsLocked() (mem []*trace.BytePlane, br []*trace.BitPlane) {
	for p := range st.planeRefs {
		switch q := p.(type) {
		case *trace.BytePlane:
			mem = append(mem, q)
		case *trace.BitPlane:
			br = append(br, q)
		}
	}
	return mem, br
}

// chargeMemLocked publishes a completed cache-annotation entry into
// the accounting. Callers hold st.mu.
func (st *annotStore) chargeMemLocked(e *annotEntry[*MemPlane]) {
	st.retainLocked(e.val.Classes, e.val.Classes.SizeBytes())
	st.usedBytes += annotEntryOverheadBytes
	st.touchLocked(&e.lastUse)
}

// chargeBrLocked publishes a completed branch-annotation entry.
func (st *annotStore) chargeBrLocked(e *annotEntry[*trace.BitPlane]) {
	st.retainLocked(e.val, e.val.SizeBytes())
	st.usedBytes += annotEntryOverheadBytes
	st.touchLocked(&e.lastUse)
}

// chargeTimingLocked publishes a completed memoized timing entry; the
// key's plane references keep shared planes charged while any timing
// result depends on them.
func (st *annotStore) chargeTimingLocked(key timingKey, e *annotEntry[pipeline.Result]) {
	st.retainLocked(key.mem, key.mem.SizeBytes())
	st.retainLocked(key.br, key.br.SizeBytes())
	st.usedBytes += timingEntryOverheadBytes
	st.touchLocked(&e.lastUse)
}

// evictLocked evicts completed entries least-recently-used-first until
// the store fits its budget (or only in-flight entries remain).
// Callers hold st.mu.
func (st *annotStore) evictLocked() {
	if st.budget <= 0 {
		return
	}
	for st.usedBytes > st.budget {
		const (
			kindNone = iota
			kindMem
			kindBr
			kindTiming
		)
		kind, oldest := kindNone, int64(0)
		var (
			memK cache.HierarchyConfig
			brK  uarch.PredictorKind
			timK timingKey
		)
		better := func(lastUse int64) bool { return kind == kindNone || lastUse < oldest }
		for k, e := range st.mem {
			if entryDone(e) && better(e.lastUse) {
				kind, oldest, memK = kindMem, e.lastUse, k
			}
		}
		for k, e := range st.br {
			if entryDone(e) && better(e.lastUse) {
				kind, oldest, brK = kindBr, e.lastUse, k
			}
		}
		for k, e := range st.timing {
			if entryDone(e) && better(e.lastUse) {
				kind, oldest, timK = kindTiming, e.lastUse, k
			}
		}
		switch kind {
		case kindNone:
			return // everything resident is in flight; retry on next publish
		case kindMem:
			st.releaseLocked(st.mem[memK].val.Classes)
			st.usedBytes -= annotEntryOverheadBytes
			delete(st.mem, memK)
		case kindBr:
			st.releaseLocked(st.br[brK].val)
			st.usedBytes -= annotEntryOverheadBytes
			delete(st.br, brK)
		case kindTiming:
			st.releaseLocked(timK.mem)
			st.releaseLocked(timK.br)
			st.usedBytes -= timingEntryOverheadBytes
			delete(st.timing, timK)
		}
		st.evictions++
	}
}

// timingKey captures every input of SimulateAnnotated other than the
// trace: the timing parameters of the design point and the identity of
// the (canonicalized) annotation planes. Two design points with equal
// keys replay to the same timing Result — only their Result.Cache
// (stamped from MemPlane.Stats afterwards) can differ — so e.g. the
// Table 2 space's 192 points collapse to one replay per distinct
// (width, depth/frequency, plane-content) combination.
type timingKey struct {
	width, depth        int
	mulLat, divLat      int
	l2hit, l2miss, walk int
	mem                 *trace.BytePlane
	br                  *trace.BitPlane
}

func timingKeyOf(cfg uarch.Config, mem *trace.BytePlane, br *trace.BitPlane) timingKey {
	return timingKey{
		width: cfg.Width, depth: cfg.FrontEndDepth,
		mulLat: cfg.MulLatency, divLat: cfg.DivLatency,
		l2hit: cfg.L2HitCycles(), l2miss: cfg.L2MissCycles(), walk: cfg.TLBWalkCycles(),
		mem: mem, br: br,
	}
}

// EnsureAnnotated computes (or waits for) the annotation planes of
// every distinct hierarchy and predictor in cfgs: one cache-annotation
// traversal per distinct front covers all its L2 geometries, and each
// distinct predictor is annotated once. Front and predictor traversals
// are independent, so they all fan out through one worker pool.
// Subsequent Annotation/SimulateDetailed calls for these
// configurations are cache hits; a component whose annotation failed
// is evicted so a later call can retry it.
func (pw *Profiled) EnsureAnnotated(cfgs []uarch.Config, workers int) error {
	return pw.EnsureAnnotatedCtx(context.Background(), cfgs, workers)
}

// EnsureAnnotatedCtx is EnsureAnnotated under a request context. The
// claimed traversals run under ctx (cancellation lands at trace chunk
// boundaries), and waits on other requests' claims abandon once ctx
// ends. A cancellation error observed from some other request's claim
// while this ctx is still live is not reported — the failed entry was
// evicted for retry, so this call re-claims and computes it itself;
// that self-claimed run can only be cancelled by this ctx, which
// bounds the retries.
func (pw *Profiled) EnsureAnnotatedCtx(ctx context.Context, cfgs []uarch.Config, workers int) error {
	for {
		err := pw.ensureAnnotated(ctx, cfgs, workers, nil)
		if err != nil && isCancellation(err) && ctx.Err() == nil {
			continue
		}
		return err
	}
}

// ensureAnnotated is one claim/compute/publish attempt over the
// distinct components of cfgs. When fused is non-nil, every component
// this call computes fresh also deposits its raw machine statistics
// there — the fused statistics side-channel behind ExploreInputs;
// cache-hit and disk-loaded components deposit nothing.
func (pw *Profiled) ensureAnnotated(ctx context.Context, cfgs []uarch.Config, workers int, fused *fusedStats) error {
	st := &pw.annot
	st.mu.Lock()
	if st.mem == nil {
		st.mem = make(map[cache.HierarchyConfig]*annotEntry[*MemPlane])
		st.br = make(map[uarch.PredictorKind]*annotEntry[*trace.BitPlane])
	}
	var (
		mineH    []cache.HierarchyConfig
		mineP    []uarch.PredictorKind
		waitH    []*annotEntry[*MemPlane]
		waitP    []*annotEntry[*trace.BitPlane]
		claimed  = make(map[cache.HierarchyConfig]*annotEntry[*MemPlane])
		claimedP = make(map[uarch.PredictorKind]*annotEntry[*trace.BitPlane])
	)
	for _, cfg := range cfgs {
		if e, ok := st.mem[cfg.Hier]; ok {
			st.touchLocked(&e.lastUse)
			if claimed[cfg.Hier] == nil {
				waitH = append(waitH, e)
			}
		} else {
			e := &annotEntry[*MemPlane]{done: make(chan struct{})}
			st.mem[cfg.Hier] = e
			claimed[cfg.Hier] = e
			mineH = append(mineH, cfg.Hier)
		}
		if e, ok := st.br[cfg.Predictor]; ok {
			st.touchLocked(&e.lastUse)
			if claimedP[cfg.Predictor] == nil {
				waitP = append(waitP, e)
			}
		} else {
			e := &annotEntry[*trace.BitPlane]{done: make(chan struct{})}
			st.br[cfg.Predictor] = e
			claimedP[cfg.Predictor] = e
			mineP = append(mineP, cfg.Predictor)
		}
	}
	// Snapshot canonicalization seeds — but only when this call
	// actually claimed annotation work: a newly computed plane equal
	// to a charged one canonicalizes onto it, so timing memoization
	// keeps sharing replays across batches. Pure cache-hit calls
	// (every per-point call after the up-front annotation pass) skip
	// the walk entirely.
	var memSeeds []*trace.BytePlane
	var brSeeds []*trace.BitPlane
	if len(mineH)+len(mineP) > 0 {
		memSeeds, brSeeds = st.seedsLocked()
	}
	st.mu.Unlock()

	var firstErr error
	if len(mineH)+len(mineP) > 0 {
		// Disk tier: rehydrate claimed components from the artifact
		// store first. A stored plane is bit-identical to a computed
		// one (content-addressed, checksum-verified), so it skips the
		// annotation traversal — and the annotation counters, which is
		// what lets tests pin "a warm process annotates nothing".
		// Anything not on disk (or unusable) is computed below.
		memRes := make(map[cache.HierarchyConfig]*MemPlane, len(mineH))
		memErrs := make(map[cache.HierarchyConfig]error)
		brResM := make(map[uarch.PredictorKind]*trace.BitPlane, len(mineP))
		brErrs := make(map[uarch.PredictorKind]error)
		computeH, computeP := mineH, mineP
		if pw.store != nil {
			computeH = nil
			for _, h := range mineH {
				if classes, stats, err := pw.store.LoadMemPlane(pw.storeKey, h); err == nil {
					memRes[h] = &MemPlane{Classes: classes, Stats: stats}
				} else {
					computeH = append(computeH, h)
				}
			}
			computeP = nil
			for _, pk := range mineP {
				if bp, err := pw.store.LoadBranchPlane(pw.storeKey, uarch.PredictorName(pk)); err == nil {
					brResM[pk] = bp
				} else {
					computeP = append(computeP, pk)
				}
			}
		}

		fronts, byFront := groupByFront(computeH)
		nf := len(fronts)
		frontRes := make([]map[cache.HierarchyConfig]*MemPlane, nf)
		frontRaw := make([]map[cache.HierarchyConfig]cache.Stats, nf)
		frontErr := make([]error, nf)
		brRes := make([]*trace.BitPlane, len(computeP))
		brSt := make([]branch.Stats, len(computeP))
		brErr := make([]error, len(computeP))
		// One pool for cache fronts and predictors together: the
		// traversals are independent, so none serializes behind the
		// others. Per-task errors (including converted panics) are
		// recorded, not returned, so one bad hierarchy cannot fail
		// unrelated components. Cancellation both aborts running
		// traversals (at chunk boundaries) and stops unstarted ones
		// from being claimed; tasks the cut skipped entirely are marked
		// with the cancellation error below so their claims resolve.
		cutErr := par.ForEachCtx(ctx, workers, nf+len(computeP), func(i int) error {
			if i < nf {
				frontRes[i], frontRaw[i], frontErr[i] = safeAnnotateFront(ctx, pw.Trace, fronts[i], byFront[fronts[i]])
			} else {
				brRes[i-nf], brSt[i-nf], brErr[i-nf] = safeAnnotateBranch(ctx, pw.Trace, computeP[i-nf])
			}
			return nil
		})
		for i := range frontErr {
			if frontErr[i] == nil && frontRes[i] == nil {
				frontErr[i] = cutErr
			}
		}
		for i := range brErr {
			if brErr[i] == nil && brRes[i] == nil {
				brErr[i] = cutErr
			}
		}
		for i, f := range fronts {
			for _, h := range byFront[f] {
				if frontErr[i] != nil {
					memErrs[h] = frontErr[i]
					continue
				}
				mp := frontRes[i][h]
				if fused != nil {
					fused.mem[h] = frontRaw[i][h]
				}
				// Write-through before canonicalization swaps pointers
				// (contents are equal either way). Save errors are
				// ignored: the disk tier can only skip work.
				if pw.store != nil {
					_ = pw.store.SaveMemPlane(pw.storeKey, h, mp.Classes, mp.Stats)
				}
				memRes[h] = mp
			}
		}
		for i, pk := range computeP {
			if brErr[i] != nil {
				brErrs[pk] = brErr[i]
				continue
			}
			if fused != nil {
				fused.br[pk] = brSt[i]
			}
			if pw.store != nil {
				_ = pw.store.SaveBranchPlane(pw.storeKey, uarch.PredictorName(pk), brRes[i])
			}
			brResM[pk] = brRes[i]
		}

		// Canonicalize outside the lock (plane comparison walks whole
		// chunks), then publish, charge and budget-evict under it.
		// Disk-loaded planes canonicalize too: two hierarchies whose
		// stored planes coincide still collapse to one object, so the
		// byte accounting and timing memoization behave exactly as for
		// computed planes.
		for _, h := range mineH {
			if mp := memRes[h]; mp != nil {
				mp.Classes = canonicalize(memSeeds, mp.Classes)
				memSeeds = append(memSeeds, mp.Classes)
			}
		}
		for _, pk := range mineP {
			if bp := brResM[pk]; bp != nil {
				q := canonicalize(brSeeds, bp)
				brResM[pk] = q
				brSeeds = append(brSeeds, q)
			}
		}

		st.mu.Lock()
		for _, h := range mineH {
			e := claimed[h]
			if err := memErrs[h]; err != nil {
				// Failed entries are removed so a later call can
				// retry; waiters of this batch observe the error.
				e.err = err
				if firstErr == nil {
					firstErr = err
				}
				if st.mem[h] == e {
					delete(st.mem, h)
				}
			} else {
				e.val = memRes[h]
				st.chargeMemLocked(e)
			}
			close(e.done)
		}
		for _, pk := range mineP {
			e := claimedP[pk]
			if err := brErrs[pk]; err != nil {
				e.err = err
				if firstErr == nil {
					firstErr = err
				}
				if st.br[pk] == e {
					delete(st.br, pk)
				}
			} else {
				e.val = brResM[pk]
				st.chargeBrLocked(e)
			}
			close(e.done)
		}
		st.evictLocked()
		st.mu.Unlock()
	}
	// Waits on other requests' claims abandon when ctx ends — every
	// claim of this call is already resolved above, so leaving early
	// wedges nobody.
	for _, e := range waitH {
		select {
		case <-e.done:
		case <-ctx.Done():
			return ctx.Err()
		}
		if e.err != nil && firstErr == nil {
			firstErr = e.err
		}
	}
	for _, e := range waitP {
		select {
		case <-e.done:
		case <-ctx.Done():
			return ctx.Err()
		}
		if e.err != nil && firstErr == nil {
			firstErr = e.err
		}
	}
	return firstErr
}

// Annotation returns the annotation planes for one design point,
// computing and caching them if needed (singleflight per component).
// The claimed entries' values are returned directly, so the result is
// valid even if a tight byte budget evicts the cache entries
// immediately: the planes are computed exactly once per call and never
// thrown away unread. The claim/seed/publish discipline mirrors the
// batched EnsureAnnotated — changes to charging, canonicalization or
// error eviction must be applied to both.
func (pw *Profiled) Annotation(cfg uarch.Config) (pipeline.Annotation, error) {
	return pw.AnnotationCtx(context.Background(), cfg)
}

// AnnotationCtx is Annotation under a request context, with the same
// claimant/waiter cancellation contract as EnsureAnnotatedCtx: own
// claims compute under ctx, waits on other requests' claims abandon
// when ctx ends, and another request's cancellation is retried rather
// than reported.
func (pw *Profiled) AnnotationCtx(ctx context.Context, cfg uarch.Config) (pipeline.Annotation, error) {
	for {
		ann, err := pw.annotation(ctx, cfg)
		if err != nil && isCancellation(err) && ctx.Err() == nil {
			continue
		}
		return ann, err
	}
}

func (pw *Profiled) annotation(ctx context.Context, cfg uarch.Config) (pipeline.Annotation, error) {
	st := &pw.annot
	st.mu.Lock()
	if st.mem == nil {
		st.mem = make(map[cache.HierarchyConfig]*annotEntry[*MemPlane])
		st.br = make(map[uarch.PredictorKind]*annotEntry[*trace.BitPlane])
	}
	me, haveM := st.mem[cfg.Hier]
	if haveM {
		st.touchLocked(&me.lastUse)
	} else {
		me = &annotEntry[*MemPlane]{done: make(chan struct{})}
		st.mem[cfg.Hier] = me
	}
	be, haveB := st.br[cfg.Predictor]
	if haveB {
		st.touchLocked(&be.lastUse)
	} else {
		be = &annotEntry[*trace.BitPlane]{done: make(chan struct{})}
		st.br[cfg.Predictor] = be
	}
	var memSeeds []*trace.BytePlane
	var brSeeds []*trace.BitPlane
	if !haveM || !haveB {
		memSeeds, brSeeds = st.seedsLocked()
	}
	st.mu.Unlock()

	// Resolve every claimed piece before any early return: a claimed
	// entry left unresolved would block its waiters forever.
	// Canonicalization against already-cached planes happens outside
	// the lock (the comparison walks whole chunks) so timing
	// memoization keeps sharing replays.
	var (
		mp *MemPlane
		bp *trace.BitPlane
	)
	var memErr, brErr error
	if !haveB {
		// Disk tier first: a stored plane skips the traversal (and
		// the annotation counter); a computed one is written through.
		if pw.store != nil {
			if q, err := pw.store.LoadBranchPlane(pw.storeKey, uarch.PredictorName(cfg.Predictor)); err == nil {
				bp = q
			}
		}
		if bp == nil {
			bp, _, brErr = safeAnnotateBranch(ctx, pw.Trace, cfg.Predictor)
			if brErr == nil && pw.store != nil {
				_ = pw.store.SaveBranchPlane(pw.storeKey, uarch.PredictorName(cfg.Predictor), bp)
			}
		}
		st.mu.Lock()
		if brErr != nil {
			// Failed entries are removed so a later call can retry.
			be.err = brErr
			if st.br[cfg.Predictor] == be {
				delete(st.br, cfg.Predictor)
			}
		} else {
			bp = canonicalize(brSeeds, bp)
			be.val = bp
			st.chargeBrLocked(be)
		}
		close(be.done)
		st.evictLocked()
		st.mu.Unlock()
	}
	if !haveM {
		// Computed and published with its own outcome even when the
		// branch half failed: one bad component must not poison the
		// other's waiters.
		if pw.store != nil {
			if classes, stats, err := pw.store.LoadMemPlane(pw.storeKey, cfg.Hier); err == nil {
				mp = &MemPlane{Classes: classes, Stats: stats}
			}
		}
		if mp == nil {
			var part map[cache.HierarchyConfig]*MemPlane
			part, _, memErr = safeAnnotateFront(ctx, pw.Trace, frontOf(cfg.Hier), []cache.HierarchyConfig{cfg.Hier})
			if memErr == nil {
				mp = part[cfg.Hier]
				if pw.store != nil {
					_ = pw.store.SaveMemPlane(pw.storeKey, cfg.Hier, mp.Classes, mp.Stats)
				}
			}
		}
		if memErr == nil {
			mp.Classes = canonicalize(memSeeds, mp.Classes)
		}
		st.mu.Lock()
		if memErr != nil {
			me.err = memErr
			if st.mem[cfg.Hier] == me {
				delete(st.mem, cfg.Hier)
			}
		} else {
			me.val = mp
			st.chargeMemLocked(me)
		}
		close(me.done)
		st.evictLocked()
		st.mu.Unlock()
	}
	if memErr != nil {
		return pipeline.Annotation{}, memErr
	}
	if brErr != nil {
		return pipeline.Annotation{}, brErr
	}
	if haveM {
		select {
		case <-me.done:
		case <-ctx.Done():
			return pipeline.Annotation{}, ctx.Err()
		}
		if me.err != nil {
			return pipeline.Annotation{}, me.err
		}
		mp = me.val
	}
	if haveB {
		select {
		case <-be.done:
		case <-ctx.Done():
			return pipeline.Annotation{}, ctx.Err()
		}
		if be.err != nil {
			return pipeline.Annotation{}, be.err
		}
		bp = be.val
	}
	return pipeline.Annotation{Mem: mp.Classes, MemStats: mp.Stats, Br: bp}, nil
}

// SimulateDetailed runs the detailed cycle-accurate simulation of one
// design point through the annotated fast path: machine events come
// from the (cached) planes and the replay is timing-only arithmetic.
// Timing results are additionally memoized by (timing parameters,
// plane identity) — design points whose planes canonicalized to the
// same objects share one replay, and only the hierarchy statistics are
// stamped per configuration. The Result is bit-identical to
// pipeline.Simulate's.
func (pw *Profiled) SimulateDetailed(cfg uarch.Config) (pipeline.Result, error) {
	return pw.SimulateDetailedCtx(context.Background(), cfg)
}

// SimulateDetailedCtx is SimulateDetailed under a request context:
// annotation and the timing replay abort at chunk/cycle-batch
// boundaries once ctx ends, waits on another request's in-flight
// replay abandon promptly, and a memo entry that failed with some
// other request's cancellation is recomputed rather than reported
// (the same contract as EnsureAnnotatedCtx).
func (pw *Profiled) SimulateDetailedCtx(ctx context.Context, cfg uarch.Config) (pipeline.Result, error) {
	for {
		res, err := pw.simulateDetailed(ctx, cfg)
		if err != nil && isCancellation(err) && ctx.Err() == nil {
			continue
		}
		return res, err
	}
}

func (pw *Profiled) simulateDetailed(ctx context.Context, cfg uarch.Config) (pipeline.Result, error) {
	ann, err := pw.annotation(ctx, cfg)
	if err != nil {
		return pipeline.Result{}, err
	}
	key := timingKeyOf(cfg, ann.Mem, ann.Br)
	st := &pw.annot
	st.mu.Lock()
	if st.timing == nil {
		st.timing = make(map[timingKey]*annotEntry[pipeline.Result])
	}
	e, ok := st.timing[key]
	if !ok {
		e = &annotEntry[pipeline.Result]{done: make(chan struct{})}
		st.timing[key] = e
	} else {
		st.touchLocked(&e.lastUse)
	}
	st.mu.Unlock()
	if ok {
		select {
		case <-e.done:
		case <-ctx.Done():
			return pipeline.Result{}, ctx.Err()
		}
		if e.err != nil {
			return pipeline.Result{}, e.err
		}
		res := e.val
		res.Cache = ann.MemStats
		return res, nil
	}
	res, err := safeSimulateAnnotated(ctx, pw.Trace, cfg, ann)
	st.mu.Lock()
	e.err = err
	if err == nil {
		e.val = res
		e.val.Cache = cache.Stats{} // stamped per configuration on reuse
		st.chargeTimingLocked(key, e)
	} else if st.timing[key] == e {
		// Failed entries are removed so a later call can retry.
		delete(st.timing, key)
	}
	close(e.done)
	st.evictLocked()
	st.mu.Unlock()
	return res, err
}

// SetAnnotBudget bounds the resident bytes of the annotation-plane and
// memoized-timing cache: whenever charged bytes exceed the budget,
// completed entries are evicted least-recently-used-first (shared
// canonicalized planes are uncharged only when their last referencing
// entry goes). bytes ≤ 0 removes the bound. Evicted components are
// recomputed transparently on next use.
func (pw *Profiled) SetAnnotBudget(bytes int64) {
	st := &pw.annot
	st.mu.Lock()
	st.budget = bytes
	st.evictLocked()
	st.mu.Unlock()
}

// AnnotBytes returns the bytes currently charged for resident
// annotation planes and memoized timing results.
func (pw *Profiled) AnnotBytes() int64 {
	st := &pw.annot
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.usedBytes
}

// AnnotEvictions returns how many cache entries the byte budget has
// evicted from this workload's annotation store.
func (pw *Profiled) AnnotEvictions() int64 {
	st := &pw.annot
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.evictions
}
