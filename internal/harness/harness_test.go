package harness

import (
	"testing"

	"repro/internal/uarch"
	"repro/internal/workloads"
)

// TestValidationDefaultConfig is the Figure 3 experiment in test form:
// the mechanistic model must track the detailed simulator closely on
// the default configuration for every MiBench-like benchmark.
func TestValidationDefaultConfig(t *testing.T) {
	cfg := uarch.Default()
	var sumErr float64
	n := 0
	for _, spec := range workloads.MiBench() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			pw := MustProfileProgram(spec.Build())
			v, err := pw.Validate(cfg)
			if err != nil {
				t.Fatalf("validate: %v", err)
			}
			t.Logf("%-14s N=%7d model=%.4f sim=%.4f err=%.2f%%",
				spec.Name, pw.Prof.N, v.ModelCPI, v.SimCPI, 100*v.AbsErr())
			if v.AbsErr() > 0.15 {
				t.Errorf("model error %.1f%% exceeds 15%% (model %.4f vs sim %.4f)",
					100*v.AbsErr(), v.ModelCPI, v.SimCPI)
			}
			sumErr += v.AbsErr()
			n++
		})
	}
	if n > 0 {
		t.Logf("average error %.2f%% over %d benchmarks", 100*sumErr/float64(n), n)
	}
}
