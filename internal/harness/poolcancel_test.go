package harness

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/program"
)

// waitSettled polls until the process goroutine count drops back to at
// most base+slack (the runtime keeps a few service goroutines of its
// own alive, and test machinery adds noise).
func waitSettled(t *testing.T, base int, what string) {
	t.Helper()
	const slack = 3
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s leaked goroutines: %d running, started from %d", what, runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPoolGetCtxCancelledLeaderHandsOff pins the singleflight handoff:
// the request that created an admission dies, but a second request
// waiting on the same name keeps the work alive and receives the
// result — the profiling run is never aborted while anyone wants it,
// and it runs exactly once.
func TestPoolGetCtxCancelledLeaderHandsOff(t *testing.T) {
	p := NewPool(PoolOptions{})
	started := make(chan struct{})
	release := make(chan struct{})
	var runs int
	profile := func(ctx context.Context) (*Profiled, error) {
		runs++
		close(started)
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return buildFor(t, "crc32")()
	}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := p.GetCtx(leaderCtx, "crc32", profile)
		leaderErr <- err
	}()
	<-started

	followerRes := make(chan error, 1)
	go func() {
		pw, err := p.GetCtx(context.Background(), "crc32", profile)
		if err == nil && pw == nil {
			err = errors.New("nil workload without error")
		}
		followerRes <- err
	}()
	// The follower must be registered as a waiter before the leader
	// leaves, or this test races handoff against cancellation.
	for {
		p.mu.Lock()
		e := p.entries["crc32"]
		refs := 0
		if e != nil {
			refs = e.refs
		}
		p.mu.Unlock()
		if refs >= 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	cancelLeader()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled leader returned %v, want context.Canceled", err)
	}
	close(release)
	if err := <-followerRes; err != nil {
		t.Fatalf("follower after leader handoff: %v", err)
	}
	if runs != 1 {
		t.Fatalf("profile ran %d times, want 1 (handoff, not re-admission)", runs)
	}
	if !p.Resident("crc32") {
		t.Fatal("workload not resident after handed-off admission completed")
	}
}

// TestPoolGetCtxLastWaiterCancelsWork pins the abort side: when every
// interested request has abandoned an in-flight admission, its work
// context is cancelled — profiling stops instead of running to
// completion for nobody — and the failed entry is not cached, so the
// next request re-admits cleanly.
func TestPoolGetCtxLastWaiterCancelsWork(t *testing.T) {
	base := runtime.NumGoroutine()
	p := NewPool(PoolOptions{})
	started := make(chan struct{})
	workCancelled := make(chan struct{})
	profile := func(ctx context.Context) (*Profiled, error) {
		close(started)
		<-ctx.Done() // simulate a long run that honors cancellation
		close(workCancelled)
		return nil, ctx.Err()
	}

	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, err := p.GetCtx(ctx, "x", profile)
		got <- err
	}()
	<-started
	cancel()
	if err := <-got; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned request returned %v, want context.Canceled", err)
	}
	select {
	case <-workCancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight work was not cancelled after the last waiter left")
	}

	// The cancelled admission must not be cached: a fresh request
	// profiles again and succeeds.
	pw, err := p.GetCtx(context.Background(), "x", func(context.Context) (*Profiled, error) {
		return buildFor(t, "crc32")()
	})
	if err != nil || pw == nil {
		t.Fatalf("Get after cancelled admission = %v, %v; want success", pw, err)
	}
	waitSettled(t, base+1, "cancelled admission") // +1: the fresh entry holds no goroutine; slack for test runner
}

// TestPoolLateWaiterRetriesCancelledAdmission pins progress through
// the narrow window the refcounting leaves open: the last waiter
// leaves and the work is cancelled, but before the doomed admission
// resolves, a fresh request joins its entry. That request observes
// someone else's cancellation error while its own context is live, so
// it must re-admit (as creator of the retry it holds a reference, and
// the new run can then only die with its own context) — not report
// the stranger's cancellation.
func TestPoolLateWaiterRetriesCancelledAdmission(t *testing.T) {
	p := NewPool(PoolOptions{})
	started := make(chan struct{})
	proceed := make(chan struct{})
	profile := func(ctx context.Context) (*Profiled, error) {
		close(started)
		<-ctx.Done()
		// Hold resolution open until the test has parked the late
		// waiter on this doomed entry.
		<-proceed
		return nil, ctx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	leader := make(chan error, 1)
	go func() {
		_, err := p.GetCtx(ctx, "x", profile)
		leader <- err
	}()
	<-started
	cancel()
	if err := <-leader; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled leader returned %v, want context.Canceled", err)
	}

	// The work context is now cancelled but the entry is unresolved;
	// the late request joins exactly that doomed entry.
	late := make(chan error, 1)
	go func() {
		pw, err := p.GetCtx(context.Background(), "x", func(context.Context) (*Profiled, error) {
			return buildFor(t, "crc32")()
		})
		if err == nil && pw == nil {
			err = errors.New("nil workload without error")
		}
		late <- err
	}()
	for {
		p.mu.Lock()
		e := p.entries["x"]
		refs := 0
		if e != nil {
			refs = e.refs
		}
		p.mu.Unlock()
		if refs >= 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(proceed)
	if err := <-late; err != nil {
		t.Fatalf("late waiter did not recover from the cancelled admission: %v", err)
	}
	if !p.Resident("x") {
		t.Fatal("workload not resident after the late waiter's re-admission")
	}
}

// TestPoolEvictionRacesCancelledGetBuilt is the -race stress for the
// satellite contract: a MaxWorkloads=1 pool under concurrent GetBuilt
// for several names, with requests cancelled mid-admission while
// others wait, must neither corrupt the singleflight table nor leak
// the detached admission goroutines — afterwards every name is still
// admittable with a correct result and the goroutine count settles.
func TestPoolEvictionRacesCancelledGetBuilt(t *testing.T) {
	base := runtime.NumGoroutine()
	p := NewPool(PoolOptions{MaxWorkloads: 1})
	names := []string{"crc32", "sha", "dijkstra", "patricia"}
	profileOf := func(name string) func(context.Context, *program.Program) (*Profiled, error) {
		return func(ctx context.Context, prog *program.Program) (*Profiled, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return ProfileProgram(prog)
		}
	}
	var wg sync.WaitGroup
	for round := 0; round < 4; round++ {
		for i, name := range names {
			wg.Add(1)
			go func(name string, doomed bool, delay time.Duration) {
				defer wg.Done()
				ctx := context.Background()
				if doomed {
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, delay)
					defer cancel()
				}
				spec := mustSpec(t, name)
				pw, err := p.GetBuiltCtx(ctx, name, spec.Build, profileOf(name))
				switch {
				case err == nil && pw == nil:
					t.Error("GetBuiltCtx returned nil workload without error")
				case err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded):
					t.Errorf("GetBuiltCtx(%s): %v", name, err)
				}
			}(name, i%2 == 0, time.Duration(1+(round*7+i)%9)*time.Millisecond)
		}
	}
	wg.Wait()

	// The singleflight table must still work for every name: no entry
	// wedged by a dead admission, and results are real workloads.
	for _, name := range names {
		spec := mustSpec(t, name)
		pw, err := p.GetBuiltCtx(context.Background(), name, spec.Build, profileOf(name))
		if err != nil || pw == nil || pw.Trace.Len() == 0 {
			t.Fatalf("post-race GetBuiltCtx(%s) = %v, %v; want a live workload", name, pw, err)
		}
	}
	st := p.Stats()
	if st.InFlight != 0 {
		t.Fatalf("in-flight admissions after all requests finished: %+v", st)
	}
	if st.Resident > 1 {
		t.Fatalf("MaxWorkloads=1 pool holds %d resident workloads", st.Resident)
	}
	waitSettled(t, base, "cancelled GetBuilt race")
}
