package harness

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/uarch"
	"repro/internal/workloads"
)

func buildFor(t *testing.T, name string) func() (*Profiled, error) {
	t.Helper()
	spec, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return func() (*Profiled, error) { return ProfileProgram(spec.Build()) }
}

// TestPoolSingleflight pins the admission contract: any number of
// concurrent Gets for one absent benchmark run exactly one profiling
// execution, and everyone receives the same Profiled.
func TestPoolSingleflight(t *testing.T) {
	p := NewPool(PoolOptions{MaxWorkloads: 4})
	build := buildFor(t, "crc32")
	const callers = 16
	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		got = make(map[*Profiled]int)
	)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pw, err := p.Get("crc32", build)
			if err != nil {
				t.Errorf("Get: %v", err)
				return
			}
			mu.Lock()
			got[pw]++
			mu.Unlock()
		}()
	}
	wg.Wait()
	if len(got) != 1 {
		t.Fatalf("concurrent Gets observed %d distinct Profiled values, want 1", len(got))
	}
	if n := p.ProfileCount(); n != 1 {
		t.Fatalf("ProfileCount = %d after %d concurrent Gets, want 1", n, callers)
	}
	st := p.Stats()
	if st.Misses != 1 || st.Hits != callers-1 {
		t.Fatalf("Stats = %+v, want 1 miss and %d hits", st, callers-1)
	}
}

// TestPoolLRUEviction pins the residency bound: admitting past
// MaxWorkloads evicts the least recently used workload, and a
// re-request re-profiles it.
func TestPoolLRUEviction(t *testing.T) {
	p := NewPool(PoolOptions{MaxWorkloads: 2})
	for _, name := range []string{"crc32", "sha"} {
		if _, err := p.Get(name, buildFor(t, name)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch crc32 so sha is the LRU entry.
	if _, err := p.Get("crc32", buildFor(t, "crc32")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get("dijkstra", buildFor(t, "dijkstra")); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Evictions != 1 || st.Resident != 2 {
		t.Fatalf("after third admission: %+v, want 1 eviction and 2 resident", st)
	}
	if p.Resident("sha") {
		t.Fatal("sha (LRU) still resident after eviction")
	}
	if !p.Resident("crc32") || !p.Resident("dijkstra") {
		t.Fatal("recently used workloads were evicted")
	}
	// Re-requesting the evicted workload profiles again.
	before := p.ProfileCount()
	if _, err := p.Get("sha", buildFor(t, "sha")); err != nil {
		t.Fatal(err)
	}
	if got := p.ProfileCount(); got != before+1 {
		t.Fatalf("ProfileCount after re-request = %d, want %d", got, before+1)
	}
}

// TestPoolConcurrentColdAdmissionsReconverge pins that the bound is
// re-enforced at completion: concurrent cold misses for distinct
// benchmarks can transiently exceed MaxWorkloads (nothing is evictable
// while every entry is in flight), but once the admissions complete
// the pool must be back at the bound — not stuck over it until the
// next cold miss.
func TestPoolConcurrentColdAdmissionsReconverge(t *testing.T) {
	p := NewPool(PoolOptions{MaxWorkloads: 1})
	names := []string{"crc32", "sha", "dijkstra", "patricia"}
	var wg sync.WaitGroup
	for _, name := range names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			if _, err := p.Get(name, buildFor(t, name)); err != nil {
				t.Error(err)
			}
		}(name)
	}
	wg.Wait()
	st := p.Stats()
	if st.Resident > 1 || st.InFlight != 0 {
		t.Fatalf("after all admissions completed: %+v, want ≤1 resident", st)
	}
	if st.Evictions < int64(len(names)-1) {
		t.Fatalf("evictions = %d, want ≥ %d", st.Evictions, len(names)-1)
	}
}

// TestPoolFailedAdmissionRetries pins the error path: a failed
// profiling run is not cached, and the next Get retries.
func TestPoolFailedAdmissionRetries(t *testing.T) {
	p := NewPool(PoolOptions{})
	boom := errors.New("boom")
	if _, err := p.Get("x", func() (*Profiled, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("first Get error = %v, want boom", err)
	}
	pw, err := p.Get("x", buildFor(t, "crc32"))
	if err != nil || pw == nil {
		t.Fatalf("retry Get = %v, %v; want success", pw, err)
	}
	if n := p.ProfileCount(); n != 2 {
		t.Fatalf("ProfileCount = %d, want 2 (failure plus retry)", n)
	}
}

// TestPoolPanickingProfileDoesNotWedge pins the panic path: a profile
// func that panics must resolve the singleflight entry as a failed
// admission (returned as an error), so the next Get retries instead of
// blocking forever on a never-closed done channel.
func TestPoolPanickingProfileDoesNotWedge(t *testing.T) {
	p := NewPool(PoolOptions{})
	_, err := p.Get("x", func() (*Profiled, error) { panic("boom") })
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panicking profile returned %v, want a panicked error", err)
	}
	pw, err := p.Get("x", buildFor(t, "crc32"))
	if err != nil || pw == nil {
		t.Fatalf("Get after panic = %v, %v; want a successful retry", pw, err)
	}
}

// TestPoolPlaneBudgetSlices pins the byte-budget wiring: each admitted
// workload's annotation store receives MaxPlaneBytes/MaxWorkloads, so
// the resident total stays under the global budget no matter how many
// design points are served.
func TestPoolPlaneBudgetSlices(t *testing.T) {
	// A budget far below one plane's size forces eviction on every
	// design point — the worst case for residency, exercised on real
	// requests below.
	const budget = 128 << 10
	p := NewPool(PoolOptions{MaxWorkloads: 2, MaxPlaneBytes: budget})
	pw, err := p.Get("crc32", buildFor(t, "crc32"))
	if err != nil {
		t.Fatal(err)
	}
	base := uarch.Default()
	for _, kb := range []int{128, 256, 512, 1024} {
		for _, ways := range []int{8, 16} {
			if _, err := pw.SimulateDetailed(base.WithL2(kb, ways)); err != nil {
				t.Fatal(err)
			}
			if got := pw.AnnotBytes(); got > budget/2 {
				t.Fatalf("workload annot bytes %d exceed slice %d", got, budget/2)
			}
		}
	}
	if st := p.Stats(); st.PlaneBytes > budget {
		t.Fatalf("pool plane bytes %d exceed budget %d", st.PlaneBytes, budget)
	}
	if pw.AnnotEvictions() == 0 {
		t.Fatal("expected the byte budget to evict at least one entry")
	}
}
