package harness

import (
	"testing"

	"repro/internal/core"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

func TestAblationTakenFragmentation(t *testing.T) {
	cfg := uarch.Default()
	var sum0, sum1 float64
	for _, spec := range workloads.MiBench() {
		pw := MustProfileProgram(spec.Build())
		v0, _ := pw.ValidateOpts(cfg, core.Options{})
		v1, _ := pw.ValidateOpts(cfg, core.Options{TakenFragmentation: true})
		t.Logf("%-14s paper=%.2f%% corrected=%.2f%%", spec.Name, 100*v0.AbsErr(), 100*v1.AbsErr())
		sum0 += v0.AbsErr()
		sum1 += v1.AbsErr()
	}
	t.Logf("avg: paper-model=%.2f%% corrected=%.2f%%", 100*sum0/19, 100*sum1/19)
}
