package harness

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/uarch"
)

// replays counts full-trace traversals performed for machine-statistics
// collection. Tests use it to pin the single-pass property of the
// design-space exploration: 192 design points, one replay.
var replays atomic.Int64

// ReplayCount returns the number of machine-statistics trace
// traversals performed so far in this process.
func ReplayCount() int64 { return replays.Load() }

// hierFront identifies the L2-independent part of a hierarchy plus the
// L2 block size — the unit one single-pass engine covers.
type hierFront struct {
	il1, dl1    cache.Config
	itlbEntries int
	dtlbEntries int
	pageBytes   int64
	l2Block     int64
}

func frontOf(h cache.HierarchyConfig) hierFront {
	return hierFront{
		il1:         h.IL1,
		dl1:         h.DL1,
		itlbEntries: h.ITLBEntries,
		dtlbEntries: h.DTLBEntries,
		pageBytes:   h.PageBytes,
		l2Block:     h.L2.BlockBytes,
	}
}

// MultiStats holds the mixed program/machine statistics for every
// design point of a space, collected in a single traversal of the
// trace: one stack-distance engine per distinct L1/TLB front covers
// all L2 geometries, and every distinct branch predictor runs
// simultaneously on the same stream.
type MultiStats struct {
	cacheStats  map[cache.HierarchyConfig]cache.Stats
	branchStats map[uarch.PredictorKind]branch.Stats
}

// CollectMultiStats collects machine statistics for every
// configuration in cfgs in one pass over tr. The returned MultiStats
// is immutable and safe for concurrent use.
func CollectMultiStats(tr *trace.Trace, cfgs []uarch.Config) (*MultiStats, error) {
	return CollectMultiStatsCtx(context.Background(), tr, cfgs)
}

// CollectMultiStatsCtx is CollectMultiStats under a context: the
// single statistics traversal aborts at a trace chunk boundary once
// ctx ends, returning ctx.Err() with nothing collected.
func CollectMultiStatsCtx(ctx context.Context, tr *trace.Trace, cfgs []uarch.Config) (*MultiStats, error) {
	m := &MultiStats{
		cacheStats:  make(map[cache.HierarchyConfig]cache.Stats),
		branchStats: make(map[uarch.PredictorKind]branch.Stats),
	}
	if len(cfgs) == 0 {
		return m, nil
	}

	// One engine per distinct fixed front; one collector per predictor.
	engines := make(map[hierFront]*cache.L2SpaceSim)
	l2sByFront := make(map[hierFront][]cache.Config)
	var hiers []cache.HierarchyConfig
	for _, cfg := range cfgs {
		if _, dup := m.cacheStats[cfg.Hier]; !dup {
			m.cacheStats[cfg.Hier] = cache.Stats{} // mark wanted
			hiers = append(hiers, cfg.Hier)
			f := frontOf(cfg.Hier)
			l2sByFront[f] = append(l2sByFront[f], cfg.Hier.L2)
		}
		if _, dup := m.branchStats[cfg.Predictor]; !dup {
			m.branchStats[cfg.Predictor] = branch.Stats{}
		}
	}
	consumers := make(trace.Tee, 0, len(l2sByFront)+len(m.branchStats))
	for f, l2s := range l2sByFront {
		base := cache.HierarchyConfig{
			IL1: f.il1, DL1: f.dl1,
			ITLBEntries: f.itlbEntries, DTLBEntries: f.dtlbEntries,
			PageBytes: f.pageBytes,
		}
		eng, err := cache.NewL2SpaceSim(base, l2s)
		if err != nil {
			return nil, err
		}
		engines[f] = eng
		consumers = append(consumers, eng)
	}
	bcs := make(map[uarch.PredictorKind]*branch.Collector, len(m.branchStats))
	for pk := range m.branchStats {
		bc := branch.NewCollector(pk.New())
		bcs[pk] = bc
		consumers = append(consumers, bc)
	}

	replays.Add(1)
	if err := tr.ReplayCtx(ctx, consumers); err != nil {
		return nil, err
	}

	for _, h := range hiers {
		cs, err := engines[frontOf(h)].StatsFor(h.L2)
		if err != nil {
			return nil, err
		}
		m.cacheStats[h] = cs
	}
	for pk, bc := range bcs {
		m.branchStats[pk] = bc.S
	}
	return m, nil
}

// Stats returns the machine statistics for one design point of the
// collected space.
func (m *MultiStats) Stats(cfg uarch.Config) (cache.Stats, branch.Stats, error) {
	cs, ok := m.cacheStats[cfg.Hier]
	if !ok {
		return cache.Stats{}, branch.Stats{}, fmt.Errorf("harness: hierarchy %v not in collected space", cfg.Hier)
	}
	bs, ok := m.branchStats[cfg.Predictor]
	if !ok {
		return cache.Stats{}, branch.Stats{}, fmt.Errorf("harness: predictor %v not in collected space", cfg.Predictor)
	}
	return cs, bs, nil
}

// MultiInputs collects statistics for the whole space in one pass and
// returns the per-configuration model inputs, keyed by the memo
// accessor. See CollectMultiStats.
func (pw *Profiled) MultiInputs(cfgs []uarch.Config) (*InputsSet, error) {
	return pw.MultiInputsCtx(context.Background(), cfgs)
}

// MultiInputsCtx is MultiInputs under a context (see
// CollectMultiStatsCtx).
func (pw *Profiled) MultiInputsCtx(ctx context.Context, cfgs []uarch.Config) (*InputsSet, error) {
	ms, err := CollectMultiStatsCtx(ctx, pw.Trace, cfgs)
	if err != nil {
		return nil, err
	}
	return &InputsSet{pw: pw, ms: ms}, nil
}

// InputsSet resolves model inputs for any configuration of a collected
// space. It is immutable and safe for concurrent use.
type InputsSet struct {
	pw *Profiled
	ms *MultiStats
}

// fusedStats is the statistics side-channel of a fused
// annotation+inputs pass (ExploreInputs): each annotation traversal
// deposits the raw end-of-run statistics its engines produced, keyed
// like MultiStats. It is written only from the sequential publish
// section of ensureAnnotated, so it needs no locking.
type fusedStats struct {
	mem map[cache.HierarchyConfig]cache.Stats // raw engine stats (no I-stall fold)
	br  map[uarch.PredictorKind]branch.Stats
}

// ExploreInputs is ExploreInputsCtx with a background context.
func (pw *Profiled) ExploreInputs(cfgs []uarch.Config, workers int) (*InputsSet, error) {
	return pw.ExploreInputsCtx(context.Background(), cfgs, workers)
}

// ExploreInputsCtx computes the annotation planes AND the model inputs
// of every configuration in cfgs from one fused pass: the cache engine
// and predictor that compute a component's plane see exactly the
// stream CollectMultiStats would replay, so their end-of-run
// statistics double as the model inputs. A cold validated exploration
// therefore performs no separate statistics traversal at all.
// Components that were already annotated (cache or disk hits) carry no
// fused statistics; one supplemental CollectMultiStats replay covers
// exactly those. The returned inputs are bit-identical to
// MultiInputsCtx's, and the annotation cache is left exactly as
// EnsureAnnotatedCtx would leave it.
func (pw *Profiled) ExploreInputsCtx(ctx context.Context, cfgs []uarch.Config, workers int) (*InputsSet, error) {
	fs := &fusedStats{
		mem: make(map[cache.HierarchyConfig]cache.Stats),
		br:  make(map[uarch.PredictorKind]branch.Stats),
	}
	// Same retry contract as EnsureAnnotatedCtx: another request's
	// cancellation re-claims rather than reports. Statistics deposited
	// by completed traversals of an aborted attempt stay valid — their
	// components are published, so the retry recomputes only the rest.
	for {
		err := pw.ensureAnnotated(ctx, cfgs, workers, fs)
		if err == nil {
			break
		}
		if isCancellation(err) && ctx.Err() == nil {
			continue
		}
		return nil, err
	}
	var missing []uarch.Config
	for _, cfg := range cfgs {
		_, okH := fs.mem[cfg.Hier]
		_, okP := fs.br[cfg.Predictor]
		if !okH || !okP {
			missing = append(missing, cfg)
		}
	}
	if len(missing) > 0 {
		ms, err := CollectMultiStatsCtx(ctx, pw.Trace, missing)
		if err != nil {
			return nil, err
		}
		// Merge only the missing keys: fused values are bit-identical
		// anyway, but the guard keeps the precedence explicit.
		for h, cs := range ms.cacheStats {
			if _, ok := fs.mem[h]; !ok {
				fs.mem[h] = cs
			}
		}
		for pk, bs := range ms.branchStats {
			if _, ok := fs.br[pk]; !ok {
				fs.br[pk] = bs
			}
		}
	}
	return &InputsSet{pw: pw, ms: &MultiStats{cacheStats: fs.mem, branchStats: fs.br}}, nil
}

// Inputs assembles the model inputs for one design point.
func (s *InputsSet) Inputs(cfg uarch.Config) (core.Inputs, error) {
	cs, bs, err := s.ms.Stats(cfg)
	if err != nil {
		return core.Inputs{}, err
	}
	return core.Inputs{Prof: s.pw.Prof, Mem: cs, Branch: bs}, nil
}
