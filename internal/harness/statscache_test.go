package harness

import (
	"context"
	"testing"

	"repro/internal/workloads"
)

// TestStatsCacheMatchesOneShot pins the search's statistics economy
// AND its bit-identity claim at once: feeding the Table 2 component
// combinations to a StatsCache in several incremental batches must
// cost one replay per batch that actually misses, zero for covered
// batches, and hand out inputs bit-identical to one CollectMultiStats
// pass over the union.
func TestStatsCacheMatchesOneShot(t *testing.T) {
	spec, err := workloads.ByName("crc32")
	if err != nil {
		t.Fatal(err)
	}
	pw := MustProfileProgram(spec.Build())
	cfgs := table2Combos()

	oneShot, err := CollectMultiStats(pw.Trace, cfgs)
	if err != nil {
		t.Fatal(err)
	}

	sc := pw.NewStatsCache()
	ctx := context.Background()
	// Three overlapping batches: the second re-adds half of the first
	// (already covered, but alongside new hierarchies), the third is
	// fully covered and must not replay.
	if err := sc.AddCtx(ctx, cfgs[:6]); err != nil {
		t.Fatal(err)
	}
	if err := sc.AddCtx(ctx, cfgs[3:]); err != nil {
		t.Fatal(err)
	}
	if got := sc.Replays(); got != 2 {
		t.Fatalf("replays after two missing batches = %d, want 2", got)
	}
	if err := sc.AddCtx(ctx, cfgs); err != nil {
		t.Fatal(err)
	}
	if got := sc.Replays(); got != 2 {
		t.Fatalf("covered batch replayed: %d traversals, want still 2", got)
	}

	for _, cfg := range cfgs {
		wantMem, wantBr, err := oneShot.Stats(cfg)
		if err != nil {
			t.Fatal(err)
		}
		in, err := sc.Inputs(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if in.Mem != wantMem {
			t.Fatalf("%s: cache stats differ from one-shot:\n got %+v\nwant %+v", cfg.Name, in.Mem, wantMem)
		}
		if in.Branch != wantBr {
			t.Fatalf("%s: branch stats differ from one-shot:\n got %+v\nwant %+v", cfg.Name, in.Branch, wantBr)
		}
		if in.Prof != pw.Prof {
			t.Fatalf("%s: profile pointer differs", cfg.Name)
		}
	}
}
