package harness

import (
	"repro/internal/artifact"
	"repro/internal/program"
)

// AttachArtifacts gives the workload a persistent annotation tier: the
// store holds this workload's trace/profile under key, and the plane
// cache (EnsureAnnotated / Annotation) will rehydrate per-component
// planes from it before computing and write freshly computed planes
// through to it. Attach before sharing pw across goroutines — the
// fields are read without locking on the annotation paths.
func (pw *Profiled) AttachArtifacts(s ArtifactTier, key string) {
	pw.store = s
	pw.storeKey = key
}

// ArtifactKey returns the content key this workload's artifacts live
// under ("" when no store is attached).
func (pw *Profiled) ArtifactKey() string { return pw.storeKey }

// ProfileProgramCached is ProfileProgramScaled behind the artifact
// store: a valid stored artifact rehydrates the workload without
// executing it (bit-identical — the codecs round-trip the trace and
// profile exactly), a miss profiles fresh and writes through. The
// returned flag reports whether the workload came from disk. A nil
// store degrades to plain profiling. The build func always runs once
// — the artifact identity includes the built program's content
// fingerprint, so stale traces are unreachable after a kernel edit —
// but a warm caller still skips the expensive part, the execution.
func ProfileProgramCached(store ArtifactTier, name string, minDyn int64, build func() *program.Program) (*Profiled, bool, error) {
	prog := build()
	id := artifact.WorkloadID{Name: name, MinDynInsts: minDyn, Code: prog.Fingerprint()}
	if store != nil {
		if tr, prof, err := store.LoadWorkload(id); err == nil {
			pw := &Profiled{Name: name, Trace: tr, Prof: prof}
			pw.AttachArtifacts(store, store.WorkloadKey(id))
			return pw, true, nil
		}
		// Missing or unusable artifact: profile fresh either way.
	}
	pw, err := ProfileProgramScaled(prog, minDyn)
	if err != nil {
		return nil, false, err
	}
	if store != nil {
		if key, serr := store.SaveWorkload(id, pw.Trace, pw.Prof); serr == nil && key != "" {
			pw.AttachArtifacts(store, key)
		}
	}
	return pw, false, nil
}
