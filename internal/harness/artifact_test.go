package harness

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/artifact"
	"repro/internal/pipeline"
	"repro/internal/program"
	"repro/internal/randprog"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

func openTestStore(t *testing.T) *artifact.Store {
	t.Helper()
	s, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// table2Subset returns a handful of Table 2 design points spanning
// distinct hierarchies, predictors and timing parameters.
func table2Subset(t *testing.T) []uarch.Config {
	t.Helper()
	var out []uarch.Config
	for _, pt := range []struct {
		w, st, kb, ways int
		pred            string
	}{
		{4, 9, 512, 8, "gshare"},
		{2, 5, 128, 8, "hybrid"},
		{1, 7, 1024, 16, "gshare"},
		{3, 9, 256, 16, "hybrid"},
	} {
		cfg, err := uarch.Table2Config(uarch.Default(), pt.w, pt.st, pt.kb, pt.ways, pt.pred)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, cfg)
	}
	return out
}

// TestPoolDiskTierWriteThroughAndWarm pins the write-through contract:
// a cold pool profiles once and installs the artifact; a second pool
// over the same directory (modeling a restarted process) admits the
// workload with zero profiling runs, and every prediction and detailed
// simulation is bit-identical to the cold pool's.
// getBuilt admits name through the pool's disk tier with the standard
// builder and profiler.
func getBuilt(t *testing.T, p *Pool, name string) (*Profiled, error) {
	t.Helper()
	spec := mustSpec(t, name)
	return p.GetBuilt(name, spec.Build, func(prog *program.Program) (*Profiled, error) {
		return ProfileProgram(prog)
	})
}

func TestPoolDiskTierWriteThroughAndWarm(t *testing.T) {
	store := openTestStore(t)
	cold := NewPool(PoolOptions{Store: store})
	pwCold, err := getBuilt(t, cold, "sha")
	if err != nil {
		t.Fatal(err)
	}
	st := cold.Stats()
	if st.Profiles != 1 || st.DiskHits != 0 || st.DiskWrites != 1 || st.DiskErrors != 0 {
		t.Fatalf("cold pool stats = %+v, want 1 profile, 0 disk hits, 1 disk write", st)
	}
	if pwCold.ArtifactKey() == "" {
		t.Fatal("cold admission did not attach the artifact store")
	}

	warm := NewPool(PoolOptions{Store: store})
	pwWarm, err := warm.GetBuilt("sha", mustSpec(t, "sha").Build, func(prog *program.Program) (*Profiled, error) {
		t.Error("warm pool ran the profile func despite a valid artifact")
		return ProfileProgram(prog)
	})
	if err != nil {
		t.Fatal(err)
	}
	st = warm.Stats()
	if st.Profiles != 0 || st.DiskHits != 1 {
		t.Fatalf("warm pool stats = %+v, want 0 profiles, 1 disk hit", st)
	}
	if warm.ProfileCount() != 0 {
		t.Fatalf("warm ProfileCount = %d, want 0", warm.ProfileCount())
	}

	for _, cfg := range table2Subset(t) {
		mc, err := pwCold.Predict(cfg)
		if err != nil {
			t.Fatal(err)
		}
		mw, err := pwWarm.Predict(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if *mc != *mw {
			t.Fatalf("%s: model prediction differs between fresh and rehydrated workload", cfg)
		}
		sc, err := pwCold.SimulateDetailed(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sw, err := pwWarm.SimulateDetailed(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if sc != sw {
			t.Fatalf("%s: detailed simulation differs between fresh and rehydrated workload:\n fresh %+v\n disk  %+v", cfg, sc, sw)
		}
	}
}

func mustSpec(t *testing.T, name string) workloads.Spec {
	t.Helper()
	spec, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestPoolDiskTierFallsBackOnCorruptArtifact pins the safety contract:
// an unusable artifact is never served — the pool profiles fresh,
// counts the disk error, and overwrites the bad file so the next
// process is warm again.
func TestPoolDiskTierFallsBackOnCorruptArtifact(t *testing.T) {
	store := openTestStore(t)
	cold := NewPool(PoolOptions{Store: store})
	pwCold, err := getBuilt(t, cold, "crc32")
	if err != nil {
		t.Fatal(err)
	}
	key := pwCold.ArtifactKey()
	path := filepath.Join(store.Dir(), key+artifact.Ext)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	p := NewPool(PoolOptions{Store: store})
	pw, err := getBuilt(t, p, "crc32")
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Profiles != 1 || st.DiskHits != 0 || st.DiskErrors != 1 || st.DiskWrites != 1 {
		t.Fatalf("stats after corrupt artifact = %+v, want 1 profile, 0 disk hits, 1 disk error, 1 rewrite", st)
	}
	if pw.Trace.Len() != pwCold.Trace.Len() || *pw.Prof != *pwCold.Prof {
		t.Fatal("fallback profiling produced a different workload")
	}

	// The rewrite healed the store: a third pool is warm again.
	healed := NewPool(PoolOptions{Store: store})
	if _, err := healed.GetBuilt("crc32", mustSpec(t, "crc32").Build, func(*program.Program) (*Profiled, error) {
		t.Error("healed store still triggered profiling")
		return nil, errors.New("unreachable")
	}); err != nil {
		t.Fatal(err)
	}
	if healed.ProfileCount() != 0 {
		t.Fatalf("healed ProfileCount = %d, want 0", healed.ProfileCount())
	}
}

// TestPoolDiskTierKeyedByDynInsts pins that differently scaled traces
// never collide on disk: a pool with a dyninsts floor ignores the
// unscaled artifact and writes its own.
func TestPoolDiskTierKeyedByDynInsts(t *testing.T) {
	store := openTestStore(t)
	p0 := NewPool(PoolOptions{Store: store})
	pw0, err := getBuilt(t, p0, "crc32")
	if err != nil {
		t.Fatal(err)
	}
	minDyn := 4 * pw0.Trace.Len()
	spec := mustSpec(t, "crc32")
	p1 := NewPool(PoolOptions{Store: store, MinDynInsts: minDyn})
	pw1, err := p1.GetBuilt("crc32", spec.Build, func(prog *program.Program) (*Profiled, error) {
		return ProfileProgramScaled(prog, minDyn)
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := p1.Stats(); st.DiskHits != 0 || st.Profiles != 1 {
		t.Fatalf("scaled pool stats = %+v, want a fresh profile (different artifact key)", st)
	}
	if pw1.Trace.Len() < minDyn {
		t.Fatalf("scaled trace has %d instructions, want >= %d", pw1.Trace.Len(), minDyn)
	}
	// And a second scaled pool hits the scaled artifact.
	p2 := NewPool(PoolOptions{Store: store, MinDynInsts: minDyn})
	pw2, err := p2.GetBuilt("crc32", spec.Build, func(*program.Program) (*Profiled, error) {
		t.Error("scaled artifact should have been served from disk")
		return nil, errors.New("unreachable")
	})
	if err != nil {
		t.Fatal(err)
	}
	if pw2.Trace.Len() != pw1.Trace.Len() {
		t.Fatal("rehydrated scaled trace differs in length")
	}
}

// TestPoolDiskTierKeyedByProgramCode pins the stale-artifact guard: a
// workload whose built IR changed must miss the old artifact (the
// identity embeds the program's content fingerprint) and reprofile,
// never rehydrate the pre-change trace.
func TestPoolDiskTierKeyedByProgramCode(t *testing.T) {
	store := openTestStore(t)
	p0 := NewPool(PoolOptions{Store: store})
	if _, err := getBuilt(t, p0, "crc32"); err != nil {
		t.Fatal(err)
	}

	spec := mustSpec(t, "crc32")
	edited := func() *program.Program {
		prog := spec.Build()
		// Model a kernel edit: perturb one initialized data word.
		addrs := prog.DataAddrs()
		if len(addrs) == 0 {
			prog.SetData(0, 1)
		} else {
			prog.SetData(addrs[0], prog.Data[addrs[0]]+1)
		}
		return prog
	}
	if a, b := spec.Build().Fingerprint(), edited().Fingerprint(); a == b {
		t.Fatal("edited program fingerprint did not change")
	}
	p1 := NewPool(PoolOptions{Store: store})
	if _, err := p1.GetBuilt("crc32", edited, func(prog *program.Program) (*Profiled, error) {
		return ProfileProgram(prog)
	}); err != nil {
		t.Fatal(err)
	}
	if st := p1.Stats(); st.DiskHits != 0 || st.Profiles != 1 {
		t.Fatalf("edited-workload stats = %+v, want a fresh profile, zero disk hits", st)
	}
}

// TestPlaneDiskTier pins the annotation-plane disk tier: a workload
// rehydrated by a second "process" loads planes from the store instead
// of annotating (counter-pinned), with bit-identical timing results.
func TestPlaneDiskTier(t *testing.T) {
	store := openTestStore(t)
	cfgs := table2Subset(t)

	pwCold, _, err := ProfileProgramCached(store, "sha", 0, mustSpec(t, "sha").Build)
	if err != nil {
		t.Fatal(err)
	}
	c0, b0 := CacheAnnotationCount(), BranchAnnotationCount()
	if err := pwCold.EnsureAnnotated(cfgs, 2); err != nil {
		t.Fatal(err)
	}
	cCold, bCold := CacheAnnotationCount()-c0, BranchAnnotationCount()-b0
	if cCold == 0 || bCold == 0 {
		t.Fatalf("cold run annotated %d hierarchies, %d predictors; want > 0 each", cCold, bCold)
	}
	coldRes := make([]pipeline.Result, len(cfgs))
	for i, cfg := range cfgs {
		r, err := pwCold.SimulateDetailed(cfg)
		if err != nil {
			t.Fatal(err)
		}
		coldRes[i] = r
	}

	// Second process: workload and planes both rehydrate from disk.
	// (The build func runs — the artifact identity needs the program
	// fingerprint — but the workload must not be *executed*, which
	// fromDisk pins.)
	pwWarm, fromDisk, err := ProfileProgramCached(store, "sha", 0, mustSpec(t, "sha").Build)
	if err != nil {
		t.Fatal(err)
	}
	if !fromDisk {
		t.Fatal("second process did not rehydrate the workload from disk")
	}
	c1, b1 := CacheAnnotationCount(), BranchAnnotationCount()
	if err := pwWarm.EnsureAnnotated(cfgs, 2); err != nil {
		t.Fatal(err)
	}
	if dc, db := CacheAnnotationCount()-c1, BranchAnnotationCount()-b1; dc != 0 || db != 0 {
		t.Fatalf("warm run annotated %d hierarchies, %d predictors; want 0 (planes must come from disk)", dc, db)
	}
	for i, cfg := range cfgs {
		r, err := pwWarm.SimulateDetailed(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r != coldRes[i] {
			t.Fatalf("%s: rehydrated-plane simulation differs from cold run:\n cold %+v\n warm %+v", cfg, coldRes[i], r)
		}
	}
	// The single-point Annotation path also loads from disk: a third
	// rehydration simulating one config must not annotate either.
	pwOne, _, err := ProfileProgramCached(store, "sha", 0, mustSpec(t, "sha").Build)
	if err != nil {
		t.Fatal(err)
	}
	c2, b2 := CacheAnnotationCount(), BranchAnnotationCount()
	r, err := pwOne.SimulateDetailed(cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	if dc, db := CacheAnnotationCount()-c2, BranchAnnotationCount()-b2; dc != 0 || db != 0 {
		t.Fatalf("single-point warm path annotated %d/%d components, want 0", dc, db)
	}
	if r != coldRes[0] {
		t.Fatal("single-point warm simulation differs from cold run")
	}
}

// TestArtifactRoundTripRandprog sweeps randomized programs through the
// disk tier: for each generated program, the rehydrated workload's
// prediction and detailed simulation are bit-identical to the fresh
// one's.
func TestArtifactRoundTripRandprog(t *testing.T) {
	cfg := uarch.Default()
	for seed := int64(1); seed <= 4; seed++ {
		store := openTestStore(t)
		prog := randprog.Generate(randprog.Default(seed))
		fresh, err := ProfileProgram(prog)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		id := artifact.WorkloadID{Name: prog.Name}
		key, err := store.SaveWorkload(id, fresh.Trace, fresh.Prof)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		tr, prof, err := store.LoadWorkload(id)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		loaded := &Profiled{Name: prog.Name, Trace: tr, Prof: prof}
		loaded.AttachArtifacts(store, key)

		mf, err := fresh.Predict(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ml, err := loaded.Predict(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if *mf != *ml {
			t.Fatalf("seed %d: prediction differs after disk round trip", seed)
		}
		sf, err := fresh.SimulateDetailed(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sl, err := loaded.SimulateDetailed(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if sf != sl {
			t.Fatalf("seed %d: detailed simulation differs after disk round trip", seed)
		}
	}
}
