package harness

import (
	"testing"

	"repro/internal/pipeline"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

// budgetSpaceConfigs is a small slice of the Table 2 space covering
// several distinct hierarchies, predictors and timing parameters.
func budgetSpaceConfigs() []uarch.Config {
	base := uarch.Default()
	return []uarch.Config{
		base,
		base.WithL2(128, 8),
		base.WithL2(1024, 16),
		base.WithWidth(2),
		base.WithPredictor(uarch.PredHybrid3_5KB),
		base.WithWidth(1).WithL2(256, 16).WithPredictor(uarch.PredHybrid3_5KB),
	}
}

// TestAnnotBudgetKeepsBytesBounded pins the eviction contract: with
// any byte budget — including one smaller than a single plane — the
// resident cache bytes never exceed the budget after a request
// completes, evictions actually happen, and every simulation stays
// bit-identical to the unbounded path.
func TestAnnotBudgetKeepsBytesBounded(t *testing.T) {
	spec, err := workloads.ByName("crc32")
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int64{32 << 10, 1 << 30} {
		pw := MustProfileProgram(spec.Build())
		pw.SetAnnotBudget(budget)
		for _, cfg := range budgetSpaceConfigs() {
			got, err := pw.SimulateDetailed(cfg)
			if err != nil {
				t.Fatalf("budget %d, cfg %s: %v", budget, cfg, err)
			}
			want, err := pipeline.Simulate(pw.Trace, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("budget %d, cfg %s: SimulateDetailed diverges under eviction:\n got  %+v\n want %+v",
					budget, cfg, got, want)
			}
			if used := pw.AnnotBytes(); used > budget {
				t.Fatalf("budget %d: resident bytes %d exceed budget", budget, used)
			}
		}
		if budget < 1<<20 && pw.AnnotEvictions() == 0 {
			t.Errorf("tiny budget %d evicted nothing", budget)
		}
		if budget == 1<<30 && pw.AnnotEvictions() != 0 {
			t.Errorf("large budget %d evicted %d entries, want 0", budget, pw.AnnotEvictions())
		}
	}
}

// TestAnnotBudgetUnsetNeverEvicts pins backward compatibility: without
// SetAnnotBudget the store grows as before and never evicts, so the
// exploration-sharing invariants of earlier PRs are untouched.
func TestAnnotBudgetUnsetNeverEvicts(t *testing.T) {
	spec, err := workloads.ByName("crc32")
	if err != nil {
		t.Fatal(err)
	}
	pw := MustProfileProgram(spec.Build())
	for _, cfg := range budgetSpaceConfigs() {
		if _, err := pw.SimulateDetailed(cfg); err != nil {
			t.Fatal(err)
		}
	}
	if pw.AnnotEvictions() != 0 {
		t.Fatalf("unbounded store evicted %d entries", pw.AnnotEvictions())
	}
	if pw.AnnotBytes() == 0 {
		t.Fatal("accounting recorded zero bytes for a populated store")
	}
}

// TestSetAnnotBudgetEvictsRetroactively pins that lowering the budget
// on a populated store evicts immediately.
func TestSetAnnotBudgetEvictsRetroactively(t *testing.T) {
	spec, err := workloads.ByName("crc32")
	if err != nil {
		t.Fatal(err)
	}
	pw := MustProfileProgram(spec.Build())
	for _, cfg := range budgetSpaceConfigs() {
		if _, err := pw.SimulateDetailed(cfg); err != nil {
			t.Fatal(err)
		}
	}
	grown := pw.AnnotBytes()
	if grown == 0 {
		t.Fatal("store empty before budget change")
	}
	const budget = 16 << 10
	pw.SetAnnotBudget(budget)
	if used := pw.AnnotBytes(); used > budget {
		t.Fatalf("resident bytes %d exceed new budget %d", used, budget)
	}
	if pw.AnnotEvictions() == 0 {
		t.Fatal("no evictions after budget drop")
	}
	// The store keeps answering correctly after the purge.
	cfg := uarch.Default()
	got, err := pw.SimulateDetailed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := pipeline.Simulate(pw.Trace, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("post-purge SimulateDetailed diverges:\n got  %+v\n want %+v", got, want)
	}
}
