package harness

import (
	"fmt"
	"sync"
)

// PoolOptions bounds a workload Pool.
type PoolOptions struct {
	// MaxWorkloads is the maximum number of resident Profiled
	// workloads; admitting one more evicts the least recently used
	// completed entry. ≤ 0 means unbounded.
	MaxWorkloads int
	// MaxPlaneBytes is the annotation-plane/timing-memo byte budget.
	// With MaxWorkloads > 0 each admitted workload receives an equal
	// slice (see Profiled.SetAnnotBudget), so the resident total stays
	// under MaxPlaneBytes; with MaxWorkloads ≤ 0 the budget applies
	// per workload (an unbounded workload count has no fixed slice).
	// ≤ 0 means unbounded.
	MaxPlaneBytes int64
}

// PoolStats is a snapshot of a Pool's counters. The json tags shape
// the service's /metrics output.
type PoolStats struct {
	Hits       int64 `json:"hits"`        // Get calls answered by a resident (or in-flight) entry
	Misses     int64 `json:"misses"`      // Get calls that had to admit a new entry
	Evictions  int64 `json:"evictions"`   // workloads evicted by the MaxWorkloads bound
	Profiles   int64 `json:"profiles"`    // profiling runs executed (== Misses: each admission runs one)
	Resident   int   `json:"resident"`    // completed workloads currently resident
	InFlight   int   `json:"in_flight"`   // admissions currently profiling
	PlaneBytes int64 `json:"plane_bytes"` // annotation/timing bytes resident across all workloads
}

// Pool is a bounded, concurrent cache of Profiled workloads — the
// resource-management layer behind a long-running prediction service.
// Admission is singleflight (concurrent Gets for the same name profile
// it once, everyone waits on that run), residency is LRU-bounded by
// MaxWorkloads, and each resident workload's annotation store is given
// an equal slice of MaxPlaneBytes so total plane/timing memory stays
// under the budget no matter how many design points are served.
type Pool struct {
	mu      sync.Mutex
	opt     PoolOptions
	entries map[string]*poolEntry
	clock   int64

	hits      int64
	misses    int64
	evictions int64
}

type poolEntry struct {
	done    chan struct{}
	pw      *Profiled
	err     error
	lastUse int64
}

// NewPool creates a Pool with the given bounds.
func NewPool(opt PoolOptions) *Pool {
	return &Pool{opt: opt, entries: make(map[string]*poolEntry)}
}

// perWorkloadBudget is the annotation-byte slice each resident
// workload receives so the resident total stays under MaxPlaneBytes.
func (p *Pool) perWorkloadBudget() int64 {
	if p.opt.MaxPlaneBytes <= 0 {
		return 0
	}
	if p.opt.MaxWorkloads <= 0 {
		return p.opt.MaxPlaneBytes
	}
	b := p.opt.MaxPlaneBytes / int64(p.opt.MaxWorkloads)
	if b < 1 {
		b = 1
	}
	return b
}

// Get returns the profiled workload named name, admitting it via
// profile if absent. Concurrent calls for an absent name share one
// profiling run. A failed profiling run is not cached; the next call
// retries.
func (p *Pool) Get(name string, profile func() (*Profiled, error)) (*Profiled, error) {
	p.mu.Lock()
	e, ok := p.entries[name]
	if ok {
		p.hits++
		p.clock++
		e.lastUse = p.clock
		p.mu.Unlock()
		<-e.done
		return e.pw, e.err
	}
	p.misses++
	e = &poolEntry{done: make(chan struct{})}
	p.clock++
	e.lastUse = p.clock
	p.entries[name] = e
	// Eviction waits for completion (below): evicting a healthy
	// resident now would destroy profiling work before knowing whether
	// this admission even succeeds, and the transient in-flight
	// overflow is bounded by the number of concurrent cold requests.
	p.mu.Unlock()

	// The profile func runs arbitrary workload-build code; convert a
	// panic into a failed admission so the entry is always resolved —
	// an unclosed done channel would wedge every future Get for this
	// name (net/http recovers handler panics, so a long-running service
	// would otherwise keep the dead entry forever).
	pw, err := func() (pw *Profiled, err error) {
		defer func() {
			if r := recover(); r != nil {
				pw, err = nil, fmt.Errorf("harness: profiling %q panicked: %v", name, r)
			}
		}()
		return profile()
	}()
	if err == nil && pw == nil {
		err = fmt.Errorf("harness: pool profile func for %q returned no workload", name)
	}
	if err == nil {
		pw.SetAnnotBudget(p.perWorkloadBudget())
	}

	p.mu.Lock()
	e.pw, e.err = pw, err
	if err != nil && p.entries[name] == e {
		delete(p.entries, name)
	}
	close(e.done)
	// Re-enforce the bound now that this admission completed:
	// concurrent cold misses can push the pool past MaxWorkloads while
	// every entry is still in flight (nothing is evictable then), and
	// without this pass the excess would stay resident until the next
	// cold miss.
	p.evictLocked(e)
	p.mu.Unlock()
	return pw, err
}

// evictLocked enforces MaxWorkloads, evicting completed entries
// least-recently-used-first. The just-admitted entry keep is never
// evicted; in-flight admissions are skipped (they are bounded by the
// number of concurrent Get callers and complete quickly). Callers hold
// p.mu.
func (p *Pool) evictLocked(keep *poolEntry) {
	if p.opt.MaxWorkloads <= 0 {
		return
	}
	for len(p.entries) > p.opt.MaxWorkloads {
		var (
			victim string
			found  bool
			oldest int64
		)
		for name, e := range p.entries {
			if e == keep {
				continue
			}
			select {
			case <-e.done:
			default:
				continue // in flight
			}
			if !found || e.lastUse < oldest {
				victim, oldest, found = name, e.lastUse, true
			}
		}
		if !found {
			return
		}
		delete(p.entries, victim)
		p.evictions++
	}
}

// ProfileCount returns the number of profiling runs the pool has
// executed: every miss admits exactly one run (singleflight), so this
// is the miss counter — concurrent requests for one benchmark count a
// single profile.
func (p *Pool) ProfileCount() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.misses
}

// Resident reports whether a completed workload is currently resident.
func (p *Pool) Resident(name string) bool {
	p.mu.Lock()
	e, ok := p.entries[name]
	p.mu.Unlock()
	if !ok {
		return false
	}
	select {
	case <-e.done:
		return e.err == nil
	default:
		return false
	}
}

// Stats snapshots the pool's counters. The per-workload byte totals
// are summed after releasing p.mu: AnnotBytes takes each workload's
// annotation-store lock, and holding p.mu across those would serialize
// every concurrent Get behind a metrics scrape.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	s := PoolStats{
		Hits:      p.hits,
		Misses:    p.misses,
		Evictions: p.evictions,
		Profiles:  p.misses,
	}
	var resident []*Profiled
	for _, e := range p.entries {
		select {
		case <-e.done:
			if e.err == nil {
				s.Resident++
				resident = append(resident, e.pw)
			}
		default:
			s.InFlight++
		}
	}
	p.mu.Unlock()
	for _, pw := range resident {
		s.PlaneBytes += pw.AnnotBytes()
	}
	return s
}
