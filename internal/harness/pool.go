package harness

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/artifact"
	"repro/internal/program"
)

// PoolOptions bounds a workload Pool.
type PoolOptions struct {
	// MaxWorkloads is the maximum number of resident Profiled
	// workloads; admitting one more evicts the least recently used
	// completed entry. ≤ 0 means unbounded.
	MaxWorkloads int
	// MaxPlaneBytes is the annotation-plane/timing-memo byte budget.
	// With MaxWorkloads > 0 each admitted workload receives an equal
	// slice (see Profiled.SetAnnotBudget), so the resident total stays
	// under MaxPlaneBytes; with MaxWorkloads ≤ 0 the budget applies
	// per workload (an unbounded workload count has no fixed slice).
	// ≤ 0 means unbounded.
	MaxPlaneBytes int64
	// Store is the persistent artifact tier: admissions check it
	// before profiling and write freshly profiled workloads through to
	// it, and admitted workloads rehydrate their annotation planes
	// from it. nil disables the tier. A wrapper (resilience guard,
	// fault injector) interposes here; see ArtifactTier.
	Store ArtifactTier
	// MinDynInsts is the dynamic-instruction floor the pool's profile
	// funcs honor; it is part of the artifact identity, so differently
	// scaled traces never collide on disk. ≤ 0 means one run.
	MinDynInsts int64
}

// PoolStats is a snapshot of a Pool's counters. The json tags shape
// the service's /metrics output.
type PoolStats struct {
	Hits       int64 `json:"hits"`        // Get calls answered by a resident (or in-flight) entry
	Misses     int64 `json:"misses"`      // Get calls that had to admit a new entry
	Evictions  int64 `json:"evictions"`   // workloads evicted by the MaxWorkloads bound
	Profiles   int64 `json:"profiles"`    // profiling runs actually executed (disk hits skip one)
	DiskHits   int64 `json:"disk_hits"`   // admissions served by the artifact store
	DiskWrites int64 `json:"disk_writes"` // freshly profiled workloads written through to disk
	DiskErrors int64 `json:"disk_errors"` // unusable artifacts or failed writes (profiling proceeded)
	Resident   int   `json:"resident"`    // completed workloads currently resident
	InFlight   int   `json:"in_flight"`   // admissions currently profiling
	PlaneBytes int64 `json:"plane_bytes"` // annotation/timing bytes resident across all workloads
}

// Pool is a bounded, concurrent cache of Profiled workloads — the
// resource-management layer behind a long-running prediction service.
// Admission is singleflight (concurrent Gets for the same name profile
// it once, everyone waits on that run), residency is LRU-bounded by
// MaxWorkloads, and each resident workload's annotation store is given
// an equal slice of MaxPlaneBytes so total plane/timing memory stays
// under the budget no matter how many design points are served.
//
// With a Store configured the pool is write-through over a persistent
// disk tier: an admission first tries to rehydrate the workload from
// its content-addressed artifact (bit-identical to profiling fresh),
// and a fresh profiling run is saved back so every later process
// starts warm. An unusable artifact — truncated, corrupted, wrong
// format version — is counted and profiling proceeds as if it were
// absent: the store can only skip work, never serve bad data.
type Pool struct {
	mu      sync.Mutex
	opt     PoolOptions
	entries map[string]*poolEntry
	clock   int64

	hits       int64
	misses     int64
	evictions  int64
	profiles   int64
	diskHits   int64
	diskWrites int64
	diskErrors int64
}

type poolEntry struct {
	done    chan struct{}
	pw      *Profiled
	err     error
	lastUse int64

	// Cancellable singleflight: refs counts the requests currently
	// waiting on this admission (the creator holds one too), and cancel
	// aborts the admission's work context. The admission itself runs in
	// a detached goroutine under context.Background()-derived wctx — a
	// leader whose own request dies does not take its followers' work
	// with it; only when the last waiter leaves (refs drops to 0 before
	// done closes) is the in-flight profiling cancelled.
	refs   int
	cancel context.CancelFunc
}

// NewPool creates a Pool with the given bounds.
func NewPool(opt PoolOptions) *Pool {
	return &Pool{opt: opt, entries: make(map[string]*poolEntry)}
}

// perWorkloadBudget is the annotation-byte slice each resident
// workload receives so the resident total stays under MaxPlaneBytes.
func (p *Pool) perWorkloadBudget() int64 {
	if p.opt.MaxPlaneBytes <= 0 {
		return 0
	}
	if p.opt.MaxWorkloads <= 0 {
		return p.opt.MaxPlaneBytes
	}
	b := p.opt.MaxPlaneBytes / int64(p.opt.MaxWorkloads)
	if b < 1 {
		b = 1
	}
	return b
}

// admitResult is one admission's outcome plus the counter deltas it
// earned.
type admitResult struct {
	pw       *Profiled
	err      error
	fromDisk bool // served by the artifact store
	wrote    bool // freshly profiled workload written through
	badDisk  bool // unusable artifact or failed write (profiling proceeded)
}

// Get returns the profiled workload named name, admitting it via
// profile if absent. Concurrent calls for an absent name share one
// profiling run. A failed admission is not cached; the next call
// retries.
//
// Get never touches the disk tier: the artifact identity includes the
// program's content fingerprint, which only the builder-aware GetBuilt
// can compute. Production callers use GetBuilt; Get remains for
// callers (and tests) that hand the pool an opaque profile func.
func (p *Pool) Get(name string, profile func() (*Profiled, error)) (*Profiled, error) {
	return p.GetCtx(context.Background(), name, func(context.Context) (*Profiled, error) {
		return profile()
	})
}

// GetCtx is Get under a request context. The profile func receives the
// admission's work context — NOT ctx: the admission is shared by every
// concurrent request for name and outlives any one of them. It is
// cancelled only when the last interested request abandons the wait
// (and on such a cancelled admission, requests that arrived late
// simply re-admit). A caller whose ctx ends while waiting detaches
// immediately with ctx.Err(); the shared run continues for the others.
func (p *Pool) GetCtx(ctx context.Context, name string, profile func(ctx context.Context) (*Profiled, error)) (*Profiled, error) {
	return p.admit(ctx, name, func(wctx context.Context) (r admitResult) {
		r.pw, r.err = profile(wctx)
		return r
	})
}

// GetBuilt returns the profiled workload named name, admitting it
// through the write-through disk tier: build derives the program (and
// with it the content-addressed artifact identity), a valid stored
// artifact rehydrates the workload bit-identically without executing
// it, and a miss runs profile on the built program and installs the
// result. Singleflight and LRU behavior match Get; build and profile
// run at most once per admission.
func (p *Pool) GetBuilt(name string, build func() *program.Program, profile func(prog *program.Program) (*Profiled, error)) (*Profiled, error) {
	return p.GetBuiltCtx(context.Background(), name, build, func(_ context.Context, prog *program.Program) (*Profiled, error) {
		return profile(prog)
	})
}

// GetBuiltCtx is GetBuilt under a request context; the profile func
// receives the shared admission's work context (see GetCtx for the
// cancellation contract).
func (p *Pool) GetBuiltCtx(ctx context.Context, name string, build func() *program.Program, profile func(ctx context.Context, prog *program.Program) (*Profiled, error)) (*Profiled, error) {
	return p.admit(ctx, name, func(wctx context.Context) (r admitResult) {
		prog := build()
		id := artifact.WorkloadID{Name: name, MinDynInsts: p.opt.MinDynInsts, Code: prog.Fingerprint()}
		if p.opt.Store != nil {
			tr, prof, lerr := p.opt.Store.LoadWorkload(id)
			switch {
			case lerr == nil:
				r.pw, r.fromDisk = &Profiled{Name: name, Trace: tr, Prof: prof}, true
			case !errors.Is(lerr, artifact.ErrNotFound):
				// Unusable artifact: never served, profiling proceeds.
				r.badDisk = true
			}
		}
		if r.pw == nil {
			r.pw, r.err = profile(wctx, prog)
			if r.err == nil && r.pw != nil && p.opt.Store != nil {
				if key, serr := p.opt.Store.SaveWorkload(id, r.pw.Trace, r.pw.Prof); serr != nil {
					r.badDisk = true
				} else if key != "" {
					r.wrote = true
				}
			}
		}
		if r.err == nil && r.pw != nil && p.opt.Store != nil {
			r.pw.AttachArtifacts(p.opt.Store, p.opt.Store.WorkloadKey(id))
		}
		return r
	})
}

// isCancellation reports whether err is a context cancellation or
// deadline — the class of admission failures a still-live request
// retries rather than reports (they describe some other request's
// lifetime, not this one's).
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// admit joins (or creates) the singleflight admission for name and
// waits for it under ctx. The admission runs detached, so the entry is
// always resolved no matter which requests come and go; a request that
// observes a cancelled admission while its own ctx is still live
// re-admits — as the new creator it holds a reference, so its run can
// only be cancelled by its own departure, which guarantees progress.
func (p *Pool) admit(ctx context.Context, name string, admission func(context.Context) admitResult) (*Profiled, error) {
	first := true
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p.mu.Lock()
		e, ok := p.entries[name]
		if ok {
			if first {
				p.hits++
			}
			p.clock++
			e.lastUse = p.clock
			e.refs++
			p.mu.Unlock()
		} else {
			if first {
				p.misses++
			}
			wctx, cancel := context.WithCancel(context.Background())
			e = &poolEntry{done: make(chan struct{}), refs: 1, cancel: cancel}
			p.clock++
			e.lastUse = p.clock
			p.entries[name] = e
			// Eviction waits for completion (in runAdmission): evicting
			// a healthy resident now would destroy profiling work before
			// knowing whether this admission even succeeds, and the
			// transient in-flight overflow is bounded by the number of
			// concurrent cold requests.
			p.mu.Unlock()
			go p.runAdmission(wctx, name, e, admission)
		}
		first = false

		select {
		case <-e.done:
			p.mu.Lock()
			e.refs--
			p.mu.Unlock()
		case <-ctx.Done():
			// Abandon the wait: drop our reference and cancel the work
			// if nobody else is waiting for it. The admission goroutine
			// still resolves the entry (with its cancellation error),
			// so no future request can wedge on it.
			p.mu.Lock()
			e.refs--
			if e.refs == 0 {
				select {
				case <-e.done:
				default:
					e.cancel()
				}
			}
			p.mu.Unlock()
			return nil, ctx.Err()
		}
		if e.err != nil && isCancellation(e.err) && ctx.Err() == nil {
			// The shared run died of someone else's cancellation; this
			// request is still live, so admit again.
			continue
		}
		return e.pw, e.err
	}
}

// runAdmission executes one admission to completion and resolves its
// entry. It runs detached from any request: waiters come and go, and
// wctx — not any single request's context — governs the work.
func (p *Pool) runAdmission(wctx context.Context, name string, e *poolEntry, admission func(context.Context) admitResult) {
	defer e.cancel() // release the work context once resolved

	// The admission runs arbitrary workload-build code; convert a
	// panic into a failed admission so the entry is always resolved —
	// an unclosed done channel would wedge every future Get for this
	// name (net/http recovers handler panics, so a long-running
	// service would otherwise keep the dead entry forever).
	r := func() (r admitResult) {
		defer func() {
			if rec := recover(); rec != nil {
				r = admitResult{err: fmt.Errorf("harness: profiling %q panicked: %v", name, rec)}
			}
		}()
		return admission(wctx)
	}()
	if r.err == nil && r.pw == nil {
		r.err = fmt.Errorf("harness: pool profile func for %q returned no workload", name)
	}
	if r.err == nil {
		r.pw.SetAnnotBudget(p.perWorkloadBudget())
	}

	p.mu.Lock()
	switch {
	case r.fromDisk:
		p.diskHits++
	case isCancellation(r.err):
		// A cancelled run produced nothing; counting it as a profiling
		// run would break the "warm process profiles nothing" pins.
	default:
		p.profiles++
	}
	if r.wrote {
		p.diskWrites++
	}
	if r.badDisk {
		p.diskErrors++
	}
	e.pw, e.err = r.pw, r.err
	if r.err != nil && p.entries[name] == e {
		delete(p.entries, name)
	}
	close(e.done)
	// Re-enforce the bound now that this admission completed:
	// concurrent cold misses can push the pool past MaxWorkloads while
	// every entry is still in flight (nothing is evictable then), and
	// without this pass the excess would stay resident until the next
	// cold miss.
	p.evictLocked(e)
	p.mu.Unlock()
}

// evictLocked enforces MaxWorkloads, evicting completed entries
// least-recently-used-first. The just-admitted entry keep is never
// evicted; in-flight admissions are skipped (they are bounded by the
// number of concurrent Get callers and complete quickly). Callers hold
// p.mu.
func (p *Pool) evictLocked(keep *poolEntry) {
	if p.opt.MaxWorkloads <= 0 {
		return
	}
	for len(p.entries) > p.opt.MaxWorkloads {
		var (
			victim string
			found  bool
			oldest int64
		)
		for name, e := range p.entries {
			if e == keep {
				continue
			}
			select {
			case <-e.done:
			default:
				continue // in flight
			}
			if !found || e.lastUse < oldest {
				victim, oldest, found = name, e.lastUse, true
			}
		}
		if !found {
			return
		}
		delete(p.entries, victim)
		p.evictions++
	}
}

// ProfileCount returns the number of profiling runs the pool has
// actually executed. Without a disk tier every miss runs exactly one
// (singleflight); with one, admissions served from the artifact store
// do not count — a warm process answers every request with zero
// profiling, and tests pin that.
func (p *Pool) ProfileCount() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.profiles
}

// DiskHitCount returns the number of admissions served by the
// artifact store.
func (p *Pool) DiskHitCount() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.diskHits
}

// Resident reports whether a completed workload is currently resident.
func (p *Pool) Resident(name string) bool {
	p.mu.Lock()
	e, ok := p.entries[name]
	p.mu.Unlock()
	if !ok {
		return false
	}
	select {
	case <-e.done:
		return e.err == nil
	default:
		return false
	}
}

// Stats snapshots the pool's counters. The per-workload byte totals
// are summed after releasing p.mu: AnnotBytes takes each workload's
// annotation-store lock, and holding p.mu across those would serialize
// every concurrent Get behind a metrics scrape.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	s := PoolStats{
		Hits:       p.hits,
		Misses:     p.misses,
		Evictions:  p.evictions,
		Profiles:   p.profiles,
		DiskHits:   p.diskHits,
		DiskWrites: p.diskWrites,
		DiskErrors: p.diskErrors,
	}
	var resident []*Profiled
	for _, e := range p.entries {
		select {
		case <-e.done:
			if e.err == nil {
				s.Resident++
				resident = append(resident, e.pw)
			}
		default:
			s.InFlight++
		}
	}
	p.mu.Unlock()
	for _, pw := range resident {
		s.PlaneBytes += pw.AnnotBytes()
	}
	return s
}
