package harness

import (
	"context"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/uarch"
)

// StatsCache accumulates machine statistics for an incrementally
// discovered design-point set — the evaluation substrate of the
// heuristic search (dse.Search), whose generations arrive one batch at
// a time rather than as one known-up-front space. Each AddCtx collects
// only the components (distinct cache hierarchies, distinct branch
// predictors) not yet cached, in at most one trace traversal; a batch
// whose components are all cached costs no replay at all. Statistics
// are bit-identical to a one-shot CollectMultiStats over the union:
// the stack-distance engines and predictor collectors produce
// per-component results independent of which other components share a
// traversal.
//
// A StatsCache is not safe for concurrent use; the search drives it
// from one goroutine.
type StatsCache struct {
	pw      *Profiled
	mem     map[cache.HierarchyConfig]cache.Stats
	br      map[uarch.PredictorKind]branch.Stats
	replays int
}

// NewStatsCache returns an empty cache over pw's trace.
func (pw *Profiled) NewStatsCache() *StatsCache {
	return &StatsCache{
		pw:  pw,
		mem: make(map[cache.HierarchyConfig]cache.Stats),
		br:  make(map[uarch.PredictorKind]branch.Stats),
	}
}

// AddCtx ensures every configuration in cfgs has its statistics
// cached, collecting the missing components in at most one trace
// traversal (aborted at a chunk boundary once ctx ends, caching
// nothing).
func (c *StatsCache) AddCtx(ctx context.Context, cfgs []uarch.Config) error {
	var missing []uarch.Config
	for _, cfg := range cfgs {
		_, okH := c.mem[cfg.Hier]
		_, okP := c.br[cfg.Predictor]
		if !okH || !okP {
			missing = append(missing, cfg)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	ms, err := CollectMultiStatsCtx(ctx, c.pw.Trace, missing)
	if err != nil {
		return err
	}
	c.replays++
	for h, cs := range ms.cacheStats {
		if _, ok := c.mem[h]; !ok {
			c.mem[h] = cs
		}
	}
	for pk, bs := range ms.branchStats {
		if _, ok := c.br[pk]; !ok {
			c.br[pk] = bs
		}
	}
	return nil
}

// Inputs assembles the model inputs for one cached design point; a
// configuration never passed to AddCtx is an error.
func (c *StatsCache) Inputs(cfg uarch.Config) (core.Inputs, error) {
	ms := MultiStats{cacheStats: c.mem, branchStats: c.br}
	cs, bs, err := ms.Stats(cfg)
	if err != nil {
		return core.Inputs{}, err
	}
	return core.Inputs{Prof: c.pw.Prof, Mem: cs, Branch: bs}, nil
}

// Replays returns the number of trace traversals this cache has
// performed — the search's statistics-economy counter.
func (c *StatsCache) Replays() int { return c.replays }
