package harness

import (
	"fmt"
	"sync/atomic"
)

// ReplayMode selects the timing-replay kernel used by the detailed
// validation paths: the config-parallel batch kernel (one pass over
// each trace chunk evaluates every resident design point) or the
// scalar kernel (one full replay per design point). Both are
// bit-identical to pipeline.Simulate; the scalar kernel is kept so
// regressions can be bisected from the CLI (-replay=scalar).
type ReplayMode int32

const (
	// ReplayBatch sweeps all resident design points in one pass per
	// trace chunk (pipeline.SimulateAnnotatedBatch). The default.
	ReplayBatch ReplayMode = iota
	// ReplayScalar replays the trace once per design point
	// (pipeline.SimulateAnnotated) — the pre-batch kernel.
	ReplayScalar
)

func (m ReplayMode) String() string {
	switch m {
	case ReplayBatch:
		return "batch"
	case ReplayScalar:
		return "scalar"
	}
	return fmt.Sprintf("ReplayMode(%d)", int32(m))
}

// ParseReplayMode maps the CLI flag values "batch" and "scalar".
func ParseReplayMode(s string) (ReplayMode, error) {
	switch s {
	case "batch":
		return ReplayBatch, nil
	case "scalar":
		return ReplayScalar, nil
	}
	return ReplayBatch, fmt.Errorf("harness: unknown replay mode %q (want batch or scalar)", s)
}

var defaultReplay atomic.Int32 // ReplayBatch unless SetDefaultReplay

// SetDefaultReplay sets the process-wide replay mode consulted by
// paths without an explicit mode parameter (dse.ExploreValidated, the
// modeld service, the single-point CLI validation).
func SetDefaultReplay(m ReplayMode) { defaultReplay.Store(int32(m)) }

// DefaultReplay returns the process-wide replay mode.
func DefaultReplay() ReplayMode { return ReplayMode(defaultReplay.Load()) }
