package harness

import (
	"repro/internal/artifact"
	"repro/internal/cache"
	"repro/internal/profile"
	"repro/internal/trace"
)

// ArtifactTier is the persistent workload/plane tier the harness reads
// through: exactly the artifact.Store methods the pool and the
// annotation cache use. Decoupling them from the concrete store lets a
// resilience layer (retry + circuit breaker) or a fault-injection
// wrapper interpose without the harness knowing — the contract is the
// store's: loads return artifact.ErrNotFound for absent entries (the
// caller computes fresh), any other error marks an unusable artifact,
// and saves are best-effort write-through.
//
// *artifact.Store implements the interface, including as a typed nil
// (its methods are nil-receiver-safe and behave like an empty store),
// so wrappers can delegate unconditionally.
type ArtifactTier interface {
	WorkloadKey(id artifact.WorkloadID) string
	LoadWorkload(id artifact.WorkloadID) (*trace.Trace, *profile.Profile, error)
	SaveWorkload(id artifact.WorkloadID, tr *trace.Trace, prof *profile.Profile) (string, error)
	LoadMemPlane(workloadKey string, h cache.HierarchyConfig) (*trace.BytePlane, cache.Stats, error)
	SaveMemPlane(workloadKey string, h cache.HierarchyConfig, classes *trace.BytePlane, st cache.Stats) error
	LoadBranchPlane(workloadKey, predictor string) (*trace.BitPlane, error)
	SaveBranchPlane(workloadKey, predictor string, p *trace.BitPlane) error
}

// Interface checks: the concrete store is the canonical tier; the
// remote tier chains it with fleet peers.
var (
	_ ArtifactTier = (*artifact.Store)(nil)
	_ ArtifactTier = (*artifact.RemoteTier)(nil)
)
