package harness

import (
	"context"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

func batchTestConfigs() []uarch.Config {
	base := uarch.Default()
	return []uarch.Config{
		base,
		base, // repeated: one claim serves both points
		base.WithL2(1024, 16),
		base.WithWidth(2).WithPredictor(uarch.PredHybrid3_5KB),
	}
}

// TestSimulateDetailedBatchMatchesSimulate pins the batch entry point
// against the self-contained simulator: every design point out of one
// config-parallel pass must be bit-identical to pipeline.Simulate, and
// the timing entries it memoizes must be hits for SimulateDetailed
// (the two paths share one memo).
func TestSimulateDetailedBatchMatchesSimulate(t *testing.T) {
	spec, err := workloads.ByName("crc32")
	if err != nil {
		t.Fatal(err)
	}
	pw := MustProfileProgram(spec.Build())
	cfgs := batchTestConfigs()
	got, err := pw.SimulateDetailedBatch(cfgs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cfgs) {
		t.Fatalf("batch returned %d results for %d configs", len(got), len(cfgs))
	}
	for i, cfg := range cfgs {
		want, err := pipeline.Simulate(pw.Trace, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Errorf("cfg %d (%s): batch diverges:\n got  %+v\n want %+v", i, cfg, got[i], want)
		}
		single, err := pw.SimulateDetailed(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if single != got[i] {
			t.Errorf("cfg %d (%s): SimulateDetailed after batch differs — memo not shared:\n got  %+v\n want %+v", i, cfg, single, got[i])
		}
	}
}

// TestSimulateDetailedBatchCancelLeavesNoPartialMemo pins the
// claimant contract of the batch path: a cancelled batch reports
// ctx.Err() and resolves-and-removes every timing entry it claimed, so
// the memo never holds a partial or poisoned entry, and a later call
// with a live context recomputes everything bit-identically.
//
// Annotations are cached up front so the cancellation lands in the
// batch phase itself rather than in annotation; wherever the internal
// checkpoints observe it (partition, shard cut, or a chunk boundary
// inside the kernel), the visible outcome must be the same.
func TestSimulateDetailedBatchCancelLeavesNoPartialMemo(t *testing.T) {
	spec, err := workloads.ByName("sha")
	if err != nil {
		t.Fatal(err)
	}
	pw := MustProfileProgram(spec.Build())
	cfgs := batchTestConfigs()
	if err := pw.EnsureAnnotated(cfgs, 2); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pw.SimulateDetailedBatchCtx(ctx, cfgs, 2); err != context.Canceled {
		t.Fatalf("cancelled batch returned %v, want context.Canceled", err)
	}
	pw.annot.mu.Lock()
	left := len(pw.annot.timing)
	pw.annot.mu.Unlock()
	if left != 0 {
		t.Fatalf("cancelled batch left %d timing memo entries, want 0", left)
	}

	// Recovery: the same points under a live context compute cleanly
	// and match the reference simulator.
	got, err := pw.SimulateDetailedBatch(cfgs, 2)
	if err != nil {
		t.Fatalf("batch after cancellation: %v", err)
	}
	for i, cfg := range cfgs {
		want, err := pipeline.Simulate(pw.Trace, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Errorf("cfg %d (%s): post-cancel batch diverges:\n got  %+v\n want %+v", i, cfg, got[i], want)
		}
	}
	pw.annot.mu.Lock()
	stored := len(pw.annot.timing)
	pw.annot.mu.Unlock()
	if stored == 0 {
		t.Fatal("successful batch stored no timing memo entries")
	}
}
