// This file is the shared artifact tier of a modeld fleet: raw
// byte-level access to stored artifacts (the transport behind
// GET /v1/artifacts/{key}) and RemoteTier, an ArtifactTier that chains
// local disk → peer HTTP fetch → compute. A node admitting a workload
// it has never profiled first asks its ring peers for the finished
// artifact; a verified copy is installed into the local store
// (write-through) so the fetch happens at most once per key per node.
// Every failure degrades toward fresh computation, never toward bad
// data: a corrupt or mismatched peer payload is rejected by the same
// digest/identity checks the local store applies, and a peer that
// keeps failing is benched for a cooldown so a dead node costs one
// timeout, not one per request.
package artifact

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/profile"
	"repro/internal/trace"
)

// ValidKey reports whether key is a well-formed content key: exactly
// the lowercase-hex SHA-256 shape KeyOf produces. The HTTP handler and
// InstallRaw both gate on it, so a malicious key can never traverse
// out of the store directory.
func ValidKey(key string) bool {
	if len(key) != 2*sha256.Size {
		return false
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// ReadRaw returns the stored artifact file bytes under key, verbatim.
// This is the serving side of peer replication: the bytes already
// carry the format's magic, identity and digests, so the fetching node
// can verify them without trusting the peer. A missing key returns
// ErrNotFound; a malformed key is ErrInvalid.
func (s *Store) ReadRaw(key string) ([]byte, error) {
	if s == nil {
		return nil, ErrNotFound
	}
	if !ValidKey(key) {
		return nil, fmt.Errorf("%w: malformed content key %q", ErrInvalid, key)
	}
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("artifact: reading %s: %w", key, err)
	}
	return data, nil
}

// parseIdentityHeader extracts the kind and identity string from a
// complete artifact image's header without verifying payloads.
func parseIdentityHeader(body []byte) (Kind, string, error) {
	le := binary.LittleEndian
	if len(body) < 13 {
		return 0, "", fmt.Errorf("%w: %d bytes is shorter than the fixed header", ErrInvalid, len(body))
	}
	if !bytes.Equal(body[:4], magic[:]) {
		return 0, "", fmt.Errorf("%w: bad magic %q", ErrInvalid, body[:4])
	}
	if v := le.Uint32(body[4:]); v != FormatVersion {
		return 0, "", fmt.Errorf("%w: format version %d, this binary reads %d", ErrInvalid, v, FormatVersion)
	}
	idLen := int(le.Uint32(body[9:]))
	if idLen > 1<<16 || 13+idLen > len(body) {
		return 0, "", fmt.Errorf("%w: identity length %d overruns file", ErrInvalid, idLen)
	}
	return Kind(body[8]), string(body[13 : 13+idLen]), nil
}

// InstallRaw verifies data as a complete artifact whose identity
// hashes to key, then installs it atomically. The verification is
// exactly what makes peer replication safe against a lying or dying
// peer: the whole-file SHA-256 must match (rejects truncation and bit
// flips) and the embedded identity must hash to the requested key
// (rejects a valid artifact served under the wrong name). Section
// payloads are re-verified by their CRCs on every load, as always.
func (s *Store) InstallRaw(key string, data []byte) error {
	if s == nil {
		return nil
	}
	if !ValidKey(key) {
		return fmt.Errorf("%w: malformed content key %q", ErrInvalid, key)
	}
	if len(data) < 13+sha256.Size {
		return fmt.Errorf("%w: %d bytes is shorter than any artifact", ErrInvalid, len(data))
	}
	body, tail := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	if sum := sha256.Sum256(body); !bytes.Equal(sum[:], tail) {
		return fmt.Errorf("%w: SHA-256 digest mismatch (truncated or corrupted)", ErrInvalid)
	}
	_, identity, err := parseIdentityHeader(body)
	if err != nil {
		return err
	}
	if KeyOf(identity) != key {
		return fmt.Errorf("%w: identity %q does not hash to key %s", ErrInvalid, identity, key)
	}
	return s.write(key, data)
}

// RemoteOptions configures a RemoteTier.
type RemoteOptions struct {
	// Peers are the other fleet members' base addresses ("host:port"
	// or full "http://host:port" URLs), excluding this node. Empty
	// peers make the tier a transparent wrapper over the local store.
	Peers []string
	// Client performs peer fetches; nil means a client with
	// DefaultFetchTimeout.
	Client *http.Client
	// BenchAfter is the consecutive-failure count that benches a peer
	// (0 means 3; negative disables benching).
	BenchAfter int
	// BenchCooldown is how long a benched peer is skipped; ≤ 0 means
	// 15s.
	BenchCooldown time.Duration
}

// DefaultFetchTimeout bounds one peer artifact fetch when no client is
// supplied.
const DefaultFetchTimeout = 10 * time.Second

// maxFetchBytes caps one peer response body: far above any real
// artifact, far below a memory-exhaustion response.
const maxFetchBytes = 1 << 30

// RemoteStats is a snapshot of a RemoteTier's counters, shaped for the
// /metrics cluster section.
type RemoteStats struct {
	Fetches  int64 `json:"fetches"`        // load misses that consulted peers
	Hits     int64 `json:"hits"`           // artifacts installed from a peer
	Misses   int64 `json:"misses"`         // consultations no peer could serve
	Errors   int64 `json:"errors"`         // failed or corrupt peer responses
	Benched  int64 `json:"peers_benched"`  // times a peer entered cooldown
	Repaired int64 `json:"local_repaired"` // corrupt local artifacts replaced by a peer copy
}

// peerState tracks one peer's health for the bench/cooldown policy.
type peerState struct {
	consecutive int
	until       time.Time
}

// RemoteTier chains the local artifact store with the fleet's peers:
// loads try local disk first, then each healthy peer's
// /v1/artifacts/{key}, installing a verified copy locally before
// re-loading; saves are local-only (peers pull on demand, so write
// amplification is bounded by actual reuse). All errors collapse to
// the tier contract — a key nobody has is ErrNotFound, so callers
// compute fresh; an unusable local file that no peer can replace keeps
// its ErrInvalid. The tier is safe for concurrent use.
type RemoteTier struct {
	local      *Store
	peers      []string // normalized base URLs
	client     *http.Client
	benchAfter int
	cooldown   time.Duration

	mu    sync.Mutex
	state map[string]*peerState

	fetches  atomic.Int64
	hits     atomic.Int64
	misses   atomic.Int64
	errs     atomic.Int64
	benched  atomic.Int64
	repaired atomic.Int64
}

// NewRemoteTier wraps local with peer fetch. local must be non-nil: a
// node without a store has nowhere to install fetched artifacts.
func NewRemoteTier(local *Store, opt RemoteOptions) (*RemoteTier, error) {
	if local == nil {
		return nil, fmt.Errorf("artifact: remote tier needs a local store")
	}
	t := &RemoteTier{
		local:      local,
		client:     opt.Client,
		benchAfter: opt.BenchAfter,
		cooldown:   opt.BenchCooldown,
		state:      make(map[string]*peerState),
	}
	if t.client == nil {
		t.client = &http.Client{Timeout: DefaultFetchTimeout}
	}
	if t.benchAfter == 0 {
		t.benchAfter = 3
	}
	if t.cooldown <= 0 {
		t.cooldown = 15 * time.Second
	}
	for _, p := range opt.Peers {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if !strings.Contains(p, "://") {
			p = "http://" + p
		}
		t.peers = append(t.peers, strings.TrimRight(p, "/"))
	}
	return t, nil
}

// Stats snapshots the tier's counters.
func (t *RemoteTier) Stats() RemoteStats {
	return RemoteStats{
		Fetches:  t.fetches.Load(),
		Hits:     t.hits.Load(),
		Misses:   t.misses.Load(),
		Errors:   t.errs.Load(),
		Benched:  t.benched.Load(),
		Repaired: t.repaired.Load(),
	}
}

// benchedNow reports whether peer is inside a failure cooldown.
func (t *RemoteTier) benchedNow(peer string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.state[peer]
	return ok && time.Now().Before(st.until)
}

// markGood resets a peer's failure streak.
func (t *RemoteTier) markGood(peer string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if st, ok := t.state[peer]; ok {
		st.consecutive = 0
	}
}

// markFail records a failure; enough in a row bench the peer.
func (t *RemoteTier) markFail(peer string) {
	if t.benchAfter < 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.state[peer]
	if !ok {
		st = &peerState{}
		t.state[peer] = st
	}
	st.consecutive++
	if st.consecutive >= t.benchAfter {
		st.consecutive = 0
		st.until = time.Now().Add(t.cooldown)
		t.benched.Add(1)
	}
}

// fetchFrom tries one peer for key. installed reports a verified
// local install; a nil error without install is a clean peer miss
// (404). Any transport failure, unexpected status, or payload that
// fails verification is an error the bench policy counts.
func (t *RemoteTier) fetchFrom(peer, key string) (installed bool, err error) {
	resp, err := t.client.Get(peer + "/v1/artifacts/" + key)
	if err != nil {
		return false, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return false, nil
	default:
		return false, fmt.Errorf("artifact: peer %s answered %s for %s", peer, resp.Status, key)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxFetchBytes))
	if err != nil {
		return false, err
	}
	if err := t.local.InstallRaw(key, data); err != nil {
		return false, fmt.Errorf("artifact: peer %s served unusable bytes for %s: %w", peer, key, err)
	}
	return true, nil
}

// fetch consults every healthy peer for key, installing the first
// verified copy. It returns whether a copy was installed.
func (t *RemoteTier) fetch(key string) bool {
	if len(t.peers) == 0 {
		return false
	}
	t.fetches.Add(1)
	for _, peer := range t.peers {
		if t.benchedNow(peer) {
			continue
		}
		installed, err := t.fetchFrom(peer, key)
		if err != nil {
			t.errs.Add(1)
			t.markFail(peer)
			continue
		}
		t.markGood(peer)
		if installed {
			t.hits.Add(1)
			return true
		}
	}
	t.misses.Add(1)
	return false
}

// fetchable reports local-load outcomes a peer copy could improve: a
// plain miss, or a local file that failed verification (the install
// atomically replaces it — fetch doubles as corruption repair).
func fetchable(err error) bool {
	return errors.Is(err, ErrNotFound) || errors.Is(err, ErrInvalid)
}

// loadVia runs the local load, consults peers on a fetchable failure,
// and re-runs the local load after an install. The original local
// error stands when no peer delivers.
func (t *RemoteTier) loadVia(key string, load func() error) error {
	err := load()
	if err == nil || !fetchable(err) {
		return err
	}
	if !t.fetch(key) {
		return err
	}
	if errors.Is(err, ErrInvalid) {
		t.repaired.Add(1)
	}
	return load()
}

// WorkloadKey is pure computation on the local store.
func (t *RemoteTier) WorkloadKey(id WorkloadID) string { return t.local.WorkloadKey(id) }

func (t *RemoteTier) LoadWorkload(id WorkloadID) (tr *trace.Trace, prof *profile.Profile, err error) {
	lerr := t.loadVia(t.local.WorkloadKey(id), func() error {
		tr, prof, err = t.local.LoadWorkload(id)
		return err
	})
	return tr, prof, lerr
}

func (t *RemoteTier) SaveWorkload(id WorkloadID, tr *trace.Trace, prof *profile.Profile) (string, error) {
	return t.local.SaveWorkload(id, tr, prof)
}

func (t *RemoteTier) LoadMemPlane(workloadKey string, h cache.HierarchyConfig) (p *trace.BytePlane, st cache.Stats, err error) {
	lerr := t.loadVia(KeyOf(memPlaneIdentity(workloadKey, h)), func() error {
		p, st, err = t.local.LoadMemPlane(workloadKey, h)
		return err
	})
	return p, st, lerr
}

func (t *RemoteTier) SaveMemPlane(workloadKey string, h cache.HierarchyConfig, classes *trace.BytePlane, st cache.Stats) error {
	return t.local.SaveMemPlane(workloadKey, h, classes, st)
}

func (t *RemoteTier) LoadBranchPlane(workloadKey, predictor string) (p *trace.BitPlane, err error) {
	lerr := t.loadVia(KeyOf(branchPlaneIdentity(workloadKey, predictor)), func() error {
		p, err = t.local.LoadBranchPlane(workloadKey, predictor)
		return err
	})
	return p, lerr
}

func (t *RemoteTier) SaveBranchPlane(workloadKey, predictor string, p *trace.BitPlane) error {
	return t.local.SaveBranchPlane(workloadKey, predictor, p)
}
