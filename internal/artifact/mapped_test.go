package artifact_test

import (
	"errors"
	"runtime"
	"testing"

	"repro/internal/artifact"
	"repro/internal/cache"
	"repro/internal/trace"
	"repro/internal/uarch"
)

// mmapPlatform reports whether this build serves loads through the
// mapped path (the !unix fallback decodes everywhere).
func mmapPlatform() bool {
	switch runtime.GOOS {
	case "linux", "darwin", "freebsd", "netbsd", "openbsd", "dragonfly":
		return true
	}
	return false
}

// TestLoadWorkloadUsesMappedPath pins that a healthy artifact is
// served zero-copy: the load increments the mapped counter and the
// returned trace aliases a file mapping, while remaining bit-identical
// to what was saved.
func TestLoadWorkloadUsesMappedPath(t *testing.T) {
	if !mmapPlatform() {
		t.Skip("mmap unsupported on this platform")
	}
	pw := profiledSha(t)
	s := openStore(t)
	id := artifact.WorkloadID{Name: "sha"}
	if _, err := s.SaveWorkload(id, pw.Trace, pw.Prof); err != nil {
		t.Fatal(err)
	}
	before := artifact.MappedLoadCount()
	tr, prof, err := s.LoadWorkload(id)
	if err != nil {
		t.Fatal(err)
	}
	if artifact.MappedLoadCount() != before+1 {
		t.Fatal("LoadWorkload did not take the mapped path on a healthy artifact")
	}
	if !tr.Mapped() {
		t.Fatal("loaded trace does not report a backing mapping")
	}
	if tr.Len() != pw.Trace.Len() || *prof != *pw.Prof {
		t.Fatal("mapped load differs from the saved workload")
	}
	for i := int64(0); i < tr.Len(); i += 509 {
		if tr.At(i) != pw.Trace.At(i) {
			t.Fatalf("instruction %d differs on the mapped path", i)
		}
	}
}

// TestLoadPlanesUseMappedPath pins the plane loads: the mem plane is
// aliased from the mapping, the branch plane decodes but still skips
// the whole-file digest, and both round-trip exactly.
func TestLoadPlanesUseMappedPath(t *testing.T) {
	if !mmapPlatform() {
		t.Skip("mmap unsupported on this platform")
	}
	s := openStore(t)
	hier := uarch.Default().Hier
	bb := trace.NewBytePlaneBuilder()
	for i := 0; i < trace.ChunkLen+333; i++ {
		bb.Append(uint8(i % 11))
	}
	st := cache.Stats{IL1Accesses: 7, DL1Misses: 3}
	if err := s.SaveMemPlane("wkey", hier, bb.Plane(), st); err != nil {
		t.Fatal(err)
	}
	before := artifact.MappedLoadCount()
	plane, got, err := s.LoadMemPlane("wkey", hier)
	if err != nil {
		t.Fatal(err)
	}
	if artifact.MappedLoadCount() != before+1 {
		t.Fatal("LoadMemPlane did not take the mapped path")
	}
	if !plane.Mapped() || !plane.Equal(bb.Plane()) || got != st {
		t.Fatal("mapped mem plane differs from the saved one")
	}

	pb := trace.NewBitPlaneBuilder()
	for i := 0; i < trace.ChunkLen+17; i++ {
		pb.Append(i%3 == 0)
	}
	if err := s.SaveBranchPlane("wkey", "gshare", pb.Plane()); err != nil {
		t.Fatal(err)
	}
	before = artifact.MappedLoadCount()
	bp, err := s.LoadBranchPlane("wkey", "gshare")
	if err != nil {
		t.Fatal(err)
	}
	if artifact.MappedLoadCount() != before+1 {
		t.Fatal("LoadBranchPlane did not take the mapped path")
	}
	if !bp.Equal(pb.Plane()) {
		t.Fatal("branch plane differs after mapped load")
	}
}

// TestMappedLoadRejectsCorruption drives the PR 5 corruption shapes
// through the mapped reader: every one must surface as ErrInvalid
// (after falling back to the decode path), never as a served artifact
// and never through the mapped counter — so callers fall back to
// fresh profiling exactly as they did on the decode path.
func TestMappedLoadRejectsCorruption(t *testing.T) {
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated", func(d []byte) []byte { return d[:len(d)/3] }},
		// Resigned so the whole-file digest passes: only the trace
		// codec's per-chunk CRC — which both paths verify — catches it.
		{"chunk-crc", func(d []byte) []byte {
			d[len(d)/2] ^= 0xFF
			return resign(d)
		}},
		// A flip in the profile payload (a scalar section with no
		// internal checksums), resigned: the per-section CRC is the
		// only guard on the mapped path.
		{"profile-crc", func(d []byte) []byte {
			d[len(d)-40] ^= 0x01
			return resign(d)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, id := corruptSavedWorkload(t, tc.mutate)
			before := artifact.MappedLoadCount()
			if _, _, err := s.LoadWorkload(id); !errors.Is(err, artifact.ErrInvalid) {
				t.Fatalf("corrupt artifact: err = %v, want ErrInvalid", err)
			}
			if artifact.MappedLoadCount() != before {
				t.Fatal("corrupt artifact was served through the mapped path")
			}
		})
	}
}

// TestMappedLoadSurvivesRewrite pins the concurrent-rewrite contract:
// re-saving a key replaces the directory entry atomically, and a
// trace mapped from the old file keeps reading the old inode's pages
// unchanged while new loads see the new file.
func TestMappedLoadSurvivesRewrite(t *testing.T) {
	if !mmapPlatform() {
		t.Skip("mmap unsupported on this platform")
	}
	pw := profiledSha(t)
	s := openStore(t)
	id := artifact.WorkloadID{Name: "sha"}
	if _, err := s.SaveWorkload(id, pw.Trace, pw.Prof); err != nil {
		t.Fatal(err)
	}
	tr, _, err := s.LoadWorkload(id)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.At(tr.Len() / 2)
	if _, err := s.SaveWorkload(id, pw.Trace, pw.Prof); err != nil {
		t.Fatal(err)
	}
	if got := tr.At(tr.Len() / 2); got != want {
		t.Fatalf("mapped trace changed under a concurrent rewrite: %+v -> %+v", want, got)
	}
	tr2, _, err := s.LoadWorkload(id)
	if err != nil {
		t.Fatalf("load after rewrite: %v", err)
	}
	if tr2.Len() != tr.Len() {
		t.Fatal("reloaded trace differs after rewrite")
	}
}
