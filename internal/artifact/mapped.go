package artifact

import (
	"bytes"
	"crypto/sha256"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/profile"
	"repro/internal/trace"
)

// Memory-mapped artifact rehydration: the store's loads try a
// zero-copy read path first. The artifact file is mapped read-only,
// framing is parsed in place, and the chunked column payloads are
// handed to trace.MapTrace / trace.MapBytePlane, which alias the hot
// single-byte columns straight out of the mapping instead of
// decode-and-copy. The whole-file SHA-256 pass is skipped; integrity
// comes from the same checks at finer grain:
//
//   - framing is bounds-checked against the mapped length, and each
//     codec requires its stream to be exactly the size its header
//     implies — truncation is caught at open, not by a page fault;
//   - chunked sections (trace, classes, mispredicts) verify their
//     per-chunk CRC-32C inside the codec;
//   - scalar sections (profile, stats) verify the per-section CRC-32C
//     that format version 2 records;
//   - the identity string must match, so a mapped file can never be
//     served for the wrong key.
//
// Any mapped-path failure — including platforms without mmap — falls
// back to the portable decode path, which re-reads the file under the
// full whole-file digest and produces the canonical ErrNotFound /
// ErrInvalid. Corrupt artifacts therefore surface to callers exactly
// as they did before this path existed, and callers' fall-back-to-
// fresh-computation behavior is unchanged.

// mappedLoads counts loads served by the mapped path since process
// start.
var mappedLoads atomic.Int64

// MappedLoadCount reports how many artifact loads have been served
// zero-copy from a file mapping (tests and metrics pin warm paths on
// it).
func MappedLoadCount() int64 { return mappedLoads.Load() }

// readMapped maps the artifact stored under identity and parses its
// framing in place. On success the returned sections alias m's pages;
// the caller must either hand m to a mapped codec (which retains it)
// or Close it after copying what it needs.
func (s *Store) readMapped(kind Kind, identity string) (map[string]secView, *trace.Mapping, error) {
	if s == nil {
		return nil, nil, ErrNotFound
	}
	m, err := trace.OpenMapped(s.path(KeyOf(identity)))
	if err != nil {
		return nil, nil, err
	}
	data := m.Bytes()
	if len(data) < sha256.Size {
		_ = m.Close()
		return nil, nil, ErrInvalid
	}
	secs, err := parseFrame(data[:len(data)-sha256.Size], kind, identity)
	if err != nil {
		_ = m.Close()
		return nil, nil, err
	}
	return secs, m, nil
}

// scalarSection fetches a section that has no codec-internal
// checksums and verifies its section CRC.
func scalarSection(secs map[string]secView, name string) ([]byte, error) {
	sv, ok := secs[name]
	if !ok {
		return nil, ErrInvalid
	}
	if err := sv.verify(name); err != nil {
		return nil, err
	}
	return sv.payload, nil
}

// loadWorkloadMapped is LoadWorkload's zero-copy path. The returned
// trace aliases the mapping; the profile is a copy.
func (s *Store) loadWorkloadMapped(id WorkloadID) (*trace.Trace, *profile.Profile, error) {
	secs, m, err := s.readMapped(KindWorkload, id.Identity())
	if err != nil {
		return nil, nil, err
	}
	tb, ok := secs["trace"]
	if !ok {
		_ = m.Close()
		return nil, nil, ErrInvalid
	}
	pb, err := scalarSection(secs, "profile")
	if err != nil {
		_ = m.Close()
		return nil, nil, err
	}
	prof, err := decodeProfile(pb)
	if err != nil {
		_ = m.Close()
		return nil, nil, err
	}
	tr, err := trace.MapTrace(tb.payload, m)
	if err != nil {
		_ = m.Close()
		return nil, nil, err
	}
	mappedLoads.Add(1)
	return tr, prof, nil
}

// loadMemPlaneMapped is LoadMemPlane's zero-copy path. The returned
// plane aliases the mapping; the statistics are a copy.
func (s *Store) loadMemPlaneMapped(workloadKey string, h cache.HierarchyConfig) (*trace.BytePlane, cache.Stats, error) {
	secs, m, err := s.readMapped(KindMemPlane, memPlaneIdentity(workloadKey, h))
	if err != nil {
		return nil, cache.Stats{}, err
	}
	cb, ok := secs["classes"]
	if !ok {
		_ = m.Close()
		return nil, cache.Stats{}, ErrInvalid
	}
	sb, err := scalarSection(secs, "stats")
	if err != nil {
		_ = m.Close()
		return nil, cache.Stats{}, err
	}
	st, err := decodeCacheStats(sb)
	if err != nil {
		_ = m.Close()
		return nil, cache.Stats{}, err
	}
	plane, err := trace.MapBytePlane(cb.payload, m)
	if err != nil {
		_ = m.Close()
		return nil, cache.Stats{}, err
	}
	mappedLoads.Add(1)
	return plane, st, nil
}

// loadBranchPlaneMapped is LoadBranchPlane's mapped path. Bit-plane
// chunks cannot alias the stream (their word alignment alternates
// with the 2052-byte chunk stride), so the payload is decoded through
// the regular CRC-checking codec — the win here is skipping the
// whole-file digest — and the mapping is released immediately.
func (s *Store) loadBranchPlaneMapped(workloadKey, predictor string) (*trace.BitPlane, error) {
	secs, m, err := s.readMapped(KindBranchPlane, branchPlaneIdentity(workloadKey, predictor))
	if err != nil {
		return nil, err
	}
	defer m.Close()
	mb, ok := secs["mispredicts"]
	if !ok {
		return nil, ErrInvalid
	}
	p, err := trace.ReadBitPlaneFrom(bytes.NewReader(mb.payload))
	if err != nil {
		return nil, err
	}
	mappedLoads.Add(1)
	return p, nil
}
