package artifact_test

import (
	"crypto/sha256"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"repro/internal/artifact"
)

func TestValidKey(t *testing.T) {
	good := strings.Repeat("ab", sha256.Size)
	for _, tc := range []struct {
		key string
		ok  bool
	}{
		{good, true},
		{good[:10], false},
		{good + "ab", false},
		{strings.ToUpper(good), false},
		{strings.Repeat("zz", sha256.Size), false},
		{"../" + good[3:], false},
		{"", false},
	} {
		if got := artifact.ValidKey(tc.key); got != tc.ok {
			t.Errorf("ValidKey(%q) = %v, want %v", tc.key, got, tc.ok)
		}
	}
}

func TestReadRawInstallRawRoundTrip(t *testing.T) {
	pw := profiledSha(t)
	src := openStore(t)
	id := artifact.WorkloadID{Name: "sha"}
	key, err := src.SaveWorkload(id, pw.Trace, pw.Prof)
	if err != nil {
		t.Fatal(err)
	}
	data, err := src.ReadRaw(key)
	if err != nil {
		t.Fatal(err)
	}
	dst := openStore(t)
	if err := dst.InstallRaw(key, data); err != nil {
		t.Fatalf("InstallRaw of a pristine artifact: %v", err)
	}
	if _, _, err := dst.LoadWorkload(id); err != nil {
		t.Fatalf("load after raw install: %v", err)
	}
	if _, err := src.ReadRaw(strings.Repeat("00", sha256.Size)); !errors.Is(err, artifact.ErrNotFound) {
		t.Fatalf("ReadRaw of absent key: err = %v, want ErrNotFound", err)
	}
	if _, err := src.ReadRaw("../escape"); !errors.Is(err, artifact.ErrInvalid) {
		t.Fatalf("ReadRaw of malformed key: err = %v, want ErrInvalid", err)
	}
}

// TestInstallRawRejectsCorruption replays the store's corruption
// shapes against the replication input path: a lying peer must not be
// able to plant a truncated, bit-flipped, or mislabeled artifact.
func TestInstallRawRejectsCorruption(t *testing.T) {
	pw := profiledSha(t)
	src := openStore(t)
	key, err := src.SaveWorkload(artifact.WorkloadID{Name: "sha"}, pw.Trace, pw.Prof)
	if err != nil {
		t.Fatal(err)
	}
	data, err := src.ReadRaw(key)
	if err != nil {
		t.Fatal(err)
	}
	otherKey := artifact.KeyOf("some-other-identity")
	for _, tc := range []struct {
		name string
		key  string
		data []byte
	}{
		{"truncated", key, data[:len(data)/3]},
		{"empty", key, nil},
		{"bit-flip", key, func() []byte {
			d := append([]byte(nil), data...)
			d[len(d)/2] ^= 0xFF
			return d
		}()},
		// Re-signed bit flip passes the whole-file digest; the
		// identity-to-key check is not enough to reject it here, but the
		// key mismatch shape below is the one replication must catch:
		// a valid artifact served under the wrong name.
		{"wrong-key", otherKey, data},
		{"malformed-key", "nothex", data},
	} {
		dst := openStore(t)
		if err := dst.InstallRaw(tc.key, tc.data); !errors.Is(err, artifact.ErrInvalid) {
			t.Errorf("%s: InstallRaw err = %v, want ErrInvalid", tc.name, err)
		}
	}
}

// servePeer exposes a source store over the fleet's artifact route.
func servePeer(t *testing.T, src *artifact.Store) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/artifacts/{key}", func(w http.ResponseWriter, r *http.Request) {
		data, err := src.ReadRaw(r.PathValue("key"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		_, _ = w.Write(data)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func newRemote(t *testing.T, local *artifact.Store, opt artifact.RemoteOptions) *artifact.RemoteTier {
	t.Helper()
	rt, err := artifact.NewRemoteTier(local, opt)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// TestRemoteTierFetchesFromPeer: a node that never profiled sha loads
// it through the tier, which pulls the artifact from a peer, installs
// it locally (write-through: the second load never touches the peer),
// and serves bytes identical to the peer's copy.
func TestRemoteTierFetchesFromPeer(t *testing.T) {
	pw := profiledSha(t)
	src := openStore(t)
	id := artifact.WorkloadID{Name: "sha"}
	key, err := src.SaveWorkload(id, pw.Trace, pw.Prof)
	if err != nil {
		t.Fatal(err)
	}
	ts := servePeer(t, src)

	local := openStore(t)
	rt := newRemote(t, local, artifact.RemoteOptions{Peers: []string{ts.URL}})
	tr, prof, err := rt.LoadWorkload(id)
	if err != nil {
		t.Fatalf("load via remote tier: %v", err)
	}
	if tr.Len() != pw.Trace.Len() || *prof != *pw.Prof {
		t.Fatal("peer-fetched workload differs from the original")
	}
	want, err := src.ReadRaw(key)
	if err != nil {
		t.Fatal(err)
	}
	got, err := local.ReadRaw(key)
	if err != nil {
		t.Fatalf("artifact not installed locally after peer fetch: %v", err)
	}
	if string(got) != string(want) {
		t.Fatal("installed artifact bytes differ from the peer's copy")
	}
	if st := rt.Stats(); st.Fetches != 1 || st.Hits != 1 {
		t.Fatalf("stats after fetch = %+v, want one fetch, one hit", st)
	}
	// Second load is a pure local hit.
	if _, _, err := rt.LoadWorkload(id); err != nil {
		t.Fatal(err)
	}
	if st := rt.Stats(); st.Fetches != 1 {
		t.Fatalf("second load consulted peers again: %+v", st)
	}
}

// TestRemoteTierPeerMissFallsThrough: nobody has the artifact — the
// caller sees ErrNotFound and computes fresh, exactly the single-node
// contract.
func TestRemoteTierPeerMissFallsThrough(t *testing.T) {
	ts := servePeer(t, openStore(t)) // empty peer
	rt := newRemote(t, openStore(t), artifact.RemoteOptions{Peers: []string{ts.URL}})
	if _, _, err := rt.LoadWorkload(artifact.WorkloadID{Name: "sha"}); !errors.Is(err, artifact.ErrNotFound) {
		t.Fatalf("miss everywhere: err = %v, want ErrNotFound", err)
	}
	if st := rt.Stats(); st.Misses != 1 || st.Errors != 0 {
		t.Fatalf("stats = %+v, want one clean miss", st)
	}
}

// TestRemoteTierRejectsCorruptPeerPayloads: a peer serving PR 5/7
// corruption shapes (truncation, bit flip, re-signed wrong content)
// must not poison the local store; the load degrades to ErrNotFound
// (compute fresh) and the corruption is counted as a peer error.
func TestRemoteTierRejectsCorruptPeerPayloads(t *testing.T) {
	pw := profiledSha(t)
	src := openStore(t)
	id := artifact.WorkloadID{Name: "sha"}
	key, err := src.SaveWorkload(id, pw.Trace, pw.Prof)
	if err != nil {
		t.Fatal(err)
	}
	pristine, err := src.ReadRaw(key)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated", func(d []byte) []byte { return d[:len(d)/3] }},
		{"bit-flip", func(d []byte) []byte {
			d = append([]byte(nil), d...)
			d[len(d)/2] ^= 0xFF
			return d
		}},
		{"resigned-garbage", func(d []byte) []byte {
			d = append([]byte(nil), d...)
			d[13] ^= 0xFF // inside the identity: re-signed, but KeyOf no longer matches
			return resign(d)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mux := http.NewServeMux()
			mux.HandleFunc("GET /v1/artifacts/{key}", func(w http.ResponseWriter, r *http.Request) {
				_, _ = w.Write(tc.mutate(pristine))
			})
			ts := httptest.NewServer(mux)
			defer ts.Close()
			local := openStore(t)
			rt := newRemote(t, local, artifact.RemoteOptions{Peers: []string{ts.URL}})
			if _, _, err := rt.LoadWorkload(id); !errors.Is(err, artifact.ErrNotFound) {
				t.Fatalf("corrupt peer payload: err = %v, want ErrNotFound (compute fresh)", err)
			}
			if _, err := local.ReadRaw(key); !errors.Is(err, artifact.ErrNotFound) {
				t.Fatal("corrupt peer payload reached the local store")
			}
			if st := rt.Stats(); st.Errors != 1 || st.Hits != 0 {
				t.Fatalf("stats = %+v, want one error, no hits", st)
			}
		})
	}
}

// TestRemoteTierDeadPeerDegradesAndBenches: a dead peer costs errors
// only until the bench threshold, then loads go straight to local
// (compute-only degradation — no request ever fails because a peer
// died).
func TestRemoteTierDeadPeerDegradesAndBenches(t *testing.T) {
	ts := servePeer(t, openStore(t))
	ts.Close() // dead before the first fetch
	rt := newRemote(t, openStore(t), artifact.RemoteOptions{
		Peers:      []string{ts.URL},
		BenchAfter: 2,
	})
	id := artifact.WorkloadID{Name: "sha"}
	for i := 0; i < 4; i++ {
		if _, _, err := rt.LoadWorkload(id); !errors.Is(err, artifact.ErrNotFound) {
			t.Fatalf("load %d with dead peer: err = %v, want ErrNotFound", i, err)
		}
	}
	st := rt.Stats()
	if st.Benched < 1 {
		t.Fatalf("dead peer never benched: %+v", st)
	}
	// Benching caps the damage: the 2 failures tripped the bench, and
	// the cooldown (default 15s) covers the remaining loads.
	if st.Errors != 2 {
		t.Fatalf("dead peer contacted %d times, want exactly BenchAfter=2: %+v", st.Errors, st)
	}
}

// TestRemoteTierRepairsLocalCorruption: a corrupt local artifact plus
// a healthy peer copy resolves to the peer's bytes — peer fetch
// doubles as corruption repair.
func TestRemoteTierRepairsLocalCorruption(t *testing.T) {
	pw := profiledSha(t)
	src := openStore(t)
	id := artifact.WorkloadID{Name: "sha"}
	key, err := src.SaveWorkload(id, pw.Trace, pw.Prof)
	if err != nil {
		t.Fatal(err)
	}
	ts := servePeer(t, src)

	local := openStore(t)
	if _, err := local.SaveWorkload(id, pw.Trace, pw.Prof); err != nil {
		t.Fatal(err)
	}
	path := storedPath(local, key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	rt := newRemote(t, local, artifact.RemoteOptions{Peers: []string{ts.URL}})
	if _, _, err := rt.LoadWorkload(id); err != nil {
		t.Fatalf("load with corrupt local + healthy peer: %v", err)
	}
	if st := rt.Stats(); st.Repaired != 1 {
		t.Fatalf("stats = %+v, want one repair", st)
	}
}

// TestRemoteTierNoPeersIsTransparent: an empty peer list behaves
// exactly like the bare store.
func TestRemoteTierNoPeersIsTransparent(t *testing.T) {
	rt := newRemote(t, openStore(t), artifact.RemoteOptions{})
	if _, _, err := rt.LoadWorkload(artifact.WorkloadID{Name: "sha"}); !errors.Is(err, artifact.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if st := rt.Stats(); st.Fetches != 0 {
		t.Fatalf("peerless tier consulted the network: %+v", st)
	}
}
