package artifact

import (
	"encoding/binary"
	"fmt"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/profile"
)

// Fixed-order little-endian codecs for the scalar statistics riding
// along with a trace or plane. Array lengths are written explicitly
// and validated against this binary's constants on read: the identity
// key already prevents cross-ISA loads, this is defense in depth.

func appendI64(dst []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(dst, uint64(v))
}

func appendI64Slice(dst []byte, vs []int64) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(vs)))
	for _, v := range vs {
		dst = appendI64(dst, v)
	}
	return dst
}

// i64Reader consumes fixed-order values from a payload, latching the
// first framing error so call sites stay linear.
type i64Reader struct {
	data []byte
	off  int
	err  error
}

func (r *i64Reader) i64() int64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.data) {
		r.err = fmt.Errorf("%w: truncated scalar payload", ErrInvalid)
		return 0
	}
	v := int64(binary.LittleEndian.Uint64(r.data[r.off:]))
	r.off += 8
	return v
}

func (r *i64Reader) i64Slice(want int, what string) []int64 {
	if r.err != nil {
		return nil
	}
	if r.off+4 > len(r.data) {
		r.err = fmt.Errorf("%w: truncated %s length", ErrInvalid, what)
		return nil
	}
	n := int(binary.LittleEndian.Uint32(r.data[r.off:]))
	r.off += 4
	if n != want {
		r.err = fmt.Errorf("%w: %s has %d entries, this binary expects %d", ErrInvalid, what, n, want)
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = r.i64()
	}
	return out
}

func (r *i64Reader) str(what string) string {
	if r.err != nil {
		return ""
	}
	if r.off+4 > len(r.data) {
		r.err = fmt.Errorf("%w: truncated %s length", ErrInvalid, what)
		return ""
	}
	n := int(binary.LittleEndian.Uint32(r.data[r.off:]))
	r.off += 4
	if n < 0 || r.off+n > len(r.data) {
		r.err = fmt.Errorf("%w: %s overruns payload", ErrInvalid, what)
		return ""
	}
	s := string(r.data[r.off : r.off+n])
	r.off += n
	return s
}

func (r *i64Reader) finish(what string) error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.data) {
		return fmt.Errorf("%w: %d trailing bytes in %s payload", ErrInvalid, len(r.data)-r.off, what)
	}
	return nil
}

// encodeProfile serializes a machine-independent profile.
func encodeProfile(p *profile.Profile) []byte {
	var dst []byte
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(p.Name)))
	dst = append(dst, p.Name...)
	dst = appendI64(dst, p.N)
	dst = appendI64Slice(dst, p.ByClass[:])
	dst = appendI64Slice(dst, p.ByOp[:])
	for _, v := range []int64{p.NMul, p.NDiv, p.NLoad, p.NStore, p.NBranch, p.NJump, p.NTaken} {
		dst = appendI64(dst, v)
	}
	dst = appendI64Slice(dst, p.DepsUnit.Count[:])
	dst = appendI64Slice(dst, p.DepsLL.Count[:])
	dst = appendI64Slice(dst, p.DepsLd.Count[:])
	return dst
}

// decodeProfile rebuilds a profile, validating every array length
// against this binary's ISA and dependency-distance constants.
func decodeProfile(data []byte) (*profile.Profile, error) {
	r := &i64Reader{data: data}
	p := &profile.Profile{}
	p.Name = r.str("profile name")
	p.N = r.i64()
	copy(p.ByClass[:], r.i64Slice(isa.NumClasses, "per-class counts"))
	copy(p.ByOp[:], r.i64Slice(isa.NumOps, "per-opcode counts"))
	p.NMul = r.i64()
	p.NDiv = r.i64()
	p.NLoad = r.i64()
	p.NStore = r.i64()
	p.NBranch = r.i64()
	p.NJump = r.i64()
	p.NTaken = r.i64()
	copy(p.DepsUnit.Count[:], r.i64Slice(profile.MaxDepDist+1, "unit dependency profile"))
	copy(p.DepsLL.Count[:], r.i64Slice(profile.MaxDepDist+1, "long-latency dependency profile"))
	copy(p.DepsLd.Count[:], r.i64Slice(profile.MaxDepDist+1, "load dependency profile"))
	if err := r.finish("profile"); err != nil {
		return nil, err
	}
	return p, nil
}

// cacheStatsFields is the number of int64 fields in cache.Stats; the
// codec below writes them in declaration order.
const cacheStatsFields = 11

// encodeCacheStats serializes simulator-exact hierarchy statistics.
func encodeCacheStats(st cache.Stats) []byte {
	dst := make([]byte, 0, 8*cacheStatsFields)
	for _, v := range []int64{
		st.IL1Accesses, st.IL1Misses, st.IL2Misses,
		st.DL1Accesses, st.DL1Misses, st.DL2Misses,
		st.DL1LoadMisses, st.DL2LoadMisses,
		st.ITLBMisses, st.DTLBMisses, st.Writebacks,
	} {
		dst = appendI64(dst, v)
	}
	return dst
}

// decodeCacheStats rebuilds hierarchy statistics.
func decodeCacheStats(data []byte) (cache.Stats, error) {
	if len(data) != 8*cacheStatsFields {
		return cache.Stats{}, fmt.Errorf("%w: cache stats payload is %d bytes, want %d", ErrInvalid, len(data), 8*cacheStatsFields)
	}
	r := &i64Reader{data: data}
	st := cache.Stats{
		IL1Accesses: r.i64(), IL1Misses: r.i64(), IL2Misses: r.i64(),
		DL1Accesses: r.i64(), DL1Misses: r.i64(), DL2Misses: r.i64(),
		DL1LoadMisses: r.i64(), DL2LoadMisses: r.i64(),
		ITLBMisses: r.i64(), DTLBMisses: r.i64(), Writebacks: r.i64(),
	}
	return st, r.finish("cache stats")
}
