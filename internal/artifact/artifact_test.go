package artifact_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/artifact"
	"repro/internal/cache"
	"repro/internal/harness"
	"repro/internal/profile"
	"repro/internal/trace"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

// profiledShaOnce profiles the sha benchmark once per test binary.
var profiledShaOnce = sync.OnceValues(func() (*harness.Profiled, error) {
	spec, err := workloads.ByName("sha")
	if err != nil {
		return nil, err
	}
	return harness.ProfileProgram(spec.Build())
})

func profiledSha(t *testing.T) *harness.Profiled {
	t.Helper()
	pw, err := profiledShaOnce()
	if err != nil {
		t.Fatal(err)
	}
	return pw
}

func openStore(t *testing.T) *artifact.Store {
	t.Helper()
	s, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// storedPath returns the file a key lives at.
func storedPath(s *artifact.Store, key string) string {
	return filepath.Join(s.Dir(), key+artifact.Ext)
}

func TestWorkloadRoundTripAcrossStores(t *testing.T) {
	pw := profiledSha(t)
	dir := t.TempDir()
	s1, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	id := artifact.WorkloadID{Name: "sha"}
	key, err := s1.SaveWorkload(id, pw.Trace, pw.Prof)
	if err != nil {
		t.Fatal(err)
	}
	if key != s1.WorkloadKey(id) {
		t.Fatalf("SaveWorkload returned key %s, WorkloadKey computes %s", key, s1.WorkloadKey(id))
	}
	if !s1.HasWorkload(id) {
		t.Fatal("HasWorkload is false right after SaveWorkload")
	}

	// A second Store over the same directory models a separate process.
	s2, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tr, prof, err := s2.LoadWorkload(id)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != pw.Trace.Len() {
		t.Fatalf("loaded trace has %d instructions, want %d", tr.Len(), pw.Trace.Len())
	}
	for i := int64(0); i < tr.Len(); i += 997 {
		if a, b := tr.At(i), pw.Trace.At(i); a != b {
			t.Fatalf("instruction %d differs after disk round trip", i)
		}
	}
	if *prof != *pw.Prof {
		t.Fatalf("loaded profile differs from the recorded one")
	}

	// The trace must drive the detailed simulator to bit-identical
	// results (full Result, including cache and branch statistics).
	cfg := uarch.Default()
	fresh := &harness.Profiled{Name: "sha", Trace: pw.Trace, Prof: pw.Prof}
	loaded := &harness.Profiled{Name: "sha", Trace: tr, Prof: prof}
	fr, err := fresh.SimulateDetailed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := loaded.SimulateDetailed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fr != lr {
		t.Fatalf("detailed simulation differs after disk round trip:\n fresh  %+v\n loaded %+v", fr, lr)
	}
}

func TestSaveIsByteDeterministic(t *testing.T) {
	pw := profiledSha(t)
	id := artifact.WorkloadID{Name: "sha"}
	var files [2][]byte
	for i := range files {
		s := openStore(t)
		key, err := s.SaveWorkload(id, pw.Trace, pw.Prof)
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(storedPath(s, key))
		if err != nil {
			t.Fatal(err)
		}
		files[i] = data
	}
	if !bytes.Equal(files[0], files[1]) {
		t.Fatal("two saves of the same workload produced different bytes; content addressing depends on determinism")
	}
}

func TestLoadMissingReturnsNotFound(t *testing.T) {
	s := openStore(t)
	if _, _, err := s.LoadWorkload(artifact.WorkloadID{Name: "sha"}); !errors.Is(err, artifact.ErrNotFound) {
		t.Fatalf("missing artifact: err = %v, want ErrNotFound", err)
	}
	if _, err := s.LoadBranchPlane("deadbeef", "gshare"); !errors.Is(err, artifact.ErrNotFound) {
		t.Fatalf("missing branch plane: err = %v, want ErrNotFound", err)
	}
}

// corruptSavedWorkload saves sha and applies mutate to the stored
// file, returning the store.
func corruptSavedWorkload(t *testing.T, mutate func([]byte) []byte) (*artifact.Store, artifact.WorkloadID) {
	t.Helper()
	pw := profiledSha(t)
	s := openStore(t)
	id := artifact.WorkloadID{Name: "sha"}
	key, err := s.SaveWorkload(id, pw.Trace, pw.Prof)
	if err != nil {
		t.Fatal(err)
	}
	path := storedPath(s, key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return s, id
}

// resign recomputes the SHA-256 trailer after a deliberate mutation,
// so tests can reach the checks behind the whole-file digest.
func resign(d []byte) []byte {
	body := d[:len(d)-sha256.Size]
	sum := sha256.Sum256(body)
	return append(append([]byte(nil), body...), sum[:]...)
}

func TestLoadRejectsTruncatedFile(t *testing.T) {
	s, id := corruptSavedWorkload(t, func(d []byte) []byte { return d[:len(d)/3] })
	if _, _, err := s.LoadWorkload(id); !errors.Is(err, artifact.ErrInvalid) {
		t.Fatalf("truncated artifact: err = %v, want ErrInvalid", err)
	}
}

func TestLoadRejectsWrongFormatVersion(t *testing.T) {
	s, id := corruptSavedWorkload(t, func(d []byte) []byte {
		// Patch the version header and re-sign the file, so only the
		// version check can reject it.
		binary.LittleEndian.PutUint32(d[4:], artifact.FormatVersion+1)
		return resign(d)
	})
	if _, _, err := s.LoadWorkload(id); !errors.Is(err, artifact.ErrInvalid) {
		t.Fatalf("wrong-version artifact: err = %v, want ErrInvalid", err)
	}
}

func TestLoadRejectsCorruptedChunk(t *testing.T) {
	s, id := corruptSavedWorkload(t, func(d []byte) []byte {
		// Flip a byte in the middle of the trace payload and re-sign
		// the file: the whole-file digest then passes, and the
		// per-chunk CRC inside the trace codec must catch it.
		d[len(d)/2] ^= 0xFF
		return resign(d)
	})
	if _, _, err := s.LoadWorkload(id); !errors.Is(err, artifact.ErrInvalid) {
		t.Fatalf("corrupted-chunk artifact: err = %v, want ErrInvalid", err)
	}
}

func TestLoadRejectsBitFlipWithoutResign(t *testing.T) {
	s, id := corruptSavedWorkload(t, func(d []byte) []byte {
		d[len(d)-40] ^= 0x01
		return d
	})
	if _, _, err := s.LoadWorkload(id); !errors.Is(err, artifact.ErrInvalid) {
		t.Fatalf("bit-flipped artifact: err = %v, want ErrInvalid", err)
	}
}

func TestConcurrentWritersSameKey(t *testing.T) {
	pw := profiledSha(t)
	s := openStore(t)
	id := artifact.WorkloadID{Name: "sha"}
	const writers = 8
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.SaveWorkload(id, pw.Trace, pw.Prof)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	tr, prof, err := s.LoadWorkload(id)
	if err != nil {
		t.Fatalf("load after concurrent writes: %v", err)
	}
	if tr.Len() != pw.Trace.Len() || prof.N != pw.Prof.N {
		t.Fatal("artifact after concurrent writes does not match the workload")
	}
	// No temp residue.
	ents, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name() != s.WorkloadKey(id)+artifact.Ext {
			t.Fatalf("unexpected residue %q in store after concurrent writes", e.Name())
		}
	}
}

func TestPlaneRoundTrip(t *testing.T) {
	bb := trace.NewBytePlaneBuilder()
	for i := 0; i < 3*trace.ChunkLen/2; i++ {
		bb.Append(uint8(i % 7))
	}
	st := cache.Stats{IL1Accesses: 123, DL1Misses: 45, Writebacks: 6}
	s := openStore(t)
	hier := uarch.Default().Hier
	if err := s.SaveMemPlane("wkey", hier, bb.Plane(), st); err != nil {
		t.Fatal(err)
	}
	plane, got, err := s.LoadMemPlane("wkey", hier)
	if err != nil {
		t.Fatal(err)
	}
	if !plane.Equal(bb.Plane()) || got != st {
		t.Fatal("mem plane or stats differ after disk round trip")
	}
	// A different hierarchy geometry must be a different key.
	other := hier
	other.L2.SizeBytes *= 2
	if _, _, err := s.LoadMemPlane("wkey", other); !errors.Is(err, artifact.ErrNotFound) {
		t.Fatalf("different hierarchy: err = %v, want ErrNotFound", err)
	}

	pb := trace.NewBitPlaneBuilder()
	for i := 0; i < trace.ChunkLen+17; i++ {
		pb.Append(i%5 == 0)
	}
	if err := s.SaveBranchPlane("wkey", "gshare", pb.Plane()); err != nil {
		t.Fatal(err)
	}
	bp, err := s.LoadBranchPlane("wkey", "gshare")
	if err != nil {
		t.Fatal(err)
	}
	if !bp.Equal(pb.Plane()) {
		t.Fatal("branch plane differs after disk round trip")
	}
	if _, err := s.LoadBranchPlane("wkey", "hybrid"); !errors.Is(err, artifact.ErrNotFound) {
		t.Fatalf("different predictor: err = %v, want ErrNotFound", err)
	}
}

func TestListAndKinds(t *testing.T) {
	pw := profiledSha(t)
	s := openStore(t)
	id := artifact.WorkloadID{Name: "sha"}
	key, err := s.SaveWorkload(id, pw.Trace, pw.Prof)
	if err != nil {
		t.Fatal(err)
	}
	hier := uarch.Default().Hier
	bb := trace.NewBytePlaneBuilder()
	bb.Append(0)
	if err := s.SaveMemPlane(key, hier, bb.Plane(), cache.Stats{}); err != nil {
		t.Fatal(err)
	}
	// Foreign and hidden files are skipped.
	if err := os.WriteFile(filepath.Join(s.Dir(), "README.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	infos, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("List returned %d entries, want 2: %+v", len(infos), infos)
	}
	kinds := map[string]bool{}
	for _, in := range infos {
		kinds[in.Kind] = true
		if in.SizeBytes <= 0 || in.Key == "" || in.Identity == "" {
			t.Fatalf("incomplete listing entry: %+v", in)
		}
	}
	if !kinds["workload"] || !kinds["mem-plane"] {
		t.Fatalf("List kinds = %v, want workload and mem-plane", kinds)
	}
}

func TestNilStoreIsInert(t *testing.T) {
	var s *artifact.Store
	if _, _, err := s.LoadWorkload(artifact.WorkloadID{Name: "sha"}); !errors.Is(err, artifact.ErrNotFound) {
		t.Fatalf("nil store load: err = %v, want ErrNotFound", err)
	}
	if key, err := s.SaveWorkload(artifact.WorkloadID{Name: "sha"}, nil, &profile.Profile{}); err != nil || key != "" {
		t.Fatalf("nil store save: key=%q err=%v, want no-op", key, err)
	}
	if s.HasWorkload(artifact.WorkloadID{Name: "sha"}) {
		t.Fatal("nil store claims to have a workload")
	}
	if infos, err := s.List(); err != nil || infos != nil {
		t.Fatalf("nil store list: %v, %v", infos, err)
	}
	if err := s.Probe(); err == nil {
		t.Fatal("nil store probe should fail")
	}
}

func TestIdentityIncludesScalingParameters(t *testing.T) {
	s := openStore(t)
	a := s.WorkloadKey(artifact.WorkloadID{Name: "sha"})
	b := s.WorkloadKey(artifact.WorkloadID{Name: "sha", MinDynInsts: 1 << 20})
	c := s.WorkloadKey(artifact.WorkloadID{Name: "dijkstra"})
	if a == b || a == c || b == c {
		t.Fatalf("workload keys must differ across name and dyninsts: %s %s %s", a, b, c)
	}
}
