// Package artifact is the persistent, content-addressed store behind
// the "profile once" workflow: it serializes the expensive per-workload
// products — the chunked columnar trace, the machine-independent
// profile, and the per-component annotation planes — to versioned
// binary files so they survive process restarts. A CLI run, a modeld
// boot or a CI job that finds a valid artifact skips profiling (and
// annotation) entirely and is guaranteed bit-identical results: the
// codecs are deterministic, every file carries a format-version header
// and a SHA-256 trailer, and the file name *is* the SHA-256 of the
// artifact's identity (workload name, scaling parameters, ISA shape,
// format version), so a stale or mismatched entry can never be served
// — it simply lives at a different key.
//
// On-disk layout (all integers little-endian):
//
//	magic "RPAF" (4 bytes)
//	format version (u32)        — readers reject any mismatch
//	kind (u8)                   — workload / mem-plane / branch-plane
//	identity (u32 len + bytes)  — canonical string, key preimage
//	section count (u32)
//	per section: name (u32 len + bytes), payload (u64 len + bytes),
//	             payload CRC-32C (u32)
//	SHA-256 (32 bytes)          — over every preceding byte
//
// Section payloads reuse the trace codecs (per-chunk CRC-32C inside)
// and fixed-order int64 encodings for profiles and cache statistics.
// The per-section CRC (new in format version 2) is what lets the
// memory-mapped load path (see mapped.go) skip the whole-file SHA-256
// pass while still rejecting any payload corruption: chunked sections
// carry CRCs inside their codec, scalar sections are covered by the
// section CRC. Writes go to a temp file in the store directory
// followed by an atomic rename, so concurrent writers of one key are
// safe: both produce identical bytes (determinism) and the last
// rename wins.
package artifact

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/profile"
	"repro/internal/trace"
)

// FormatVersion is the on-disk format version. Bumping it changes
// every artifact identity (the version is part of the key preimage),
// so readers of the new version never even look at old files.
// Version 2 added the per-section CRC-32C that the mapped load path
// verifies in place of the whole-file digest.
const FormatVersion = 2

// Ext is the artifact file extension.
const Ext = ".rpaf"

var magic = [4]byte{'R', 'P', 'A', 'F'}

// castagnoli is the CRC-32C polynomial table for section checksums,
// matching the trace codecs' per-chunk CRCs.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Kind discriminates artifact payload types.
type Kind uint8

const (
	// KindWorkload holds a profiled workload: trace + profile.
	KindWorkload Kind = 1 + iota
	// KindMemPlane holds one hierarchy's memory-event annotation
	// plane and its end-of-run cache statistics.
	KindMemPlane
	// KindBranchPlane holds one predictor's mispredict bit plane.
	KindBranchPlane
)

// String names the kind for listings.
func (k Kind) String() string {
	switch k {
	case KindWorkload:
		return "workload"
	case KindMemPlane:
		return "mem-plane"
	case KindBranchPlane:
		return "branch-plane"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ErrNotFound is returned by loads whose key has no stored artifact.
// Any other load error means the file exists but cannot be trusted
// (truncated, corrupted, wrong version): callers fall back to fresh
// computation either way.
var ErrNotFound = errors.New("artifact: not found")

// ErrInvalid is wrapped by every load failure caused by an unusable
// file: bad magic, version mismatch, digest mismatch, truncation or a
// failing section codec.
var ErrInvalid = errors.New("artifact: invalid file")

// Store is a content-addressed artifact directory. The zero value is
// unusable; create with Open. A nil *Store is a valid "no store"
// tier: every load misses and every save is a no-op.
type Store struct {
	dir string
}

// Open prepares dir as an artifact store, creating it if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("artifact: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: opening store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store directory ("" for a nil store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// Probe verifies the store directory is writable by creating and
// removing a scratch file; /healthz reports the result.
func (s *Store) Probe() error {
	if s == nil {
		return errors.New("artifact: no store configured")
	}
	f, err := os.CreateTemp(s.dir, ".probe-*")
	if err != nil {
		return fmt.Errorf("artifact: store not writable: %w", err)
	}
	name := f.Name()
	_ = f.Close()
	return os.Remove(name)
}

// WorkloadID identifies a profiled-workload artifact: everything the
// recorded trace and profile depend on.
type WorkloadID struct {
	Name        string // benchmark name (workloads registry)
	MinDynInsts int64  // ProfileProgramScaled dynamic-instruction floor
	// Code is the content fingerprint of the built program IR
	// (program.Fingerprint): editing a workload kernel moves its
	// artifacts to a new key, so a populated store can never serve a
	// trace recorded from older code. Callers that cannot build the
	// program leave it empty — such IDs only ever match other
	// code-blind IDs, never a fingerprinted artifact.
	Code string
}

// Identity returns the canonical key preimage. It embeds the format
// version, the program content fingerprint and the ISA shape
// (opcode/class/register counts): a binary with a different ISA, or a
// workload whose built IR changed, writes and reads different keys, so
// artifacts never cross either kind of change.
func (id WorkloadID) Identity() string {
	return fmt.Sprintf("v%d|workload|name=%s|dyninsts=%d|code=%s|isa=%d/%d/%d",
		FormatVersion, id.Name, id.MinDynInsts, id.Code, isa.NumOps, isa.NumClasses, isa.NumRegs)
}

// KeyOf returns the content key of an identity string: its SHA-256 in
// hex, which is also the artifact's file name (plus Ext).
func KeyOf(identity string) string {
	sum := sha256.Sum256([]byte(identity))
	return hex.EncodeToString(sum[:])
}

// WorkloadKey returns the content key a workload artifact lives under.
func (s *Store) WorkloadKey(id WorkloadID) string { return KeyOf(id.Identity()) }

// hierIdentity canonicalizes a hierarchy configuration for plane keys.
// Cosmetic cache names are excluded: planes depend only on geometry.
func hierIdentity(h cache.HierarchyConfig) string {
	c := func(c cache.Config) string {
		return fmt.Sprintf("%d:%d:%d", c.SizeBytes, c.Ways, c.BlockBytes)
	}
	return fmt.Sprintf("il1=%s|dl1=%s|l2=%s|itlb=%d|dtlb=%d|page=%d",
		c(h.IL1), c(h.DL1), c(h.L2), h.ITLBEntries, h.DTLBEntries, h.PageBytes)
}

// memPlaneIdentity returns the key preimage of one hierarchy's plane
// for the workload stored under workloadKey.
func memPlaneIdentity(workloadKey string, h cache.HierarchyConfig) string {
	return fmt.Sprintf("v%d|memplane|workload=%s|%s", FormatVersion, workloadKey, hierIdentity(h))
}

// branchPlaneIdentity returns the key preimage of one predictor's
// mispredict plane for the workload stored under workloadKey.
func branchPlaneIdentity(workloadKey, predictor string) string {
	return fmt.Sprintf("v%d|branchplane|workload=%s|pred=%s", FormatVersion, workloadKey, predictor)
}

// section is one named payload inside an artifact file.
type section struct {
	name    string
	payload []byte
}

// encode renders a complete artifact file image.
func encode(kind Kind, identity string, sections []section) []byte {
	var buf bytes.Buffer
	buf.Write(magic[:])
	le := binary.LittleEndian
	var u32 [4]byte
	var u64 [8]byte
	le.PutUint32(u32[:], FormatVersion)
	buf.Write(u32[:])
	buf.WriteByte(byte(kind))
	le.PutUint32(u32[:], uint32(len(identity)))
	buf.Write(u32[:])
	buf.WriteString(identity)
	le.PutUint32(u32[:], uint32(len(sections)))
	buf.Write(u32[:])
	for _, sec := range sections {
		le.PutUint32(u32[:], uint32(len(sec.name)))
		buf.Write(u32[:])
		buf.WriteString(sec.name)
		le.PutUint64(u64[:], uint64(len(sec.payload)))
		buf.Write(u64[:])
		buf.Write(sec.payload)
		le.PutUint32(u32[:], crc32.Checksum(sec.payload, castagnoli))
		buf.Write(u32[:])
	}
	sum := sha256.Sum256(buf.Bytes())
	buf.Write(sum[:])
	return buf.Bytes()
}

// secView is one parsed section: its payload plus the CRC-32C the
// writer recorded for it. Verification is split from parsing so the
// two load paths can check what their codecs do not already cover.
type secView struct {
	payload []byte
	crc     uint32
}

// verify checks the payload against the recorded section CRC.
func (sv secView) verify(name string) error {
	if got := crc32.Checksum(sv.payload, castagnoli); got != sv.crc {
		return fmt.Errorf("%w: section %q checksum mismatch (got %08x, want %08x)", ErrInvalid, name, got, sv.crc)
	}
	return nil
}

// parseFrame parses an artifact image's framing — magic, version,
// kind, identity, section table — without verifying any digest. Both
// load paths build on it: decode adds the whole-file SHA-256 plus
// every section CRC, the mapped path adds section CRCs only where a
// section's codec has no internal checksums.
func parseFrame(body []byte, wantKind Kind, wantIdentity string) (map[string]secView, error) {
	le := binary.LittleEndian
	if len(body) < len(magic)+4+1+4+4 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the minimal header", ErrInvalid, len(body))
	}
	if !bytes.Equal(body[:4], magic[:]) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrInvalid, body[:4])
	}
	if v := le.Uint32(body[4:]); v != FormatVersion {
		return nil, fmt.Errorf("%w: format version %d, this binary reads %d", ErrInvalid, v, FormatVersion)
	}
	if k := Kind(body[8]); k != wantKind {
		return nil, fmt.Errorf("%w: kind %v, want %v", ErrInvalid, k, wantKind)
	}
	off := 9
	idLen := int(le.Uint32(body[off:]))
	off += 4
	if idLen < 0 || off+idLen > len(body) {
		return nil, fmt.Errorf("%w: identity length %d exceeds file", ErrInvalid, idLen)
	}
	id := string(body[off : off+idLen])
	off += idLen
	if id != wantIdentity {
		return nil, fmt.Errorf("%w: identity %q, want %q", ErrInvalid, id, wantIdentity)
	}
	if off+4 > len(body) {
		return nil, fmt.Errorf("%w: truncated section table", ErrInvalid)
	}
	nsec := int(le.Uint32(body[off:]))
	off += 4
	out := make(map[string]secView, nsec)
	for i := 0; i < nsec; i++ {
		if off+4 > len(body) {
			return nil, fmt.Errorf("%w: truncated section %d header", ErrInvalid, i)
		}
		nameLen := int(le.Uint32(body[off:]))
		off += 4
		if nameLen < 0 || off+nameLen+8 > len(body) {
			return nil, fmt.Errorf("%w: section %d name overruns file", ErrInvalid, i)
		}
		name := string(body[off : off+nameLen])
		off += nameLen
		payLen := le.Uint64(body[off:])
		off += 8
		if payLen > uint64(len(body)-off) || uint64(len(body)-off)-payLen < 4 {
			return nil, fmt.Errorf("%w: section %q payload overruns file", ErrInvalid, name)
		}
		payload := body[off : off+int(payLen)]
		off += int(payLen)
		out[name] = secView{payload: payload, crc: le.Uint32(body[off:])}
		off += 4
	}
	if off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes after sections", ErrInvalid, len(body)-off)
	}
	return out, nil
}

// decode parses and verifies a file image: magic, version, kind,
// identity, the whole-file digest and every section CRC must all
// match before any section payload is handed to a codec.
func decode(data []byte, wantKind Kind, wantIdentity string) (map[string][]byte, error) {
	if len(data) < len(magic)+4+1+4+4+sha256.Size {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the minimal header", ErrInvalid, len(data))
	}
	body, tail := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	if sum := sha256.Sum256(body); !bytes.Equal(sum[:], tail) {
		return nil, fmt.Errorf("%w: SHA-256 digest mismatch (truncated or corrupted)", ErrInvalid)
	}
	secs, err := parseFrame(body, wantKind, wantIdentity)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]byte, len(secs))
	for name, sv := range secs {
		if err := sv.verify(name); err != nil {
			return nil, err
		}
		out[name] = sv.payload
	}
	return out, nil
}

// path returns the file path of a content key.
func (s *Store) path(key string) string { return filepath.Join(s.dir, key+Ext) }

// write atomically installs an encoded artifact under key: temp file
// in the store directory, then rename. Concurrent writers of one key
// race renames of byte-identical files, which is harmless.
func (s *Store) write(key string, data []byte) error {
	if s == nil {
		return nil
	}
	f, err := os.CreateTemp(s.dir, ".tmp-"+key[:16]+"-*")
	if err != nil {
		return fmt.Errorf("artifact: writing %s: %w", key, err)
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("artifact: writing %s: %w", key, err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("artifact: writing %s: %w", key, err)
	}
	if err := os.Rename(tmp, s.path(key)); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("artifact: installing %s: %w", key, err)
	}
	return nil
}

// read loads and verifies the artifact stored under identity.
func (s *Store) read(kind Kind, identity string) (map[string][]byte, error) {
	if s == nil {
		return nil, ErrNotFound
	}
	key := KeyOf(identity)
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("artifact: reading %s: %w", key, err)
	}
	secs, err := decode(data, kind, identity)
	if err != nil {
		return nil, fmt.Errorf("artifact %s: %w", key, err)
	}
	return secs, nil
}

// SaveWorkload stores a profiled workload (trace + profile) and
// returns its content key. The write is deterministic: two processes
// profiling the same workload install byte-identical files.
func (s *Store) SaveWorkload(id WorkloadID, tr *trace.Trace, prof *profile.Profile) (string, error) {
	if s == nil {
		return "", nil
	}
	var tb bytes.Buffer
	tb.Grow(int(tr.EncodedSize()))
	if _, err := tr.WriteTo(&tb); err != nil {
		return "", fmt.Errorf("artifact: encoding trace: %w", err)
	}
	identity := id.Identity()
	key := KeyOf(identity)
	data := encode(KindWorkload, identity, []section{
		{"trace", tb.Bytes()},
		{"profile", encodeProfile(prof)},
	})
	if err := s.write(key, data); err != nil {
		return "", err
	}
	return key, nil
}

// LoadWorkload rehydrates a profiled workload. A missing artifact
// returns ErrNotFound; an unusable one returns an error wrapping
// ErrInvalid — in both cases the caller profiles fresh.
//
// The load is mapped-first: on platforms with mmap the trace's hot
// columns alias a read-only file mapping (see mapped.go) instead of
// being decoded and copied. Any mapped-path failure falls through to
// the portable decode path below, which determines the error the
// caller sees.
func (s *Store) LoadWorkload(id WorkloadID) (*trace.Trace, *profile.Profile, error) {
	if tr, prof, err := s.loadWorkloadMapped(id); err == nil {
		return tr, prof, nil
	}
	secs, err := s.read(KindWorkload, id.Identity())
	if err != nil {
		return nil, nil, err
	}
	tb, ok := secs["trace"]
	if !ok {
		return nil, nil, fmt.Errorf("%w: workload artifact has no trace section", ErrInvalid)
	}
	pb, ok := secs["profile"]
	if !ok {
		return nil, nil, fmt.Errorf("%w: workload artifact has no profile section", ErrInvalid)
	}
	tr, err := trace.ReadTraceFrom(bytes.NewReader(tb))
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	prof, err := decodeProfile(pb)
	if err != nil {
		return nil, nil, err
	}
	return tr, prof, nil
}

// HasWorkload reports whether a workload artifact exists on disk (it
// may still fail verification on load).
func (s *Store) HasWorkload(id WorkloadID) bool {
	if s == nil {
		return false
	}
	_, err := os.Stat(s.path(s.WorkloadKey(id)))
	return err == nil
}

// SaveMemPlane stores one hierarchy's memory-event plane and its
// simulator-exact cache statistics under the owning workload's key.
func (s *Store) SaveMemPlane(workloadKey string, h cache.HierarchyConfig, classes *trace.BytePlane, st cache.Stats) error {
	if s == nil {
		return nil
	}
	var pb bytes.Buffer
	pb.Grow(int(classes.EncodedSize()))
	if _, err := classes.WriteTo(&pb); err != nil {
		return fmt.Errorf("artifact: encoding mem plane: %w", err)
	}
	identity := memPlaneIdentity(workloadKey, h)
	data := encode(KindMemPlane, identity, []section{
		{"classes", pb.Bytes()},
		{"stats", encodeCacheStats(st)},
	})
	return s.write(KeyOf(identity), data)
}

// LoadMemPlane rehydrates one hierarchy's plane and statistics,
// mapped-first like LoadWorkload.
func (s *Store) LoadMemPlane(workloadKey string, h cache.HierarchyConfig) (*trace.BytePlane, cache.Stats, error) {
	if plane, st, err := s.loadMemPlaneMapped(workloadKey, h); err == nil {
		return plane, st, nil
	}
	secs, err := s.read(KindMemPlane, memPlaneIdentity(workloadKey, h))
	if err != nil {
		return nil, cache.Stats{}, err
	}
	cb, ok := secs["classes"]
	if !ok {
		return nil, cache.Stats{}, fmt.Errorf("%w: mem-plane artifact has no classes section", ErrInvalid)
	}
	sb, ok := secs["stats"]
	if !ok {
		return nil, cache.Stats{}, fmt.Errorf("%w: mem-plane artifact has no stats section", ErrInvalid)
	}
	plane, err := trace.ReadBytePlaneFrom(bytes.NewReader(cb))
	if err != nil {
		return nil, cache.Stats{}, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	st, err := decodeCacheStats(sb)
	if err != nil {
		return nil, cache.Stats{}, err
	}
	return plane, st, nil
}

// SaveBranchPlane stores one predictor's mispredict plane under the
// owning workload's key.
func (s *Store) SaveBranchPlane(workloadKey, predictor string, p *trace.BitPlane) error {
	if s == nil {
		return nil
	}
	var pb bytes.Buffer
	pb.Grow(int(p.EncodedSize()))
	if _, err := p.WriteTo(&pb); err != nil {
		return fmt.Errorf("artifact: encoding branch plane: %w", err)
	}
	identity := branchPlaneIdentity(workloadKey, predictor)
	data := encode(KindBranchPlane, identity, []section{{"mispredicts", pb.Bytes()}})
	return s.write(KeyOf(identity), data)
}

// LoadBranchPlane rehydrates one predictor's mispredict plane,
// mapped-first like LoadWorkload.
func (s *Store) LoadBranchPlane(workloadKey, predictor string) (*trace.BitPlane, error) {
	if p, err := s.loadBranchPlaneMapped(workloadKey, predictor); err == nil {
		return p, nil
	}
	secs, err := s.read(KindBranchPlane, branchPlaneIdentity(workloadKey, predictor))
	if err != nil {
		return nil, err
	}
	mb, ok := secs["mispredicts"]
	if !ok {
		return nil, fmt.Errorf("%w: branch-plane artifact has no mispredicts section", ErrInvalid)
	}
	p, err := trace.ReadBitPlaneFrom(bytes.NewReader(mb))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	return p, nil
}

// Info describes one stored artifact for listings (/v1/artifacts).
type Info struct {
	Key       string `json:"key"`
	Kind      string `json:"kind"`
	Identity  string `json:"identity"`
	SizeBytes int64  `json:"size_bytes"`
}

// List enumerates every readable artifact header in the store, sorted
// by kind then identity. Files that are not artifacts (foreign files,
// in-flight temp files) are skipped; a header that fails to parse is
// listed with kind "unreadable" so operators can see residue.
func (s *Store) List() ([]Info, error) {
	if s == nil {
		return nil, nil
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("artifact: listing store: %w", err)
	}
	var out []Info
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, Ext) || strings.HasPrefix(name, ".") {
			continue
		}
		info := Info{Key: strings.TrimSuffix(name, Ext)}
		if fi, err := ent.Info(); err == nil {
			info.SizeBytes = fi.Size()
		}
		kind, identity, err := readHeader(filepath.Join(s.dir, name))
		if err != nil {
			info.Kind = "unreadable"
		} else {
			info.Kind = kind.String()
			info.Identity = identity
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		if out[i].Identity != out[j].Identity {
			return out[i].Identity < out[j].Identity
		}
		return out[i].Key < out[j].Key
	})
	return out, nil
}

// readHeader parses just the fixed header and identity of an artifact
// file, without verifying the payload digest (List is advisory; loads
// verify).
func readHeader(path string) (Kind, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, "", err
	}
	defer f.Close()
	var fixed [13]byte // magic + version + kind + identity length
	if _, err := io.ReadFull(f, fixed[:]); err != nil {
		return 0, "", fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if !bytes.Equal(fixed[:4], magic[:]) {
		return 0, "", fmt.Errorf("%w: bad magic", ErrInvalid)
	}
	if v := binary.LittleEndian.Uint32(fixed[4:]); v != FormatVersion {
		return 0, "", fmt.Errorf("%w: format version %d", ErrInvalid, v)
	}
	idLen := binary.LittleEndian.Uint32(fixed[9:])
	if idLen > 1<<16 {
		return 0, "", fmt.Errorf("%w: absurd identity length %d", ErrInvalid, idLen)
	}
	id := make([]byte, idLen)
	if _, err := io.ReadFull(f, id); err != nil {
		return 0, "", fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	return Kind(fixed[8]), string(id), nil
}
