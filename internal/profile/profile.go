// Package profile computes the machine-independent program statistics
// of Table 1 in the paper: the dynamic instruction count N, the
// per-type counts N_i of long-latency instructions, and the three
// dependency-distance profiles deps_unit(d), deps_LL(d) and deps_ld(d).
//
// These statistics are a property of the program binary alone: one
// profiling pass suffices to drive the mechanistic model across the
// whole microarchitecture design space.
package profile

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/trace"
)

// MaxDepDist is the largest dependency distance tracked. The model
// needs distances up to 2W-1; with W ≤ 8 supported, 64 gives headroom
// and also feeds the out-of-order model's ILP analysis.
const MaxDepDist = 64

// DepProfile is a histogram over dependency distances: Count[d] is the
// number of consumer instructions whose *shortest* producer distance is
// d, for 1 ≤ d ≤ MaxDepDist. Index 0 is unused.
type DepProfile struct {
	Count [MaxDepDist + 1]int64
}

// Total returns the number of recorded dependencies.
func (p *DepProfile) Total() int64 {
	var t int64
	for _, c := range p.Count {
		t += c
	}
	return t
}

// UpTo returns the number of dependencies with distance ≤ d.
func (p *DepProfile) UpTo(d int) int64 {
	if d > MaxDepDist {
		d = MaxDepDist
	}
	var t int64
	for i := 1; i <= d; i++ {
		t += p.Count[i]
	}
	return t
}

// Mean returns the mean recorded dependency distance (0 if empty).
func (p *DepProfile) Mean() float64 {
	var n, s int64
	for d := 1; d <= MaxDepDist; d++ {
		n += p.Count[d]
		s += int64(d) * p.Count[d]
	}
	if n == 0 {
		return 0
	}
	return float64(s) / float64(n)
}

// Profile holds the machine-independent statistics of one program.
type Profile struct {
	Name string

	N       int64                 // dynamic instruction count
	ByClass [isa.NumClasses]int64 // dynamic count per class
	ByOp    [isa.NumOps]int64     // dynamic count per opcode, indexed by isa.Op
	NMul    int64                 // multiply count (long latency)
	NDiv    int64                 // divide/remainder count (long latency)
	NLoad   int64
	NStore  int64
	NBranch int64 // conditional branches
	NJump   int64 // unconditional control
	NTaken  int64 // taken conditional branches

	// Dependency-distance profiles keyed by producer type. The consumer
	// is attributed to its *nearest* producer; when two producers are at
	// the same distance, loads take priority over long-latency ops over
	// unit-latency ops (the stall the pipeline actually sees).
	DepsUnit DepProfile // producer is a unit-latency instruction
	DepsLL   DepProfile // producer is mul/div
	DepsLd   DepProfile // producer is a load
}

// Collector streams a trace into a Profile.
type Collector struct {
	P Profile

	// lastWriter[r] is the dynamic sequence number of the most recent
	// writer of register r, or -1. writerKind mirrors it.
	lastWriter [isa.NumRegs]int64
	writerKind [isa.NumRegs]producerKind
}

type producerKind uint8

const (
	prodUnit producerKind = iota
	prodLL
	prodLoad
)

// NewCollector returns a collector for a program with the given name.
func NewCollector(name string) *Collector {
	c := &Collector{}
	c.P.Name = name
	for i := range c.lastWriter {
		c.lastWriter[i] = -1
	}
	return c
}

// Consume implements trace.Consumer.
func (c *Collector) Consume(d *trace.DynInst) {
	p := &c.P
	p.N++
	p.ByClass[d.Class]++
	p.ByOp[d.Op]++

	switch d.Class {
	case isa.ClassMul:
		p.NMul++
	case isa.ClassDiv:
		p.NDiv++
	case isa.ClassLoad:
		p.NLoad++
	case isa.ClassStore:
		p.NStore++
	case isa.ClassBranch:
		p.NBranch++
		if d.Taken {
			p.NTaken++
		}
	case isa.ClassJump:
		p.NJump++
	}

	// Dependency profiling: find the nearest producer among the sources.
	if d.NumSrc > 0 {
		bestDist := int64(-1)
		bestKind := prodUnit
		for i := 0; i < d.NumSrc; i++ {
			r := d.Src[i]
			w := c.lastWriter[r]
			if w < 0 {
				continue
			}
			dist := d.Seq - w
			if bestDist < 0 || dist < bestDist ||
				(dist == bestDist && kindPriority(c.writerKind[r]) > kindPriority(bestKind)) {
				bestDist = dist
				bestKind = c.writerKind[r]
			}
		}
		if bestDist >= 1 && bestDist <= MaxDepDist {
			switch bestKind {
			case prodLoad:
				p.DepsLd.Count[bestDist]++
			case prodLL:
				p.DepsLL.Count[bestDist]++
			default:
				p.DepsUnit.Count[bestDist]++
			}
		}
	}

	if d.HasDst {
		c.lastWriter[d.Dst] = d.Seq
		switch d.Class {
		case isa.ClassMul, isa.ClassDiv:
			c.writerKind[d.Dst] = prodLL
		case isa.ClassLoad:
			c.writerKind[d.Dst] = prodLoad
		default:
			c.writerKind[d.Dst] = prodUnit
		}
	}
}

func kindPriority(k producerKind) int {
	switch k {
	case prodLoad:
		return 2
	case prodLL:
		return 1
	}
	return 0
}

// Result returns the collected profile.
func (c *Collector) Result() *Profile { return &c.P }

// Mix returns the fraction of dynamic instructions in the given class.
func (p *Profile) Mix(cl isa.Class) float64 {
	if p.N == 0 {
		return 0
	}
	return float64(p.ByClass[cl]) / float64(p.N)
}

// String summarizes the profile.
func (p *Profile) String() string {
	return fmt.Sprintf(
		"%s: N=%d alu=%.1f%% mul=%.2f%% div=%.2f%% ld=%.1f%% st=%.1f%% br=%.1f%% (taken %.1f%%) depU=%d depLL=%d depLd=%d",
		p.Name, p.N,
		100*p.Mix(isa.ClassALU), 100*p.Mix(isa.ClassMul), 100*p.Mix(isa.ClassDiv),
		100*p.Mix(isa.ClassLoad), 100*p.Mix(isa.ClassStore), 100*p.Mix(isa.ClassBranch),
		100*safeDiv(float64(p.NTaken), float64(p.NBranch)),
		p.DepsUnit.Total(), p.DepsLL.Total(), p.DepsLd.Total(),
	)
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
