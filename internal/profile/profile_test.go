package profile

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/trace"
)

// feed streams hand-built dynamic instructions through a collector.
func feed(ds []trace.DynInst) *Profile {
	c := NewCollector("t")
	for i := range ds {
		ds[i].Seq = int64(i)
		c.Consume(&ds[i])
	}
	return c.Result()
}

func alu(dst isa.Reg, srcs ...isa.Reg) trace.DynInst {
	d := trace.DynInst{Op: isa.ADD, Class: isa.ClassALU, Dst: dst, HasDst: dst != 0}
	for i, s := range srcs {
		if i < 2 {
			d.Src[i] = s
			d.NumSrc++
		}
	}
	return d
}

func TestDependencyDistance(t *testing.T) {
	// r1 written at seq 0; consumed at seq 3 -> deps_unit(3)++.
	p := feed([]trace.DynInst{
		alu(1),
		alu(2),
		alu(3),
		alu(4, 1),
	})
	if p.DepsUnit.Count[3] != 1 {
		t.Errorf("deps_unit(3) = %d, want 1", p.DepsUnit.Count[3])
	}
	if p.DepsUnit.Total() != 1 {
		t.Errorf("total unit deps = %d, want 1", p.DepsUnit.Total())
	}
}

func TestNearestProducerWins(t *testing.T) {
	// Consumer reads r1 (written at 0) and r2 (written at 2):
	// shortest distance is 1 (to r2).
	p := feed([]trace.DynInst{
		alu(1),
		alu(9),
		alu(2),
		alu(4, 1, 2),
	})
	if p.DepsUnit.Count[1] != 1 || p.DepsUnit.Count[3] != 0 {
		t.Errorf("deps = %v, want only d=1", p.DepsUnit.Count[:5])
	}
}

func TestProducerKindClassification(t *testing.T) {
	mul := trace.DynInst{Op: isa.MUL, Class: isa.ClassMul, Dst: 2, HasDst: true}
	ld := trace.DynInst{Op: isa.LD, Class: isa.ClassLoad, Dst: 3, HasDst: true, IsLoad: true}
	p := feed([]trace.DynInst{
		mul,       // writes r2
		alu(4, 2), // dep on mul at d=1
		ld,        // writes r3
		alu(5, 3), // dep on load at d=1
		alu(6),    // writes r6
		alu(7, 6), // dep on unit at d=1
	})
	if p.DepsLL.Count[1] != 1 {
		t.Errorf("deps_LL(1) = %d, want 1", p.DepsLL.Count[1])
	}
	if p.DepsLd.Count[1] != 1 {
		t.Errorf("deps_ld(1) = %d, want 1", p.DepsLd.Count[1])
	}
	if p.DepsUnit.Count[1] != 1 {
		t.Errorf("deps_unit(1) = %d, want 1", p.DepsUnit.Count[1])
	}
}

func TestTieBreakPrefersLoad(t *testing.T) {
	// Both producers at distance 2 and 1... craft equal distances:
	// load writes r1 at seq 0, unit writes r2 at seq 0? Two writers
	// cannot share a seq; instead both at distance 1 via two sources
	// written at the same earlier instruction is impossible, so use
	// distance 2 for both: load at 0, unit at... distances must be
	// equal: producers at seq 0 (load, r1) and seq 0 is taken; use
	// seq 1 (unit, r2) and consumer at 2 reading r1 (d=2) and r2 (d=1):
	// nearest is unit. For a true tie, read r1 and r3 both written at
	// seq 1 — only one instruction writes per cycle, so a tie can only
	// happen with a single producer instruction; then kind priority is
	// moot. Verify instead that equal-distance multi-source tie keeps
	// one dependency only.
	ld := trace.DynInst{Op: isa.LD, Class: isa.ClassLoad, Dst: 1, HasDst: true, IsLoad: true}
	p := feed([]trace.DynInst{
		ld,
		alu(9, 1, 1), // both sources are r1: one dep at d=1, kind load
	})
	if p.DepsLd.Count[1] != 1 || p.DepsLd.Total() != 1 {
		t.Errorf("deps_ld = %v", p.DepsLd.Count[:3])
	}
	if p.DepsUnit.Total() != 0 {
		t.Errorf("unexpected unit deps: %d", p.DepsUnit.Total())
	}
}

func TestOverwriteBreaksDependency(t *testing.T) {
	// r1 written at 0, overwritten at 1 by an instruction with no
	// sources; consumer at 2 depends on the newer write (d=1).
	p := feed([]trace.DynInst{
		alu(1),
		alu(1),
		alu(2, 1),
	})
	if p.DepsUnit.Count[1] != 1 || p.DepsUnit.Count[2] != 0 {
		t.Errorf("deps = %v, want d=1 only", p.DepsUnit.Count[:4])
	}
}

func TestClassCountsAndBranchStats(t *testing.T) {
	br := func(taken bool) trace.DynInst {
		return trace.DynInst{Op: isa.BEQ, Class: isa.ClassBranch, IsBranch: true, Taken: taken}
	}
	jmp := trace.DynInst{Op: isa.JMP, Class: isa.ClassJump, IsJump: true, Taken: true}
	st := trace.DynInst{Op: isa.ST, Class: isa.ClassStore, IsStore: true}
	div := trace.DynInst{Op: isa.DIV, Class: isa.ClassDiv, Dst: 1, HasDst: true}
	p := feed([]trace.DynInst{br(true), br(false), br(true), jmp, st, div})
	if p.NBranch != 3 || p.NTaken != 2 || p.NJump != 1 || p.NStore != 1 || p.NDiv != 1 {
		t.Errorf("counts: %+v", p)
	}
	if p.N != 6 {
		t.Errorf("N = %d, want 6", p.N)
	}
	if p.Mix(isa.ClassBranch) != 0.5 {
		t.Errorf("branch mix = %f, want 0.5", p.Mix(isa.ClassBranch))
	}
}

func TestDepProfileHelpers(t *testing.T) {
	var dp DepProfile
	dp.Count[1] = 3
	dp.Count[4] = 1
	if dp.Total() != 4 {
		t.Errorf("Total = %d", dp.Total())
	}
	if dp.UpTo(3) != 3 {
		t.Errorf("UpTo(3) = %d", dp.UpTo(3))
	}
	if dp.UpTo(1000) != 4 {
		t.Errorf("UpTo(1000) = %d", dp.UpTo(1000))
	}
	want := (3.0*1 + 1.0*4) / 4.0
	if dp.Mean() != want {
		t.Errorf("Mean = %f, want %f", dp.Mean(), want)
	}
	var empty DepProfile
	if empty.Mean() != 0 {
		t.Errorf("empty Mean = %f", empty.Mean())
	}
}

func TestDepTotalsNeverExceedN(t *testing.T) {
	// Property: however the stream looks, the number of recorded
	// dependencies cannot exceed the number of instructions.
	f := func(ops []uint8) bool {
		c := NewCollector("q")
		var seq int64
		for _, o := range ops {
			d := trace.DynInst{Seq: seq, Op: isa.ADD, Class: isa.ClassALU}
			d.Dst = isa.Reg(o % 8)
			d.HasDst = d.Dst != 0
			d.Src[0] = isa.Reg((o >> 3) % 8)
			if d.Src[0] != 0 {
				d.NumSrc = 1
			}
			c.Consume(&d)
			seq++
		}
		p := c.Result()
		deps := p.DepsUnit.Total() + p.DepsLL.Total() + p.DepsLd.Total()
		return deps <= p.N && p.N == int64(len(ops))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProfileString(t *testing.T) {
	p := feed([]trace.DynInst{alu(1)})
	if p.String() == "" {
		t.Error("empty String()")
	}
}
