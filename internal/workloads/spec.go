package workloads

import (
	"repro/internal/program"
)

// The SPEC-CPU2006-like kernels exercise working sets far larger than
// the 512 KB default L2, producing the memory-dominated CPI behaviour
// of the paper's Figure 6 validation. Each mirrors the memory idiom of
// its namesake: mcf's pointer chasing, libquantum's streaming sweeps,
// milc's strided lattice arithmetic, lbm's stencil updates, omnetpp's
// heap-ordered event queue and soplex's sparse indirect gathers.

// McfLike chases a randomized pointer cycle spread across a 2 MB
// region, with small per-node bookkeeping arithmetic. Nearly every hop
// misses in L2, serialized by the load-use dependence — the worst-case
// in-order memory behaviour.
func McfLike() *program.Program {
	const (
		nodesWords = 512 * 1024 // 2 MB of next pointers
		hops       = 28000
		chainBase  = 0x100
	)
	p := program.New("mcf_like", chainBase+nodesWords+64)
	// Build one random permutation cycle so the chase never repeats a
	// block until the whole region has been visited.
	r := newRNG(0x3CF1)
	perm := make([]int64, nodesWords)
	for i := range perm {
		perm[i] = int64(i)
	}
	for i := len(perm) - 1; i > 0; i-- {
		j := r.intn(int64(i + 1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	next := make([]int64, nodesWords)
	for i := 0; i < len(perm); i++ {
		next[perm[i]] = perm[(i+1)%len(perm)]
	}
	p.SetDataSlice(chainBase, next)

	node, cnt, n := R(1), R(2), R(3)
	acc, t := R(4), R(5)

	b := p.Block("init")
	b.Li(node, 0)
	b.Li(cnt, 0)
	b.Li(n, hops)
	b.Li(acc, 0)

	b = p.LoopBlockN("hop", "hop", 4)
	b.Ld(node, node, chainBase) // node = next[node]
	b.Add(acc, acc, node)       // cost accumulation
	b.Andi(t, node, 1)
	b.Add(acc, acc, t)
	b.Addi(cnt, cnt, 1)
	b.Blt(cnt, n, "hop")

	b = p.Block("done")
	b.St(acc, R(0), 0)
	b.Halt()
	return p
}

// LibquantumLike streams over a 150K-word (600 KB) gate array applying
// a toggle to every amplitude: unit-stride loads and stores whose
// blocks miss in L1 and mostly in L2, with trivially predictable
// branches — bandwidth-bound streaming.
func LibquantumLike() *program.Program {
	const (
		words   = 150 * 1024
		arrBase = 0x100
		passes  = 1
	)
	p := program.New("libquantum_like", arrBase+words+64)
	// Memory defaults to zero; initialize only a sparse sample so the
	// build stays cheap — the access pattern is what matters.
	r := newRNG(0x11B4)
	for i := 0; i < 4096; i++ {
		p.SetData(arrBase+r.intn(words), r.intn(1<<30))
	}

	i, n, v, mask := R(1), R(2), R(3), R(4)
	pass, np := R(5), R(6)

	b := p.Block("init")
	b.Li(mask, 0x55AA55)
	b.Li(n, words)
	b.Li(pass, 0)
	b.Li(np, passes)

	b = p.Block("pass")
	b.Li(i, 0)
	b = p.LoopBlockN("sweep", "sweep", 4)
	b.Ld(v, i, arrBase)
	b.Xor(v, v, mask)
	b.Addi(v, v, 3)
	b.St(v, i, arrBase)
	b.Addi(i, i, 1)
	b.Blt(i, n, "sweep")

	b = p.Block("pass_latch")
	b.Addi(pass, pass, 1)
	b.Blt(pass, np, "pass")

	b = p.Block("done")
	b.Ld(v, R(0), arrBase)
	b.St(v, R(0), 0)
	b.Halt()
	return p
}

// MilcLike performs strided multiply-accumulate over a large lattice
// (su3-style link updates): each site gathers several spread-out
// operands, multiplies and stores back — mixed stride/miss behaviour
// with real arithmetic between misses.
func MilcLike() *program.Program {
	const (
		sites    = 22000
		stride   = 10 // words between consecutive sites
		aBase    = 0x100
		bBase    = aBase + sites*stride + 64
		totalMem = bBase + sites*stride + 128
	)
	p := program.New("milc_like", totalMem)
	r := newRNG(0x311C)
	for i := 0; i < 8192; i++ {
		p.SetData(aBase+r.intn(sites*stride), r.intn(4096)-2048)
		p.SetData(bBase+r.intn(sites*stride), r.intn(4096)-2048)
	}

	i, n := R(1), R(2)
	pa, pb := R(3), R(4)
	v1, v2, v3, acc, t := R(5), R(6), R(7), R(8), R(9)
	cs := R(10)

	b := p.Block("init")
	b.Li(i, 0)
	b.Li(n, sites)
	b.Li(pa, aBase)
	b.Li(pb, bBase)
	b.Li(cs, stride)
	b.Li(acc, 0)

	b = p.LoopBlockN("site", "site", 4)
	b.Ld(v1, pa, 0)
	b.Ld(v2, pb, 0)
	b.Ld(v3, pa, 4)
	b.Mul(t, v1, v2)
	b.Add(acc, acc, t)
	b.Mul(t, v2, v3)
	b.Srai(t, t, 6)
	b.St(t, pa, 1)
	b.Add(pa, pa, cs)
	b.Add(pb, pb, cs)
	b.Addi(i, i, 1)
	b.Blt(i, n, "site")

	b = p.Block("done")
	b.St(acc, R(0), 0)
	b.Halt()
	return p
}

// LbmLike sweeps a 2D 5-point stencil from one large grid into
// another: four neighbor loads and a weighted combine per cell, with
// in/out grids together exceeding the L2.
func LbmLike() *program.Program {
	const (
		width   = 330
		height  = 130
		inBase  = 0x100
		outBase = inBase + width*height + 64
	)
	p := program.New("lbm_like", outBase+width*height+128)
	r := newRNG(0x1B31)
	for i := 0; i < 8192; i++ {
		p.SetData(inBase+r.intn(width*height), r.intn(512))
	}

	x, y := R(1), R(2)
	c, nN, nS, nE, nW := R(3), R(4), R(5), R(6), R(7)
	acc, addr, t := R(8), R(9), R(10)
	cw, chh := R(11), R(12)
	rowPtr := R(13)

	b := p.Block("init")
	b.Li(y, 1)
	b.Li(cw, width)
	b.Li(chh, height-1)

	b = p.Block("row")
	b.Mul(rowPtr, y, cw)
	b.Li(x, 1)

	b = p.LoopBlockN("cell", "cell", 4)
	b.Add(addr, rowPtr, x)
	b.Ld(c, addr, inBase)
	b.Ld(nE, addr, inBase+1)
	b.Ld(nW, addr, inBase-1)
	b.Ld(nS, addr, inBase+width)
	b.Ld(nN, addr, inBase-width)
	b.Shli(acc, c, 2) // 4*c
	b.Add(t, nE, nW)
	b.Add(acc, acc, t)
	b.Add(t, nN, nS)
	b.Add(acc, acc, t)
	b.Srai(acc, acc, 3) // /8 relaxation
	b.St(acc, addr, outBase)
	b.Addi(x, x, 1)
	b.Addi(t, cw, -1)
	b.Blt(x, t, "cell")

	b = p.Block("row_latch")
	b.Addi(y, y, 1)
	b.Blt(y, chh, "row")

	b = p.Block("done")
	b.Ld(t, R(0), outBase+width+1)
	b.St(t, R(0), 0)
	b.Halt()
	return p
}

// OmnetppLike drives a binary-heap event queue spread over 1 MB:
// alternating inserts (sift-up) and extract-mins (sift-down) with
// data-dependent branches and scattered accesses along heap paths.
func OmnetppLike() *program.Program {
	const (
		heapBase = 0x100
		maxHeap  = 256 * 1024
		initial  = 200 * 1024 // pre-filled heap entries
		ops      = 5200
	)
	p := program.New("omnetpp_like", heapBase+maxHeap+128)
	// Pre-fill a valid min-heap: an increasing sequence with jitter is
	// heap-ordered if jitter is bounded by the step; build it directly.
	r := newRNG(0x03E7)
	heap := make([]int64, initial)
	for i := range heap {
		parent := int64(0)
		if i > 0 {
			parent = heap[(i-1)/2]
		}
		heap[i] = parent + 1 + r.intn(64)
	}
	p.SetDataSlice(heapBase, heap)

	sz, op, nOps := R(1), R(2), R(3)
	idx, parent, child, sib := R(4), R(5), R(6), R(7)
	v, pv, cv, t := R(8), R(9), R(10), R(11)
	seed := R(12)

	b := p.Block("init")
	b.Li(sz, initial)
	b.Li(op, 0)
	b.Li(nOps, ops)
	b.Li(seed, 0x33551)

	b = p.Block("op")
	// Alternate: even ops insert, odd ops extract-min.
	b.Andi(t, op, 1)
	b.Bne(t, R(0), "extract")

	// --- Insert: key from a xorshift-ish register sequence. ---
	b.Shli(t, seed, 7)
	b.Xor(seed, seed, t)
	b.Shri(t, seed, 9)
	b.Xor(seed, seed, t)
	b.Andi(v, seed, 0xFFFFF)
	b.Add(idx, sz, R(0))
	b.Addi(sz, sz, 1)
	b = p.Block("sift_up")
	b.Beq(idx, R(0), "up_done")
	b.Addi(parent, idx, -1)
	b.Shri(parent, parent, 1)
	b.Ld(pv, parent, heapBase)
	b.Bge(v, pv, "up_done")
	b.St(pv, idx, heapBase)
	b.Add(idx, parent, R(0))
	b.Jmp("sift_up")
	b = p.Block("up_done")
	b.St(v, idx, heapBase)
	b.Jmp("op_latch")

	// --- Extract-min: move last to root, sift down. ---
	b = p.Block("extract")
	b.Addi(sz, sz, -1)
	b.Ld(v, sz, heapBase)
	b.Li(idx, 0)
	b = p.Block("sift_down")
	b.Shli(child, idx, 1)
	b.Addi(child, child, 1)
	b.Bge(child, sz, "down_done")
	b.Ld(cv, child, heapBase)
	b.Addi(sib, child, 1)
	b.Bge(sib, sz, "pick")
	b.Ld(t, sib, heapBase)
	b.Bge(t, cv, "pick")
	b.Add(child, sib, R(0))
	b.Add(cv, t, R(0))
	b = p.Block("pick")
	b.Bge(cv, v, "down_done")
	b.St(cv, idx, heapBase)
	b.Add(idx, child, R(0))
	b.Jmp("sift_down")
	b = p.Block("down_done")
	b.St(v, idx, heapBase)

	b = p.Block("op_latch")
	b.Addi(op, op, 1)
	b.Blt(op, nOps, "op")

	b = p.Block("done")
	b.Ld(t, R(0), heapBase)
	b.St(t, R(0), 0)
	b.Halt()
	return p
}

// SoplexLike performs sparse matrix–vector products in CSR form: per
// nonzero an index load, an indirect gather from a large dense vector,
// a value load and a multiply-accumulate. Indirect gathers dominate
// the miss profile.
func SoplexLike() *program.Program {
	const (
		rows      = 2600
		nnzPerRow = 14
		nnz       = rows * nnzPerRow
		vecLen    = 192 * 1024 // 768 KB dense vector
		colBase   = 0x100
		valBase   = colBase + nnz + 64
		vecBase   = valBase + nnz + 64
		outBase   = vecBase + vecLen + 64
	)
	p := program.New("soplex_like", outBase+rows+128)
	r := newRNG(0x50F1)
	cols := make([]int64, nnz)
	vals := make([]int64, nnz)
	for i := range cols {
		cols[i] = r.intn(vecLen)
		vals[i] = r.intn(512) - 256
	}
	p.SetDataSlice(colBase, cols)
	p.SetDataSlice(valBase, vals)
	for i := 0; i < 8192; i++ {
		p.SetData(vecBase+r.intn(vecLen), r.intn(1024)-512)
	}

	row, k, kEnd := R(1), R(2), R(3)
	col, xv, av, acc, t := R(4), R(5), R(6), R(7), R(8)
	cRows, cNnz := R(9), R(10)

	b := p.Block("init")
	b.Li(row, 0)
	b.Li(k, 0)
	b.Li(cRows, rows)
	b.Li(cNnz, nnzPerRow)

	b = p.Block("row")
	b.Add(kEnd, k, cNnz)
	b.Li(acc, 0)

	b = p.LoopBlockN("nz", "nz", 2)
	b.Ld(col, k, colBase)
	b.Ld(xv, col, vecBase)
	b.Ld(av, k, valBase)
	b.Mul(t, xv, av)
	b.Add(acc, acc, t)
	b.Addi(k, k, 1)
	b.Blt(k, kEnd, "nz")

	b = p.Block("row_store")
	b.Srai(acc, acc, 4)
	b.St(acc, row, outBase)
	b.Addi(row, row, 1)
	b.Blt(row, cRows, "row")

	b = p.Block("done")
	b.Ld(t, R(0), outBase)
	b.St(t, R(0), 0)
	b.Halt()
	return p
}
