package workloads

import (
	"repro/internal/program"
)

// Dijkstra builds single-source shortest paths over a dense random
// graph using the MiBench-style O(V^2) array scan (no priority queue):
// each step scans for the unvisited minimum-distance node, then relaxes
// its outgoing edges from an adjacency matrix. The scan and relax loops
// are dependence-limited (compare chains through loads), which is why
// the paper finds dijkstra benefits least from superscalar width.
func Dijkstra() *program.Program {
	const (
		nodes    = 96
		infinity = 1 << 30
		distBase = 0x100
		visBase  = distBase + nodes
		adjBase  = 0x1000
		sources  = 4 // repeat from several sources for dynamic length
	)
	p := program.New("dijkstra", adjBase+nodes*nodes+64)

	r := newRNG(0xD135)
	adj := make([]int64, nodes*nodes)
	for i := 0; i < nodes; i++ {
		for j := 0; j < nodes; j++ {
			if i == j {
				adj[i*nodes+j] = 0
			} else if r.intn(100) < 22 { // sparse-ish dense matrix
				adj[i*nodes+j] = 1 + r.intn(64)
			} else {
				adj[i*nodes+j] = infinity
			}
		}
	}
	p.SetDataSlice(adjBase, adj)

	src := R(1) // current source node
	i, j := R(2), R(3)
	best, bestIdx := R(4), R(5)
	dv, du := R(6), R(7)
	tmp, addr := R(8), R(9)
	nNodes, inf := R(10), R(11)
	rowPtr := R(12)
	visited, cand := R(13), R(14)
	srcEnd, iter := R(15), R(16)

	b := p.Block("init")
	b.Li(nNodes, nodes)
	b.Li(inf, infinity)
	b.Li(src, 0)
	b.Li(srcEnd, sources)

	// Reset dist[] and visited[] for this source.
	b = p.Block("reset")
	b.Li(i, 0)
	b = p.LoopBlockN("reset_loop", "reset_loop", 4)
	b.St(inf, i, distBase)
	b.St(R(0), i, visBase)
	b.Addi(i, i, 1)
	b.Blt(i, nNodes, "reset_loop")

	b = p.Block("start")
	b.St(R(0), src, distBase) // dist[src] = 0
	b.Li(iter, 0)

	// Outer loop: pick min, relax. nodes iterations.
	b = p.Block("outer")
	b.Li(best, infinity)
	b.Li(bestIdx, -1)
	b.Li(i, 0)

	// Min-scan over all nodes.
	b = p.LoopBlock("scan", "scan_latch")
	b.Ld(visited, i, visBase)
	b.Bne(visited, R(0), "scan_latch")
	b.Ld(cand, i, distBase)
	b.Bge(cand, best, "scan_latch")
	b.Add(best, cand, R(0))
	b.Add(bestIdx, i, R(0))
	b = p.Block("scan_latch")
	b.Addi(i, i, 1)
	b.Blt(i, nNodes, "scan")

	b = p.Block("check")
	b.Blt(bestIdx, R(0), "next_source") // no reachable unvisited node
	b.Li(tmp, 1)
	b.St(tmp, bestIdx, visBase) // visited[u] = 1
	b.Ld(du, bestIdx, distBase)
	b.Mul(rowPtr, bestIdx, nNodes)
	b.Addi(rowPtr, rowPtr, adjBase)
	b.Li(j, 0)

	// Relax all edges out of u.
	b = p.LoopBlock("relax", "relax_latch")
	b.Add(addr, rowPtr, j)
	b.Ld(tmp, addr, 0) // weight(u,j)
	b.Bge(tmp, inf, "relax_latch")
	b.Add(cand, du, tmp)
	b.Ld(dv, j, distBase)
	b.Bge(cand, dv, "relax_latch")
	b.St(cand, j, distBase)
	b = p.Block("relax_latch")
	b.Addi(j, j, 1)
	b.Blt(j, nNodes, "relax")

	b = p.Block("outer_latch")
	b.Addi(iter, iter, 1)
	b.Blt(iter, nNodes, "outer")

	b = p.Block("next_source")
	b.Addi(src, src, 1)
	b.Blt(src, srcEnd, "reset")

	b = p.Block("done")
	b.Ld(tmp, R(0), distBase+nodes-1)
	b.St(tmp, R(0), 0)
	b.Halt()
	return p
}

// Patricia builds a bit-trie (PATRICIA-style) over random 32-bit keys:
// repeated insert and lookup operations chase child pointers bit by
// bit. Pointer chasing makes loads the critical resource, with short
// load-use dependency distances — the behaviour the real patricia
// benchmark exhibits on routing tables.
func Patricia() *program.Program {
	const (
		maxNodes = 5000
		nodeBase = 0x2000 // node i: [key, left, right] at nodeBase+3i
		keysBase = 0x100
		numKeys  = 320
		lookups  = 3 // lookup passes over the key set
		keyBits  = 18
	)
	p := program.New("patricia", nodeBase+3*maxNodes+64)

	r := newRNG(0x9A7)
	keys := make([]int64, numKeys)
	for i := range keys {
		keys[i] = r.intn(1 << keyBits)
	}
	p.SetDataSlice(keysBase, keys)

	nextNode := R(1)
	key, ki := R(2), R(3)
	node, child := R(4), R(5)
	bitPos, bit := R(6), R(7)
	addr, tmp := R(8), R(9)
	nKeys, depthMax := R(10), R(11)
	pass, nPasses := R(12), R(13)
	nkey := R(14)
	found := R(15)

	b := p.Block("init")
	b.Li(nextNode, 1) // node 0 is the root, pre-zeroed
	b.Li(nKeys, numKeys)
	b.Li(depthMax, keyBits)
	b.Li(pass, 0)
	b.Li(nPasses, lookups)
	b.Li(ki, 0)

	// --- Insert phase: walk bits from MSB, allocate nodes on demand. ---
	b = p.LoopBlock("ins", "ins_latch")
	b.Ld(key, ki, keysBase)
	b.Li(node, 0)
	b.Li(bitPos, keyBits-1)

	b = p.Block("ins_walk")
	b.Shr(bit, key, bitPos)
	b.Andi(bit, bit, 1)
	// addr of child slot: nodeBase + 3*node + 1 + bit
	b.Shli(tmp, node, 1)
	b.Add(tmp, tmp, node) // tmp = 3*node
	b.Add(addr, tmp, bit)
	b.Ld(child, addr, nodeBase+1)
	b.Bne(child, R(0), "ins_descend")
	// Allocate a new node.
	b.Add(child, nextNode, R(0))
	b.Addi(nextNode, nextNode, 1)
	b.St(child, addr, nodeBase+1)
	b = p.Block("ins_descend")
	b.Add(node, child, R(0))
	b.Addi(bitPos, bitPos, -1)
	b.Bge(bitPos, R(0), "ins_walk")
	// Store the key at the leaf.
	b.Shli(tmp, node, 1)
	b.Add(tmp, tmp, node)
	b.St(key, tmp, nodeBase)
	b = p.Block("ins_latch")
	b.Addi(ki, ki, 1)
	b.Blt(ki, nKeys, "ins")

	// --- Lookup phase: several passes over all keys. ---
	b = p.Block("lookup_pass")
	b.Li(ki, 0)
	b.Li(found, 0)
	b = p.LoopBlock("lk", "lk_latch")
	b.Ld(key, ki, keysBase)
	b.Li(node, 0)
	b.Li(bitPos, keyBits-1)
	b = p.Block("lk_walk")
	b.Shr(bit, key, bitPos)
	b.Andi(bit, bit, 1)
	b.Shli(tmp, node, 1)
	b.Add(tmp, tmp, node)
	b.Add(addr, tmp, bit)
	b.Ld(child, addr, nodeBase+1)
	b.Beq(child, R(0), "lk_latch") // miss (never for inserted keys)
	b.Add(node, child, R(0))
	b.Addi(bitPos, bitPos, -1)
	b.Bge(bitPos, R(0), "lk_walk")
	b.Shli(tmp, node, 1)
	b.Add(tmp, tmp, node)
	b.Ld(nkey, tmp, nodeBase)
	b.Bne(nkey, key, "lk_latch")
	b.Addi(found, found, 1)
	b = p.Block("lk_latch")
	b.Addi(ki, ki, 1)
	b.Blt(ki, nKeys, "lk")

	b = p.Block("pass_latch")
	b.Addi(pass, pass, 1)
	b.Blt(pass, nPasses, "lookup_pass")

	b = p.Block("done")
	b.St(found, R(0), 0)
	b.St(nextNode, R(0), 1)
	b.Halt()
	return p
}
