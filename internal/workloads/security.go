package workloads

import (
	"repro/internal/program"
)

// Sha builds a SHA-1-style hash over a synthetic message. As in real
// SHA-1 implementations, the 80 rounds per block are split into a
// message-load loop and four 20-round loops (one per round function),
// each with a straight-line single-block body — the structure that
// makes sha the paper's high-ILP, width-loving benchmark and lets the
// compiler passes schedule and unroll it.
func Sha() *program.Program {
	const (
		numBlocks = 64
		msgBase   = 0x1000
		ringBase  = 0x10
		wordMask  = (1 << 32) - 1
	)
	p := program.New("sha", msgBase+numBlocks*16+64)

	r := newRNG(0x5AA5)
	msg := make([]int64, numBlocks*16)
	for i := range msg {
		msg[i] = int64(r.next() & wordMask)
	}
	p.SetDataSlice(msgBase, msg)

	// Register plan.
	h0, h1, h2, h3, h4 := R(1), R(2), R(3), R(4), R(5)
	ra, rb, rc, rd, re := R(6), R(7), R(8), R(9), R(10)
	w, f := R(11), R(12)
	t1, t2, t3 := R(14), R(15), R(16)
	tcnt := R(17)   // round counter t
	blk := R(18)    // current block base pointer (words)
	blkEnd := R(19) // message end
	idx, tmp := R(20), R(21)
	bound := R(22)
	kc := R(23) // round constant register

	b := p.Block("init")
	b.Li(h0, 0x67452301)
	b.Li(h1, 0xEFCDAB89)
	b.Li(h2, 0x98BADCFE)
	b.Li(h3, 0x10325476)
	b.Li(h4, 0xC3D2E1F0)
	b.Li(blk, msgBase)
	b.Li(blkEnd, msgBase+numBlocks*16)

	b = p.Block("block")
	b.Add(ra, h0, R(0))
	b.Add(rb, h1, R(0))
	b.Add(rc, h2, R(0))
	b.Add(rd, h3, R(0))
	b.Add(re, h4, R(0))

	// emitMix appends the SHA-1 state rotation for one round, assuming
	// f and w are computed and kc holds the round constant.
	emitMix := func(b *program.Builder) {
		emitRotl(b, t3, ra, 5, 32, t1, t2)
		b.Add(t3, t3, f)
		b.Add(t3, t3, re)
		b.Add(t3, t3, kc)
		b.Add(t3, t3, w)
		b.Andi(t3, t3, wordMask)
		b.Add(re, rd, R(0))
		b.Add(rd, rc, R(0))
		emitRotl(b, rc, rb, 30, 32, t1, t2)
		b.Add(rb, ra, R(0))
		b.Add(ra, t3, R(0))
	}
	// emitSchedule appends the message-schedule update:
	// w = rotl1(ring[(t-3)&15] ^ ring[(t-8)&15] ^ ring[(t-14)&15] ^ ring[t&15]).
	emitSchedule := func(b *program.Builder) {
		b.Addi(idx, tcnt, -3)
		b.Andi(idx, idx, 15)
		b.Ld(w, idx, ringBase)
		b.Addi(idx, tcnt, -8)
		b.Andi(idx, idx, 15)
		b.Ld(tmp, idx, ringBase)
		b.Xor(w, w, tmp)
		b.Addi(idx, tcnt, -14)
		b.Andi(idx, idx, 15)
		b.Ld(tmp, idx, ringBase)
		b.Xor(w, w, tmp)
		b.Andi(idx, tcnt, 15)
		b.Ld(tmp, idx, ringBase)
		b.Xor(w, w, tmp)
		emitRotl(b, w, w, 1, 32, t1, t2)
		b.Andi(idx, tcnt, 15)
		b.St(w, idx, ringBase)
	}
	emitCh := func(b *program.Builder) { // f = (b&c) | (~b&d)
		b.And(t1, rb, rc)
		b.Xori(t2, rb, wordMask)
		b.And(t2, t2, rd)
		b.Or(f, t1, t2)
	}
	emitParity := func(b *program.Builder) {
		b.Xor(f, rb, rc)
		b.Xor(f, f, rd)
	}
	emitMaj := func(b *program.Builder) { // f = (b&c) | (b&d) | (c&d)
		b.And(t1, rb, rc)
		b.And(t2, rb, rd)
		b.Or(t1, t1, t2)
		b.And(t2, rc, rd)
		b.Or(f, t1, t2)
	}

	// Rounds 0..15: w straight from the message block.
	b.Li(tcnt, 0)
	b.Li(bound, 16)
	b.Li(kc, 0x5A827999)
	b = p.LoopBlockN("r0_15", "r0_15", 4)
	b.Add(idx, blk, tcnt)
	b.Ld(w, idx, 0)
	b.Andi(tmp, tcnt, 15)
	b.St(w, tmp, ringBase)
	emitCh(b)
	emitMix(b)
	b.Addi(tcnt, tcnt, 1)
	b.Blt(tcnt, bound, "r0_15")

	// Rounds 16..19: schedule + ch.
	b = p.Block("r16_pre")
	b.Li(bound, 20)
	b = p.LoopBlockN("r16_19", "r16_19", 4)
	emitSchedule(b)
	emitCh(b)
	emitMix(b)
	b.Addi(tcnt, tcnt, 1)
	b.Blt(tcnt, bound, "r16_19")

	// Rounds 20..39: parity.
	b = p.Block("r20_pre")
	b.Li(bound, 40)
	b.Li(kc, 0x6ED9EBA1)
	b = p.LoopBlockN("r20_39", "r20_39", 4)
	emitSchedule(b)
	emitParity(b)
	emitMix(b)
	b.Addi(tcnt, tcnt, 1)
	b.Blt(tcnt, bound, "r20_39")

	// Rounds 40..59: majority.
	b = p.Block("r40_pre")
	b.Li(bound, 60)
	b.Li(kc, 0x8F1BBCDC)
	b = p.LoopBlockN("r40_59", "r40_59", 4)
	emitSchedule(b)
	emitMaj(b)
	emitMix(b)
	b.Addi(tcnt, tcnt, 1)
	b.Blt(tcnt, bound, "r40_59")

	// Rounds 60..79: parity.
	b = p.Block("r60_pre")
	b.Li(bound, 80)
	b.Li(kc, 0xCA62C1D6)
	b = p.LoopBlockN("r60_79", "r60_79", 4)
	emitSchedule(b)
	emitParity(b)
	emitMix(b)
	b.Addi(tcnt, tcnt, 1)
	b.Blt(tcnt, bound, "r60_79")

	b = p.Block("block_end")
	b.Add(h0, h0, ra)
	b.Andi(h0, h0, wordMask)
	b.Add(h1, h1, rb)
	b.Andi(h1, h1, wordMask)
	b.Add(h2, h2, rc)
	b.Andi(h2, h2, wordMask)
	b.Add(h3, h3, rd)
	b.Andi(h3, h3, wordMask)
	b.Add(h4, h4, re)
	b.Andi(h4, h4, wordMask)
	b.Addi(blk, blk, 16)
	b.Blt(blk, blkEnd, "block")

	b = p.Block("done")
	b.St(h0, R(0), 0)
	b.St(h1, R(0), 1)
	b.St(h2, R(0), 2)
	b.St(h3, R(0), 3)
	b.St(h4, R(0), 4)
	b.Halt()
	return p
}
