package workloads

import (
	"testing"

	"repro/internal/funcsim"
	"repro/internal/isa"
	"repro/internal/profile"
	"repro/internal/program"
)

func TestRegistry(t *testing.T) {
	if len(MiBench()) != 19 {
		t.Errorf("MiBench has %d kernels, want 19 (Figure 3)", len(MiBench()))
	}
	if len(SpecLike()) != 6 {
		t.Errorf("SpecLike has %d kernels, want 6", len(SpecLike()))
	}
	if len(Extended()) != 5 {
		t.Errorf("Extended has %d kernels, want 5", len(Extended()))
	}
	if len(All()) != 30 {
		t.Errorf("All has %d kernels", len(All()))
	}
	if len(Names()) != 30 {
		t.Errorf("Names has %d entries", len(Names()))
	}
	if _, err := ByName("sha"); err != nil {
		t.Errorf("ByName(sha): %v", err)
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	domains := map[string]bool{}
	for _, s := range MiBench() {
		domains[s.Domain] = true
	}
	// MiBench's six application domains must all be covered.
	for _, d := range []string{"auto", "consumer", "network", "office", "security", "telecom"} {
		if !domains[d] {
			t.Errorf("domain %q not covered", d)
		}
	}
}

// TestAllWorkloadsRunToCompletion executes every kernel and checks the
// dynamic instruction count lands in the intended simulation-friendly
// band. Out-of-range memory accesses or runaway loops fail here.
func TestAllWorkloadsRunToCompletion(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			p := spec.Build()
			m, err := funcsim.New(p)
			if err != nil {
				t.Fatal(err)
			}
			m.MaxInstructions = 5_000_000
			n, err := m.Run(nil)
			if err != nil {
				t.Fatal(err)
			}
			if n < 80_000 || n > 1_200_000 {
				t.Errorf("N = %d outside the intended band [80k, 1.2M]", n)
			}
		})
	}
}

func TestWorkloadsAreDeterministic(t *testing.T) {
	for _, name := range []string{"sha", "qsort", "adpcm_c", "soplex_like"} {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		run := func() (int64, [8]int64) {
			m := funcsim.MustNew(s.Build())
			n, err := m.Run(nil)
			if err != nil {
				t.Fatal(err)
			}
			var mem [8]int64
			copy(mem[:], m.Mem[:8])
			return n, mem
		}
		n1, m1 := run()
		n2, m2 := run()
		if n1 != n2 || m1 != m2 {
			t.Errorf("%s not deterministic", name)
		}
	}
}

// TestWorkloadCharacters pins the qualitative properties the paper's
// analysis depends on: sha is ALU-dominated with high ILP; dijkstra is
// branchy; tiff2bw is multiply-heavy; jpeg_c has divides; mcf_like is
// a load-dependent pointer chase.
func TestWorkloadCharacters(t *testing.T) {
	prof := func(name string) *profile.Profile {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		c := profile.NewCollector(name)
		if _, err := funcsim.RunProgram(s.Build(), c); err != nil {
			t.Fatal(err)
		}
		return c.Result()
	}

	sha := prof("sha")
	if sha.Mix(isa.ClassALU) < 0.60 {
		t.Errorf("sha ALU fraction %.2f, want > 0.60", sha.Mix(isa.ClassALU))
	}

	dij := prof("dijkstra")
	if dij.Mix(isa.ClassBranch) < 0.25 {
		t.Errorf("dijkstra branch fraction %.2f, want > 0.25", dij.Mix(isa.ClassBranch))
	}
	// The paper's width argument: dijkstra has shorter dependency
	// distances than sha (less ILP).
	if dij.DepsUnit.Mean() > sha.DepsUnit.Mean() {
		t.Errorf("dijkstra mean dep distance %.2f above sha's %.2f",
			dij.DepsUnit.Mean(), sha.DepsUnit.Mean())
	}

	bw := prof("tiff2bw")
	if bw.Mix(isa.ClassMul) < 0.10 {
		t.Errorf("tiff2bw multiply fraction %.2f, want > 0.10", bw.Mix(isa.ClassMul))
	}

	jc := prof("jpeg_c")
	if jc.NDiv == 0 {
		t.Error("jpeg_c has no divides")
	}

	mcf := prof("mcf_like")
	if mcf.DepsLd.Count[1] < mcf.N/10 {
		t.Errorf("mcf_like load-use deps at d=1 = %d of N=%d, want pointer-chase dominance",
			mcf.DepsLd.Count[1], mcf.N)
	}
}

func TestRRangeChecks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("R(64) did not panic")
		}
	}()
	R(64)
}

func TestRNG(t *testing.T) {
	r := newRNG(0)
	if r.s == 0 {
		t.Error("zero seed not replaced")
	}
	a := newRNG(5)
	b := newRNG(5)
	for i := 0; i < 10; i++ {
		if a.next() != b.next() {
			t.Fatal("rng not deterministic")
		}
	}
	for i := 0; i < 1000; i++ {
		v := a.intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("intn out of range: %d", v)
		}
	}
	if a.intn(0) != 0 {
		t.Error("intn(0) != 0")
	}
}

func TestEmitRotl(t *testing.T) {
	// rotl(0x80000001, 1, 32 bits) = 0x00000003.
	p := programForRotl()
	m := funcsim.MustNew(p)
	if _, err := m.Run(nil); err != nil {
		t.Fatal(err)
	}
	if got := m.Regs[2]; got != 0x3 {
		t.Errorf("rotl = %#x, want 0x3", got)
	}
}

func programForRotl() *program.Program {
	p := program.New("rotl", 16)
	b := p.Block("main")
	b.Li(1, 0x80000001)
	emitRotl(b, 2, 1, 1, 32, 3, 4)
	b.Halt()
	return p
}
