package workloads

import (
	"repro/internal/program"
)

// Extended returns five additional MiBench kernels beyond the paper's
// nineteen (MiBench itself is larger than the paper's selection): the
// automotive bitcount and basicmath kernels, the telecom crc32 and fft
// kernels and the security blowfish kernel. They widen the behavioral
// coverage of the validation suite (see the extended-validation test
// and EXPERIMENTS.md).
func Extended() []Spec {
	return []Spec{
		{"bitcount", "auto", Bitcount},
		{"basicmath", "auto", Basicmath},
		{"crc32", "telecom", CRC32},
		{"fft", "telecom", FFT},
		{"blowfish", "security", Blowfish},
	}
}

// Bitcount counts set bits in a stream of words three ways — shift
// loop, Kernighan's n&(n-1) trick and a nibble lookup table — exactly
// the structure of MiBench's bitcnts. Branch behaviour is data
// dependent in the first two methods and table-driven in the third.
func Bitcount() *program.Program {
	const (
		values  = 3600
		inBase  = 0x1000
		lutBase = 0x100 // 16-entry nibble popcount
		outBase = 0x40
	)
	p := program.New("bitcount", inBase+values+64)
	r := newRNG(0xB17C)
	in := make([]int64, values)
	for i := range in {
		in[i] = int64(r.next() & 0xFFFFFFFF)
	}
	p.SetDataSlice(inBase, in)
	p.SetDataSlice(lutBase, []int64{0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4})

	i, n := R(1), R(2)
	v, cnt, t := R(3), R(4), R(5)
	total1, total2, total3 := R(6), R(7), R(8)
	nib, k, c8 := R(9), R(10), R(11)

	b := p.Block("init")
	b.Li(i, 0)
	b.Li(n, values)
	b.Li(c8, 8)

	b = p.LoopBlock("word", "word_latch")
	b.Ld(v, i, inBase)

	// Method 1: test-and-shift over 32 bits.
	b.Li(cnt, 0)
	b.Li(k, 0)
	b = p.Block("m1")
	b.Andi(t, v, 1)
	b.Add(cnt, cnt, t)
	b.Shri(v, v, 1)
	b.Addi(k, k, 1)
	b.Bne(v, R(0), "m1")
	b.Add(total1, total1, cnt)

	// Method 2: Kernighan's clear-lowest-set-bit.
	b = p.Block("m2_init")
	b.Ld(v, i, inBase)
	b.Li(cnt, 0)
	b.Beq(v, R(0), "m2_done")
	b = p.Block("m2")
	b.Addi(t, v, -1)
	b.And(v, v, t)
	b.Addi(cnt, cnt, 1)
	b.Bne(v, R(0), "m2")
	b = p.Block("m2_done")
	b.Add(total2, total2, cnt)

	// Method 3: nibble lookup table, 8 nibbles.
	b.Ld(v, i, inBase)
	b.Li(cnt, 0)
	b.Li(k, 0)
	b = p.LoopBlockN("m3", "m3", 4)
	b.Andi(nib, v, 15)
	b.Ld(t, nib, lutBase)
	b.Add(cnt, cnt, t)
	b.Shri(v, v, 4)
	b.Addi(k, k, 1)
	b.Blt(k, c8, "m3")
	b = p.Block("m3_done")
	b.Add(total3, total3, cnt)

	b = p.Block("word_latch")
	b.Addi(i, i, 1)
	b.Blt(i, n, "word")

	b = p.Block("done")
	b.St(total1, R(0), outBase)
	b.St(total2, R(0), outBase+1)
	b.St(total3, R(0), outBase+2)
	b.Halt()
	return p
}

// Basicmath exercises MiBench basicmath's kernels in integer form:
// Newton integer square roots, greatest common divisors (divide-heavy)
// and a cubic evaluated by Horner's rule per input.
func Basicmath() *program.Program {
	const (
		values  = 2600
		inBase  = 0x1000
		outBase = 0x3000
	)
	p := program.New("basicmath", outBase+values+64)
	r := newRNG(0xBA51)
	in := make([]int64, values)
	for i := range in {
		in[i] = 1 + r.intn(1<<24)
	}
	p.SetDataSlice(inBase, in)

	i, n := R(1), R(2)
	x, g, prev, t := R(3), R(4), R(5), R(6)
	a, bb, acc := R(7), R(8), R(9)
	iter := R(10)

	b := p.Block("init")
	b.Li(i, 0)
	b.Li(n, values)

	b = p.LoopBlock("val", "val_latch")
	b.Ld(x, i, inBase)

	// Integer sqrt by Newton iteration: g = (g + x/g)/2 until stable.
	b.Srai(g, x, 12)
	b.Ori(g, g, 1) // positive start
	b.Li(iter, 0)
	b = p.Block("newton")
	b.Add(prev, g, R(0))
	b.Div(t, x, g)
	b.Add(g, g, t)
	b.Srai(g, g, 1)
	b.Addi(iter, iter, 1)
	b.Slti(t, iter, 24)
	b.Beq(t, R(0), "newton_done")
	b.Bne(g, prev, "newton")
	b = p.Block("newton_done")

	// GCD of x and a rotating partner value.
	b.Addi(a, x, 0)
	b.Addi(bb, i, 1)
	b.Shli(bb, bb, 5)
	b.Ori(bb, bb, 3)
	b = p.Block("gcd")
	b.Beq(bb, R(0), "gcd_done")
	b.Rem(t, a, bb)
	b.Add(a, bb, R(0))
	b.Add(bb, t, R(0))
	b.Jmp("gcd")
	b = p.Block("gcd_done")

	// Horner cubic: acc = ((x*3 + 7)*x - 5)*x + 11, in a bounded range.
	b.Andi(t, x, 0xFFF)
	b.Shli(acc, t, 1)
	b.Add(acc, acc, t) // 3x
	b.Addi(acc, acc, 7)
	b.Mul(acc, acc, t)
	b.Addi(acc, acc, -5)
	b.Mul(acc, acc, t)
	b.Addi(acc, acc, 11)

	b.Add(t, g, a)
	b.Add(t, t, acc)
	b.St(t, i, outBase)

	b = p.Block("val_latch")
	b.Addi(i, i, 1)
	b.Blt(i, n, "val")

	b = p.Block("done")
	b.Ld(t, R(0), outBase)
	b.St(t, R(0), 0)
	b.Halt()
	return p
}

// CRC32 computes a table-driven CRC over a byte stream: per byte one
// data load, one table load (data-dependent index), xor and shift —
// the tight serial load-use chain of the real kernel.
func CRC32() *program.Program {
	const (
		bytes_   = 36000
		tabBase  = 0x100 // 256-entry CRC table
		inBase   = 0x1000
		poly     = 0xEDB88320
		wordMask = (1 << 32) - 1
	)
	p := program.New("crc32", inBase+bytes_+64)
	// Build the standard CRC-32 table at construction time.
	tab := make([]int64, 256)
	for i := 0; i < 256; i++ {
		c := uint32(i)
		for k := 0; k < 8; k++ {
			if c&1 != 0 {
				c = (c >> 1) ^ poly
			} else {
				c >>= 1
			}
		}
		tab[i] = int64(c)
	}
	p.SetDataSlice(tabBase, tab)
	r := newRNG(0xC3C3)
	data := make([]int64, bytes_)
	for i := range data {
		data[i] = r.intn(256)
	}
	p.SetDataSlice(inBase, data)

	i, n := R(1), R(2)
	crc, by, idx, t := R(3), R(4), R(5), R(6)

	b := p.Block("init")
	b.Li(i, 0)
	b.Li(n, bytes_)
	b.Li(crc, wordMask)

	b = p.LoopBlockN("byte", "byte", 4)
	b.Ld(by, i, inBase)
	b.Xor(idx, crc, by)
	b.Andi(idx, idx, 0xFF)
	b.Ld(t, idx, tabBase)
	b.Shri(crc, crc, 8)
	b.Xor(crc, crc, t)
	b.Addi(i, i, 1)
	b.Blt(i, n, "byte")

	b = p.Block("done")
	b.Xori(crc, crc, wordMask)
	b.St(crc, R(0), 0)
	b.Halt()
	return p
}

// FFT runs an iterative radix-2 decimation-in-time integer FFT (and
// its inverse) over a synthetic signal with fixed-point twiddle
// factors: multiply-heavy butterflies with strided, power-of-two
// access patterns.
func FFT() *program.Program {
	const (
		logN   = 10
		points = 1 << logN
		reBase = 0x1000
		imBase = reBase + points
		twBase = 0x100 // cos/sin pairs per stage offset, <<12 fixed point
		rounds = 5     // forward+inverse passes for dynamic length
	)
	p := program.New("fft", imBase+points+64)
	// Bit-reversed-ready input: a couple of tones plus noise.
	r := newRNG(0xFF7A)
	re := make([]int64, points)
	for i := range re {
		re[i] = sinApprox(int64(i)*40) + sinApprox(int64(i)*170)/2 + r.intn(65) - 32
	}
	p.SetDataSlice(reBase, re)
	// Twiddle table: tw[k] = (cos, sin)(−2πk/points) for k < points/2.
	tw := make([]int64, points)
	for k := 0; k < points/2; k++ {
		angle := int64(k) * (3600 / (points / 2)) / 2 // tenth-degrees over half turn
		tw[2*k] = cosApprox(angle * 102944 / 36000)   // reuse sinApprox phase units
		tw[2*k+1] = -sinApprox(angle * 102944 / 36000)
	}
	p.SetDataSlice(twBase, tw)

	span, stagePts := R(1), R(3)
	j, k, base := R(4), R(5), R(6)
	ar, ai, br, bi := R(7), R(8), R(9), R(10)
	wr, wi, t1, t2 := R(11), R(12), R(13), R(14)
	addr, addr2, twIdx := R(15), R(16), R(17)
	round, nRounds, cPts := R(18), R(19), R(20)
	tr, ti := R(21), R(22)

	b := p.Block("init")
	b.Li(round, 0)
	b.Li(nRounds, rounds)
	b.Li(cPts, points)

	b = p.Block("round")
	b.Li(span, 1)

	// Stages: span doubles from 1 to points/2.
	b = p.Block("stage")
	b.Shli(stagePts, span, 1) // group size
	b.Li(base, 0)

	b = p.Block("group")
	b.Li(j, 0)
	b = p.Block("bfly")
	// a = (base+j), b = (base+j+span)
	b.Add(k, base, j)
	b.Add(addr, k, R(0))
	b.Add(addr2, k, span)
	b.Ld(ar, addr, reBase)
	b.Ld(ai, addr, imBase)
	b.Ld(br, addr2, reBase)
	b.Ld(bi, addr2, imBase)
	// twiddle index: j * (points/2) / span
	b.Li(t1, points/2)
	b.Mul(twIdx, j, t1)
	b.Div(twIdx, twIdx, span)
	b.Shli(twIdx, twIdx, 1)
	b.Ld(wr, twIdx, twBase)
	b.Ld(wi, twIdx, twBase+1)
	// t = w * b (complex, <<12 fixed point)
	b.Mul(t1, br, wr)
	b.Mul(t2, bi, wi)
	b.Sub(tr, t1, t2)
	b.Srai(tr, tr, 12)
	b.Mul(t1, br, wi)
	b.Mul(t2, bi, wr)
	b.Add(ti, t1, t2)
	b.Srai(ti, ti, 12)
	// butterfly outputs (scaled to avoid overflow growth)
	b.Add(t1, ar, tr)
	b.Srai(t1, t1, 1)
	b.St(t1, addr, reBase)
	b.Add(t1, ai, ti)
	b.Srai(t1, t1, 1)
	b.St(t1, addr, imBase)
	b.Sub(t1, ar, tr)
	b.Srai(t1, t1, 1)
	b.St(t1, addr2, reBase)
	b.Sub(t1, ai, ti)
	b.Srai(t1, t1, 1)
	b.St(t1, addr2, imBase)
	b.Addi(j, j, 1)
	b.Blt(j, span, "bfly")

	b = p.Block("group_latch")
	b.Add(base, base, stagePts)
	b.Blt(base, cPts, "group")

	b = p.Block("stage_latch")
	b.Shli(span, span, 1)
	b.Li(t1, points)
	b.Blt(span, t1, "stage")

	b = p.Block("round_latch")
	b.Addi(round, round, 1)
	b.Blt(round, nRounds, "round")

	b = p.Block("done")
	b.Ld(t1, R(0), reBase)
	b.St(t1, R(0), 0)
	b.Halt()
	return p
}

// sinApprox is a crude fixed-point sine used only for synthetic data:
// phase in arbitrary units, result in [-1024, 1024].
func sinApprox(phase int64) int64 {
	p := phase % 4096
	if p < 0 {
		p += 4096
	}
	// Triangle approximation of sine.
	switch {
	case p < 1024:
		return p
	case p < 3072:
		return 2048 - p
	default:
		return p - 4096
	}
}

func cosApprox(phase int64) int64 { return sinApprox(phase + 1024) }

// Blowfish runs a Feistel cipher with four 256-entry S-boxes and an
// 18-entry P-array, structurally faithful to MiBench's blowfish: per
// block sixteen rounds of S-box gathers, adds and xors.
func Blowfish() *program.Program {
	const (
		blocks  = 1100
		sBase   = 0x100  // 4 * 256 S-box entries
		pBase   = 0x600  // 18 P entries
		inBase  = 0x1000 // block pairs (xl, xr)
		outBase = inBase + 2*blocks
		mask32  = (1 << 32) - 1
	)
	p := program.New("blowfish", outBase+2*blocks+64)
	r := newRNG(0xB70F)
	sbox := make([]int64, 4*256)
	for i := range sbox {
		sbox[i] = int64(r.next() & mask32)
	}
	p.SetDataSlice(sBase, sbox)
	parr := make([]int64, 18)
	for i := range parr {
		parr[i] = int64(r.next() & mask32)
	}
	p.SetDataSlice(pBase, parr)
	data := make([]int64, 2*blocks)
	for i := range data {
		data[i] = int64(r.next() & mask32)
	}
	p.SetDataSlice(inBase, data)

	blk, nBlk := R(1), R(2)
	xl, xr, f, t := R(3), R(4), R(5), R(6)
	a, bb, c, d := R(7), R(8), R(9), R(10)
	rnd, c16, pv, addr := R(11), R(12), R(13), R(14)

	b := p.Block("init")
	b.Li(blk, 0)
	b.Li(nBlk, blocks)
	b.Li(c16, 16)

	b = p.LoopBlock("block", "block_latch")
	b.Shli(addr, blk, 1)
	b.Ld(xl, addr, inBase)
	b.Ld(xr, addr, inBase+1)
	b.Li(rnd, 0)

	b = p.LoopBlockN("round", "round", 4)
	b.Ld(pv, rnd, pBase)
	b.Xor(xl, xl, pv)
	b.Andi(xl, xl, mask32)
	// F(xl) = ((S0[a] + S1[b]) ^ S2[c]) + S3[d]
	b.Shri(a, xl, 24)
	b.Andi(a, a, 0xFF)
	b.Shri(bb, xl, 16)
	b.Andi(bb, bb, 0xFF)
	b.Shri(c, xl, 8)
	b.Andi(c, c, 0xFF)
	b.Andi(d, xl, 0xFF)
	b.Ld(f, a, sBase)
	b.Ld(t, bb, sBase+256)
	b.Add(f, f, t)
	b.Ld(t, c, sBase+512)
	b.Xor(f, f, t)
	b.Ld(t, d, sBase+768)
	b.Add(f, f, t)
	b.Andi(f, f, mask32)
	b.Xor(xr, xr, f)
	// swap halves
	b.Add(t, xl, R(0))
	b.Add(xl, xr, R(0))
	b.Add(xr, t, R(0))
	b.Addi(rnd, rnd, 1)
	b.Blt(rnd, c16, "round")

	b = p.Block("final")
	b.Ld(pv, R(0), pBase+16)
	b.Xor(xr, xr, pv)
	b.Ld(pv, R(0), pBase+17)
	b.Xor(xl, xl, pv)
	b.Andi(xl, xl, mask32)
	b.Andi(xr, xr, mask32)
	b.Shli(addr, blk, 1)
	b.St(xl, addr, outBase)
	b.St(xr, addr, outBase+1)

	b = p.Block("block_latch")
	b.Addi(blk, blk, 1)
	b.Blt(blk, nBlk, "block")

	b = p.Block("done")
	b.Ld(t, R(0), outBase)
	b.St(t, R(0), 0)
	b.Halt()
	return p
}
