package workloads

import (
	"repro/internal/program"
)

// dctCoef returns an 8x8 integer cosine-transform coefficient table
// (scaled to [-64,64]); a fixed-point approximation of the JPEG DCT
// basis, computed without floating point to stay deterministic.
func dctCoef() []int64 {
	// round(64*cos((2x+1)u*pi/16)) precomputed.
	cos := [8][8]int64{
		{64, 64, 64, 64, 64, 64, 64, 64},
		{63, 53, 36, 13, -13, -36, -53, -63},
		{59, 25, -25, -59, -59, -25, 25, 59},
		{53, -13, -63, -36, 36, 63, 13, -53},
		{45, -45, -45, 45, 45, -45, -45, 45},
		{36, -63, 13, 53, -53, -13, 63, -36},
		{25, -59, 59, -25, -25, 59, -59, 25},
		{13, -36, 53, -63, 63, -53, 36, -13},
	}
	out := make([]int64, 64)
	for u := 0; u < 8; u++ {
		for x := 0; x < 8; x++ {
			out[u*8+x] = cos[u][x]
		}
	}
	return out
}

// jpegQuant returns a luminance-like quantization table (entries ≥ 1).
func jpegQuant() []int64 {
	q := []int64{
		16, 11, 10, 16, 24, 40, 51, 61,
		12, 12, 14, 19, 26, 58, 60, 55,
		14, 13, 16, 24, 40, 57, 69, 56,
		14, 17, 22, 29, 51, 87, 80, 62,
		18, 22, 37, 56, 68, 109, 103, 77,
		24, 35, 55, 64, 81, 104, 113, 92,
		49, 64, 78, 87, 103, 121, 120, 101,
		72, 92, 95, 98, 112, 100, 103, 99,
	}
	return q
}

// JpegC builds a JPEG-style encoder kernel: per 8x8 block, a separable
// integer DCT (matrix form) followed by quantization with integer
// divides. The divides make it one of the divide-heaviest kernels, and
// the multiply-accumulate inner loops carry short dependency chains.
func JpegC() *program.Program {
	const (
		blocks    = 34
		imgBase   = 0x4000
		outBase   = imgBase + blocks*64
		tmpBase   = 0x80
		coefBase  = 0x100
		quantBase = 0x180
	)
	p := program.New("jpeg_c", outBase+blocks*64+64)
	r := newRNG(0x01C1)
	img := make([]int64, blocks*64)
	for i := range img {
		img[i] = r.intn(256) - 128
	}
	p.SetDataSlice(imgBase, img)
	p.SetDataSlice(coefBase, dctCoef())
	p.SetDataSlice(quantBase, jpegQuant())

	blk, row, u, x := R(1), R(2), R(3), R(4)
	acc, addr, v, cf := R(5), R(6), R(7), R(8)
	inPtr, qv, t := R(9), R(10), R(11)
	c8, cBlocks := R(12), R(13)
	rowOff, uOff := R(14), R(15)
	col := R(16)

	b := p.Block("init")
	b.Li(blk, 0)
	b.Li(c8, 8)
	b.Li(cBlocks, blocks)

	b = p.Block("block")
	b.Shli(inPtr, blk, 6)
	b.Addi(inPtr, inPtr, imgBase)
	b.Li(row, 0)

	// --- Row pass: tmp[row*8+u] = sum_x img[row*8+x]*coef[u*8+x] >> 6 ---
	b = p.Block("rp_row")
	b.Shli(rowOff, row, 3)
	b.Li(u, 0)
	b = p.Block("rp_u")
	b.Li(acc, 0)
	b.Shli(uOff, u, 3)
	b.Li(x, 0)
	b = p.LoopBlockN("rp_x", "rp_x", 4)
	b.Add(addr, rowOff, x)
	b.Add(addr, addr, inPtr)
	b.Ld(v, addr, 0)
	b.Add(addr, uOff, x)
	b.Ld(cf, addr, coefBase)
	b.Mul(t, v, cf)
	b.Add(acc, acc, t)
	b.Addi(x, x, 1)
	b.Blt(x, c8, "rp_x")
	b = p.Block("rp_store")
	b.Srai(acc, acc, 6)
	b.Add(addr, rowOff, u)
	b.St(acc, addr, tmpBase)
	b.Addi(u, u, 1)
	b.Blt(u, c8, "rp_u")
	b.Addi(row, row, 1)
	b.Blt(row, c8, "rp_row")

	// --- Column pass + quantization ---
	b = p.Block("cp_init")
	b.Li(col, 0)
	b = p.Block("cp_col")
	b.Li(u, 0)
	b = p.Block("cp_u")
	b.Li(acc, 0)
	b.Shli(uOff, u, 3)
	b.Li(x, 0)
	b = p.LoopBlockN("cp_x", "cp_x", 4)
	b.Shli(addr, x, 3)
	b.Add(addr, addr, col)
	b.Ld(v, addr, tmpBase)
	b.Add(addr, uOff, x)
	b.Ld(cf, addr, coefBase)
	b.Mul(t, v, cf)
	b.Add(acc, acc, t)
	b.Addi(x, x, 1)
	b.Blt(x, c8, "cp_x")
	b = p.Block("cp_quant")
	b.Srai(acc, acc, 6)
	b.Add(addr, uOff, col)
	b.Ld(qv, addr, quantBase)
	b.Div(acc, acc, qv)
	b.Shli(t, blk, 6)
	b.Add(t, t, addr)
	b.St(acc, t, outBase)
	b.Addi(u, u, 1)
	b.Blt(u, c8, "cp_u")
	b.Addi(col, col, 1)
	b.Blt(col, c8, "cp_col")

	b = p.Block("blk_latch")
	b.Addi(blk, blk, 1)
	b.Blt(blk, cBlocks, "block")

	b = p.Block("done")
	b.Ld(t, R(0), outBase)
	b.St(t, R(0), 0)
	b.Halt()
	return p
}

// JpegD builds the matching JPEG-style decoder: dequantization with
// multiplies followed by the inverse transform. Multiply-heavy without
// the divides of the encoder.
func JpegD() *program.Program {
	const (
		blocks    = 26
		inBase    = 0x4000
		outBase   = inBase + blocks*64
		tmpBase   = 0x80
		coefBase  = 0x100
		quantBase = 0x180
	)
	p := program.New("jpeg_d", outBase+blocks*64+64)
	r := newRNG(0x01D2)
	coded := make([]int64, blocks*64)
	for i := range coded {
		coded[i] = r.intn(33) - 16
	}
	p.SetDataSlice(inBase, coded)
	p.SetDataSlice(coefBase, dctCoef())
	p.SetDataSlice(quantBase, jpegQuant())

	blk, row, u, x := R(1), R(2), R(3), R(4)
	acc, addr, v, cf := R(5), R(6), R(7), R(8)
	inPtr, qv, t := R(9), R(10), R(11)
	c8, cBlocks := R(12), R(13)
	rowOff := R(14)
	_ = rowOff
	col := R(16)

	b := p.Block("init")
	b.Li(blk, 0)
	b.Li(c8, 8)
	b.Li(cBlocks, blocks)

	b = p.Block("block")
	b.Shli(inPtr, blk, 6)
	b.Addi(inPtr, inPtr, inBase)
	b.Li(row, 0)

	// Dequantize + inverse row transform:
	// tmp[row*8+x] = sum_u (in[row*8+u]*quant[row*8+u]) * coef[u*8+x] >> 6
	b = p.Block("rp_row")
	b.Shli(rowOff, row, 3)
	b.Li(x, 0)
	b = p.Block("rp_x")
	b.Li(acc, 0)
	b.Li(u, 0)
	b = p.LoopBlockN("rp_u", "rp_u", 4)
	b.Add(addr, rowOff, u)
	b.Add(t, addr, inPtr)
	b.Ld(v, t, 0) // in[blk*64 + row*8 + u]
	b.Ld(qv, addr, quantBase)
	b.Mul(v, v, qv)
	b.Shli(t, u, 3)
	b.Add(t, t, x)
	b.Ld(cf, t, coefBase)
	b.Mul(t, v, cf)
	b.Add(acc, acc, t)
	b.Addi(u, u, 1)
	b.Blt(u, c8, "rp_u")
	b = p.Block("rp_store")
	b.Srai(acc, acc, 8)
	b.Add(addr, rowOff, x)
	b.St(acc, addr, tmpBase)
	b.Addi(x, x, 1)
	b.Blt(x, c8, "rp_x")
	b.Addi(row, row, 1)
	b.Blt(row, c8, "rp_row")

	// Inverse column transform: out[x*8+col] = sum_u tmp[u*8+col]*coef[u*8+x] >> 6
	b = p.Block("cp_init")
	b.Li(col, 0)
	b = p.Block("cp_col")
	b.Li(x, 0)
	b = p.Block("cp_x")
	b.Li(acc, 0)
	b.Li(u, 0)
	b = p.LoopBlockN("cp_u", "cp_u", 4)
	b.Shli(addr, u, 3)
	b.Add(addr, addr, col)
	b.Ld(v, addr, tmpBase)
	b.Shli(t, u, 3)
	b.Add(t, t, x)
	b.Ld(cf, t, coefBase)
	b.Mul(t, v, cf)
	b.Add(acc, acc, t)
	b.Addi(u, u, 1)
	b.Blt(u, c8, "cp_u")
	b = p.Block("cp_store")
	b.Srai(acc, acc, 6)
	b.Shli(addr, x, 3)
	b.Add(addr, addr, col)
	b.Shli(t, blk, 6)
	b.Add(t, t, addr)
	b.St(acc, t, outBase)
	b.Addi(x, x, 1)
	b.Blt(x, c8, "cp_x")
	b.Addi(col, col, 1)
	b.Blt(col, c8, "cp_col")

	b = p.Block("blk_latch")
	b.Addi(blk, blk, 1)
	b.Blt(blk, cBlocks, "block")

	b = p.Block("done")
	b.Ld(t, R(0), outBase)
	b.St(t, R(0), 0)
	b.Halt()
	return p
}

// Lame builds an MP3-encoder-style polyphase subband filter: for every
// frame, each of 32 subbands accumulates a 64-tap windowed
// multiply-accumulate over the sample history. Long MAC loops with a
// serial accumulator chain, as in the real lame filterbank.
func Lame() *program.Program {
	const (
		frames   = 16
		taps     = 64
		subbands = 32
		xBase    = 0x2000 // samples
		hBase    = 0x200  // 32*64 window coefficients
		outBase  = 0x6000
		nSamples = frames*subbands + taps
	)
	p := program.New("lame", outBase+frames*subbands+64)
	r := newRNG(0x1A3E)
	x := make([]int64, nSamples)
	for i := range x {
		x[i] = r.intn(2048) - 1024
	}
	h := make([]int64, subbands*taps)
	for i := range h {
		h[i] = r.intn(128) - 64
	}
	p.SetDataSlice(xBase, x)
	p.SetDataSlice(hBase, h)

	frame, sb, k := R(1), R(2), R(3)
	acc, addr, v, cf := R(4), R(5), R(6), R(7)
	xPtr, hPtr, t := R(8), R(9), R(10)
	cTaps, cSub, cFrames := R(11), R(12), R(13)
	outIdx := R(14)

	b := p.Block("init")
	b.Li(frame, 0)
	b.Li(cTaps, taps)
	b.Li(cSub, subbands)
	b.Li(cFrames, frames)
	b.Li(outIdx, 0)

	b = p.Block("frame")
	b.Shli(xPtr, frame, 5) // frame*32
	b.Addi(xPtr, xPtr, xBase)
	b.Li(sb, 0)

	b = p.Block("subband")
	b.Shli(hPtr, sb, 6) // sb*64
	b.Addi(hPtr, hPtr, hBase)
	b.Li(acc, 0)
	b.Li(k, 0)

	b = p.LoopBlockN("mac", "mac", 4)
	b.Add(addr, xPtr, k)
	b.Ld(v, addr, 0)
	b.Add(addr, hPtr, k)
	b.Ld(cf, addr, 0)
	b.Mul(t, v, cf)
	b.Add(acc, acc, t)
	b.Addi(k, k, 1)
	b.Blt(k, cTaps, "mac")

	b = p.Block("sb_store")
	b.Srai(acc, acc, 8)
	b.St(acc, outIdx, outBase)
	b.Addi(outIdx, outIdx, 1)
	b.Addi(sb, sb, 1)
	b.Blt(sb, cSub, "subband")

	b = p.Block("frame_latch")
	b.Addi(frame, frame, 1)
	b.Blt(frame, cFrames, "frame")

	b = p.Block("done")
	b.Ld(t, R(0), outBase)
	b.St(t, R(0), 0)
	b.Halt()
	return p
}

// Tiff2BW converts an RGB image to grayscale with the ITU weighting
// gray = (77r + 151g + 28b) >> 8: a streaming loop whose three
// multiplies per pixel give it the paper's largest mul/div component.
func Tiff2BW() *program.Program {
	const (
		pixels = 17000
		rBase  = 0x1000
		gBase  = rBase + pixels
		bBase  = gBase + pixels
		oBase  = bBase + pixels
	)
	p := program.New("tiff2bw", oBase+pixels+64)
	r := newRNG(0x2B30)
	for _, base := range []int64{rBase, gBase, bBase} {
		ch := make([]int64, pixels)
		for i := range ch {
			ch[i] = r.intn(256)
		}
		p.SetDataSlice(base, ch)
	}

	i, n := R(1), R(2)
	rv, gv, bv := R(3), R(4), R(5)
	t1, t2, t3 := R(6), R(7), R(8)
	w1, w2, w3 := R(9), R(10), R(11)

	b := p.Block("init")
	b.Li(i, 0)
	b.Li(n, pixels)
	b.Li(w1, 77)
	b.Li(w2, 151)
	b.Li(w3, 28)

	b = p.LoopBlockN("px", "px", 4)
	b.Ld(rv, i, rBase)
	b.Ld(gv, i, gBase)
	b.Ld(bv, i, bBase)
	b.Mul(t1, rv, w1)
	b.Mul(t2, gv, w2)
	b.Mul(t3, bv, w3)
	b.Add(t1, t1, t2)
	b.Add(t1, t1, t3)
	b.Shri(t1, t1, 8)
	b.St(t1, i, oBase)
	b.Addi(i, i, 1)
	b.Blt(i, n, "px")

	b = p.Block("done")
	b.Ld(t1, R(0), oBase)
	b.St(t1, R(0), 0)
	b.Halt()
	return p
}

// Tiff2RGBA expands a palette image to packed RGBA: per pixel a palette
// load (data-dependent address), channel unpacking with shifts/masks,
// and repacking. Load-use chains dominate.
func Tiff2RGBA() *program.Program {
	const (
		pixels  = 15000
		palBase = 0x100
		inBase  = 0x1000
		outBase = inBase + pixels
	)
	p := program.New("tiff2rgba", outBase+pixels+64)
	r := newRNG(0x2BA4)
	pal := make([]int64, 256)
	for i := range pal {
		pal[i] = r.intn(1 << 24)
	}
	img := make([]int64, pixels)
	for i := range img {
		img[i] = r.intn(256)
	}
	p.SetDataSlice(palBase, pal)
	p.SetDataSlice(inBase, img)

	i, n := R(1), R(2)
	idx, pv := R(3), R(4)
	rv, gv, bv := R(5), R(6), R(7)
	packed, t := R(8), R(9)

	b := p.Block("init")
	b.Li(i, 0)
	b.Li(n, pixels)

	b = p.LoopBlock("px", "px")
	b.Ld(idx, i, inBase)
	b.Ld(pv, idx, palBase)
	b.Andi(rv, pv, 0xFF)
	b.Shri(gv, pv, 8)
	b.Andi(gv, gv, 0xFF)
	b.Shri(bv, pv, 16)
	b.Andi(bv, bv, 0xFF)
	b.Shli(packed, bv, 8)
	b.Or(packed, packed, gv)
	b.Shli(packed, packed, 8)
	b.Or(packed, packed, rv)
	b.Ori(packed, packed, 0xFF<<24) // alpha
	b.St(packed, i, outBase)
	b.Addi(t, idx, 0) // keep idx live into next iteration (palette reuse)
	b.Addi(i, i, 1)
	b.Blt(i, n, "px")

	b = p.Block("done")
	b.Ld(t, R(0), outBase)
	b.St(t, R(0), 0)
	b.Halt()
	return p
}

// TiffDither implements Floyd–Steinberg error-diffusion dithering: per
// pixel, a threshold decision and error propagation to three neighbors.
// The error accumulator forms a serial dependence chain through every
// pixel — the benchmark whose dependency stalls the paper highlights.
func TiffDither() *program.Program {
	const (
		width   = 120
		height  = 78
		imgBase = 0x1000
		errBase = 0x200 // next-row error buffer, width+2 entries
		outBase = imgBase + width*height
	)
	p := program.New("tiffdither", outBase+width*height+64)
	r := newRNG(0x2D17)
	img := make([]int64, width*height)
	for i := range img {
		img[i] = r.intn(256)
	}
	p.SetDataSlice(imgBase, img)

	x, y := R(1), R(2)
	pix, old, newv, errv := R(3), R(4), R(5), R(6)
	carry := R(7) // 7/16 of the previous pixel's error, within the row
	addr, t, t2 := R(8), R(9), R(10)
	cw, ch, c255, c128 := R(11), R(12), R(13), R(14)
	rowPtr := R(15)

	b := p.Block("init")
	b.Li(y, 0)
	b.Li(cw, width)
	b.Li(ch, height)
	b.Li(c255, 255)
	b.Li(c128, 128)

	b = p.Block("row")
	b.Mul(rowPtr, y, cw)
	b.Li(x, 0)
	b.Li(carry, 0)

	b = p.LoopBlock("px", "px_latch")
	b.Add(addr, rowPtr, x)
	b.Ld(pix, addr, imgBase)
	// old = pix + carry + nextRowErr[x+1]
	b.Ld(t, x, errBase+1)
	b.Add(old, pix, carry)
	b.Add(old, old, t)
	b.St(R(0), x, errBase+1) // consume the stored error
	b.Blt(old, c128, "px_black")
	b.Add(newv, c255, R(0))
	b.Jmp("px_err")
	b = p.Block("px_black")
	b.Li(newv, 0)
	b = p.Block("px_err")
	b.Sub(errv, old, newv)
	b.Add(addr, rowPtr, x)
	b.St(newv, addr, outBase)
	// carry = 7*err/16 to the right neighbor
	b.Shli(t, errv, 3)
	b.Sub(t, t, errv) // 7*err
	b.Srai(carry, t, 4)
	// nextRow[x] += 3*err/16 ; nextRow[x+1] += 5*err/16 ; nextRow[x+2] += err/16
	b.Shli(t, errv, 1)
	b.Add(t, t, errv) // 3*err
	b.Srai(t, t, 4)
	b.Ld(t2, x, errBase)
	b.Add(t2, t2, t)
	b.St(t2, x, errBase)
	b.Shli(t, errv, 2)
	b.Add(t, t, errv) // 5*err
	b.Srai(t, t, 4)
	b.Ld(t2, x, errBase+1)
	b.Add(t2, t2, t)
	b.St(t2, x, errBase+1)
	b.Srai(t, errv, 4)
	b.Ld(t2, x, errBase+2)
	b.Add(t2, t2, t)
	b.St(t2, x, errBase+2)
	b = p.Block("px_latch")
	b.Addi(x, x, 1)
	b.Blt(x, cw, "px")

	b = p.Block("row_latch")
	b.Addi(y, y, 1)
	b.Blt(y, ch, "row")

	b = p.Block("done")
	b.Ld(t, R(0), outBase)
	b.St(t, R(0), 0)
	b.Halt()
	return p
}

// TiffMedian builds the histogram phase of median-cut color reduction:
// a bucket histogram over the image (read-modify-write chains through
// memory), a prefix scan to find cut points, and a remap pass through
// a lookup table.
func TiffMedian() *program.Program {
	const (
		pixels   = 11000
		buckets  = 64
		imgBase  = 0x1000
		histBase = 0x100
		lutBase  = 0x200
		outBase  = imgBase + pixels
	)
	p := program.New("tiffmedian", outBase+pixels+64)
	r := newRNG(0x2E0D)
	img := make([]int64, pixels)
	for i := range img {
		// Clustered color distribution, as photographic images have.
		c := r.intn(4) * 64
		img[i] = c + r.intn(64)
	}
	p.SetDataSlice(imgBase, img)

	i, n := R(1), R(2)
	v, bkt, h := R(3), R(4), R(5)
	acc, half, cut := R(6), R(7), R(8)
	t, nb := R(9), R(10)

	b := p.Block("init")
	b.Li(i, 0)
	b.Li(n, pixels)
	b.Li(nb, buckets)

	// Histogram pass: hist[v>>2]++.
	b = p.LoopBlockN("hist", "hist", 4)
	b.Ld(v, i, imgBase)
	b.Shri(bkt, v, 2)
	b.Ld(h, bkt, histBase)
	b.Addi(h, h, 1)
	b.St(h, bkt, histBase)
	b.Addi(i, i, 1)
	b.Blt(i, n, "hist")

	// Prefix scan to the median bucket.
	b = p.Block("scan_init")
	b.Li(acc, 0)
	b.Li(cut, 0)
	b.Li(half, pixels/2)
	b.Li(i, 0)
	b = p.LoopBlock("scan", "scan_latch")
	b.Ld(h, i, histBase)
	b.Add(acc, acc, h)
	b.Bge(acc, half, "scan_done")
	b.Addi(cut, cut, 1)
	b = p.Block("scan_latch")
	b.Addi(i, i, 1)
	b.Blt(i, nb, "scan")
	b = p.Block("scan_done")

	// Build the remap LUT: bucket -> 0 or 255 around the cut.
	b.Li(i, 0)
	b = p.LoopBlock("lut", "lut_latch")
	b.Blt(i, cut, "lut_low")
	b.Li(t, 255)
	b.St(t, i, lutBase)
	b.Jmp("lut_latch")
	b = p.Block("lut_low")
	b.St(R(0), i, lutBase)
	b = p.Block("lut_latch")
	b.Addi(i, i, 1)
	b.Blt(i, nb, "lut")

	// Remap pass.
	b = p.Block("remap_init")
	b.Li(i, 0)
	b = p.LoopBlockN("remap", "remap", 4)
	b.Ld(v, i, imgBase)
	b.Shri(bkt, v, 2)
	b.Ld(t, bkt, lutBase)
	b.St(t, i, outBase)
	b.Addi(i, i, 1)
	b.Blt(i, n, "remap")

	b = p.Block("done")
	b.Ld(t, R(0), outBase)
	b.St(t, R(0), 0)
	b.Halt()
	return p
}
