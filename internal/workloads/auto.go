package workloads

import (
	"repro/internal/program"
)

// Qsort builds the MiBench qsort workload: an iterative quicksort with
// an explicit stack and an insertion-sort cutoff for small partitions,
// over an array of pseudo-random keys. Partition loops are branchy
// with load-compare-store chains.
func Qsort() *program.Program {
	const (
		elems     = 2200
		arrBase   = 0x1000
		stackBase = 0x100 // pairs (lo, hi)
		cutoff    = 8
	)
	p := program.New("qsort", arrBase+elems+256)
	r := newRNG(0x9507)
	arr := make([]int64, elems)
	for i := range arr {
		arr[i] = r.intn(1 << 20)
	}
	p.SetDataSlice(arrBase, arr)

	lo, hi, sp := R(1), R(2), R(3)
	i, j, pivot := R(4), R(5), R(6)
	vi, vj, t := R(7), R(8), R(9)
	addr, addr2 := R(10), R(11)
	mid, span := R(12), R(13)
	cCut := R(14)
	key := R(15)

	b := p.Block("init")
	b.Li(sp, stackBase)
	b.Li(lo, 0)
	b.Li(hi, elems-1)
	b.Li(cCut, cutoff)
	// push initial range
	b.St(lo, sp, 0)
	b.St(hi, sp, 1)
	b.Addi(sp, sp, 2)

	b = p.Block("pop")
	b.Li(t, stackBase)
	b.Bge(t, sp, "isort_all") // stack empty -> finish with insertion pass
	b.Addi(sp, sp, -2)
	b.Ld(lo, sp, 0)
	b.Ld(hi, sp, 1)

	b = p.Block("check")
	b.Sub(span, hi, lo)
	b.Blt(span, cCut, "pop") // small partition left for insertion sort

	// Median-of-ends pivot: pivot = arr[(lo+hi)/2].
	b = p.Block("partition")
	b.Add(mid, lo, hi)
	b.Shri(mid, mid, 1)
	b.Ld(pivot, mid, arrBase)
	b.Add(i, lo, R(0))
	b.Add(j, hi, R(0))

	b = p.Block("part_loop")
	b = p.LoopBlock("scan_i", "scan_i")
	b.Ld(vi, i, arrBase)
	b.Bge(vi, pivot, "scan_j")
	b.Addi(i, i, 1)
	b.Jmp("scan_i")
	b = p.Block("scan_j")
	b.Ld(vj, j, arrBase)
	b.Bge(pivot, vj, "maybe_swap")
	b.Addi(j, j, -1)
	b.Jmp("scan_j")
	b = p.Block("maybe_swap")
	b.Blt(j, i, "part_done")
	b.Add(addr, i, R(0))
	b.Add(addr2, j, R(0))
	b.St(vj, addr, arrBase)
	b.St(vi, addr2, arrBase)
	b.Addi(i, i, 1)
	b.Addi(j, j, -1)
	b.Blt(i, j, "part_loop")
	b.Beq(i, j, "part_loop")

	b = p.Block("part_done")
	// push (lo, j) and (i, hi) when non-trivial
	b.Bge(lo, j, "push_right")
	b.St(lo, sp, 0)
	b.St(j, sp, 1)
	b.Addi(sp, sp, 2)
	b = p.Block("push_right")
	b.Bge(i, hi, "pop")
	b.St(i, sp, 0)
	b.St(hi, sp, 1)
	b.Addi(sp, sp, 2)
	b.Jmp("pop")

	// Final insertion sort over the whole nearly-sorted array.
	b = p.Block("isort_all")
	b.Li(i, 1)
	b = p.Block("isort")
	b.Ld(key, i, arrBase)
	b.Add(j, i, R(0))
	b = p.Block("isort_shift")
	b.Addi(t, j, -1)
	b.Blt(t, R(0), "isort_place")
	b.Ld(vj, t, arrBase)
	b.Bge(key, vj, "isort_place")
	b.St(vj, j, arrBase)
	b.Addi(j, j, -1)
	b.Bne(j, R(0), "isort_shift")
	b = p.Block("isort_place")
	b.St(key, j, arrBase)
	b.Addi(i, i, 1)
	b.Li(t, elems)
	b.Blt(i, t, "isort")

	b = p.Block("done")
	b.Ld(t, R(0), arrBase)
	b.St(t, R(0), 0)
	b.Halt()
	return p
}

// susanImage synthesizes a grayscale test image with smooth gradients,
// blobs and edges, so thresholded neighborhood comparisons behave like
// they do on real images rather than on noise.
func susanImage(w, h int, seed uint64) []int64 {
	r := newRNG(seed)
	img := make([]int64, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := int64((x*3 + y*2) % 256)
			// rectangular bright blobs
			if (x/17+y/13)%3 == 0 {
				v += 90
			}
			v += r.intn(17) - 8
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			img[y*w+x] = v
		}
	}
	return img
}

// SusanC builds the SUSAN corner detector: per pixel, compare the 3x3
// neighborhood brightness against the nucleus with a threshold, count
// the "univalue" area and flag corners below a geometric threshold.
// Dominated by loads, subtractions and data-dependent branches.
func SusanC() *program.Program {
	return susanKernel("susan_c", 72, 52, 0x5CC1, 20, 3, true)
}

// SusanE builds the SUSAN edge detector: same USAN area computation
// with the edge threshold (half the maximum area).
func SusanE() *program.Program {
	return susanKernel("susan_e", 72, 52, 0x5CE2, 28, 5, false)
}

func susanKernel(name string, width, height int, seed uint64, thresh, geom int64, corner bool) *program.Program {
	const (
		imgBase = 0x1000
	)
	outBase := int64(imgBase + width*height)
	p := program.New(name, outBase+int64(width*height)+64)
	p.SetDataSlice(imgBase, susanImage(width, height, seed))

	x, y := R(1), R(2)
	nuc, nb, diff, area := R(3), R(4), R(5), R(6)
	addr, t := R(7), R(8)
	cw, chg := R(9), R(10)
	cth, cgeom := R(11), R(12)
	rowPtr, res := R(13), R(14)
	dx, dy := R(15), R(16)
	cm1, c2 := R(17), R(18)

	b := p.Block("init")
	b.Li(y, 1)
	b.Li(cw, int64(width))
	b.Li(chg, int64(height-1))
	b.Li(cth, thresh)
	b.Li(cgeom, geom)
	b.Li(cm1, -1)
	b.Li(c2, 2)

	b = p.Block("row")
	b.Mul(rowPtr, y, cw)
	b.Li(x, 1)

	b = p.Block("px")
	b.Add(addr, rowPtr, x)
	b.Ld(nuc, addr, imgBase)
	b.Li(area, 0)
	b.Add(dy, cm1, R(0))

	b = p.Block("ny")
	b.Add(dx, cm1, R(0))
	b = p.Block("nx")
	// neighbor = img[(y+dy)*w + (x+dx)]
	b.Mul(t, dy, cw)
	b.Add(addr, rowPtr, t)
	b.Add(addr, addr, x)
	b.Add(addr, addr, dx)
	b.Ld(nb, addr, imgBase)
	b.Sub(diff, nb, nuc)
	b.Bge(diff, R(0), "absdone")
	b.Sub(diff, R(0), diff)
	b = p.Block("absdone")
	b.Bge(diff, cth, "nx_latch") // outside the univalue area
	b.Addi(area, area, 1)
	b = p.Block("nx_latch")
	b.Addi(dx, dx, 1)
	b.Blt(dx, c2, "nx")
	b.Addi(dy, dy, 1)
	b.Blt(dy, c2, "ny")

	b = p.Block("decide")
	b.Li(res, 0)
	b.Bge(area, cgeom, "store")
	b.Sub(res, cgeom, area) // response strength
	if corner {
		// Corners additionally require a bright nucleus (cheap proxy
		// for the center-of-gravity test).
		b.Slti(t, nuc, 60)
		b.Beq(t, R(0), "store")
		b.Li(res, 0)
	}
	b = p.Block("store")
	b.Add(addr, rowPtr, x)
	b.St(res, addr, outBase-imgBase+imgBase) // out[y*w+x]
	b.Addi(x, x, 1)
	b.Addi(t, cw, -1)
	b.Blt(x, t, "px")

	b = p.Block("row_latch")
	b.Addi(y, y, 1)
	b.Blt(y, chg, "row")

	b = p.Block("done")
	b.Ld(t, R(0), outBase)
	b.St(t, R(0), 0)
	b.Halt()
	return p
}

// SusanS builds SUSAN smoothing: a 3x3 weighted convolution per pixel
// with a divide by the accumulated weight — multiply- and divide-heavy
// structured image traversal.
func SusanS() *program.Program {
	const (
		width   = 80
		height  = 56
		imgBase = 0x1000
		wBase   = 0x100 // 3x3 weights
	)
	outBase := int64(imgBase + width*height)
	p := program.New("susan_s", outBase+int64(width*height)+64)
	p.SetDataSlice(imgBase, susanImage(width, height, 0x5C53))
	p.SetDataSlice(wBase, []int64{1, 2, 1, 2, 4, 2, 1, 2, 1})

	x, y := R(1), R(2)
	acc, wsum, nb, wv := R(3), R(4), R(5), R(6)
	addr, t := R(7), R(8)
	cw, chg := R(9), R(10)
	rowPtr := R(11)
	dx, dy := R(12), R(13)
	cm1, c2 := R(14), R(15)
	widx := R(16)

	b := p.Block("init")
	b.Li(y, 1)
	b.Li(cw, width)
	b.Li(chg, height-1)
	b.Li(cm1, -1)
	b.Li(c2, 2)

	b = p.Block("row")
	b.Mul(rowPtr, y, cw)
	b.Li(x, 1)

	b = p.LoopBlock("px", "px_latch")
	b.Li(acc, 0)
	b.Li(wsum, 0)
	b.Li(widx, 0)
	b.Add(dy, cm1, R(0))
	b = p.Block("cy")
	b.Add(dx, cm1, R(0))
	b = p.LoopBlockN("cx", "cx", 3)
	b.Mul(t, dy, cw)
	b.Add(addr, rowPtr, t)
	b.Add(addr, addr, x)
	b.Add(addr, addr, dx)
	b.Ld(nb, addr, imgBase)
	b.Ld(wv, widx, wBase)
	b.Mul(t, nb, wv)
	b.Add(acc, acc, t)
	b.Add(wsum, wsum, wv)
	b.Addi(widx, widx, 1)
	b.Addi(dx, dx, 1)
	b.Blt(dx, c2, "cx")
	b = p.Block("cy_latch")
	b.Addi(dy, dy, 1)
	b.Blt(dy, c2, "cy")
	b = p.Block("store")
	b.Div(acc, acc, wsum)
	b.Add(addr, rowPtr, x)
	b.St(acc, addr, outBase)
	b = p.Block("px_latch")
	b.Addi(x, x, 1)
	b.Addi(t, cw, -1)
	b.Blt(x, t, "px")

	b = p.Block("row_latch")
	b.Addi(y, y, 1)
	b.Blt(y, chg, "row")

	b = p.Block("done")
	b.Ld(t, R(0), outBase)
	b.St(t, R(0), 0)
	b.Halt()
	return p
}
