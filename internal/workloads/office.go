package workloads

import (
	"repro/internal/program"
)

// Stringsearch builds a Boyer–Moore–Horspool multi-pattern search over
// a synthetic text corpus: skip-table construction per pattern, then a
// backwards-comparison scan loop. Load/compare/branch dominated with
// highly biased (mostly mismatching) branches, like the MiBench
// original.
func Stringsearch() *program.Program {
	const (
		textLen  = 16000
		alphabet = 26
		patterns = 10
		patLen   = 6
		textBase = 0x2000
		patBase  = 0x400 // patterns, patLen words apiece
		skipBase = 0x100 // 26-entry skip table
		hitsAddr = 0x10
	)
	p := program.New("stringsearch", textBase+textLen+64)
	r := newRNG(0x57A6)
	text := make([]int64, textLen)
	for i := range text {
		// Zipf-ish letter distribution: low letters more common.
		v := r.intn(alphabet)
		if v > 12 && r.intn(3) != 0 {
			v = r.intn(13)
		}
		text[i] = v
	}
	// Plant some pattern occurrences so searches sometimes hit.
	pats := make([]int64, patterns*patLen)
	for pi := 0; pi < patterns; pi++ {
		for j := 0; j < patLen; j++ {
			pats[pi*patLen+j] = r.intn(alphabet)
		}
		for occ := 0; occ < 4; occ++ {
			pos := r.intn(textLen - patLen)
			copy(text[pos:pos+patLen], pats[pi*patLen:(pi+1)*patLen])
		}
	}
	p.SetDataSlice(textBase, text)
	p.SetDataSlice(patBase, pats)

	pi, pos, j := R(1), R(2), R(3)
	tc, pc := R(4), R(5)
	addr, t := R(6), R(7)
	patPtr, skip := R(8), R(9)
	hits := R(10)
	cPat, cPlen, cAlpha, cEnd := R(11), R(12), R(13), R(14)
	last := R(15)

	b := p.Block("init")
	b.Li(pi, 0)
	b.Li(hits, 0)
	b.Li(cPat, patterns)
	b.Li(cPlen, patLen)
	b.Li(cAlpha, alphabet)
	b.Li(cEnd, textLen-patLen)

	b = p.Block("pattern")
	b.Mul(patPtr, pi, cPlen)
	b.Addi(patPtr, patPtr, patBase)

	// Build the skip table: default patLen, then skip[pat[j]] = patLen-1-j.
	b.Li(j, 0)
	b = p.LoopBlockN("skip_init", "skip_init", 2)
	b.St(cPlen, j, skipBase)
	b.Addi(j, j, 1)
	b.Blt(j, cAlpha, "skip_init")
	b = p.Block("skip_fill")
	b.Li(j, 0)
	b = p.LoopBlock("sf", "sf")
	b.Add(addr, patPtr, j)
	b.Ld(pc, addr, 0)
	b.Addi(t, cPlen, -1)
	b.Sub(t, t, j)
	b.St(t, pc, skipBase)
	b.Addi(j, j, 1)
	b.Addi(t, cPlen, -1)
	b.Blt(j, t, "sf")

	// Search scan.
	b = p.Block("search")
	b.Li(pos, 0)
	b = p.Block("window")
	b.Addi(j, cPlen, -1)
	b = p.Block("cmp")
	b.Add(addr, pos, j)
	b.Ld(tc, addr, textBase)
	b.Add(addr, patPtr, j)
	b.Ld(pc, addr, 0)
	b.Bne(tc, pc, "mismatch")
	b.Addi(j, j, -1)
	b.Bge(j, R(0), "cmp")
	b.Addi(hits, hits, 1) // full match
	b.Addi(pos, pos, 1)
	b.Jmp("bound")
	b = p.Block("mismatch")
	// Horspool shift on the window's last character.
	b.Addi(t, cPlen, -1)
	b.Add(addr, pos, t)
	b.Ld(last, addr, textBase)
	b.Ld(skip, last, skipBase)
	b.Add(pos, pos, skip)
	b = p.Block("bound")
	b.Blt(pos, cEnd, "window")

	b = p.Block("pat_latch")
	b.Addi(pi, pi, 1)
	b.Blt(pi, cPat, "pattern")

	b = p.Block("done")
	b.St(hits, R(0), hitsAddr)
	b.Halt()
	return p
}

// Rsynth builds a formant speech synthesizer: a glottal source signal
// driven through a cascade of four second-order resonators (IIR
// filters). Each resonator's two delayed state values feed
// multiply-accumulate chains with tight serial dependencies across
// samples — the low-ILP recursive-filter behaviour of the original.
func Rsynth() *program.Program {
	const (
		samples   = 3800
		stages    = 4
		stateBase = 0x100 // per stage: z1, z2
		coefBase  = 0x140 // per stage: b0, a1, a2 (fixed point <<12)
		outBase   = 0x1000
	)
	p := program.New("rsynth", outBase+samples+64)
	// Resonator coefficients for four formants (stable fixed-point).
	coefs := []int64{
		3277, 6881, -3113, // F1
		2458, 5734, -2867, // F2
		1638, 4915, -2458, // F3
		1229, 4096, -2048, // F4
	}
	p.SetDataSlice(coefBase, coefs)

	i, n := R(1), R(2)
	src, y := R(3), R(4)
	z1, z2 := R(5), R(6)
	b0, a1, a2 := R(7), R(8), R(9)
	t, t2, addr := R(10), R(11), R(12)
	stage, cStages := R(13), R(14)
	phase, period := R(15), R(16)

	b := p.Block("init")
	b.Li(i, 0)
	b.Li(n, samples)
	b.Li(cStages, stages)
	b.Li(phase, 0)
	b.Li(period, 80)

	b = p.LoopBlock("sample", "sample_latch")
	// Glottal source: sawtooth pulse train with a soft decay.
	b.Addi(phase, phase, 1)
	b.Blt(phase, period, "source")
	b.Li(phase, 0)
	b = p.Block("source")
	b.Li(t, 4096)
	b.Sub(src, t, phase)
	b.Shli(src, src, 2)
	b.Li(stage, 0)

	// Cascade of resonators: y = (b0*x + a1*z1 + a2*z2) >> 12.
	b = p.LoopBlockN("resonate", "resonate", 4)
	b.Shli(addr, stage, 1)
	b.Ld(z1, addr, stateBase)
	b.Ld(z2, addr, stateBase+1)
	b.Shli(t2, stage, 1)
	b.Add(t2, t2, stage) // 3*stage
	b.Ld(b0, t2, coefBase)
	b.Ld(a1, t2, coefBase+1)
	b.Ld(a2, t2, coefBase+2)
	b.Mul(y, src, b0)
	b.Mul(t, z1, a1)
	b.Add(y, y, t)
	b.Mul(t, z2, a2)
	b.Add(y, y, t)
	b.Srai(y, y, 12)
	b.St(z1, addr, stateBase+1) // z2 = z1
	b.St(y, addr, stateBase)    // z1 = y
	b.Add(src, y, R(0))         // feed the next stage
	b.Addi(stage, stage, 1)
	b.Blt(stage, cStages, "resonate")

	b = p.Block("emit")
	b.St(y, i, outBase)
	b = p.Block("sample_latch")
	b.Addi(i, i, 1)
	b.Blt(i, n, "sample")

	b = p.Block("done")
	b.Ld(t, R(0), outBase)
	b.St(t, R(0), 0)
	b.Halt()
	return p
}
