// Package workloads provides the benchmark programs: 19 MiBench-like
// kernels spanning the suite's six application domains, plus a set of
// memory-intensive SPEC-CPU2006-like kernels. Each kernel implements
// the same algorithm family as its namesake (hashing, shortest path,
// dithering, DCT codecs, tries, sorting, image filters, pointer
// chasing, streaming, stencils), written directly in the program-IR
// builder DSL, so that profiling yields realistic, program-derived
// instruction mixes, dependency-distance profiles, branch behaviour
// and memory locality.
//
// Dynamic instruction counts are tuned to a few hundred thousand per
// kernel: long enough for caches and predictors to reach steady state,
// short enough that a full design-space sweep stays laptop-scale.
package workloads

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/program"
)

// Spec names a benchmark and how to build it.
type Spec struct {
	Name   string
	Domain string // MiBench domain, or "spec2006" for the SPEC-like set
	Build  func() *program.Program
}

// MiBench returns the 19 MiBench-like kernels in the paper's Figure 3
// order.
func MiBench() []Spec {
	return []Spec{
		{"adpcm_c", "telecom", AdpcmC},
		{"adpcm_d", "telecom", AdpcmD},
		{"dijkstra", "network", Dijkstra},
		{"gsm_c", "telecom", GsmC},
		{"jpeg_c", "consumer", JpegC},
		{"jpeg_d", "consumer", JpegD},
		{"lame", "consumer", Lame},
		{"patricia", "network", Patricia},
		{"qsort", "auto", Qsort},
		{"rsynth", "office", Rsynth},
		{"sha", "security", Sha},
		{"stringsearch", "office", Stringsearch},
		{"susan_c", "auto", SusanC},
		{"susan_e", "auto", SusanE},
		{"susan_s", "auto", SusanS},
		{"tiff2bw", "consumer", Tiff2BW},
		{"tiff2rgba", "consumer", Tiff2RGBA},
		{"tiffdither", "consumer", TiffDither},
		{"tiffmedian", "consumer", TiffMedian},
	}
}

// SpecLike returns the memory-intensive SPEC-CPU2006-like kernels used
// for the Figure 6 validation.
func SpecLike() []Spec {
	return []Spec{
		{"mcf_like", "spec2006", McfLike},
		{"libquantum_like", "spec2006", LibquantumLike},
		{"milc_like", "spec2006", MilcLike},
		{"lbm_like", "spec2006", LbmLike},
		{"omnetpp_like", "spec2006", OmnetppLike},
		{"soplex_like", "spec2006", SoplexLike},
	}
}

// All returns every workload: the paper's 19 MiBench-like kernels,
// the 6 SPEC-like kernels and the 5 extended MiBench kernels.
func All() []Spec {
	out := append([]Spec(nil), MiBench()...)
	out = append(out, SpecLike()...)
	return append(out, Extended()...)
}

// ByName returns the named workload.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// Names returns all workload names, sorted.
func Names() []string {
	var out []string
	for _, s := range All() {
		out = append(out, s.Name)
	}
	sort.Strings(out)
	return out
}

// R converts a small integer to a register, panicking when out of
// range; it keeps kernel code terse.
func R(n int) isa.Reg {
	if n < 0 || n >= isa.NumRegs {
		panic(fmt.Sprintf("workloads: register r%d out of range", n))
	}
	return isa.Reg(n)
}

// rng is a deterministic xorshift64* generator used to synthesize
// input data (waveforms, images, graphs, key sets) at build time.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// intn returns a value in [0, n).
func (r *rng) intn(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(r.next() % uint64(n))
}

// emitRotl emits dst = rotate-left(src, k) within width bits using two
// shifts and an or, via the two scratch registers t1 and t2.
func emitRotl(b *program.Builder, dst, src isa.Reg, k, width int64, t1, t2 isa.Reg) {
	b.Shli(t1, src, k)
	b.Shri(t2, src, width-k)
	b.Or(dst, t1, t2)
	if width < 64 {
		// Mask back to the word width so values stay bounded.
		b.Andi(dst, dst, (int64(1)<<width)-1)
	}
}
