package workloads

import (
	"repro/internal/program"
)

// adpcmStepTable is the IMA ADPCM step-size table (89 entries).
func adpcmStepTable() []int64 {
	return []int64{
		7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
		19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
		50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
		130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
		337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
		876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
		2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
		5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
		15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
	}
}

// adpcmIndexTable is the IMA index-adjustment table (8 entries).
func adpcmIndexTable() []int64 {
	return []int64{-1, -1, -1, -1, 2, 4, 6, 8}
}

// adpcmWave synthesizes the input waveform: a chirpy triangle plus
// deterministic noise, resembling speech envelopes.
func adpcmWave(n int, seed uint64) []int64 {
	r := newRNG(seed)
	out := make([]int64, n)
	v, dir := int64(0), int64(37)
	for i := range out {
		v += dir
		if v > 8000 || v < -8000 {
			dir = -dir
			// vary the slope so branches are not perfectly periodic
			if r.intn(2) == 0 {
				dir += r.intn(23) - 11
				if dir == 0 {
					dir = 17
				}
			}
		}
		out[i] = v + r.intn(257) - 128
	}
	return out
}

// AdpcmC builds an IMA-ADPCM speech encoder: per sample, a sign/delta
// quantization with data-dependent branches, table-driven step updates
// and clamping — the classic branchy telecom kernel.
func AdpcmC() *program.Program {
	const (
		samples  = 9000
		stepBase = 0x100
		idxBase  = 0x1C0
		inBase   = 0x1000
		outBase  = inBase + samples
	)
	p := program.New("adpcm_c", outBase+samples+64)
	p.SetDataSlice(stepBase, adpcmStepTable())
	p.SetDataSlice(idxBase, adpcmIndexTable())
	p.SetDataSlice(inBase, adpcmWave(samples, 0xADC1))

	i, n := R(1), R(2)
	sample, valpred, index, step := R(3), R(4), R(5), R(6)
	diff, delta, vpdiff, sign := R(7), R(8), R(9), R(10)
	t, t2 := R(11), R(12)
	cMaxIdx, cMaxVal, cMinVal := R(13), R(14), R(15)

	b := p.Block("init")
	b.Li(i, 0)
	b.Li(n, samples)
	b.Li(valpred, 0)
	b.Li(index, 0)
	b.Li(cMaxIdx, 88)
	b.Li(cMaxVal, 32767)
	b.Li(cMinVal, -32768)

	b = p.LoopBlock("enc", "enc_latch")
	b.Ld(sample, i, inBase)
	b.Ld(step, index, stepBase)
	b.Sub(diff, sample, valpred)
	// sign and |diff|
	b.Li(sign, 0)
	b.Bge(diff, R(0), "enc_quant")
	b.Li(sign, 8)
	b.Sub(diff, R(0), diff)
	b = p.Block("enc_quant")
	// delta = min(7, |diff|*4/step), vpdiff = (delta+0.5)*step/4 computed
	// incrementally as the reference coder does.
	b.Li(delta, 0)
	b.Shri(vpdiff, step, 3)
	b.Blt(diff, step, "enc_q2")
	b.Ori(delta, delta, 4)
	b.Sub(diff, diff, step)
	b.Add(vpdiff, vpdiff, step)
	b = p.Block("enc_q2")
	b.Shri(step, step, 1)
	b.Blt(diff, step, "enc_q3")
	b.Ori(delta, delta, 2)
	b.Sub(diff, diff, step)
	b.Add(vpdiff, vpdiff, step)
	b = p.Block("enc_q3")
	b.Shri(step, step, 1)
	b.Blt(diff, step, "enc_sign")
	b.Ori(delta, delta, 1)
	b.Add(vpdiff, vpdiff, step)
	b = p.Block("enc_sign")
	b.Beq(sign, R(0), "enc_add")
	b.Sub(valpred, valpred, vpdiff)
	b.Jmp("enc_clamp")
	b = p.Block("enc_add")
	b.Add(valpred, valpred, vpdiff)
	b = p.Block("enc_clamp")
	b.Blt(valpred, cMaxVal, "enc_clamp2")
	b.Add(valpred, cMaxVal, R(0))
	b = p.Block("enc_clamp2")
	b.Bge(valpred, cMinVal, "enc_index")
	b.Add(valpred, cMinVal, R(0))
	b = p.Block("enc_index")
	b.Ld(t, delta, idxBase)
	b.Add(index, index, t)
	b.Bge(index, R(0), "enc_idx2")
	b.Li(index, 0)
	b = p.Block("enc_idx2")
	b.Blt(index, cMaxIdx, "enc_out")
	b.Addi(index, cMaxIdx, -1)
	b = p.Block("enc_out")
	b.Or(t2, delta, sign)
	b.St(t2, i, outBase)
	b = p.Block("enc_latch")
	b.Addi(i, i, 1)
	b.Blt(i, n, "enc")

	b = p.Block("done")
	b.St(valpred, R(0), 0)
	b.Halt()
	return p
}

// AdpcmD builds the matching IMA-ADPCM decoder.
func AdpcmD() *program.Program {
	const (
		samples  = 10000
		stepBase = 0x100
		idxBase  = 0x1C0
		inBase   = 0x1000
		outBase  = inBase + samples
	)
	p := program.New("adpcm_d", outBase+samples+64)
	p.SetDataSlice(stepBase, adpcmStepTable())
	p.SetDataSlice(idxBase, adpcmIndexTable())
	// Input: coded 4-bit deltas from a deterministic pattern mimicking
	// encoded speech (biased toward small magnitudes).
	r := newRNG(0xADD2)
	in := make([]int64, samples)
	for i := range in {
		m := r.intn(16)
		if m >= 8 && r.intn(3) != 0 {
			m -= 8 // bias to small positive deltas
		}
		in[i] = m
	}
	p.SetDataSlice(inBase, in)

	i, n := R(1), R(2)
	code, valpred, index, step := R(3), R(4), R(5), R(6)
	delta, vpdiff, sign := R(7), R(8), R(9)
	t := R(10)
	cMaxIdx, cMaxVal, cMinVal := R(11), R(12), R(13)

	b := p.Block("init")
	b.Li(i, 0)
	b.Li(n, samples)
	b.Li(valpred, 0)
	b.Li(index, 0)
	b.Li(cMaxIdx, 88)
	b.Li(cMaxVal, 32767)
	b.Li(cMinVal, -32768)

	b = p.LoopBlock("dec", "dec_latch")
	b.Ld(code, i, inBase)
	b.Ld(step, index, stepBase)
	// index update first, as the reference decoder does
	b.Andi(t, code, 7)
	b.Ld(t, t, idxBase)
	b.Add(index, index, t)
	b.Bge(index, R(0), "dec_idx2")
	b.Li(index, 0)
	b = p.Block("dec_idx2")
	b.Blt(index, cMaxIdx, "dec_vp")
	b.Addi(index, cMaxIdx, -1)
	b = p.Block("dec_vp")
	b.Andi(sign, code, 8)
	b.Andi(delta, code, 7)
	// vpdiff = step>>3 + (delta&4 ? step : 0) + (delta&2 ? step>>1 : 0)
	//        + (delta&1 ? step>>2 : 0)
	b.Shri(vpdiff, step, 3)
	b.Andi(t, delta, 4)
	b.Beq(t, R(0), "dec_b2")
	b.Add(vpdiff, vpdiff, step)
	b = p.Block("dec_b2")
	b.Andi(t, delta, 2)
	b.Beq(t, R(0), "dec_b1")
	b.Shri(t, step, 1)
	b.Add(vpdiff, vpdiff, t)
	b = p.Block("dec_b1")
	b.Andi(t, delta, 1)
	b.Beq(t, R(0), "dec_sign")
	b.Shri(t, step, 2)
	b.Add(vpdiff, vpdiff, t)
	b = p.Block("dec_sign")
	b.Beq(sign, R(0), "dec_add")
	b.Sub(valpred, valpred, vpdiff)
	b.Jmp("dec_clamp")
	b = p.Block("dec_add")
	b.Add(valpred, valpred, vpdiff)
	b = p.Block("dec_clamp")
	b.Blt(valpred, cMaxVal, "dec_clamp2")
	b.Add(valpred, cMaxVal, R(0))
	b = p.Block("dec_clamp2")
	b.Bge(valpred, cMinVal, "dec_out")
	b.Add(valpred, cMinVal, R(0))
	b = p.Block("dec_out")
	b.St(valpred, i, outBase)
	b = p.Block("dec_latch")
	b.Addi(i, i, 1)
	b.Blt(i, n, "dec")

	b = p.Block("done")
	b.St(valpred, R(0), 0)
	b.Halt()
	return p
}

// GsmC builds the GSM encoder's front end: offset compensation and
// preemphasis filtering over each frame followed by the LPC
// autocorrelation (nine lags of multiply-accumulate over 160 samples).
// Multiply-dominated with serial accumulator chains.
func GsmC() *program.Program {
	const (
		frames   = 11
		frameLen = 160
		lags     = 9
		inBase   = 0x1000
		workBase = 0x400
		acfBase  = 0x100
		nSamples = frames * frameLen
	)
	p := program.New("gsm_c", inBase+nSamples+64)
	p.SetDataSlice(inBase, adpcmWave(nSamples, 0x65C3))

	f, i, k := R(1), R(2), R(3)
	s, prev, t, t2 := R(4), R(5), R(6), R(7)
	acc, addr := R(8), R(9)
	framePtr := R(10)
	cFrames, cLen, cLags := R(11), R(12), R(13)
	lim, v1, v2 := R(14), R(15), R(16)

	b := p.Block("init")
	b.Li(f, 0)
	b.Li(cFrames, frames)
	b.Li(cLen, frameLen)
	b.Li(cLags, lags)

	b = p.Block("frame")
	b.Mul(framePtr, f, cLen)
	b.Addi(framePtr, framePtr, inBase)
	b.Li(prev, 0)
	b.Li(i, 0)

	// Offset compensation + preemphasis: w[i] = s[i] - 0.86*s[i-1]
	// (fixed point: s[i] - (s[i-1]*28180 >> 15)).
	b = p.LoopBlockN("pre", "pre", 4)
	b.Add(addr, framePtr, i)
	b.Ld(s, addr, 0)
	b.Li(t, 28180)
	b.Mul(t2, prev, t)
	b.Srai(t2, t2, 15)
	b.Sub(t, s, t2)
	b.St(t, i, workBase)
	b.Add(prev, s, R(0))
	b.Addi(i, i, 1)
	b.Blt(i, cLen, "pre")

	// Scale check (saturation guard, branchy as in the reference).
	b = p.Block("scale")
	b.Li(lim, 16384)
	b.Li(i, 0)
	b = p.LoopBlock("sc", "sc_latch")
	b.Ld(t, i, workBase)
	b.Bge(t, R(0), "sc_pos")
	b.Sub(t, R(0), t)
	b = p.Block("sc_pos")
	b.Blt(t, lim, "sc_latch")
	// Halve the frame on overflow (rare with our input).
	b.Ld(t2, i, workBase)
	b.Srai(t2, t2, 1)
	b.St(t2, i, workBase)
	b = p.Block("sc_latch")
	b.Addi(i, i, 1)
	b.Blt(i, cLen, "sc")

	// Autocorrelation over a fixed 152-sample window (zero-risk-free
	// fixed trip count, a multiple of 4, so the unroller can fire):
	// acf[k] = sum_{i<152} w[i]*w[i+k], k = 0..8.
	b = p.Block("acf")
	b.Li(k, 0)
	b = p.Block("acf_lag")
	b.Li(acc, 0)
	b.Li(lim, 152)
	b.Li(i, 0)
	b = p.LoopBlockN("acf_mac", "acf_mac", 4)
	b.Ld(v1, i, workBase)
	b.Add(addr, i, k)
	b.Ld(v2, addr, workBase)
	b.Mul(t, v1, v2)
	b.Srai(t, t, 4)
	b.Add(acc, acc, t)
	b.Addi(i, i, 1)
	b.Blt(i, lim, "acf_mac")
	b = p.Block("acf_store")
	b.St(acc, k, acfBase)
	b.Addi(k, k, 1)
	b.Blt(k, cLags, "acf_lag")

	b = p.Block("frame_latch")
	b.Addi(f, f, 1)
	b.Blt(f, cFrames, "frame")

	b = p.Block("done")
	b.Ld(t, R(0), acfBase)
	b.St(t, R(0), 0)
	b.Halt()
	return p
}
