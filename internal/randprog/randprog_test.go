package randprog

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/funcsim"
	"repro/internal/harness"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/program"
	"repro/internal/trace"
	"repro/internal/uarch"
)

const fuzzSeeds = 30

// fingerprint runs a program and returns its published results
// (the first 8 arena words, written by the done block).
func fingerprint(p *program.Program) ([8]int64, error) {
	m, err := funcsim.New(p)
	if err != nil {
		return [8]int64{}, err
	}
	m.MaxInstructions = 3_000_000
	if _, err := m.Run(nil); err != nil {
		return [8]int64{}, err
	}
	var out [8]int64
	copy(out[:], m.Mem[:8])
	return out, nil
}

// TestGeneratedProgramsTerminate: every generated program halts within
// its structural bound.
func TestGeneratedProgramsTerminate(t *testing.T) {
	for seed := int64(0); seed < fuzzSeeds; seed++ {
		p := Generate(Default(seed))
		m, err := funcsim.New(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		m.MaxInstructions = 3_000_000
		if _, err := m.Run(nil); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestCompilerPassesPreserveRandomPrograms fuzzes the scheduler and
// unroller: same final memory for every optimization level.
func TestCompilerPassesPreserveRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < fuzzSeeds; seed++ {
		src := Generate(Default(seed))
		ref, err := fingerprint(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, lvl := range compiler.Levels() {
			opt := compiler.Optimize(Generate(Default(seed)), lvl)
			got, err := fingerprint(opt)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, lvl, err)
			}
			if got != ref {
				t.Errorf("seed %d: %s changed behavior", seed, lvl)
			}
		}
	}
}

// TestPipelineBoundsOnRandomPrograms: the detailed simulator never
// deadlocks, is deterministic, and lands between the throughput bound
// N/W and a generous serialization bound.
func TestPipelineBoundsOnRandomPrograms(t *testing.T) {
	cfg := uarch.Default()
	for seed := int64(100); seed < 100+fuzzSeeds; seed++ {
		p := Generate(Default(seed))
		tb := trace.NewBuilder()
		if _, err := funcsim.RunProgram(p, tb); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		tr := tb.Trace()
		res, err := pipeline.Simulate(tr, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		n := tr.Len()
		lo := n / int64(cfg.Width)
		hi := n*int64(cfg.DivLatency) + (res.Cache.DL1Misses+res.Cache.IL1Misses)*int64(cfg.L2MissCycles()) +
			(res.Cache.ITLBMisses+res.Cache.DTLBMisses)*int64(cfg.TLBWalkCycles()) +
			res.Mispredicts*int64(cfg.FrontEndDepth+1) + res.TakenBubbles + 64
		if res.Cycles < lo || res.Cycles > hi {
			t.Errorf("seed %d: cycles %d outside [%d, %d]", seed, res.Cycles, lo, hi)
		}
		res2, err := pipeline.Simulate(tr, cfg)
		if err != nil || res2 != res {
			t.Errorf("seed %d: non-deterministic simulation", seed)
		}
	}
}

// TestModelTracksSimulatorOnRandomPrograms: even on adversarial random
// code the first-order model stays within a loose band of the detailed
// simulator.
func TestModelTracksSimulatorOnRandomPrograms(t *testing.T) {
	cfg := uarch.Default()
	for seed := int64(200); seed < 200+fuzzSeeds; seed++ {
		pw, err := harness.ProfileProgram(Generate(Default(seed)))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		v, err := pw.Validate(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if v.AbsErr() > 0.5 {
			t.Errorf("seed %d: model error %.1f%% (model %.3f sim %.3f)",
				seed, 100*v.AbsErr(), v.ModelCPI, v.SimCPI)
		}
	}
}

// TestProfilerAccountsEveryInstruction: the profile's N and class
// counts must add up exactly on random programs.
func TestProfilerAccountsEveryInstruction(t *testing.T) {
	for seed := int64(300); seed < 300+fuzzSeeds; seed++ {
		p := Generate(Default(seed))
		col := profile.NewCollector(p.Name)
		n, err := funcsim.RunProgram(p, col)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		prof := col.Result()
		if prof.N != n {
			t.Errorf("seed %d: profile N=%d, executed %d", seed, prof.N, n)
		}
		var byClass int64
		for _, c := range prof.ByClass {
			byClass += c
		}
		if byClass != n {
			t.Errorf("seed %d: class counts sum to %d, want %d", seed, byClass, n)
		}
		deps := prof.DepsUnit.Total() + prof.DepsLL.Total() + prof.DepsLd.Total()
		if deps > n {
			t.Errorf("seed %d: more dependencies (%d) than instructions (%d)", seed, deps, n)
		}
	}
}
