// Package randprog generates random — but well-formed and terminating —
// programs for property-based testing across the toolchain: the
// compiler passes must preserve their semantics, the pipeline simulator
// must never deadlock or violate throughput bounds on them, and the
// profiler must account every instruction.
//
// Generated programs have the shape real kernels have: an init block, a
// counted outer loop whose body is a random mix of straight-line
// arithmetic, loads/stores into a private arena, inner counted loops
// and data-dependent branches. Termination is guaranteed by
// construction (all loops are counted with positive trip counts).
package randprog

import (
	"fmt"
	"math/rand"

	"repro/internal/isa"
	"repro/internal/program"
)

// Config bounds the generated program.
type Config struct {
	Seed       int64
	MaxBlocks  int   // extra body blocks beyond the skeleton (≥ 0)
	MaxInsts   int   // instructions per straight-line region
	OuterTrips int64 // outer loop trip count (≥ 1)
	MemWords   int64 // arena size (≥ 64)
}

// Default returns a moderate configuration.
func Default(seed int64) Config {
	return Config{Seed: seed, MaxBlocks: 6, MaxInsts: 12, OuterTrips: 50, MemWords: 1 << 12}
}

// Generate builds a random program under cfg.
func Generate(cfg Config) *program.Program {
	if cfg.MemWords < 64 {
		cfg.MemWords = 64
	}
	if cfg.OuterTrips < 1 {
		cfg.OuterTrips = 1
	}
	if cfg.MaxInsts < 1 {
		cfg.MaxInsts = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &gen{rng: rng, cfg: cfg}
	return g.program()
}

type gen struct {
	rng    *rand.Rand
	cfg    Config
	nextID int
}

// Register plan: r1 = outer counter, r2 = outer bound, r3 = inner
// counter, r4 = inner bound, r5..r12 data registers, r13 address
// scratch. The generator only reads data registers it has initialized.
const (
	rOuter   = isa.Reg(1)
	rBound   = isa.Reg(2)
	rInner   = isa.Reg(3)
	rIBound  = isa.Reg(4)
	dataBase = 5
	dataRegs = 8
	rAddr    = isa.Reg(13)
)

func (g *gen) label(prefix string) string {
	g.nextID++
	return fmt.Sprintf("%s%d", prefix, g.nextID)
}

func (g *gen) dataReg() isa.Reg {
	return isa.Reg(dataBase + g.rng.Intn(dataRegs))
}

// emitRandom appends one random non-control instruction to b.
func (g *gen) emitRandom(b *program.Builder) {
	dst, s1, s2 := g.dataReg(), g.dataReg(), g.dataReg()
	imm := int64(g.rng.Intn(64))
	switch g.rng.Intn(16) {
	case 0:
		b.Add(dst, s1, s2)
	case 1:
		b.Sub(dst, s1, s2)
	case 2:
		b.And(dst, s1, s2)
	case 3:
		b.Or(dst, s1, s2)
	case 4:
		b.Xor(dst, s1, s2)
	case 5:
		b.Slt(dst, s1, s2)
	case 6:
		b.Addi(dst, s1, imm-32)
	case 7:
		b.Shli(dst, s1, int64(g.rng.Intn(8)))
	case 8:
		b.Srai(dst, s1, int64(g.rng.Intn(8)))
	case 9:
		b.Andi(dst, s1, imm)
	case 10:
		b.Mul(dst, s1, s2)
	case 11:
		// Divisor forced nonzero and positive.
		b.Ori(s2, s2, 1)
		b.Andi(s2, s2, 63)
		b.Ori(s2, s2, 1)
		b.Div(dst, s1, s2)
	case 12, 13:
		// Load from the arena: address masked into range.
		b.Andi(rAddr, s1, g.cfg.MemWords/2-1)
		b.Ld(dst, rAddr, 8)
	default:
		// Store into the arena.
		b.Andi(rAddr, s1, g.cfg.MemWords/2-1)
		b.St(s2, rAddr, 8)
	}
}

func (g *gen) straightLine(b *program.Builder) {
	n := 1 + g.rng.Intn(g.cfg.MaxInsts)
	for i := 0; i < n; i++ {
		g.emitRandom(b)
	}
}

func (g *gen) program() *program.Program {
	p := program.New(fmt.Sprintf("rand-%d", g.cfg.Seed), g.cfg.MemWords)
	// Seed the arena so loads see varied data.
	for i := int64(0); i < 64; i++ {
		p.SetData(i*7%g.cfg.MemWords, int64(g.rng.Intn(1<<16)-1<<15))
	}

	b := p.Block("init")
	b.Li(rOuter, 0)
	b.Li(rBound, g.cfg.OuterTrips)
	for i := 0; i < dataRegs; i++ {
		b.Li(isa.Reg(dataBase+i), int64(g.rng.Intn(1<<12)))
	}

	b = p.Block("outer")
	g.straightLine(b)

	// Random body features: data-dependent diamonds and counted inner
	// loops, each a fresh set of blocks.
	features := g.rng.Intn(g.cfg.MaxBlocks + 1)
	for i := 0; i < features; i++ {
		if g.rng.Intn(2) == 0 {
			b = g.emitDiamond(p, b)
		} else {
			b = g.emitInnerLoop(p, b)
		}
	}

	latch := p.Block("outer_latch")
	b.Jmp("outer_latch")
	latch.Addi(rOuter, rOuter, 1)
	latch.Blt(rOuter, rBound, "outer")

	done := p.Block("done")
	// Publish state so semantic comparisons have something to look at.
	for i := 0; i < dataRegs; i++ {
		done.St(isa.Reg(dataBase+i), isa.Reg(0), int64(i))
	}
	done.Halt()
	return p
}

// emitDiamond appends `if (reg < reg) { ... } else { ... }` and returns
// the builder for the join block.
func (g *gen) emitDiamond(p *program.Program, b *program.Builder) *program.Builder {
	thenL, elseL, joinL := g.label("then"), g.label("else"), g.label("join")
	b.Blt(g.dataReg(), g.dataReg(), thenL)
	b.Jmp(elseL)
	tb := p.Block(thenL)
	g.straightLine(tb)
	tb.Jmp(joinL)
	eb := p.Block(elseL)
	g.straightLine(eb)
	jb := p.Block(joinL)
	return jb
}

// emitInnerLoop appends a counted single-block self-loop (sometimes
// annotated with its trip multiple, to exercise the unroller) and
// returns the builder for the continuation block.
func (g *gen) emitInnerLoop(p *program.Program, b *program.Builder) *program.Builder {
	loopL, contL := g.label("loop"), g.label("cont")
	trips := int64(2 + g.rng.Intn(15)) // 2..16
	b.Li(rInner, 0)
	b.Li(rIBound, trips)
	b.Jmp(loopL)
	var lb *program.Builder
	if g.rng.Intn(2) == 0 {
		lb = p.LoopBlockN(loopL, loopL, trips) // exact trip count is a valid multiple
	} else {
		lb = p.LoopBlock(loopL, loopL)
	}
	g.straightLine(lb)
	lb.Addi(rInner, rInner, 1)
	lb.Blt(rInner, rIBound, loopL)
	return p.Block(contL)
}
