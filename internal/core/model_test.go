package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/profile"
	"repro/internal/uarch"
)

func cfgW(w int) uarch.Config {
	c := uarch.Default()
	c.Width = w
	return c
}

func emptyProfile(n int64) *profile.Profile {
	return &profile.Profile{Name: "t", N: n}
}

func TestBaseTerm(t *testing.T) {
	// With no penalties of any kind, T = N/W exactly (Eq. 1).
	for _, w := range []int{1, 2, 3, 4} {
		st, err := Predict(Inputs{Prof: emptyProfile(1000)}, cfgW(w))
		if err != nil {
			t.Fatal(err)
		}
		want := 1000.0 / float64(w)
		if st.Total() != want {
			t.Errorf("W=%d: T = %f, want %f", w, st.Total(), want)
		}
	}
}

func TestMissEventPenalty(t *testing.T) {
	// Eq. 2/3: penalty = MissLatency - (W-1)/2W per miss event.
	cfg := cfgW(4)
	adj := 3.0 / 8.0
	in := Inputs{
		Prof: emptyProfile(1000),
		Mem: cache.Stats{
			IL1Misses: 10, IL2Misses: 4,
			DL1Misses: 20, DL2Misses: 5,
			ITLBMisses: 2, DTLBMisses: 3,
		},
	}
	st, err := Predict(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	l2 := float64(cfg.L2HitCycles())
	mem := float64(cfg.L2MissCycles())
	walk := float64(cfg.TLBWalkCycles())
	checks := []struct {
		c    Component
		want float64
	}{
		{IL1L2Hit, 6 * (l2 - adj)},
		{IL2Miss, 4 * (mem - adj)},
		{DL1L2Hit, 15 * (l2 - adj)},
		{DL2Miss, 5 * (mem - adj)},
		{ITLBMiss, 2 * (walk - adj)},
		{DTLBMiss, 3 * (walk - adj)},
	}
	for _, c := range checks {
		if got := st.Cycles[c.c]; math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%v = %f, want %f", c.c, got, c.want)
		}
	}
}

func TestBranchPenalties(t *testing.T) {
	// Eq. 4: D + (W-1)/2W per misprediction; 1 per taken bubble.
	cfg := cfgW(4)
	in := Inputs{
		Prof:   emptyProfile(1000),
		Branch: branch.Stats{Branches: 100, Mispredicts: 7, PredictedTaken: 30, Jumps: 5},
	}
	st, err := Predict(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantMiss := 7 * (float64(cfg.FrontEndDepth) + 3.0/8.0)
	if math.Abs(st.Cycles[BrMiss]-wantMiss) > 1e-9 {
		t.Errorf("BrMiss = %f, want %f", st.Cycles[BrMiss], wantMiss)
	}
	if st.Cycles[BrTaken] != 35 {
		t.Errorf("BrTaken = %f, want 35", st.Cycles[BrTaken])
	}
}

func TestTakenFragmentationOption(t *testing.T) {
	cfg := cfgW(4)
	in := Inputs{
		Prof:   emptyProfile(1000),
		Branch: branch.Stats{PredictedTaken: 40},
	}
	base, _ := PredictOpts(in, cfg, Options{})
	corr, _ := PredictOpts(in, cfg, Options{TakenFragmentation: true})
	wantExtra := 40 * 3.0 / 8.0
	if got := corr.Cycles[BrTaken] - base.Cycles[BrTaken]; math.Abs(got-wantExtra) > 1e-9 {
		t.Errorf("fragmentation extra = %f, want %f", got, wantExtra)
	}
}

func TestLongLatencyPenalty(t *testing.T) {
	// Eq. 5/6: (lat-1) - (W-1)/2W per long-latency instruction.
	cfg := cfgW(4)
	p := emptyProfile(1000)
	p.NMul = 10
	p.NDiv = 2
	st, err := Predict(Inputs{Prof: p}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	adj := 3.0 / 8.0
	want := 10*(float64(cfg.MulLatency-1)-adj) + 2*(float64(cfg.DivLatency-1)-adj)
	if math.Abs(st.Cycles[MulDiv]-want) > 1e-9 {
		t.Errorf("MulDiv = %f, want %f", st.Cycles[MulDiv], want)
	}
}

func TestDepUnitFormula(t *testing.T) {
	// Eq. 11: deps_unit(d) * ((W-d)/W)^2 summed over d < W.
	cfg := cfgW(4)
	p := emptyProfile(1000)
	p.DepsUnit.Count[1] = 8
	p.DepsUnit.Count[2] = 4
	p.DepsUnit.Count[3] = 2
	p.DepsUnit.Count[4] = 100 // beyond W-1: no penalty
	st, err := Predict(Inputs{Prof: p}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 8*math.Pow(3.0/4, 2) + 4*math.Pow(2.0/4, 2) + 2*math.Pow(1.0/4, 2)
	if math.Abs(st.Cycles[DepUnit]-want) > 1e-9 {
		t.Errorf("DepUnit = %f, want %f", st.Cycles[DepUnit], want)
	}
}

func TestDepLLFormula(t *testing.T) {
	// Eq. 12: deps_LL(d) * (W-d)/W summed over d < W.
	cfg := cfgW(4)
	p := emptyProfile(1000)
	p.DepsLL.Count[1] = 4
	p.DepsLL.Count[3] = 4
	st, err := Predict(Inputs{Prof: p}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 4*(3.0/4) + 4*(1.0/4)
	if math.Abs(st.Cycles[DepLL]-want) > 1e-9 {
		t.Errorf("DepLL = %f, want %f", st.Cycles[DepLL], want)
	}
}

func TestDepLoadFormula(t *testing.T) {
	// Eq. 16, both ranges.
	cfg := cfgW(4)
	p := emptyProfile(1000)
	p.DepsLd.Count[1] = 1 // d < W: (W-d)/W*(2W-d)/W + d/W
	p.DepsLd.Count[5] = 1 // W <= d < 2W: ((2W-d)/W)^2
	p.DepsLd.Count[9] = 7 // beyond 2W-1: free
	st, err := Predict(Inputs{Prof: p}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := 4.0
	want := ((w-1)/w)*((2*w-1)/w) + 1/w + math.Pow((2*w-5)/w, 2)
	if math.Abs(st.Cycles[DepLd]-want) > 1e-9 {
		t.Errorf("DepLd = %f, want %f", st.Cycles[DepLd], want)
	}
}

func TestWidthOneEdgeCases(t *testing.T) {
	// At W=1 there is no same-group sharing: unit/LL dependencies cost
	// nothing; a load-use dependency at d=1 costs exactly 1 cycle.
	cfg := cfgW(1)
	p := emptyProfile(1000)
	p.DepsUnit.Count[1] = 50
	p.DepsLL.Count[1] = 50
	p.DepsLd.Count[1] = 50
	st, err := Predict(Inputs{Prof: p}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles[DepUnit] != 0 || st.Cycles[DepLL] != 0 {
		t.Errorf("W=1 unit/LL dep penalties = %f/%f, want 0",
			st.Cycles[DepUnit], st.Cycles[DepLL])
	}
	if st.Cycles[DepLd] != 50 {
		t.Errorf("W=1 load dep penalty = %f, want 50", st.Cycles[DepLd])
	}
	// And the overlap adjustment vanishes: a miss costs its full latency.
	in := Inputs{Prof: emptyProfile(1000), Mem: cache.Stats{ITLBMisses: 1}}
	st2, _ := Predict(in, cfg)
	if st2.Cycles[ITLBMiss] != float64(cfg.TLBWalkCycles()) {
		t.Errorf("W=1 TLB penalty = %f, want %d", st2.Cycles[ITLBMiss], cfg.TLBWalkCycles())
	}
}

func TestStackAccessors(t *testing.T) {
	st := &Stack{N: 100}
	st.Cycles[Base] = 25
	st.Cycles[DepUnit] = 5
	st.Cycles[DepLd] = 10
	st.Cycles[IL1L2Hit] = 3
	st.Cycles[DL2Miss] = 7
	if st.CPI() != 0.5 {
		t.Errorf("CPI = %f", st.CPI())
	}
	if math.Abs(st.Deps()-0.15) > 1e-12 {
		t.Errorf("Deps = %f", st.Deps())
	}
	if st.L2Access() != 0.03 {
		t.Errorf("L2Access = %f", st.L2Access())
	}
	if st.L2Miss() != 0.07 {
		t.Errorf("L2Miss = %f", st.L2Miss())
	}
	if st.String() == "" {
		t.Error("empty String()")
	}
}

func TestPredictErrors(t *testing.T) {
	if _, err := Predict(Inputs{}, cfgW(4)); err == nil {
		t.Error("nil profile accepted")
	}
	if _, err := Predict(Inputs{Prof: emptyProfile(0)}, cfgW(4)); err == nil {
		t.Error("empty profile accepted")
	}
	bad := cfgW(4)
	bad.Width = 0
	if _, err := Predict(Inputs{Prof: emptyProfile(10)}, bad); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestComponentNames(t *testing.T) {
	for c := Component(0); c < NumComponents; c++ {
		if c.String() == "" {
			t.Errorf("component %d unnamed", c)
		}
	}
}

// TestMonotoneInMissCounts checks the obvious first-order property:
// more miss events can never predict fewer cycles.
func TestMonotoneInMissCounts(t *testing.T) {
	cfg := cfgW(4)
	f := func(a, b uint16) bool {
		lo, hi := int64(a), int64(a)+int64(b)
		mk := func(m int64) float64 {
			in := Inputs{Prof: emptyProfile(100000), Mem: cache.Stats{DL1Misses: m + 10, DL2Misses: m}}
			st, err := Predict(in, cfg)
			if err != nil {
				return math.NaN()
			}
			return st.Total()
		}
		return mk(hi) >= mk(lo)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDepPenaltiesDecreaseWithDistance: for every producer class, a
// dependency at larger distance can never cost more.
func TestDepPenaltiesDecreaseWithDistance(t *testing.T) {
	cfg := cfgW(4)
	costAt := func(kind int, d int) float64 {
		p := emptyProfile(1000)
		switch kind {
		case 0:
			p.DepsUnit.Count[d] = 1
		case 1:
			p.DepsLL.Count[d] = 1
		default:
			p.DepsLd.Count[d] = 1
		}
		st, _ := Predict(Inputs{Prof: p}, cfg)
		return st.Total() - 250 // subtract base
	}
	for kind := 0; kind < 3; kind++ {
		prev := math.Inf(1)
		for d := 1; d < 8; d++ {
			c := costAt(kind, d)
			if c > prev+1e-9 {
				t.Errorf("kind %d: penalty at d=%d (%f) exceeds d=%d (%f)", kind, d, c, d-1, prev)
			}
			prev = c
		}
	}
}
