// Package core implements the paper's primary contribution: the
// mechanistic analytical performance model for superscalar in-order
// processors (Breughe, Eyerman, Eeckhout, ISPASS 2012).
//
// The model estimates total execution cycles as
//
//	T = N/W + P_misses + P_LL + P_deps            (Eq. 1)
//
// from machine-independent program statistics (package profile),
// mixed program/machine statistics (cache and branch-predictor miss
// counts, packages cache and branch) and machine parameters (package
// uarch). Because evaluation is a handful of closed-form formulas, a
// prediction is effectively instantaneous; profiling is the only
// per-program cost, paid once per binary for the whole design space.
package core

import (
	"fmt"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/profile"
	"repro/internal/uarch"
)

// Component identifies one term of the CPI stack.
type Component int

// CPI stack components. Base is the ideal N/W term; the remainder are
// penalty terms in the order the paper introduces them.
const (
	Base Component = iota
	MulDiv
	IL1L2Hit // I-fetch L1 misses that hit in L2 ("l2 access", I side)
	IL2Miss  // I-fetch misses in both L1 and L2
	DL1L2Hit // data L1 misses that hit in L2 ("l2 access", D side)
	DL2Miss  // data misses in both L1 and L2
	ITLBMiss
	DTLBMiss
	BrMiss  // branch misprediction flushes
	BrTaken // taken-redirect bubbles on correctly-predicted control flow
	DepUnit // stalls on unit-latency producers (Eq. 11)
	DepLL   // stalls on long-latency producers (Eq. 12)
	DepLd   // stalls on load producers (Eq. 16)

	NumComponents
)

var componentNames = [NumComponents]string{
	"base", "mul/div", "il1->l2", "il2 miss", "dl1->l2", "dl2 miss",
	"itlb", "dtlb", "bpred miss", "bpred taken", "dep unit", "dep LL", "dep load",
}

func (c Component) String() string {
	if c >= 0 && c < NumComponents {
		return componentNames[c]
	}
	return fmt.Sprintf("component(%d)", int(c))
}

// Inputs gathers everything the model consumes (Table 1).
type Inputs struct {
	Prof   *profile.Profile // machine-independent program statistics
	Mem    cache.Stats      // cache/TLB miss counts for the chosen hierarchy
	Branch branch.Stats     // misprediction and taken counts for the chosen predictor
}

// Options tune model variants. The zero value is the paper's model.
type Options struct {
	// TakenFragmentation adds a second-order correction of
	// (W-1)/(2W) cycles per taken-redirect bubble for the unfetched
	// slots of the fetch group a taken control transfer ends. The
	// paper's first-order model omits it; it is provided for the
	// ablation study in EXPERIMENTS.md.
	TakenFragmentation bool
}

// Stack is a CPI stack: per-component cycle counts for one program on
// one design point.
type Stack struct {
	Cycles [NumComponents]float64
	N      int64 // dynamic instruction count
}

// Total returns the predicted total execution cycles T (Eq. 1).
func (s *Stack) Total() float64 {
	var t float64
	for _, c := range s.Cycles {
		t += c
	}
	return t
}

// CPI returns total cycles per instruction.
func (s *Stack) CPI() float64 {
	if s.N == 0 {
		return 0
	}
	return s.Total() / float64(s.N)
}

// CPIOf returns one component in cycles per instruction.
func (s *Stack) CPIOf(c Component) float64 {
	if s.N == 0 {
		return 0
	}
	return s.Cycles[c] / float64(s.N)
}

// Deps returns the total dependency CPI (Eq. 7).
func (s *Stack) Deps() float64 { return s.CPIOf(DepUnit) + s.CPIOf(DepLL) + s.CPIOf(DepLd) }

// L2Access returns the combined "l2 access" CPI (I+D L1 misses hitting
// L2), the grouping used in Figure 4 of the paper.
func (s *Stack) L2Access() float64 { return s.CPIOf(IL1L2Hit) + s.CPIOf(DL1L2Hit) }

// L2Miss returns the combined "l2 miss" CPI (I+D misses in L2).
func (s *Stack) L2Miss() float64 { return s.CPIOf(IL2Miss) + s.CPIOf(DL2Miss) }

// TLB returns the combined TLB-miss CPI.
func (s *Stack) TLB() float64 { return s.CPIOf(ITLBMiss) + s.CPIOf(DTLBMiss) }

// String renders the stack as one line of CPI contributions.
func (s *Stack) String() string {
	out := fmt.Sprintf("CPI %.4f =", s.CPI())
	for c := Component(0); c < NumComponents; c++ {
		if s.Cycles[c] != 0 {
			out += fmt.Sprintf(" %s:%.4f", c, s.CPIOf(c))
		}
	}
	return out
}

// Predict evaluates the mechanistic model for the given inputs and
// design point with default options.
func Predict(in Inputs, cfg uarch.Config) (*Stack, error) {
	return PredictOpts(in, cfg, Options{})
}

// PredictOpts evaluates the mechanistic model with explicit options.
func PredictOpts(in Inputs, cfg uarch.Config, opt Options) (*Stack, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if in.Prof == nil {
		return nil, fmt.Errorf("core: nil profile")
	}
	p := in.Prof
	if p.N == 0 {
		return nil, fmt.Errorf("core: empty profile %q", p.Name)
	}

	W := float64(cfg.Width)
	D := float64(cfg.FrontEndDepth)
	adj := (W - 1) / (2 * W) // average overlap with older same-group instructions

	s := &Stack{N: p.N}

	// Base: Eq. 1's N/W term.
	s.Cycles[Base] = float64(p.N) / W

	// Long-latency instructions: Eq. 5/6 with penalty (lat-1) - adj.
	s.Cycles[MulDiv] = float64(p.NMul)*llPenalty(cfg.MulLatency, adj) +
		float64(p.NDiv)*llPenalty(cfg.DivLatency, adj)

	// Miss events: Eq. 2/3 with penalty MissLatency - adj. L2-hit loads
	// are the paper's "L2 cache hits due to loads" long-latency class;
	// algebraically their (1+lat-1)-adj penalty equals the miss-event
	// form, so all L1-miss events are tabulated here uniformly.
	l2hit := float64(cfg.L2HitCycles())
	l2miss := float64(cfg.L2MissCycles())
	walk := float64(cfg.TLBWalkCycles())
	s.Cycles[IL1L2Hit] = float64(in.Mem.IL1Misses-in.Mem.IL2Misses) * missPenalty(l2hit, adj)
	s.Cycles[IL2Miss] = float64(in.Mem.IL2Misses) * missPenalty(l2miss, adj)
	s.Cycles[DL1L2Hit] = float64(in.Mem.DL1Misses-in.Mem.DL2Misses) * missPenalty(l2hit, adj)
	s.Cycles[DL2Miss] = float64(in.Mem.DL2Misses) * missPenalty(l2miss, adj)
	s.Cycles[ITLBMiss] = float64(in.Mem.ITLBMisses) * missPenalty(walk, adj)
	s.Cycles[DTLBMiss] = float64(in.Mem.DTLBMisses) * missPenalty(walk, adj)

	// Branch mispredictions: Eq. 4, penalty D + adj.
	s.Cycles[BrMiss] = float64(in.Branch.Mispredicts) * (D + adj)

	// Taken-branch hit penalty: one fetch bubble per correctly
	// predicted taken branch or unconditional transfer (§3.3).
	taken := float64(in.Branch.TakenBubbles())
	s.Cycles[BrTaken] = taken
	if opt.TakenFragmentation {
		s.Cycles[BrTaken] += taken * adj
	}

	// Dependencies.
	wi := cfg.Width
	// Eq. 11: unit-latency producers, d in [1, W-1].
	var du float64
	for d := 1; d < wi; d++ {
		f := (W - float64(d)) / W
		du += float64(p.DepsUnit.Count[d]) * f * f
	}
	s.Cycles[DepUnit] = du
	// Eq. 12: long-latency producers, d in [1, W-1].
	var dll float64
	for d := 1; d < wi; d++ {
		dll += float64(p.DepsLL.Count[d]) * (W - float64(d)) / W
	}
	s.Cycles[DepLL] = dll
	// Eq. 16: load producers, d in [1, 2W-1].
	var dld float64
	for d := 1; d < wi; d++ {
		fd := float64(d)
		dld += float64(p.DepsLd.Count[d]) * ((W-fd)/W*(2*W-fd)/W + fd/W)
	}
	for d := wi; d < 2*wi; d++ {
		f := (2*W - float64(d)) / W
		dld += float64(p.DepsLd.Count[d]) * f * f
	}
	s.Cycles[DepLd] = dld

	return s, nil
}

func llPenalty(lat int, adj float64) float64 {
	p := float64(lat-1) - adj
	if p < 0 {
		return 0
	}
	return p
}

func missPenalty(lat, adj float64) float64 {
	p := lat - adj
	if p < 0 {
		return 0
	}
	return p
}
