// Package proftool is the shared pprof plumbing behind the CLIs'
// -cpuprofile/-memprofile flags: hot-path regressions are diagnosable
// with `go tool pprof` instead of editing benchmark code.
package proftool

import (
	"log"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins a CPU profile and/or arranges a heap profile, as
// requested (empty path = off); the returned stop function flushes
// them and must be called before exit. Paths that bypass stop (e.g.
// log.Fatal) lose the profiles — they are for runs that complete.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				log.Printf("memprofile: %v", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the live heap before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("memprofile: %v", err)
			}
		}
	}, nil
}
