// Package ingest is the hardened path from untrusted program text to a
// profiled, predict/explore-able workload. It is the multi-tenant
// counterpart of the compiled-in workload suite: anyone may POST an
// internal/asm source to modeld, but everything that source can touch
// is walled off first —
//
//   - static limits (source bytes, block/instruction counts, data
//     words, memory size) reject oversized submissions before any
//     allocation proportional to their claims happens;
//   - profiling runs inside a sandbox (hard dynamic-instruction cap,
//     wall-clock deadline polled at chunk granularity, panic
//     containment), so a hostile program can fail only itself;
//   - accepted programs are canonicalized and registered under a
//     content-derived name ("user-" + fingerprint prefix), so
//     identical programs from different tenants share one artifact;
//   - per-tenant quotas (stored workloads, stored bytes, in-flight
//     jobs) bound what any one submitter can consume.
//
// The package deliberately owns no HTTP: internal/service mounts it.
package ingest

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/asm"
	"repro/internal/program"
)

// Taxonomy sentinels. The service maps each to a machine-readable
// error code, so every hostile shape yields a typed rejection instead
// of a stringly 500.
var (
	// ErrTooLarge: the source text itself is over the byte cap.
	ErrTooLarge = errors.New("ingest: source too large")
	// ErrInvalid: the source parsed poorly or violated a structural
	// limit (blocks, instructions, data words, memory size).
	ErrInvalid = errors.New("ingest: invalid program")
	// ErrBudget: the program is statically fine but blew its dynamic
	// execution budget (instruction cap or wall-clock deadline).
	ErrBudget = errors.New("ingest: execution budget exceeded")
	// ErrRuntime: the program faulted while executing (out-of-bounds
	// access, control flow escaping the text, zero retired
	// instructions, a recovered panic).
	ErrRuntime = errors.New("ingest: program failed to execute")
)

// Limits bounds one submission. Zero fields take DefaultLimits values;
// explicit negatives are rejected at validation time, never treated as
// unlimited — the ingestion path has no unlimited mode.
type Limits struct {
	MaxSourceBytes int           // assembly text size
	MaxBlocks      int           // labeled basic blocks
	MaxInsts       int           // static instructions
	MaxDataEntries int           // distinct initialized data words
	MaxMemWords    int64         // data memory size in words
	MaxDynInsts    int64         // dynamic instructions across profiling runs
	MaxRunTime     time.Duration // wall-clock profiling deadline
}

// DefaultLimits is the shipped posture: generous for real kernels (the
// built-in suite fits with an order of magnitude to spare), hostile to
// resource bombs.
func DefaultLimits() Limits {
	return Limits{
		MaxSourceBytes: 1 << 20,          // 1 MiB of text
		MaxBlocks:      4096,             //
		MaxInsts:       1 << 16,          // 65536 static instructions
		MaxDataEntries: 1 << 16,          // 512 KiB of initialized data
		MaxMemWords:    1 << 21,          // 16 MiB data memory
		MaxDynInsts:    64 << 20,         // ~67M dynamic instructions
		MaxRunTime:     10 * time.Second, //
	}
}

// WithDefaults fills zero fields from DefaultLimits.
func (l Limits) WithDefaults() Limits {
	d := DefaultLimits()
	if l.MaxSourceBytes == 0 {
		l.MaxSourceBytes = d.MaxSourceBytes
	}
	if l.MaxBlocks == 0 {
		l.MaxBlocks = d.MaxBlocks
	}
	if l.MaxInsts == 0 {
		l.MaxInsts = d.MaxInsts
	}
	if l.MaxDataEntries == 0 {
		l.MaxDataEntries = d.MaxDataEntries
	}
	if l.MaxMemWords == 0 {
		l.MaxMemWords = d.MaxMemWords
	}
	if l.MaxDynInsts == 0 {
		l.MaxDynInsts = d.MaxDynInsts
	}
	if l.MaxRunTime == 0 {
		l.MaxRunTime = d.MaxRunTime
	}
	return l
}

// asmLimits projects the static subset onto the assembler's limits.
func (l Limits) asmLimits() asm.Limits {
	return asm.Limits{
		MaxSourceBytes: l.MaxSourceBytes,
		MaxBlocks:      l.MaxBlocks,
		MaxInsts:       l.MaxInsts,
		MaxDataEntries: l.MaxDataEntries,
		MaxMemWords:    l.MaxMemWords,
	}
}

// canonicalName is the program.Name every submission is assembled
// under. Fingerprints hash the name, so normalizing it makes the
// fingerprint purely content-derived: the same source from any tenant,
// under any label, lands on the same artifact key.
const canonicalName = "user"

// workloadNameHexLen is how much of the fingerprint the public
// workload name carries — enough that collisions are as unlikely as
// anyone needs, short enough to type.
const workloadNameHexLen = 12

// WorkloadName derives the public, content-addressed workload name
// from a program fingerprint.
func WorkloadName(fingerprint string) string {
	if len(fingerprint) > workloadNameHexLen {
		fingerprint = fingerprint[:workloadNameHexLen]
	}
	return "user-" + fingerprint
}

// CheckSource pre-screens raw text before any parsing: the only thing
// worth knowing about an oversized body is its size.
func CheckSource(src string, lim Limits) error {
	lim = lim.WithDefaults()
	if len(src) > lim.MaxSourceBytes {
		return fmt.Errorf("%w: %d bytes, cap %d", ErrTooLarge, len(src), lim.MaxSourceBytes)
	}
	if len(src) == 0 {
		return fmt.Errorf("%w: empty source", ErrInvalid)
	}
	return nil
}

// CheckProgram validates a parsed program against the structural
// limits. Parse already enforces these during assembly; this is the
// shared validator for callers that build IR some other way (the
// registry re-validates what it loads from disk, tests poke it
// directly).
func CheckProgram(p *program.Program, lim Limits) error {
	lim = lim.WithDefaults()
	if n := len(p.Blocks); n > lim.MaxBlocks {
		return fmt.Errorf("%w: %d blocks, cap %d", ErrInvalid, n, lim.MaxBlocks)
	}
	if n := p.StaticLen(); n > lim.MaxInsts {
		return fmt.Errorf("%w: %d static instructions, cap %d", ErrInvalid, n, lim.MaxInsts)
	}
	if n := len(p.Data); n > lim.MaxDataEntries {
		return fmt.Errorf("%w: %d initialized data words, cap %d", ErrInvalid, n, lim.MaxDataEntries)
	}
	if p.MemWords <= 0 {
		return fmt.Errorf("%w: no data memory declared", ErrInvalid)
	}
	if p.MemWords > lim.MaxMemWords {
		return fmt.Errorf("%w: %d memory words, cap %d", ErrInvalid, p.MemWords, lim.MaxMemWords)
	}
	for a := range p.Data {
		if a < 0 || a >= p.MemWords {
			return fmt.Errorf("%w: data init address %d outside memory [0,%d)", ErrInvalid, a, p.MemWords)
		}
	}
	return nil
}

// Parse turns untrusted source text into a validated, canonically
// named program. Violations of the size cap wrap ErrTooLarge; every
// other rejection wraps ErrInvalid.
func Parse(src string, lim Limits) (*program.Program, error) {
	lim = lim.WithDefaults()
	if err := CheckSource(src, lim); err != nil {
		return nil, err
	}
	p, err := asm.AssembleLimited(canonicalName, src, lim.asmLimits())
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if err := CheckProgram(p, lim); err != nil {
		return nil, err
	}
	return p, nil
}
