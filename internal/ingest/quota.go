package ingest

import (
	"errors"
	"fmt"
	"sync"
)

// ErrQuota: the tenant is over one of its quotas. The service maps it
// to quota_exceeded / HTTP 429.
var ErrQuota = errors.New("ingest: tenant quota exceeded")

// DefaultTenant is the bucket for requests that carry no tenant
// header: anonymous submitters share one quota rather than getting a
// fresh one per request.
const DefaultTenant = "anonymous"

// MaxTenantName bounds the tenant identifier itself — an attacker
// spinning a random header per request must not grow server state
// without bound faster than the tenant-count cap already allows.
const MaxTenantName = 64

// QuotaConfig bounds one tenant's footprint. Zero fields take
// DefaultQuota values; like Limits there is no unlimited mode.
type QuotaConfig struct {
	MaxWorkloads   int   // distinct stored workloads per tenant
	MaxSourceBytes int64 // total stored canonical source bytes per tenant
	MaxInFlight    int   // concurrent ingestion jobs per tenant
	MaxTenants     int   // distinct tenants the server will track
}

// DefaultQuota is the shipped posture.
func DefaultQuota() QuotaConfig {
	return QuotaConfig{
		MaxWorkloads:   64,
		MaxSourceBytes: 8 << 20, // 8 MiB of stored source
		MaxInFlight:    2,
		MaxTenants:     1024,
	}
}

// WithDefaults fills zero fields from DefaultQuota.
func (q QuotaConfig) WithDefaults() QuotaConfig {
	d := DefaultQuota()
	if q.MaxWorkloads == 0 {
		q.MaxWorkloads = d.MaxWorkloads
	}
	if q.MaxSourceBytes == 0 {
		q.MaxSourceBytes = d.MaxSourceBytes
	}
	if q.MaxInFlight == 0 {
		q.MaxInFlight = d.MaxInFlight
	}
	if q.MaxTenants == 0 {
		q.MaxTenants = d.MaxTenants
	}
	return q
}

// tenant is one submitter's ledger.
type tenant struct {
	workloads map[string]int64 // stored workload name -> charged bytes
	bytes     int64            // sum of workloads values
	inFlight  int
}

// Quotas tracks per-tenant consumption. Charges are keyed by workload
// name so the ledger is idempotent: a tenant re-submitting a program
// it already stored is never double-billed, while two tenants storing
// the same (content-shared) workload are each billed once — quotas
// meter tenants, dedup happens a layer down in the artifact store.
type Quotas struct {
	mu         sync.Mutex
	cfg        QuotaConfig
	tenants    map[string]*tenant
	rejections int64
}

// NewQuotas returns a tracker enforcing cfg.
func NewQuotas(cfg QuotaConfig) *Quotas {
	return &Quotas{cfg: cfg.WithDefaults(), tenants: make(map[string]*tenant)}
}

// CleanTenant normalizes a raw tenant identifier: empty maps to
// DefaultTenant, overlong names are rejected.
func CleanTenant(raw string) (string, error) {
	if raw == "" {
		return DefaultTenant, nil
	}
	if len(raw) > MaxTenantName {
		return "", fmt.Errorf("%w: tenant name %d bytes, cap %d", ErrInvalid, len(raw), MaxTenantName)
	}
	return raw, nil
}

// lookup returns the tenant ledger, creating it if the tenant cap
// allows. Callers hold q.mu.
func (q *Quotas) lookup(name string) (*tenant, error) {
	t, ok := q.tenants[name]
	if !ok {
		if len(q.tenants) >= q.cfg.MaxTenants {
			q.rejections++
			return nil, fmt.Errorf("%w: server is tracking the maximum %d tenants", ErrQuota, q.cfg.MaxTenants)
		}
		t = &tenant{workloads: make(map[string]int64)}
		q.tenants[name] = t
	}
	return t, nil
}

// Begin reserves an in-flight ingestion slot for the tenant. The
// returned release func must be called exactly once when the job ends,
// success or not.
func (q *Quotas) Begin(name string) (release func(), err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	t, err := q.lookup(name)
	if err != nil {
		return nil, err
	}
	if t.inFlight >= q.cfg.MaxInFlight {
		q.rejections++
		return nil, fmt.Errorf("%w: %d ingestion jobs already in flight, cap %d", ErrQuota, t.inFlight, q.cfg.MaxInFlight)
	}
	t.inFlight++
	var once sync.Once
	return func() {
		once.Do(func() {
			q.mu.Lock()
			t.inFlight--
			q.mu.Unlock()
		})
	}, nil
}

// Charge bills the tenant for storing workload name at bytes of
// canonical source. charged reports whether this call actually billed
// (false: the tenant already holds this workload — re-submission is
// free). A rejected charge leaves the ledger untouched.
func (q *Quotas) Charge(name, workload string, bytes int64) (charged bool, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	t, err := q.lookup(name)
	if err != nil {
		return false, err
	}
	if _, ok := t.workloads[workload]; ok {
		return false, nil
	}
	if len(t.workloads) >= q.cfg.MaxWorkloads {
		q.rejections++
		return false, fmt.Errorf("%w: %d workloads stored, cap %d", ErrQuota, len(t.workloads), q.cfg.MaxWorkloads)
	}
	if t.bytes+bytes > q.cfg.MaxSourceBytes {
		q.rejections++
		return false, fmt.Errorf("%w: %d source bytes stored + %d requested exceeds the %d cap", ErrQuota, t.bytes, bytes, q.cfg.MaxSourceBytes)
	}
	t.workloads[workload] = bytes
	t.bytes += bytes
	return true, nil
}

// Refund reverses a Charge, freeing the tenant's claim on workload.
// Used when ingestion fails after billing (the workload never became
// servable). Refunding an uncharged workload is a no-op.
func (q *Quotas) Refund(name, workload string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	t, ok := q.tenants[name]
	if !ok {
		return
	}
	if bytes, ok := t.workloads[workload]; ok {
		delete(t.workloads, workload)
		t.bytes -= bytes
	}
}

// QuotaStats is the aggregate view exported via /metrics.
type QuotaStats struct {
	Tenants         int   `json:"tenants"`
	StoredWorkloads int   `json:"stored_workloads"`
	StoredBytes     int64 `json:"stored_bytes"`
	InFlight        int   `json:"in_flight"`
	Rejections      int64 `json:"rejections"`
}

// Stats returns the current aggregate consumption.
func (q *Quotas) Stats() QuotaStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := QuotaStats{Tenants: len(q.tenants), Rejections: q.rejections}
	for _, t := range q.tenants {
		s.StoredWorkloads += len(t.workloads)
		s.StoredBytes += t.bytes
		s.InFlight += t.inFlight
	}
	return s
}
