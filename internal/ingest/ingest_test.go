package ingest

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/funcsim"
	"repro/internal/workloads"
)

// goodSrc is a small well-behaved program: sums 0..9 into memory.
const goodSrc = `
.mem 64
main:
  li   r1, 0
  li   r2, 10
  li   r3, 0
loop:
  add  r3, r3, r1
  addi r1, r1, 1
  blt  r1, r2, loop
end:
  st   r3, 0x10(r0)
  halt
`

// spinSrc never terminates: the sandbox must stop it, not the OS.
const spinSrc = `
.mem 8
main:
  li r1, 0
loop:
  addi r1, r1, 1
  jmp loop
`

// oobSrc stores far outside its declared memory.
const oobSrc = `
.mem 8
main:
  li r1, 7
  st r1, 4096(r0)
  halt
`

func TestParseGood(t *testing.T) {
	p, err := Parse(goodSrc, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != canonicalName {
		t.Fatalf("parsed name %q, want %q", p.Name, canonicalName)
	}
	name := WorkloadName(p.Fingerprint())
	if !strings.HasPrefix(name, "user-") || len(name) != len("user-")+workloadNameHexLen {
		t.Fatalf("workload name %q has the wrong shape", name)
	}
}

// TestParseContentAddressing: the same program text always lands on the
// same name, and the canonical (disassembled) form re-parses to the
// same fingerprint — the identity the registry persists under.
func TestParseContentAddressing(t *testing.T) {
	p1, err := Parse(goodSrc, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Parse(goodSrc+"\n; a comment changes nothing\n", Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if p1.Fingerprint() != p2.Fingerprint() {
		t.Fatal("comment changed the fingerprint")
	}
	back, err := Parse(asm.Disassemble(p1), Limits{})
	if err != nil {
		t.Fatalf("canonical form does not re-parse: %v", err)
	}
	if back.Fingerprint() != p1.Fingerprint() {
		t.Fatal("canonical round trip changed the fingerprint")
	}
}

func TestParseRejections(t *testing.T) {
	lim := Limits{MaxSourceBytes: 1 << 12, MaxBlocks: 4, MaxInsts: 8, MaxDataEntries: 2, MaxMemWords: 64}
	cases := []struct {
		name string
		src  string
		want error
	}{
		{"oversized source", strings.Repeat(";x\n", 1<<12), ErrTooLarge},
		{"empty source", "", ErrInvalid},
		{"garbage", "this is not assembly", ErrInvalid},
		{"no memory", "main:\n halt\n", ErrInvalid},
		{"too many blocks", ".mem 8\na:\n halt\nb:\n halt\nc:\n halt\nd:\n halt\ne:\n halt\n", ErrInvalid},
		{"too many insts", ".mem 8\nmain:\n" + strings.Repeat(" addi r1, r1, 1\n", 9) + " halt\n", ErrInvalid},
		{"too much data", ".mem 8\n.data 0 1\n.data 1 1\n.data 2 1\n main:\n halt\n", ErrInvalid},
		{"memory bomb", ".mem 1048576\nmain:\n halt\n", ErrInvalid},
		{"data outside memory", ".mem 8\n.data 63 1\n.data 100 1\nmain:\n halt\n", ErrInvalid},
	}
	for _, c := range cases {
		_, err := Parse(c.src, lim)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !errors.Is(err, c.want) {
			t.Errorf("%s: error %v, want %v", c.name, err, c.want)
		}
	}
}

// TestParseGiantMemClaimNoAlloc: a .mem claim beyond any limit must be
// rejected by arithmetic, not by attempting the allocation.
func TestParseGiantMemClaimNoAlloc(t *testing.T) {
	_, err := Parse(".mem 1099511627776\nmain:\n halt\n", Limits{})
	if !errors.Is(err, ErrInvalid) {
		t.Fatalf("terabyte .mem claim: %v, want ErrInvalid", err)
	}
}

func TestCheckProgramBuiltinsPass(t *testing.T) {
	// The default posture is sized for real kernels: most of the
	// compiled-in suite must clear it as-is. The handful of large-
	// footprint benchmarks (mcf_like-class data arrays) legitimately
	// exceed the conservative ingestion defaults — deliberate posture,
	// not a bug — so they are skipped and counted.
	lim := DefaultLimits()
	passed, skipped := 0, 0
	for _, spec := range workloads.All() {
		p := spec.Build()
		if p.MemWords > lim.MaxMemWords || len(p.Data) > lim.MaxDataEntries {
			skipped++
			continue
		}
		if err := CheckProgram(p, lim); err != nil {
			t.Errorf("built-in %s rejected by default limits: %v", spec.Name, err)
			continue
		}
		passed++
	}
	if passed < 10 {
		t.Fatalf("only %d built-ins clear the default limits (%d skipped as oversized) — defaults are too tight", passed, skipped)
	}
}

func TestProfileGood(t *testing.T) {
	p, err := Parse(goodSrc, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	pw, err := Profile(context.Background(), p, 0, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if pw.Prof.N == 0 {
		t.Fatal("profiled zero instructions")
	}
}

func TestProfileInstructionBudget(t *testing.T) {
	p, err := Parse(spinSrc, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Profile(context.Background(), p, 0, Limits{MaxDynInsts: 10_000})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("infinite loop: %v, want ErrBudget", err)
	}
	if !errors.Is(err, funcsim.ErrMaxInstructions) {
		t.Fatalf("budget error should carry the funcsim cause, got %v", err)
	}
}

func TestProfileWallClockBudget(t *testing.T) {
	p, err := Parse(spinSrc, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	// A huge instruction budget with a tiny deadline: only the clock
	// can stop it.
	start := time.Now()
	_, err = Profile(context.Background(), p, 0, Limits{MaxDynInsts: 1 << 40, MaxRunTime: 50 * time.Millisecond})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("spin under deadline: %v, want ErrBudget", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline enforcement took %v", elapsed)
	}
}

func TestProfileRuntimeFault(t *testing.T) {
	p, err := Parse(oobSrc, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Profile(context.Background(), p, 0, Limits{})
	if !errors.Is(err, ErrRuntime) {
		t.Fatalf("out-of-bounds store: %v, want ErrRuntime", err)
	}
	if !errors.Is(err, funcsim.ErrMemFault) {
		t.Fatalf("fault error should carry the funcsim cause, got %v", err)
	}
}

// TestProfileCallerContextWins: when the request's own context dies,
// Profile reports that (for the lifecycle taxonomy), not a budget
// verdict.
func TestProfileCallerContextWins(t *testing.T) {
	p, err := Parse(spinSrc, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, err = Profile(ctx, p, 0, Limits{MaxDynInsts: 1 << 40})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled caller: %v, want context.Canceled", err)
	}
	if errors.Is(err, ErrBudget) {
		t.Fatal("caller cancellation misfiled as a budget verdict")
	}
}

func TestRegistryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	reg, err := OpenRegistry(dir, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Parse(goodSrc, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	canon := asm.Disassemble(p)
	e, created := reg.Add(p, canon)
	if !created || !e.Stored {
		t.Fatalf("first Add: created=%v stored=%v, want true/true", created, e.Stored)
	}
	if _, again := reg.Add(p, canon); again {
		t.Fatal("second Add reported created")
	}
	if reg.Len() != 1 {
		t.Fatalf("registry holds %d entries, want 1", reg.Len())
	}

	// A fresh open must restore the same entry under the same name.
	reg2, err := OpenRegistry(dir, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := reg2.Lookup(e.Name)
	if !ok {
		t.Fatalf("reopened registry lost %s", e.Name)
	}
	if got.Fingerprint != e.Fingerprint {
		t.Fatal("reopened entry changed fingerprint")
	}
	if got.Source != canon {
		t.Fatal("reopened entry changed source")
	}
}

// TestRegistrySkipsTamperedFiles: corrupt or renamed files are counted
// and dropped, never served.
func TestRegistrySkipsTamperedFiles(t *testing.T) {
	dir := t.TempDir()
	reg, err := OpenRegistry(dir, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Parse(goodSrc, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	e, _ := reg.Add(p, asm.Disassemble(p))

	// Corrupt file, valid name shape.
	if err := os.WriteFile(filepath.Join(dir, "user-000000000000"+SourceExt), []byte("not a program"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Valid program under a name that does not match its content.
	if err := os.WriteFile(filepath.Join(dir, "user-ffffffffffff"+SourceExt), []byte(e.Source), 0o644); err != nil {
		t.Fatal(err)
	}

	reg2, err := OpenRegistry(dir, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if reg2.Len() != 1 {
		t.Fatalf("tampered registry served %d entries, want 1", reg2.Len())
	}
	if _, ok := reg2.Lookup(e.Name); !ok {
		t.Fatal("legitimate entry lost")
	}
	if n := reg2.LoadErrors(); n != 2 {
		t.Fatalf("load errors = %d, want 2", n)
	}
}

func TestQuotaInFlight(t *testing.T) {
	q := NewQuotas(QuotaConfig{MaxInFlight: 1})
	rel, err := q.Begin("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Begin("a"); !errors.Is(err, ErrQuota) {
		t.Fatalf("second in-flight job: %v, want ErrQuota", err)
	}
	// Another tenant is unaffected.
	rel2, err := q.Begin("b")
	if err != nil {
		t.Fatalf("tenant b blocked by tenant a: %v", err)
	}
	rel2()
	rel()
	rel() // double release must not underflow
	if _, err := q.Begin("a"); err != nil {
		t.Fatalf("slot not released: %v", err)
	}
	if q.Stats().Rejections != 1 {
		t.Fatalf("rejections = %d, want 1", q.Stats().Rejections)
	}
}

func TestQuotaStorage(t *testing.T) {
	q := NewQuotas(QuotaConfig{MaxWorkloads: 2, MaxSourceBytes: 100})
	if ch, err := q.Charge("a", "w1", 60); err != nil || !ch {
		t.Fatalf("first charge: %v/%v", ch, err)
	}
	// Idempotent: same workload again is free.
	if ch, err := q.Charge("a", "w1", 60); err != nil || ch {
		t.Fatalf("duplicate charge: charged=%v err=%v, want false/nil", ch, err)
	}
	// Byte cap.
	if _, err := q.Charge("a", "w2", 60); !errors.Is(err, ErrQuota) {
		t.Fatalf("byte overflow: %v, want ErrQuota", err)
	}
	// Refund frees the bytes.
	q.Refund("a", "w1")
	if ch, err := q.Charge("a", "w2", 60); err != nil || !ch {
		t.Fatalf("charge after refund: %v/%v", ch, err)
	}
	// Workload-count cap.
	if ch, err := q.Charge("a", "w3", 1); err != nil || !ch {
		t.Fatalf("second workload: %v/%v", ch, err)
	}
	if _, err := q.Charge("a", "w4", 1); !errors.Is(err, ErrQuota) {
		t.Fatalf("third workload: %v, want ErrQuota", err)
	}
	// Tenants are independent ledgers.
	if ch, err := q.Charge("b", "w4", 1); err != nil || !ch {
		t.Fatalf("tenant b blocked: %v/%v", ch, err)
	}
	st := q.Stats()
	if st.Tenants != 2 || st.StoredWorkloads != 3 {
		t.Fatalf("stats = %+v, want 2 tenants / 3 workloads", st)
	}
}

func TestQuotaTenantCap(t *testing.T) {
	q := NewQuotas(QuotaConfig{MaxTenants: 2})
	for _, tn := range []string{"a", "b"} {
		rel, err := q.Begin(tn)
		if err != nil {
			t.Fatal(err)
		}
		rel()
	}
	if _, err := q.Begin("c"); !errors.Is(err, ErrQuota) {
		t.Fatalf("third tenant: %v, want ErrQuota", err)
	}
}

func TestCleanTenant(t *testing.T) {
	if tn, err := CleanTenant(""); err != nil || tn != DefaultTenant {
		t.Fatalf("empty tenant: %q/%v", tn, err)
	}
	if tn, err := CleanTenant("team-a"); err != nil || tn != "team-a" {
		t.Fatalf("named tenant: %q/%v", tn, err)
	}
	if _, err := CleanTenant(strings.Repeat("x", MaxTenantName+1)); !errors.Is(err, ErrInvalid) {
		t.Fatalf("overlong tenant: %v, want ErrInvalid", err)
	}
}
