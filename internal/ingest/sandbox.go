package ingest

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/funcsim"
	"repro/internal/harness"
	"repro/internal/program"
)

// Profile runs an untrusted program to completion inside the sandbox
// walls and returns its profiled workload, exactly the shape the
// harness pool and artifact store consume. minDyn is the service's
// dynamic-instruction scaling floor (0 = one run); profiling stops
// with ErrBudget if the floor cannot be met inside lim.MaxDynInsts.
//
// Failure classification (all errors.Is-able):
//
//   - instruction cap or wall-clock deadline hit → ErrBudget
//   - out-of-bounds access, runaway PC, zero work, recovered panic →
//     ErrRuntime
//   - the caller's own ctx ended → its ctx.Err(), unwrapped, so the
//     service's lifecycle taxonomy (cancelled/deadline_exceeded) still
//     wins for request-level causes.
func Profile(ctx context.Context, p *program.Program, minDyn int64, lim Limits) (*harness.Profiled, error) {
	lim = lim.WithDefaults()
	rctx, cancel := context.WithTimeout(ctx, lim.MaxRunTime)
	defer cancel()
	pw, err := harness.ProfileProgramSandboxedCtx(rctx, p, minDyn, lim.MaxDynInsts)
	if err == nil {
		return pw, nil
	}
	switch {
	case ctx.Err() != nil:
		// The request itself died (disconnect, endpoint deadline):
		// report that, not a sandbox verdict.
		return nil, ctx.Err()
	case errors.Is(err, funcsim.ErrMaxInstructions):
		return nil, fmt.Errorf("%w: dynamic instructions over the %d cap: %w", ErrBudget, lim.MaxDynInsts, err)
	case errors.Is(err, context.DeadlineExceeded):
		// rctx's deadline, not the caller's: the wall-clock budget.
		return nil, fmt.Errorf("%w: ran past the %v wall-clock budget", ErrBudget, lim.MaxRunTime)
	default:
		return nil, fmt.Errorf("%w: %w", ErrRuntime, err)
	}
}
