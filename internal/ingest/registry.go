package ingest

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/program"
)

// SourceExt is the on-disk extension of persisted submissions.
const SourceExt = ".asm"

// Entry is one accepted workload: the canonical source, its parsed
// program, and its content identity. Entries are immutable after
// registration — the program is shared read-only by every admission
// that rebuilds the workload.
type Entry struct {
	Name        string // public content-addressed name ("user-<fp12>")
	Fingerprint string // full program fingerprint (artifact identity)
	Source      string // canonical (disassembled) text, what persists
	Prog        *program.Program
	Stored      bool // persisted to the registry dir (false = memory-only or a failed write)
}

// SourceBytes is what the entry charges against tenant byte quotas.
func (e *Entry) SourceBytes() int64 { return int64(len(e.Source)) }

// Registry is the named set of ingested workloads, persisted (when a
// directory is configured) as one canonical .asm file per fingerprint
// so a restarted server re-registers every accepted submission before
// serving — the ingestion analogue of the artifact store's warm start.
type Registry struct {
	mu     sync.RWMutex
	dir    string // "" = memory-only
	lim    Limits
	byName map[string]*Entry

	loadErrors int64 // corrupt/invalid files skipped at open
	saveErrors int64 // failed persists (entry stays memory-resident)
}

// OpenRegistry loads every persisted submission under dir (creating it
// if needed); dir == "" makes a memory-only registry. Files that no
// longer parse, no longer satisfy lim, or whose content moved away
// from their name are skipped and counted, never served: the registry
// can only lose a workload, not resurrect a bad one.
func OpenRegistry(dir string, lim Limits) (*Registry, error) {
	r := &Registry{dir: dir, lim: lim.WithDefaults(), byName: make(map[string]*Entry)}
	if dir == "" {
		return r, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ingest: opening registry: %w", err)
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*"+SourceExt))
	if err != nil {
		return nil, fmt.Errorf("ingest: scanning registry: %w", err)
	}
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			r.loadErrors++
			continue
		}
		p, err := Parse(string(src), r.lim)
		if err != nil {
			r.loadErrors++
			continue
		}
		name := WorkloadName(p.Fingerprint())
		if filepath.Base(path) != name+SourceExt {
			// Renamed or tampered file: its content no longer matches
			// its key, so it would collide with the real thing.
			r.loadErrors++
			continue
		}
		r.byName[name] = &Entry{
			Name:        name,
			Fingerprint: p.Fingerprint(),
			Source:      string(src),
			Prog:        p,
			Stored:      true,
		}
	}
	return r, nil
}

// Add registers a validated program under its content-derived name and
// persists canon, its canonical (disassembled) source. It is
// idempotent: re-submitting an already registered program returns the
// existing entry with created=false. Persist failures keep the entry
// memory-resident (counted in SaveErrors) — ingestion succeeded,
// durability degraded, exactly like the artifact store's best-effort
// write-through.
func (r *Registry) Add(p *program.Program, canon string) (e *Entry, created bool) {
	fp := p.Fingerprint()
	name := WorkloadName(fp)

	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byName[name]; ok {
		return e, false
	}
	e = &Entry{Name: name, Fingerprint: fp, Source: canon, Prog: p}
	if r.dir != "" {
		if werr := writeAtomic(filepath.Join(r.dir, name+SourceExt), []byte(canon)); werr != nil {
			r.saveErrors++
		} else {
			e.Stored = true
		}
	}
	r.byName[name] = e
	return e, true
}

// Lookup returns the entry named name.
func (r *Registry) Lookup(name string) (*Entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.byName[name]
	return e, ok
}

// List returns all entries sorted by name.
func (r *Registry) List() []*Entry {
	r.mu.RLock()
	out := make([]*Entry, 0, len(r.byName))
	for _, e := range r.byName {
		out = append(out, e)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of registered workloads.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byName)
}

// LoadErrors returns the number of persisted files skipped at open.
func (r *Registry) LoadErrors() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.loadErrors
}

// SaveErrors returns the number of failed persists.
func (r *Registry) SaveErrors() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.saveErrors
}

// writeAtomic writes via a temp file + rename, the same all-or-nothing
// discipline as the artifact store: a crashed or concurrent writer can
// never leave a half-written source to be loaded on the next boot.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".ingest-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
