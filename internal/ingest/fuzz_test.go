package ingest

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/randprog"
	"repro/internal/workloads"
)

// FuzzSubmission drives arbitrary text through the full ingestion
// gauntlet — CheckSource, Parse, sandboxed Profile under tiny budgets —
// exactly the path POST /v1/workloads walks. The invariant is total
// containment: no input may panic, hang past the wall-clock budget, or
// allocate proportionally to unvalidated claims. Errors are fine; they
// are the product.
func FuzzSubmission(f *testing.F) {
	f.Add(goodSrc)
	f.Add(spinSrc)
	f.Add(oobSrc)
	f.Add(".mem 1099511627776\nmain:\n halt\n")
	f.Add(".mem 8\nmain:\n jmp main\n")
	f.Add(strings.Repeat("a:\n halt\n", 100))
	if spec, err := workloads.ByName("crc32"); err == nil {
		f.Add(asm.Disassemble(spec.Build()))
	}
	f.Add(asm.Disassemble(randprog.Generate(randprog.Default(2))))

	lim := Limits{
		MaxSourceBytes: 1 << 14,
		MaxBlocks:      128,
		MaxInsts:       2048,
		MaxDataEntries: 512,
		MaxMemWords:    1 << 14,
		MaxDynInsts:    200_000,
		MaxRunTime:     2 * time.Second,
	}
	f.Fuzz(func(t *testing.T, src string) {
		if err := CheckSource(src, lim); err != nil {
			return
		}
		p, err := Parse(src, lim)
		if err != nil {
			return
		}
		start := time.Now()
		if _, err := Profile(context.Background(), p, 0, lim); err == nil {
			// Accepted: the canonical identity must be reproducible.
			if WorkloadName(p.Fingerprint()) == "" {
				t.Fatal("accepted program with empty workload name")
			}
		}
		if elapsed := time.Since(start); elapsed > 30*time.Second {
			t.Fatalf("sandbox let a run go %v, budget was %v", elapsed, lim.MaxRunTime)
		}
	})
}
