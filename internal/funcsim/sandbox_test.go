package funcsim

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/program"
)

// TestRunCtxStopsInfiniteLoop: a context deadline must stop a tight
// loop mid-run — the wall-clock wall the ingestion sandbox leans on.
func TestRunCtxStopsInfiniteLoop(t *testing.T) {
	p := program.New("t", 8)
	p.Block("spin").Jmp("spin")
	m := MustNew(p)
	m.MaxInstructions = 1 << 40 // only the clock can stop this
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := m.RunCtx(ctx, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestRunCtxUncancellableMatchesRun: without a cancellable context the
// polling path must not change behavior or results.
func TestRunCtxUncancellableMatchesRun(t *testing.T) {
	build := func() *Machine {
		p := program.New("t", 64)
		b := p.Block("main")
		b.Li(1, 0).Li(2, 1000).Li(3, 0)
		lb := p.Block("loop")
		lb.Add(3, 3, 1).Addi(1, 1, 1).Blt(1, 2, "loop")
		p.Block("end").St(3, 0, 16).Halt()
		return MustNew(p)
	}
	m1 := build()
	n1, err1 := m1.Run(nil)
	m2 := build()
	n2, err2 := m2.RunCtx(context.Background(), nil)
	if err1 != nil || err2 != nil || n1 != n2 {
		t.Fatalf("Run/RunCtx diverged: n %d/%d, errs %v/%v", n1, n2, err1, err2)
	}
	if m1.Mem[16] != m2.Mem[16] {
		t.Fatal("Run/RunCtx computed different results")
	}
}

// TestFaultSentinels: out-of-range accesses carry typed causes the
// ingestion taxonomy can branch on.
func TestFaultSentinels(t *testing.T) {
	t.Run("load", func(t *testing.T) {
		p := program.New("t", 8)
		p.Block("m").Ld(1, 0, 100).Halt()
		if _, err := MustNew(p).Run(nil); !errors.Is(err, ErrMemFault) {
			t.Errorf("err = %v, want ErrMemFault", err)
		}
	})
	t.Run("store", func(t *testing.T) {
		p := program.New("t", 8)
		p.Block("m").Li(1, -3).St(1, 1, 0).Halt()
		if _, err := MustNew(p).Run(nil); !errors.Is(err, ErrMemFault) {
			t.Errorf("err = %v, want ErrMemFault", err)
		}
	})
}

// TestNewRejectsMemoryBomb: a program claiming more memory than the
// global ceiling must be rejected before the allocation is attempted.
func TestNewRejectsMemoryBomb(t *testing.T) {
	p := program.New("t", 16)
	p.Block("m").Halt()
	p.MemWords = program.MaxMemWords + 1
	if _, err := New(p); err == nil {
		t.Fatal("memory bomb accepted")
	}
}
