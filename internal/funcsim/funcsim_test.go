package funcsim

import (
	"errors"
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/trace"
)

// run executes a freshly built single-block program and returns the
// machine for state inspection.
func run(t *testing.T, build func(b *program.Builder)) *Machine {
	t.Helper()
	p := program.New("t", 256)
	b := p.Block("main")
	build(b)
	b.Halt()
	m := MustNew(p)
	if _, err := m.Run(nil); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestALUSemantics(t *testing.T) {
	cases := []struct {
		name  string
		build func(b *program.Builder)
		reg   isa.Reg
		want  int64
	}{
		{"add", func(b *program.Builder) { b.Li(1, 3).Li(2, 4).Add(3, 1, 2) }, 3, 7},
		{"sub", func(b *program.Builder) { b.Li(1, 3).Li(2, 4).Sub(3, 1, 2) }, 3, -1},
		{"and", func(b *program.Builder) { b.Li(1, 6).Li(2, 3).And(3, 1, 2) }, 3, 2},
		{"or", func(b *program.Builder) { b.Li(1, 6).Li(2, 3).Or(3, 1, 2) }, 3, 7},
		{"xor", func(b *program.Builder) { b.Li(1, 6).Li(2, 3).Xor(3, 1, 2) }, 3, 5},
		{"shl", func(b *program.Builder) { b.Li(1, 3).Li(2, 4).Shl(3, 1, 2) }, 3, 48},
		{"shr", func(b *program.Builder) { b.Li(1, -8).Li(2, 62).Shr(3, 1, 2) }, 3, 3},
		{"sra", func(b *program.Builder) { b.Li(1, -8).Li(2, 2).Sra(3, 1, 2) }, 3, -2},
		{"slt true", func(b *program.Builder) { b.Li(1, -1).Li(2, 0).Slt(3, 1, 2) }, 3, 1},
		{"slt false", func(b *program.Builder) { b.Li(1, 5).Li(2, 0).Slt(3, 1, 2) }, 3, 0},
		{"addi", func(b *program.Builder) { b.Li(1, 3).Addi(3, 1, -5) }, 3, -2},
		{"andi", func(b *program.Builder) { b.Li(1, 7).Andi(3, 1, 5) }, 3, 5},
		{"ori", func(b *program.Builder) { b.Li(1, 8).Ori(3, 1, 5) }, 3, 13},
		{"xori", func(b *program.Builder) { b.Li(1, 6).Xori(3, 1, 3) }, 3, 5},
		{"shli", func(b *program.Builder) { b.Li(1, 3).Shli(3, 1, 4) }, 3, 48},
		{"shri", func(b *program.Builder) { b.Li(1, 16).Shri(3, 1, 2) }, 3, 4},
		{"srai", func(b *program.Builder) { b.Li(1, -16).Srai(3, 1, 2) }, 3, -4},
		{"slti", func(b *program.Builder) { b.Li(1, 3).Slti(3, 1, 4) }, 3, 1},
		{"lui", func(b *program.Builder) { b.Li(3, 12345) }, 3, 12345},
		{"mul", func(b *program.Builder) { b.Li(1, -3).Li(2, 4).Mul(3, 1, 2) }, 3, -12},
		{"div", func(b *program.Builder) { b.Li(1, 17).Li(2, 5).Div(3, 1, 2) }, 3, 3},
		{"div neg", func(b *program.Builder) { b.Li(1, -17).Li(2, 5).Div(3, 1, 2) }, 3, -3},
		{"div by zero", func(b *program.Builder) { b.Li(1, 17).Div(3, 1, 0) }, 3, 0},
		{"rem", func(b *program.Builder) { b.Li(1, 17).Li(2, 5).Rem(3, 1, 2) }, 3, 2},
		{"rem by zero", func(b *program.Builder) { b.Li(1, 17).Rem(3, 1, 0) }, 3, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := run(t, c.build)
			if got := m.Regs[c.reg]; got != c.want {
				t.Errorf("%s = %d, want %d", c.reg, got, c.want)
			}
		})
	}
}

func TestZeroRegisterIsImmutable(t *testing.T) {
	m := run(t, func(b *program.Builder) {
		b.Li(0, 99)
		b.Addi(0, 0, 5)
		b.Add(1, 0, 0)
	})
	if m.Regs[0] != 0 {
		t.Errorf("r0 = %d, want 0", m.Regs[0])
	}
	if m.Regs[1] != 0 {
		t.Errorf("r1 = %d, want 0", m.Regs[1])
	}
}

func TestLoadStore(t *testing.T) {
	m := run(t, func(b *program.Builder) {
		b.Li(1, 7)
		b.Li(2, 10)
		b.St(1, 2, 5)  // mem[15] = 7
		b.Ld(3, 2, 5)  // r3 = mem[15]
		b.Ld(4, 0, 15) // r4 = mem[15]
	})
	if m.Mem[15] != 7 || m.Regs[3] != 7 || m.Regs[4] != 7 {
		t.Errorf("mem[15]=%d r3=%d r4=%d, want all 7", m.Mem[15], m.Regs[3], m.Regs[4])
	}
}

func TestDataInitialization(t *testing.T) {
	p := program.New("t", 64)
	p.SetDataSlice(8, []int64{5, 6})
	b := p.Block("main")
	b.Ld(1, 0, 8)
	b.Ld(2, 0, 9)
	b.Halt()
	m := MustNew(p)
	if _, err := m.Run(nil); err != nil {
		t.Fatal(err)
	}
	if m.Regs[1] != 5 || m.Regs[2] != 6 {
		t.Errorf("r1=%d r2=%d, want 5 6", m.Regs[1], m.Regs[2])
	}
}

func TestBranchSemantics(t *testing.T) {
	// Count down from 5 with BNE; then exercise BEQ/BLT/BGE arms.
	p := program.New("t", 16)
	b := p.Block("init")
	b.Li(1, 5)
	b.Li(2, 0)
	b = p.Block("loop")
	b.Addi(2, 2, 1)
	b.Addi(1, 1, -1)
	b.Bne(1, 0, "loop")
	b = p.Block("after")
	b.Beq(1, 0, "ok")
	b.Li(3, 111) // skipped
	b = p.Block("ok")
	b.Li(4, -1)
	b.Blt(4, 0, "ok2")
	b.Li(3, 222) // skipped
	b = p.Block("ok2")
	b.Bge(4, 0, "bad")
	b.Li(5, 1)
	b.Halt()
	b = p.Block("bad")
	b.Li(5, 2)
	b.Halt()

	m := MustNew(p)
	if _, err := m.Run(nil); err != nil {
		t.Fatal(err)
	}
	if m.Regs[2] != 5 {
		t.Errorf("loop iterations = %d, want 5", m.Regs[2])
	}
	if m.Regs[3] != 0 {
		t.Errorf("taken branches executed skipped code (r3=%d)", m.Regs[3])
	}
	if m.Regs[5] != 1 {
		t.Errorf("bge taken when it should not be (r5=%d)", m.Regs[5])
	}
}

func TestJalRecordsReturnAddress(t *testing.T) {
	p := program.New("t", 16)
	b := p.Block("main")
	b.Nop()
	b.Jal(1, "sub") // at index 1; return PC is 2
	b = p.Block("cont")
	b.Halt()
	b = p.Block("sub")
	b.Li(2, 7)
	b.Jmp("cont")
	m := MustNew(p)
	if _, err := m.Run(nil); err != nil {
		t.Fatal(err)
	}
	if m.Regs[1] != 2 {
		t.Errorf("jal link = %d, want 2", m.Regs[1])
	}
	if m.Regs[2] != 7 {
		t.Errorf("subroutine did not run (r2=%d)", m.Regs[2])
	}
}

func TestOutOfRangeAccessesFail(t *testing.T) {
	t.Run("load", func(t *testing.T) {
		p := program.New("t", 8)
		p.Block("m").Ld(1, 0, 100).Halt()
		m := MustNew(p)
		if _, err := m.Run(nil); err == nil {
			t.Error("out-of-range load succeeded")
		}
	})
	t.Run("store negative", func(t *testing.T) {
		p := program.New("t", 8)
		p.Block("m").Li(1, -3).St(1, 1, 0).Halt()
		m := MustNew(p)
		if _, err := m.Run(nil); err == nil {
			t.Error("negative-address store succeeded")
		}
	})
}

func TestInstructionLimit(t *testing.T) {
	p := program.New("t", 8)
	p.Block("spin").Jmp("spin")
	m := MustNew(p)
	m.MaxInstructions = 100
	_, err := m.Run(nil)
	if !errors.Is(err, ErrMaxInstructions) {
		t.Errorf("err = %v, want ErrMaxInstructions", err)
	}
}

func TestTraceRecords(t *testing.T) {
	p := program.New("t", 32)
	b := p.Block("main")
	b.Li(1, 3)       // seq 0
	b.St(1, 0, 9)    // seq 1
	b.Ld(2, 0, 9)    // seq 2
	b.Beq(1, 2, "x") // seq 3, taken
	b.Nop()
	b = p.Block("x")
	b.Halt()
	rec := &trace.Recorder{}
	n, err := RunProgram(p, rec)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("retired %d, want 4 (HALT not counted)", n)
	}
	ds := rec.Insts
	if !ds[1].IsStore || ds[1].EffAddr != 9 {
		t.Errorf("store record = %+v", ds[1])
	}
	if !ds[2].IsLoad || ds[2].EffAddr != 9 || !ds[2].HasDst || ds[2].Dst != 2 {
		t.Errorf("load record = %+v", ds[2])
	}
	if !ds[3].IsBranch || !ds[3].Taken {
		t.Errorf("branch record = %+v", ds[3])
	}
	if ds[3].NumSrc != 2 {
		t.Errorf("branch sources = %d, want 2", ds[3].NumSrc)
	}
	if ds[3].NextPC != ds[3].Target {
		t.Errorf("taken branch NextPC=%d Target=%d", ds[3].NextPC, ds[3].Target)
	}
	for i, d := range ds {
		if d.Seq != int64(i) {
			t.Errorf("seq %d at position %d", d.Seq, i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	build := func() *program.Program {
		p := program.New("t", 64)
		p.SetDataSlice(0, []int64{9, 8, 7})
		b := p.Block("main")
		b.Li(1, 0)
		b.Li(2, 3)
		b.Li(3, 0)
		b = p.Block("loop")
		b.Ld(4, 1, 0)
		b.Add(3, 3, 4)
		b.Addi(1, 1, 1)
		b.Blt(1, 2, "loop")
		b = p.Block("end")
		b.Halt()
		return p
	}
	m1, m2 := MustNew(build()), MustNew(build())
	n1, _ := m1.Run(nil)
	n2, _ := m2.Run(nil)
	if n1 != n2 || m1.Regs[3] != m2.Regs[3] {
		t.Errorf("non-deterministic execution: n=%d/%d sum=%d/%d", n1, n2, m1.Regs[3], m2.Regs[3])
	}
	if m1.Regs[3] != 24 {
		t.Errorf("sum = %d, want 24", m1.Regs[3])
	}
}

func TestNewRejectsBadPrograms(t *testing.T) {
	p := program.New("t", 0) // no memory
	p.Block("m").Halt()
	if _, err := New(p); err == nil {
		t.Error("program with no memory accepted")
	}
	p2 := program.New("t", 8)
	p2.SetData(100, 1) // out of range init
	p2.Block("m").Halt()
	if _, err := New(p2); err == nil {
		t.Error("out-of-range data init accepted")
	}
}
