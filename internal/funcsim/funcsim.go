// Package funcsim is the functional (instruction-set) simulator. It
// plays the role M5's functional mode plays in the paper: it executes a
// program to produce the dynamic instruction stream that profiling and
// timing simulation consume.
//
// The simulator is architecturally simple: 32 64-bit registers (r0
// hardwired to zero) and a flat word-addressed data memory. Instruction
// memory is the static instruction array itself; PCs are static indices.
package funcsim

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/trace"
)

// ErrMaxInstructions is returned when execution exceeds the configured
// dynamic instruction budget without reaching HALT.
var ErrMaxInstructions = errors.New("funcsim: dynamic instruction limit exceeded")

// ErrMemFault marks a load/store whose effective address fell outside
// the program's data memory; errors.Is-able so the ingestion path can
// classify hostile programs without parsing messages.
var ErrMemFault = errors.New("funcsim: memory access out of range")

// ErrPCFault marks control flow escaping the instruction array (a
// program falling off its last block without HALT).
var ErrPCFault = errors.New("funcsim: PC out of range")

// DefaultMaxInstructions bounds runaway programs.
const DefaultMaxInstructions = 200_000_000

// ctxCheckInterval is how many retired instructions RunCtx lets pass
// between context checks: frequent enough that a wall-clock deadline
// on an adversarial infinite loop bites within microseconds, rare
// enough that the hot interpreter loop never notices.
const ctxCheckInterval = 1 << 16

// Machine executes one program.
type Machine struct {
	Instrs  []isa.Instr
	Mem     []int64
	Regs    [isa.NumRegs]int64
	PC      int64
	Retired int64
	Halted  bool

	// MaxInstructions bounds the run; DefaultMaxInstructions if zero.
	MaxInstructions int64
}

// New builds a machine for the program: it assembles the IR, allocates
// and initializes data memory.
func New(p *program.Program) (*Machine, error) {
	ins, err := p.Build()
	if err != nil {
		return nil, err
	}
	if p.MemWords <= 0 {
		return nil, fmt.Errorf("funcsim: program %q has no data memory", p.Name)
	}
	// Build enforces this too; re-check at the allocation site so a
	// hand-assembled Program can never trigger an unbounded make.
	if p.MemWords > program.MaxMemWords {
		return nil, fmt.Errorf("funcsim: program %q wants %d memory words, above the %d-word ceiling", p.Name, p.MemWords, int64(program.MaxMemWords))
	}
	m := &Machine{Instrs: ins, Mem: make([]int64, p.MemWords)}
	for a, v := range p.Data {
		if a < 0 || a >= p.MemWords {
			return nil, fmt.Errorf("funcsim: program %q: data init address %d out of range [0,%d)", p.Name, a, p.MemWords)
		}
		m.Mem[a] = v
	}
	return m, nil
}

// MustNew is New that panics on error.
func MustNew(p *program.Program) *Machine {
	m, err := New(p)
	if err != nil {
		panic(err)
	}
	return m
}

// Run executes until HALT, streaming every retired instruction to sink
// (which may be nil to execute without observation; a *trace.Builder
// sink records the run into the columnar store). It returns the number
// of dynamically executed instructions (HALT itself is not counted or
// streamed: it never enters the modeled pipeline's trace).
func (m *Machine) Run(sink trace.Consumer) (int64, error) {
	return m.RunCtx(context.Background(), sink)
}

// RunCtx is Run under a context: every ctxCheckInterval retired
// instructions the context is polled, so a deadline or cancellation
// stops even a tight infinite loop promptly (returning ctx.Err() with
// the partial retirement count). A background context adds no per-
// instruction work; Run and RunCtx retire identical streams.
func (m *Machine) RunCtx(ctx context.Context, sink trace.Consumer) (int64, error) {
	maxN := m.MaxInstructions
	if maxN <= 0 {
		maxN = DefaultMaxInstructions
	}
	record := sink != nil
	watched := ctx.Done() != nil
	var local trace.DynInst
	d := &local
	memLen := int64(len(m.Mem))
	for !m.Halted {
		if watched && m.Retired&(ctxCheckInterval-1) == 0 {
			if err := ctx.Err(); err != nil {
				return m.Retired, err
			}
		}
		if m.PC < 0 || m.PC >= int64(len(m.Instrs)) {
			return m.Retired, fmt.Errorf("%w: PC %d outside [0,%d)", ErrPCFault, m.PC, len(m.Instrs))
		}
		in := &m.Instrs[m.PC]
		if in.Op == isa.HALT {
			m.Halted = true
			break
		}
		if m.Retired >= maxN {
			return m.Retired, ErrMaxInstructions
		}

		nextPC := m.PC + 1
		if record {
			// Unobserved runs skip the record build; stale fields are
			// never read.
			*d = trace.DynInst{
				Seq:   m.Retired,
				PC:    m.PC,
				Op:    in.Op,
				Class: isa.ClassOf(in.Op),
			}
		}

		s1 := m.Regs[in.Src1]
		s2 := m.Regs[in.Src2]
		var wval int64
		writes := false

		switch in.Op {
		case isa.NOP:
		case isa.ADD:
			wval, writes = s1+s2, true
		case isa.SUB:
			wval, writes = s1-s2, true
		case isa.AND:
			wval, writes = s1&s2, true
		case isa.OR:
			wval, writes = s1|s2, true
		case isa.XOR:
			wval, writes = s1^s2, true
		case isa.SHL:
			wval, writes = s1<<uint64(s2&63), true
		case isa.SHR:
			wval, writes = int64(uint64(s1)>>uint64(s2&63)), true
		case isa.SRA:
			wval, writes = s1>>uint64(s2&63), true
		case isa.SLT:
			wval, writes = boolTo64(s1 < s2), true
		case isa.ADDI:
			wval, writes = s1+in.Imm, true
		case isa.ANDI:
			wval, writes = s1&in.Imm, true
		case isa.ORI:
			wval, writes = s1|in.Imm, true
		case isa.XORI:
			wval, writes = s1^in.Imm, true
		case isa.SHLI:
			wval, writes = s1<<uint64(in.Imm&63), true
		case isa.SHRI:
			wval, writes = int64(uint64(s1)>>uint64(in.Imm&63)), true
		case isa.SRAI:
			wval, writes = s1>>uint64(in.Imm&63), true
		case isa.SLTI:
			wval, writes = boolTo64(s1 < in.Imm), true
		case isa.LUI:
			wval, writes = in.Imm, true
		case isa.MUL:
			wval, writes = s1*s2, true
		case isa.DIV:
			if s2 == 0 {
				wval = 0
			} else {
				wval = s1 / s2
			}
			writes = true
		case isa.REM:
			if s2 == 0 {
				wval = 0
			} else {
				wval = s1 % s2
			}
			writes = true
		case isa.LD:
			addr := s1 + in.Imm
			if addr < 0 || addr >= memLen {
				return m.Retired, fmt.Errorf("%w: load address %d at PC %d (%v)", ErrMemFault, addr, m.PC, in)
			}
			wval, writes = m.Mem[addr], true
			d.EffAddr, d.IsLoad = addr, true
		case isa.ST:
			addr := s1 + in.Imm
			if addr < 0 || addr >= memLen {
				return m.Retired, fmt.Errorf("%w: store address %d at PC %d (%v)", ErrMemFault, addr, m.PC, in)
			}
			m.Mem[addr] = s2
			d.EffAddr, d.IsStore = addr, true
		case isa.BEQ, isa.BNE, isa.BLT, isa.BGE:
			taken := false
			switch in.Op {
			case isa.BEQ:
				taken = s1 == s2
			case isa.BNE:
				taken = s1 != s2
			case isa.BLT:
				taken = s1 < s2
			case isa.BGE:
				taken = s1 >= s2
			}
			d.IsBranch, d.Taken, d.Target = true, taken, int64(in.Target)
			if taken {
				nextPC = int64(in.Target)
			}
		case isa.JMP:
			d.IsJump, d.Taken, d.Target = true, true, int64(in.Target)
			nextPC = int64(in.Target)
		case isa.JAL:
			d.IsJump, d.Taken, d.Target = true, true, int64(in.Target)
			if in.Dst != isa.Zero {
				wval, writes = m.PC+1, true
			}
			nextPC = int64(in.Target)
		default:
			return m.Retired, fmt.Errorf("funcsim: unimplemented opcode %v at PC %d", in.Op, m.PC)
		}

		if writes && in.Dst != isa.Zero {
			m.Regs[in.Dst] = wval
			d.Dst, d.HasDst = in.Dst, true
		}
		if record {
			if in.Src1 != isa.Zero || in.Src2 != isa.Zero {
				d.NumSrc = 0
				var tmp [4]isa.Reg
				for _, r := range in.SrcRegs(tmp[:0]) {
					if d.NumSrc < 2 {
						d.Src[d.NumSrc] = r
						d.NumSrc++
					}
				}
			}
			d.NextPC = nextPC
		}

		m.PC = nextPC
		m.Retired++
		if sink != nil {
			sink.Consume(d)
		}
	}
	return m.Retired, nil
}

// RunProgram assembles and runs p, streaming to sink. Convenience for
// the common one-shot case.
func RunProgram(p *program.Program, sink trace.Consumer) (int64, error) {
	m, err := New(p)
	if err != nil {
		return 0, err
	}
	return m.Run(sink)
}

func boolTo64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
