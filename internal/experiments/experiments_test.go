package experiments

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/compiler"
	"repro/internal/harness"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

func TestFig3HeadlineAccuracy(t *testing.T) {
	r, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 19 {
		t.Fatalf("Fig3 has %d rows, want 19", len(r.Rows))
	}
	// Paper: 3.1% average, 8.4% max on the default configuration. Our
	// reproduction budgets a little headroom on both.
	if r.Summary.Mean > 0.06 {
		t.Errorf("average error %.2f%% exceeds 6%%", 100*r.Summary.Mean)
	}
	if r.Summary.Max > 0.15 {
		t.Errorf("max error %.2f%% exceeds 15%%", 100*r.Summary.Max)
	}
	if !strings.Contains(r.Render(), "average error") {
		t.Error("render missing summary")
	}
}

func TestFig6SpecAccuracy(t *testing.T) {
	r, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("Fig6 has %d rows", len(r.Rows))
	}
	// Paper: 4.1% average, 10.7% max on SPEC CPU2006.
	if r.Summary.Mean > 0.08 {
		t.Errorf("average error %.2f%% exceeds 8%%", 100*r.Summary.Mean)
	}
	// Memory-dominated rows must show memory-dominated CPIs.
	for _, row := range r.Rows {
		if row.Name == "mcf_like" && row.SimCPI < 5 {
			t.Errorf("mcf_like CPI %.2f suspiciously low", row.SimCPI)
		}
	}
}

func TestFig4WidthScalingShapes(t *testing.T) {
	r, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	speedup := func(name string) float64 {
		ws := r.Benchmarks[name]
		return ws[0].Stack.CPI() / ws[3].Stack.CPI() // W=1 over W=4
	}
	sha, dij, dit := speedup("sha"), speedup("dijkstra"), speedup("tiffdither")
	// The paper's ordering: sha benefits most from width, dijkstra
	// least, tiffdither in between.
	if !(sha > dit && dit > dij) {
		t.Errorf("width benefit ordering broken: sha %.2f, tiffdither %.2f, dijkstra %.2f", sha, dit, dij)
	}
	// Dependencies must grow with width (the paper's dijkstra story).
	dw := r.Benchmarks["dijkstra"]
	if dw[3].Stack.Deps() <= dw[0].Stack.Deps() {
		t.Error("dijkstra dependency CPI did not grow with width")
	}
	if r.Render() == "" {
		t.Error("empty render")
	}
}

func TestFig5SubsetAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("design-space sweep in -short mode")
	}
	r, err := Fig5([]string{"gsm_c", "tiff2bw", "rsynth"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Points != 192 {
		t.Errorf("points = %d, want 192", r.Points)
	}
	if len(r.Errors) != 3*192 {
		t.Errorf("samples = %d", len(r.Errors))
	}
	if r.Summary.Mean > 0.08 {
		t.Errorf("space-wide average error %.2f%% exceeds 8%%", 100*r.Summary.Mean)
	}
	if r.Render() == "" {
		t.Error("empty render")
	}
}

func TestFig7Observations(t *testing.T) {
	r, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 13 {
		t.Fatalf("Fig7 has %d rows, want 13", len(r.Rows))
	}
	for _, row := range r.Rows {
		in, oo := row.InOrder, row.OoO
		// Observation 1: dependencies hidden by out-of-order execution.
		if oo.CPIOf(7 /*Deps*/) != 0 {
			t.Errorf("%s: OoO deps not hidden", row.Name)
		}
		if in.Deps() <= 0 {
			t.Errorf("%s: in-order deps zero", row.Name)
		}
		// Observation 5: the I-cache component is identical (same
		// misses, same latency-only penalty up to the overlap term).
		inI := in.CPIOf(2) + in.CPIOf(3)
		ooI := oo.CPIOf(2) + oo.CPIOf(3)
		if inI > ooI*1.2+0.001 || ooI > inI*1.2+0.001 {
			t.Errorf("%s: I-cache components differ: in %.4f vs ooo %.4f", row.Name, inI, ooI)
		}
		// Overall: the out-of-order core is at least as fast.
		if oo.CPI() > in.CPI()+1e-9 {
			t.Errorf("%s: OoO CPI %.3f above in-order %.3f", row.Name, oo.CPI(), in.CPI())
		}
	}
	if r.Render() == "" {
		t.Error("empty render")
	}
}

func TestFig8CompilerEffects(t *testing.T) {
	r, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Order) != 5 {
		t.Fatalf("Fig8 has %d benchmarks", len(r.Order))
	}
	for _, name := range r.Order {
		cells := r.Benchmarks[name]
		byLevel := map[compiler.Level]Fig8Cell{}
		for _, c := range cells {
			byLevel[c.Level] = c
		}
		nos, o3, unr := byLevel[compiler.NoSched], byLevel[compiler.O3], byLevel[compiler.Unroll]
		if o3.Normalized != 1.0 {
			t.Errorf("%s: O3 not the normalization baseline", name)
		}
		// Scheduling must not hurt; for most benchmarks it helps by
		// reducing dependency stalls.
		if nos.Normalized < 0.999 {
			t.Errorf("%s: nosched (%.3f) faster than O3", name, nos.Normalized)
		}
		// Unrolling must not increase the dynamic instruction count.
		if unr.N > o3.N {
			t.Errorf("%s: unroll increased N (%d > %d)", name, unr.N, o3.N)
		}
	}
	// The headline cases: gsm_c and sha improve clearly at both steps.
	for _, name := range []string{"gsm_c", "sha"} {
		cells := r.Benchmarks[name]
		if !(cells[0].Normalized > 1.02) {
			t.Errorf("%s: scheduling benefit too small (nosched %.3f)", name, cells[0].Normalized)
		}
		if !(cells[2].Normalized < 0.97) {
			t.Errorf("%s: unrolling benefit too small (unroll %.3f)", name, cells[2].Normalized)
		}
	}
	if r.Render() == "" {
		t.Error("empty render")
	}
}

func TestFig9EDPOptimaClose(t *testing.T) {
	if testing.Short() {
		t.Skip("EDP exploration in -short mode")
	}
	r, err := Fig9(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("Fig9 has %d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Paper: the model finds the optimum or a configuration within
		// a few percent of it (≤5% in their worst case, adpcm_d).
		if !row.SameOptimum && row.EDPGapPercent > 20 {
			t.Errorf("%s: model's pick is %.1f%% worse than the optimum", row.Name, row.EDPGapPercent)
		}
	}
	if r.Render() == "" {
		t.Error("empty render")
	}
}

func TestTable2(t *testing.T) {
	out := Table2()
	if !strings.Contains(out, "192 points") {
		t.Errorf("Table2 output: %q...", out[:60])
	}
}

func TestValidateUnknownBenchmark(t *testing.T) {
	if _, err := Validate([]string{"nope"}, uarch.Default()); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

// TestExtendedValidation runs the Figure 3 experiment over the five
// extended MiBench kernels (bitcount, basicmath, crc32, fft, blowfish)
// that go beyond the paper's benchmark selection.
func TestExtendedValidation(t *testing.T) {
	var names []string
	for _, s := range workloads.Extended() {
		names = append(names, s.Name)
	}
	r, err := Validate(names, uarch.Default())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		t.Logf("%-12s N=%8d model=%.4f sim=%.4f err=%.2f%%",
			row.Name, row.N, row.ModelCPI, row.SimCPI, 100*row.AbsErr)
	}
	if r.Summary.Mean > 0.08 {
		t.Errorf("extended-suite average error %.2f%% exceeds 8%%", 100*r.Summary.Mean)
	}
}

// TestProfiledSingleflight pins the process-wide workload cache:
// concurrent first requests for one benchmark must resolve to the same
// Profiled value (one execution, one profile, one shared plane cache),
// and repeated requests must hit the cache.
func TestProfiledSingleflight(t *testing.T) {
	const goroutines = 8
	var wg sync.WaitGroup
	got := make([]*harness.Profiled, goroutines)
	for i := 0; i < goroutines; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			pw, err := Profiled("crc32")
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = pw
		}()
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if got[i] != got[0] {
			t.Fatalf("concurrent Profiled calls returned distinct values (%p vs %p)", got[i], got[0])
		}
	}
	pw, err := Profiled("crc32")
	if err != nil {
		t.Fatal(err)
	}
	if pw != got[0] {
		t.Error("repeated Profiled call missed the cache")
	}
	if _, err := Profiled("no-such-benchmark"); err == nil {
		t.Error("unknown benchmark did not error")
	}
}
