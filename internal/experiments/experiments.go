// Package experiments reproduces every table and figure of the paper's
// evaluation (see DESIGN.md §5 for the experiment index). Each
// experiment is a plain function returning structured results plus a
// text renderer, so the CLI (cmd/experiments), the test suite and the
// benchmark harness (bench_test.go) all share one implementation.
package experiments

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/artifact"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/harness"
	"repro/internal/ooo"
	"repro/internal/par"
	"repro/internal/power"
	"repro/internal/program"
	"repro/internal/stats"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

// profiledPool avoids re-profiling and re-executing workloads across
// experiments in one process (profiling is the dominant cost, as in
// the paper): Fig3/Fig6 and the sweep figures share benchmarks — and,
// through the Profiled value, annotation planes and trace — via this
// process-wide cache. It is an unbounded harness.Pool, so the batch
// figures get the same singleflight admission the modeld service
// uses: concurrent first requests for the same name wait for one
// profiling run instead of racing duplicate executions, and every
// figure shares the one per-benchmark plane cache. Failed profiling
// runs are not cached; a later call retries.
//
// When REPRO_ARTIFACT_DIR is set, the pool additionally persists over
// that content-addressed artifact store: profiling survives process
// restarts, so repeated figure/benchmark runs (scripts/bench.sh, the
// CI cache) skip workload execution entirely — bit-identically, which
// the BENCH drift gate depends on. An unopenable directory falls back
// to the in-memory pool rather than failing the experiments.
var profiledPool = newProfiledPool()

func newProfiledPool() *harness.Pool {
	opt := harness.PoolOptions{}
	if dir := os.Getenv("REPRO_ARTIFACT_DIR"); dir != "" {
		if store, err := artifact.Open(dir); err == nil {
			opt.Store = store
		}
	}
	return harness.NewPool(opt)
}

// Profiled returns the profiled workload, building and caching it.
func Profiled(name string) (*harness.Profiled, error) {
	spec, err := workloads.ByName(name)
	if err != nil {
		return nil, err
	}
	return profiledPool.GetBuilt(name, spec.Build, func(prog *program.Program) (*harness.Profiled, error) {
		return harness.ProfileProgram(prog)
	})
}

// ---------------------------------------------------------------------------
// Figure 3 / Figure 6: model-versus-simulator CPI validation
// ---------------------------------------------------------------------------

// ValidationRow is one benchmark's validation result.
type ValidationRow struct {
	Name     string
	N        int64
	ModelCPI float64
	SimCPI   float64
	AbsErr   float64
}

// ValidationResult is a Figure 3/6-style validation across a suite.
type ValidationResult struct {
	Cfg     uarch.Config
	Rows    []ValidationRow
	Summary stats.Summary // of AbsErr
}

// Validate runs model and detailed simulation on every named benchmark
// with the given configuration, in parallel across benchmarks.
func Validate(names []string, cfg uarch.Config) (*ValidationResult, error) {
	res := &ValidationResult{Cfg: cfg, Rows: make([]ValidationRow, len(names))}
	err := par.ForEach(0, len(names), func(i int) error {
		name := names[i]
		pw, err := Profiled(name)
		if err != nil {
			return err
		}
		v, err := pw.Validate(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		res.Rows[i] = ValidationRow{
			Name: name, N: pw.Prof.N,
			ModelCPI: v.ModelCPI, SimCPI: v.SimCPI, AbsErr: v.AbsErr(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	errs := make([]float64, len(res.Rows))
	for i, row := range res.Rows {
		errs[i] = row.AbsErr
	}
	res.Summary = stats.Summarize(errs)
	return res, nil
}

// MiBenchNames returns the 19 MiBench-like benchmark names in Figure 3
// order.
func MiBenchNames() []string {
	var out []string
	for _, s := range workloads.MiBench() {
		out = append(out, s.Name)
	}
	return out
}

// SpecNames returns the SPEC-like benchmark names (Figure 6).
func SpecNames() []string {
	var out []string
	for _, s := range workloads.SpecLike() {
		out = append(out, s.Name)
	}
	return out
}

// Fig3 validates the MiBench suite on the default configuration.
func Fig3() (*ValidationResult, error) {
	return Validate(MiBenchNames(), uarch.Default())
}

// Fig6 validates the SPEC-like suite on the default configuration.
func Fig6() (*ValidationResult, error) {
	return Validate(SpecNames(), uarch.Default())
}

// Render formats the validation as the paper's bar-chart data.
func (r *ValidationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CPI validation on %s\n", r.Cfg)
	fmt.Fprintf(&b, "%-16s %10s %10s %10s %8s\n", "benchmark", "N", "model", "detailed", "err")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %10d %10.4f %10.4f %7.2f%%\n",
			row.Name, row.N, row.ModelCPI, row.SimCPI, 100*row.AbsErr)
	}
	fmt.Fprintf(&b, "average error %.2f%%, max %.2f%%\n",
		100*r.Summary.Mean, 100*r.Summary.Max)
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 4: CPI stacks versus superscalar width
// ---------------------------------------------------------------------------

// Fig4Names are the three benchmarks the paper picks for width scaling:
// most (sha), least (dijkstra) and middling (tiffdither) width benefit.
func Fig4Names() []string { return []string{"sha", "tiffdither", "dijkstra"} }

// WidthStack is a CPI stack at one width plus the detailed reference.
type WidthStack struct {
	Width  int
	Stack  *core.Stack
	SimCPI float64
}

// Fig4Result holds per-benchmark width sweeps.
type Fig4Result struct {
	Benchmarks map[string][]WidthStack
	Order      []string
}

// Fig4 sweeps width 1..4 on the default configuration. Benchmarks run
// in parallel; machine statistics are collected once per benchmark
// (they are width-independent) and shared by all four model
// evaluations.
func Fig4() (*Fig4Result, error) {
	res := &Fig4Result{Benchmarks: map[string][]WidthStack{}, Order: Fig4Names()}
	base := uarch.Default()
	const widths = 4
	rows := make([][]WidthStack, len(res.Order))
	err := par.ForEach(0, len(res.Order), func(bi int) error {
		pw, err := Profiled(res.Order[bi])
		if err != nil {
			return err
		}
		in, err := pw.Inputs(base)
		if err != nil {
			return err
		}
		// The width sweep stays sequential: the benchmark fan-out above
		// already consumes the worker budget, and nesting pools would
		// multiply concurrency past the -workers contract.
		ws := make([]WidthStack, widths)
		for wi := 0; wi < widths; wi++ {
			cfg := base.WithWidth(wi + 1)
			st, err := core.Predict(in, cfg)
			if err != nil {
				return err
			}
			// All four widths share one hierarchy and predictor, so the
			// annotation is computed once and each width is a
			// timing-only replay.
			sim, err := pw.SimulateDetailed(cfg)
			if err != nil {
				return err
			}
			ws[wi] = WidthStack{Width: wi + 1, Stack: st, SimCPI: sim.CPI()}
		}
		rows[bi] = ws
		return nil
	})
	if err != nil {
		return nil, err
	}
	for bi, name := range res.Order {
		res.Benchmarks[name] = rows[bi]
	}
	return res, nil
}

// Render formats Figure 4's stacks with the paper's component grouping.
func (r *Fig4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CPI stacks vs superscalar width (model), detailed CPI as reference\n")
	fmt.Fprintf(&b, "%-12s %2s %8s %8s %8s %8s %8s %8s %8s %8s | %8s %8s\n",
		"benchmark", "W", "base", "mul/div", "l2acc", "l2miss", "bpmiss", "bptaken", "tlb", "deps", "CPI", "detail")
	for _, name := range r.Order {
		for _, ws := range r.Benchmarks[name] {
			s := ws.Stack
			fmt.Fprintf(&b, "%-12s %2d %8.4f %8.4f %8.4f %8.4f %8.4f %8.4f %8.4f %8.4f | %8.4f %8.4f\n",
				name, ws.Width,
				s.CPIOf(core.Base), s.CPIOf(core.MulDiv), s.L2Access(), s.L2Miss(),
				s.CPIOf(core.BrMiss), s.CPIOf(core.BrTaken), s.TLB(), s.Deps(),
				s.CPI(), ws.SimCPI)
		}
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 2 / Figure 5: design-space accuracy CDF
// ---------------------------------------------------------------------------

// validatedCache memoizes full Table 2 validated explorations per
// benchmark: Figure 5 and Figure 9 share benchmarks, and the detailed
// 192-point sweep is by far the most expensive computation in the
// suite. Results are deterministic, so sharing is observation-free.
// Each entry records the wall time of its one computation, so callers
// report the sweep's true cost independent of cache state and call
// order.
type validatedEntry struct {
	pts     []dse.Point
	elapsed time.Duration
}

var (
	validatedMu    sync.Mutex
	validatedCache = map[string]validatedEntry{}
)

// validatedTable2 returns the detailed-simulation-validated exploration
// of the full Table 2 space for one benchmark — computed at most once
// per process — along with the wall time that one computation took.
func validatedTable2(name string, workers int) ([]dse.Point, time.Duration, error) {
	validatedMu.Lock()
	e, ok := validatedCache[name]
	validatedMu.Unlock()
	if ok {
		return e.pts, e.elapsed, nil
	}
	pw, err := Profiled(name)
	if err != nil {
		return nil, 0, err
	}
	t0 := time.Now()
	pts, err := dse.ExploreValidated(pw, dse.Space(uarch.Default()), power.NewModel(), workers)
	if err != nil {
		return nil, 0, err
	}
	e = validatedEntry{pts: pts, elapsed: time.Since(t0)}
	validatedMu.Lock()
	if prev, ok := validatedCache[name]; ok {
		e = prev
	} else {
		validatedCache[name] = e
	}
	validatedMu.Unlock()
	return e.pts, e.elapsed, nil
}

// Fig5Result is the design-space validation.
type Fig5Result struct {
	Points     int
	Benchmarks int
	Errors     []float64 // one per (benchmark, design point)
	Summary    stats.Summary
	FracBelow6 float64
	ModelWall  time.Duration // wall time spent in model evaluation (all points)
	SimWall    time.Duration // wall time spent in detailed simulation
}

// Fig5 validates the model across the full Table 2 space for the given
// benchmarks (nil means all MiBench), using `workers` parallel
// simulations. Profiling and the model-only exploration run in
// parallel across benchmarks; each detailed-simulation sweep is itself
// parallel across design points.
func Fig5(names []string, workers int) (*Fig5Result, error) {
	if names == nil {
		names = MiBenchNames()
	}
	space := dse.Space(uarch.Default())
	pm := power.NewModel()
	res := &Fig5Result{Points: len(space), Benchmarks: len(names)}

	pws := make([]*harness.Profiled, len(names))
	if err := par.ForEach(workers, len(names), func(i int) error {
		pw, err := Profiled(names[i])
		if err != nil {
			return err
		}
		pws[i] = pw
		return nil
	}); err != nil {
		return nil, err
	}

	// SimWall sums the recorded cost of each benchmark's one-time
	// validated sweep, so the headline model-vs-simulation ratio is
	// independent of what an earlier Fig5/Fig9 call already memoized.
	perBench := make([][]dse.Point, len(names))
	for i, name := range names {
		pts, elapsed, err := validatedTable2(name, workers)
		if err != nil {
			return nil, err
		}
		perBench[i] = pts
		res.SimWall += elapsed
	}

	t1 := time.Now()
	if _, err := dse.ExploreSuite(pws, space, pm, workers); err != nil {
		return nil, err
	}
	res.ModelWall = time.Since(t1)

	for _, pts := range perBench {
		for _, p := range pts {
			res.Errors = append(res.Errors, p.CPIErr)
		}
	}
	res.Summary = stats.Summarize(res.Errors)
	res.FracBelow6 = stats.FractionBelow(res.Errors, 0.06)
	return res, nil
}

// Render formats the CDF and headline numbers of Figure 5.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Design-space validation: %d points x %d benchmarks = %d samples\n",
		r.Points, r.Benchmarks, len(r.Errors))
	fmt.Fprintf(&b, "avg err %.2f%%  max %.2f%%  p90 %.2f%%  fraction below 6%%: %.1f%%\n",
		100*r.Summary.Mean, 100*r.Summary.Max, 100*r.Summary.P90, 100*r.FracBelow6)
	fmt.Fprintf(&b, "cumulative distribution of |error|:\n")
	for _, x := range []float64{0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09, 0.10} {
		frac := stats.FractionBelow(r.Errors, x)
		fmt.Fprintf(&b, "  <=%4.0f%%: %5.1f%% %s\n", 100*x, 100*frac,
			strings.Repeat("#", int(frac*40)))
	}
	if r.ModelWall > 0 {
		fmt.Fprintf(&b, "wall time: detailed simulation %v, model evaluation %v (speedup %.0fx)\n",
			r.SimWall.Round(time.Millisecond), r.ModelWall.Round(time.Millisecond),
			float64(r.SimWall)/float64(r.ModelWall))
	}
	return b.String()
}

// Table2 renders the design space itself.
func Table2() string {
	var b strings.Builder
	space := dse.Space(uarch.Default())
	fmt.Fprintf(&b, "Table 2 design space: %d points\n", len(space))
	for _, c := range space {
		fmt.Fprintf(&b, "  %s\n", c)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 7: in-order versus out-of-order CPI stacks
// ---------------------------------------------------------------------------

// Fig7Names are the paper's thirteen comparison benchmarks (toast is
// the GSM encoder, cjpeg/djpeg the JPEG pair).
func Fig7Names() []string {
	return []string{
		"jpeg_c", "dijkstra", "jpeg_d", "lame", "patricia",
		"susan_c", "susan_e", "susan_s", "tiff2bw", "tiff2rgba",
		"tiffdither", "tiffmedian", "gsm_c",
	}
}

// Fig7Row compares one benchmark.
type Fig7Row struct {
	Name    string
	InOrder *core.Stack
	OoO     *ooo.Stack
}

// Fig7Result is the comparison set.
type Fig7Result struct {
	Rows   []Fig7Row
	OoOCfg ooo.Config
}

// Fig7 compares 4-wide in-order (mechanistic model) against 4-wide
// out-of-order (interval model) on the default memory system,
// benchmarks in parallel.
func Fig7() (*Fig7Result, error) {
	inCfg := uarch.Default()
	ooCfg := ooo.DefaultConfig()
	names := Fig7Names()
	res := &Fig7Result{OoOCfg: ooCfg, Rows: make([]Fig7Row, len(names))}
	err := par.ForEach(0, len(names), func(i int) error {
		name := names[i]
		pw, err := Profiled(name)
		if err != nil {
			return err
		}
		inStack, err := pw.Predict(inCfg)
		if err != nil {
			return err
		}
		col, err := ooo.NewCollector(ooCfg)
		if err != nil {
			return err
		}
		pw.Trace.Replay(col)
		ooStack, err := ooo.Predict(pw.Prof.N, col.Result(), ooCfg)
		if err != nil {
			return err
		}
		res.Rows[i] = Fig7Row{Name: name, InOrder: inStack, OoO: ooStack}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render formats the Figure 7 comparison.
func (r *Fig7Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "In-order vs out-of-order CPI stacks (both 4-wide; OoO ROB=%d)\n", r.OoOCfg.ROB)
	fmt.Fprintf(&b, "%-12s %-4s %8s %8s %8s %8s %8s %8s %8s | %8s\n",
		"benchmark", "core", "base", "mul/div", "il1/il2", "dl1", "dl2", "bpmiss", "deps", "CPI")
	for _, row := range r.Rows {
		in, oo := row.InOrder, row.OoO
		fmt.Fprintf(&b, "%-12s %-4s %8.4f %8.4f %8.4f %8.4f %8.4f %8.4f %8.4f | %8.4f\n",
			row.Name, "in",
			in.CPIOf(core.Base), in.CPIOf(core.MulDiv),
			in.CPIOf(core.IL1L2Hit)+in.CPIOf(core.IL2Miss),
			in.CPIOf(core.DL1L2Hit), in.CPIOf(core.DL2Miss)+in.TLB(),
			in.CPIOf(core.BrMiss)+in.CPIOf(core.BrTaken), in.Deps(), in.CPI())
		fmt.Fprintf(&b, "%-12s %-4s %8.4f %8.4f %8.4f %8.4f %8.4f %8.4f %8.4f | %8.4f\n",
			"", "ooo",
			oo.CPIOf(ooo.Base), oo.CPIOf(ooo.MulDiv),
			oo.CPIOf(ooo.IL1Miss)+oo.CPIOf(ooo.IL2Miss),
			oo.CPIOf(ooo.DL1Miss), oo.CPIOf(ooo.DL2Miss),
			oo.CPIOf(ooo.BrMiss), oo.CPIOf(ooo.Deps), oo.CPI())
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 8: compiler optimizations
// ---------------------------------------------------------------------------

// Fig8Names are the paper's five compiler-study benchmarks.
func Fig8Names() []string {
	return []string{"gsm_c", "sha", "stringsearch", "susan_s", "tiffdither"}
}

// Fig8Cell is one (benchmark, optimization level) cycle stack.
type Fig8Cell struct {
	Level      compiler.Level
	N          int64
	Cycles     float64 // model total cycles
	Normalized float64 // cycles / O3 cycles
	Stack      *core.Stack
}

// Fig8Result groups cells per benchmark.
type Fig8Result struct {
	Benchmarks map[string][]Fig8Cell
	Order      []string
}

// Fig8 profiles each benchmark at the three optimization levels and
// evaluates the model on the default configuration. (Each optimized
// binary needs its own profile — exactly as the paper re-profiles each
// compiler setting.)
func Fig8() (*Fig8Result, error) {
	cfg := uarch.Default()
	res := &Fig8Result{Benchmarks: map[string][]Fig8Cell{}, Order: Fig8Names()}
	levels := compiler.Levels()
	rows := make([][]Fig8Cell, len(res.Order))
	err := par.ForEach(0, len(res.Order), func(bi int) error {
		name := res.Order[bi]
		spec, err := workloads.ByName(name)
		if err != nil {
			return err
		}
		// Levels stay sequential inside the parallel benchmark loop so
		// concurrency never exceeds the -workers contract.
		cells := make([]Fig8Cell, len(levels))
		for li, lvl := range levels {
			opt := compiler.Optimize(spec.Build(), lvl)
			pw, err := harness.ProfileProgram(opt)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", name, lvl, err)
			}
			st, err := pw.Predict(cfg)
			if err != nil {
				return err
			}
			cells[li] = Fig8Cell{Level: lvl, N: pw.Prof.N, Cycles: st.Total(), Stack: st}
		}
		var o3Cycles float64
		for _, c := range cells {
			if c.Level == compiler.O3 {
				o3Cycles = c.Cycles
			}
		}
		for i := range cells {
			cells[i].Normalized = cells[i].Cycles / o3Cycles
		}
		rows[bi] = cells
		return nil
	})
	if err != nil {
		return nil, err
	}
	for bi, name := range res.Order {
		res.Benchmarks[name] = rows[bi]
	}
	return res, nil
}

// Render formats Figure 8's normalized cycle stacks.
func (r *Fig8Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Normalized cycle stacks across compiler optimizations (O3 = 1.0)\n")
	fmt.Fprintf(&b, "%-14s %-8s %9s %8s %8s %8s %8s %8s\n",
		"benchmark", "level", "N", "norm", "base", "deps", "bptaken", "other")
	for _, name := range r.Order {
		for _, c := range r.Benchmarks[name] {
			s := c.Stack
			norm := c.Cycles
			base := s.Cycles[core.Base] / norm * c.Normalized
			deps := (s.Cycles[core.DepUnit] + s.Cycles[core.DepLL] + s.Cycles[core.DepLd]) / norm * c.Normalized
			taken := s.Cycles[core.BrTaken] / norm * c.Normalized
			other := c.Normalized - base - deps - taken
			fmt.Fprintf(&b, "%-14s %-8s %9d %8.3f %8.3f %8.3f %8.3f %8.3f\n",
				name, c.Level, c.N, c.Normalized, base, deps, taken, other)
		}
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 9: EDP design-space exploration
// ---------------------------------------------------------------------------

// Fig9Names are the paper's four EDP-study benchmarks.
func Fig9Names() []string { return []string{"adpcm_d", "gsm_c", "lame", "patricia"} }

// Fig9Row is one benchmark's EDP exploration outcome.
type Fig9Row struct {
	Name          string
	ModelBestCfg  uarch.Config
	SimBestCfg    uarch.Config
	ModelBestEDP  float64 // detailed EDP of the configuration the model picks
	SimBestEDP    float64 // detailed EDP of the true optimum
	EDPGapPercent float64 // how much worse the model's pick is (0 = same point)
	SameOptimum   bool
	Points        []dse.Point
}

// Fig9Result is the EDP case study.
type Fig9Result struct {
	Rows []Fig9Row
}

// Fig9 runs the EDP exploration over the full design space with
// detailed-simulation validation.
func Fig9(workers int) (*Fig9Result, error) {
	res := &Fig9Result{}
	for _, name := range Fig9Names() {
		pts, _, err := validatedTable2(name, workers)
		if err != nil {
			return nil, err
		}
		mBest, sBest := dse.BestEDP(pts)
		row := Fig9Row{
			Name:         name,
			ModelBestCfg: pts[mBest].Cfg,
			SimBestCfg:   pts[sBest].Cfg,
			ModelBestEDP: pts[mBest].SimEDP,
			SimBestEDP:   pts[sBest].SimEDP,
			SameOptimum:  mBest == sBest,
			Points:       pts,
		}
		if row.SimBestEDP > 0 {
			row.EDPGapPercent = 100 * (row.ModelBestEDP - row.SimBestEDP) / row.SimBestEDP
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the Figure 9 outcome.
func (r *Fig9Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "EDP design-space exploration (192 points; EDP in J*s; lower is better)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s model picks %-34s detailed optimum %-34s same=%v gap=%.2f%%\n",
			row.Name, row.ModelBestCfg.Name, row.SimBestCfg.Name, row.SameOptimum, row.EDPGapPercent)
		// Configurations ordered from high to low detailed EDP, as in
		// the paper's plots; print a decile sample.
		pts := append([]dse.Point(nil), row.Points...)
		sort.Slice(pts, func(i, j int) bool { return pts[i].SimEDP > pts[j].SimEDP })
		for i := 0; i < len(pts); i += len(pts) / 8 {
			p := pts[i]
			fmt.Fprintf(&b, "   %-34s modelEDP=%.4e detailedEDP=%.4e\n", p.Cfg.Name, p.ModelEDP, p.SimEDP)
		}
	}
	return b.String()
}
