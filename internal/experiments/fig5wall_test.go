package experiments

import (
	"strings"
	"testing"
)

// TestFig5WallTimeOrderIndependent pins the memo accounting: a second
// Fig5 call in the same process must report the same detailed-sim
// wall time it recorded at computation time, not ~0 from cache hits.
func TestFig5WallTimeOrderIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("design-space sweep in -short mode")
	}
	a, err := Fig5([]string{"gsm_c"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig5([]string{"gsm_c"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.SimWall != a.SimWall {
		t.Errorf("SimWall changed across calls: %v then %v", a.SimWall, b.SimWall)
	}
	if a.SimWall <= 0 {
		t.Errorf("SimWall %v not positive", a.SimWall)
	}
	if !strings.Contains(a.Render(), "wall time") {
		t.Error("render missing wall time line")
	}
}
