package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestClassOfCoversAllOpcodes(t *testing.T) {
	for op := Op(0); op < Op(NumOps); op++ {
		c := ClassOf(op)
		if int(c) >= NumClasses {
			t.Errorf("op %v: class %v out of range", op, c)
		}
		switch op {
		case MUL:
			if c != ClassMul {
				t.Errorf("MUL classified as %v", c)
			}
		case DIV, REM:
			if c != ClassDiv {
				t.Errorf("%v classified as %v", op, c)
			}
		case LD:
			if c != ClassLoad {
				t.Errorf("LD classified as %v", c)
			}
		case ST:
			if c != ClassStore {
				t.Errorf("ST classified as %v", c)
			}
		case BEQ, BNE, BLT, BGE:
			if c != ClassBranch {
				t.Errorf("%v classified as %v", op, c)
			}
		case JMP, JAL:
			if c != ClassJump {
				t.Errorf("%v classified as %v", op, c)
			}
		}
	}
}

func TestOpStringsAreUniqueAndNamed(t *testing.T) {
	seen := map[string]Op{}
	for op := Op(0); op < Op(NumOps); op++ {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("op %d has no name", op)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("ops %v and %v share name %q", prev, op, s)
		}
		seen[s] = op
	}
	if got := Op(200).String(); !strings.HasPrefix(got, "op(") {
		t.Errorf("unknown op string = %q", got)
	}
}

func TestHasDst(t *testing.T) {
	cases := []struct {
		in   Instr
		want bool
	}{
		{Instr{Op: ADD, Dst: 3}, true},
		{Instr{Op: ADD, Dst: Zero}, false}, // writes to r0 are discarded
		{Instr{Op: LD, Dst: 5}, true},
		{Instr{Op: ST, Src2: 5}, false},
		{Instr{Op: BEQ}, false},
		{Instr{Op: JAL, Dst: 7}, true},
		{Instr{Op: JAL, Dst: Zero}, false},
		{Instr{Op: JMP}, false},
		{Instr{Op: MUL, Dst: 1}, true},
		{Instr{Op: NOP}, false},
		{Instr{Op: HALT}, false},
	}
	for _, c := range cases {
		if got := c.in.HasDst(); got != c.want {
			t.Errorf("HasDst(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSrcRegs(t *testing.T) {
	cases := []struct {
		in   Instr
		want []Reg
	}{
		{Instr{Op: ADD, Dst: 1, Src1: 2, Src2: 3}, []Reg{2, 3}},
		{Instr{Op: ADD, Dst: 1, Src1: Zero, Src2: 3}, []Reg{3}},
		{Instr{Op: ADDI, Dst: 1, Src1: 2}, []Reg{2}},
		{Instr{Op: LUI, Dst: 1}, nil},
		{Instr{Op: LD, Dst: 1, Src1: 4}, []Reg{4}},
		{Instr{Op: ST, Src1: 4, Src2: 5}, []Reg{4, 5}},
		{Instr{Op: BEQ, Src1: 6, Src2: 7}, []Reg{6, 7}},
		{Instr{Op: JMP}, nil},
		{Instr{Op: NOP}, nil},
	}
	for _, c := range cases {
		got := c.in.SrcRegs(nil)
		if len(got) != len(c.want) {
			t.Errorf("SrcRegs(%v) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("SrcRegs(%v) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestSrcRegsNeverIncludesZero(t *testing.T) {
	f := func(op uint8, s1, s2 uint8) bool {
		in := Instr{Op: Op(op % uint8(NumOps)), Src1: Reg(s1 % NumRegs), Src2: Reg(s2 % NumRegs)}
		for _, r := range in.SrcRegs(nil) {
			if r == Zero {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsControl(t *testing.T) {
	for op := Op(0); op < Op(NumOps); op++ {
		in := Instr{Op: op}
		want := ClassOf(op) == ClassBranch || ClassOf(op) == ClassJump
		if got := in.IsControl(); got != want {
			t.Errorf("IsControl(%v) = %v, want %v", op, got, want)
		}
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: ADD, Dst: 1, Src1: 2, Src2: 3}, "add r1, r2, r3"},
		{Instr{Op: ADDI, Dst: 1, Src1: 2, Imm: -5}, "addi r1, r2, -5"},
		{Instr{Op: LD, Dst: 1, Src1: 2, Imm: 8}, "ld r1, 8(r2)"},
		{Instr{Op: ST, Src1: 2, Src2: 3, Imm: 8}, "st r3, 8(r2)"},
		{Instr{Op: BEQ, Src1: 1, Src2: 2, Target: 7}, "beq r1, r2, @7"},
		{Instr{Op: JMP, Target: 9}, "jmp @9"},
		{Instr{Op: LUI, Dst: 4, Imm: 10}, "lui r4, 10"},
		{Instr{Op: NOP}, "nop"},
		{Instr{Op: HALT}, "halt"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestClassString(t *testing.T) {
	for c := Class(0); int(c) < NumClasses; c++ {
		if s := c.String(); s == "" || strings.HasPrefix(s, "class(") {
			t.Errorf("class %d has no name", c)
		}
	}
}

func TestRegString(t *testing.T) {
	if got := Reg(7).String(); got != "r7" {
		t.Errorf("Reg(7).String() = %q", got)
	}
}
