// Package isa defines the instruction set of the small load/store RISC
// machine used throughout this repository. The ISA is deliberately
// minimal — a classic 32-register, word-addressed load/store design —
// because the mechanistic model only cares about instruction classes
// (unit-latency ALU ops, long-latency multiply/divide, loads, stores,
// branches), register dataflow and memory addresses.
package isa

import "fmt"

// NumRegs is the number of architectural registers. Register 0 is
// hardwired to zero, as in MIPS/RISC-V.
const NumRegs = 32

// Reg names an architectural register (0..NumRegs-1).
type Reg uint8

// Zero is the hardwired zero register.
const Zero Reg = 0

func (r Reg) String() string { return fmt.Sprintf("r%d", uint8(r)) }

// Op enumerates the opcodes of the ISA.
type Op uint8

const (
	// ALU, unit latency.
	NOP  Op = iota
	ADD     // dst = src1 + src2
	SUB     // dst = src1 - src2
	AND     // dst = src1 & src2
	OR      // dst = src1 | src2
	XOR     // dst = src1 ^ src2
	SHL     // dst = src1 << (src2 & 63)
	SHR     // dst = src1 >> (src2 & 63) (logical)
	SRA     // dst = src1 >> (src2 & 63) (arithmetic)
	SLT     // dst = src1 < src2 ? 1 : 0 (signed)
	ADDI    // dst = src1 + imm
	ANDI    // dst = src1 & imm
	ORI     // dst = src1 | imm
	XORI    // dst = src1 ^ imm
	SHLI    // dst = src1 << imm
	SHRI    // dst = src1 >> imm (logical)
	SRAI    // dst = src1 >> imm (arithmetic)
	SLTI    // dst = src1 < imm ? 1 : 0
	LUI     // dst = imm (load immediate; "upper" kept for familiarity)

	// Long-latency arithmetic.
	MUL // dst = src1 * src2
	DIV // dst = src1 / src2 (src2==0 yields 0)
	REM // dst = src1 % src2 (src2==0 yields 0); same latency class as DIV

	// Memory. Addresses are in words; effective address = src1 + imm.
	LD // dst = mem[src1+imm]
	ST // mem[src1+imm] = src2

	// Control. Branches compare src1 against src2.
	BEQ // taken if src1 == src2
	BNE // taken if src1 != src2
	BLT // taken if src1 <  src2 (signed)
	BGE // taken if src1 >= src2 (signed)
	JMP // unconditional direct jump
	JAL // dst = return PC; unconditional direct call

	// HALT terminates the program.
	HALT

	numOps
)

// NumOps is the number of defined opcodes.
const NumOps = int(numOps)

var opNames = [...]string{
	NOP: "nop", ADD: "add", SUB: "sub", AND: "and", OR: "or", XOR: "xor",
	SHL: "shl", SHR: "shr", SRA: "sra", SLT: "slt", ADDI: "addi", ANDI: "andi",
	ORI: "ori", XORI: "xori", SHLI: "shli", SHRI: "shri", SRAI: "srai", SLTI: "slti",
	LUI: "lui", MUL: "mul", DIV: "div", REM: "rem", LD: "ld", ST: "st",
	BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge", JMP: "jmp", JAL: "jal",
	HALT: "halt",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Class partitions opcodes into the categories the mechanistic model
// distinguishes (Table 1 of the paper).
type Class uint8

const (
	ClassNop Class = iota
	ClassALU       // unit-latency integer ops
	ClassMul       // long-latency multiply
	ClassDiv       // long-latency divide/remainder
	ClassLoad
	ClassStore
	ClassBranch // conditional branches
	ClassJump   // unconditional jumps/calls
	ClassHalt

	numClasses
)

// NumClasses is the number of instruction classes.
const NumClasses = int(numClasses)

var classNames = [...]string{
	ClassNop: "nop", ClassALU: "alu", ClassMul: "mul", ClassDiv: "div",
	ClassLoad: "load", ClassStore: "store", ClassBranch: "branch",
	ClassJump: "jump", ClassHalt: "halt",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// ClassOf returns the class of an opcode.
func ClassOf(o Op) Class {
	switch o {
	case NOP:
		return ClassNop
	case ADD, SUB, AND, OR, XOR, SHL, SHR, SRA, SLT,
		ADDI, ANDI, ORI, XORI, SHLI, SHRI, SRAI, SLTI, LUI:
		return ClassALU
	case MUL:
		return ClassMul
	case DIV, REM:
		return ClassDiv
	case LD:
		return ClassLoad
	case ST:
		return ClassStore
	case BEQ, BNE, BLT, BGE:
		return ClassBranch
	case JMP, JAL:
		return ClassJump
	case HALT:
		return ClassHalt
	}
	return ClassNop
}

// Instr is one static instruction. Target is a static instruction index
// for control transfers (filled in by the program assembler).
type Instr struct {
	Op     Op
	Dst    Reg
	Src1   Reg
	Src2   Reg
	Imm    int64
	Target int // static instruction index for branches/jumps
}

// HasDst reports whether the instruction writes a register (other than
// the hardwired zero register, which writes are discarded).
func (in Instr) HasDst() bool {
	switch ClassOf(in.Op) {
	case ClassALU, ClassMul, ClassDiv, ClassLoad:
		return in.Dst != Zero
	case ClassJump:
		return in.Op == JAL && in.Dst != Zero
	}
	return false
}

// SrcRegs appends the source registers actually read by the instruction
// to dst and returns it. The zero register is never a dependence source.
func (in Instr) SrcRegs(dst []Reg) []Reg {
	add := func(r Reg) {
		if r != Zero {
			dst = append(dst, r)
		}
	}
	switch in.Op {
	case NOP, HALT, JMP, JAL, LUI:
		// no register sources
	case ADDI, ANDI, ORI, XORI, SHLI, SHRI, SRAI, SLTI, LD:
		add(in.Src1)
	case ST, ADD, SUB, AND, OR, XOR, SHL, SHR, SRA, SLT, MUL, DIV, REM,
		BEQ, BNE, BLT, BGE:
		add(in.Src1)
		add(in.Src2)
	}
	return dst
}

// IsControl reports whether the instruction can redirect fetch.
func (in Instr) IsControl() bool {
	c := ClassOf(in.Op)
	return c == ClassBranch || c == ClassJump
}

func (in Instr) String() string {
	switch ClassOf(in.Op) {
	case ClassNop, ClassHalt:
		return in.Op.String()
	case ClassLoad:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Dst, in.Imm, in.Src1)
	case ClassStore:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Src2, in.Imm, in.Src1)
	case ClassBranch:
		return fmt.Sprintf("%s %s, %s, @%d", in.Op, in.Src1, in.Src2, in.Target)
	case ClassJump:
		return fmt.Sprintf("%s @%d", in.Op, in.Target)
	default:
		if in.Op == LUI {
			return fmt.Sprintf("%s %s, %d", in.Op, in.Dst, in.Imm)
		}
		switch in.Op {
		case ADDI, ANDI, ORI, XORI, SHLI, SHRI, SRAI, SLTI:
			return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Dst, in.Src1, in.Imm)
		}
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Dst, in.Src1, in.Src2)
	}
}
