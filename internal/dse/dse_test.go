package dse

import (
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/pipeline"
	"repro/internal/power"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

func TestSpaceIsTable2(t *testing.T) {
	space := Space(uarch.Default())
	if len(space) != 192 {
		t.Fatalf("space has %d points, want 192 (3 depth × 4 width × 4 L2 sizes × 2 ways × 2 predictors)", len(space))
	}
	seen := map[string]bool{}
	widths := map[int]bool{}
	l2s := map[int64]bool{}
	preds := map[uarch.PredictorKind]bool{}
	stages := map[int]bool{}
	for _, c := range space {
		if err := c.Validate(); err != nil {
			t.Errorf("invalid point %s: %v", c.Name, err)
		}
		if seen[c.Name] {
			t.Errorf("duplicate point name %q", c.Name)
		}
		seen[c.Name] = true
		widths[c.Width] = true
		l2s[c.Hier.L2.SizeBytes] = true
		preds[c.Predictor] = true
		stages[c.PipelineStages()] = true
	}
	if len(widths) != 4 || len(l2s) != 4 || len(preds) != 2 || len(stages) != 3 {
		t.Errorf("axes coverage: widths=%d l2=%d preds=%d stages=%d", len(widths), len(l2s), len(preds), len(stages))
	}
}

func profiled(t *testing.T, name string) *harness.Profiled {
	t.Helper()
	spec, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	pw, err := harness.ProfileProgram(spec.Build())
	if err != nil {
		t.Fatal(err)
	}
	return pw
}

func TestExploreModelOnly(t *testing.T) {
	pw := profiled(t, "gsm_c")
	space := Space(uarch.Default())[:24] // one depth point, all widths/L2s/preds
	pts, err := Explore(pw, space, power.NewModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(space) {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if p.ModelCPI <= 0 || p.ModelEDP <= 0 || p.ModelSecs <= 0 {
			t.Errorf("point %s: %+v", p.Cfg.Name, p)
		}
		if p.Sim != nil {
			t.Errorf("model-only exploration filled simulation fields")
		}
	}
	// Wider configurations at otherwise equal parameters must not
	// predict more cycles.
	byName := map[string]Point{}
	for _, p := range pts {
		byName[p.Cfg.Name] = p
	}
	w1 := byName["d5-w1-l2_512k_8w-gshare-1KB"]
	w4 := byName["d5-w4-l2_512k_8w-gshare-1KB"]
	if w4.ModelCycles >= w1.ModelCycles {
		t.Errorf("W=4 (%f cycles) not faster than W=1 (%f)", w4.ModelCycles, w1.ModelCycles)
	}
}

func TestExploreValidatedAgreesWithModel(t *testing.T) {
	pw := profiled(t, "tiff2bw")
	space := Space(uarch.Default())
	// Subsample the space for test speed: every 16th point.
	var sub []uarch.Config
	for i := 0; i < len(space); i += 16 {
		sub = append(sub, space[i])
	}
	pts, err := ExploreValidated(pw, sub, power.NewModel(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Sim == nil {
			t.Fatalf("point %s missing simulation", p.Cfg.Name)
		}
		if p.CPIErr > 0.20 {
			t.Errorf("point %s: model error %.1f%% too large (model %.3f sim %.3f)",
				p.Cfg.Name, 100*p.CPIErr, p.ModelCPI, p.SimCPI)
		}
		if p.SimEDP <= 0 {
			t.Errorf("point %s: bad detailed EDP", p.Cfg.Name)
		}
	}
}

// TestExploreSingleReplay pins the headline of this optimisation: the
// full 192-point Table 2 exploration costs exactly one trace replay
// for machine statistics.
func TestExploreSingleReplay(t *testing.T) {
	pw := profiled(t, "sha")
	space := Space(uarch.Default())
	before := harness.ReplayCount()
	if _, err := Explore(pw, space, power.NewModel()); err != nil {
		t.Fatal(err)
	}
	if got := harness.ReplayCount() - before; got != 1 {
		t.Errorf("Explore over %d points took %d trace replays, want 1", len(space), got)
	}
}

// TestExploreValidatedAnnotatesOnce pins the annotation-plane economy
// of the validated exploration: the full 192-point Table 2 sweep
// annotates the trace exactly once per distinct cache hierarchy (8:
// four L2 sizes × two associativities) and once per distinct branch
// predictor (2), and a repeated sweep on the same Profiled reuses the
// cached planes without any further annotation work.
func TestExploreValidatedAnnotatesOnce(t *testing.T) {
	pw := profiled(t, "gsm_c")
	space := Space(uarch.Default())
	cBefore, bBefore := harness.CacheAnnotationCount(), harness.BranchAnnotationCount()
	if _, err := ExploreValidated(pw, space, power.NewModel(), 2); err != nil {
		t.Fatal(err)
	}
	if got := harness.CacheAnnotationCount() - cBefore; got != 8 {
		t.Errorf("validated exploration annotated %d hierarchies, want 8 (one per distinct hierarchy)", got)
	}
	if got := harness.BranchAnnotationCount() - bBefore; got != 2 {
		t.Errorf("validated exploration annotated %d predictors, want 2 (one per distinct predictor)", got)
	}
	cBefore, bBefore = harness.CacheAnnotationCount(), harness.BranchAnnotationCount()
	if _, err := ExploreValidated(pw, space, power.NewModel(), 2); err != nil {
		t.Fatal(err)
	}
	if c, b := harness.CacheAnnotationCount()-cBefore, harness.BranchAnnotationCount()-bBefore; c != 0 || b != 0 {
		t.Errorf("repeated exploration re-annotated (%d hierarchies, %d predictors), want cached planes", c, b)
	}
}

// TestExploreValidatedMatchesDirectSimulate verifies the annotated
// fast path changes nothing observable in the validated exploration:
// every simulation field must be bit-identical to running
// pipeline.Simulate directly at that point.
func TestExploreValidatedMatchesDirectSimulate(t *testing.T) {
	pw := profiled(t, "dijkstra")
	space := Space(uarch.Default())
	var sub []uarch.Config
	for i := 0; i < len(space); i += 13 {
		sub = append(sub, space[i])
	}
	pts, err := ExploreValidated(pw, sub, power.NewModel(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		want, err := pipeline.Simulate(pw.Trace, p.Cfg)
		if err != nil {
			t.Fatal(err)
		}
		if *p.Sim != want {
			t.Errorf("%s: annotated result diverges:\n got  %+v\n want %+v", p.Cfg.Name, *p.Sim, want)
		}
		if p.SimCPI != want.CPI() {
			t.Errorf("%s: SimCPI %v != %v", p.Cfg.Name, p.SimCPI, want.CPI())
		}
	}
}

// TestExploreMatchesPerConfigPath verifies the single-pass engine
// changes nothing observable: model CPI, cycles and EDP must be
// bit-identical to evaluating each point from a dedicated
// per-configuration trace replay (the seed code path, still available
// as harness.MachineStats).
func TestExploreMatchesPerConfigPath(t *testing.T) {
	pw := profiled(t, "gsm_c")
	space := Space(uarch.Default())
	var sub []uarch.Config
	for i := 0; i < len(space); i += 7 {
		sub = append(sub, space[i])
	}
	pm := power.NewModel()
	pts, err := Explore(pw, sub, pm)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range sub {
		in, err := pw.Inputs(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := core.Predict(in, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ev := power.EventsFrom(in.Prof, in.Mem, in.Branch)
		edp, err := pm.EDP(ev, cfg, st.Total())
		if err != nil {
			t.Fatal(err)
		}
		p := pts[i]
		if p.ModelCPI != st.CPI() || p.ModelCycles != st.Total() || p.ModelEDP != edp {
			t.Errorf("%s: single-pass point diverges from per-config replay:\n got  CPI=%v cycles=%v EDP=%v\n want CPI=%v cycles=%v EDP=%v",
				cfg.Name, p.ModelCPI, p.ModelCycles, p.ModelEDP, st.CPI(), st.Total(), edp)
		}
	}
}

func TestBestEDP(t *testing.T) {
	pts := []Point{
		{ModelEDP: 3, SimEDP: 5},
		{ModelEDP: 1, SimEDP: 9},
		{ModelEDP: 2, SimEDP: 4},
	}
	m, s := BestEDP(pts)
	if m != 1 {
		t.Errorf("model best = %d, want 1", m)
	}
	if s != -1 {
		t.Errorf("sim best = %d, want -1 (no sim results)", s)
	}
	r := pipelineResultStub()
	pts[2].Sim = &r
	pts[0].Sim = &r
	if _, s = BestEDP(pts); s != 2 {
		t.Errorf("sim best = %d, want 2", s)
	}
}

func pipelineResultStub() pipeline.Result { return pipeline.Result{} }
