package dse

import (
	"context"
	"testing"

	"repro/internal/power"
	"repro/internal/uarch"
)

// The headline gate: on the Table 2 subspace, the heuristic search
// with budget = cardinality must recover the true exhaustive Pareto
// front bit-identically — same points in the same (enumeration) order,
// with float-equal objectives — because its statistics, model and
// power paths are the exact same code the exhaustive sweep runs.
func TestSearchRecoversExhaustiveFront(t *testing.T) {
	pw := profiled(t, "crc32")
	pm := power.NewModel()
	d := uarch.Table2Domain()

	pts, err := Explore(pw, Space(uarch.Default()), pm)
	if err != nil {
		t.Fatal(err)
	}
	want := ParetoFront(pts)

	res, err := Search(context.Background(), pw, d, uarch.Default(), pm, SearchOptions{
		Budget: int(d.Cardinality()),
		Seed:   42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if int64(res.Evaluated) != d.Cardinality() {
		t.Fatalf("evaluated %d points, want the full cardinality %d", res.Evaluated, d.Cardinality())
	}
	if len(res.Front) != len(want) {
		t.Fatalf("front size %d, want %d", len(res.Front), len(want))
	}
	for i, j := range want {
		exh, got := pts[j], res.Front[i]
		if got.Cfg.Name != exh.Cfg.Name {
			t.Fatalf("front[%d] = %s, want %s", i, got.Cfg.Name, exh.Cfg.Name)
		}
		if got.ModelEDP != exh.ModelEDP || got.ModelCPI != exh.ModelCPI ||
			got.ModelSecs != exh.ModelSecs || got.ModelEnergyJ != exh.ModelEnergyJ ||
			got.ModelCycles != exh.ModelCycles {
			t.Fatalf("front[%d] %s objectives differ from exhaustive: %+v vs %+v",
				i, got.Cfg.Name, got, exh)
		}
	}
}

// On the larger extended domain the search must respect its budget —
// strictly fewer evaluations than exhaustive enumeration — while still
// streaming every evaluated point through OnBatch exactly once and
// reporting consistent counters.
func TestSearchBudgetedOnExtendedDomain(t *testing.T) {
	pw := profiled(t, "crc32")
	pm := power.NewModel()
	d := uarch.ExtendedDomain()

	const budget = 256
	gens, streamed := 0, 0
	res, err := Search(context.Background(), pw, d, uarch.Default(), pm, SearchOptions{
		Budget: budget,
		Seed:   7,
		OnBatch: func(gen int, pts []Point) error {
			if gen != gens {
				t.Fatalf("batch gen %d, want %d", gen, gens)
			}
			gens++
			streamed += len(pts)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != budget {
		t.Fatalf("evaluated %d, want exactly the budget %d", res.Evaluated, budget)
	}
	if int64(res.Evaluated) >= d.Cardinality() {
		t.Fatalf("evaluated %d, not strictly fewer than the %d-point space", res.Evaluated, d.Cardinality())
	}
	if streamed != res.Evaluated {
		t.Fatalf("streamed %d points, evaluated %d", streamed, res.Evaluated)
	}
	if gens != res.Generations {
		t.Fatalf("streamed %d generations, counted %d", gens, res.Generations)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	if res.Replays < 1 || res.Replays > res.Generations {
		t.Fatalf("replays = %d outside [1,%d]", res.Replays, res.Generations)
	}
}

// Equal seeds reproduce the search exactly: the evaluation sequence
// and the front, floats included.
func TestSearchDeterministic(t *testing.T) {
	pw := profiled(t, "crc32")
	pm := power.NewModel()
	d := uarch.ExtendedDomain()

	run := func() ([]string, SearchResult) {
		var names []string
		res, err := Search(context.Background(), pw, d, uarch.Default(), pm, SearchOptions{
			Budget: 96,
			Seed:   3,
			OnBatch: func(_ int, pts []Point) error {
				for _, p := range pts {
					names = append(names, p.Cfg.Name)
				}
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return names, res
	}
	names1, res1 := run()
	names2, res2 := run()
	if len(names1) != len(names2) {
		t.Fatalf("evaluation counts differ: %d vs %d", len(names1), len(names2))
	}
	for i := range names1 {
		if names1[i] != names2[i] {
			t.Fatalf("evaluation %d differs: %s vs %s", i, names1[i], names2[i])
		}
	}
	if len(res1.Front) != len(res2.Front) {
		t.Fatalf("front sizes differ: %d vs %d", len(res1.Front), len(res2.Front))
	}
	for i := range res1.Front {
		a, b := res1.Front[i], res2.Front[i]
		if a.Cfg.Name != b.Cfg.Name || a.ModelEDP != b.ModelEDP {
			t.Fatalf("front[%d] differs: %s/%v vs %s/%v", i, a.Cfg.Name, a.ModelEDP, b.Cfg.Name, b.ModelEDP)
		}
	}
}

// A validating search fills the simulation fields on every streamed
// and frontier point, so dominance runs on simulated numbers.
func TestSearchValidated(t *testing.T) {
	pw := profiled(t, "crc32")
	pm := power.NewModel()
	res, err := Search(context.Background(), pw, uarch.Table2Domain(), uarch.Default(), pm, SearchOptions{
		Budget:   24,
		Seed:     1,
		Validate: true,
		OnBatch: func(_ int, pts []Point) error {
			for _, p := range pts {
				if p.Sim == nil {
					t.Fatalf("streamed point %s has no simulation result", p.Cfg.Name)
				}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Front {
		if p.Sim == nil || p.SimEDP <= 0 {
			t.Fatalf("front point %s not validated: %+v", p.Cfg.Name, p)
		}
	}
}

// A cancelled context aborts the search at a batch boundary with the
// context's error.
func TestSearchCancelled(t *testing.T) {
	pw := profiled(t, "crc32")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Search(ctx, pw, uarch.Table2Domain(), uarch.Default(), power.NewModel(), SearchOptions{Budget: 8})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// The Pareto front keeps exactly the non-dominated points, including
// objective-equal duplicates, in ascending index order.
func TestParetoFront(t *testing.T) {
	pts := []Point{
		{ModelSecs: 1, ModelEDP: 4},
		{ModelSecs: 2, ModelEDP: 2}, // incomparable with 0
		{ModelSecs: 2, ModelEDP: 3}, // dominated by 1
		{ModelSecs: 3, ModelEDP: 1},
		{ModelSecs: 2, ModelEDP: 2}, // equal to 1: both stay
	}
	got := ParetoFront(pts)
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("front = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("front = %v, want %v", got, want)
		}
	}
}

// BestEDP breaks EDP ties to the lowest index, on both the model and
// the simulator side — the regression pin for deterministic winners.
func TestBestEDPTieBreaksLowestIndex(t *testing.T) {
	pts := []Point{
		{ModelEDP: 2, SimEDP: 7},
		{ModelEDP: 1, SimEDP: 5},
		{ModelEDP: 1, SimEDP: 5},
		{ModelEDP: 1, SimEDP: 4},
	}
	r := pipelineResultStub()
	for i := range pts[1:] {
		pts[i+1].Sim = &r
	}
	m, s := BestEDP(pts)
	if m != 1 {
		t.Errorf("model best = %d, want the lowest tied index 1", m)
	}
	if s != 3 {
		t.Errorf("sim best = %d, want 3", s)
	}
	pts[3].SimEDP = 5
	if _, s = BestEDP(pts); s != 1 {
		t.Errorf("sim best = %d, want the lowest tied index 1", s)
	}
}
