package dse

// The Pareto view of an explored space: the paper's §6.3 case study
// picks the single EDP-optimal point, but once the space grows past
// Table 2 the interesting output is the whole delay/EDP trade-off
// curve — the designs for which no other point is both faster and more
// energy-delay efficient.

// objectivesOf returns the two Pareto objectives of a point: run time
// in seconds and energy-delay product. Simulator numbers are used when
// ExploreValidated (or a validating search) filled them, model numbers
// otherwise.
func objectivesOf(p *Point) (delaySec, edp float64) {
	if p.Sim != nil {
		return p.SimSecs, p.SimEDP
	}
	return p.ModelSecs, p.ModelEDP
}

// dominates reports whether objective pair 1 Pareto-dominates pair 2:
// no worse in both objectives and strictly better in at least one.
func dominates(d1, e1, d2, e2 float64) bool {
	return d1 <= d2 && e1 <= e2 && (d1 < d2 || e1 < e2)
}

// ParetoFront returns the indices of the non-dominated points under
// (delay seconds, EDP) minimization, in ascending index order. Points
// exactly equal in both objectives do not dominate each other, so
// co-optimal duplicates all appear on the front — the output for a
// fixed point set is fully deterministic, which is what lets the
// search's recovered front be compared bit-for-bit against the
// exhaustive one.
func ParetoFront(pts []Point) []int {
	var front []int
	for i := range pts {
		di, ei := objectivesOf(&pts[i])
		dominated := false
		for j := range pts {
			if j == i {
				continue
			}
			dj, ej := objectivesOf(&pts[j])
			if dominates(dj, ej, di, ei) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, i)
		}
	}
	return front
}
