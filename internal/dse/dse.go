// Package dse implements the paper's design-space exploration: the
// Table 2 space of 192 design points (3 depth/frequency settings × 4
// widths × 4 L2 sizes × 2 L2 associativities × 2 branch predictors),
// evaluated either with the mechanistic model alone (seconds) or
// validated against the detailed simulator (the expensive path the
// model exists to avoid).
package dse

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/par"
	"repro/internal/pipeline"
	"repro/internal/power"
	"repro/internal/uarch"
)

// Space enumerates the Table 2 design space starting from base (whose
// L1 caches, latencies and TLBs are kept): SpaceFrom over the typed
// uarch.Table2Domain(), whose axis definitions are shared with the CLI
// and service request validators. Point names and enumeration order
// are the historical ones (depth outer, predictor innermost).
func Space(base uarch.Config) []uarch.Config {
	out, err := SpaceFrom(uarch.Table2Domain(), base)
	if err != nil {
		// The Table 2 domain is constraint-free and every point builds
		// from any valid base; a failure here is a programming error.
		panic(fmt.Sprintf("dse: enumerating the Table 2 domain: %v", err))
	}
	return out
}

// SpaceFrom enumerates every valid point of a typed parameter domain
// starting from base, in deterministic index order (axis 0 slowest).
func SpaceFrom(d *uarch.Domain, base uarch.Config) ([]uarch.Config, error) {
	return d.Enumerate(base)
}

// Point is one evaluated design point.
type Point struct {
	Cfg uarch.Config

	ModelStack   *core.Stack
	ModelCycles  float64
	ModelCPI     float64
	ModelSecs    float64
	ModelEDP     float64 // J·s, using model cycles
	ModelEnergyJ float64 // total energy, using model cycles

	// Populated only by ExploreValidated.
	Sim        *pipeline.Result
	SimCPI     float64
	SimSecs    float64
	SimEDP     float64
	SimEnergyJ float64
	CPIErr     float64 // |model-sim|/sim
}

// Explore evaluates the model on every configuration. A single trace
// replay collects the mixed statistics for the entire space at once —
// every L2 geometry via stack-distance simulation, every predictor
// simultaneously (harness.CollectMultiStats); model evaluation itself
// is closed-form.
func Explore(pw *harness.Profiled, cfgs []uarch.Config, pm power.Model) ([]Point, error) {
	return ExploreCtx(context.Background(), pw, cfgs, pm)
}

// ExploreCtx is Explore under a request context: the statistics
// traversal aborts at a trace chunk boundary once ctx ends, returning
// ctx.Err() with no points.
func ExploreCtx(ctx context.Context, pw *harness.Profiled, cfgs []uarch.Config, pm power.Model) ([]Point, error) {
	memo, err := pw.MultiInputsCtx(ctx, cfgs)
	if err != nil {
		return nil, err
	}
	return explore(memo, cfgs, pm)
}

// inputsSource yields the model inputs for one design point. Both
// harness.InputsSet (whole-space memo) and harness.StatsCache (the
// search's incremental accumulator) satisfy it; the statistics they
// hand out are bit-identical for the same trace and configuration.
type inputsSource interface {
	Inputs(cfg uarch.Config) (core.Inputs, error)
}

func explore(src inputsSource, cfgs []uarch.Config, pm power.Model) ([]Point, error) {
	out := make([]Point, 0, len(cfgs))
	for _, cfg := range cfgs {
		in, err := src.Inputs(cfg)
		if err != nil {
			return nil, err
		}
		st, err := core.Predict(in, cfg)
		if err != nil {
			return nil, err
		}
		ev := power.EventsFrom(in.Prof, in.Mem, in.Branch)
		obj, err := pm.Objectives(ev, cfg, st.Total())
		if err != nil {
			return nil, err
		}
		out = append(out, Point{
			Cfg:          cfg,
			ModelStack:   st,
			ModelCycles:  st.Total(),
			ModelCPI:     st.CPI(),
			ModelSecs:    obj.DelaySec,
			ModelEDP:     obj.EDP,
			ModelEnergyJ: obj.EnergyJ,
		})
	}
	return out, nil
}

// fillSim fills one point's simulation-side fields from a detailed
// run, using the same power model and inputs as the model side.
func fillSim(p *Point, sim pipeline.Result, src inputsSource, pm power.Model) error {
	in, err := src.Inputs(p.Cfg)
	if err != nil {
		return err
	}
	ev := power.EventsFrom(in.Prof, in.Mem, in.Branch)
	obj, err := pm.Objectives(ev, p.Cfg, float64(sim.Cycles))
	if err != nil {
		return err
	}
	p.Sim = &sim
	p.SimCPI = sim.CPI()
	p.SimSecs = obj.DelaySec
	p.SimEDP = obj.EDP
	p.SimEnergyJ = obj.EnergyJ
	if p.SimCPI > 0 {
		p.CPIErr = abs(p.ModelCPI-p.SimCPI) / p.SimCPI
	}
	return nil
}

// ExploreValidated additionally runs the detailed simulator for every
// configuration, in parallel across workers (≤0 means the process
// default, see par.SetDefault). The trace is annotated once per
// distinct hierarchy and once per distinct predictor of the space
// (itself in parallel); the detailed runs are then timing-only replays
// over the shared planes, bit-identical to pipeline.Simulate. The
// replay kernel is chosen by harness.DefaultReplay(): the
// config-parallel batch kernel sweeps the whole space in one pass per
// trace chunk (with the model inputs fused into the annotation
// traversals — a cold 192-point sweep touches the trace once per
// distinct component and once for timing); -replay=scalar on the CLIs
// selects the per-point kernel instead.
func ExploreValidated(pw *harness.Profiled, cfgs []uarch.Config, pm power.Model, workers int) ([]Point, error) {
	return ExploreValidatedCtx(context.Background(), pw, cfgs, pm, workers)
}

// ExploreValidatedCtx is ExploreValidated under a request context.
// Cancellation cuts every stage — the statistics pass, the annotation
// fan-out, and the detailed replays — at chunk/cycle-batch boundaries:
// no new design point starts and running replays abort, returning
// ctx.Err(). Completed points are discarded, never returned partially.
func ExploreValidatedCtx(ctx context.Context, pw *harness.Profiled, cfgs []uarch.Config, pm power.Model, workers int) ([]Point, error) {
	if harness.DefaultReplay() == harness.ReplayScalar {
		return exploreValidatedScalar(ctx, pw, cfgs, pm, workers)
	}
	return exploreValidatedBatch(ctx, pw, cfgs, pm, workers)
}

// exploreValidatedBatch is the config-parallel path: one fused
// annotation+inputs pass over the trace, then every memo-missing
// design point replays together in a single pass per trace chunk.
func exploreValidatedBatch(ctx context.Context, pw *harness.Profiled, cfgs []uarch.Config, pm power.Model, workers int) ([]Point, error) {
	memo, err := pw.ExploreInputsCtx(ctx, cfgs, workers)
	if err != nil {
		return nil, err
	}
	pts, err := explore(memo, cfgs, pm)
	if err != nil {
		return nil, err
	}
	sims, err := pw.SimulateDetailedBatchCtx(ctx, cfgs, workers)
	if err != nil {
		return nil, err
	}
	for i := range pts {
		if err := fillSim(&pts[i], sims[i], memo, pm); err != nil {
			return nil, err
		}
	}
	return pts, nil
}

// exploreValidatedScalar is the pre-batch path, kept verbatim for
// -replay=scalar bisection: one statistics replay, then one timing
// replay per memo-missing design point fanned out across workers.
func exploreValidatedScalar(ctx context.Context, pw *harness.Profiled, cfgs []uarch.Config, pm power.Model, workers int) ([]Point, error) {
	memo, err := pw.MultiInputsCtx(ctx, cfgs)
	if err != nil {
		return nil, err
	}
	pts, err := explore(memo, cfgs, pm)
	if err != nil {
		return nil, err
	}
	if err := pw.EnsureAnnotatedCtx(ctx, cfgs, workers); err != nil {
		return nil, err
	}
	err = par.ForEachCtx(ctx, workers, len(pts), func(i int) error {
		sim, err := pw.SimulateDetailedCtx(ctx, pts[i].Cfg)
		if err != nil {
			return err
		}
		return fillSim(&pts[i], sim, memo, pm)
	})
	if err != nil {
		return nil, err
	}
	return pts, nil
}

// ExploreSuite runs the model-only exploration for several profiled
// workloads, in parallel across benchmarks (≤0 workers means the
// process default). Each benchmark's exploration is itself a single
// trace replay plus closed-form evaluation; the result is indexed like
// pws.
func ExploreSuite(pws []*harness.Profiled, cfgs []uarch.Config, pm power.Model, workers int) ([][]Point, error) {
	return ExploreSuiteCtx(context.Background(), pws, cfgs, pm, workers)
}

// ExploreSuiteCtx is ExploreSuite under a request context: no new
// benchmark's exploration starts after ctx ends and running replays
// abort at chunk boundaries.
func ExploreSuiteCtx(ctx context.Context, pws []*harness.Profiled, cfgs []uarch.Config, pm power.Model, workers int) ([][]Point, error) {
	out := make([][]Point, len(pws))
	err := par.ForEachCtx(ctx, workers, len(pws), func(i int) error {
		pts, err := ExploreCtx(ctx, pws[i], cfgs, pm)
		if err != nil {
			return fmt.Errorf("%s: %w", pws[i].Name, err)
		}
		out[i] = pts
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// BestEDP returns the index of the point with the lowest EDP according
// to the model and according to the detailed simulator (the latter is
// -1 unless ExploreValidated filled the simulation fields). Ties on
// EDP break to the lowest index — the earliest point in enumeration
// order — so the winner is deterministic and independent of how the
// points were produced (exhaustive sweep or search).
func BestEDP(pts []Point) (modelBest, simBest int) {
	modelBest, simBest = -1, -1
	for i := range pts {
		if modelBest < 0 || pts[i].ModelEDP < pts[modelBest].ModelEDP {
			modelBest = i
		}
		if pts[i].Sim != nil && (simBest < 0 || pts[i].SimEDP < pts[simBest].SimEDP) {
			simBest = i
		}
	}
	return modelBest, simBest
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
