package dse

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/harness"
	"repro/internal/power"
	"repro/internal/uarch"
)

// Search is the Pareto-aware heuristic exploration: a deterministic
// seeded genetic search over a typed parameter domain's index space,
// for spaces too large to sweep exhaustively. Each generation breeds
// candidates from the current Pareto front (uniform crossover plus
// point mutation), deduplicates against everything already evaluated,
// tops the batch up with random unevaluated points, and evaluates the
// batch with the mechanistic model — the machine statistics arrive
// through a harness.StatsCache, so a generation costs at most one
// trace replay and only for components not yet seen.
//
// Determinism: with a fixed seed, trace and options, the evaluation
// sequence and the returned front are exactly reproducible — the
// search never iterates a map where order matters and draws every
// random choice from its own seeded source. With Budget at least the
// domain cardinality the search degenerates to (out-of-order)
// exhaustive enumeration, so its front is bit-identical to the
// exhaustive sweep's: same points, same floats.

// Default search parameters, used when the corresponding option is
// zero or negative.
const (
	DefaultSearchBudget     = 512
	DefaultSearchPopulation = 32
)

// SearchOptions tunes Search. The zero value is usable.
type SearchOptions struct {
	// Budget caps the number of model evaluations (design points).
	// ≤0 means DefaultSearchBudget; it is always clamped to the
	// domain cardinality.
	Budget int
	// Seed seeds the random source; equal seeds reproduce the search
	// exactly.
	Seed int64
	// PopSize is the per-generation batch size (≤0 means
	// DefaultSearchPopulation).
	PopSize int
	// Validate additionally runs the detailed simulator for every
	// evaluated point (the expensive path), filling the Sim fields so
	// Pareto dominance uses simulated numbers.
	Validate bool
	// Workers bounds the parallel detailed replays when validating
	// (≤0 means the process default).
	Workers int
	// OnBatch, when set, streams each generation's evaluated points as
	// soon as they exist (gen counts from 0). Returning an error
	// aborts the search with that error. Points are handed over in
	// evaluation order and must not be retained past the call if the
	// callback mutates them.
	OnBatch func(gen int, pts []Point) error
}

// SearchResult is the outcome of a Search run.
type SearchResult struct {
	// Evaluated counts distinct design points evaluated with the
	// model — the economy counter the exhaustive-recovery test pins
	// against the domain cardinality.
	Evaluated int
	// Generations counts evaluated batches.
	Generations int
	// Replays counts trace traversals spent collecting statistics
	// (harness.StatsCache economy; annotation/timing replays of
	// Validate are not included).
	Replays int
	// Front is the Pareto front over every evaluated point, ordered by
	// ascending domain index — the same order an exhaustive sweep
	// enumerates, so fronts compare positionally.
	Front []Point
}

// Search runs the heuristic exploration of domain d from base on pw's
// trace. It aborts with ctx's error at a batch boundary once ctx ends.
func Search(ctx context.Context, pw *harness.Profiled, d *uarch.Domain, base uarch.Config, pm power.Model, opts SearchOptions) (SearchResult, error) {
	card := d.Cardinality()
	budget := opts.Budget
	if budget <= 0 {
		budget = DefaultSearchBudget
	}
	if int64(budget) > card {
		budget = int(card)
	}
	pop := opts.PopSize
	if pop <= 0 {
		pop = DefaultSearchPopulation
	}
	if pop > budget {
		pop = budget
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	sc := pw.NewStatsCache()
	var (
		all     []Point       // every evaluated point, evaluation order
		allPts  []uarch.Point // axis-index vector per evaluated point
		allIdx  []int64       // domain index per evaluated point
		seen    = make(map[int64]bool)
		scan    int64 // deterministic fallback cursor over the grid
		parents []uarch.Point
		res     SearchResult
	)
	for len(all) < budget {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		want := pop
		if rem := budget - len(all); want > rem {
			want = rem
		}
		batch, idxs := nextBatch(d, rng, want, seen, &scan, parents)
		if len(batch) == 0 {
			break // every valid point evaluated
		}
		cfgs := make([]uarch.Config, len(batch))
		for i, pt := range batch {
			cfg, err := d.Apply(base, pt)
			if err != nil {
				return res, fmt.Errorf("dse: search candidate %v: %w", []int(pt), err)
			}
			cfgs[i] = cfg
		}
		pts, err := evalSearchBatch(ctx, sc, pw, cfgs, pm, opts)
		if err != nil {
			return res, err
		}
		gen := res.Generations
		res.Generations++
		for i := range pts {
			seen[idxs[i]] = true
			all = append(all, pts[i])
			allPts = append(allPts, batch[i])
			allIdx = append(allIdx, idxs[i])
		}
		res.Evaluated = len(all)
		res.Replays = sc.Replays()
		if opts.OnBatch != nil {
			if err := opts.OnBatch(gen, pts); err != nil {
				return res, err
			}
		}
		front := ParetoFront(all)
		parents = parents[:0]
		for _, i := range front {
			parents = append(parents, allPts[i])
		}
	}

	front := ParetoFront(all)
	sort.Slice(front, func(a, b int) bool { return allIdx[front[a]] < allIdx[front[b]] })
	res.Front = make([]Point, len(front))
	for i, j := range front {
		res.Front[i] = all[j]
	}
	res.Evaluated = len(all)
	res.Replays = sc.Replays()
	return res, nil
}

// evalSearchBatch evaluates one generation: statistics through the
// incremental cache (at most one replay), closed-form model per point,
// plus the detailed simulator when validating.
func evalSearchBatch(ctx context.Context, sc *harness.StatsCache, pw *harness.Profiled, cfgs []uarch.Config, pm power.Model, opts SearchOptions) ([]Point, error) {
	if err := sc.AddCtx(ctx, cfgs); err != nil {
		return nil, err
	}
	pts, err := explore(sc, cfgs, pm)
	if err != nil {
		return nil, err
	}
	if opts.Validate {
		sims, err := pw.SimulateDetailedBatchCtx(ctx, cfgs, opts.Workers)
		if err != nil {
			return nil, err
		}
		for i := range pts {
			if err := fillSim(&pts[i], sims[i], sc, pm); err != nil {
				return nil, err
			}
		}
	}
	return pts, nil
}

// nextBatch assembles up to want unevaluated valid points: offspring
// bred from the Pareto-front parents first, then random unevaluated
// points, then — guaranteeing progress whenever unevaluated points
// remain — a deterministic scan of the remaining grid.
func nextBatch(d *uarch.Domain, rng *rand.Rand, want int, seen map[int64]bool, scan *int64, parents []uarch.Point) ([]uarch.Point, []int64) {
	batch := make([]uarch.Point, 0, want)
	idxs := make([]int64, 0, want)
	inBatch := make(map[int64]bool)
	add := func(pt uarch.Point) {
		idx, err := d.PointIndex(pt)
		if err != nil || seen[idx] || inBatch[idx] {
			return
		}
		inBatch[idx] = true
		batch = append(batch, pt)
		idxs = append(idxs, idx)
	}
	if len(parents) > 0 {
		for tries := 0; tries < want*8 && len(batch) < want; tries++ {
			a := parents[rng.Intn(len(parents))]
			b := parents[rng.Intn(len(parents))]
			add(breed(d, rng, a, b))
		}
	}
	grid := d.GridSize()
	for tries := 0; tries < want*16 && len(batch) < want; tries++ {
		pt, err := d.PointAt(rng.Int63n(grid))
		if err != nil {
			continue // constraint-violating grid point
		}
		add(pt)
	}
	for *scan < grid && len(batch) < want {
		pt, err := d.PointAt(*scan)
		*scan++
		if err != nil {
			continue
		}
		add(pt)
	}
	return batch, idxs
}

// breed produces one offspring: uniform crossover of two parents, then
// with even odds a point mutation on one random axis.
func breed(d *uarch.Domain, rng *rand.Rand, a, b uarch.Point) uarch.Point {
	axes := d.Axes()
	child := make(uarch.Point, len(axes))
	for i := range child {
		if rng.Intn(2) == 0 {
			child[i] = a[i]
		} else {
			child[i] = b[i]
		}
	}
	if rng.Intn(2) == 0 {
		i := rng.Intn(len(axes))
		child[i] = rng.Intn(axes[i].Card())
	}
	return child
}
