package dse

import (
	"testing"

	"repro/internal/artifact"
	"repro/internal/harness"
	"repro/internal/power"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

// TestExploreValidatedBitIdenticalFromDisk is the acceptance gate for
// the artifact store at the exploration layer: a full validated Table 2
// exploration of sha must produce identical results — every model
// number and every detailed-simulation Result at all 192 design points
// — whether the workload was profiled fresh or rehydrated from a store
// written by another Profiled instance. The rehydrated run must also
// perform zero profiling-pass annotations (its planes come from disk).
func TestExploreValidatedBitIdenticalFromDisk(t *testing.T) {
	store, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec, err := workloads.ByName("sha")
	if err != nil {
		t.Fatal(err)
	}
	space := Space(uarch.Default())
	pm := power.NewModel()

	fresh, fromDisk, err := harness.ProfileProgramCached(store, "sha", 0, spec.Build)
	if err != nil {
		t.Fatal(err)
	}
	if fromDisk {
		t.Fatal("first run claims a disk hit on an empty store")
	}
	ptsFresh, err := ExploreValidated(fresh, space, pm, 4)
	if err != nil {
		t.Fatal(err)
	}

	// Separate Profiled (modeling a separate process): trace, profile
	// and all annotation planes rehydrate from disk.
	loaded, fromDisk, err := harness.ProfileProgramCached(store, "sha", 0, spec.Build)
	if err != nil {
		t.Fatal(err)
	}
	if !fromDisk {
		t.Fatal("second run missed the artifact store")
	}
	c0, b0 := harness.CacheAnnotationCount(), harness.BranchAnnotationCount()
	ptsDisk, err := ExploreValidated(loaded, space, pm, 4)
	if err != nil {
		t.Fatal(err)
	}
	if dc, db := harness.CacheAnnotationCount()-c0, harness.BranchAnnotationCount()-b0; dc != 0 || db != 0 {
		t.Fatalf("rehydrated exploration annotated %d hierarchies and %d predictors, want 0 (planes must load from disk)", dc, db)
	}

	if len(ptsFresh) != len(ptsDisk) {
		t.Fatalf("point counts differ: %d fresh, %d from disk", len(ptsFresh), len(ptsDisk))
	}
	for i := range ptsFresh {
		f, d := ptsFresh[i], ptsDisk[i]
		if f.Cfg.Name != d.Cfg.Name {
			t.Fatalf("point %d: config order differs (%s vs %s)", i, f.Cfg.Name, d.Cfg.Name)
		}
		if *f.ModelStack != *d.ModelStack ||
			f.ModelCycles != d.ModelCycles || f.ModelCPI != d.ModelCPI ||
			f.ModelSecs != d.ModelSecs || f.ModelEDP != d.ModelEDP {
			t.Fatalf("%s: model results differ between fresh and rehydrated workload", f.Cfg.Name)
		}
		if (f.Sim == nil) != (d.Sim == nil) {
			t.Fatalf("%s: validation presence differs", f.Cfg.Name)
		}
		if f.Sim != nil && *f.Sim != *d.Sim {
			t.Fatalf("%s: detailed simulation differs between fresh and rehydrated workload:\n fresh %+v\n disk  %+v", f.Cfg.Name, *f.Sim, *d.Sim)
		}
		if f.SimCPI != d.SimCPI || f.SimSecs != d.SimSecs || f.SimEDP != d.SimEDP || f.CPIErr != d.CPIErr {
			t.Fatalf("%s: derived validation numbers differ", f.Cfg.Name)
		}
	}

	mf, sf := BestEDP(ptsFresh)
	md, sd := BestEDP(ptsDisk)
	if mf != md || sf != sd {
		t.Fatal("best-EDP selections differ between fresh and rehydrated exploration")
	}
}
