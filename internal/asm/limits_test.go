package asm

import (
	"errors"
	"strings"
	"testing"
)

// TestAssembleLimited: each static limit rejects with ErrLimit, and
// the same source passes once the limit is loosened.
func TestAssembleLimited(t *testing.T) {
	src := ".mem 64\n.data 0 1\n.data 1 2\nmain:\n li r1, 1\n addi r1, r1, 1\nnext:\n halt\n"
	loose := Limits{MaxSourceBytes: 1 << 10, MaxBlocks: 8, MaxInsts: 8, MaxDataEntries: 8, MaxMemWords: 128}
	if _, err := AssembleLimited("t", src, loose); err != nil {
		t.Fatalf("loose limits rejected a fine program: %v", err)
	}
	cases := []struct {
		name string
		lim  Limits
	}{
		{"source bytes", Limits{MaxSourceBytes: 10}},
		{"blocks", Limits{MaxBlocks: 1}},
		{"instructions", Limits{MaxInsts: 2}},
		{"data entries", Limits{MaxDataEntries: 1}},
		{"memory words", Limits{MaxMemWords: 32}},
	}
	for _, c := range cases {
		_, err := AssembleLimited("t", src, c.lim)
		if !errors.Is(err, ErrLimit) {
			t.Errorf("%s: err = %v, want ErrLimit", c.name, err)
		}
	}
}

// TestAssembleLimitedZeroMeansUnlimited: the zero value must behave
// exactly like Assemble.
func TestAssembleLimitedZeroMeansUnlimited(t *testing.T) {
	src := ".mem 64\nmain:\n" + strings.Repeat(" addi r1, r1, 1\n", 100) + " halt\n"
	p1, err := AssembleLimited("t", src, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Fingerprint() != p2.Fingerprint() {
		t.Fatal("limited and unlimited assembly disagree")
	}
}

// TestDataOverwriteNotDoubleCounted: re-initializing the same address
// must not consume extra data-entry budget.
func TestDataOverwriteNotDoubleCounted(t *testing.T) {
	src := ".mem 8\n.data 0 1\n.data 0 2\n.data 0 3\nmain:\n halt\n"
	if _, err := AssembleLimited("t", src, Limits{MaxDataEntries: 1}); err != nil {
		t.Fatalf("overwrites double-counted: %v", err)
	}
}
