package asm

import (
	"strings"
	"testing"

	"repro/internal/funcsim"
	"repro/internal/randprog"
	"repro/internal/workloads"
)

const sample = `
; sum the first 10 integers
.mem 64
.data 0x10 0
main:
  li   r1, 0        ; i
  li   r2, 10       ; n
  li   r3, 0        ; sum
loop:
  add  r3, r3, r1
  addi r1, r1, 1
  blt  r1, r2, loop
end:
  st   r3, 0x10(r0)
  halt
.loop loop loop 1
`

func TestAssembleAndRun(t *testing.T) {
	p, err := Assemble("sum", sample)
	if err != nil {
		t.Fatal(err)
	}
	m := funcsim.MustNew(p)
	if _, err := m.Run(nil); err != nil {
		t.Fatal(err)
	}
	if m.Mem[0x10] != 45 {
		t.Errorf("sum = %d, want 45", m.Mem[0x10])
	}
	blk := p.FindBlock("loop")
	if blk == nil || !blk.LoopHead || blk.TripMultiple != 1 {
		t.Errorf("loop annotation not applied: %+v", blk)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := map[string]string{
		"no mem":           "main:\n halt\n",
		"bad mnemonic":     ".mem 8\nmain:\n frob r1\n",
		"bad register":     ".mem 8\nmain:\n add rX, r1, r2\n halt\n",
		"reg out of range": ".mem 8\nmain:\n add r99, r1, r2\n halt\n",
		"wrong arity":      ".mem 8\nmain:\n add r1, r2\n halt\n",
		"bad mem operand":  ".mem 8\nmain:\n ld r1, r2\n halt\n",
		"orphan inst":      ".mem 8\n add r1, r2, r3\n",
		"bad directive":    ".mem 8\n.bogus 1\nmain:\n halt\n",
		"unknown target":   ".mem 8\nmain:\n jmp nowhere\n",
		"loop before decl": ".mem 8\n.loop x x 4\nmain:\n halt\n",
		"empty label":      ".mem 8\n:\n halt\n",
	}
	for name, src := range cases {
		if _, err := Assemble("t", src); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestHexAndNegativeLiterals(t *testing.T) {
	p, err := Assemble("t", ".mem 0x40\nmain:\n li r1, -5\n addi r2, r1, 0x10\n st r2, 0(r0)\n halt\n")
	if err != nil {
		t.Fatal(err)
	}
	m := funcsim.MustNew(p)
	if _, err := m.Run(nil); err != nil {
		t.Fatal(err)
	}
	if m.Mem[0] != 11 {
		t.Errorf("result = %d, want 11", m.Mem[0])
	}
}

// TestRoundTripWorkloads: disassembling a real kernel and reassembling
// it must produce a behaviorally identical program.
func TestRoundTripWorkloads(t *testing.T) {
	for _, name := range []string{"sha", "adpcm_c", "crc32"} {
		spec, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		src := spec.Build()
		text := Disassemble(src)
		back, err := Assemble(name, text)
		if err != nil {
			t.Fatalf("%s: reassemble: %v\nfirst lines:\n%s", name, err,
				strings.Join(strings.Split(text, "\n")[:10], "\n"))
		}
		m1 := funcsim.MustNew(src)
		if _, err := m1.Run(nil); err != nil {
			t.Fatal(err)
		}
		m2 := funcsim.MustNew(back)
		if _, err := m2.Run(nil); err != nil {
			t.Fatalf("%s: reassembled program failed: %v", name, err)
		}
		for i := 0; i < 16; i++ {
			if m1.Mem[i] != m2.Mem[i] {
				t.Errorf("%s: memory word %d differs after round trip", name, i)
			}
		}
	}
}

// TestRoundTripRandomPrograms fuzzes the assembler/disassembler pair.
func TestRoundTripRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		src := randprog.Generate(randprog.Default(seed))
		back, err := Assemble(src.Name, Disassemble(src))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		m1 := funcsim.MustNew(src)
		m2 := funcsim.MustNew(back)
		n1, err1 := m1.Run(nil)
		n2, err2 := m2.Run(nil)
		if err1 != nil || err2 != nil || n1 != n2 {
			t.Fatalf("seed %d: round trip diverged (n %d vs %d, errs %v/%v)", seed, n1, n2, err1, err2)
		}
		for i := 0; i < 8; i++ {
			if m1.Mem[i] != m2.Mem[i] {
				t.Errorf("seed %d: memory differs", seed)
			}
		}
	}
}
