package asm

import (
	"strings"
	"testing"

	"repro/internal/randprog"
	"repro/internal/workloads"
)

// FuzzAssemble throws arbitrary text at the limited assembler. The
// invariants: it never panics, limit violations surface as ErrLimit
// (checked implicitly by error-not-panic), and anything it accepts
// must survive the canonical round trip — disassemble, reassemble,
// same fingerprint — because the ingestion registry's identity rests
// on exactly that property.
func FuzzAssemble(f *testing.F) {
	f.Add(".mem 64\nmain:\n li r1, 1\n halt\n")
	f.Add(".mem 8\n.data 0 7\nmain:\n ld r1, 0(r0)\n st r1, 1(r0)\n halt\n")
	f.Add("main:\n halt\n")
	f.Add(".mem 0x40\nmain:\n li r1, -5\nloop:\n addi r1, r1, 1\n blt r1, r2, loop\n halt\n.loop loop loop 1\n")
	f.Add(strings.Repeat(".data 0 1\n", 10))
	for _, name := range []string{"sha", "crc32"} {
		if spec, err := workloads.ByName(name); err == nil {
			f.Add(Disassemble(spec.Build()))
		}
	}
	f.Add(Disassemble(randprog.Generate(randprog.Default(1))))

	lim := Limits{
		MaxSourceBytes: 1 << 16,
		MaxBlocks:      256,
		MaxInsts:       4096,
		MaxDataEntries: 1024,
		MaxMemWords:    1 << 16,
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := AssembleLimited("fuzz", src, lim)
		if err != nil {
			return
		}
		text := Disassemble(p)
		back, err := AssembleLimited("fuzz", text, lim)
		if err != nil {
			t.Fatalf("canonical form rejected: %v\n--- source ---\n%s\n--- canonical ---\n%s", err, src, text)
		}
		if back.Fingerprint() != p.Fingerprint() {
			t.Fatalf("round trip changed fingerprint\n--- source ---\n%s", src)
		}
	})
}
