// Package asm provides a textual assembly format for the repository's
// ISA: an assembler producing program IR and a disassembler that
// round-trips it. It exists for users who prefer writing kernels as
// text over the builder DSL in package program.
//
// Syntax (one instruction or directive per line; ';' starts a comment):
//
//	.mem 4096               ; data memory size in words (required)
//	.data 0x100 1 2 -3      ; initialize consecutive words
//	.loop body body 4       ; mark block `body` as a loop head
//	                        ; (label, latch, trip multiple)
//	main:                   ; labels start blocks
//	  li   r1, 10
//	  add  r2, r1, r1
//	  addi r1, r1, -1
//	  ld   r3, 8(r2)        ; loads/stores use displacement(base)
//	  st   r3, 0(r2)
//	  blt  r0, r1, main     ; branches name their target block
//	  halt
package asm

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
	"repro/internal/program"
)

// ErrLimit marks a source rejected by AssembleLimited's static limits
// (size, block/instruction/data counts, memory words). errors.Is-able
// so callers can distinguish "too big" from "malformed".
var ErrLimit = errors.New("asm: source exceeds limit")

// Limits bounds what AssembleLimited accepts. Zero fields are
// unlimited (up to program.MaxMemWords, which Build always enforces).
// The limits are checked while parsing, so a hostile source fails
// fast instead of building an arbitrarily large IR first.
type Limits struct {
	MaxSourceBytes int   // length of the source text
	MaxBlocks      int   // labeled basic blocks
	MaxInsts       int   // static instructions across all blocks
	MaxDataEntries int   // distinct .data-initialized words
	MaxMemWords    int64 // .mem declaration
}

// Assemble parses source text into a program named name, without
// static limits (trusted callers: tests, tools, round-trips).
func Assemble(name, src string) (*program.Program, error) {
	return AssembleLimited(name, src, Limits{})
}

// AssembleLimited is Assemble under explicit static limits; violations
// wrap ErrLimit.
func AssembleLimited(name, src string, lim Limits) (*program.Program, error) {
	if lim.MaxSourceBytes > 0 && len(src) > lim.MaxSourceBytes {
		return nil, fmt.Errorf("%w: source is %d bytes, cap %d", ErrLimit, len(src), lim.MaxSourceBytes)
	}
	a := &assembler{prog: program.New(name, 0), lim: lim}
	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := a.line(line); err != nil {
			return nil, fmt.Errorf("asm: line %d: %w", ln+1, err)
		}
	}
	if a.prog.MemWords == 0 {
		return nil, fmt.Errorf("asm: missing .mem directive")
	}
	if _, err := a.prog.Build(); err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	return a.prog, nil
}

type assembler struct {
	prog  *program.Program
	cur   *program.Builder
	lim   Limits
	insts int
}

func (a *assembler) line(line string) error {
	switch {
	case strings.HasPrefix(line, "."):
		return a.directive(line)
	case strings.HasSuffix(line, ":"):
		label := strings.TrimSuffix(line, ":")
		if label == "" {
			return fmt.Errorf("empty label")
		}
		if a.lim.MaxBlocks > 0 && len(a.prog.Blocks) >= a.lim.MaxBlocks {
			return fmt.Errorf("%w: more than %d blocks", ErrLimit, a.lim.MaxBlocks)
		}
		a.cur = a.prog.Block(label)
		return nil
	default:
		if a.cur == nil {
			return fmt.Errorf("instruction before any label")
		}
		return a.instruction(line)
	}
}

func (a *assembler) directive(line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case ".mem":
		if len(fields) != 2 {
			return fmt.Errorf(".mem wants one argument")
		}
		n, err := parseInt(fields[1])
		if err != nil {
			return err
		}
		if a.lim.MaxMemWords > 0 && n > a.lim.MaxMemWords {
			return fmt.Errorf("%w: .mem %d words, cap %d", ErrLimit, n, a.lim.MaxMemWords)
		}
		a.prog.MemWords = n
		return nil
	case ".data":
		if len(fields) < 3 {
			return fmt.Errorf(".data wants an address and at least one value")
		}
		addr, err := parseInt(fields[1])
		if err != nil {
			return err
		}
		for i, f := range fields[2:] {
			v, err := parseInt(f)
			if err != nil {
				return err
			}
			if a.lim.MaxDataEntries > 0 && len(a.prog.Data) >= a.lim.MaxDataEntries {
				if _, exists := a.prog.Data[addr+int64(i)]; !exists {
					return fmt.Errorf("%w: more than %d data words", ErrLimit, a.lim.MaxDataEntries)
				}
			}
			a.prog.SetData(addr+int64(i), v)
		}
		return nil
	case ".loop":
		if len(fields) != 4 {
			return fmt.Errorf(".loop wants label, latch and trip multiple")
		}
		blk := a.prog.FindBlock(fields[1])
		if blk == nil {
			return fmt.Errorf(".loop names unknown block %q (declare it first)", fields[1])
		}
		trip, err := parseInt(fields[3])
		if err != nil {
			return err
		}
		blk.LoopHead = true
		blk.LoopLatch = fields[2]
		blk.TripMultiple = trip
		return nil
	}
	return fmt.Errorf("unknown directive %q", fields[0])
}

// opByName maps mnemonics to opcodes.
var opByName = func() map[string]isa.Op {
	m := make(map[string]isa.Op, isa.NumOps+1)
	for op := isa.Op(0); op < isa.Op(isa.NumOps); op++ {
		m[op.String()] = op
	}
	m["li"] = isa.LUI // conventional alias
	return m
}()

func (a *assembler) instruction(line string) error {
	mnemonic, rest, _ := strings.Cut(line, " ")
	op, ok := opByName[mnemonic]
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	args := splitArgs(rest)
	in := program.Inst{Op: op}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s wants %d operands, got %d", mnemonic, n, len(args))
		}
		return nil
	}
	var err error
	switch op {
	case isa.NOP, isa.HALT:
		err = need(0)
	case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR, isa.SRA,
		isa.SLT, isa.MUL, isa.DIV, isa.REM:
		if err = need(3); err == nil {
			in.Dst, err = reg(args[0])
			if err == nil {
				in.Src1, err = reg(args[1])
			}
			if err == nil {
				in.Src2, err = reg(args[2])
			}
		}
	case isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.SHLI, isa.SHRI, isa.SRAI, isa.SLTI:
		if err = need(3); err == nil {
			in.Dst, err = reg(args[0])
			if err == nil {
				in.Src1, err = reg(args[1])
			}
			if err == nil {
				in.Imm, err = parseInt(args[2])
			}
		}
	case isa.LUI:
		if err = need(2); err == nil {
			in.Dst, err = reg(args[0])
			if err == nil {
				in.Imm, err = parseInt(args[1])
			}
		}
	case isa.LD:
		if err = need(2); err == nil {
			in.Dst, err = reg(args[0])
			if err == nil {
				in.Src1, in.Imm, err = memOperand(args[1])
			}
		}
	case isa.ST:
		if err = need(2); err == nil {
			in.Src2, err = reg(args[0]) // value
			if err == nil {
				in.Src1, in.Imm, err = memOperand(args[1])
			}
		}
	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE:
		if err = need(3); err == nil {
			in.Src1, err = reg(args[0])
			if err == nil {
				in.Src2, err = reg(args[1])
			}
			in.Label = args[2]
		}
	case isa.JMP:
		if err = need(1); err == nil {
			in.Label = args[0]
		}
	case isa.JAL:
		if err = need(2); err == nil {
			in.Dst, err = reg(args[0])
			in.Label = args[1]
		}
	default:
		err = fmt.Errorf("unhandled opcode %v", op)
	}
	if err != nil {
		return err
	}
	if a.lim.MaxInsts > 0 && a.insts >= a.lim.MaxInsts {
		return fmt.Errorf("%w: more than %d instructions", ErrLimit, a.lim.MaxInsts)
	}
	a.insts++
	a.cur.Blk().Insts = append(a.cur.Blk().Insts, in)
	return nil
}

func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func reg(s string) (isa.Reg, error) {
	if len(s) < 2 || s[0] != 'r' {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return isa.Reg(n), nil
}

// memOperand parses "disp(base)".
func memOperand(s string) (isa.Reg, int64, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	disp, err := parseInt(strings.TrimSpace(s[:open]))
	if err != nil && strings.TrimSpace(s[:open]) != "" {
		return 0, 0, fmt.Errorf("bad displacement in %q", s)
	}
	base, rerr := reg(strings.TrimSpace(s[open+1 : len(s)-1]))
	if rerr != nil {
		return 0, 0, rerr
	}
	return base, disp, nil
}

func parseInt(s string) (int64, error) {
	return strconv.ParseInt(s, 0, 64) // accepts 0x..., decimal, negatives
}

// Disassemble renders a program back to assemblable text.
func Disassemble(p *program.Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "; %s\n.mem %d\n", p.Name, p.MemWords)
	for _, addr := range p.DataAddrs() {
		fmt.Fprintf(&b, ".data %d %d\n", addr, p.Data[addr])
	}
	var loops []string
	for _, blk := range p.Blocks {
		if blk.LoopHead && blk.TripMultiple > 0 {
			loops = append(loops, fmt.Sprintf(".loop %s %s %d", blk.Label, blk.LoopLatch, blk.TripMultiple))
		}
	}
	for _, blk := range p.Blocks {
		fmt.Fprintf(&b, "%s:\n", blk.Label)
		for _, in := range blk.Insts {
			b.WriteString("  ")
			b.WriteString(renderInst(in))
			b.WriteByte('\n')
		}
	}
	for _, l := range loops {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

func renderInst(in program.Inst) string {
	switch isa.ClassOf(in.Op) {
	case isa.ClassNop, isa.ClassHalt:
		return in.Op.String()
	case isa.ClassLoad:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Dst, in.Imm, in.Src1)
	case isa.ClassStore:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Src2, in.Imm, in.Src1)
	case isa.ClassBranch:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Src1, in.Src2, in.Label)
	case isa.ClassJump:
		if in.Op == isa.JAL {
			return fmt.Sprintf("%s %s, %s", in.Op, in.Dst, in.Label)
		}
		return fmt.Sprintf("%s %s", in.Op, in.Label)
	}
	switch in.Op {
	case isa.LUI:
		return fmt.Sprintf("%s %s, %d", in.Op, in.Dst, in.Imm)
	case isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.SHLI, isa.SHRI, isa.SRAI, isa.SLTI:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Dst, in.Src1, in.Imm)
	}
	return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Dst, in.Src1, in.Src2)
}
