package uarch

import (
	"fmt"
	"strconv"
)

// The paper's Table 2 design-space domain, as thin accessors over
// Table2Domain() — the typed parameter-domain description in domain.go
// is the single source of truth shared by the design-space enumeration
// (dse.Space), the CLI flag validation of cmd/inorder-model and the
// request decoding of the prediction service (internal/service): a
// value a CLI or HTTP client may supply is valid exactly when the
// domain's axis accepts it.

// Table2Widths returns the superscalar widths of the Table 2 space.
func Table2Widths() []int {
	a, _, _ := Table2Domain().AxisByName("width")
	return append([]int(nil), a.ints...)
}

// Table2Stages returns the pipeline depths of the Table 2 space,
// derived from the depth/frequency pairings.
func Table2Stages() []int {
	var out []int
	for _, df := range DepthFreqPoints() {
		out = append(out, df.Stages)
	}
	return out
}

// Table2L2SizesKB returns the L2 sizes (in KB) of the Table 2 space.
func Table2L2SizesKB() []int {
	a, _, _ := Table2Domain().AxisByName("l2kb")
	return append([]int(nil), a.ints...)
}

// Table2L2Ways returns the L2 associativities of the Table 2 space.
func Table2L2Ways() []int {
	a, _, _ := Table2Domain().AxisByName("l2ways")
	return append([]int(nil), a.ints...)
}

// Table2Predictors returns the branch predictors of the Table 2 space.
func Table2Predictors() []PredictorKind {
	return []PredictorKind{PredGShare1KB, PredHybrid3_5KB}
}

// PredictorKinds returns every predictor configuration the simulator
// knows, Table 2 ones first.
func PredictorKinds() []PredictorKind {
	return []PredictorKind{PredGShare1KB, PredHybrid3_5KB, PredBimodal2KB, PredStaticNT}
}

// PredictorByName resolves the CLI/service spelling of a predictor:
// the short Table 2 spellings ("gshare", "hybrid") plus the canonical
// names of the ablation kinds. The rejection lists the valid spellings
// dynamically from the known kinds — it is never hand-maintained.
func PredictorByName(name string) (PredictorKind, error) {
	var valid []string
	for _, k := range PredictorKinds() {
		n := PredictorName(k)
		if n == name {
			return k, nil
		}
		valid = append(valid, n)
	}
	return 0, fmt.Errorf("unknown predictor %q (use %s): %w", name, orList(valid), ErrOutOfDomain)
}

// PredictorName is the inverse of PredictorByName: the short spelling
// for the Table 2 predictors, the String form for the rest.
func PredictorName(k PredictorKind) string {
	switch k {
	case PredGShare1KB:
		return "gshare"
	case PredHybrid3_5KB:
		return "hybrid"
	}
	return k.String()
}

// Table2Config builds a design point from base, rejecting any
// parameter outside the paper's Table 2 domain with a descriptive
// error. It is a thin wrapper over Table2Domain().Apply — the shared
// validator behind cmd/inorder-model's flags and the service's request
// decoding.
func Table2Config(base Config, width, stages, l2kb, l2ways int, pred string) (Config, error) {
	d := Table2Domain()
	pt, err := d.PointOfValues(
		strconv.Itoa(stages), strconv.Itoa(width),
		strconv.Itoa(l2kb), strconv.Itoa(l2ways), pred)
	if err != nil {
		return Config{}, err
	}
	return d.Apply(base, pt)
}
