package uarch

import "fmt"

// The paper's Table 2 design-space domain. These lists are the single
// source of truth shared by the design-space enumeration (dse.Space),
// the CLI flag validation of cmd/inorder-model and the request
// decoding of the prediction service (internal/service): a value a CLI
// or HTTP client may supply is valid exactly when Table2Config accepts
// it.

// Table2Widths returns the superscalar widths of the Table 2 space.
func Table2Widths() []int { return []int{1, 2, 3, 4} }

// Table2Stages returns the pipeline depths of the Table 2 space,
// derived from the depth/frequency pairings.
func Table2Stages() []int {
	var out []int
	for _, df := range DepthFreqPoints() {
		out = append(out, df.Stages)
	}
	return out
}

// Table2L2SizesKB returns the L2 sizes (in KB) of the Table 2 space.
func Table2L2SizesKB() []int { return []int{128, 256, 512, 1024} }

// Table2L2Ways returns the L2 associativities of the Table 2 space.
func Table2L2Ways() []int { return []int{8, 16} }

// Table2Predictors returns the branch predictors of the Table 2 space.
func Table2Predictors() []PredictorKind {
	return []PredictorKind{PredGShare1KB, PredHybrid3_5KB}
}

// PredictorByName resolves the CLI/service spelling of a Table 2
// predictor ("gshare" or "hybrid").
func PredictorByName(name string) (PredictorKind, error) {
	switch name {
	case "gshare":
		return PredGShare1KB, nil
	case "hybrid":
		return PredHybrid3_5KB, nil
	}
	return 0, fmt.Errorf("unknown predictor %q (use gshare or hybrid)", name)
}

// PredictorName is the inverse of PredictorByName for the Table 2
// predictors; other kinds fall back to their String form.
func PredictorName(k PredictorKind) string {
	switch k {
	case PredGShare1KB:
		return "gshare"
	case PredHybrid3_5KB:
		return "hybrid"
	}
	return k.String()
}

// Table2Config builds a design point from base, rejecting any
// parameter outside the paper's Table 2 domain with a descriptive
// error. It is the shared validator behind cmd/inorder-model's flags
// and the service's request decoding.
func Table2Config(base Config, width, stages, l2kb, l2ways int, pred string) (Config, error) {
	cfg := base
	found := false
	for _, df := range DepthFreqPoints() {
		if df.Stages == stages {
			cfg = cfg.WithDepth(df)
			found = true
		}
	}
	if !found {
		return Config{}, fmt.Errorf("unsupported stage count %d (use 5, 7 or 9)", stages)
	}
	if !containsInt(Table2Widths(), width) {
		return Config{}, fmt.Errorf("unsupported width %d (use 1, 2, 3 or 4)", width)
	}
	if !containsInt(Table2L2SizesKB(), l2kb) {
		return Config{}, fmt.Errorf("unsupported L2 size %d KB (use 128, 256, 512 or 1024)", l2kb)
	}
	if !containsInt(Table2L2Ways(), l2ways) {
		return Config{}, fmt.Errorf("unsupported L2 associativity %d ways (use 8 or 16)", l2ways)
	}
	pk, err := PredictorByName(pred)
	if err != nil {
		return Config{}, err
	}
	cfg = cfg.WithWidth(width).WithL2(l2kb, l2ways).WithPredictor(pk)
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
