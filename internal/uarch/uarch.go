// Package uarch defines the machine parameters shared by the
// mechanistic model, the detailed pipeline simulator, the power model
// and the design-space exploration: pipeline width and depth, clock
// frequency, functional-unit latencies, the cache hierarchy and the
// branch predictor configuration (Table 2 of the paper).
package uarch

import (
	"fmt"

	"repro/internal/branch"
	"repro/internal/cache"
)

// PredictorKind selects one of the Table 2 predictor configurations.
type PredictorKind uint8

const (
	// PredGShare1KB is the default 1 KB global-history predictor
	// (4096 2-bit counters, 12 bits of global history).
	PredGShare1KB PredictorKind = iota
	// PredHybrid3_5KB is the 3.5 KB hybrid predictor with a 10-bit
	// local component and a 12-bit global component.
	PredHybrid3_5KB
	// PredBimodal2KB is an extra configuration used in tests/ablations.
	PredBimodal2KB
	// PredStaticNT always predicts not-taken.
	PredStaticNT
)

func (k PredictorKind) String() string {
	switch k {
	case PredGShare1KB:
		return "gshare-1KB"
	case PredHybrid3_5KB:
		return "hybrid-3.5KB"
	case PredBimodal2KB:
		return "bimodal-2KB"
	case PredStaticNT:
		return "static-nt"
	}
	return fmt.Sprintf("pred(%d)", uint8(k))
}

// New instantiates a fresh predictor of this kind.
func (k PredictorKind) New() branch.Predictor {
	switch k {
	case PredGShare1KB:
		return branch.NewGShare(12)
	case PredHybrid3_5KB:
		return branch.NewPaperHybrid()
	case PredBimodal2KB:
		return branch.NewBimodal(8192)
	case PredStaticNT:
		return branch.StaticNotTaken{}
	}
	panic("uarch: unknown predictor kind")
}

// Config is one superscalar in-order processor design point.
type Config struct {
	Name string

	Width         int // W: slots per pipeline stage
	FrontEndDepth int // D: number of front-end stages (fetch+decode)
	FreqMHz       int // clock frequency

	MulLatency int // execute-stage occupancy of a multiply, cycles
	DivLatency int // execute-stage occupancy of a divide, cycles

	L2HitNS   float64 // L2 access time (paper: 10 ns)
	MemNS     float64 // main-memory access time beyond L2
	TLBWalkNS float64 // page-walk time on a TLB miss

	Hier      cache.HierarchyConfig
	Predictor PredictorKind
}

// cyclesFor converts a latency in nanoseconds to (rounded-up) cycles at
// the configured frequency, with a minimum of 1 cycle.
func (c Config) cyclesFor(ns float64) int {
	cyc := int((ns*float64(c.FreqMHz) + 999) / 1000)
	if cyc < 1 {
		cyc = 1
	}
	return cyc
}

// L2HitCycles is the extra cycles an L1 miss that hits in L2 costs.
func (c Config) L2HitCycles() int { return c.cyclesFor(c.L2HitNS) }

// MemCycles is the extra cycles an L2 miss costs beyond the L2 lookup.
func (c Config) MemCycles() int { return c.cyclesFor(c.MemNS) }

// L2MissCycles is the total extra cycles for an access that misses in
// both L1 and L2: the L2 lookup plus the memory access.
func (c Config) L2MissCycles() int { return c.L2HitCycles() + c.MemCycles() }

// TLBWalkCycles is the extra cycles a TLB miss costs.
func (c Config) TLBWalkCycles() int { return c.cyclesFor(c.TLBWalkNS) }

// PipelineStages is the total pipeline depth: front-end plus
// execute/memory/writeback.
func (c Config) PipelineStages() int { return c.FrontEndDepth + 3 }

// Validate checks the design point.
func (c Config) Validate() error {
	if c.Width < 1 || c.Width > 8 {
		return fmt.Errorf("uarch %q: width %d out of [1,8]", c.Name, c.Width)
	}
	if c.FrontEndDepth < 1 {
		return fmt.Errorf("uarch %q: front-end depth %d < 1", c.Name, c.FrontEndDepth)
	}
	if c.FreqMHz <= 0 {
		return fmt.Errorf("uarch %q: frequency %d MHz", c.Name, c.FreqMHz)
	}
	if c.MulLatency < 1 || c.DivLatency < 1 {
		return fmt.Errorf("uarch %q: non-positive mul/div latency", c.Name)
	}
	return c.Hier.Validate()
}

// Seconds converts a cycle count to seconds at the configured frequency.
func (c Config) Seconds(cycles float64) float64 {
	return cycles / (float64(c.FreqMHz) * 1e6)
}

// KB is 1024 bytes.
const KB = 1024

// DefaultL1I returns the Table 2 L1 instruction cache: 32 KB, 4-way,
// 64 B blocks.
func DefaultL1I() cache.Config {
	return cache.Config{Name: "il1", SizeBytes: 32 * KB, Ways: 4, BlockBytes: 64}
}

// DefaultL1D returns the Table 2 L1 data cache: 32 KB, 4-way, 64 B.
func DefaultL1D() cache.Config {
	return cache.Config{Name: "dl1", SizeBytes: 32 * KB, Ways: 4, BlockBytes: 64}
}

// L2Config returns a unified L2 with the given size and associativity.
func L2Config(sizeKB int, ways int) cache.Config {
	return cache.Config{Name: "l2", SizeBytes: int64(sizeKB) * KB, Ways: ways, BlockBytes: 64}
}

// DefaultHierarchy returns the Table 2 default memory system: 32 KB
// 4-way L1s, 512 KB 8-way L2, 32-entry TLBs with 4 KB pages.
func DefaultHierarchy() cache.HierarchyConfig {
	return cache.HierarchyConfig{
		IL1:         DefaultL1I(),
		DL1:         DefaultL1D(),
		L2:          L2Config(512, 8),
		ITLBEntries: 32,
		DTLBEntries: 32,
		PageBytes:   4096,
	}
}

// Default returns the Table 2 default processor: 4-wide, 9-stage
// pipeline at 1 GHz, 512 KB 8-way L2, 1 KB gshare predictor.
func Default() Config {
	return Config{
		Name:          "default",
		Width:         4,
		FrontEndDepth: 6, // 9-stage pipeline
		FreqMHz:       1000,
		MulLatency:    4,
		DivLatency:    20,
		L2HitNS:       10,
		MemNS:         70,
		TLBWalkNS:     30,
		Hier:          DefaultHierarchy(),
		Predictor:     PredGShare1KB,
	}
}

// DepthFreq pairs pipeline depth with its Table 2 frequency setting:
// 5 stages at 600 MHz, 7 at 800 MHz, 9 at 1 GHz.
type DepthFreq struct {
	Stages  int
	FreqMHz int
}

// DepthFreqPoints returns the three Table 2 depth/frequency settings.
func DepthFreqPoints() []DepthFreq {
	return []DepthFreq{{5, 600}, {7, 800}, {9, 1000}}
}

// WithDepth returns a copy of c with the given total pipeline depth and
// its paired frequency.
func (c Config) WithDepth(df DepthFreq) Config {
	c.FrontEndDepth = df.Stages - 3
	c.FreqMHz = df.FreqMHz
	return c
}

// WithWidth returns a copy of c with the given width.
func (c Config) WithWidth(w int) Config {
	c.Width = w
	return c
}

// WithL2 returns a copy of c with the given L2 configuration.
func (c Config) WithL2(sizeKB, ways int) Config {
	c.Hier.L2 = L2Config(sizeKB, ways)
	return c
}

// WithPredictor returns a copy of c with the given predictor.
func (c Config) WithPredictor(k PredictorKind) Config {
	c.Predictor = k
	return c
}

// String renders the design point compactly.
func (c Config) String() string {
	return fmt.Sprintf("W%d/D%d/%dMHz/L2:%dKB-%dw/%s",
		c.Width, c.PipelineStages(), c.FreqMHz,
		c.Hier.L2.SizeBytes/KB, c.Hier.L2.Ways, c.Predictor)
}
