package uarch

import (
	"errors"
	"strings"
	"testing"
)

// Every built-in domain must round-trip every valid point through both
// encodings: point → name → point and point → index → point. The
// search, the service streaming and the artifact naming all lean on
// these encodings being exact inverses.
func TestDomainRoundTripAllPoints(t *testing.T) {
	for _, d := range Domains() {
		pts := d.EnumeratePoints()
		if int64(len(pts)) != d.Cardinality() {
			t.Fatalf("%s: EnumeratePoints=%d, Cardinality=%d", d.Name, len(pts), d.Cardinality())
		}
		for _, pt := range pts {
			name, err := d.PointName(pt)
			if err != nil {
				t.Fatalf("%s: PointName(%v): %v", d.Name, pt, err)
			}
			back, err := d.ParsePoint(name)
			if err != nil {
				t.Fatalf("%s: ParsePoint(%q): %v", d.Name, name, err)
			}
			if !equalPoints(pt, back) {
				t.Fatalf("%s: name round trip %v -> %q -> %v", d.Name, pt, name, back)
			}
			idx, err := d.PointIndex(pt)
			if err != nil {
				t.Fatalf("%s: PointIndex(%v): %v", d.Name, pt, err)
			}
			dec, err := d.PointAt(idx)
			if err != nil {
				t.Fatalf("%s: PointAt(%d): %v", d.Name, idx, err)
			}
			if !equalPoints(pt, dec) {
				t.Fatalf("%s: index round trip %v -> %d -> %v", d.Name, pt, idx, dec)
			}
		}
	}
}

func equalPoints(a, b Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The built-in domains have the cardinalities the exploration stack
// advertises: Table 2's 192 points and the extended space's 3072 valid
// points of a 3456-point grid.
func TestBuiltinDomainCardinalities(t *testing.T) {
	if got := Table2Domain().Cardinality(); got != 192 {
		t.Fatalf("table2 cardinality = %d, want 192", got)
	}
	d := ExtendedDomain()
	if got := d.GridSize(); got != 3456 {
		t.Fatalf("extended grid = %d, want 3456", got)
	}
	if got := d.Cardinality(); got != 3072 {
		t.Fatalf("extended cardinality = %d, want 3072", got)
	}
}

// Every rejection — bad indices, bad arity, out-of-range axis values,
// unknown names, trailing garbage, constraint violations, unknown
// domains — must be typed: errors.Is(err, ErrOutOfDomain).
func TestDomainRejectionsAreTyped(t *testing.T) {
	d := ExtendedDomain()
	check := func(what string, err error) {
		t.Helper()
		if err == nil {
			t.Fatalf("%s: no error", what)
		}
		if !errors.Is(err, ErrOutOfDomain) {
			t.Fatalf("%s: error %v does not wrap ErrOutOfDomain", what, err)
		}
	}
	_, err := d.PointAt(-1)
	check("PointAt(-1)", err)
	_, err = d.PointAt(d.GridSize())
	check("PointAt(grid)", err)
	check("Validate(short point)", d.Validate(Point{0, 0}))
	bad := make(Point, len(d.Axes()))
	bad[1] = d.Axes()[1].Card()
	check("Validate(out-of-range axis)", d.Validate(bad))
	_, err = d.ParsePoint("nonsense")
	check("ParsePoint(nonsense)", err)
	name, err := d.PointName(make(Point, len(d.Axes())))
	if err != nil {
		t.Fatal(err)
	}
	_, err = d.ParsePoint(name + "x")
	check("ParsePoint(trailing)", err)
	// Overdrive on the 5-stage pipeline violates the cross-axis
	// constraint, whichever way the point arrives.
	_, err = d.PointOfValues("5", "1", "128", "8", "gshare", "16", "2", "1.2")
	check("PointOfValues(constraint violation)", err)
	viol := make(Point, len(d.Axes()))
	ax, fi, ok := d.AxisByName("fscale")
	if !ok {
		t.Fatal("no fscale axis")
	}
	viol[fi] = ax.Card() - 1 // 1.2 with the 5-stage depth at index 0
	check("Validate(constraint violation)", d.Validate(viol))
	idx := int64(0)
	for i := range d.Axes() {
		idx = idx*int64(d.Axes()[i].Card()) + int64(viol[i])
	}
	_, err = d.PointAt(idx)
	check("PointAt(constraint violation)", err)
	_, err = DomainByName("no-such-space")
	check("DomainByName", err)
	if !strings.Contains(err.Error(), "table2") || !strings.Contains(err.Error(), "extended") {
		t.Fatalf("DomainByName rejection does not list the valid names: %v", err)
	}
}

// Filters and decoders accept normalized integer and float spellings
// ("04" is width 4, "1.20" is scale 1.2) but nothing outside the axis.
func TestAxisValueNormalization(t *testing.T) {
	d := ExtendedDomain()
	w, _, _ := d.AxisByName("width")
	if i, err := w.IndexOfValue("04"); err != nil || w.Int(i) != 4 {
		t.Fatalf("IndexOfValue(04) = %d, %v", i, err)
	}
	if _, err := w.IndexOfValue("5"); !errors.Is(err, ErrOutOfDomain) {
		t.Fatalf("IndexOfValue(5) = %v, want ErrOutOfDomain", err)
	}
	f, _, _ := d.AxisByName("fscale")
	if i, err := f.IndexOfValue("1.20"); err != nil || f.Float(i) != 1.2 {
		t.Fatalf("IndexOfValue(1.20) = %d, %v", i, err)
	}
}

// FuzzDomainParsePoint throws arbitrary strings at every built-in
// domain's name parser. Invariants: no panics, every rejection wraps
// ErrOutOfDomain, and anything accepted must re-render to a name that
// parses back to the identical point.
func FuzzDomainParsePoint(f *testing.F) {
	for _, d := range Domains() {
		pts := d.EnumeratePoints()
		for _, pt := range []Point{pts[0], pts[len(pts)/2], pts[len(pts)-1]} {
			name, err := d.PointName(pt)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(name)
		}
	}
	f.Add("d5-w1-l2_512k_8w-gshare-1KB")
	f.Add("d5-w1-l2_512k_8w-gshare-1KBx")
	f.Add("d9-w4-l2_1024k_16w-hybrid-3.5KB-l1_64k_4w-f1.2")
	f.Add("d5--w1")
	f.Add("")
	f.Fuzz(func(t *testing.T, name string) {
		for _, d := range Domains() {
			pt, err := d.ParsePoint(name)
			if err != nil {
				if !errors.Is(err, ErrOutOfDomain) {
					t.Fatalf("%s: ParsePoint(%q) error %v does not wrap ErrOutOfDomain", d.Name, name, err)
				}
				continue
			}
			canon, err := d.PointName(pt)
			if err != nil {
				t.Fatalf("%s: accepted %q but PointName(%v) failed: %v", d.Name, name, pt, err)
			}
			back, err := d.ParsePoint(canon)
			if err != nil {
				t.Fatalf("%s: canonical name %q does not parse: %v", d.Name, canon, err)
			}
			if !equalPoints(pt, back) {
				t.Fatalf("%s: %q -> %v -> %q -> %v", d.Name, name, pt, canon, back)
			}
		}
	})
}
