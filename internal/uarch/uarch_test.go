package uarch

import (
	"testing"

	"repro/internal/branch"
)

func TestDefaultIsTable2(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if c.Width != 4 || c.PipelineStages() != 9 || c.FreqMHz != 1000 {
		t.Errorf("default core: %+v", c)
	}
	if c.Hier.L2.SizeBytes != 512*KB || c.Hier.L2.Ways != 8 {
		t.Errorf("default L2: %+v", c.Hier.L2)
	}
	if c.Hier.IL1.SizeBytes != 32*KB || c.Hier.IL1.Ways != 4 || c.Hier.IL1.BlockBytes != 64 {
		t.Errorf("default IL1: %+v", c.Hier.IL1)
	}
	if c.Predictor != PredGShare1KB {
		t.Errorf("default predictor: %v", c.Predictor)
	}
}

func TestLatencyConversion(t *testing.T) {
	c := Default() // 1 GHz
	if got := c.L2HitCycles(); got != 10 {
		t.Errorf("L2 hit at 1GHz = %d cycles, want 10", got)
	}
	if got := c.MemCycles(); got != 70 {
		t.Errorf("memory at 1GHz = %d cycles, want 70", got)
	}
	if got := c.L2MissCycles(); got != 80 {
		t.Errorf("L2 miss at 1GHz = %d cycles, want 80", got)
	}
	c.FreqMHz = 600
	if got := c.L2HitCycles(); got != 6 {
		t.Errorf("L2 hit at 600MHz = %d cycles, want 6", got)
	}
	// Rounding is up, minimum one cycle.
	c.L2HitNS = 0.1
	if got := c.L2HitCycles(); got != 1 {
		t.Errorf("sub-cycle latency = %d, want 1", got)
	}
}

func TestSeconds(t *testing.T) {
	c := Default()
	if got := c.Seconds(1e9); got != 1.0 {
		t.Errorf("1e9 cycles at 1GHz = %f s, want 1", got)
	}
}

func TestDepthFreqPairs(t *testing.T) {
	pts := DepthFreqPoints()
	if len(pts) != 3 {
		t.Fatalf("got %d depth points", len(pts))
	}
	c := Default()
	for _, df := range pts {
		cc := c.WithDepth(df)
		if cc.PipelineStages() != df.Stages || cc.FreqMHz != df.FreqMHz {
			t.Errorf("WithDepth(%+v) = stages %d freq %d", df, cc.PipelineStages(), cc.FreqMHz)
		}
		if err := cc.Validate(); err != nil {
			t.Errorf("depth point %+v invalid: %v", df, err)
		}
	}
}

func TestWithHelpersDoNotMutate(t *testing.T) {
	c := Default()
	_ = c.WithWidth(1).WithL2(128, 16).WithPredictor(PredHybrid3_5KB)
	if c.Width != 4 || c.Hier.L2.SizeBytes != 512*KB || c.Predictor != PredGShare1KB {
		t.Error("With* helpers mutated the receiver")
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []func(Config) Config{
		func(c Config) Config { c.Width = 0; return c },
		func(c Config) Config { c.Width = 9; return c },
		func(c Config) Config { c.FrontEndDepth = 0; return c },
		func(c Config) Config { c.FreqMHz = 0; return c },
		func(c Config) Config { c.MulLatency = 0; return c },
		func(c Config) Config { c.DivLatency = 0; return c },
		func(c Config) Config { c.Hier.L2.Ways = 0; return c },
	}
	for i, f := range bad {
		if err := f(Default()).Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestPredictorKindsInstantiate(t *testing.T) {
	kinds := []PredictorKind{PredGShare1KB, PredHybrid3_5KB, PredBimodal2KB, PredStaticNT}
	for _, k := range kinds {
		var p branch.Predictor = k.New()
		if p == nil || p.Name() == "" {
			t.Errorf("kind %v produced bad predictor", k)
		}
		if k.String() == "" {
			t.Errorf("kind %v unnamed", k)
		}
	}
	// Fresh instances must not share state.
	a, b := PredGShare1KB.New(), PredGShare1KB.New()
	for i := 0; i < 10; i++ {
		a.Update(3, true)
	}
	if b.Predict(3) != PredGShare1KB.New().Predict(3) {
		t.Error("predictor instances share state")
	}
}

func TestConfigString(t *testing.T) {
	if Default().String() == "" {
		t.Error("empty config string")
	}
}
