package uarch

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// This file is the typed parameter-domain subsystem: a Domain is a
// named, ordered list of typed axes (integer enums, float enums, keyed
// variants like the predictor or the depth/frequency pairing) plus
// cross-axis constraints. It subsumes the hard-wired Table 2 lists —
// Table2Config is now a thin wrapper over Table2Domain() — and is what
// lets the design-space exploration scale past the paper's 192 points:
// dse.Space enumerates from a Domain, dse.Search walks its index
// space, and the CLI flags and service request decoding validate
// against the same axis definitions.
//
// A design point is identified three interchangeable ways, all
// deterministic:
//
//   - Point: one value index per axis, in axis order;
//   - index: the mixed-radix encoding of the Point over the axis
//     cardinalities, last axis fastest (so enumeration order matches
//     the paper's nested Table 2 loops);
//   - name: the joined per-value name fragments ("d5-w1-l2_512k_8w-
//     gshare-1KB"), parseable back to the Point.

// ErrOutOfDomain is wrapped by every rejection of a value, point,
// index or name that lies outside a domain: out-of-range axis values,
// unknown spellings, indices past the grid, and cross-axis constraint
// violations all satisfy errors.Is(err, ErrOutOfDomain).
var ErrOutOfDomain = errors.New("out of domain")

// AxisKind is the value type of one axis.
type AxisKind uint8

const (
	// AxisInt enumerates integer values (widths, sizes, ways).
	AxisInt AxisKind = iota
	// AxisFloat enumerates float values (frequency scale factors).
	AxisFloat
	// AxisVariant enumerates keyed variants: each value is a named
	// alternative carrying structured configuration (a predictor kind,
	// a depth/frequency pairing).
	AxisVariant
)

// Axis is one named, typed parameter of a Domain. Axes are immutable
// after construction; build them with IntAxis, FloatAxis or
// VariantAxis.
type Axis struct {
	// Name is the request spelling: the CLI flag, query parameter and
	// search-space identifier of the axis ("width", "l2kb", "pred").
	Name string
	// Label is the human noun used in error messages ("L2 size"); it
	// defaults to Name.
	Label string
	// Unit suffixes the value in error messages (" KB", " ways").
	Unit string
	// Sep separates this axis's name fragment from the previous one in
	// a point name; it defaults to "-" ("_" glues the L2 ways onto the
	// L2 size, preserving the historical l2_512k_8w spelling).
	Sep string

	kind   AxisKind
	ints   []int
	floats []float64
	keys   []string // request spelling per value (variant axes)
	frags  []string // name fragment per value
	apply  func(Config, int) Config
}

// IntAxis builds an integer-enum axis. frag formats one value into its
// point-name fragment ("w%d"); apply applies the i-th value to a
// configuration.
func IntAxis(name string, values []int, frag string, apply func(Config, int) Config) Axis {
	a := Axis{Name: name, kind: AxisInt, ints: values, apply: apply}
	for _, v := range values {
		a.frags = append(a.frags, fmt.Sprintf(frag, v))
	}
	return a
}

// FloatAxis builds a float-enum axis. Fragments are prefix plus the
// shortest exact decimal form of the value ("f1.2").
func FloatAxis(name string, values []float64, fragPrefix string, apply func(Config, int) Config) Axis {
	a := Axis{Name: name, kind: AxisFloat, floats: values, apply: apply}
	for _, v := range values {
		a.frags = append(a.frags, fragPrefix+strconv.FormatFloat(v, 'g', -1, 64))
	}
	return a
}

// VariantAxis builds a keyed-variant axis: keys are the request
// spellings ("gshare"), frags the point-name fragments ("gshare-1KB");
// both must be unique within the axis and index-aligned.
func VariantAxis(name string, keys, frags []string, apply func(Config, int) Config) Axis {
	if len(keys) != len(frags) {
		panic("uarch: variant axis keys and fragments must align")
	}
	return Axis{Name: name, kind: AxisVariant, keys: keys, frags: frags, apply: apply}
}

// Kind returns the axis's value type.
func (a *Axis) Kind() AxisKind { return a.kind }

// Card returns the number of values on the axis.
func (a *Axis) Card() int {
	switch a.kind {
	case AxisInt:
		return len(a.ints)
	case AxisFloat:
		return len(a.floats)
	}
	return len(a.keys)
}

// Int returns the i-th integer value of an AxisInt axis.
func (a *Axis) Int(i int) int { return a.ints[i] }

// Float returns the i-th float value of an AxisFloat axis.
func (a *Axis) Float(i int) float64 { return a.floats[i] }

// Value returns the request spelling of the i-th value: the decimal
// integer, the shortest float form, or the variant key.
func (a *Axis) Value(i int) string {
	switch a.kind {
	case AxisInt:
		return strconv.Itoa(a.ints[i])
	case AxisFloat:
		return strconv.FormatFloat(a.floats[i], 'g', -1, 64)
	}
	return a.keys[i]
}

// Values returns the request spellings of every value, in index order.
func (a *Axis) Values() []string {
	out := make([]string, a.Card())
	for i := range out {
		out[i] = a.Value(i)
	}
	return out
}

// Frag returns the point-name fragment of the i-th value.
func (a *Axis) Frag(i int) string { return a.frags[i] }

// label returns the error-message noun.
func (a *Axis) label() string {
	if a.Label != "" {
		return a.Label
	}
	return a.Name
}

// errValue builds the canonical out-of-domain rejection for a value
// spelling, listing the valid values dynamically.
func (a *Axis) errValue(v string) error {
	return fmt.Errorf("unsupported %s %s%s (use %s): %w",
		a.label(), v, a.Unit, orList(a.Values()), ErrOutOfDomain)
}

// IndexOfValue resolves a request spelling to its value index,
// validating it against the axis (the per-axis validation the CLI and
// service decoders share). The error wraps ErrOutOfDomain and lists
// the valid spellings dynamically.
func (a *Axis) IndexOfValue(v string) (int, error) {
	for i, n := 0, a.Card(); i < n; i++ {
		if a.Value(i) == v {
			return i, nil
		}
	}
	// Integer spellings normalize ("04" means 4) so the axis accepts
	// exactly the values it enumerates, under any valid spelling.
	if a.kind == AxisInt {
		if x, err := strconv.Atoi(v); err == nil {
			for i, val := range a.ints {
				if val == x {
					return i, nil
				}
			}
		}
	}
	if a.kind == AxisFloat {
		if x, err := strconv.ParseFloat(v, 64); err == nil {
			for i, val := range a.floats {
				if val == x {
					return i, nil
				}
			}
		}
	}
	return 0, a.errValue(v)
}

// orList renders a value list as "a, b or c" for error messages.
func orList(vals []string) string {
	switch len(vals) {
	case 0:
		return "(nothing)"
	case 1:
		return vals[0]
	}
	return strings.Join(vals[:len(vals)-1], ", ") + " or " + vals[len(vals)-1]
}

// Constraint is a cross-axis restriction of a Domain: a point is valid
// only when every constraint accepts it.
type Constraint struct {
	// Desc names the restriction in rejections ("overdrive frequency
	// scaling requires at least 7 pipeline stages").
	Desc string
	// Ok reports whether the point satisfies the restriction.
	Ok func(pt Point) bool
}

// Point selects one value index per axis, in axis order.
type Point []int

// Clone returns an independent copy of the point.
func (p Point) Clone() Point { return append(Point(nil), p...) }

// Domain is a typed parameter space: ordered axes plus cross-axis
// constraints. Domains are immutable after construction and safe for
// concurrent use.
type Domain struct {
	// Name identifies the domain to the CLIs and the service
	// ("table2", "extended").
	Name string
	// Desc is a one-line description for listings.
	Desc string

	axes        []Axis
	constraints []Constraint
	grid        int64 // product of axis cardinalities
	card        int64 // valid (constraint-satisfying) points
}

// NewDomain builds a Domain, precomputing its grid size and valid
// cardinality. It panics on an empty or zero-cardinality axis list —
// domains are built at package init from literal axis tables.
func NewDomain(name, desc string, axes []Axis, constraints []Constraint) *Domain {
	d := &Domain{Name: name, Desc: desc, axes: axes, constraints: constraints, grid: 1}
	if len(axes) == 0 {
		panic("uarch: domain with no axes")
	}
	for i := range axes {
		if axes[i].Card() == 0 {
			panic(fmt.Sprintf("uarch: domain %s axis %s has no values", name, axes[i].Name))
		}
		if axes[i].Sep == "" {
			axes[i].Sep = "-"
		}
		d.grid *= int64(axes[i].Card())
	}
	if len(constraints) == 0 {
		d.card = d.grid
		return d
	}
	pt := make(Point, len(axes))
	for idx := int64(0); idx < d.grid; idx++ {
		d.pointAtGrid(idx, pt)
		if d.constraintOf(pt) == nil {
			d.card++
		}
	}
	return d
}

// Axes returns the axes in order. The slice is shared; treat it as
// read-only.
func (d *Domain) Axes() []Axis { return d.axes }

// AxisByName returns the axis with the given request name and its
// position, or false.
func (d *Domain) AxisByName(name string) (*Axis, int, bool) {
	for i := range d.axes {
		if d.axes[i].Name == name {
			return &d.axes[i], i, true
		}
	}
	return nil, 0, false
}

// GridSize returns the full index-grid size: the product of the axis
// cardinalities, counting constraint-violating points.
func (d *Domain) GridSize() int64 { return d.grid }

// Cardinality returns the number of valid design points: grid points
// that satisfy every cross-axis constraint.
func (d *Domain) Cardinality() int64 { return d.card }

// constraintOf returns the first violated constraint as an error.
func (d *Domain) constraintOf(pt Point) error {
	for i := range d.constraints {
		if !d.constraints[i].Ok(pt) {
			return fmt.Errorf("point %v violates constraint: %s: %w", []int(pt), d.constraints[i].Desc, ErrOutOfDomain)
		}
	}
	return nil
}

// Validate checks the point: correct arity, every axis index in
// range, every cross-axis constraint satisfied. All rejections wrap
// ErrOutOfDomain.
func (d *Domain) Validate(pt Point) error {
	if len(pt) != len(d.axes) {
		return fmt.Errorf("domain %s: point has %d axes, want %d: %w", d.Name, len(pt), len(d.axes), ErrOutOfDomain)
	}
	for i := range d.axes {
		if pt[i] < 0 || pt[i] >= d.axes[i].Card() {
			return fmt.Errorf("domain %s: axis %s index %d out of [0,%d): %w",
				d.Name, d.axes[i].Name, pt[i], d.axes[i].Card(), ErrOutOfDomain)
		}
	}
	return d.constraintOf(pt)
}

// PointIndex returns the mixed-radix index of a valid point: axis 0 is
// the most significant digit, the last axis the fastest-varying — the
// same order as the paper's nested Table 2 enumeration loops.
func (d *Domain) PointIndex(pt Point) (int64, error) {
	if err := d.Validate(pt); err != nil {
		return 0, err
	}
	var idx int64
	for i := range d.axes {
		idx = idx*int64(d.axes[i].Card()) + int64(pt[i])
	}
	return idx, nil
}

// pointAtGrid decodes a grid index into dst without validation.
func (d *Domain) pointAtGrid(idx int64, dst Point) {
	for i := len(d.axes) - 1; i >= 0; i-- {
		c := int64(d.axes[i].Card())
		dst[i] = int(idx % c)
		idx /= c
	}
}

// PointAt decodes an index into its point, rejecting indices outside
// the grid and points violating a cross-axis constraint (both wrap
// ErrOutOfDomain).
func (d *Domain) PointAt(idx int64) (Point, error) {
	if idx < 0 || idx >= d.grid {
		return nil, fmt.Errorf("domain %s: index %d out of [0,%d): %w", d.Name, idx, d.grid, ErrOutOfDomain)
	}
	pt := make(Point, len(d.axes))
	d.pointAtGrid(idx, pt)
	if err := d.constraintOf(pt); err != nil {
		return nil, err
	}
	return pt, nil
}

// PointName renders the deterministic name of a valid point: the axis
// fragments joined by each axis's separator ("d5-w1-l2_512k_8w-
// gshare-1KB").
func (d *Domain) PointName(pt Point) (string, error) {
	if err := d.Validate(pt); err != nil {
		return "", err
	}
	var b strings.Builder
	for i := range d.axes {
		if i > 0 {
			b.WriteString(d.axes[i].Sep)
		}
		b.WriteString(d.axes[i].frags[pt[i]])
	}
	return b.String(), nil
}

// ParsePoint is the inverse of PointName: it decodes a point name by
// matching each axis's fragments in order (fragments may themselves
// contain separators — "gshare-1KB" — so the match is positional, not
// split-based). Unknown fragments and trailing garbage wrap
// ErrOutOfDomain.
func (d *Domain) ParsePoint(name string) (Point, error) {
	rest := name
	pt := make(Point, len(d.axes))
	for i := range d.axes {
		if i > 0 {
			if !strings.HasPrefix(rest, d.axes[i].Sep) {
				return nil, fmt.Errorf("domain %s: name %q: expected %q before axis %s: %w",
					d.Name, name, d.axes[i].Sep, d.axes[i].Name, ErrOutOfDomain)
			}
			rest = rest[len(d.axes[i].Sep):]
		}
		match := -1
		for v, frag := range d.axes[i].frags {
			if strings.HasPrefix(rest, frag) && (match < 0 || len(frag) > len(d.axes[i].frags[match])) {
				match = v
			}
		}
		if match < 0 {
			return nil, fmt.Errorf("domain %s: name %q: no %s value matches at %q: %w",
				d.Name, name, d.axes[i].Name, rest, ErrOutOfDomain)
		}
		pt[i] = match
		rest = rest[len(d.axes[i].frags[match]):]
	}
	if rest != "" {
		return nil, fmt.Errorf("domain %s: name %q: trailing %q after last axis: %w",
			d.Name, name, rest, ErrOutOfDomain)
	}
	if err := d.constraintOf(pt); err != nil {
		return nil, err
	}
	return pt, nil
}

// Apply builds the design point's configuration from base: the point
// is validated (per-axis ranges plus cross-axis constraints), each
// axis's value is applied in order, the point's deterministic name is
// stamped, and the resulting configuration is itself validated.
func (d *Domain) Apply(base Config, pt Point) (Config, error) {
	if err := d.Validate(pt); err != nil {
		return Config{}, err
	}
	cfg := base
	for i := range d.axes {
		cfg = d.axes[i].apply(cfg, pt[i])
	}
	name, err := d.PointName(pt)
	if err != nil {
		return Config{}, err
	}
	cfg.Name = name
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// PointOfValues resolves one request spelling per axis (in axis order)
// to a point — the shared decoding behind Table2Config and the
// service's single-point parameters.
func (d *Domain) PointOfValues(vals ...string) (Point, error) {
	if len(vals) != len(d.axes) {
		return nil, fmt.Errorf("domain %s: %d values for %d axes: %w", d.Name, len(vals), len(d.axes), ErrOutOfDomain)
	}
	pt := make(Point, len(d.axes))
	for i := range d.axes {
		v, err := d.axes[i].IndexOfValue(vals[i])
		if err != nil {
			return nil, err
		}
		pt[i] = v
	}
	if err := d.constraintOf(pt); err != nil {
		return nil, err
	}
	return pt, nil
}

// EnumeratePoints returns every valid point in index order.
func (d *Domain) EnumeratePoints() []Point {
	out := make([]Point, 0, d.card)
	pt := make(Point, len(d.axes))
	for idx := int64(0); idx < d.grid; idx++ {
		d.pointAtGrid(idx, pt)
		if d.constraintOf(pt) == nil {
			out = append(out, pt.Clone())
		}
	}
	return out
}

// Enumerate applies every valid point to base, in index order — the
// generalization of the Table 2 space enumeration.
func (d *Domain) Enumerate(base Config) ([]Config, error) {
	pts := d.EnumeratePoints()
	out := make([]Config, len(pts))
	for i, pt := range pts {
		cfg, err := d.Apply(base, pt)
		if err != nil {
			return nil, err
		}
		out[i] = cfg
	}
	return out, nil
}

// --- Built-in domains -------------------------------------------------

// depthAxis is the Table 2 depth/frequency pairing as a keyed variant:
// the request spelling is the stage count, the value carries the
// paired frequency.
func depthAxis() Axis {
	dfs := DepthFreqPoints()
	keys := make([]string, len(dfs))
	frags := make([]string, len(dfs))
	for i, df := range dfs {
		keys[i] = strconv.Itoa(df.Stages)
		frags[i] = fmt.Sprintf("d%d", df.Stages)
	}
	a := VariantAxis("stages", keys, frags, func(c Config, i int) Config {
		return c.WithDepth(DepthFreqPoints()[i])
	})
	a.Label = "stage count"
	return a
}

func widthAxis() Axis {
	return IntAxis("width", []int{1, 2, 3, 4}, "w%d", func(c Config, i int) Config {
		return c.WithWidth([]int{1, 2, 3, 4}[i])
	})
}

func l2SizeAxis() Axis {
	sizes := []int{128, 256, 512, 1024}
	a := IntAxis("l2kb", sizes, "l2_%dk", func(c Config, i int) Config {
		c.Hier.L2 = L2Config(sizes[i], c.Hier.L2.Ways)
		return c
	})
	a.Label = "L2 size"
	a.Unit = " KB"
	return a
}

func l2WaysAxis() Axis {
	ways := []int{8, 16}
	a := IntAxis("l2ways", ways, "%dw", func(c Config, i int) Config {
		c.Hier.L2.Ways = ways[i]
		return c
	})
	a.Label = "L2 associativity"
	a.Unit = " ways"
	a.Sep = "_" // historical l2_512k_8w spelling
	return a
}

func predAxis() Axis {
	kinds := Table2Predictors()
	keys := make([]string, len(kinds))
	frags := make([]string, len(kinds))
	for i, k := range kinds {
		keys[i] = PredictorName(k)
		frags[i] = k.String()
	}
	a := VariantAxis("pred", keys, frags, func(c Config, i int) Config {
		return c.WithPredictor(Table2Predictors()[i])
	})
	a.Label = "predictor"
	return a
}

var table2Domain = sync.OnceValue(func() *Domain {
	return NewDomain("table2",
		"the paper's Table 2 space: 3 depth/frequency settings × 4 widths × 4 L2 sizes × 2 L2 associativities × 2 predictors (192 points)",
		[]Axis{depthAxis(), widthAxis(), l2SizeAxis(), l2WaysAxis(), predAxis()},
		nil)
})

// Table2Domain returns the paper's Table 2 design space as a typed
// domain: 192 points whose enumeration order and names are exactly the
// historical dse.Space output.
func Table2Domain() *Domain { return table2Domain() }

var extendedDomain = sync.OnceValue(func() *Domain {
	l1Sizes := []int{16, 32, 64}
	l1Size := IntAxis("l1kb", l1Sizes, "l1_%dk", func(c Config, i int) Config {
		kb := l1Sizes[i]
		c.Hier.IL1.SizeBytes = int64(kb) * KB
		c.Hier.DL1.SizeBytes = int64(kb) * KB
		return c
	})
	l1Size.Label = "L1 size"
	l1Size.Unit = " KB"

	l1Ways := []int{2, 4}
	l1WaysAx := IntAxis("l1ways", l1Ways, "%dw", func(c Config, i int) Config {
		c.Hier.IL1.Ways = l1Ways[i]
		c.Hier.DL1.Ways = l1Ways[i]
		return c
	})
	l1WaysAx.Label = "L1 associativity"
	l1WaysAx.Unit = " ways"
	l1WaysAx.Sep = "_"

	fscales := []float64{0.8, 1.0, 1.2}
	fscale := FloatAxis("fscale", fscales, "f", func(c Config, i int) Config {
		c.FreqMHz = int(float64(c.FreqMHz)*fscales[i] + 0.5)
		return c
	})
	fscale.Label = "frequency scale"

	axes := []Axis{depthAxis(), widthAxis(), l2SizeAxis(), l2WaysAxis(), predAxis(), l1Size, l1WaysAx, fscale}
	constraints := []Constraint{{
		// The overdrive DVFS setting needs timing slack that the
		// shallow 5-stage pipeline does not have: scaling its 600 MHz
		// design past nominal is not a buildable point.
		Desc: "frequency scale above 1 requires at least 7 pipeline stages",
		Ok: func(pt Point) bool {
			return fscales[pt[7]] <= 1.0 || DepthFreqPoints()[pt[0]].Stages >= 7
		},
	}}
	return NewDomain("extended",
		"the Table 2 axes × 3 L1 sizes × 2 L1 associativities × 3 DVFS frequency scales (3072 valid points, 16× Table 2)",
		axes, constraints)
})

// ExtendedDomain returns the larger built-in exploration space: the
// Table 2 axes crossed with L1 geometries (16/32/64 KB, 2/4-way) and a
// DVFS frequency sweep (0.8×/1.0×/1.2× of each depth's paired
// frequency), with a cross-axis constraint forbidding overdrive on the
// 5-stage pipeline — 3072 valid points of a 3456-point grid, 16× the
// Table 2 cardinality. It exists to prove the exploration stack is not
// Table-2-shaped; exhaustive enumeration is already painful here and
// dse.Search is the intended way in.
func ExtendedDomain() *Domain { return extendedDomain() }

// domains is the built-in registry, in listing order.
var domains = sync.OnceValue(func() []*Domain {
	return []*Domain{Table2Domain(), ExtendedDomain()}
})

// Domains returns the built-in domains in listing order.
func Domains() []*Domain { return domains() }

// DomainNames returns the built-in domain names in listing order.
func DomainNames() []string {
	ds := Domains()
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.Name
	}
	return out
}

// DomainByName resolves a built-in domain; the rejection lists the
// valid names dynamically and wraps ErrOutOfDomain.
func DomainByName(name string) (*Domain, error) {
	for _, d := range Domains() {
		if d.Name == name {
			return d, nil
		}
	}
	return nil, fmt.Errorf("unknown design space %q (use %s): %w", name, orList(DomainNames()), ErrOutOfDomain)
}
