package uarch

import (
	"errors"
	"strings"
	"testing"
)

// TestTable2ConfigAcceptsWholeDomain pins that every point of the
// Table 2 domain builds and validates.
func TestTable2ConfigAcceptsWholeDomain(t *testing.T) {
	for _, df := range DepthFreqPoints() {
		for _, w := range Table2Widths() {
			for _, kb := range Table2L2SizesKB() {
				for _, ways := range Table2L2Ways() {
					for _, pred := range []string{"gshare", "hybrid"} {
						cfg, err := Table2Config(Default(), w, df.Stages, kb, ways, pred)
						if err != nil {
							t.Fatalf("W%d D%d L2 %dKB/%dw %s rejected: %v", w, df.Stages, kb, ways, pred, err)
						}
						if cfg.Width != w || cfg.PipelineStages() != df.Stages ||
							cfg.Hier.L2.SizeBytes != int64(kb)*KB || cfg.Hier.L2.Ways != ways {
							t.Fatalf("built config %v does not match request", cfg)
						}
					}
				}
			}
		}
	}
}

// TestTable2ConfigRejectsOutOfDomain is the regression test for the
// unvalidated CLI flags: width 0 and 7, a non-power-of-two L2 size,
// associativity 5 and unknown predictors must all be rejected with a
// descriptive error, not passed through to produce nonsense or
// downstream panics.
func TestTable2ConfigRejectsOutOfDomain(t *testing.T) {
	base := Default()
	cases := []struct {
		name                        string
		width, stages, l2kb, l2ways int
		pred                        string
		wantSub                     string
	}{
		{"width zero", 0, 9, 512, 8, "gshare", "width 0"},
		{"width seven", 7, 9, 512, 8, "gshare", "width 7"},
		{"bad stages", 4, 6, 512, 8, "gshare", "stage count 6"},
		{"l2 100KB", 4, 9, 100, 8, "gshare", "L2 size 100"},
		{"l2 5 ways", 4, 9, 512, 5, "gshare", "associativity 5"},
		{"bad predictor", 4, 9, 512, 8, "alwaystaken", "alwaystaken"},
	}
	for _, c := range cases {
		_, err := Table2Config(base, c.width, c.stages, c.l2kb, c.l2ways, c.pred)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q lacks %q", c.name, err, c.wantSub)
		}
	}
}

// TestPredictorNameRoundTrip pins the service's predictor spelling.
func TestPredictorNameRoundTrip(t *testing.T) {
	for _, name := range []string{"gshare", "hybrid"} {
		pk, err := PredictorByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := PredictorName(pk); got != name {
			t.Errorf("PredictorName(%v) = %q, want %q", pk, got, name)
		}
	}
}

// TestPredictorNameRoundTripAllKinds covers every predictor the
// simulator knows — not just the Table 2 pair — and pins that the
// rejection lists every valid spelling dynamically.
func TestPredictorNameRoundTripAllKinds(t *testing.T) {
	for _, k := range PredictorKinds() {
		name := PredictorName(k)
		got, err := PredictorByName(name)
		if err != nil {
			t.Fatalf("PredictorByName(%q): %v", name, err)
		}
		if got != k {
			t.Errorf("PredictorByName(PredictorName(%v)) = %v", k, got)
		}
	}
	_, err := PredictorByName("alwaystaken")
	if err == nil {
		t.Fatal("PredictorByName accepted alwaystaken")
	}
	if !errors.Is(err, ErrOutOfDomain) {
		t.Fatalf("rejection %v does not wrap ErrOutOfDomain", err)
	}
	for _, k := range PredictorKinds() {
		if !strings.Contains(err.Error(), PredictorName(k)) {
			t.Errorf("rejection %q does not list %q", err, PredictorName(k))
		}
	}
}
