package compiler

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/funcsim"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/workloads"
)

// finalState runs a program and returns (dynamic count, first 32 memory
// words) as a behavioral fingerprint.
func finalState(t *testing.T, p *program.Program) (int64, [32]int64) {
	t.Helper()
	m, err := funcsim.New(p)
	if err != nil {
		t.Fatal(err)
	}
	n, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	var mem [32]int64
	copy(mem[:], m.Mem[:32])
	return n, mem
}

// TestPassesPreserveSemantics is the central compiler property: every
// optimization level computes the same result on every workload.
func TestPassesPreserveSemantics(t *testing.T) {
	for _, spec := range workloads.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			if spec.Name == "mcf_like" || spec.Name == "omnetpp_like" {
				t.Skip("large build; covered by the fast kernels")
			}
			_, ref := finalState(t, spec.Build())
			for _, lvl := range Levels() {
				opt := Optimize(spec.Build(), lvl)
				_, got := finalState(t, opt)
				if got != ref {
					t.Errorf("%s changed program behavior", lvl)
				}
			}
		})
	}
}

func TestSchedulePreservesRegionsAndControl(t *testing.T) {
	// Scheduling may reorder only within control-free regions: for each
	// block, the multiset of instructions between control instructions
	// (and the control instructions themselves, in order) must match.
	for _, name := range []string{"sha", "gsm_c", "jpeg_c", "tiffdither", "qsort"} {
		spec, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		src := spec.Build()
		q := ScheduleProgram(src)
		for bi, blk := range src.Blocks {
			got := regionFingerprint(q.Blocks[bi].Insts)
			want := regionFingerprint(blk.Insts)
			if len(got) != len(want) {
				t.Fatalf("%s/%s: region count %d != %d", name, blk.Label, len(got), len(want))
			}
			for ri := range want {
				if got[ri] != want[ri] {
					t.Errorf("%s/%s region %d: content changed", name, blk.Label, ri)
				}
			}
		}
	}
}

// regionFingerprint splits a block at control instructions and returns
// an order-insensitive fingerprint per region plus the control ops.
func regionFingerprint(insts []program.Inst) []string {
	var out []string
	var region []string
	flush := func() {
		sort.Strings(region)
		out = append(out, strings.Join(region, ";"))
		region = region[:0]
	}
	for _, in := range insts {
		if isControl(in.Op) {
			flush()
			out = append(out, fmt.Sprintf("ctl:%v->%s", in.Op, in.Label))
			continue
		}
		region = append(region, fmt.Sprintf("%v:%d,%d,%d,%d", in.Op, in.Dst, in.Src1, in.Src2, in.Imm))
	}
	flush()
	return out
}

func TestScheduleIncreasesDependencyDistance(t *testing.T) {
	// The whole point of the pass: mean producer→consumer distance in
	// scheduled code must not be smaller than in source order, for a
	// block with two independent chains.
	p := program.New("t", 16)
	b := p.Block("main")
	// Chain A: r1 -> r2 -> r3; chain B: r4 -> r5 -> r6, interleavable.
	b.Li(1, 1)
	b.Addi(2, 1, 1)
	b.Addi(3, 2, 1)
	b.Li(4, 2)
	b.Addi(5, 4, 1)
	b.Addi(6, 5, 1)
	b.Halt()

	q := ScheduleProgram(p)
	dist := func(blk *program.Block) int {
		lastWrite := map[isa.Reg]int{}
		sum := 0
		for i, in := range blk.Insts {
			for _, r := range instSrcs(in) {
				if w, ok := lastWrite[r]; ok {
					sum += i - w
				}
			}
			if dst, ok := instDst(in); ok {
				lastWrite[dst] = i
			}
		}
		return sum
	}
	before := dist(p.Blocks[0])
	after := dist(q.Blocks[0])
	if after <= before {
		t.Errorf("scheduled distance sum %d not larger than source %d", after, before)
	}
}

func TestUnrollReducesDynamicInstructions(t *testing.T) {
	for _, name := range []string{"lame", "gsm_c", "sha", "jpeg_c"} {
		spec, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		n0, _ := finalState(t, spec.Build())
		n1, _ := finalState(t, UnrollProgram(spec.Build(), DefaultUnrollFactor))
		if n1 >= n0 {
			t.Errorf("%s: unrolled N=%d not below source N=%d", name, n1, n0)
		}
	}
}

func TestUnrollFactorFor(t *testing.T) {
	cases := []struct {
		trip int64
		req  int
		want int
	}{
		{4, 4, 4}, {8, 4, 4}, {6, 4, 3}, {2, 4, 2}, {5, 4, 1}, {3, 4, 3}, {1, 4, 1},
	}
	for _, c := range cases {
		if got := unrollFactorFor(c.trip, c.req); got != c.want {
			t.Errorf("unrollFactorFor(%d, %d) = %d, want %d", c.trip, c.req, got, c.want)
		}
	}
}

func TestUnrollRequiresCleanSelfLoop(t *testing.T) {
	// A loop with internal control flow must be left untouched.
	p := program.New("t", 64)
	b := p.Block("init")
	b.Li(1, 0)
	b.Li(2, 8)
	bl := p.LoopBlockN("loop", "loop", 4)
	bl.Addi(1, 1, 1)
	bl.Beq(1, 2, "out") // internal exit: not unrollable
	bl.Blt(1, 2, "loop")
	b = p.Block("out")
	b.Halt()
	before := p.StaticLen()
	q := UnrollProgram(p, 4)
	if q.StaticLen() != before {
		t.Error("unroller replicated a loop with internal control flow")
	}
}

func TestUnrollCoalescesInduction(t *testing.T) {
	// A pure streaming loop: ld/st with induction base, all uses are
	// addressing. Unroll(4) must leave exactly one addi per unrolled
	// body and adjust displacements.
	p := program.New("t", 256)
	p.SetDataSlice(0, []int64{1, 2, 3, 4, 5, 6, 7, 8})
	b := p.Block("init")
	b.Li(1, 0)
	b.Li(2, 8)
	bl := p.LoopBlockN("loop", "loop", 4)
	bl.Ld(3, 1, 0)
	bl.St(3, 1, 100)
	bl.Addi(1, 1, 1)
	bl.Blt(1, 2, "loop")
	b = p.Block("end")
	b.Halt()

	n0, ref := finalState(t, p)
	q := UnrollProgram(p, 4)
	loop := q.FindBlock("loop")
	addis := 0
	for _, in := range loop.Insts {
		if in.Op == isa.ADDI && in.Dst == 1 {
			addis++
			if in.Imm != 4 {
				t.Errorf("coalesced induction step = %d, want 4", in.Imm)
			}
		}
	}
	if addis != 1 {
		t.Errorf("induction updates after coalescing = %d, want 1", addis)
	}
	n1, got := finalState(t, q)
	if got != ref {
		t.Error("coalesced unroll changed behavior")
	}
	// 8 iterations × 4 insts = 32 dynamic, unrolled: 2 × (8+1+1) = 20.
	if n1 >= n0 {
		t.Errorf("unrolled N=%d not below N=%d", n1, n0)
	}
}

func TestOptimizeLevels(t *testing.T) {
	spec, _ := workloads.ByName("sha")
	src := spec.Build()
	for _, lvl := range Levels() {
		if lvl.String() == "" {
			t.Error("unnamed level")
		}
		out := Optimize(src, lvl)
		if out == src {
			t.Errorf("%v returned the input program", lvl)
		}
	}
	if Level(99).String() == "" {
		t.Error("unknown level string empty")
	}
	// The input must be untouched by all passes.
	spec2, _ := workloads.ByName("sha")
	fresh := spec2.Build()
	if src.StaticLen() != fresh.StaticLen() {
		t.Error("Optimize mutated its input")
	}
}
