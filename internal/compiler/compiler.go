// Package compiler implements the optimization passes used by the
// paper's compiler case study (§6.2): instruction scheduling and loop
// unrolling over the program IR.
//
// The three optimization levels mirror the paper's GCC settings:
//
//	NoSched — the program as written (gcc -O3 -fno-schedule-insns):
//	          dependent instructions tend to be adjacent.
//	O3      — list scheduling within basic blocks, which stretches
//	          producer→consumer distances.
//	Unroll  — loop unrolling (factor 4 where the trip count allows,
//	          with induction-variable coalescing) followed by
//	          scheduling (gcc -O3 -funroll-loops).
package compiler

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/program"
)

// Level selects an optimization pipeline.
type Level int

// Optimization levels in the order of Figure 8.
const (
	NoSched Level = iota
	O3
	Unroll
)

func (l Level) String() string {
	switch l {
	case NoSched:
		return "nosched"
	case O3:
		return "O3"
	case Unroll:
		return "unroll"
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// Levels returns the three levels in Figure 8 order.
func Levels() []Level { return []Level{NoSched, O3, Unroll} }

// DefaultUnrollFactor is the unroll factor requested by the Unroll
// level; loops with a smaller trip multiple are unrolled by the largest
// divisor of their trip multiple not exceeding it.
const DefaultUnrollFactor = 4

// Optimize returns a transformed copy of p for the given level. The
// input program is never modified.
func Optimize(p *program.Program, l Level) *program.Program {
	switch l {
	case NoSched:
		return p.Clone()
	case O3:
		return ScheduleProgram(p)
	case Unroll:
		return ScheduleProgram(UnrollProgram(p, DefaultUnrollFactor))
	}
	return p.Clone()
}

// ---------------------------------------------------------------------------
// Instruction scheduling
// ---------------------------------------------------------------------------

// ScheduleProgram list-schedules every basic block of a copy of p,
// maximizing producer→consumer distances while preserving all register
// and memory dependencies. Control instructions stay at the block end.
func ScheduleProgram(p *program.Program) *program.Program {
	q := p.Clone()
	for _, b := range q.Blocks {
		b.Insts = scheduleBlock(b.Insts)
	}
	return q
}

// depDAG captures the intra-block dependence structure.
type depDAG struct {
	preds  [][]int // for each node, indices it must follow
	succs  [][]int
	height []int // longest path to any block exit, in nodes
}

func isMem(op isa.Op) bool {
	c := isa.ClassOf(op)
	return c == isa.ClassLoad || c == isa.ClassStore
}

func isControl(op isa.Op) bool {
	c := isa.ClassOf(op)
	return c == isa.ClassBranch || c == isa.ClassJump || c == isa.ClassHalt
}

// instDst returns the register written by an IR instruction, or
// (Zero, false).
func instDst(in program.Inst) (isa.Reg, bool) {
	mi := isa.Instr{Op: in.Op, Dst: in.Dst, Src1: in.Src1, Src2: in.Src2}
	if mi.HasDst() {
		return in.Dst, true
	}
	return isa.Zero, false
}

// instSrcs returns the registers read by an IR instruction.
func instSrcs(in program.Inst) []isa.Reg {
	mi := isa.Instr{Op: in.Op, Dst: in.Dst, Src1: in.Src1, Src2: in.Src2}
	var buf [4]isa.Reg
	return mi.SrcRegs(buf[:0])
}

// buildDAG constructs dependence edges: register RAW/WAR/WAW, a
// conservative order among memory operations (loads may pass loads but
// nothing passes a store), and control pinned last.
func buildDAG(insts []program.Inst) *depDAG {
	n := len(insts)
	d := &depDAG{
		preds:  make([][]int, n),
		succs:  make([][]int, n),
		height: make([]int, n),
	}
	addEdge := func(from, to int) {
		if from == to {
			return
		}
		d.preds[to] = append(d.preds[to], from)
		d.succs[from] = append(d.succs[from], to)
	}

	lastWrite := map[isa.Reg]int{}
	lastReads := map[isa.Reg][]int{}
	lastStore := -1
	lastControl := -1
	var loadsSinceStore []int

	for i, in := range insts {
		if lastControl >= 0 {
			// Nothing moves above a branch: blocks may carry
			// fall-through code after a conditional branch, and that
			// code must stay after it.
			addEdge(lastControl, i)
		}
		for _, r := range instSrcs(in) {
			if w, ok := lastWrite[r]; ok {
				addEdge(w, i) // RAW
			}
		}
		if dst, ok := instDst(in); ok {
			if w, ok := lastWrite[dst]; ok {
				addEdge(w, i) // WAW
			}
			for _, rd := range lastReads[dst] {
				addEdge(rd, i) // WAR
			}
		}
		if isMem(in.Op) {
			if isa.ClassOf(in.Op) == isa.ClassStore {
				if lastStore >= 0 {
					addEdge(lastStore, i)
				}
				for _, ld := range loadsSinceStore {
					addEdge(ld, i) // store after prior loads
				}
				lastStore = i
				loadsSinceStore = loadsSinceStore[:0]
			} else {
				if lastStore >= 0 {
					addEdge(lastStore, i) // load after prior store
				}
				loadsSinceStore = append(loadsSinceStore, i)
			}
		}
		if isControl(in.Op) {
			// Nothing moves below a branch either.
			for j := 0; j < i; j++ {
				addEdge(j, i)
			}
			lastControl = i
		}
		// Bookkeeping after edges.
		for _, r := range instSrcs(in) {
			lastReads[r] = append(lastReads[r], i)
		}
		if dst, ok := instDst(in); ok {
			lastWrite[dst] = i
			lastReads[dst] = nil
		}
	}

	// Heights by reverse topological order (indices are topological
	// because edges always go forward).
	for i := n - 1; i >= 0; i-- {
		h := 0
		for _, s := range d.succs[i] {
			if d.height[s]+1 > h {
				h = d.height[s] + 1
			}
		}
		d.height[i] = h
	}
	return d
}

// scheduleBlock greedily emits ready instructions, preferring the
// candidate whose nearest already-scheduled producer is farthest away
// (stretching dependency distances), breaking ties by critical-path
// height and then by source order.
func scheduleBlock(insts []program.Inst) []program.Inst {
	n := len(insts)
	if n < 3 {
		return insts
	}
	d := buildDAG(insts)

	remaining := n
	unscheduledPreds := make([]int, n)
	for i := range insts {
		unscheduledPreds[i] = len(d.preds[i])
	}
	schedPos := make([]int, n)
	for i := range schedPos {
		schedPos[i] = -1
	}
	out := make([]program.Inst, 0, n)

	for remaining > 0 {
		best := -1
		bestDist, bestHeight := -1, -1
		for i := 0; i < n; i++ {
			if schedPos[i] >= 0 || unscheduledPreds[i] > 0 {
				continue
			}
			// Distance from the nearest scheduled producer to the slot
			// this instruction would occupy (len(out)).
			dist := n + 1 // no producer: unbounded
			for _, p := range d.preds[i] {
				if gap := len(out) - schedPos[p]; gap < dist {
					dist = gap
				}
			}
			if dist > bestDist || (dist == bestDist && d.height[i] > bestHeight) {
				best, bestDist, bestHeight = i, dist, d.height[i]
			}
		}
		if best < 0 {
			// Cycle would indicate a DAG bug; fall back to source order.
			return insts
		}
		schedPos[best] = len(out)
		out = append(out, insts[best])
		for _, s := range d.succs[best] {
			unscheduledPreds[s]--
		}
		remaining--
	}
	return out
}

// ---------------------------------------------------------------------------
// Loop unrolling
// ---------------------------------------------------------------------------

// UnrollProgram unrolls every eligible loop of a copy of p by the
// largest divisor of its TripMultiple that does not exceed factor.
// Eligible loops are single-block self-loops (LoopHead with latch ==
// label) whose block ends in a conditional branch back to itself and
// whose TripMultiple is set. Induction variables updated by a single
// `addi r, r, c` are coalesced into one update per unrolled iteration
// when all their other uses are load/store base registers (whose
// displacements are then adjusted); otherwise per-copy updates are
// kept, which is still correct.
func UnrollProgram(p *program.Program, factor int) *program.Program {
	q := p.Clone()
	for _, b := range q.Blocks {
		if !b.LoopHead || b.LoopLatch != b.Label || b.TripMultiple <= 0 {
			continue
		}
		u := unrollFactorFor(b.TripMultiple, factor)
		if u <= 1 {
			continue
		}
		if insts, ok := unrollBlock(b, u); ok {
			b.Insts = insts
		}
	}
	return q
}

// unrollFactorFor returns the largest divisor of tripMultiple that is
// at most requested.
func unrollFactorFor(tripMultiple int64, requested int) int {
	best := 1
	for u := 2; u <= requested; u++ {
		if tripMultiple%int64(u) == 0 {
			best = u
		}
	}
	return best
}

// induction describes one `addi r, r, step` update in a loop body.
type induction struct {
	reg         isa.Reg
	step        int64
	updateIdx   int
	coalescible bool
}

func unrollBlock(b *program.Block, u int) ([]program.Inst, bool) {
	n := len(b.Insts)
	if n < 2 {
		return nil, false
	}
	back := b.Insts[n-1]
	if isa.ClassOf(back.Op) != isa.ClassBranch || back.Label != b.Label {
		return nil, false
	}
	body := b.Insts[:n-1]
	for _, in := range body {
		if isControl(in.Op) {
			return nil, false // replicating control flow would be wrong
		}
	}

	// Find induction candidates: registers with exactly one update of
	// the form `addi r, r, c` in the body.
	updates := map[isa.Reg][]int{}
	for i, in := range body {
		if in.Op == isa.ADDI && in.Dst == in.Src1 && in.Dst != isa.Zero {
			updates[in.Dst] = append(updates[in.Dst], i)
		}
	}
	ind := map[isa.Reg]*induction{}
	for r, idxs := range updates {
		if len(idxs) != 1 {
			continue
		}
		// Reject if the register is written anywhere else in the body.
		written := 0
		for _, in := range body {
			if dst, ok := instDst(in); ok && dst == r {
				written++
			}
		}
		if written != 1 {
			continue
		}
		ind[r] = &induction{reg: r, step: body[idxs[0]].Imm, updateIdx: idxs[0], coalescible: true}
	}
	if len(ind) == 0 {
		return nil, false
	}

	// Coalescibility: every read of the induction register (except by
	// its own update) must be a load/store base (so a displacement
	// adjustment preserves the address) and must come BEFORE the update
	// in the body (so copy k sees base + k*step exactly).
	for r, iv := range ind {
		for i, in := range body {
			if i == iv.updateIdx {
				continue
			}
			usesR := false
			for _, s := range instSrcs(in) {
				if s == r {
					usesR = true
				}
			}
			if !usesR {
				continue
			}
			isBase := (in.Op == isa.LD || in.Op == isa.ST) && in.Src1 == r &&
				!(in.Op == isa.ST && in.Src2 == r)
			if !isBase || i > iv.updateIdx {
				iv.coalescible = false
			}
		}
		// The backward branch may read the induction register; with a
		// coalesced update placed before the branch the final compare
		// still sees head-value + u*step, which is exactly the rolled
		// loop's value after u iterations — safe because the trip count
		// is a multiple of u.
		_ = r
	}

	out := make([]program.Inst, 0, u*n)
	for k := 0; k < u; k++ {
		for i, in := range body {
			if iv, ok := ind[in.Dst]; ok && i == iv.updateIdx && iv.coalescible {
				continue // emitted once, coalesced, after the copies
			}
			cp := in
			if (cp.Op == isa.LD || cp.Op == isa.ST) && k > 0 {
				if iv, ok := ind[cp.Src1]; ok && iv.coalescible {
					cp.Imm += int64(k) * iv.step
				}
			}
			out = append(out, cp)
		}
	}
	// Coalesced induction updates, then the backward branch.
	for _, in := range body {
		if iv, ok := ind[in.Dst]; ok && in.Op == isa.ADDI && iv.coalescible {
			cp := in
			cp.Imm = iv.step * int64(u)
			out = append(out, cp)
		}
	}
	out = append(out, back)
	return out, true
}

// DynamicCount is a small helper used by tests and the case study: it
// reports the static instruction count of a program.
func DynamicCount(p *program.Program) int { return p.StaticLen() }
