// Package power is the McPAT substitute: an event-energy plus leakage
// model for the superscalar in-order cores explored in the paper's EDP
// case study (§6.3). Absolute watts are not the goal — the EDP study
// needs energies that scale monotonically and sensibly with the
// design parameters (width, pipeline depth/frequency-voltage, cache
// geometry, predictor size) so that the energy-delay-product ranking
// of design points is meaningful. Coefficients are loosely calibrated
// to published 32 nm embedded-core numbers (a few hundred pJ per
// instruction, nanojoule-class DRAM accesses).
package power

import (
	"fmt"
	"math"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/profile"
	"repro/internal/uarch"
)

// Events counts the energy-consuming activities of one run.
type Events struct {
	N           int64 // dynamically executed instructions
	MulDiv      int64 // long-latency arithmetic operations
	IL1Accesses int64
	DL1Accesses int64
	L2Accesses  int64 // L1 misses from either side
	MemAccesses int64 // L2 misses
	Branches    int64 // predictor lookups/updates
}

// EventsFrom assembles Events from the standard collectors' outputs.
func EventsFrom(p *profile.Profile, mem cache.Stats, br branch.Stats) Events {
	return Events{
		N:           p.N,
		MulDiv:      p.NMul + p.NDiv,
		IL1Accesses: mem.IL1Accesses,
		DL1Accesses: mem.DL1Accesses,
		L2Accesses:  mem.IL1Misses + mem.DL1Misses,
		MemAccesses: mem.IL2Misses + mem.DL2Misses,
		Branches:    br.Branches,
	}
}

// Breakdown reports energy by source, in joules.
type Breakdown struct {
	Core    float64 // pipeline dynamic energy
	L1      float64
	L2      float64
	Memory  float64
	Bpred   float64
	Leakage float64
}

// Total returns total energy in joules.
func (b Breakdown) Total() float64 {
	return b.Core + b.L1 + b.L2 + b.Memory + b.Bpred + b.Leakage
}

// Reference supply voltages per Table 2 frequency setting; dynamic
// energy scales with V², leakage power with V.
func supplyVoltage(freqMHz int) float64 {
	switch {
	case freqMHz <= 600:
		return 0.9
	case freqMHz <= 800:
		return 1.0
	default:
		return 1.1
	}
}

const vRef = 1.1

// Model evaluates energy for a run of the given cycle count.
type Model struct {
	// Per-event energies at Vref, in nanojoules. The zero value is
	// unusable; use NewModel for calibrated defaults.
	InstrNJ     float64 // per instruction through a 1-wide, 5-stage pipe
	WidthFactor float64 // extra per-instruction energy per extra slot
	DepthFactor float64 // extra per-instruction energy per extra stage
	MulDivNJ    float64 // additional energy per long-latency op
	L1AccessNJ  float64 // per L1 access (32 KB reference)
	L2BaseNJ    float64 // per L2 access at 512 KB, 8-way
	MemNJ       float64 // per memory access
	BpredNJ     float64 // per branch at 1 KB predictor

	// Leakage, in watts at Vref.
	CoreLeakW    float64 // per issue slot
	L2LeakWPerKB float64
}

// NewModel returns the calibrated default model.
func NewModel() Model {
	return Model{
		InstrNJ:      0.12,
		WidthFactor:  0.22, // superlinear issue/bypass growth with width
		DepthFactor:  0.035,
		MulDivNJ:     0.35,
		L1AccessNJ:   0.06,
		L2BaseNJ:     0.45,
		MemNJ:        12.0,
		BpredNJ:      0.015,
		CoreLeakW:    0.018,
		L2LeakWPerKB: 0.00012,
	}
}

// Energy computes the energy breakdown for ev on cfg over the given
// number of cycles.
func (m Model) Energy(ev Events, cfg uarch.Config, cycles float64) (Breakdown, error) {
	if err := cfg.Validate(); err != nil {
		return Breakdown{}, err
	}
	if cycles <= 0 {
		return Breakdown{}, fmt.Errorf("power: non-positive cycle count %g", cycles)
	}
	v := supplyVoltage(cfg.FreqMHz)
	dyn := (v * v) / (vRef * vRef) // dynamic-energy voltage scaling
	leak := v / vRef               // leakage-power voltage scaling
	seconds := cfg.Seconds(cycles)

	const nj = 1e-9
	perInstr := m.InstrNJ * (1 + m.WidthFactor*float64(cfg.Width-1)) *
		(1 + m.DepthFactor*float64(cfg.PipelineStages()-5))

	l2KB := float64(cfg.Hier.L2.SizeBytes) / 1024
	l2PerAccess := m.L2BaseNJ * math.Sqrt(l2KB/512) * (1 + 0.04*float64(cfg.Hier.L2.Ways-8))

	bpredPer := m.BpredNJ
	if cfg.Predictor == uarch.PredHybrid3_5KB {
		bpredPer *= 2.2 // 3.5 KB of tables versus 1 KB
	}

	var b Breakdown
	b.Core = dyn * nj * (perInstr*float64(ev.N) + m.MulDivNJ*float64(ev.MulDiv))
	b.L1 = dyn * nj * m.L1AccessNJ * float64(ev.IL1Accesses+ev.DL1Accesses)
	b.L2 = dyn * nj * l2PerAccess * float64(ev.L2Accesses)
	b.Memory = dyn * nj * m.MemNJ * float64(ev.MemAccesses)
	b.Bpred = dyn * nj * bpredPer * float64(ev.Branches)
	leakW := leak * (m.CoreLeakW*float64(cfg.Width) + m.L2LeakWPerKB*l2KB)
	b.Leakage = leakW * seconds
	return b, nil
}

// EDP returns the energy-delay product (J·s) for ev on cfg over cycles.
func (m Model) EDP(ev Events, cfg uarch.Config, cycles float64) (float64, error) {
	b, err := m.Energy(ev, cfg, cycles)
	if err != nil {
		return 0, err
	}
	return b.Total() * cfg.Seconds(cycles), nil
}

// Objectives bundles the optimization objectives of one design point:
// total energy, delay, and their product. The Pareto-aware exploration
// (dse.ParetoFront, dse.Search) trades Delay against EDP; both are
// derived from the same Energy breakdown, so EDP here is bit-identical
// to Model.EDP — the identity the exhaustive-recovery gate depends on.
type Objectives struct {
	EnergyJ  float64 // total energy, joules
	DelaySec float64 // run time, seconds
	EDP      float64 // energy-delay product, J·s
}

// Objectives evaluates all objectives for ev on cfg over cycles in one
// Energy evaluation. Objectives(...).EDP uses exactly the float
// operations of EDP(...), so the two are interchangeable bit-for-bit.
func (m Model) Objectives(ev Events, cfg uarch.Config, cycles float64) (Objectives, error) {
	b, err := m.Energy(ev, cfg, cycles)
	if err != nil {
		return Objectives{}, err
	}
	return Objectives{
		EnergyJ:  b.Total(),
		DelaySec: cfg.Seconds(cycles),
		EDP:      b.Total() * cfg.Seconds(cycles),
	}, nil
}
