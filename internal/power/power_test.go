package power

import (
	"testing"
	"testing/quick"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/profile"
	"repro/internal/uarch"
)

func sampleEvents() Events {
	return Events{
		N: 1_000_000, MulDiv: 10_000,
		IL1Accesses: 1_000_000, DL1Accesses: 300_000,
		L2Accesses: 20_000, MemAccesses: 2_000, Branches: 150_000,
	}
}

func TestEnergyPositiveAndDecomposed(t *testing.T) {
	m := NewModel()
	b, err := m.Energy(sampleEvents(), uarch.Default(), 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if b.Total() <= 0 {
		t.Fatal("non-positive energy")
	}
	parts := b.Core + b.L1 + b.L2 + b.Memory + b.Bpred + b.Leakage
	if parts != b.Total() {
		t.Errorf("breakdown does not sum: %f vs %f", parts, b.Total())
	}
	for _, v := range []float64{b.Core, b.L1, b.L2, b.Memory, b.Bpred, b.Leakage} {
		if v <= 0 {
			t.Errorf("zero component in %+v", b)
		}
	}
}

func TestWiderCoreCostsMore(t *testing.T) {
	m := NewModel()
	ev := sampleEvents()
	cy := 2_000_000.0
	prev := 0.0
	for w := 1; w <= 4; w++ {
		b, err := m.Energy(ev, uarch.Default().WithWidth(w), cy)
		if err != nil {
			t.Fatal(err)
		}
		if b.Core <= prev {
			t.Errorf("W=%d core energy %g not above W-1's %g", w, b.Core, prev)
		}
		prev = b.Core
	}
}

func TestBiggerL2CostsMorePerAccess(t *testing.T) {
	m := NewModel()
	ev := sampleEvents()
	cy := 2_000_000.0
	small, _ := m.Energy(ev, uarch.Default().WithL2(128, 8), cy)
	big, _ := m.Energy(ev, uarch.Default().WithL2(1024, 8), cy)
	if big.L2 <= small.L2 {
		t.Errorf("1MB L2 per-access energy %g not above 128KB %g", big.L2, small.L2)
	}
	if big.Leakage <= small.Leakage {
		t.Errorf("1MB L2 leakage %g not above 128KB %g", big.Leakage, small.Leakage)
	}
	wide, _ := m.Energy(ev, uarch.Default().WithL2(512, 16), cy)
	base, _ := m.Energy(ev, uarch.Default().WithL2(512, 8), cy)
	if wide.L2 <= base.L2 {
		t.Error("16-way L2 not costlier than 8-way")
	}
}

func TestVoltageScalingAcrossDepthPoints(t *testing.T) {
	// Same cycle count at lower frequency = longer time; but dynamic
	// energy must shrink with the lower voltage.
	m := NewModel()
	ev := sampleEvents()
	cy := 2_000_000.0
	slow, _ := m.Energy(ev, uarch.Default().WithDepth(uarch.DepthFreq{Stages: 5, FreqMHz: 600}), cy)
	fast, _ := m.Energy(ev, uarch.Default().WithDepth(uarch.DepthFreq{Stages: 9, FreqMHz: 1000}), cy)
	if slow.Core >= fast.Core {
		t.Errorf("600MHz/0.9V core energy %g not below 1GHz/1.1V %g", slow.Core, fast.Core)
	}
}

func TestHybridPredictorCostsMore(t *testing.T) {
	m := NewModel()
	ev := sampleEvents()
	cy := 2_000_000.0
	g, _ := m.Energy(ev, uarch.Default().WithPredictor(uarch.PredGShare1KB), cy)
	h, _ := m.Energy(ev, uarch.Default().WithPredictor(uarch.PredHybrid3_5KB), cy)
	if h.Bpred <= g.Bpred {
		t.Error("3.5KB hybrid not costlier than 1KB gshare")
	}
}

func TestEDP(t *testing.T) {
	m := NewModel()
	cfg := uarch.Default()
	ev := sampleEvents()
	edp, err := m.EDP(ev, cfg, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := m.Energy(ev, cfg, 2_000_000)
	want := b.Total() * cfg.Seconds(2_000_000)
	if edp != want {
		t.Errorf("EDP = %g, want %g", edp, want)
	}
}

func TestEnergyErrors(t *testing.T) {
	m := NewModel()
	if _, err := m.Energy(sampleEvents(), uarch.Default(), 0); err == nil {
		t.Error("zero cycles accepted")
	}
	bad := uarch.Default()
	bad.Width = 0
	if _, err := m.Energy(sampleEvents(), bad, 100); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := m.EDP(sampleEvents(), bad, 100); err == nil {
		t.Error("EDP with invalid config accepted")
	}
}

func TestEventsFrom(t *testing.T) {
	p := &profile.Profile{N: 100, NMul: 3, NDiv: 2, NBranch: 10}
	mem := cache.Stats{IL1Accesses: 100, DL1Accesses: 30, IL1Misses: 5, DL1Misses: 7,
		IL2Misses: 1, DL2Misses: 2}
	br := branch.Stats{Branches: 10}
	ev := EventsFrom(p, mem, br)
	if ev.N != 100 || ev.MulDiv != 5 || ev.L2Accesses != 12 || ev.MemAccesses != 3 || ev.Branches != 10 {
		t.Errorf("events = %+v", ev)
	}
}

// Property: energy is monotone in every event count.
func TestEnergyMonotoneInEvents(t *testing.T) {
	m := NewModel()
	cfg := uarch.Default()
	f := func(extra uint16) bool {
		base := sampleEvents()
		more := base
		more.N += int64(extra)
		more.MemAccesses += int64(extra)
		b1, err1 := m.Energy(base, cfg, 1_000_000)
		b2, err2 := m.Energy(more, cfg, 1_000_000)
		return err1 == nil && err2 == nil && b2.Total() >= b1.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
