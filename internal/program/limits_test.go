package program

import (
	"strings"
	"testing"
)

// TestBuildMemoryLimits: Build must reject resource-bomb memory claims
// and out-of-range data initializers by arithmetic, before anything
// downstream allocates proportionally to them.
func TestBuildMemoryLimits(t *testing.T) {
	t.Run("negative memory", func(t *testing.T) {
		p := New("t", -1)
		p.Block("m").Halt()
		if _, err := p.Build(); err == nil || !strings.Contains(err.Error(), "negative") {
			t.Errorf("err = %v, want negative-memory error", err)
		}
	})
	t.Run("memory over ceiling", func(t *testing.T) {
		p := New("t", MaxMemWords+1)
		p.Block("m").Halt()
		if _, err := p.Build(); err == nil || !strings.Contains(err.Error(), "ceiling") {
			t.Errorf("err = %v, want ceiling error", err)
		}
	})
	t.Run("ceiling itself is fine", func(t *testing.T) {
		p := New("t", MaxMemWords)
		p.Block("m").Halt()
		if _, err := p.Build(); err != nil {
			t.Errorf("exact-ceiling program rejected: %v", err)
		}
	})
	t.Run("data beyond memory", func(t *testing.T) {
		p := New("t", 16)
		p.SetData(16, 1)
		p.Block("m").Halt()
		if _, err := p.Build(); err == nil || !strings.Contains(err.Error(), "outside memory") {
			t.Errorf("err = %v, want out-of-range data error", err)
		}
	})
	t.Run("negative data address", func(t *testing.T) {
		p := New("t", 16)
		p.SetData(-1, 1)
		p.Block("m").Halt()
		if _, err := p.Build(); err == nil || !strings.Contains(err.Error(), "outside memory") {
			t.Errorf("err = %v, want out-of-range data error", err)
		}
	})
}
