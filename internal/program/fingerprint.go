package program

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"io"
)

// Fingerprint returns a SHA-256 content hash of the program: every
// block (labels, loop metadata, instructions) and every initialized
// data word, in deterministic order. Two programs with the same
// fingerprint execute identically, so the artifact store folds it into
// the workload identity — editing a workload kernel (or anything that
// changes its built IR) moves the artifact to a new key instead of
// silently rehydrating a stale trace.
//
// The hash is length-prefixed field by field, so adjacent variable-
// length values (labels, block boundaries) can never alias.
func (p *Program) Fingerprint() string {
	h := sha256.New()
	ws := func(s string) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(len(s)))
		h.Write(b[:])
		_, _ = io.WriteString(h, s)
	}
	wi := func(vs ...int64) {
		var b [8]byte
		for _, v := range vs {
			binary.LittleEndian.PutUint64(b[:], uint64(v))
			h.Write(b[:])
		}
	}
	ws(p.Name)
	wi(p.MemWords, int64(len(p.Blocks)))
	for _, blk := range p.Blocks {
		ws(blk.Label)
		ws(blk.LoopLatch)
		head := int64(0)
		if blk.LoopHead {
			head = 1
		}
		wi(head, blk.TripMultiple, int64(len(blk.Insts)))
		for i := range blk.Insts {
			in := &blk.Insts[i]
			ws(in.Label)
			wi(int64(in.Op), int64(in.Dst), int64(in.Src1), int64(in.Src2), in.Imm)
		}
	}
	addrs := p.DataAddrs()
	wi(int64(len(addrs)))
	for _, a := range addrs {
		wi(a, p.Data[a])
	}
	return hex.EncodeToString(h.Sum(nil))
}
