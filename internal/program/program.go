// Package program provides an intermediate representation for programs
// in the repository's RISC ISA, together with a builder DSL used by the
// workload kernels and by the compiler passes.
//
// A Program is a list of labeled basic blocks plus an initialized data
// segment. Build resolves labels to static instruction indices and
// produces the flat instruction array executed by the functional
// simulator (package funcsim).
package program

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// Inst is one IR instruction. Control transfers name their target by
// label; Build resolves labels to static indices.
type Inst struct {
	Op    isa.Op
	Dst   isa.Reg
	Src1  isa.Reg
	Src2  isa.Reg
	Imm   int64
	Label string // branch/jump target label
}

// Block is a labeled basic block. A block ends implicitly by falling
// through to the next block, or explicitly at a control instruction.
//
// LoopHead marks the block as the head of an innermost loop whose body
// runs until the block named LoopLatch (inclusive); the loop unroller in
// package compiler uses this metadata.
type Block struct {
	Label     string
	Insts     []Inst
	LoopHead  bool
	LoopLatch string // label of the latch block (may equal Label)
	// TripMultiple, when non-zero on a loop head, asserts that the
	// loop's dynamic trip count is always a positive multiple of this
	// value. The loop unroller (package compiler) relies on it to
	// remove intermediate exit tests safely.
	TripMultiple int64
}

// MaxMemWords is the absolute data-memory ceiling any program may
// declare: 1<<26 words (512 MiB of int64 data). Build and funcsim.New
// reject anything larger, so a hostile ".mem 1<<40" directive fails
// with a descriptive error instead of an allocation that kills the
// process. The built-in workload suite peaks around 2^19 words; the
// ingestion path applies far tighter, configurable limits on top.
const MaxMemWords = 1 << 26

// Program is a complete IR program.
type Program struct {
	Name   string
	Blocks []*Block
	// Data maps word addresses to initial values. All other memory
	// words start at zero.
	Data map[int64]int64
	// MemWords is the size of the data memory in words.
	MemWords int64
}

// New returns an empty program with the given name and memory size.
func New(name string, memWords int64) *Program {
	return &Program{Name: name, Data: make(map[int64]int64), MemWords: memWords}
}

// SetData initializes one memory word.
func (p *Program) SetData(addr, val int64) {
	p.Data[addr] = val
}

// SetDataSlice initializes consecutive memory words starting at base.
func (p *Program) SetDataSlice(base int64, vals []int64) {
	for i, v := range vals {
		p.Data[base+int64(i)] = v
	}
}

// Block appends a new basic block with the given label and returns a
// builder for it.
func (p *Program) Block(label string) *Builder {
	b := &Block{Label: label}
	p.Blocks = append(p.Blocks, b)
	return &Builder{blk: b}
}

// LoopBlock appends a new block marked as a loop head whose latch is the
// block named latch.
func (p *Program) LoopBlock(label, latch string) *Builder {
	bld := p.Block(label)
	bld.blk.LoopHead = true
	bld.blk.LoopLatch = latch
	return bld
}

// LoopBlockN is LoopBlock with a trip-count-multiple assertion (see
// Block.TripMultiple).
func (p *Program) LoopBlockN(label, latch string, tripMultiple int64) *Builder {
	bld := p.LoopBlock(label, latch)
	bld.blk.TripMultiple = tripMultiple
	return bld
}

// FindBlock returns the block with the given label, or nil.
func (p *Program) FindBlock(label string) *Block {
	for _, b := range p.Blocks {
		if b.Label == label {
			return b
		}
	}
	return nil
}

// Clone returns a deep copy of the program. Compiler passes transform
// clones so the original stays intact.
func (p *Program) Clone() *Program {
	q := New(p.Name, p.MemWords)
	for a, v := range p.Data {
		q.Data[a] = v
	}
	for _, b := range p.Blocks {
		nb := &Block{
			Label:        b.Label,
			Insts:        append([]Inst(nil), b.Insts...),
			LoopHead:     b.LoopHead,
			LoopLatch:    b.LoopLatch,
			TripMultiple: b.TripMultiple,
		}
		q.Blocks = append(q.Blocks, nb)
	}
	return q
}

// StaticLen returns the number of static instructions in the program.
func (p *Program) StaticLen() int {
	n := 0
	for _, b := range p.Blocks {
		n += len(b.Insts)
	}
	return n
}

// Build resolves labels and returns the flat instruction array. The
// program must end every path in HALT to terminate; Build does not
// verify reachability but does verify label resolution.
func (p *Program) Build() ([]isa.Instr, error) {
	if len(p.Blocks) == 0 {
		return nil, fmt.Errorf("program %q: no blocks", p.Name)
	}
	if p.MemWords < 0 {
		return nil, fmt.Errorf("program %q: negative memory size %d", p.Name, p.MemWords)
	}
	if p.MemWords > MaxMemWords {
		return nil, fmt.Errorf("program %q: memory size %d words exceeds the %d-word ceiling", p.Name, p.MemWords, int64(MaxMemWords))
	}
	if p.MemWords > 0 {
		for a := range p.Data {
			if a < 0 || a >= p.MemWords {
				return nil, fmt.Errorf("program %q: data init address %d outside memory [0,%d)", p.Name, a, p.MemWords)
			}
		}
	}
	addr := make(map[string]int, len(p.Blocks))
	n := 0
	for _, b := range p.Blocks {
		if b.Label == "" {
			return nil, fmt.Errorf("program %q: unlabeled block", p.Name)
		}
		if _, dup := addr[b.Label]; dup {
			return nil, fmt.Errorf("program %q: duplicate label %q", p.Name, b.Label)
		}
		addr[b.Label] = n
		n += len(b.Insts)
	}
	out := make([]isa.Instr, 0, n)
	for _, b := range p.Blocks {
		for _, in := range b.Insts {
			mi := isa.Instr{Op: in.Op, Dst: in.Dst, Src1: in.Src1, Src2: in.Src2, Imm: in.Imm}
			if in.Label != "" {
				t, ok := addr[in.Label]
				if !ok {
					return nil, fmt.Errorf("program %q: unresolved label %q", p.Name, in.Label)
				}
				mi.Target = t
			} else if mi.IsControl() {
				return nil, fmt.Errorf("program %q: control instruction %v without label", p.Name, in.Op)
			}
			out = append(out, mi)
		}
	}
	return out, nil
}

// MustBuild is Build that panics on error; for use by the workload
// library, whose programs are statically known to be well formed.
func (p *Program) MustBuild() []isa.Instr {
	ins, err := p.Build()
	if err != nil {
		panic(err)
	}
	return ins
}

// DataAddrs returns the initialized addresses in sorted order (for
// deterministic iteration in tests).
func (p *Program) DataAddrs() []int64 {
	out := make([]int64, 0, len(p.Data))
	for a := range p.Data {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Builder offers a fluent instruction-emission API over one block.
type Builder struct {
	blk *Block
}

// Blk returns the underlying block.
func (b *Builder) Blk() *Block { return b.blk }

func (b *Builder) emit(i Inst) *Builder {
	b.blk.Insts = append(b.blk.Insts, i)
	return b
}

// Nop emits a no-op.
func (b *Builder) Nop() *Builder { return b.emit(Inst{Op: isa.NOP}) }

// Add emits dst = s1 + s2.
func (b *Builder) Add(dst, s1, s2 isa.Reg) *Builder {
	return b.emit(Inst{Op: isa.ADD, Dst: dst, Src1: s1, Src2: s2})
}

// Sub emits dst = s1 - s2.
func (b *Builder) Sub(dst, s1, s2 isa.Reg) *Builder {
	return b.emit(Inst{Op: isa.SUB, Dst: dst, Src1: s1, Src2: s2})
}

// And emits dst = s1 & s2.
func (b *Builder) And(dst, s1, s2 isa.Reg) *Builder {
	return b.emit(Inst{Op: isa.AND, Dst: dst, Src1: s1, Src2: s2})
}

// Or emits dst = s1 | s2.
func (b *Builder) Or(dst, s1, s2 isa.Reg) *Builder {
	return b.emit(Inst{Op: isa.OR, Dst: dst, Src1: s1, Src2: s2})
}

// Xor emits dst = s1 ^ s2.
func (b *Builder) Xor(dst, s1, s2 isa.Reg) *Builder {
	return b.emit(Inst{Op: isa.XOR, Dst: dst, Src1: s1, Src2: s2})
}

// Shl emits dst = s1 << s2.
func (b *Builder) Shl(dst, s1, s2 isa.Reg) *Builder {
	return b.emit(Inst{Op: isa.SHL, Dst: dst, Src1: s1, Src2: s2})
}

// Shr emits dst = s1 >> s2 (logical).
func (b *Builder) Shr(dst, s1, s2 isa.Reg) *Builder {
	return b.emit(Inst{Op: isa.SHR, Dst: dst, Src1: s1, Src2: s2})
}

// Sra emits dst = s1 >> s2 (arithmetic).
func (b *Builder) Sra(dst, s1, s2 isa.Reg) *Builder {
	return b.emit(Inst{Op: isa.SRA, Dst: dst, Src1: s1, Src2: s2})
}

// Slt emits dst = (s1 < s2).
func (b *Builder) Slt(dst, s1, s2 isa.Reg) *Builder {
	return b.emit(Inst{Op: isa.SLT, Dst: dst, Src1: s1, Src2: s2})
}

// Addi emits dst = s1 + imm.
func (b *Builder) Addi(dst, s1 isa.Reg, imm int64) *Builder {
	return b.emit(Inst{Op: isa.ADDI, Dst: dst, Src1: s1, Imm: imm})
}

// Andi emits dst = s1 & imm.
func (b *Builder) Andi(dst, s1 isa.Reg, imm int64) *Builder {
	return b.emit(Inst{Op: isa.ANDI, Dst: dst, Src1: s1, Imm: imm})
}

// Ori emits dst = s1 | imm.
func (b *Builder) Ori(dst, s1 isa.Reg, imm int64) *Builder {
	return b.emit(Inst{Op: isa.ORI, Dst: dst, Src1: s1, Imm: imm})
}

// Xori emits dst = s1 ^ imm.
func (b *Builder) Xori(dst, s1 isa.Reg, imm int64) *Builder {
	return b.emit(Inst{Op: isa.XORI, Dst: dst, Src1: s1, Imm: imm})
}

// Shli emits dst = s1 << imm.
func (b *Builder) Shli(dst, s1 isa.Reg, imm int64) *Builder {
	return b.emit(Inst{Op: isa.SHLI, Dst: dst, Src1: s1, Imm: imm})
}

// Shri emits dst = s1 >> imm (logical).
func (b *Builder) Shri(dst, s1 isa.Reg, imm int64) *Builder {
	return b.emit(Inst{Op: isa.SHRI, Dst: dst, Src1: s1, Imm: imm})
}

// Srai emits dst = s1 >> imm (arithmetic).
func (b *Builder) Srai(dst, s1 isa.Reg, imm int64) *Builder {
	return b.emit(Inst{Op: isa.SRAI, Dst: dst, Src1: s1, Imm: imm})
}

// Slti emits dst = (s1 < imm).
func (b *Builder) Slti(dst, s1 isa.Reg, imm int64) *Builder {
	return b.emit(Inst{Op: isa.SLTI, Dst: dst, Src1: s1, Imm: imm})
}

// Li emits dst = imm.
func (b *Builder) Li(dst isa.Reg, imm int64) *Builder {
	return b.emit(Inst{Op: isa.LUI, Dst: dst, Imm: imm})
}

// Mul emits dst = s1 * s2 (long latency).
func (b *Builder) Mul(dst, s1, s2 isa.Reg) *Builder {
	return b.emit(Inst{Op: isa.MUL, Dst: dst, Src1: s1, Src2: s2})
}

// Div emits dst = s1 / s2 (long latency).
func (b *Builder) Div(dst, s1, s2 isa.Reg) *Builder {
	return b.emit(Inst{Op: isa.DIV, Dst: dst, Src1: s1, Src2: s2})
}

// Rem emits dst = s1 % s2 (long latency).
func (b *Builder) Rem(dst, s1, s2 isa.Reg) *Builder {
	return b.emit(Inst{Op: isa.REM, Dst: dst, Src1: s1, Src2: s2})
}

// Ld emits dst = mem[base+imm].
func (b *Builder) Ld(dst, base isa.Reg, imm int64) *Builder {
	return b.emit(Inst{Op: isa.LD, Dst: dst, Src1: base, Imm: imm})
}

// St emits mem[base+imm] = val.
func (b *Builder) St(val, base isa.Reg, imm int64) *Builder {
	return b.emit(Inst{Op: isa.ST, Src1: base, Src2: val, Imm: imm})
}

// Beq emits a branch to label if s1 == s2.
func (b *Builder) Beq(s1, s2 isa.Reg, label string) *Builder {
	return b.emit(Inst{Op: isa.BEQ, Src1: s1, Src2: s2, Label: label})
}

// Bne emits a branch to label if s1 != s2.
func (b *Builder) Bne(s1, s2 isa.Reg, label string) *Builder {
	return b.emit(Inst{Op: isa.BNE, Src1: s1, Src2: s2, Label: label})
}

// Blt emits a branch to label if s1 < s2 (signed).
func (b *Builder) Blt(s1, s2 isa.Reg, label string) *Builder {
	return b.emit(Inst{Op: isa.BLT, Src1: s1, Src2: s2, Label: label})
}

// Bge emits a branch to label if s1 >= s2 (signed).
func (b *Builder) Bge(s1, s2 isa.Reg, label string) *Builder {
	return b.emit(Inst{Op: isa.BGE, Src1: s1, Src2: s2, Label: label})
}

// Jmp emits an unconditional jump to label.
func (b *Builder) Jmp(label string) *Builder {
	return b.emit(Inst{Op: isa.JMP, Label: label})
}

// Jal emits a call to label, writing the return index to dst.
func (b *Builder) Jal(dst isa.Reg, label string) *Builder {
	return b.emit(Inst{Op: isa.JAL, Dst: dst, Label: label})
}

// Halt emits program termination.
func (b *Builder) Halt() *Builder { return b.emit(Inst{Op: isa.HALT}) }
