package program

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestBuildResolvesLabels(t *testing.T) {
	p := New("t", 16)
	b := p.Block("start")
	b.Li(1, 5)
	b.Jmp("end")
	b = p.Block("mid")
	b.Nop()
	b = p.Block("end")
	b.Halt()

	ins, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 4 {
		t.Fatalf("got %d instructions, want 4", len(ins))
	}
	if ins[1].Op != isa.JMP || ins[1].Target != 3 {
		t.Errorf("jmp = %v, want target 3", ins[1])
	}
}

func TestBuildErrors(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		if _, err := New("t", 16).Build(); err == nil {
			t.Error("empty program built without error")
		}
	})
	t.Run("unresolved label", func(t *testing.T) {
		p := New("t", 16)
		p.Block("a").Jmp("nowhere")
		if _, err := p.Build(); err == nil || !strings.Contains(err.Error(), "unresolved") {
			t.Errorf("err = %v, want unresolved-label error", err)
		}
	})
	t.Run("duplicate label", func(t *testing.T) {
		p := New("t", 16)
		p.Block("a").Nop()
		p.Block("a").Halt()
		if _, err := p.Build(); err == nil || !strings.Contains(err.Error(), "duplicate") {
			t.Errorf("err = %v, want duplicate-label error", err)
		}
	})
	t.Run("control without label", func(t *testing.T) {
		p := New("t", 16)
		b := p.Block("a")
		b.blk.Insts = append(b.blk.Insts, Inst{Op: isa.BEQ})
		if _, err := p.Build(); err == nil || !strings.Contains(err.Error(), "without label") {
			t.Errorf("err = %v, want control-without-label error", err)
		}
	})
	t.Run("unlabeled block", func(t *testing.T) {
		p := New("t", 16)
		p.Blocks = append(p.Blocks, &Block{})
		if _, err := p.Build(); err == nil {
			t.Error("unlabeled block built without error")
		}
	})
}

func TestBuilderEmitsExpectedOpcodes(t *testing.T) {
	p := New("t", 16)
	b := p.Block("a")
	b.Add(1, 2, 3).Sub(1, 2, 3).And(1, 2, 3).Or(1, 2, 3).Xor(1, 2, 3)
	b.Shl(1, 2, 3).Shr(1, 2, 3).Sra(1, 2, 3).Slt(1, 2, 3)
	b.Addi(1, 2, 4).Andi(1, 2, 4).Ori(1, 2, 4).Xori(1, 2, 4)
	b.Shli(1, 2, 4).Shri(1, 2, 4).Srai(1, 2, 4).Slti(1, 2, 4)
	b.Li(1, 4).Mul(1, 2, 3).Div(1, 2, 3).Rem(1, 2, 3)
	b.Ld(1, 2, 4).St(1, 2, 4)
	b.Beq(1, 2, "a").Bne(1, 2, "a").Blt(1, 2, "a").Bge(1, 2, "a")
	b.Jmp("a").Jal(1, "a").Nop().Halt()

	want := []isa.Op{
		isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR,
		isa.SHL, isa.SHR, isa.SRA, isa.SLT,
		isa.ADDI, isa.ANDI, isa.ORI, isa.XORI,
		isa.SHLI, isa.SHRI, isa.SRAI, isa.SLTI,
		isa.LUI, isa.MUL, isa.DIV, isa.REM,
		isa.LD, isa.ST,
		isa.BEQ, isa.BNE, isa.BLT, isa.BGE,
		isa.JMP, isa.JAL, isa.NOP, isa.HALT,
	}
	got := b.Blk().Insts
	if len(got) != len(want) {
		t.Fatalf("emitted %d instructions, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Op != want[i] {
			t.Errorf("inst %d: op %v, want %v", i, got[i].Op, want[i])
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := New("t", 16)
	p.SetData(3, 42)
	b := p.LoopBlockN("loop", "loop", 4)
	b.Addi(1, 1, 1)
	b.Blt(1, 2, "loop")

	q := p.Clone()
	q.Blocks[0].Insts[0].Imm = 99
	q.SetData(3, 7)

	if p.Blocks[0].Insts[0].Imm != 1 {
		t.Error("clone shares instruction storage with original")
	}
	if p.Data[3] != 42 {
		t.Error("clone shares data map with original")
	}
	if !q.Blocks[0].LoopHead || q.Blocks[0].TripMultiple != 4 || q.Blocks[0].LoopLatch != "loop" {
		t.Error("clone lost loop metadata")
	}
}

func TestSetDataSliceAndAddrs(t *testing.T) {
	p := New("t", 64)
	p.SetDataSlice(10, []int64{1, 2, 3})
	p.SetData(5, 9)
	addrs := p.DataAddrs()
	want := []int64{5, 10, 11, 12}
	if len(addrs) != len(want) {
		t.Fatalf("addrs = %v, want %v", addrs, want)
	}
	for i := range want {
		if addrs[i] != want[i] {
			t.Fatalf("addrs = %v, want %v", addrs, want)
		}
	}
}

func TestStaticLen(t *testing.T) {
	p := New("t", 16)
	p.Block("a").Nop().Nop()
	p.Block("b").Halt()
	if got := p.StaticLen(); got != 3 {
		t.Errorf("StaticLen = %d, want 3", got)
	}
}

func TestFindBlock(t *testing.T) {
	p := New("t", 16)
	p.Block("a").Nop()
	if p.FindBlock("a") == nil {
		t.Error("FindBlock failed to find existing block")
	}
	if p.FindBlock("zzz") != nil {
		t.Error("FindBlock found nonexistent block")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic on bad program")
		}
	}()
	New("t", 16).MustBuild()
}
