package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// testKeys returns n deterministic keys shaped like workload names.
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("workload-%04d", i)
	}
	return keys
}

func mustRing(t *testing.T, nodes []string, vnodes int) *Ring {
	t.Helper()
	r, err := New(nodes, vnodes)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRingRejectsBadConfig(t *testing.T) {
	if _, err := New(nil, 0); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := New([]string{"a", "a"}, 0); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if _, err := New([]string{""}, 0); err == nil {
		t.Fatal("empty node address accepted")
	}
	if _, err := New([]string{" a"}, 0); err == nil {
		t.Fatal("whitespace-padded node address accepted")
	}
}

// TestRingDeterministicPlacement: two rings built from the same
// members — in different orders, by different processes in real life —
// must agree on every owner. This is the property the proxy protocol
// and the CI cluster-determinism gate rest on.
func TestRingDeterministicPlacement(t *testing.T) {
	nodes := []string{"10.0.0.1:8080", "10.0.0.2:8080", "10.0.0.3:8080", "10.0.0.4:8080"}
	shuffled := []string{"10.0.0.3:8080", "10.0.0.1:8080", "10.0.0.4:8080", "10.0.0.2:8080"}
	a := mustRing(t, nodes, 64)
	b := mustRing(t, shuffled, 64)
	for _, k := range testKeys(2000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("placement differs for %q: %q vs %q", k, a.Owner(k), b.Owner(k))
		}
	}
}

// TestRingNoKeyUnowned: every key has exactly one owner and it is a
// member — including keys hashing past the last virtual point (the
// wrap-around arc).
func TestRingNoKeyUnowned(t *testing.T) {
	r := mustRing(t, []string{"a:1", "b:1", "c:1"}, 8)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("key-%d-%d", i, rng.Int63())
		owner := r.Owner(k)
		if owner == "" || !r.Contains(owner) {
			t.Fatalf("key %q owned by non-member %q", k, owner)
		}
	}
}

// TestRingDistributionBounds: with the default virtual-node count, no
// node's share of a large key population strays past ±40% of fair.
// (Expected deviation at 128 vnodes is ~9%; the bound is loose enough
// to be hash-stable forever and tight enough to catch a broken point
// projection, which skews shares by integer factors.)
func TestRingDistributionBounds(t *testing.T) {
	nodes := []string{"n1:1", "n2:1", "n3:1", "n4:1"}
	r := mustRing(t, nodes, 0) // default vnodes
	counts := make(map[string]int)
	keys := testKeys(20000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	fair := float64(len(keys)) / float64(len(nodes))
	for _, n := range nodes {
		share := float64(counts[n]) / fair
		if share < 0.6 || share > 1.4 {
			t.Errorf("node %s owns %d keys (%.2fx fair share %v)", n, counts[n], share, counts)
		}
	}
}

// TestRingJoinMovesOnlyFairShare: growing an N-node ring by one node
// may only move keys TO the new node (consistent hashing adds virtual
// points, never moves existing ones), and the moved fraction stays
// near 1/(N+1).
func TestRingJoinMovesOnlyFairShare(t *testing.T) {
	base := []string{"n1:1", "n2:1", "n3:1", "n4:1"}
	grown := append(append([]string(nil), base...), "n5:1")
	before := mustRing(t, base, 0)
	after := mustRing(t, grown, 0)
	keys := testKeys(20000)
	moved := 0
	for _, k := range keys {
		was, is := before.Owner(k), after.Owner(k)
		if was != is {
			moved++
			if is != "n5:1" {
				t.Fatalf("key %q moved %q -> %q, not to the joining node", k, was, is)
			}
		}
	}
	frac := float64(moved) / float64(len(keys))
	// Fair share for the 5th node is 0.20.
	if frac < 0.10 || frac > 0.35 {
		t.Errorf("join moved %.1f%% of keys, want ~20%%", 100*frac)
	}
}

// TestRingLeaveMovesOnlyDepartedKeys: shrinking the ring reassigns
// exactly the departed node's keys; everything else stays put.
func TestRingLeaveMovesOnlyDepartedKeys(t *testing.T) {
	full := []string{"n1:1", "n2:1", "n3:1", "n4:1"}
	shrunk := []string{"n1:1", "n2:1", "n4:1"}
	before := mustRing(t, full, 0)
	after := mustRing(t, shrunk, 0)
	for _, k := range testKeys(20000) {
		was, is := before.Owner(k), after.Owner(k)
		if was == "n3:1" {
			if is == "n3:1" {
				t.Fatalf("key %q still owned by departed node", k)
			}
			continue
		}
		if was != is {
			t.Fatalf("key %q moved %q -> %q though its owner never left", k, was, is)
		}
	}
}

func TestRingAccessors(t *testing.T) {
	r := mustRing(t, []string{"b:1", "a:1"}, 16)
	if got := r.Nodes(); len(got) != 2 || got[0] != "a:1" || got[1] != "b:1" {
		t.Fatalf("Nodes() = %v, want sorted [a:1 b:1]", got)
	}
	if r.Len() != 2 || r.VirtualNodes() != 16 {
		t.Fatalf("Len/VirtualNodes = %d/%d", r.Len(), r.VirtualNodes())
	}
	if r.Contains("c:1") || !r.Contains("a:1") {
		t.Fatal("Contains is wrong")
	}
}
