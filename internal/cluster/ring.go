// Package cluster places workloads on modeld nodes. A fleet shards by
// workload name over a consistent-hash ring: every node builds the
// same ring from the same member list and therefore agrees on which
// node owns which workload, with no coordination service. A node that
// receives a request for a workload it does not own proxies one hop to
// the owner, so each node's LRU pool holds a disjoint hot set and the
// fleet's aggregate cache capacity scales with its size.
//
// Placement must be deterministic (two processes with the same member
// list compute identical owners — the proxy protocol and the CI
// cluster-determinism gate both depend on it) and stable (membership
// changes move only the fair share of keys: adding a node to an
// N-node ring reassigns ~1/(N+1) of the keys, all of them to the new
// node, and removing one reassigns only the keys it owned). Both
// properties come from the classic construction: each node projects a
// configurable number of virtual points onto a 64-bit hash circle, and
// a key is owned by the node of the first point at or clockwise of the
// key's hash.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// DefaultVirtualNodes is the per-node virtual point count used when
// the caller passes 0. At 128 points per node the expected imbalance
// between nodes is on the order of 1/sqrt(128) ≈ 9% of the fair
// share; the distribution test pins a looser bound.
const DefaultVirtualNodes = 128

// point is one virtual node on the hash circle.
type point struct {
	hash uint64
	node int32 // index into Ring.nodes
}

// Ring is an immutable consistent-hash ring over a set of node
// addresses. Build with New; all methods are safe for concurrent use.
type Ring struct {
	nodes  []string // sorted, unique
	vnodes int
	points []point // sorted by hash
}

// hash64 is the placement hash: the first 8 bytes of SHA-256, which is
// stable across processes, architectures and Go releases (unlike
// maphash) — a requirement, since every ring member must agree.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.LittleEndian.Uint64(sum[:8])
}

// New builds a ring over the given member addresses with vnodes
// virtual points per member (0 means DefaultVirtualNodes). The member
// list is canonicalized by sorting, so every node may pass its -peers
// flag in any order and still build an identical ring; empty or
// duplicate members are configuration mistakes and rejected.
func New(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	for i, n := range sorted {
		if n == "" || n != strings.TrimSpace(n) {
			return nil, fmt.Errorf("cluster: invalid node address %q", n)
		}
		if i > 0 && sorted[i-1] == n {
			return nil, fmt.Errorf("cluster: duplicate node address %q", n)
		}
	}
	r := &Ring{nodes: sorted, vnodes: vnodes, points: make([]point, 0, len(sorted)*vnodes)}
	for ni, n := range r.nodes {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: hash64(fmt.Sprintf("%s#%d", n, v)), node: int32(ni)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A 64-bit collision between virtual points is vanishingly
		// unlikely, but the tie-break keeps the sort — and therefore
		// placement — fully deterministic even then.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// Owner returns the node that owns key: the node of the first virtual
// point at or clockwise of the key's hash. The ring is never empty, so
// Owner always answers.
func (r *Ring) Owner(key string) string {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the circle's first point owns the top arc
	}
	return r.nodes[r.points[i].node]
}

// Nodes returns the sorted member list (a copy).
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// VirtualNodes returns the per-member virtual point count in effect.
func (r *Ring) VirtualNodes() int { return r.vnodes }

// Contains reports whether addr is a ring member.
func (r *Ring) Contains(addr string) bool {
	i := sort.SearchStrings(r.nodes, addr)
	return i < len(r.nodes) && r.nodes[i] == addr
}
