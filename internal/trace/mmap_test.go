package trace

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/isa"
)

// mapTestTrace builds a trace spanning a partial last chunk so mapped
// column slicing is exercised at both full and truncated live lengths.
func mapTestTrace(t *testing.T, n int) *Trace {
	t.Helper()
	b := NewBuilder()
	var d DynInst
	for i := 0; i < n; i++ {
		d.Seq = int64(i)
		d.PC = int64(i % 911)
		d.Op = 3
		d.Class = 2
		d.Dst = isa.Reg(i % 29)
		d.HasDst = i%3 != 0
		d.Src[0] = isa.Reg(i % 31)
		d.Src[1] = isa.Reg(i % 23)
		d.NumSrc = i % 3
		d.EffAddr = int64(i) * 524287
		d.Taken = i%7 == 0
		d.Target = int64((i * 13) % 911)
		if d.Taken {
			d.NextPC = d.Target
		} else {
			d.NextPC = d.PC + 1
		}
		d.IsLoad = i%5 == 0
		d.IsBranch = i%7 == 0
		b.Append(&d)
	}
	return b.Trace()
}

func encodeTrace(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestMapTraceMatchesDecodePath(t *testing.T) {
	tr := mapTestTrace(t, 2*ChunkLen+123)
	enc := encodeTrace(t, tr)
	decoded, err := ReadTraceFrom(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := MapTrace(enc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mapped.Len() != tr.Len() {
		t.Fatalf("mapped trace has %d instructions, want %d", mapped.Len(), tr.Len())
	}
	for i := int64(0); i < tr.Len(); i++ {
		if a, b := mapped.At(i), decoded.At(i); a != b {
			t.Fatalf("instruction %d differs between mapped and decoded trace:\n mapped  %+v\n decoded %+v", i, a, b)
		}
	}
	// The mapped columns alias the stream: entry 0's Op must share
	// storage with the encoded bytes, not a copy.
	enc[8+4*ChunkLen] ^= 0x01 // chunk 0's first Op byte (after the PC column)
	if mapped.Chunks()[0].Op[0] == decoded.Chunks()[0].Op[0] {
		t.Fatal("mapped Op column does not alias the encoded stream")
	}
}

func TestMapTraceRejectsCorruption(t *testing.T) {
	tr := mapTestTrace(t, ChunkLen+57)
	enc := encodeTrace(t, tr)

	flipped := append([]byte(nil), enc...)
	flipped[len(flipped)/2] ^= 0xFF
	if _, err := MapTrace(flipped, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped chunk byte: err = %v, want ErrCorrupt", err)
	}

	if _, err := MapTrace(enc[:len(enc)-5], nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated stream: err = %v, want ErrCorrupt", err)
	}
	if _, err := MapTrace(enc[:4], nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short header: err = %v, want ErrCorrupt", err)
	}

	grown := append(append([]byte(nil), enc...), 0)
	if _, err := MapTrace(grown, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversize stream: err = %v, want ErrCorrupt", err)
	}

	// A corrupted length header implies a different exact size, so the
	// framing check rejects it even though no chunk CRC is reachable.
	badLen := append([]byte(nil), enc...)
	badLen[0] ^= 0x01
	if _, err := MapTrace(badLen, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted length header: err = %v, want ErrCorrupt", err)
	}
}

func TestMapBytePlaneMatchesDecodePath(t *testing.T) {
	bb := NewBytePlaneBuilder()
	for i := 0; i < 3*ChunkLen/2+7; i++ {
		bb.Append(uint8(i % 251))
	}
	var buf bytes.Buffer
	if _, err := bb.Plane().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := ReadBytePlaneFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := MapBytePlane(buf.Bytes(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !mapped.Equal(decoded) || !mapped.Equal(bb.Plane()) {
		t.Fatal("mapped byte plane differs from the decoded one")
	}

	flipped := append([]byte(nil), buf.Bytes()...)
	flipped[9] ^= 0x10
	if _, err := MapBytePlane(flipped, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped plane byte: err = %v, want ErrCorrupt", err)
	}
	if _, err := MapBytePlane(flipped[:11], nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated plane: err = %v, want ErrCorrupt", err)
	}
}

// TestOpenMappedTraceRoundTrip exercises the real mmap syscall path:
// a trace encoded to a file, mapped, and replayed must match the
// original byte for byte, and the mapping must be reported.
func TestOpenMappedTraceRoundTrip(t *testing.T) {
	if !mmapSupported {
		t.Skip("mmap unsupported on this platform")
	}
	tr := mapTestTrace(t, ChunkLen+999)
	path := filepath.Join(t.TempDir(), "trace.bin")
	if err := os.WriteFile(path, encodeTrace(t, tr), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := MapTrace(m.Bytes(), m)
	if err != nil {
		t.Fatal(err)
	}
	if !mapped.Mapped() {
		t.Fatal("trace built over a mapping does not report Mapped")
	}
	for i := int64(0); i < tr.Len(); i += 101 {
		if a, b := mapped.At(i), tr.At(i); a != b {
			t.Fatalf("instruction %d differs after mmap round trip", i)
		}
	}
	// Unlinking the file must not invalidate the mapping (the inode
	// stays alive), mirroring what a concurrent store rewrite does.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if got := mapped.At(0); got != tr.At(0) {
		t.Fatalf("mapped trace changed after unlink: %+v", got)
	}
}

func TestOpenMappedMissingFile(t *testing.T) {
	if _, err := OpenMapped(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("OpenMapped of a missing file succeeded")
	}
}
