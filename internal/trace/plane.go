package trace

import (
	"bytes"
	"math/bits"
)

// Annotation planes are immutable per-instruction side columns aligned
// with a Trace's chunk geometry: plane entry i annotates trace
// instruction i, and the data is chunked exactly like the hot columns
// (1<<ChunkShift entries per chunk) so a consumer walking the trace
// chunk by chunk indexes the matching plane chunk with the same j.
//
// Planes record *machine events* that are a pure function of (trace,
// machine component) — cache/TLB outcome classes of one hierarchy,
// mispredict flags of one predictor — computed once by an annotation
// pass and then replayed by timing-only simulations (see
// pipeline.SimulateAnnotated). Two encodings exist: BytePlane (one
// byte per instruction) and BitPlane (one bit per instruction).

// Memory-event class bits of a cache annotation byte. The low three
// bits describe the instruction fetch, the next three the data access
// (meaningful only for loads/stores). A zero byte is the common
// all-hit case. The "L2 miss" bits are qualified by the corresponding
// L1-miss bit: latency decode is
//
//	extra = walk·TLBMiss + (L1Miss ? (L2Miss ? l2miss : l2hit) : 0)
//
// evaluated independently for the I and D halves.
const (
	AnnITLBMiss uint8 = 1 << iota // ITLB walk on the fetch
	AnnIL1Miss                    // fetch missed L1-I
	AnnIL2Miss                    // ... and missed L2 too
	AnnDTLBMiss                   // DTLB walk on the data access
	AnnDL1Miss                    // data access missed L1-D
	AnnDL2Miss                    // ... and missed L2 too
)

// AnnDShift right-shifts a cache annotation byte so its data-side bits
// occupy the same positions as the instruction-side bits, letting both
// halves share one 8-entry latency table.
const AnnDShift = 3

// AnnSideMask masks one (I or D) half of a cache annotation byte after
// shifting.
const AnnSideMask = 0x7

// BytePlane is an immutable per-instruction byte column. Built once
// via BytePlaneBuilder, it is safe for concurrent readers.
type BytePlane struct {
	chunks [][]uint8
	n      int64

	// owner pins the memory mapping backing the chunk slices of a
	// mapped plane (see MapBytePlane); nil otherwise.
	owner *Mapping
}

// Len returns the number of annotated instructions.
func (p *BytePlane) Len() int64 {
	if p == nil {
		return 0
	}
	return p.n
}

// Chunks returns the per-chunk byte columns, aligned with
// Trace.Chunks(). The slices must not be modified.
func (p *BytePlane) Chunks() [][]uint8 {
	if p == nil {
		return nil
	}
	return p.chunks
}

// At returns the annotation byte of instruction i.
func (p *BytePlane) At(i int64) uint8 {
	if i < 0 || i >= p.Len() {
		panic("trace: BytePlane.At index out of range")
	}
	return p.chunks[i>>ChunkShift][i&ChunkMask]
}

// SizeBytes returns the plane's memory footprint (full chunk
// capacity).
func (p *BytePlane) SizeBytes() int64 {
	if p == nil {
		return 0
	}
	var sz int64
	for _, c := range p.chunks {
		sz += int64(cap(c))
	}
	return sz
}

// Equal reports whether two planes annotate the same number of
// instructions with identical bytes. Planes computed for different
// machine components frequently coincide (e.g. two L2 geometries large
// enough that the trace's misses are all cold), and equal planes drive
// a timing replay to identical results — callers canonicalize on this
// to share replays.
func (p *BytePlane) Equal(q *BytePlane) bool {
	if p.Len() != q.Len() {
		return false
	}
	for i, c := range p.Chunks() {
		qc := q.chunks[i]
		nb := int(min64(p.n-int64(i)<<ChunkShift, ChunkLen))
		if !bytes.Equal(c[:nb], qc[:nb]) {
			return false
		}
	}
	return true
}

// Equal reports whether two bit planes are identical (see
// BytePlane.Equal).
func (p *BitPlane) Equal(q *BitPlane) bool {
	if p.Len() != q.Len() {
		return false
	}
	for i, ws := range p.Chunks() {
		qw := q.chunks[i]
		for k, w := range ws {
			if w != qw[k] {
				return false
			}
		}
	}
	return true
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// BytePlaneBuilder accumulates a BytePlane chunk by chunk; appends
// never copy existing data.
type BytePlaneBuilder struct {
	p BytePlane
}

// NewBytePlaneBuilder returns an empty builder.
func NewBytePlaneBuilder() *BytePlaneBuilder { return &BytePlaneBuilder{} }

// Append records the annotation byte of the next instruction.
func (b *BytePlaneBuilder) Append(v uint8) {
	j := int(b.p.n & ChunkMask)
	if j == 0 {
		b.p.chunks = append(b.p.chunks, make([]uint8, ChunkLen))
	}
	b.p.chunks[len(b.p.chunks)-1][j] = v
	b.p.n++
}

// Len returns the number of bytes appended so far.
func (b *BytePlaneBuilder) Len() int64 { return b.p.n }

// Plane returns the built plane. The builder and plane share storage;
// finish appending before publishing the plane to other goroutines.
func (b *BytePlaneBuilder) Plane() *BytePlane { return &b.p }

// bitChunkWords is the number of 64-bit words backing one chunk of a
// BitPlane.
const bitChunkWords = ChunkLen / 64

// BitPlane is an immutable per-instruction bit column (1 bit per
// instruction, chunk-aligned with the trace).
type BitPlane struct {
	chunks [][]uint64
	n      int64
}

// Len returns the number of annotated instructions.
func (p *BitPlane) Len() int64 {
	if p == nil {
		return 0
	}
	return p.n
}

// Chunks returns the per-chunk bit words, aligned with Trace.Chunks():
// instruction j of chunk c is bit j&63 of word j>>6.
func (p *BitPlane) Chunks() [][]uint64 {
	if p == nil {
		return nil
	}
	return p.chunks
}

// Get returns the bit of instruction i.
func (p *BitPlane) Get(i int64) bool {
	if i < 0 || i >= p.Len() {
		panic("trace: BitPlane.Get index out of range")
	}
	j := i & ChunkMask
	return p.chunks[i>>ChunkShift][j>>6]&(1<<uint(j&63)) != 0
}

// SizeBytes returns the plane's memory footprint (full chunk
// capacity).
func (p *BitPlane) SizeBytes() int64 {
	if p == nil {
		return 0
	}
	var sz int64
	for _, ws := range p.chunks {
		sz += int64(cap(ws)) * 8
	}
	return sz
}

// Count returns the number of set bits.
func (p *BitPlane) Count() int64 {
	if p == nil {
		return 0
	}
	var n int64
	for _, ws := range p.chunks {
		for _, w := range ws {
			n += int64(bits.OnesCount64(w))
		}
	}
	return n
}

// BitPlaneBuilder accumulates a BitPlane in append order.
type BitPlaneBuilder struct {
	p BitPlane
}

// NewBitPlaneBuilder returns an empty builder.
func NewBitPlaneBuilder() *BitPlaneBuilder { return &BitPlaneBuilder{} }

// Append records the bit of the next instruction.
func (b *BitPlaneBuilder) Append(v bool) {
	j := b.p.n & ChunkMask
	if j == 0 {
		b.p.chunks = append(b.p.chunks, make([]uint64, bitChunkWords))
	}
	if v {
		b.p.chunks[len(b.p.chunks)-1][j>>6] |= 1 << uint(j&63)
	}
	b.p.n++
}

// Len returns the number of bits appended so far.
func (b *BitPlaneBuilder) Len() int64 { return b.p.n }

// Plane returns the built plane (shares storage with the builder).
func (b *BitPlaneBuilder) Plane() *BitPlane { return &b.p }
