package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/isa"
)

// buildTestTrace synthesizes a deterministic trace exercising every
// column, spanning several chunks (including a partial last chunk).
func buildTestTrace(n int64) *Trace {
	b := NewBuilder()
	var d DynInst
	s := uint64(0x9E3779B97F4A7C15)
	for i := int64(0); i < n; i++ {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		r := s * 0x2545F4914F6CDD1D
		d = DynInst{
			Seq:      i,
			PC:       int64(uint32(r) % 5000),
			Op:       isa.Op(r % uint64(isa.NumOps)),
			Class:    isa.Class(r % uint64(isa.NumClasses)),
			Dst:      isa.Reg(r % isa.NumRegs),
			HasDst:   r&1 != 0,
			Src:      [2]isa.Reg{isa.Reg((r >> 8) % isa.NumRegs), isa.Reg((r >> 16) % isa.NumRegs)},
			NumSrc:   int(r % 3),
			EffAddr:  int64(r >> 24),
			Taken:    r&2 != 0,
			Target:   int64(uint32(r>>4) % 5000),
			IsLoad:   r&4 != 0,
			IsStore:  r&8 != 0,
			IsBranch: r&16 != 0,
			IsJump:   r&32 != 0,
		}
		if d.Taken {
			d.NextPC = d.Target
		} else {
			d.NextPC = d.PC + 1
		}
		b.Append(&d)
	}
	return b.Trace()
}

func TestTraceCodecRoundTripBitIdentity(t *testing.T) {
	for _, n := range []int64{0, 1, ChunkLen - 1, ChunkLen, ChunkLen + 1, 2*ChunkLen + 777} {
		tr := buildTestTrace(n)
		var buf bytes.Buffer
		wrote, err := tr.WriteTo(&buf)
		if err != nil {
			t.Fatalf("n=%d: WriteTo: %v", n, err)
		}
		if wrote != tr.EncodedSize() {
			t.Fatalf("n=%d: WriteTo wrote %d bytes, EncodedSize says %d", n, wrote, tr.EncodedSize())
		}
		got, err := ReadTraceFrom(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("n=%d: ReadTraceFrom: %v", n, err)
		}
		if got.Len() != tr.Len() {
			t.Fatalf("n=%d: Len = %d, want %d", n, got.Len(), tr.Len())
		}
		if got.SizeBytes() != tr.SizeBytes() {
			t.Fatalf("n=%d: SizeBytes = %d, want %d (chunk capacity must match the builder's)", n, got.SizeBytes(), tr.SizeBytes())
		}
		for i := int64(0); i < n; i++ {
			if a, b := tr.At(i), got.At(i); a != b {
				t.Fatalf("n=%d: instruction %d differs after round trip:\n  wrote %+v\n  read  %+v", n, i, a, b)
			}
		}
		// Re-encoding the decoded trace must be byte-identical: the
		// artifact store's content addressing depends on it.
		var buf2 bytes.Buffer
		if _, err := got.WriteTo(&buf2); err != nil {
			t.Fatalf("n=%d: re-encode: %v", n, err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("n=%d: re-encoded stream differs from original", n)
		}
	}
}

func TestTraceCodecRejectsCorruption(t *testing.T) {
	tr := buildTestTrace(ChunkLen + 123)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()

	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{4, len(enc) / 2, len(enc) - 1} {
			if _, err := ReadTraceFrom(bytes.NewReader(enc[:cut])); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("truncation at %d: err = %v, want ErrCorrupt", cut, err)
			}
		}
	})
	t.Run("flipped-byte", func(t *testing.T) {
		// Flip one byte inside the first chunk's payload: the chunk
		// checksum must catch it.
		bad := append([]byte(nil), enc...)
		bad[8+100] ^= 0xFF
		if _, err := ReadTraceFrom(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flipped payload byte: err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("flipped-crc", func(t *testing.T) {
		bad := append([]byte(nil), enc...)
		bad[len(bad)-1] ^= 0xFF // last chunk's CRC trailer
		if _, err := ReadTraceFrom(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flipped CRC byte: err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("negative-length", func(t *testing.T) {
		bad := append([]byte(nil), enc...)
		for i := 0; i < 8; i++ {
			bad[i] = 0xFF
		}
		if _, err := ReadTraceFrom(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("negative length: err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("implausible-length", func(t *testing.T) {
		// A forged header declaring an astronomically long stream must
		// be rejected as corrupt before any allocation sized from it
		// (not panic or OOM).
		bad := append([]byte(nil), enc...)
		binary.LittleEndian.PutUint64(bad[:8], 1<<50)
		if _, err := ReadTraceFrom(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("implausible length: err = %v, want ErrCorrupt", err)
		}
		if _, err := ReadBytePlaneFrom(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("implausible byte-plane length: err = %v, want ErrCorrupt", err)
		}
		if _, err := ReadBitPlaneFrom(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("implausible bit-plane length: err = %v, want ErrCorrupt", err)
		}
	})
}

func TestBytePlaneCodecRoundTrip(t *testing.T) {
	for _, n := range []int64{0, 1, ChunkLen, ChunkLen + 99} {
		b := NewBytePlaneBuilder()
		for i := int64(0); i < n; i++ {
			b.Append(uint8(i*31 + 7))
		}
		p := b.Plane()
		var buf bytes.Buffer
		wrote, err := p.WriteTo(&buf)
		if err != nil {
			t.Fatalf("n=%d: WriteTo: %v", n, err)
		}
		if wrote != p.EncodedSize() {
			t.Fatalf("n=%d: wrote %d, EncodedSize %d", n, wrote, p.EncodedSize())
		}
		got, err := ReadBytePlaneFrom(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("n=%d: ReadBytePlaneFrom: %v", n, err)
		}
		if !got.Equal(p) || got.SizeBytes() != p.SizeBytes() {
			t.Fatalf("n=%d: decoded plane differs (equal=%v, size %d vs %d)", n, got.Equal(p), got.SizeBytes(), p.SizeBytes())
		}
	}
}

func TestBytePlaneCodecRejectsCorruption(t *testing.T) {
	b := NewBytePlaneBuilder()
	for i := 0; i < ChunkLen+5; i++ {
		b.Append(uint8(i))
	}
	var buf bytes.Buffer
	if _, err := b.Plane().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	bad := append([]byte(nil), enc...)
	bad[8+17] ^= 0x01
	if _, err := ReadBytePlaneFrom(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped byte: err = %v, want ErrCorrupt", err)
	}
	if _, err := ReadBytePlaneFrom(bytes.NewReader(enc[:len(enc)-2])); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated: err = %v, want ErrCorrupt", err)
	}
}

func TestBitPlaneCodecRoundTrip(t *testing.T) {
	for _, n := range []int64{0, 1, 63, 64, ChunkLen, ChunkLen + 65} {
		b := NewBitPlaneBuilder()
		for i := int64(0); i < n; i++ {
			b.Append(i%3 == 0 || i%7 == 0)
		}
		p := b.Plane()
		var buf bytes.Buffer
		wrote, err := p.WriteTo(&buf)
		if err != nil {
			t.Fatalf("n=%d: WriteTo: %v", n, err)
		}
		if wrote != p.EncodedSize() {
			t.Fatalf("n=%d: wrote %d, EncodedSize %d", n, wrote, p.EncodedSize())
		}
		got, err := ReadBitPlaneFrom(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("n=%d: ReadBitPlaneFrom: %v", n, err)
		}
		if !got.Equal(p) || got.Count() != p.Count() || got.SizeBytes() != p.SizeBytes() {
			t.Fatalf("n=%d: decoded bit plane differs", n)
		}
	}
}

func TestBitPlaneCodecRejectsCorruption(t *testing.T) {
	b := NewBitPlaneBuilder()
	for i := 0; i < ChunkLen+100; i++ {
		b.Append(i%2 == 0)
	}
	var buf bytes.Buffer
	if _, err := b.Plane().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	bad := append([]byte(nil), enc...)
	bad[8+3] ^= 0x80
	if _, err := ReadBitPlaneFrom(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped byte: err = %v, want ErrCorrupt", err)
	}
	if _, err := ReadBitPlaneFrom(bytes.NewReader(enc[:9])); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated: err = %v, want ErrCorrupt", err)
	}
}
