package trace

import (
	"fmt"
	"os"
	"runtime"
)

// Mapping is a read-only memory mapping of an encoded artifact file.
// It backs the zero-copy rehydration path: MapTrace and MapBytePlane
// build column stores whose hot slices alias the mapped bytes instead
// of decode-and-copy, so a warm boot touches only the pages it reads
// and shares them with every other process mapping the same file.
//
// The mapping is released by the garbage collector once the Mapping —
// and every store aliasing it (each holds an owner reference) — is
// unreachable. Close releases it eagerly; it is only safe when no
// mapped store is alive, so production code calls it solely on load
// error paths before any alias has been handed out.
//
// The artifact store writes files with an atomic temp-file + rename,
// so a concurrent re-save of the same key replaces the directory entry
// while this mapping keeps the old inode alive — mapped stores never
// observe a file mutating under them. Out-of-band in-place truncation
// is the one hazard mmap cannot checksum away (a later page fault
// faults); the framing and checksum validation at open time is what
// the loaders rely on, exactly like the decode path.
type Mapping struct {
	data []byte
}

// OpenMapped maps path read-only. On platforms without mmap support it
// returns an error and callers fall back to the decode path.
func OpenMapped(path string) (*Mapping, error) {
	if !mmapSupported {
		return nil, fmt.Errorf("trace: memory-mapped loads unsupported on %s", runtime.GOOS)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size <= 0 || size != int64(int(size)) {
		return nil, fmt.Errorf("trace: cannot map %s: size %d", path, size)
	}
	data, err := mmapFile(f, int(size))
	if err != nil {
		return nil, fmt.Errorf("trace: mapping %s: %w", path, err)
	}
	m := &Mapping{data: data}
	runtime.SetFinalizer(m, (*Mapping).Close)
	return m, nil
}

// Bytes returns the mapped file contents. The slice is read-only
// (PROT_READ): writing through it faults.
func (m *Mapping) Bytes() []byte { return m.data }

// Close unmaps the file. Unsafe while any store built over this
// mapping is still reachable — see the type comment.
func (m *Mapping) Close() error {
	if m == nil || m.data == nil {
		return nil
	}
	data := m.data
	m.data = nil
	runtime.SetFinalizer(m, nil)
	return munmapBytes(data)
}
