package trace

import (
	"context"

	"repro/internal/isa"
)

// Trace is the compact in-memory trace store: a chunked, columnar
// (structure-of-arrays) encoding of the dynamic instruction stream.
// Compared with []DynInst it drops the derivable fields — Seq is
// implicit in position, NextPC follows from the taken flag and target —
// and packs the six booleans plus the source count into one flag byte,
// for roughly 22 bytes per instruction instead of 72. Hot columns (PC,
// Op/Class, flags, EffAddr) are contiguous within each chunk, so
// replay and detailed simulation scan cache-friendly arrays instead of
// striding through 72-byte records.
//
// A Trace is built once through a Builder and is immutable (and safe
// for concurrent readers) afterwards. Three access paths exist:
//
//   - Replay streams reconstructed *DynInst records to a Consumer —
//     the compatibility path every existing collector uses.
//   - Cursor/Columns iterate chunk by chunk with zero allocation,
//     exposing the raw columns for batch consumers.
//   - At / Materialize reconstruct individual records or the whole
//     legacy slice (the seedref differential-test adapter).
type Trace struct {
	chunks []Columns
	n      int64

	// owner pins the memory mapping whose pages back this trace's
	// single-byte column slices (see MapTrace); nil for traces built
	// in memory or decoded by ReadTraceFrom. Holding the reference
	// keeps the mapping's finalizer from unmapping under a live trace.
	owner *Mapping
}

// Chunk geometry: 1<<ChunkShift instructions per chunk. Random access
// is two shifts; a chunk's columns total ~360 KiB, comfortably inside
// L2, and small traces waste at most one partial chunk.
const (
	ChunkShift = 14
	ChunkLen   = 1 << ChunkShift
	ChunkMask  = ChunkLen - 1
)

// Flag bits of the packed per-instruction flag byte. Bits 6–7 hold
// NumSrc (0..2).
const (
	FlagHasDst uint8 = 1 << iota
	FlagTaken
	FlagLoad
	FlagStore
	FlagBranch
	FlagJump
)

// NumSrcShift is the bit offset of the 2-bit source count within the
// flag byte.
const NumSrcShift = 6

// Columns is the raw column view of one chunk. Entries [0, N) are
// valid; Base is the dynamic sequence number (= trace index) of entry
// 0. PC and Target are static instruction indices and fit in 32 bits
// by construction (instruction memory is an in-memory Go slice).
type Columns struct {
	Base int64
	N    int

	PC      []int32
	Op      []isa.Op
	Class   []isa.Class
	Flags   []uint8
	Dst     []isa.Reg
	Src1    []isa.Reg
	Src2    []isa.Reg
	EffAddr []int64
	Target  []int32
}

// Decode reconstructs entry j into d. The derived fields follow the
// functional simulator's invariants: Seq is Base+j and NextPC is the
// target when the taken flag is set, the fall-through PC otherwise.
func (ck *Columns) Decode(j int, d *DynInst) {
	fl := ck.Flags[j]
	pc := int64(ck.PC[j])
	tgt := int64(ck.Target[j])
	d.Seq = ck.Base + int64(j)
	d.PC = pc
	d.Op = ck.Op[j]
	d.Class = ck.Class[j]
	d.Dst = ck.Dst[j]
	d.HasDst = fl&FlagHasDst != 0
	d.Src[0] = ck.Src1[j]
	d.Src[1] = ck.Src2[j]
	d.NumSrc = int(fl >> NumSrcShift)
	d.EffAddr = ck.EffAddr[j]
	d.Taken = fl&FlagTaken != 0
	d.Target = tgt
	if fl&FlagTaken != 0 {
		d.NextPC = tgt
	} else {
		d.NextPC = pc + 1
	}
	d.IsLoad = fl&FlagLoad != 0
	d.IsStore = fl&FlagStore != 0
	d.IsBranch = fl&FlagBranch != 0
	d.IsJump = fl&FlagJump != 0
}

// Len returns the number of recorded instructions. A nil Trace is
// empty.
func (t *Trace) Len() int64 {
	if t == nil {
		return 0
	}
	return t.n
}

// NumChunks returns the number of chunks.
func (t *Trace) NumChunks() int {
	if t == nil {
		return 0
	}
	return len(t.chunks)
}

// Chunks returns the chunk views. The returned slice and its columns
// must not be modified.
func (t *Trace) Chunks() []Columns {
	if t == nil {
		return nil
	}
	return t.chunks
}

// At reconstructs instruction i; i must be in [0, Len()). Chunks are
// allocated at full capacity, so without this check an out-of-range i
// in the last chunk would silently decode a zeroed record.
func (t *Trace) At(i int64) DynInst {
	if i < 0 || i >= t.Len() {
		panic("trace: At index out of range")
	}
	var d DynInst
	t.chunks[i>>ChunkShift].Decode(int(i&ChunkMask), &d)
	return d
}

// Cursor returns a zero-allocation chunk iterator.
func (t *Trace) Cursor() Cursor {
	if t == nil {
		return Cursor{}
	}
	return Cursor{chunks: t.chunks}
}

// Cursor iterates a Trace chunk by chunk without allocating.
type Cursor struct {
	chunks []Columns
	i      int
}

// Next returns the next chunk view, or false when exhausted.
func (c *Cursor) Next() (*Columns, bool) {
	if c.i >= len(c.chunks) {
		return nil, false
	}
	ck := &c.chunks[c.i]
	c.i++
	return ck, true
}

// Replay streams every instruction to sink as a reconstructed
// *DynInst, reusing one record — the compatibility path for
// per-instruction consumers. The record must not be retained across
// calls (copy it, as Recorder does).
func (t *Trace) Replay(sink Consumer) {
	var d DynInst
	for cur := t.Cursor(); ; {
		ck, ok := cur.Next()
		if !ok {
			return
		}
		for j := 0; j < ck.N; j++ {
			ck.Decode(j, &d)
			sink.Consume(&d)
		}
	}
}

// ReplayCtx is Replay under a context: cancellation is observed
// between chunks (within one 16K-instruction chunk the hot loop runs
// uninterrupted), returning ctx.Err() without visiting the remaining
// chunks. A completed replay is indistinguishable from Replay's — the
// check never alters what sink observes.
func (t *Trace) ReplayCtx(ctx context.Context, sink Consumer) error {
	done := ctx.Done()
	var d DynInst
	for cur := t.Cursor(); ; {
		select {
		case <-done:
			return ctx.Err()
		default:
		}
		ck, ok := cur.Next()
		if !ok {
			return nil
		}
		for j := 0; j < ck.N; j++ {
			ck.Decode(j, &d)
			sink.Consume(&d)
		}
	}
}

// Materialize reconstructs the legacy array-of-structs trace. It is
// the adapter for the verbatim seed-reference simulator
// (internal/pipeline/seedref) and for differential tests; production
// paths read columns instead.
func (t *Trace) Materialize() []DynInst {
	out := make([]DynInst, t.Len())
	i := 0
	for cur := t.Cursor(); ; {
		ck, ok := cur.Next()
		if !ok {
			return out
		}
		for j := 0; j < ck.N; j++ {
			ck.Decode(j, &out[i])
			i++
		}
	}
}

// SizeBytes returns the memory footprint of the column data, counting
// full chunk capacity (partial last chunks are accounted at their
// allocated size).
func (t *Trace) SizeBytes() int64 {
	if t == nil {
		return 0
	}
	var sz int64
	for i := range t.chunks {
		ck := &t.chunks[i]
		sz += int64(cap(ck.PC))*4 + int64(cap(ck.Target))*4 + int64(cap(ck.EffAddr))*8 +
			int64(cap(ck.Op)) + int64(cap(ck.Class)) + int64(cap(ck.Flags)) +
			int64(cap(ck.Dst)) + int64(cap(ck.Src1)) + int64(cap(ck.Src2))
	}
	return sz
}

// Of builds a Trace from explicit records; intended for tests.
func Of(ds ...DynInst) *Trace {
	b := NewBuilder()
	for i := range ds {
		b.Append(&ds[i])
	}
	return b.Trace()
}

// Builder accumulates a Trace chunk by chunk: appends never copy
// existing data (no doubling growth), so no sizing pre-pass is needed.
// It implements Consumer, so it can sit directly on the functional
// simulator's sink.
type Builder struct {
	t Trace
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// Len returns the number of instructions appended so far.
func (b *Builder) Len() int64 { return b.t.n }

// Append encodes d at the next position. Seq and NextPC are not
// stored: Seq is implicit in position and NextPC is re-derived on
// decode from the taken flag, target and PC (the invariant every
// funcsim-produced record satisfies).
func (b *Builder) Append(d *DynInst) {
	cs := b.t.chunks
	if len(cs) == 0 || cs[len(cs)-1].N == ChunkLen {
		b.t.chunks = append(cs, newChunk(b.t.n))
		cs = b.t.chunks
	}
	ck := &cs[len(cs)-1]
	j := ck.N
	ck.PC[j] = int32(d.PC)
	ck.Op[j] = d.Op
	ck.Class[j] = d.Class
	fl := uint8(d.NumSrc) << NumSrcShift
	if d.HasDst {
		fl |= FlagHasDst
	}
	if d.Taken {
		fl |= FlagTaken
	}
	if d.IsLoad {
		fl |= FlagLoad
	}
	if d.IsStore {
		fl |= FlagStore
	}
	if d.IsBranch {
		fl |= FlagBranch
	}
	if d.IsJump {
		fl |= FlagJump
	}
	ck.Flags[j] = fl
	ck.Dst[j] = d.Dst
	ck.Src1[j] = d.Src[0]
	ck.Src2[j] = d.Src[1]
	ck.EffAddr[j] = d.EffAddr
	ck.Target[j] = int32(d.Target)
	ck.N = j + 1
	b.t.n++
}

// Consume implements Consumer.
func (b *Builder) Consume(d *DynInst) { b.Append(d) }

// Trace returns the built trace. The pointer stays valid across
// further appends (the builder and the trace share storage); callers
// that need a stable snapshot should finish appending first.
func (b *Builder) Trace() *Trace { return &b.t }

func newChunk(base int64) Columns {
	return Columns{
		Base:    base,
		PC:      make([]int32, ChunkLen),
		Op:      make([]isa.Op, ChunkLen),
		Class:   make([]isa.Class, ChunkLen),
		Flags:   make([]uint8, ChunkLen),
		Dst:     make([]isa.Reg, ChunkLen),
		Src1:    make([]isa.Reg, ChunkLen),
		Src2:    make([]isa.Reg, ChunkLen),
		EffAddr: make([]int64, ChunkLen),
		Target:  make([]int32, ChunkLen),
	}
}
