package trace

import "testing"

func TestBytePlaneRoundTrip(t *testing.T) {
	b := NewBytePlaneBuilder()
	n := int64(ChunkLen + 1000) // cross a chunk boundary
	for i := int64(0); i < n; i++ {
		b.Append(uint8(i % 251))
	}
	p := b.Plane()
	if p.Len() != n {
		t.Fatalf("Len = %d, want %d", p.Len(), n)
	}
	for i := int64(0); i < n; i++ {
		if got := p.At(i); got != uint8(i%251) {
			t.Fatalf("At(%d) = %d, want %d", i, got, uint8(i%251))
		}
	}
	if len(p.Chunks()) != 2 {
		t.Errorf("chunks = %d, want 2", len(p.Chunks()))
	}
	if p.SizeBytes() != 2*ChunkLen {
		t.Errorf("SizeBytes = %d, want %d", p.SizeBytes(), 2*ChunkLen)
	}
	// Chunk-aligned access: entry i is chunk i>>ChunkShift, offset
	// i&ChunkMask — the same indexing the trace's hot columns use.
	i := int64(ChunkLen + 123)
	if got := p.Chunks()[i>>ChunkShift][i&ChunkMask]; got != uint8(i%251) {
		t.Errorf("chunk access = %d, want %d", got, uint8(i%251))
	}
}

func TestBytePlaneAtPanicsOutOfRange(t *testing.T) {
	b := NewBytePlaneBuilder()
	b.Append(1)
	defer func() {
		if recover() == nil {
			t.Error("At(1) on length-1 plane did not panic")
		}
	}()
	b.Plane().At(1)
}

func TestBitPlaneRoundTrip(t *testing.T) {
	b := NewBitPlaneBuilder()
	n := int64(ChunkLen + 777)
	set := func(i int64) bool { return i%17 == 3 || i%64 == 63 }
	var want int64
	for i := int64(0); i < n; i++ {
		b.Append(set(i))
		if set(i) {
			want++
		}
	}
	p := b.Plane()
	if p.Len() != n {
		t.Fatalf("Len = %d, want %d", p.Len(), n)
	}
	for i := int64(0); i < n; i++ {
		if p.Get(i) != set(i) {
			t.Fatalf("Get(%d) = %v, want %v", i, p.Get(i), set(i))
		}
	}
	if p.Count() != want {
		t.Errorf("Count = %d, want %d", p.Count(), want)
	}
}

func TestPlaneEqual(t *testing.T) {
	build := func(n int64, f func(int64) uint8) *BytePlane {
		b := NewBytePlaneBuilder()
		for i := int64(0); i < n; i++ {
			b.Append(f(i))
		}
		return b.Plane()
	}
	n := int64(ChunkLen + 5)
	a := build(n, func(i int64) uint8 { return uint8(i) })
	bb := build(n, func(i int64) uint8 { return uint8(i) })
	if !a.Equal(bb) {
		t.Error("identical planes not Equal")
	}
	c := build(n, func(i int64) uint8 {
		if i == n-1 {
			return 99
		}
		return uint8(i)
	})
	if a.Equal(c) {
		t.Error("planes differing in the last (partial-chunk) entry compare Equal")
	}
	if a.Equal(build(n-1, func(i int64) uint8 { return uint8(i) })) {
		t.Error("planes of different length compare Equal")
	}

	bp1 := NewBitPlaneBuilder()
	bp2 := NewBitPlaneBuilder()
	bp3 := NewBitPlaneBuilder()
	for i := int64(0); i < n; i++ {
		bp1.Append(i%5 == 0)
		bp2.Append(i%5 == 0)
		bp3.Append(i%5 == 1)
	}
	if !bp1.Plane().Equal(bp2.Plane()) {
		t.Error("identical bit planes not Equal")
	}
	if bp1.Plane().Equal(bp3.Plane()) {
		t.Error("different bit planes compare Equal")
	}
}

func TestNilPlanes(t *testing.T) {
	var bp *BytePlane
	var bt *BitPlane
	if bp.Len() != 0 || bt.Len() != 0 || bp.SizeBytes() != 0 || bt.Count() != 0 {
		t.Error("nil planes not empty")
	}
	if bp.Chunks() != nil || bt.Chunks() != nil {
		t.Error("nil planes expose chunks")
	}
}

// TestAnnLatencyBits pins the annotation byte layout the cache
// annotator writes and the pipeline's latency decode reads: the D-side
// bits are the I-side bits shifted by AnnDShift.
func TestAnnLatencyBits(t *testing.T) {
	if AnnDTLBMiss != AnnITLBMiss<<AnnDShift ||
		AnnDL1Miss != AnnIL1Miss<<AnnDShift ||
		AnnDL2Miss != AnnIL2Miss<<AnnDShift {
		t.Error("D-side annotation bits are not the I-side bits shifted by AnnDShift")
	}
	full := AnnITLBMiss | AnnIL1Miss | AnnIL2Miss | AnnDTLBMiss | AnnDL1Miss | AnnDL2Miss
	if full>>AnnDShift&AnnSideMask != AnnITLBMiss|AnnIL1Miss|AnnIL2Miss {
		t.Error("AnnSideMask does not isolate one side")
	}
}
