// Package trace defines the dynamic-instruction record produced by the
// functional simulator and consumed by the profiler, the cache and
// branch-predictor simulators and the detailed pipeline simulator.
//
// Traces are streamed through a callback (Consumer) during execution —
// a single profiling pass feeds several consumers at once (see Tee) —
// and materialized in the chunked, columnar Trace store (see store.go)
// for replay across every machine configuration of interest. The
// DynInst struct remains the per-instruction exchange record; Trace is
// its compact resting form.
package trace

import "repro/internal/isa"

// DynInst is one dynamically executed instruction.
type DynInst struct {
	Seq   int64     // dynamic sequence number, starting at 0
	PC    int64     // static instruction index (word-addressed I-memory)
	Op    isa.Op    // opcode
	Class isa.Class // precomputed class of Op

	Dst      isa.Reg    // destination register (valid if HasDst)
	HasDst   bool       // writes a register
	Src      [2]isa.Reg // source registers actually read
	NumSrc   int        // number of valid entries in Src
	EffAddr  int64      // effective word address for loads/stores
	Taken    bool       // for control instructions: taken?
	Target   int64      // for control instructions: target PC
	NextPC   int64      // PC of the next dynamic instruction
	IsLoad   bool
	IsStore  bool
	IsBranch bool // conditional branch
	IsJump   bool // unconditional control
}

// Consumer receives a stream of dynamic instructions.
type Consumer interface {
	// Consume observes one dynamic instruction.
	Consume(*DynInst)
}

// ConsumerFunc adapts a function to the Consumer interface.
type ConsumerFunc func(*DynInst)

// Consume calls f(d).
func (f ConsumerFunc) Consume(d *DynInst) { f(d) }

// Tee fans one stream out to several consumers in order.
type Tee []Consumer

// Consume forwards d to every consumer.
func (t Tee) Consume(d *DynInst) {
	for _, c := range t {
		c.Consume(d)
	}
}

// Recorder materializes a trace in memory; intended for tests and small
// programs only.
type Recorder struct {
	Insts []DynInst
}

// Consume appends a copy of d.
func (r *Recorder) Consume(d *DynInst) { r.Insts = append(r.Insts, *d) }

// Counter counts dynamic instructions by class.
type Counter struct {
	Total   int64
	ByClass [isa.NumClasses]int64
}

// Consume tallies d.
func (c *Counter) Consume(d *DynInst) {
	c.Total++
	c.ByClass[d.Class]++
}
