//go:build !(linux || darwin || freebsd || netbsd || openbsd || dragonfly)

package trace

import (
	"errors"
	"os"
)

const mmapSupported = false

var errNoMmap = errors.New("trace: mmap unsupported")

func mmapFile(f *os.File, size int) ([]byte, error) {
	return nil, errNoMmap
}

func munmapBytes(b []byte) error {
	return nil
}
