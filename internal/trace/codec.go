package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"unsafe"

	"repro/internal/isa"
)

// Binary codecs for the columnar stores: Trace, BytePlane and BitPlane
// serialize to a compact, deterministic little-endian stream and
// deserialize to bit-identical in-memory objects. The encoding is a
// pure function of the logical contents — no timestamps, no pointers,
// no map iteration — so two processes that profile the same workload
// write byte-identical streams, which is what lets the artifact store
// (internal/artifact) content-address them and lets CI assert
// determinism with a plain SHA-256 comparison.
//
// Layout (all integers little-endian):
//
//	Trace:      u64 n, then per chunk: the column arrays in fixed
//	            order (PC i32, Op u8, Class u8, Flags u8, Dst u8,
//	            Src1 u8, Src2 u8, EffAddr i64, Target i32), each
//	            truncated to the chunk's live length, followed by a
//	            u32 CRC-32C of the chunk's encoded bytes.
//	BytePlane:  u64 n, then per chunk: the live bytes + u32 CRC-32C.
//	BitPlane:   u64 n, then per chunk: the live u64 words + u32 CRC-32C.
//
// Derivable framing (chunk count, per-chunk lengths, Base) is not
// stored: it all follows from n and the fixed chunk geometry, so a
// reader can also predict the exact encoded size up front and reject a
// stream whose length disagrees before allocating anything.

// ErrCorrupt is wrapped by every decode failure caused by damaged
// input (bad checksum, impossible length, truncation). Callers that
// fall back to recomputation match it with errors.Is.
var ErrCorrupt = errors.New("trace: corrupt encoded stream")

// crcTable is the Castagnoli table shared by all three codecs.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// maxDecodeLen bounds the entry count a decoder accepts. Real traces
// are millions of instructions; 2^40 is far beyond anything this
// repository can record while still leaving all derived arithmetic
// (chunk counts, per-chunk sizes) comfortably inside int64.
const maxDecodeLen = int64(1) << 40

// decodeLen reads and bounds a stream's u64 entry-count header. The
// decoders additionally never allocate ahead of the stream: chunk
// storage is appended as each chunk's bytes actually arrive and pass
// their checksum, so a forged header cannot cause an allocation larger
// than (a constant factor of) the bytes really present.
func decodeLen(r io.Reader, what string) (int64, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, fmt.Errorf("%w: reading %s header: %v", ErrCorrupt, what, err)
	}
	n := int64(binary.LittleEndian.Uint64(hdr[:]))
	if n < 0 || n > maxDecodeLen {
		return 0, fmt.Errorf("%w: implausible %s length %d", ErrCorrupt, what, uint64(n))
	}
	return n, nil
}

// traceInstBytes is the encoded size of one instruction across all
// columns.
const traceInstBytes = 4 + 1 + 1 + 1 + 1 + 1 + 1 + 8 + 4

// chunkCount returns the number of chunks holding n entries.
func chunkCount(n int64) int64 {
	return (n + ChunkLen - 1) >> ChunkShift
}

// chunkLive returns the live length of chunk c of an n-entry store.
func chunkLive(n int64, c int64) int {
	live := n - c<<ChunkShift
	if live > ChunkLen {
		live = ChunkLen
	}
	return int(live)
}

// EncodedSize returns the exact number of bytes WriteTo will produce.
func (t *Trace) EncodedSize() int64 {
	n := t.Len()
	return 8 + n*traceInstBytes + 4*chunkCount(n)
}

// WriteTo serializes the trace; it implements io.WriterTo. The stream
// is deterministic: equal traces encode to equal bytes.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(t.Len()))
	if _, err := cw.Write(hdr[:]); err != nil {
		return cw.n, err
	}
	buf := make([]byte, ChunkLen*traceInstBytes+4)
	for ci := range t.Chunks() {
		ck := &t.chunks[ci]
		enc := encodeTraceChunk(buf[:0], ck)
		crc := crc32.Checksum(enc, crcTable)
		enc = binary.LittleEndian.AppendUint32(enc, crc)
		if _, err := cw.Write(enc); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

// encodeTraceChunk appends chunk ck's live columns to dst in the fixed
// column order.
func encodeTraceChunk(dst []byte, ck *Columns) []byte {
	n := ck.N
	for _, v := range ck.PC[:n] {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
	}
	for _, v := range ck.Op[:n] {
		dst = append(dst, uint8(v))
	}
	for _, v := range ck.Class[:n] {
		dst = append(dst, uint8(v))
	}
	dst = append(dst, ck.Flags[:n]...)
	for _, v := range ck.Dst[:n] {
		dst = append(dst, uint8(v))
	}
	for _, v := range ck.Src1[:n] {
		dst = append(dst, uint8(v))
	}
	for _, v := range ck.Src2[:n] {
		dst = append(dst, uint8(v))
	}
	for _, v := range ck.EffAddr[:n] {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
	}
	for _, v := range ck.Target[:n] {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
	}
	return dst
}

// ReadTraceFrom decodes a stream produced by Trace.WriteTo. The
// returned trace is bit-identical to the one that was written —
// chunks are allocated at full capacity exactly like the Builder's, so
// even SizeBytes matches. Damaged input yields an error wrapping
// ErrCorrupt; the reader never allocates more than the stream's
// declared (and length-validated) size.
func ReadTraceFrom(r io.Reader) (*Trace, error) {
	n, err := decodeLen(r, "trace")
	if err != nil {
		return nil, err
	}
	t := &Trace{n: n}
	nc := chunkCount(n)
	buf := make([]byte, ChunkLen*traceInstBytes+4)
	for c := int64(0); c < nc; c++ {
		live := chunkLive(n, c)
		enc := buf[:live*traceInstBytes+4]
		if _, err := io.ReadFull(r, enc); err != nil {
			return nil, fmt.Errorf("%w: trace chunk %d truncated: %v", ErrCorrupt, c, err)
		}
		body, tail := enc[:len(enc)-4], enc[len(enc)-4:]
		if got, want := crc32.Checksum(body, crcTable), binary.LittleEndian.Uint32(tail); got != want {
			return nil, fmt.Errorf("%w: trace chunk %d checksum mismatch (got %08x, want %08x)", ErrCorrupt, c, got, want)
		}
		ck := newChunk(c << ChunkShift)
		ck.N = live
		decodeTraceChunk(body, &ck)
		t.chunks = append(t.chunks, ck)
	}
	return t, nil
}

// decodeTraceChunk fills ck's columns from body (already
// checksum-verified, length exactly ck.N*traceInstBytes).
func decodeTraceChunk(body []byte, ck *Columns) {
	n := ck.N
	off := 0
	for i := 0; i < n; i++ {
		ck.PC[i] = int32(binary.LittleEndian.Uint32(body[off+4*i:]))
	}
	off += 4 * n
	for i := 0; i < n; i++ {
		ck.Op[i] = isa.Op(body[off+i])
	}
	off += n
	for i := 0; i < n; i++ {
		ck.Class[i] = isa.Class(body[off+i])
	}
	off += n
	copy(ck.Flags[:n], body[off:])
	off += n
	for i := 0; i < n; i++ {
		ck.Dst[i] = isa.Reg(body[off+i])
	}
	off += n
	for i := 0; i < n; i++ {
		ck.Src1[i] = isa.Reg(body[off+i])
	}
	off += n
	for i := 0; i < n; i++ {
		ck.Src2[i] = isa.Reg(body[off+i])
	}
	off += n
	for i := 0; i < n; i++ {
		ck.EffAddr[i] = int64(binary.LittleEndian.Uint64(body[off+8*i:]))
	}
	off += 8 * n
	for i := 0; i < n; i++ {
		ck.Target[i] = int32(binary.LittleEndian.Uint32(body[off+4*i:]))
	}
}

// aliasColumn reinterprets a byte slice as a single-byte column type
// without copying. All reinterpreted column types (isa.Op, isa.Class,
// isa.Reg) have underlying type uint8, so alignment and size are
// trivially compatible.
func aliasColumn[T ~uint8](b []byte) []T {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), len(b))
}

// MapTrace builds a Trace directly over an encoded stream pinned in
// memory — the zero-copy counterpart of ReadTraceFrom for artifacts
// rehydrated through a read-only file mapping. The six single-byte
// columns (Op, Class, Flags, Dst, Src1, Src2) alias the mapped bytes;
// the multi-byte columns (PC, EffAddr, Target) are decoded into
// exact-size slices because their in-stream alignment depends on the
// chunk's live length. Column slices are exactly live-sized (no spare
// capacity) and must not be written.
//
// Validation matches the decode path's guarantees at the same
// boundary: the stream length must equal the exact size its header
// implies (which also validates the header itself), and every chunk's
// CRC-32C is verified before the trace is returned — a corrupt stream
// yields ErrCorrupt here, never a trace that fails later, so callers'
// fall-back-to-fresh-profiling logic stays at the load site.
//
// owner, if non-nil, is retained by the returned trace so the mapping
// outlives every alias.
func MapTrace(data []byte, owner *Mapping) (*Trace, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("%w: trace stream shorter than its header", ErrCorrupt)
	}
	n := int64(binary.LittleEndian.Uint64(data))
	if n < 0 || n > maxDecodeLen {
		return nil, fmt.Errorf("%w: implausible trace length %d", ErrCorrupt, uint64(n))
	}
	if want := 8 + n*traceInstBytes + 4*chunkCount(n); int64(len(data)) != want {
		return nil, fmt.Errorf("%w: trace stream is %d bytes, header implies %d", ErrCorrupt, len(data), want)
	}
	t := &Trace{n: n, owner: owner}
	nc := chunkCount(n)
	t.chunks = make([]Columns, 0, nc)
	off := int64(8)
	for c := int64(0); c < nc; c++ {
		live := int64(chunkLive(n, c))
		body := data[off : off+live*traceInstBytes]
		off += live * traceInstBytes
		if got, want := crc32.Checksum(body, crcTable), binary.LittleEndian.Uint32(data[off:]); got != want {
			return nil, fmt.Errorf("%w: trace chunk %d checksum mismatch (got %08x, want %08x)", ErrCorrupt, c, got, want)
		}
		off += 4
		ck := Columns{Base: c << ChunkShift, N: int(live)}
		ck.PC = make([]int32, live)
		for i := range ck.PC {
			ck.PC[i] = int32(binary.LittleEndian.Uint32(body[4*i:]))
		}
		p := 4 * int(live)
		ck.Op = aliasColumn[isa.Op](body[p : p+int(live)])
		p += int(live)
		ck.Class = aliasColumn[isa.Class](body[p : p+int(live)])
		p += int(live)
		ck.Flags = body[p : p+int(live) : p+int(live)]
		p += int(live)
		ck.Dst = aliasColumn[isa.Reg](body[p : p+int(live)])
		p += int(live)
		ck.Src1 = aliasColumn[isa.Reg](body[p : p+int(live)])
		p += int(live)
		ck.Src2 = aliasColumn[isa.Reg](body[p : p+int(live)])
		p += int(live)
		ck.EffAddr = make([]int64, live)
		for i := range ck.EffAddr {
			ck.EffAddr[i] = int64(binary.LittleEndian.Uint64(body[p+8*i:]))
		}
		p += 8 * int(live)
		ck.Target = make([]int32, live)
		for i := range ck.Target {
			ck.Target[i] = int32(binary.LittleEndian.Uint32(body[p+4*i:]))
		}
		t.chunks = append(t.chunks, ck)
	}
	return t, nil
}

// Mapped reports whether this trace's columns alias a file mapping.
func (t *Trace) Mapped() bool { return t != nil && t.owner != nil }

// MapBytePlane builds a BytePlane directly over an encoded stream
// pinned in memory: every chunk aliases the mapped bytes (the plane's
// payload is its live bytes verbatim). Validation mirrors MapTrace:
// exact-size framing plus per-chunk CRC-32C, ErrCorrupt on any
// mismatch.
func MapBytePlane(data []byte, owner *Mapping) (*BytePlane, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("%w: byte-plane stream shorter than its header", ErrCorrupt)
	}
	n := int64(binary.LittleEndian.Uint64(data))
	if n < 0 || n > maxDecodeLen {
		return nil, fmt.Errorf("%w: implausible byte-plane length %d", ErrCorrupt, uint64(n))
	}
	if want := 8 + n + 4*chunkCount(n); int64(len(data)) != want {
		return nil, fmt.Errorf("%w: byte-plane stream is %d bytes, header implies %d", ErrCorrupt, len(data), want)
	}
	p := &BytePlane{n: n, owner: owner}
	nc := chunkCount(n)
	p.chunks = make([][]uint8, 0, nc)
	off := int64(8)
	for c := int64(0); c < nc; c++ {
		live := int64(chunkLive(n, c))
		body := data[off : off+live : off+live]
		off += live
		if got, want := crc32.Checksum(body, crcTable), binary.LittleEndian.Uint32(data[off:]); got != want {
			return nil, fmt.Errorf("%w: byte-plane chunk %d checksum mismatch (got %08x, want %08x)", ErrCorrupt, c, got, want)
		}
		off += 4
		p.chunks = append(p.chunks, body)
	}
	return p, nil
}

// Mapped reports whether this plane's chunks alias a file mapping.
func (p *BytePlane) Mapped() bool { return p != nil && p.owner != nil }

// EncodedSize returns the exact number of bytes WriteTo will produce.
func (p *BytePlane) EncodedSize() int64 {
	n := p.Len()
	return 8 + n + 4*chunkCount(n)
}

// WriteTo serializes the plane; it implements io.WriterTo.
func (p *BytePlane) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(p.Len()))
	if _, err := cw.Write(hdr[:]); err != nil {
		return cw.n, err
	}
	var tail [4]byte
	for c, bytes := range p.Chunks() {
		live := chunkLive(p.n, int64(c))
		body := bytes[:live]
		if _, err := cw.Write(body); err != nil {
			return cw.n, err
		}
		binary.LittleEndian.PutUint32(tail[:], crc32.Checksum(body, crcTable))
		if _, err := cw.Write(tail[:]); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

// ReadBytePlaneFrom decodes a stream produced by BytePlane.WriteTo.
func ReadBytePlaneFrom(r io.Reader) (*BytePlane, error) {
	n, err := decodeLen(r, "byte-plane")
	if err != nil {
		return nil, err
	}
	p := &BytePlane{n: n}
	nc := chunkCount(n)
	var tail [4]byte
	for c := int64(0); c < nc; c++ {
		live := chunkLive(n, c)
		bytes := make([]uint8, ChunkLen)
		body := bytes[:live]
		if _, err := io.ReadFull(r, body); err != nil {
			return nil, fmt.Errorf("%w: byte-plane chunk %d truncated: %v", ErrCorrupt, c, err)
		}
		if _, err := io.ReadFull(r, tail[:]); err != nil {
			return nil, fmt.Errorf("%w: byte-plane chunk %d truncated: %v", ErrCorrupt, c, err)
		}
		if got, want := crc32.Checksum(body, crcTable), binary.LittleEndian.Uint32(tail[:]); got != want {
			return nil, fmt.Errorf("%w: byte-plane chunk %d checksum mismatch (got %08x, want %08x)", ErrCorrupt, c, got, want)
		}
		p.chunks = append(p.chunks, bytes)
	}
	return p, nil
}

// EncodedSize returns the exact number of bytes WriteTo will produce.
func (p *BitPlane) EncodedSize() int64 {
	n := p.Len()
	return 8 + 8*bitChunkWordsLive(n) + 4*chunkCount(n)
}

// bitChunkWordsLive returns the total live word count across all
// chunks of an n-bit plane.
func bitChunkWordsLive(n int64) int64 {
	nc := chunkCount(n)
	if nc == 0 {
		return 0
	}
	full := (nc - 1) * bitChunkWords
	lastBits := n - (nc-1)<<ChunkShift
	return full + (lastBits+63)/64
}

// WriteTo serializes the plane; it implements io.WriterTo.
func (p *BitPlane) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(p.Len()))
	if _, err := cw.Write(hdr[:]); err != nil {
		return cw.n, err
	}
	buf := make([]byte, 8*bitChunkWords+4)
	for c, words := range p.Chunks() {
		liveBits := int64(chunkLive(p.n, int64(c)))
		liveWords := (liveBits + 63) / 64
		enc := buf[:0]
		for _, wd := range words[:liveWords] {
			enc = binary.LittleEndian.AppendUint64(enc, wd)
		}
		crc := crc32.Checksum(enc, crcTable)
		enc = binary.LittleEndian.AppendUint32(enc, crc)
		if _, err := cw.Write(enc); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

// ReadBitPlaneFrom decodes a stream produced by BitPlane.WriteTo.
func ReadBitPlaneFrom(r io.Reader) (*BitPlane, error) {
	n, err := decodeLen(r, "bit-plane")
	if err != nil {
		return nil, err
	}
	p := &BitPlane{n: n}
	nc := chunkCount(n)
	buf := make([]byte, 8*bitChunkWords+4)
	for c := int64(0); c < nc; c++ {
		liveBits := int64(chunkLive(n, c))
		liveWords := int((liveBits + 63) / 64)
		enc := buf[:8*liveWords+4]
		if _, err := io.ReadFull(r, enc); err != nil {
			return nil, fmt.Errorf("%w: bit-plane chunk %d truncated: %v", ErrCorrupt, c, err)
		}
		body, tail := enc[:len(enc)-4], enc[len(enc)-4:]
		if got, want := crc32.Checksum(body, crcTable), binary.LittleEndian.Uint32(tail); got != want {
			return nil, fmt.Errorf("%w: bit-plane chunk %d checksum mismatch (got %08x, want %08x)", ErrCorrupt, c, got, want)
		}
		words := make([]uint64, bitChunkWords)
		for i := 0; i < liveWords; i++ {
			words[i] = binary.LittleEndian.Uint64(body[8*i:])
		}
		p.chunks = append(p.chunks, words)
	}
	return p, nil
}

// countWriter tracks bytes written for the io.WriterTo contract.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(b []byte) (int, error) {
	n, err := c.w.Write(b)
	c.n += int64(n)
	return n, err
}
