package trace

import (
	"testing"

	"repro/internal/isa"
)

func TestTeeFansOutInOrder(t *testing.T) {
	var order []string
	a := ConsumerFunc(func(d *DynInst) { order = append(order, "a") })
	b := ConsumerFunc(func(d *DynInst) { order = append(order, "b") })
	tee := Tee{a, b}
	tee.Consume(&DynInst{})
	tee.Consume(&DynInst{})
	want := []string{"a", "b", "a", "b"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRecorderCopies(t *testing.T) {
	r := &Recorder{}
	d := DynInst{Seq: 1, Op: isa.ADD}
	r.Consume(&d)
	d.Seq = 99 // mutate after consumption
	if r.Insts[0].Seq != 1 {
		t.Error("Recorder aliases the consumed instruction")
	}
}

func TestCounter(t *testing.T) {
	c := &Counter{}
	c.Consume(&DynInst{Class: isa.ClassALU})
	c.Consume(&DynInst{Class: isa.ClassALU})
	c.Consume(&DynInst{Class: isa.ClassLoad})
	if c.Total != 3 {
		t.Errorf("Total = %d, want 3", c.Total)
	}
	if c.ByClass[isa.ClassALU] != 2 || c.ByClass[isa.ClassLoad] != 1 {
		t.Errorf("ByClass = %v", c.ByClass)
	}
}
