package trace_test

import (
	"fmt"
	"testing"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/funcsim"
	"repro/internal/pipeline"
	"repro/internal/pipeline/seedref"
	"repro/internal/program"
	"repro/internal/randprog"
	"repro/internal/trace"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

// recordBoth executes p twice — once into the legacy array-of-structs
// Recorder, once into the columnar Builder — so the two encodings of
// the same deterministic run can be compared.
func recordBoth(t *testing.T, p *program.Program) (*trace.Trace, []trace.DynInst) {
	t.Helper()
	rec := &trace.Recorder{}
	if _, err := funcsim.RunProgram(p, rec); err != nil {
		t.Fatal(err)
	}
	tb := trace.NewBuilder()
	if _, err := funcsim.RunProgram(p, tb); err != nil {
		t.Fatal(err)
	}
	return tb.Trace(), rec.Insts
}

// TestTraceRoundTripsRecorder verifies the columnar store reproduces
// the legacy Recorder trace bit-exactly, record by record — including
// the derived Seq and NextPC fields.
func TestTraceRoundTripsRecorder(t *testing.T) {
	for name, build := range roundTripCorpus(t) {
		t.Run(name, func(t *testing.T) {
			tr, aos := recordBoth(t, build)
			if tr.Len() != int64(len(aos)) {
				t.Fatalf("Len = %d, want %d", tr.Len(), len(aos))
			}
			for i := range aos {
				if got := tr.At(int64(i)); got != aos[i] {
					t.Fatalf("inst %d:\n got  %+v\n want %+v", i, got, aos[i])
				}
			}
			mat := tr.Materialize()
			for i := range aos {
				if mat[i] != aos[i] {
					t.Fatalf("Materialize[%d]:\n got  %+v\n want %+v", i, mat[i], aos[i])
				}
			}
		})
	}
}

// TestTraceReplayMatchesAoSDownstream verifies the downstream machine
// statistics — cache.Stats, branch.Stats and the detailed simulator's
// full Result — are identical whether collected from the columnar
// replay or from the legacy slice.
func TestTraceReplayMatchesAoSDownstream(t *testing.T) {
	cfg := uarch.Default()
	for name, build := range roundTripCorpus(t) {
		t.Run(name, func(t *testing.T) {
			tr, aos := recordBoth(t, build)

			collect := func(feed func(trace.Consumer)) (cache.Stats, branch.Stats) {
				h, err := cache.NewHierarchy(cfg.Hier)
				if err != nil {
					t.Fatal(err)
				}
				cc := cache.NewCollector(h)
				bc := branch.NewCollector(cfg.Predictor.New())
				feed(trace.Tee{cc, bc})
				return cc.Stats(), bc.S
			}
			gotC, gotB := collect(tr.Replay)
			wantC, wantB := collect(func(c trace.Consumer) {
				for i := range aos {
					c.Consume(&aos[i])
				}
			})
			if gotC != wantC {
				t.Errorf("cache stats diverge:\n got  %+v\n want %+v", gotC, wantC)
			}
			if gotB != wantB {
				t.Errorf("branch stats diverge:\n got  %+v\n want %+v", gotB, wantB)
			}

			sim, err := pipeline.Simulate(tr, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := seedref.Simulate(aos, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if sim != pipeline.Result(ref) {
				t.Errorf("simulation diverges:\n got  %+v\n want %+v", sim, ref)
			}
		})
	}
}

// TestTraceChunkBoundaries exercises Seq/chunk arithmetic across
// multiple chunks with a trace longer than several chunk lengths.
func TestTraceChunkBoundaries(t *testing.T) {
	n := int64(3*trace.ChunkLen + 17)
	b := trace.NewBuilder()
	for i := int64(0); i < n; i++ {
		d := trace.DynInst{Seq: i, PC: i % 1000, Op: 1, Class: 1}
		b.Append(&d)
	}
	tr := b.Trace()
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	if tr.NumChunks() != 4 {
		t.Fatalf("NumChunks = %d, want 4", tr.NumChunks())
	}
	for _, i := range []int64{0, 1, trace.ChunkLen - 1, trace.ChunkLen, 2*trace.ChunkLen + 5, n - 1} {
		d := tr.At(i)
		if d.Seq != i || d.PC != i%1000 {
			t.Errorf("At(%d) = Seq %d PC %d", i, d.Seq, d.PC)
		}
	}
	var seen int64
	for cur := tr.Cursor(); ; {
		ck, ok := cur.Next()
		if !ok {
			break
		}
		if ck.Base != seen {
			t.Errorf("chunk Base = %d, want %d", ck.Base, seen)
		}
		seen += int64(ck.N)
	}
	if seen != n {
		t.Errorf("cursor covered %d of %d", seen, n)
	}
}

// TestEmptyTrace checks nil/empty behaviour.
func TestEmptyTrace(t *testing.T) {
	var nilTr *trace.Trace
	if nilTr.Len() != 0 || nilTr.NumChunks() != 0 || nilTr.SizeBytes() != 0 {
		t.Error("nil trace not empty")
	}
	nilTr.Replay(trace.ConsumerFunc(func(*trace.DynInst) { t.Error("replayed from nil trace") }))
	tr := trace.NewBuilder().Trace()
	if tr.Len() != 0 || len(tr.Materialize()) != 0 {
		t.Error("fresh builder trace not empty")
	}
}

// roundTripCorpus returns named program builders for the differential
// tests: four random programs and two real workloads.
func roundTripCorpus(t *testing.T) map[string]*program.Program {
	t.Helper()
	out := map[string]*program.Program{}
	for seed := int64(1); seed <= 4; seed++ {
		cfg := randprog.Default(seed)
		cfg.OuterTrips = 20
		out[fmt.Sprintf("randprog-%d", seed)] = randprog.Generate(cfg)
	}
	for _, name := range []string{"sha", "dijkstra"} {
		spec, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = spec.Build()
	}
	return out
}
