package trace

import (
	"context"
	"errors"
	"testing"
)

// TestReplayCtx pins the chunk-boundary cancellation contract: a live
// context observes every instruction exactly like Replay, and a
// context cancelled mid-replay stops the traversal at the next chunk
// boundary instead of finishing the trace.
func TestReplayCtx(t *testing.T) {
	b := NewBuilder()
	var d DynInst
	const n = 3*ChunkLen + 17
	for i := 0; i < n; i++ {
		d.PC = int64(i % 100)
		b.Append(&d)
	}
	tr := b.Trace()

	var count Counter
	if err := tr.ReplayCtx(context.Background(), &count); err != nil {
		t.Fatalf("ReplayCtx with live context: %v", err)
	}
	if count.Total != n {
		t.Fatalf("ReplayCtx observed %d instructions, want %d", count.Total, n)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var seen int64
	err := tr.ReplayCtx(ctx, ConsumerFunc(func(*DynInst) {
		seen++
		if seen == ChunkLen/2 {
			cancel()
		}
	}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ReplayCtx returned %v, want context.Canceled", err)
	}
	// Cancellation lands between chunks: the current chunk finishes,
	// nothing after it starts.
	if seen != ChunkLen {
		t.Fatalf("cancelled ReplayCtx observed %d instructions, want exactly one chunk (%d)", seen, ChunkLen)
	}
}
