// Package faultfs is the fault-injection harness for the persistent
// artifact tier: a harness.ArtifactTier wrapper that can slow down or
// fail loads and saves on command, so chaos tests can drive the
// service through a degraded or dying disk without touching the real
// store. Faults are injected at the tier boundary — exactly where a
// failing filesystem would surface — which exercises every consumer
// (pool admissions, annotation rehydration, write-through) with zero
// knowledge in any of them.
//
// The zero fault plan is a transparent proxy: all calls delegate
// unchanged. Plans can change at any time, including mid-request; all
// methods are safe for concurrent use.
package faultfs

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/artifact"
	"repro/internal/cache"
	"repro/internal/harness"
	"repro/internal/profile"
	"repro/internal/trace"
)

// Op classifies tier operations for selective fault plans.
type Op int

const (
	// OpLoad covers LoadWorkload, LoadMemPlane and LoadBranchPlane.
	OpLoad Op = 1 << iota
	// OpSave covers SaveWorkload, SaveMemPlane and SaveBranchPlane.
	OpSave

	// OpAll covers every operation.
	OpAll = OpLoad | OpSave
)

// Plan describes the faults currently injected.
type Plan struct {
	// Err, when non-nil, is returned by every operation matched by
	// Ops (after Delay). Loads return it with zero values; saves
	// return it outright.
	Err error
	// Delay is slept before every matched operation, error or not —
	// a slow disk rather than (or in addition to) a broken one.
	Delay time.Duration
	// Ops selects the operations the plan applies to; 0 means OpAll.
	Ops Op
	// Remaining, when > 0, arms the plan for that many matched
	// operations only; the plan then clears itself (a transient
	// glitch). ≤ 0 means the plan persists until replaced.
	Remaining int
}

// Tier wraps an inner ArtifactTier with the active fault plan.
type Tier struct {
	inner harness.ArtifactTier

	mu   sync.Mutex
	plan Plan

	faults atomic.Int64 // operations that returned an injected error
	slowed atomic.Int64 // operations delayed by the plan
	ops    atomic.Int64 // operations observed (faulted or not)
}

// Wrap returns a fault-injection tier over inner with no active plan.
func Wrap(inner harness.ArtifactTier) *Tier {
	return &Tier{inner: inner}
}

// SetPlan installs the fault plan (replacing any previous one).
// Plan{} clears all faults.
func (t *Tier) SetPlan(p Plan) {
	if p.Ops == 0 {
		p.Ops = OpAll
	}
	t.mu.Lock()
	t.plan = p
	t.mu.Unlock()
}

// Clear removes the active plan.
func (t *Tier) Clear() { t.SetPlan(Plan{}) }

// Faults returns how many operations returned an injected error.
func (t *Tier) Faults() int64 { return t.faults.Load() }

// Slowed returns how many operations the plan delayed.
func (t *Tier) Slowed() int64 { return t.slowed.Load() }

// Ops returns how many tier operations were observed in total.
func (t *Tier) Ops() int64 { return t.ops.Load() }

// apply consumes the plan for one operation of kind op, sleeping any
// configured delay and returning the injected error (nil for a clean
// pass-through).
func (t *Tier) apply(op Op) error {
	t.ops.Add(1)
	t.mu.Lock()
	p := t.plan
	if p.Err == nil && p.Delay == 0 {
		t.mu.Unlock()
		return nil
	}
	if p.Ops&op == 0 {
		t.mu.Unlock()
		return nil
	}
	if p.Remaining > 0 {
		t.plan.Remaining--
		if t.plan.Remaining == 0 {
			t.plan = Plan{}
		}
	}
	t.mu.Unlock()

	if p.Delay > 0 {
		t.slowed.Add(1)
		time.Sleep(p.Delay)
	}
	if p.Err != nil {
		t.faults.Add(1)
		return p.Err
	}
	return nil
}

// WorkloadKey delegates unconditionally: key derivation is pure
// computation, no filesystem involved.
func (t *Tier) WorkloadKey(id artifact.WorkloadID) string { return t.inner.WorkloadKey(id) }

// LoadWorkload applies the fault plan, then delegates.
func (t *Tier) LoadWorkload(id artifact.WorkloadID) (*trace.Trace, *profile.Profile, error) {
	if err := t.apply(OpLoad); err != nil {
		return nil, nil, err
	}
	return t.inner.LoadWorkload(id)
}

// SaveWorkload applies the fault plan, then delegates.
func (t *Tier) SaveWorkload(id artifact.WorkloadID, tr *trace.Trace, prof *profile.Profile) (string, error) {
	if err := t.apply(OpSave); err != nil {
		return "", err
	}
	return t.inner.SaveWorkload(id, tr, prof)
}

// LoadMemPlane applies the fault plan, then delegates.
func (t *Tier) LoadMemPlane(workloadKey string, h cache.HierarchyConfig) (*trace.BytePlane, cache.Stats, error) {
	if err := t.apply(OpLoad); err != nil {
		return nil, cache.Stats{}, err
	}
	return t.inner.LoadMemPlane(workloadKey, h)
}

// SaveMemPlane applies the fault plan, then delegates.
func (t *Tier) SaveMemPlane(workloadKey string, h cache.HierarchyConfig, classes *trace.BytePlane, st cache.Stats) error {
	if err := t.apply(OpSave); err != nil {
		return err
	}
	return t.inner.SaveMemPlane(workloadKey, h, classes, st)
}

// LoadBranchPlane applies the fault plan, then delegates.
func (t *Tier) LoadBranchPlane(workloadKey, predictor string) (*trace.BitPlane, error) {
	if err := t.apply(OpLoad); err != nil {
		return nil, err
	}
	return t.inner.LoadBranchPlane(workloadKey, predictor)
}

// SaveBranchPlane applies the fault plan, then delegates.
func (t *Tier) SaveBranchPlane(workloadKey, predictor string, p *trace.BitPlane) error {
	if err := t.apply(OpSave); err != nil {
		return err
	}
	return t.inner.SaveBranchPlane(workloadKey, predictor, p)
}

// Interface check.
var _ harness.ArtifactTier = (*Tier)(nil)
