package faultfs

import (
	"errors"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/harness"
	"repro/internal/workloads"
)

func storeFor(t *testing.T) *artifact.Store {
	t.Helper()
	s, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func profiled(t *testing.T) (*harness.Profiled, artifact.WorkloadID) {
	t.Helper()
	spec, err := workloads.ByName("crc32")
	if err != nil {
		t.Fatal(err)
	}
	prog := spec.Build()
	pw, err := harness.ProfileProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	return pw, artifact.WorkloadID{Name: "crc32", Code: prog.Fingerprint()}
}

// TestTierTransparentWhenClear pins that the zero plan is a proxy: a
// workload saved through the tier loads back through it bit-identically
// to the underlying store.
func TestTierTransparentWhenClear(t *testing.T) {
	store := storeFor(t)
	tier := Wrap(store)
	pw, id := profiled(t)

	key, err := tier.SaveWorkload(id, pw.Trace, pw.Prof)
	if err != nil {
		t.Fatalf("SaveWorkload through clear tier: %v", err)
	}
	if key != store.WorkloadKey(id) || key != tier.WorkloadKey(id) {
		t.Fatalf("key mismatch: tier %q, store %q", tier.WorkloadKey(id), store.WorkloadKey(id))
	}
	tr, _, err := tier.LoadWorkload(id)
	if err != nil {
		t.Fatalf("LoadWorkload through clear tier: %v", err)
	}
	if tr.Len() != pw.Trace.Len() {
		t.Fatalf("round-trip trace length %d, want %d", tr.Len(), pw.Trace.Len())
	}
	if f := tier.Faults(); f != 0 {
		t.Fatalf("clear tier injected %d faults", f)
	}
}

// TestTierInjectsErrors pins selective injection: a load-only fault
// plan fails loads with the injected error, leaves saves untouched,
// and counts every hit.
func TestTierInjectsErrors(t *testing.T) {
	store := storeFor(t)
	tier := Wrap(store)
	pw, id := profiled(t)
	boom := errors.New("disk on fire")

	tier.SetPlan(Plan{Err: boom, Ops: OpLoad})
	if _, err := tier.SaveWorkload(id, pw.Trace, pw.Prof); err != nil {
		t.Fatalf("save under load-only fault plan: %v", err)
	}
	if _, _, err := tier.LoadWorkload(id); !errors.Is(err, boom) {
		t.Fatalf("faulted load returned %v, want injected error", err)
	}
	if _, err := tier.LoadBranchPlane("k", "p"); !errors.Is(err, boom) {
		t.Fatalf("faulted plane load returned %v, want injected error", err)
	}
	if f := tier.Faults(); f != 2 {
		t.Fatalf("Faults = %d, want 2", f)
	}

	tier.Clear()
	if _, _, err := tier.LoadWorkload(id); err != nil {
		t.Fatalf("load after Clear: %v", err)
	}
}

// TestTierTransientPlanSelfClears pins the Remaining budget: a plan
// armed for N operations injects exactly N faults and then restores
// pass-through on its own.
func TestTierTransientPlanSelfClears(t *testing.T) {
	store := storeFor(t)
	tier := Wrap(store)
	pw, id := profiled(t)
	if _, err := tier.SaveWorkload(id, pw.Trace, pw.Prof); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("transient")
	tier.SetPlan(Plan{Err: boom, Remaining: 2})
	for i := 0; i < 2; i++ {
		if _, _, err := tier.LoadWorkload(id); !errors.Is(err, boom) {
			t.Fatalf("fault %d returned %v, want injected error", i, err)
		}
	}
	if _, _, err := tier.LoadWorkload(id); err != nil {
		t.Fatalf("load after transient plan exhausted: %v", err)
	}
	if f := tier.Faults(); f != 2 {
		t.Fatalf("Faults = %d, want exactly the armed 2", f)
	}
}

// TestTierDelays pins the slow-disk mode: a delay-only plan slows
// matched operations without failing them.
func TestTierDelays(t *testing.T) {
	store := storeFor(t)
	tier := Wrap(store)
	pw, id := profiled(t)
	if _, err := tier.SaveWorkload(id, pw.Trace, pw.Prof); err != nil {
		t.Fatal(err)
	}

	const d = 30 * time.Millisecond
	tier.SetPlan(Plan{Delay: d, Ops: OpLoad})
	start := time.Now()
	if _, _, err := tier.LoadWorkload(id); err != nil {
		t.Fatalf("slow load failed: %v", err)
	}
	if took := time.Since(start); took < d {
		t.Fatalf("slow load took %v, want ≥ %v", took, d)
	}
	if s := tier.Slowed(); s != 1 {
		t.Fatalf("Slowed = %d, want 1", s)
	}
	if f := tier.Faults(); f != 0 {
		t.Fatalf("delay-only plan injected %d faults", f)
	}
}

// TestTierBehindPool pins the integration point: a pool whose Store is
// a fully faulted tier still serves requests compute-only — the
// injected errors are counted as disk errors, never surfaced to the
// caller — and the result is bit-identical to profiling without any
// store.
func TestTierBehindPool(t *testing.T) {
	store := storeFor(t)
	tier := Wrap(store)
	boom := errors.New("no disk today")
	tier.SetPlan(Plan{Err: boom})

	spec, err := workloads.ByName("crc32")
	if err != nil {
		t.Fatal(err)
	}
	p := harness.NewPool(harness.PoolOptions{Store: tier})
	pw, err := p.GetBuilt("crc32", spec.Build, harness.ProfileProgram)
	if err != nil {
		t.Fatalf("GetBuilt over faulted tier: %v", err)
	}
	want, err := harness.ProfileProgram(spec.Build())
	if err != nil {
		t.Fatal(err)
	}
	if pw.Trace.Len() != want.Trace.Len() {
		t.Fatalf("faulted-tier workload trace length %d, want %d", pw.Trace.Len(), want.Trace.Len())
	}
	if st := p.Stats(); st.DiskErrors == 0 {
		t.Fatalf("pool did not count the injected disk faults: %+v", st)
	}
	if tier.Faults() == 0 {
		t.Fatal("tier observed no faults")
	}
}
