// Package ooo implements a compact out-of-order interval model in the
// style of Eyerman et al., "A Mechanistic Performance Model for
// Superscalar Out-of-Order Processors" (ACM TOCS 2009) — the model the
// paper uses for its in-order versus out-of-order comparison
// (Figure 7). The out-of-order machine is assumed balanced: between
// miss events it sustains dispatch at the designed width, hiding
// inter-instruction dependencies, non-unit execution latencies and
// short cache-hit latencies inside the reorder window. What remains
// visible is:
//
//   - I-cache misses, whose penalty equals the miss latency (identical
//     to the in-order case — the front-end simply stops feeding),
//   - branch mispredictions, whose penalty is the front-end refill
//     plus the branch *resolution time* (the time the branch spends in
//     the window before executing) — larger than in-order,
//   - long-latency (L2-missing) loads, whose penalty is the memory
//     latency divided by the memory-level parallelism the window
//     exposes — smaller than in-order,
//   - TLB walks, which serialize.
package ooo

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/uarch"
)

// Config extends a core design point with out-of-order parameters.
type Config struct {
	Base  uarch.Config // width, front-end depth, latencies, hierarchy, predictor
	ROB   int          // reorder-buffer size
	MSHRs int          // maximum outstanding misses (caps MLP)
}

// DefaultConfig returns a 4-wide out-of-order configuration matched to
// the paper's comparison: same width, front-end depth, caches and
// predictor as the in-order default, with a 128-entry window.
func DefaultConfig() Config {
	return Config{Base: uarch.Default(), ROB: 128, MSHRs: 8}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Base.Validate(); err != nil {
		return err
	}
	if c.ROB < c.Base.Width {
		return fmt.Errorf("ooo: ROB %d smaller than width %d", c.ROB, c.Base.Width)
	}
	if c.MSHRs < 1 {
		return fmt.Errorf("ooo: MSHRs %d < 1", c.MSHRs)
	}
	return nil
}

// Stats are the trace statistics the out-of-order model needs beyond
// the shared profile: miss counts and the memory-level parallelism of
// L2 data misses within the reorder window.
type Stats struct {
	Mem        cache.Stats
	Mispredict int64
	Branches   int64

	L2LoadMisses   int64 // data loads missing in L2
	L2MissClusters int64 // groups of overlapping (independent, window-local) misses
}

// MLP returns the average number of L2 load misses served per exposed
// miss interval (≥ 1).
func (s Stats) MLP() float64 {
	if s.L2MissClusters == 0 {
		return 1
	}
	m := float64(s.L2LoadMisses) / float64(s.L2MissClusters)
	if m < 1 {
		return 1
	}
	return m
}

// Collector gathers Stats in one pass over a trace. MLP is estimated
// by clustering L2 load misses that fall within one reorder window of
// the cluster leader and are not serially dependent on an in-flight
// miss (a load whose address comes from another missing load cannot
// overlap with it — the pointer-chasing case).
type Collector struct {
	cfg  Config
	hier *cache.Hierarchy
	pred interface {
		Predict(int64) bool
		Update(int64, bool)
	}
	s Stats

	// Per-register taint: sequence number of the L2-missing load that
	// produced the register's current value, or -1.
	missProducer [isa.NumRegs]int64

	clusterStart int64 // seq of current cluster leader, -1 if none
	clusterSize  int64
}

// NewCollector builds a collector for the given configuration.
func NewCollector(cfg Config) (*Collector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h, err := cache.NewHierarchy(cfg.Base.Hier)
	if err != nil {
		return nil, err
	}
	c := &Collector{cfg: cfg, hier: h, pred: cfg.Base.Predictor.New(), clusterStart: -1}
	for i := range c.missProducer {
		c.missProducer[i] = -1
	}
	return c, nil
}

// Consume implements trace.Consumer.
func (c *Collector) Consume(d *trace.DynInst) {
	c.hier.AccessI(d.PC)
	if d.IsBranch {
		c.s.Branches++
		p := c.pred.Predict(d.PC)
		c.pred.Update(d.PC, d.Taken)
		if p != d.Taken {
			c.s.Mispredict++
		}
	}
	if d.IsLoad || d.IsStore {
		r := c.hier.AccessD(d.EffAddr, d.IsStore)
		if d.IsLoad && !r.L1Hit && !r.L2Hit {
			c.s.L2LoadMisses++
			serial := false
			for i := 0; i < d.NumSrc; i++ {
				if mp := c.missProducer[d.Src[i]]; mp >= 0 && d.Seq-mp < int64(c.cfg.ROB) {
					serial = true // address depends on an in-flight miss
				}
			}
			inWindow := c.clusterStart >= 0 && d.Seq-c.clusterStart < int64(c.cfg.ROB)
			if serial || !inWindow || c.clusterSize >= int64(c.cfg.MSHRs) {
				c.s.L2MissClusters++
				c.clusterStart = d.Seq
				c.clusterSize = 1
			} else {
				c.clusterSize++
			}
			if d.HasDst {
				c.missProducer[d.Dst] = d.Seq
			}
		} else if d.HasDst {
			c.missProducer[d.Dst] = -1
		}
	} else if d.HasDst {
		c.missProducer[d.Dst] = -1
	}
}

// Result returns the collected statistics.
func (c *Collector) Result() Stats {
	c.s.Mem = c.hier.S
	return c.s
}

// Component identifies one term of the out-of-order CPI stack; the
// set mirrors Figure 7's legend.
type Component int

// Out-of-order CPI stack components.
const (
	Base Component = iota
	MulDiv
	IL1Miss
	IL2Miss
	DL1Miss
	DL2Miss
	BrMiss
	Deps

	NumComponents
)

var componentNames = [NumComponents]string{
	"base", "mul/div", "il1 miss", "il2 miss", "dl1 miss", "dl2 miss",
	"bpred miss", "deps",
}

func (c Component) String() string {
	if c >= 0 && c < NumComponents {
		return componentNames[c]
	}
	return fmt.Sprintf("ooo-component(%d)", int(c))
}

// Stack is an out-of-order CPI stack.
type Stack struct {
	Cycles [NumComponents]float64
	N      int64
}

// Total returns total predicted cycles.
func (s *Stack) Total() float64 {
	var t float64
	for _, c := range s.Cycles {
		t += c
	}
	return t
}

// CPI returns cycles per instruction.
func (s *Stack) CPI() float64 {
	if s.N == 0 {
		return 0
	}
	return s.Total() / float64(s.N)
}

// CPIOf returns one component in CPI terms.
func (s *Stack) CPIOf(c Component) float64 {
	if s.N == 0 {
		return 0
	}
	return s.Cycles[c] / float64(s.N)
}

// Predict evaluates the out-of-order interval model.
func Predict(n int64, st Stats, cfg Config) (*Stack, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("ooo: zero instruction count")
	}
	W := float64(cfg.Base.Width)
	D := float64(cfg.Base.FrontEndDepth)
	l2hit := float64(cfg.Base.L2HitCycles())
	l2miss := float64(cfg.Base.L2MissCycles())
	walk := float64(cfg.Base.TLBWalkCycles())
	// Window drain: instructions in flight when the branch executes,
	// divided by the dispatch rate — the classic resolution-time
	// approximation for a balanced window at half occupancy.
	resolution := float64(cfg.ROB) / (2 * W)
	// Short latencies are hidden when the window can cover them.
	hide := float64(cfg.ROB) / (2 * W)

	s := &Stack{N: n}
	s.Cycles[Base] = float64(n) / W
	// Dependencies and mul/div latencies: hidden by out-of-order
	// execution (the observation Figure 7 illustrates).
	s.Cycles[Deps] = 0
	s.Cycles[MulDiv] = 0

	// I-side misses stop the front-end exactly as on the in-order core.
	s.Cycles[IL1Miss] = float64(st.Mem.IL1Misses-st.Mem.IL2Misses) * l2hit
	s.Cycles[IL2Miss] = float64(st.Mem.IL2Misses) * l2miss

	// D-side: L2 hits are hidden if the window covers them; L2 misses
	// pay the memory latency once per overlapping cluster.
	shortPenalty := l2hit - hide
	if shortPenalty < 0 {
		shortPenalty = 0
	}
	s.Cycles[DL1Miss] = float64(st.Mem.DL1Misses-st.Mem.DL2Misses) * shortPenalty
	exposed := float64(st.L2MissClusters)
	s.Cycles[DL2Miss] = exposed*l2miss + float64(st.Mem.DTLBMisses+st.Mem.ITLBMisses)*walk

	s.Cycles[BrMiss] = float64(st.Mispredict) * (D + resolution)
	return s, nil
}
