package ooo

import (
	"testing"

	"repro/internal/harness"
	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.ROB = 1
	if err := bad.Validate(); err == nil {
		t.Error("ROB smaller than width accepted")
	}
	bad = DefaultConfig()
	bad.MSHRs = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero MSHRs accepted")
	}
}

// missStream feeds the collector n loads with the given stride (words)
// and optional serial dependence (each load's address register written
// by the previous load).
func missStream(t *testing.T, n int, strideWords int64, serial bool) Stats {
	t.Helper()
	col, err := NewCollector(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		d := trace.DynInst{
			Seq: int64(i), PC: int64(i % 64),
			Op: isa.LD, Class: isa.ClassLoad, IsLoad: true,
			// Spread far beyond the L2 so every new block misses.
			EffAddr: int64(i) * strideWords,
			Dst:     isa.Reg(1), HasDst: true,
		}
		if serial {
			d.Src[0] = isa.Reg(1)
			d.NumSrc = 1
		}
		col.Consume(&d)
	}
	return col.Result()
}

func TestMLPSerialChainIsOne(t *testing.T) {
	// Pointer chasing: every load's address depends on the previous
	// missing load; no overlap possible.
	s := missStream(t, 500, 1<<20, true)
	if s.L2LoadMisses < 400 {
		t.Fatalf("expected many misses, got %d", s.L2LoadMisses)
	}
	if got := s.MLP(); got > 1.01 {
		t.Errorf("serial MLP = %f, want 1", got)
	}
}

func TestMLPIndependentStreamsCapped(t *testing.T) {
	// Independent missing loads cluster up to the MSHR limit.
	s := missStream(t, 500, 1<<20, false)
	cfg := DefaultConfig()
	got := s.MLP()
	if got < float64(cfg.MSHRs)*0.8 {
		t.Errorf("independent MLP = %f, want near MSHR cap %d", got, cfg.MSHRs)
	}
	if got > float64(cfg.MSHRs)+0.01 {
		t.Errorf("MLP = %f exceeds MSHR cap %d", got, cfg.MSHRs)
	}
}

func TestMLPWindowLimit(t *testing.T) {
	// Misses farther apart than the ROB cannot overlap. Interleave each
	// missing load with ROB non-memory instructions.
	cfg := DefaultConfig()
	col, err := NewCollector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq := int64(0)
	for i := 0; i < 100; i++ {
		d := trace.DynInst{Seq: seq, Op: isa.LD, Class: isa.ClassLoad, IsLoad: true,
			EffAddr: int64(i) << 20, Dst: 1, HasDst: true}
		col.Consume(&d)
		seq++
		for j := 0; j < cfg.ROB; j++ {
			a := trace.DynInst{Seq: seq, Op: isa.ADD, Class: isa.ClassALU, Dst: 2, HasDst: true}
			col.Consume(&a)
			seq++
		}
	}
	if got := col.Result().MLP(); got > 1.01 {
		t.Errorf("window-separated MLP = %f, want 1", got)
	}
}

func TestPredictComponents(t *testing.T) {
	cfg := DefaultConfig()
	st, err := Predict(1000, Stats{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.CPIOf(Base) != 0.25 {
		t.Errorf("base = %f, want 0.25", st.CPIOf(Base))
	}
	if st.CPIOf(Deps) != 0 || st.CPIOf(MulDiv) != 0 {
		t.Error("deps/muldiv must be hidden on the OoO core")
	}
	// Branch resolution makes mispredictions cost more than the
	// in-order D + (W-1)/2W.
	st2, _ := Predict(1000, Stats{Mispredict: 10}, cfg)
	perMiss := (st2.Total() - st.Total()) / 10
	inOrder := float64(cfg.Base.FrontEndDepth) + 3.0/8
	if perMiss <= inOrder {
		t.Errorf("OoO mispredict cost %f not above in-order %f", perMiss, inOrder)
	}
}

func TestPredictErrors(t *testing.T) {
	if _, err := Predict(0, Stats{}, DefaultConfig()); err == nil {
		t.Error("zero N accepted")
	}
	bad := DefaultConfig()
	bad.MSHRs = 0
	if _, err := Predict(10, Stats{}, bad); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestStackHelpers(t *testing.T) {
	s := &Stack{N: 100}
	s.Cycles[Base] = 50
	if s.CPI() != 0.5 || s.Total() != 50 {
		t.Errorf("stack accessors: %+v", s)
	}
	for c := Component(0); c < NumComponents; c++ {
		if c.String() == "" {
			t.Errorf("component %d unnamed", c)
		}
	}
}

// TestOoOFasterThanInOrderOnRealWorkloads ties the comparison together:
// on every Figure 7 benchmark the out-of-order CPI must be at or below
// the in-order CPI (it hides everything the in-order core stalls on).
func TestOoOFasterThanInOrderOnRealWorkloads(t *testing.T) {
	inCfg := uarch.Default()
	ooCfg := DefaultConfig()
	for _, name := range []string{"dijkstra", "tiff2bw", "lame"} {
		spec, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		pw := harness.MustProfileProgram(spec.Build())
		inStack, err := pw.Predict(inCfg)
		if err != nil {
			t.Fatal(err)
		}
		col, err := NewCollector(ooCfg)
		if err != nil {
			t.Fatal(err)
		}
		pw.Trace.Replay(col)
		ooStack, err := Predict(pw.Prof.N, col.Result(), ooCfg)
		if err != nil {
			t.Fatal(err)
		}
		if ooStack.CPI() > inStack.CPI() {
			t.Errorf("%s: OoO CPI %.3f above in-order %.3f", name, ooStack.CPI(), inStack.CPI())
		}
	}
}
