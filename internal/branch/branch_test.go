package branch

import (
	"testing"

	"repro/internal/trace"
)

func TestCounterSaturation(t *testing.T) {
	c := counter(0)
	for i := 0; i < 10; i++ {
		c = c.update(true)
	}
	if c != 3 || !c.taken() {
		t.Errorf("counter = %d after saturating up", c)
	}
	for i := 0; i < 10; i++ {
		c = c.update(false)
	}
	if c != 0 || c.taken() {
		t.Errorf("counter = %d after saturating down", c)
	}
}

func TestStaticNotTaken(t *testing.T) {
	var p StaticNotTaken
	if p.Predict(123) {
		t.Error("static-NT predicted taken")
	}
	p.Update(123, true) // no-op
	if p.Predict(123) {
		t.Error("static-NT learned")
	}
	if p.Name() == "" {
		t.Error("empty name")
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(1024)
	pc := int64(100)
	for i := 0; i < 4; i++ {
		b.Update(pc, true)
	}
	if !b.Predict(pc) {
		t.Error("bimodal did not learn a taken bias")
	}
	// A different PC in another entry is unaffected.
	if b.Predict(pc + 1) {
		t.Error("bimodal default should be weakly not-taken")
	}
	b.Reset()
	if b.Predict(pc) {
		t.Error("Reset did not restore initial state")
	}
}

func TestBimodalAliasing(t *testing.T) {
	b := NewBimodal(16)
	b.Update(0, true)
	b.Update(0, true)
	if !b.Predict(16) { // aliases with PC 0 (16 mod 16)
		t.Error("aliased entry not shared")
	}
}

func TestGShareUsesHistory(t *testing.T) {
	// A strictly alternating branch is mispredicted by bimodal but
	// perfectly predictable with one bit of history.
	g := NewGShare(12)
	bi := NewBimodal(4096)
	pc := int64(64)
	gMiss, bMiss := 0, 0
	taken := false
	for i := 0; i < 2000; i++ {
		taken = !taken
		if g.Predict(pc) != taken {
			gMiss++
		}
		if bi.Predict(pc) != taken {
			bMiss++
		}
		g.Update(pc, taken)
		bi.Update(pc, taken)
	}
	if gMiss >= bMiss {
		t.Errorf("gshare (%d misses) not better than bimodal (%d) on alternating branch", gMiss, bMiss)
	}
	if gMiss > 100 {
		t.Errorf("gshare failed to learn alternating pattern: %d misses", gMiss)
	}
}

func TestLocalLearnsShortPeriodicPattern(t *testing.T) {
	l := NewLocal(1024, 10)
	pc := int64(200)
	// Pattern with period 4: T T T N.
	miss := 0
	for i := 0; i < 4000; i++ {
		taken := i%4 != 3
		if l.Predict(pc) != taken {
			miss++
		}
		l.Update(pc, taken)
	}
	if miss > 200 {
		t.Errorf("local predictor failed on periodic pattern: %d/4000 misses", miss)
	}
}

func TestHybridTracksBetterComponent(t *testing.T) {
	// Per-branch periodic patterns favor the local side; the hybrid
	// must approach the local component's accuracy.
	h := NewPaperHybrid()
	l := NewLocal(1024, 10)
	pcs := []int64{10, 20, 30}
	hMiss, lMiss := 0, 0
	for i := 0; i < 6000; i++ {
		pc := pcs[i%3]
		taken := (i/3)%3 != 2 // period-3 per-branch pattern
		if h.Predict(pc) != taken {
			hMiss++
		}
		if l.Predict(pc) != taken {
			lMiss++
		}
		h.Update(pc, taken)
		l.Update(pc, taken)
	}
	if hMiss > lMiss*2+200 {
		t.Errorf("hybrid (%d misses) much worse than local (%d)", hMiss, lMiss)
	}
	h.Reset() // must not panic and must clear
	if h.Name() == "" {
		t.Error("empty name")
	}
}

func TestCollectorCounts(t *testing.T) {
	c := NewCollector(StaticNotTaken{})
	br := func(taken bool) *trace.DynInst {
		return &trace.DynInst{IsBranch: true, Taken: taken, PC: 5}
	}
	c.Consume(br(true))  // mispredicted (NT predictor, taken branch)
	c.Consume(br(false)) // correct, not taken
	c.Consume(&trace.DynInst{IsJump: true, Taken: true})
	c.Consume(&trace.DynInst{}) // non-control: ignored
	if c.S.Branches != 2 || c.S.Mispredicts != 1 || c.S.Jumps != 1 {
		t.Errorf("stats = %+v", c.S)
	}
	if c.S.PredictedTaken != 0 {
		t.Errorf("static-NT cannot have predicted-taken hits: %+v", c.S)
	}
	if c.S.TakenBubbles() != 1 { // the jump
		t.Errorf("TakenBubbles = %d", c.S.TakenBubbles())
	}
	if c.S.MispredictRate() != 0.5 {
		t.Errorf("rate = %f", c.S.MispredictRate())
	}
}

func TestMultiCollectorIndependence(t *testing.T) {
	m := NewMultiCollector(StaticNotTaken{}, NewBimodal(64))
	for i := 0; i < 100; i++ {
		m.Consume(&trace.DynInst{IsBranch: true, Taken: true, PC: 3})
	}
	st := m.Stats()
	if len(st) != 2 {
		t.Fatalf("got %d stats", len(st))
	}
	if st[0].Mispredicts != 100 {
		t.Errorf("static-NT mispredicts = %d, want 100", st[0].Mispredicts)
	}
	if st[1].Mispredicts > 5 {
		t.Errorf("bimodal mispredicts = %d, want few", st[1].Mispredicts)
	}
	if st[1].PredictedTaken < 95 {
		t.Errorf("bimodal predicted-taken = %d", st[1].PredictedTaken)
	}
}

func TestMispredictRateEmpty(t *testing.T) {
	var s Stats
	if s.MispredictRate() != 0 {
		t.Error("empty rate not 0")
	}
}

func TestConstructorsRejectBadSizes(t *testing.T) {
	for _, f := range []func(){
		func() { NewBimodal(0) },
		func() { NewBimodal(3) },
		func() { NewLocal(0, 4) },
		func() { NewHybrid(NewLocal(16, 4), NewGShare(4), 7) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad size accepted")
				}
			}()
			f()
		}()
	}
}
