// Package branch implements the branch-predictor substrate: static,
// bimodal, gshare (global history) and hybrid local/global predictors,
// plus collectors that simulate one or many predictors in a single pass
// over a trace — mirroring the paper's single-run collection of branch
// misprediction rates for multiple predictor configurations.
//
// Prediction is direction-only: targets of direct branches and jumps
// are assumed available from a branch target buffer, as in the paper's
// pipeline where a branch is predicted one cycle after fetch.
package branch

import (
	"fmt"

	"repro/internal/trace"
)

// Predictor predicts conditional-branch directions.
type Predictor interface {
	// Name identifies the configuration.
	Name() string
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc int64) bool
	// Update trains the predictor with the resolved direction.
	Update(pc int64, taken bool)
	// Reset restores the initial state.
	Reset()
}

// counter is a saturating 2-bit counter; values 0..3, taken if ≥ 2.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) update(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// StaticNotTaken always predicts not taken.
type StaticNotTaken struct{}

// Name implements Predictor.
func (StaticNotTaken) Name() string { return "static-nt" }

// Predict implements Predictor.
func (StaticNotTaken) Predict(int64) bool { return false }

// Update implements Predictor.
func (StaticNotTaken) Update(int64, bool) {}

// Reset implements Predictor.
func (StaticNotTaken) Reset() {}

// Bimodal is a table of 2-bit counters indexed by PC.
type Bimodal struct {
	name string
	tab  []counter
	mask int64
}

// NewBimodal builds a bimodal predictor with the given number of
// entries (a power of two).
func NewBimodal(entries int) *Bimodal {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic(fmt.Sprintf("branch: bimodal entries %d not a positive power of two", entries))
	}
	b := &Bimodal{name: fmt.Sprintf("bimodal-%d", entries), mask: int64(entries - 1)}
	b.tab = make([]counter, entries)
	b.Reset()
	return b
}

// Name implements Predictor.
func (b *Bimodal) Name() string { return b.name }

// Predict implements Predictor.
func (b *Bimodal) Predict(pc int64) bool { return b.tab[pc&b.mask].taken() }

// Update implements Predictor.
func (b *Bimodal) Update(pc int64, taken bool) {
	i := pc & b.mask
	b.tab[i] = b.tab[i].update(taken)
}

// Reset implements Predictor.
func (b *Bimodal) Reset() {
	for i := range b.tab {
		b.tab[i] = 1 // weakly not-taken
	}
}

// GShare hashes the global history register with the PC to index a
// table of 2-bit counters. With 12 history bits and 4096 counters this
// is the paper's default "1 KB global history" predictor.
type GShare struct {
	name     string
	tab      []counter
	histBits uint
	hist     int64
	mask     int64
}

// NewGShare builds a gshare predictor with 2^histBits counters.
func NewGShare(histBits uint) *GShare {
	entries := 1 << histBits
	g := &GShare{
		name:     fmt.Sprintf("gshare-%db", histBits),
		histBits: histBits,
		mask:     int64(entries - 1),
	}
	g.tab = make([]counter, entries)
	g.Reset()
	return g
}

func (g *GShare) index(pc int64) int64 { return (pc ^ g.hist) & g.mask }

// Name implements Predictor.
func (g *GShare) Name() string { return g.name }

// Predict implements Predictor.
func (g *GShare) Predict(pc int64) bool { return g.tab[g.index(pc)].taken() }

// Update implements Predictor.
func (g *GShare) Update(pc int64, taken bool) {
	i := g.index(pc)
	g.tab[i] = g.tab[i].update(taken)
	g.hist = ((g.hist << 1) | boolBit(taken)) & g.mask
}

// Reset implements Predictor.
func (g *GShare) Reset() {
	for i := range g.tab {
		g.tab[i] = 1
	}
	g.hist = 0
}

// Local is a two-level local-history predictor: a per-branch history
// table feeding a pattern history table of 2-bit counters.
type Local struct {
	name      string
	localHist []int64
	pht       []counter
	histBits  uint
	lhMask    int64
	phtMask   int64
}

// NewLocal builds a local predictor with lhEntries per-branch histories
// of histBits bits and a 2^histBits-entry pattern table.
func NewLocal(lhEntries int, histBits uint) *Local {
	if lhEntries <= 0 || lhEntries&(lhEntries-1) != 0 {
		panic(fmt.Sprintf("branch: local history entries %d not a positive power of two", lhEntries))
	}
	l := &Local{
		name:      fmt.Sprintf("local-%dx%db", lhEntries, histBits),
		localHist: make([]int64, lhEntries),
		pht:       make([]counter, 1<<histBits),
		histBits:  histBits,
		lhMask:    int64(lhEntries - 1),
		phtMask:   int64(1<<histBits - 1),
	}
	l.Reset()
	return l
}

// Name implements Predictor.
func (l *Local) Name() string { return l.name }

// Predict implements Predictor.
func (l *Local) Predict(pc int64) bool {
	h := l.localHist[pc&l.lhMask]
	return l.pht[h&l.phtMask].taken()
}

// Update implements Predictor.
func (l *Local) Update(pc int64, taken bool) {
	li := pc & l.lhMask
	h := l.localHist[li] & l.phtMask
	l.pht[h] = l.pht[h].update(taken)
	l.localHist[li] = ((l.localHist[li] << 1) | boolBit(taken)) & l.phtMask
}

// Reset implements Predictor.
func (l *Local) Reset() {
	for i := range l.localHist {
		l.localHist[i] = 0
	}
	for i := range l.pht {
		l.pht[i] = 1
	}
}

// Hybrid combines a local and a global component with a chooser table
// trained on which component was right. With a 1024×10 b local
// component, a 12 b gshare and a 4096-entry chooser this is the paper's
// "3.5 KB hybrid" predictor.
type Hybrid struct {
	name    string
	local   *Local
	global  *GShare
	chooser []counter // ≥2 selects global
	mask    int64
}

// NewHybrid builds a hybrid predictor.
func NewHybrid(local *Local, global *GShare, chooserEntries int) *Hybrid {
	if chooserEntries <= 0 || chooserEntries&(chooserEntries-1) != 0 {
		panic(fmt.Sprintf("branch: chooser entries %d not a positive power of two", chooserEntries))
	}
	h := &Hybrid{
		name:    fmt.Sprintf("hybrid(%s,%s)", local.Name(), global.Name()),
		local:   local,
		global:  global,
		chooser: make([]counter, chooserEntries),
		mask:    int64(chooserEntries - 1),
	}
	h.Reset()
	return h
}

// NewPaperHybrid builds the Table 2 hybrid: 10-bit local, 12-bit global.
func NewPaperHybrid() *Hybrid {
	return NewHybrid(NewLocal(1024, 10), NewGShare(12), 4096)
}

// Name implements Predictor.
func (h *Hybrid) Name() string { return h.name }

// Predict implements Predictor.
func (h *Hybrid) Predict(pc int64) bool {
	if h.chooser[pc&h.mask].taken() {
		return h.global.Predict(pc)
	}
	return h.local.Predict(pc)
}

// Update implements Predictor.
func (h *Hybrid) Update(pc int64, taken bool) {
	lp := h.local.Predict(pc)
	gp := h.global.Predict(pc)
	if lp != gp {
		i := pc & h.mask
		h.chooser[i] = h.chooser[i].update(gp == taken)
	}
	h.local.Update(pc, taken)
	h.global.Update(pc, taken)
}

// Reset implements Predictor.
func (h *Hybrid) Reset() {
	h.local.Reset()
	h.global.Reset()
	for i := range h.chooser {
		h.chooser[i] = 1
	}
}

func boolBit(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Stats aggregates the branch statistics the model consumes.
type Stats struct {
	Branches       int64 // conditional branches seen
	Mispredicts    int64 // direction mispredictions
	PredictedTaken int64 // conditional branches predicted taken and correct
	Jumps          int64 // unconditional control transfers (always redirect)
}

// TakenBubbles returns the number of 1-cycle taken-redirect bubbles:
// correctly-predicted taken branches plus unconditional jumps. (A
// mispredicted branch's bubble is subsumed by its flush penalty.)
func (s Stats) TakenBubbles() int64 { return s.PredictedTaken + s.Jumps }

// MispredictRate returns mispredictions per conditional branch.
func (s Stats) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}

// Collector simulates one predictor over a trace.
type Collector struct {
	P Predictor
	S Stats
}

// NewCollector wraps p.
func NewCollector(p Predictor) *Collector { return &Collector{P: p} }

// Consume implements trace.Consumer.
func (c *Collector) Consume(d *trace.DynInst) {
	if d.IsJump {
		c.S.Jumps++
		return
	}
	if !d.IsBranch {
		return
	}
	c.S.Branches++
	pred := c.P.Predict(d.PC)
	if pred != d.Taken {
		c.S.Mispredicts++
	} else if d.Taken {
		c.S.PredictedTaken++
	}
	c.P.Update(d.PC, d.Taken)
}

// MultiCollector simulates several predictors in one pass.
type MultiCollector struct {
	Collectors []*Collector
}

// NewMultiCollector wraps each predictor in a collector.
func NewMultiCollector(ps ...Predictor) *MultiCollector {
	m := &MultiCollector{}
	for _, p := range ps {
		m.Collectors = append(m.Collectors, NewCollector(p))
	}
	return m
}

// Consume implements trace.Consumer.
func (m *MultiCollector) Consume(d *trace.DynInst) {
	for _, c := range m.Collectors {
		c.Consume(d)
	}
}

// Stats returns per-predictor statistics in construction order.
func (m *MultiCollector) Stats() []Stats {
	out := make([]Stats, len(m.Collectors))
	for i, c := range m.Collectors {
		out[i] = c.S
	}
	return out
}
