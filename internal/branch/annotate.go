package branch

import (
	"context"

	"repro/internal/trace"
)

// AnnotateMispredicts simulates p over the trace's conditional-branch
// stream — exactly the stream the detailed pipeline's fetch stage
// trains it on: every conditional branch once, in program order, jumps
// excluded — and returns a bit plane marking each mispredicted branch.
// The plane is a pure function of (trace, predictor kind), so one
// annotation serves every design point sharing the predictor.
func AnnotateMispredicts(tr *trace.Trace, p Predictor) *trace.BitPlane {
	pl, _ := AnnotateMispredictsCtx(context.Background(), tr, p)
	return pl
}

// AnnotateMispredictsCtx is AnnotateMispredicts under a context:
// cancellation is observed between trace chunks (the same granularity
// as trace.ReplayCtx), returning ctx.Err() with a nil plane. A
// completed annotation is bit-identical to the uncancelled one.
func AnnotateMispredictsCtx(ctx context.Context, tr *trace.Trace, p Predictor) (*trace.BitPlane, error) {
	pl, _, err := AnnotateMispredictsStatsCtx(ctx, tr, p)
	return pl, err
}

// AnnotateMispredictsStatsCtx is AnnotateMispredictsCtx fused with
// statistics collection: the one predictor simulation produces both the
// mispredict plane and the end-of-run Stats a Collector would report
// over the same trace (same Predict/Update ordering on the identical
// branch stream), so callers that need both pay one traversal. Plane
// and Stats are each bit-identical to their unfused counterparts.
func AnnotateMispredictsStatsCtx(ctx context.Context, tr *trace.Trace, p Predictor) (*trace.BitPlane, Stats, error) {
	done := ctx.Done()
	var s Stats
	b := trace.NewBitPlaneBuilder()
	for cur := tr.Cursor(); ; {
		select {
		case <-done:
			return nil, Stats{}, ctx.Err()
		default:
		}
		ck, ok := cur.Next()
		if !ok {
			return b.Plane(), s, nil
		}
		for j := 0; j < ck.N; j++ {
			fl := ck.Flags[j]
			if fl&(trace.FlagBranch|trace.FlagJump) != trace.FlagBranch {
				if fl&trace.FlagJump != 0 {
					s.Jumps++
				}
				b.Append(false)
				continue
			}
			pc := int64(ck.PC[j])
			taken := fl&trace.FlagTaken != 0
			pred := p.Predict(pc)
			p.Update(pc, taken)
			s.Branches++
			if pred != taken {
				s.Mispredicts++
			} else if taken {
				s.PredictedTaken++
			}
			b.Append(pred != taken)
		}
	}
}
