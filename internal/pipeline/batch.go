package pipeline

import (
	"context"
	"fmt"
	"math"
	"math/bits"

	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/uarch"
)

// The config-parallel batch replay evaluates every resident design
// point in one chunk-major sweep over the trace. It is built on two
// observations about SimulateAnnotated's machine:
//
//  1. The partition of the trace into fetch groups is a pure function
//     of (width, flags, I-side annotation classes, mispredict bits) —
//     the cycle at which a group is fetched never changes *which*
//     instructions it holds. One decomposition pass per distinct
//     (width, memory plane, branch plane) therefore serves every
//     depth/frequency point that shares those components.
//
//  2. The front-end is a rigid conveyor: groups advance one stage per
//     cycle into empty slots, and admission drains the head group in
//     order. The per-cycle lockstep loop collapses into two
//     recurrences per group — with f_k the fetch cycle and d_k the
//     cycle group k fully drains into execute,
//
//     f_k          = max(nf_k, f_{k-1}+1, d_{k-D})
//     admitStart_k = max(f_k + D, d_{k-1} + 1)
//
//     (nf_k is the next-fetch constraint left by group k-1's end:
//     +1 for a full group, +2 for a taken-control bubble, the I-miss
//     refill latency, or the resolving branch's admission cycle + 1
//     after a mispredict; d_{k-D} is when the D-deep conveyor frees
//     its fetch slot). Admission within the group replays the same
//     burst arithmetic as the scalar kernel — dependence stalls,
//     mul/div execute blocking, memory-stage occupancy — but only
//     touches cycles where something happens.
//
// Per instruction the batch kernel reads one pre-decoded 32-bit uop
// (sources, destination, class kind, latency classes, control flags)
// built once per distinct memory plane and shared by every lane, so a
// chunk's working set stays cache-resident while the config axis
// streams. Results are bit-identical to SimulateAnnotated for every
// point, differentially tested across the full Table 2 space.

// BatchPoint pairs one design point with its annotation planes. Points
// sharing a component should share the plane pointers (the harness's
// canonicalization layer guarantees this) so the batch kernel can pool
// their decomposition and uop work.
type BatchPoint struct {
	Cfg uarch.Config
	Ann Annotation
}

// Packed uop encoding (uint32): one pre-decoded instruction record
// combining the trace columns and annotation byte the timing replay
// consumes. Register fields are 6 bits so two sentinel slots fit:
// absent sources read slot uRegDummy (pinned to minCycle, never
// stalls) and absent destinations write slot uRegTrash (never read),
// making the dependence check and the destination write branchless.
const (
	uSrc1Shift = 0       // 6 bits
	uSrc2Shift = 6       // 6 bits
	uDstShift  = 12      // 6 bits
	uKindShift = 18      // 2 bits: 0 simple, 1 mul, 2 div, 3 mem
	uLoadFwd   = 1 << 20 // load with a destination: forward at memory exit
	uDClsShift = 21      // 3 bits: data-side annotation class
	uIClsShift = 24      // 3 bits: instruction-side annotation class
	uJump      = 1 << 27
	uBranch    = 1 << 28
	uTaken     = 1 << 29

	ukSimple = 0
	ukMul    = 1
	ukDiv    = 2
	ukMem    = 3

	uRegDummy = isa.NumRegs     // read-only: always ready
	uRegTrash = isa.NumRegs + 1 // write-only: never read
	// The register file is sized to the 6-bit uop field so the masked
	// index is provably in range (no bounds checks on the hot path).
	uRegSlots = 64
)

// Fetch-group end kinds produced by decomposition.
const (
	bkPlain      = iota // ended full or at trace end: next fetch at f+1
	bkBubble            // jump or predicted-taken branch: next fetch at f+2
	bkIMiss             // I-side miss after the group: next fetch at f+refill
	bkMispredict        // mispredicted branch: fetch blocks until it resolves
)

// bgroup is one decomposed fetch group. size is the instruction count
// (1..width); lead, when non-zero, is the I-side class of a miss on
// the group's first instruction that was charged by an empty fetch
// attempt before the group itself was fetched.
type bgroup struct {
	size uint8
	kind uint8
	cls  uint8 // I-side class of a bkIMiss end
	lead uint8
}

// minCycle initializes the fetch/drain recurrences: far enough below
// zero that max() never selects an uninitialized term, far enough from
// MinInt64 that the +1 arithmetic cannot wrap.
const minCycle = math.MinInt64 / 4

// buildUops pre-decodes the trace columns and one memory plane into
// packed uops plus a fetch-event bitset (one bit per instruction, set
// when the instruction can end a fetch group: control transfer or
// I-side miss). LLBlocks (the mul/div count, identical for every
// design point) falls out of the same pass.
func buildUops(tr *trace.Trace, mem *trace.BytePlane) (uops []uint32, ev []uint64, llBlocks int64) {
	n := int(tr.Len())
	uops = make([]uint32, n)
	ev = make([]uint64, (n+63)/64)
	cols := tr.Chunks()
	memCh := mem.Chunks()
	for ci := range cols {
		ck := &cols[ci]
		mb := memCh[ci]
		base := ci << trace.ChunkShift
		for j := 0; j < ck.N; j++ {
			fl := ck.Flags[j]
			m := mb[j]
			s1, s2, dst := uint32(uRegDummy), uint32(uRegDummy), uint32(uRegTrash)
			switch fl >> trace.NumSrcShift {
			case 2:
				s2 = uint32(ck.Src2[j])
				fallthrough
			case 1:
				s1 = uint32(ck.Src1[j])
			}
			if fl&trace.FlagHasDst != 0 {
				dst = uint32(ck.Dst[j])
			}
			u := s1 | s2<<uSrc2Shift | dst<<uDstShift |
				uint32(m&trace.AnnSideMask)<<uIClsShift |
				uint32((m>>trace.AnnDShift)&trace.AnnSideMask)<<uDClsShift
			switch ck.Class[j] {
			case isa.ClassMul:
				u |= ukMul << uKindShift
				llBlocks++
			case isa.ClassDiv:
				u |= ukDiv << uKindShift
				llBlocks++
			case isa.ClassLoad, isa.ClassStore:
				u |= ukMem << uKindShift
				if fl&(trace.FlagLoad|trace.FlagHasDst) == trace.FlagLoad|trace.FlagHasDst {
					u |= uLoadFwd
				}
			}
			if fl&trace.FlagJump != 0 {
				u |= uJump
			}
			if fl&trace.FlagBranch != 0 {
				u |= uBranch
			}
			if fl&trace.FlagTaken != 0 {
				u |= uTaken
			}
			uops[base+j] = u
			if fl&(trace.FlagJump|trace.FlagBranch) != 0 || m&trace.AnnSideMask != 0 {
				i := base + j
				ev[i>>6] |= 1 << uint(i&63)
			}
		}
	}
	return uops, ev, llBlocks
}

// bmem is the per-memory-plane shared state: uops and event bitset.
type bmem struct {
	uops     []uint32
	ev       []uint64
	llBlocks int64
}

// blane is one design point's private timing state. Everything here is
// the analytic image of the scalar kernel's mutable state.
type blane struct {
	out      *Result
	extraTab [8]int64
	mulLat   int64
	divLat   int64
	depth    int64

	regReady [uRegSlots]int64

	nf    int64 // next-fetch constraint
	fPrev int64 // previous group's fetch cycle
	dPrev int64 // previous group's drain cycle
	// dRing holds the last depth drain cycles (depth <= 9 in the Table 2
	// domain); a fixed-size array lets the runners index it with ri&15,
	// which the compiler proves in-bounds.
	dRing [16]int64
	ri    int

	exB       int64 // execute blocked until this cycle (mul/div)
	memFree   int64 // memory stage free for a new group at this cycle
	depStall  int64
	lastAdmit int64
	pos       int // next instruction index this lane will admit

	// Within-group scratch used by the interleaved multi-lane runner.
	c        int64
	memCum   int64
	admitted bool
	hasMem   bool
}

// bstream is one (width, memory plane, branch plane) decomposition
// shared by all lanes (depth/frequency points) on those components.
// mask has bit c set when I-side annotation class c costs a non-zero
// refill on this stream's lanes: the scalar kernel only breaks a fetch
// group when the decoded latency is positive, and a latency that
// rounds to zero cycles must not break here either. Lanes whose
// latency tables zero out different classes get their own stream.
type bstream struct {
	mem   *bmem
	br    [][]uint64
	width int
	mask  uint32

	lanes []*blane

	pos     int // next instruction to decompose
	stalled int // instruction whose I-stall was already charged
	evPos   int // next fetch-event index >= pos (cached)
	groups  []bgroup

	mispredicts  int64
	takenBubbles int64
}

// nextEvent returns the first set bit of ev at index >= from, or n.
func nextEvent(ev []uint64, from, n int) int {
	if from >= n {
		return n
	}
	w := from >> 6
	word := ev[w] &^ (1<<uint(from&63) - 1)
	for word == 0 {
		w++
		if w >= len(ev) {
			return n
		}
		word = ev[w]
	}
	i := w<<6 + bits.TrailingZeros64(word)
	if i > n {
		return n
	}
	return i
}

// decompose extends the stream's fetch-group decomposition until every
// group starting before limit has been emitted (the final group may
// extend past limit; the next call resumes after it). n is the trace
// length.
func (s *bstream) decompose(limit, n int) {
	s.groups = s.groups[:0]
	uops := s.mem.uops
	ev := s.mem.ev
	W := s.width
	pos := s.pos
	stalled := s.stalled
	evPos := s.evPos
	for pos < limit {
		var g bgroup
		if evPos < pos {
			evPos = nextEvent(ev, pos, n)
		}
		if pos == evPos && pos < n {
			// A not-yet-charged I-side miss on the group's first
			// instruction stalls an empty fetch attempt before the
			// group is fetched.
			if ic := (uops[pos] >> uIClsShift) & 7; s.mask>>ic&1 != 0 && pos != stalled {
				g.lead = uint8(ic)
				stalled = pos
			}
		}
		size := 0
		for size < W && pos < n {
			if pos < evPos {
				// Bulk: no control transfer, no I-side event until
				// evPos — instructions just join the group.
				m := evPos - pos
				if m > W-size {
					m = W - size
				}
				if pos+m > n {
					m = n - pos
				}
				size += m
				pos += m
				continue
			}
			u := uops[pos]
			if ic := (u >> uIClsShift) & 7; s.mask>>ic&1 != 0 && pos != stalled {
				// I-side miss ends the group before this instruction;
				// the stall is charged once, so the next group
				// includes it.
				g.kind = bkIMiss
				g.cls = uint8(ic)
				stalled = pos
				break
			}
			pos++
			size++
			evPos = nextEvent(ev, pos, n)
			if u&uJump != 0 {
				g.kind = bkBubble
				s.takenBubbles++
				break
			}
			if u&uBranch != 0 {
				i := pos - 1
				if s.br[i>>trace.ChunkShift][uint(i&trace.ChunkMask)>>6]&(1<<uint(i&63)) != 0 {
					g.kind = bkMispredict
					s.mispredicts++
					break
				}
				if u&uTaken != 0 {
					g.kind = bkBubble
					s.takenBubbles++
					break
				}
				// Correctly predicted not-taken: the group continues.
			}
		}
		g.size = uint8(size)
		s.groups = append(s.groups, g)
	}
	s.pos = pos
	s.stalled = stalled
	s.evPos = evPos
}

// run replays the decomposed groups on one lane, advancing its timing
// state group by group via the fetch/drain recurrences.
//
// Invariant used by every runner: nf >= fPrev+1 always, because each
// group-end kind sets nf to at least f+1 (plain +1, bubble +2, I-miss
// +refill with refill > 0 by the stream mask, mispredict c+1 with
// c >= f+D >= f+1), and the initial state has fPrev = minCycle. The
// fetch recurrence therefore needs no fPrev term.
func (ln *blane) run(uops []uint32, groups []bgroup) {
	extraTab := &ln.extraTab
	regReady := &ln.regReady
	nf, fPrev, dPrev := ln.nf, ln.fPrev, ln.dPrev
	dRing, ri := &ln.dRing, ln.ri
	exB, memFree := ln.exB, ln.memFree
	depStall := ln.depStall
	D := ln.depth
	dLen := int(D)
	mulLat, divLat := ln.mulLat, ln.divLat
	pos := ln.pos

	for _, g := range groups {
		// Fetch cycle: first cycle >= the next-fetch constraint with
		// the fetch slot free (the D-deep conveyor has a hole), plus a
		// leading I-refill charged by an empty attempt.
		a := max(nf, dRing[ri&15])
		f := a
		if g.lead != 0 {
			f = a + extraTab[g.lead]
		}

		// First admission cycle: conveyor transit after fetch, the
		// previous group's drain, and the standing execute/memory
		// blocks.
		c := max(f+D, dPrev+1, exB, memFree-1)

		admitted := false
		var memCum int64
		hasMem := false
		end := pos + int(g.size)
		for pos < end {
			u := uops[pos]
			r := max(regReady[u&63], regReady[(u>>uSrc2Shift)&63])
			if r > c {
				if admitted {
					// The blocked cycle ends: release its
					// memory-stage occupancy, then move to the
					// next structurally clear cycle.
					if hasMem {
						memFree = c + 2 + memCum
						hasMem = false
						memCum = 0
					}
					c = max(c+1, exB, memFree-1)
					admitted = false
				}
				if r > c {
					depStall += r - c
					c = r
				}
			}
			pos++
			admitted = true
			if k := (u >> uKindShift) & 3; k == ukSimple {
				regReady[(u>>uDstShift)&63] = c + 1
			} else if k == ukMem {
				memCum += extraTab[(u>>uDClsShift)&7]
				hasMem = true
				if u&uLoadFwd != 0 {
					regReady[(u>>uDstShift)&63] = c + 2 + memCum
				}
			} else {
				lat := mulLat
				if k == ukDiv {
					lat = divLat
				}
				regReady[(u>>uDstShift)&63] = c + lat
				exB = c + lat
				if pos < end {
					// Newer instructions stall behind the blocked
					// execute stage: end the cycle.
					if hasMem {
						memFree = c + 2 + memCum
						hasMem = false
						memCum = 0
					}
					c = max(exB, memFree-1)
					admitted = false
				}
			}
		}
		// Group drained at cycle c.
		if hasMem {
			memFree = c + 2 + memCum
		}
		switch g.kind {
		case bkPlain:
			nf = f + 1
		case bkBubble:
			nf = f + 2
		case bkIMiss:
			nf = f + extraTab[g.cls]
		case bkMispredict:
			nf = c + 1
		}
		fPrev = f
		dPrev = c
		dRing[ri&15] = c
		ri++
		if ri == dLen {
			ri = 0
		}
	}

	ln.nf, ln.fPrev, ln.dPrev = nf, fPrev, dPrev
	ln.ri = ri
	ln.exB, ln.memFree = exB, memFree
	ln.depStall = depStall
	ln.lastAdmit = dPrev
	ln.pos = pos
}

// stallTo resolves a dependence stall at cycle c against operand-ready
// cycle r: a cycle that already admitted instructions first closes
// (releasing its memory-stage occupancy and advancing past standing
// blocks), then the remaining gap to r is charged as dependence stall.
// Outlined so the admission fast path stays branch-light.
func (ln *blane) stallTo(r, c int64) int64 {
	if ln.admitted {
		if ln.hasMem {
			ln.memFree = c + 2 + ln.memCum
			ln.hasMem = false
			ln.memCum = 0
		}
		c = max(c+1, ln.exB, ln.memFree-1)
		ln.admitted = false
	}
	if r > c {
		ln.depStall += r - c
		c = r
	}
	return c
}

// runMulti advances every lane of the stream over one decomposed group
// batch in a single inst-major pass: the uop decode and group control
// run once, and the lanes' independent timing chains interleave so the
// processor can overlap them. The per-instruction kind dispatch is
// hoisted out of the lane loop so each lane pass is a short straight
// line. Semantically identical to calling run on each lane; used
// whenever a stream has more than one lane.
func (s *bstream) runMulti(groups []bgroup) {
	if len(groups) == 0 {
		return
	}
	uops := s.mem.uops
	lanes := s.lanes
	pos := lanes[0].pos

	// Prologue of the first group; every later group's prologue is
	// fused into its predecessor's epilogue below, so each group costs
	// one lane pass instead of two.
	g0 := groups[0]
	for _, ln := range lanes {
		a := max(ln.nf, ln.dRing[ln.ri&15])
		f := a
		if g0.lead != 0 {
			f = a + ln.extraTab[g0.lead]
		}
		c := max(f+ln.depth, ln.dPrev+1, ln.exB, ln.memFree-1)
		ln.fPrev = f
		ln.c = c
		ln.admitted = false
		ln.memCum = 0
		ln.hasMem = false
	}
	for gi := range groups {
		g := groups[gi]
		end := pos + int(g.size)
		for p := pos; p < end; p++ {
			u := uops[p]
			s1 := u & 63
			s2 := (u >> uSrc2Shift) & 63
			dst := (u >> uDstShift) & 63
			switch (u >> uKindShift) & 3 {
			case ukSimple:
				for _, ln := range lanes {
					c := ln.c
					r := max(ln.regReady[s1], ln.regReady[s2])
					if r > c {
						c = ln.stallTo(r, c)
					}
					ln.admitted = true
					ln.regReady[dst] = c + 1
					ln.c = c
				}
			case ukMem:
				dcls := (u >> uDClsShift) & 7
				fwd := u&uLoadFwd != 0
				for _, ln := range lanes {
					c := ln.c
					r := max(ln.regReady[s1], ln.regReady[s2])
					if r > c {
						c = ln.stallTo(r, c)
					}
					ln.admitted = true
					ln.memCum += ln.extraTab[dcls]
					ln.hasMem = true
					if fwd {
						ln.regReady[dst] = c + 2 + ln.memCum
					}
					ln.c = c
				}
			default:
				isDiv := (u>>uKindShift)&3 == ukDiv
				last := p+1 == end
				for _, ln := range lanes {
					c := ln.c
					r := max(ln.regReady[s1], ln.regReady[s2])
					if r > c {
						c = ln.stallTo(r, c)
					}
					lat := ln.mulLat
					if isDiv {
						lat = ln.divLat
					}
					ln.regReady[dst] = c + lat
					ln.exB = c + lat
					if last {
						ln.admitted = true
					} else {
						// Newer instructions stall behind the blocked
						// execute stage: end the cycle.
						if ln.hasMem {
							ln.memFree = c + 2 + ln.memCum
							ln.hasMem = false
							ln.memCum = 0
						}
						c = max(ln.exB, ln.memFree-1)
						ln.admitted = false
					}
					ln.c = c
				}
			}
		}
		pos = end
		if gi+1 < len(groups) {
			// Fused epilogue(g) + prologue(g+1): one lane pass closes
			// the drained group and opens the next. Mid-batch, nf and
			// dPrev live only inside this pass (the next prologue
			// consumes them immediately); only the final group's
			// epilogue below persists them.
			ng := groups[gi+1]
			for _, ln := range lanes {
				c := ln.c
				if ln.hasMem {
					ln.memFree = c + 2 + ln.memCum
					ln.memCum = 0
					ln.hasMem = false
				}
				var nf int64
				switch g.kind {
				case bkPlain:
					nf = ln.fPrev + 1
				case bkBubble:
					nf = ln.fPrev + 2
				case bkIMiss:
					nf = ln.fPrev + ln.extraTab[g.cls]
				default:
					nf = c + 1
				}
				dRing, ri := &ln.dRing, ln.ri
				dRing[ri&15] = c
				ri++
				if ri == int(ln.depth) {
					ri = 0
				}
				ln.ri = ri
				a := max(nf, dRing[ri&15])
				f := a
				if ng.lead != 0 {
					f = a + ln.extraTab[ng.lead]
				}
				ln.fPrev = f
				ln.c = max(f+ln.depth, c+1, ln.exB, ln.memFree-1)
				ln.admitted = false
			}
		} else {
			for _, ln := range lanes {
				c := ln.c
				if ln.hasMem {
					ln.memFree = c + 2 + ln.memCum
				}
				switch g.kind {
				case bkPlain:
					ln.nf = ln.fPrev + 1
				case bkBubble:
					ln.nf = ln.fPrev + 2
				case bkIMiss:
					ln.nf = ln.fPrev + ln.extraTab[g.cls]
				case bkMispredict:
					ln.nf = c + 1
				}
				ln.dPrev = c
				ln.dRing[ln.ri&15] = c
				ln.ri++
				if ln.ri == int(ln.depth) {
					ln.ri = 0
				}
				ln.lastAdmit = c
				ln.pos = pos
			}
		}
	}
}

// runW1 is the fused decompose+replay for width-1 streams, advancing
// every lane over [s.pos, limit). At width 1 every instruction is its
// own fetch group, so the group machinery degenerates: no group is
// materialized, the event bitset is unnecessary (the I-side class is
// read straight from the uop), and the fetch/drain recurrences and the
// single admission fuse into one per-instruction step with the whole
// lane state register-resident. bkIMiss never occurs at width 1 — a
// leading I-refill is charged by the empty fetch attempt instead.
func (s *bstream) runW1(limit int) {
	uops := s.mem.uops[:limit]
	br := s.br
	pos0 := s.pos
	mask := s.mask
	for li, ln := range s.lanes {
		nf, fPrev, dPrev := ln.nf, ln.fPrev, ln.dPrev
		dRing, ri := &ln.dRing, ln.ri
		exB, memFree := ln.exB, ln.memFree
		depStall := ln.depStall
		D := ln.depth
		dLen := int(D)
		extraTab := &ln.extraTab
		regReady := &ln.regReady
		mulLat, divLat := ln.mulLat, ln.divLat

		for p := pos0; p < limit; p++ {
			u := uops[p]
			// Built-in max compiles to CMOV chains: the comparisons
			// here are data-dependent and mispredict as branches.
			a := max(nf, dRing[ri&15])
			f := a
			if ic := (u >> uIClsShift) & 7; mask>>ic&1 != 0 {
				f = a + extraTab[ic]
			}
			c := max(f+D, dPrev+1, exB, memFree-1)
			r := max(regReady[u&63], regReady[(u>>uSrc2Shift)&63])
			if r > c {
				depStall += r - c
				c = r
			}
			switch (u >> uKindShift) & 3 {
			case ukSimple:
				regReady[(u>>uDstShift)&63] = c + 1
			case ukMem:
				mc := extraTab[(u>>uDClsShift)&7]
				if u&uLoadFwd != 0 {
					regReady[(u>>uDstShift)&63] = c + 2 + mc
				}
				memFree = c + 2 + mc
			default:
				lat := mulLat
				if (u>>uKindShift)&3 == ukDiv {
					lat = divLat
				}
				regReady[(u>>uDstShift)&63] = c + lat
				exB = c + lat
			}
			nf = f + 1
			if u&uJump != 0 {
				nf = f + 2
				if li == 0 {
					s.takenBubbles++
				}
			} else if u&uBranch != 0 {
				if br[p>>trace.ChunkShift][uint(p&trace.ChunkMask)>>6]&(1<<uint(p&63)) != 0 {
					nf = c + 1
					if li == 0 {
						s.mispredicts++
					}
				} else if u&uTaken != 0 {
					nf = f + 2
					if li == 0 {
						s.takenBubbles++
					}
				}
			}
			fPrev = f
			dPrev = c
			dRing[ri&15] = c
			ri++
			if ri == dLen {
				ri = 0
			}
		}

		ln.nf, ln.fPrev, ln.dPrev = nf, fPrev, dPrev
		ln.ri = ri
		ln.exB, ln.memFree = exB, memFree
		ln.depStall = depStall
		ln.lastAdmit = dPrev
		ln.pos = limit
	}
	s.pos = limit
}

// SimulateAnnotatedBatch replays tr on every design point in pts in a
// single chunk-major pass: each 16K-instruction chunk's uops and
// groups are computed once and consumed by every lane while they are
// cache-resident. Each point's Result is bit-identical to
// SimulateAnnotated(tr, pts[i].Cfg, pts[i].Ann).
func SimulateAnnotatedBatch(tr *trace.Trace, pts []BatchPoint) ([]Result, error) {
	return SimulateAnnotatedBatchCtx(context.Background(), tr, pts)
}

// SimulateAnnotatedBatchCtx is SimulateAnnotatedBatch under a context:
// cancellation is polled once per chunk of work and aborts the whole
// batch with ctx.Err(). A completed batch is unaffected by the
// context.
func SimulateAnnotatedBatchCtx(ctx context.Context, tr *trace.Trace, pts []BatchPoint) ([]Result, error) {
	results := make([]Result, len(pts))
	n := tr.Len()
	for i := range pts {
		if err := pts[i].Cfg.Validate(); err != nil {
			return nil, err
		}
		results[i].Instructions = n
	}
	if n == 0 || len(pts) == 0 {
		return results, nil
	}
	for i := range pts {
		ann := pts[i].Ann
		if ann.Mem.Len() != n || ann.Br.Len() != n {
			return nil, fmt.Errorf("pipeline: annotation planes cover %d/%d instructions, trace has %d",
				ann.Mem.Len(), ann.Br.Len(), n)
		}
	}

	// Pool shared work: uops per distinct memory plane, decomposition
	// per distinct (width, memory plane, branch plane).
	mems := make(map[*trace.BytePlane]*bmem)
	type streamKey struct {
		mem  *trace.BytePlane
		br   *trace.BitPlane
		w    int
		mask uint32
	}
	streams := make(map[streamKey]*bstream)
	var order []*bstream
	for i := range pts {
		cfg := &pts[i].Cfg
		ann := &pts[i].Ann
		if cfg.FrontEndDepth > 16 {
			// The lane drain ring is a fixed 16-slot array (Table 2's
			// deepest pipeline needs 6); reject rather than corrupt.
			return nil, fmt.Errorf("pipeline: batch replay supports front-end depth <= 16, got %d", cfg.FrontEndDepth)
		}
		bm := mems[ann.Mem]
		if bm == nil {
			uops, ev, ll := buildUops(tr, ann.Mem)
			bm = &bmem{uops: uops, ev: ev, llBlocks: ll}
			mems[ann.Mem] = bm
		}
		ln := &blane{
			out:     &results[i],
			mulLat:  int64(cfg.MulLatency),
			divLat:  int64(cfg.DivLatency),
			depth:   int64(cfg.FrontEndDepth),
			nf:      0,
			fPrev:   minCycle,
			dPrev:   minCycle,
			memFree: minCycle,
		}
		walk := int64(cfg.TLBWalkCycles())
		l2hit := int64(cfg.L2HitCycles())
		l2miss := int64(cfg.L2MissCycles())
		var mask uint32
		for cls := range ln.extraTab {
			var e int64
			if uint8(cls)&trace.AnnITLBMiss != 0 {
				e += walk
			}
			if uint8(cls)&trace.AnnIL1Miss != 0 {
				if uint8(cls)&trace.AnnIL2Miss != 0 {
					e += l2miss
				} else {
					e += l2hit
				}
			}
			ln.extraTab[cls] = e
			if e > 0 {
				mask |= 1 << cls
			}
		}
		for j := range ln.dRing {
			ln.dRing[j] = minCycle
		}
		ln.regReady[uRegDummy] = minCycle
		key := streamKey{mem: ann.Mem, br: ann.Br, w: cfg.Width, mask: mask}
		st := streams[key]
		if st == nil {
			st = &bstream{mem: bm, br: ann.Br.Chunks(), width: cfg.Width, mask: mask, stalled: -1, evPos: -1}
			streams[key] = st
			order = append(order, st)
		}
		st.lanes = append(st.lanes, ln)
	}

	// Chunk-major sweep: decompose each block once per stream and run
	// every lane over it while the uops and groups are hot. Blocks are
	// a quarter chunk so one block's uop column (16 KB) stays
	// L1-resident across the lane passes.
	const blockLen = trace.ChunkLen / 4
	ctxDone := ctx.Done()
	nInt := int(n)
	for cs := 0; cs < nInt; cs += blockLen {
		select {
		case <-ctxDone:
			return nil, ctx.Err()
		default:
		}
		limit := cs + blockLen
		if limit > nInt {
			limit = nInt
		}
		for _, st := range order {
			if st.width == 1 {
				st.runW1(limit)
				continue
			}
			st.decompose(limit, nInt)
			if len(st.lanes) == 1 {
				st.lanes[0].run(st.mem.uops, st.groups)
			} else {
				st.runMulti(st.groups)
			}
		}
	}

	for _, st := range order {
		for _, ln := range st.lanes {
			ln.out.Cycles = ln.lastAdmit + 3
			ln.out.Mispredicts = st.mispredicts
			ln.out.TakenBubbles = st.takenBubbles
			ln.out.LLBlocks = st.mem.llBlocks
			ln.out.DepStallCycles = ln.depStall
		}
	}
	for i := range pts {
		results[i].Cache = pts[i].Ann.MemStats
	}
	return results, nil
}
