package pipeline_test

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/dse"
	"repro/internal/harness"
	"repro/internal/pipeline"
	"repro/internal/trace"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

// benchAnnotationFor is annotationFor for benchmarks (whose helper
// signature takes *testing.T).
func benchAnnotationFor(b *testing.B, tr *trace.Trace, cfg uarch.Config) pipeline.Annotation {
	b.Helper()
	eng, err := cache.NewL2SpaceSim(cfg.Hier, []cache.Config{cfg.Hier.L2})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.RecordPlanes([]cache.Config{cfg.Hier.L2}); err != nil {
		b.Fatal(err)
	}
	tr.Replay(eng)
	plane, err := eng.PlaneFor(cfg.Hier.L2)
	if err != nil {
		b.Fatal(err)
	}
	stats, err := eng.StatsFor(cfg.Hier.L2)
	if err != nil {
		b.Fatal(err)
	}
	stats.IL1Accesses += eng.IStallEvents()
	return pipeline.Annotation{Mem: plane, MemStats: stats}
}

// uniqueTimingPoints mirrors the harness's timing-memo deduplication:
// one BatchPoint per distinct (width, depth, latency-table,
// plane-identity) combination of the Table 2 space — the set of lanes
// a validated exploration actually replays.
func uniqueTimingPoints(b *testing.B, tr *trace.Trace, cfgs []uarch.Config) []pipeline.BatchPoint {
	b.Helper()
	type key struct {
		width, depth        int
		mulLat, divLat      int
		l2hit, l2miss, walk int
		mem                 *trace.BytePlane
		br                  *trace.BitPlane
	}
	memPlanes := make(map[cache.HierarchyConfig]pipeline.Annotation)
	var memCanon []*trace.BytePlane
	brPlanes := make(map[uarch.PredictorKind]*trace.BitPlane)
	var brCanon []*trace.BitPlane
	seen := make(map[key]bool)
	var pts []pipeline.BatchPoint
	for _, cfg := range cfgs {
		mem, ok := memPlanes[cfg.Hier]
		if !ok {
			mem = benchAnnotationFor(b, tr, cfg)
			for _, c := range memCanon {
				if c.Equal(mem.Mem) {
					mem.Mem = c
					break
				}
			}
			if mem.Mem != nil {
				memCanon = append(memCanon, mem.Mem)
			}
			memPlanes[cfg.Hier] = mem
		}
		br, ok := brPlanes[cfg.Predictor]
		if !ok {
			br = branchPlane(tr, cfg.Predictor)
			for _, c := range brCanon {
				if c.Equal(br) {
					br = c
					break
				}
			}
			brCanon = append(brCanon, br)
			brPlanes[cfg.Predictor] = br
		}
		k := key{cfg.Width, cfg.FrontEndDepth, cfg.MulLatency, cfg.DivLatency,
			cfg.L2HitCycles(), cfg.L2MissCycles(), cfg.TLBWalkCycles(), mem.Mem, br}
		if seen[k] {
			continue
		}
		seen[k] = true
		pts = append(pts, pipeline.BatchPoint{
			Cfg: cfg,
			Ann: pipeline.Annotation{Mem: mem.Mem, MemStats: mem.MemStats, Br: br},
		})
	}
	return pts
}

// BenchmarkBatchKernel measures the config-parallel replay kernel
// alone on the deduplicated lane set of the Table 2 space (what a
// validated exploration replays after the timing memo collapses
// repeat keys).
func BenchmarkBatchKernel(b *testing.B) {
	spec, err := workloads.ByName("gsm_c")
	if err != nil {
		b.Fatal(err)
	}
	pw, err := harness.ProfileProgram(spec.Build())
	if err != nil {
		b.Fatal(err)
	}
	pts := uniqueTimingPoints(b, pw.Trace, dse.Space(uarch.Default()))
	b.ResetTimer()
	b.ReportMetric(float64(len(pts)), "lanes")
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.SimulateAnnotatedBatch(pw.Trace, pts); err != nil {
			b.Fatal(err)
		}
	}
}
