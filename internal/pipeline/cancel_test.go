package pipeline_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/harness"
	"repro/internal/pipeline"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

// TestSimulateAnnotatedCtx pins the replay-cancellation contract: an
// uncancelled run is bit-identical to SimulateAnnotated, and a
// pre-cancelled context aborts with its error instead of replaying.
func TestSimulateAnnotatedCtx(t *testing.T) {
	spec, err := workloads.ByName("crc32")
	if err != nil {
		t.Fatal(err)
	}
	pw, err := harness.ProfileProgram(spec.Build())
	if err != nil {
		t.Fatal(err)
	}
	cfg := uarch.Default()
	ann := annotationFor(t, pw.Trace, cfg)

	want, err := pipeline.SimulateAnnotated(pw.Trace, cfg, ann)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pipeline.SimulateAnnotatedCtx(context.Background(), pw.Trace, cfg, ann)
	if err != nil {
		t.Fatal(err)
	}
	diffResults(t, "live-context run", want, got)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pipeline.SimulateAnnotatedCtx(ctx, pw.Trace, cfg, ann); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled replay returned %v, want context.Canceled", err)
	}
}
