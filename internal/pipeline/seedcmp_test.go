package pipeline_test

import (
	"testing"

	"repro/internal/harness"
	"repro/internal/pipeline"
	"repro/internal/pipeline/seedref"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

// TestSimulateMatchesSeed compares the optimized simulator against the
// verbatim seed implementation across a spread of design points.
func TestSimulateMatchesSeed(t *testing.T) {
	for _, name := range []string{"sha", "dijkstra", "gsm_c", "mcf_like"} {
		spec, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		pw := harness.MustProfileProgram(spec.Build())
		// One decode pass per workload: the seed reference consumes the
		// legacy layout, and materializing inside the config loop would
		// repeat it ~60 times.
		aos := pw.Trace.Materialize()
		base := uarch.Default()
		var cfgs []uarch.Config
		for _, df := range uarch.DepthFreqPoints() {
			for _, w := range []int{1, 2, 4} {
				for _, l2kb := range []int{128, 1024} {
					for _, pk := range []uarch.PredictorKind{uarch.PredGShare1KB, uarch.PredHybrid3_5KB} {
						cfgs = append(cfgs, base.WithDepth(df).WithWidth(w).WithL2(l2kb, 8).WithPredictor(pk))
					}
				}
			}
		}
		for _, cfg := range cfgs {
			got, err := pipeline.Simulate(pw.Trace, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want, err := seedref.Simulate(aos, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got != pipeline.Result(want) {
				t.Fatalf("%s on %s: results diverge\n got  %+v\n want %+v", name, cfg, got, want)
			}
		}
	}
}
