package pipeline_test

import (
	"context"
	"testing"

	"repro/internal/cache"
	"repro/internal/dse"
	"repro/internal/harness"
	"repro/internal/pipeline"
	"repro/internal/randprog"
	"repro/internal/trace"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

// batchPointsFor builds one BatchPoint per config, pooling annotation
// planes across configs that share a component exactly like the
// harness's canonicalization layer does: one memory plane per distinct
// hierarchy, one bit plane per distinct predictor. The batch kernel
// keys its shared work on plane pointer identity, so the pooling also
// exercises the config-parallel paths.
func batchPointsFor(t *testing.T, tr *trace.Trace, cfgs []uarch.Config) []pipeline.BatchPoint {
	t.Helper()
	memPlanes := make(map[cache.HierarchyConfig]pipeline.Annotation)
	brPlanes := make(map[uarch.PredictorKind]*trace.BitPlane)
	pts := make([]pipeline.BatchPoint, len(cfgs))
	for i, cfg := range cfgs {
		mem, ok := memPlanes[cfg.Hier]
		if !ok {
			mem = annotationFor(t, tr, cfg)
			memPlanes[cfg.Hier] = mem
		}
		br, ok := brPlanes[cfg.Predictor]
		if !ok {
			br = branchPlane(tr, cfg.Predictor)
			brPlanes[cfg.Predictor] = br
		}
		pts[i] = pipeline.BatchPoint{
			Cfg: cfg,
			Ann: pipeline.Annotation{Mem: mem.Mem, MemStats: mem.MemStats, Br: br},
		}
	}
	return pts
}

// TestBatchMatchesAnnotatedTable2 pins SimulateAnnotatedBatch ==
// SimulateAnnotated (the full Result struct, including cache stats)
// on a real workload trace across all 192 Table 2 design points
// evaluated in a single batch.
func TestBatchMatchesAnnotatedTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("192-config differential sweep")
	}
	spec, err := workloads.ByName("sha")
	if err != nil {
		t.Fatal(err)
	}
	pw, err := harness.ProfileProgram(spec.Build())
	if err != nil {
		t.Fatal(err)
	}
	space := dse.Space(uarch.Default())
	pts := batchPointsFor(t, pw.Trace, space)
	got, err := pipeline.SimulateAnnotatedBatch(pw.Trace, pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(space) {
		t.Fatalf("batch returned %d results for %d points", len(got), len(space))
	}
	for i, cfg := range space {
		want, err := pipeline.SimulateAnnotated(pw.Trace, cfg, pts[i].Ann)
		if err != nil {
			t.Fatal(err)
		}
		diffResults(t, cfg.Name, want, got[i])
	}
}

// TestBatchMatchesAnnotatedRandom differentially tests the batch
// kernel on random programs across randomized Table 2 configurations
// (every width, depth, L2 geometry and predictor appears across the
// seeds), one batch call per program.
func TestBatchMatchesAnnotatedRandom(t *testing.T) {
	space := dse.Space(uarch.Default())
	for seed := int64(1); seed <= 6; seed++ {
		p := randprog.Generate(randprog.Default(seed))
		pw, err := harness.ProfileProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		var cfgs []uarch.Config
		for i := int(seed) - 1; i < len(space); i += 6 {
			cfgs = append(cfgs, space[i])
		}
		pts := batchPointsFor(t, pw.Trace, cfgs)
		got, err := pipeline.SimulateAnnotatedBatch(pw.Trace, pts)
		if err != nil {
			t.Fatal(err)
		}
		for i, cfg := range cfgs {
			want, err := pipeline.SimulateAnnotated(pw.Trace, cfg, pts[i].Ann)
			if err != nil {
				t.Fatal(err)
			}
			diffResults(t, cfg.Name, want, got[i])
		}
	}
}

// TestBatchEdgeCases covers the degenerate inputs: no points, an
// invalid config, and mismatched planes.
func TestBatchEdgeCases(t *testing.T) {
	p := randprog.Generate(randprog.Default(42))
	pw, err := harness.ProfileProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipeline.SimulateAnnotatedBatch(pw.Trace, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("empty batch returned %d results", len(res))
	}

	bad := uarch.Default()
	bad.Width = 0
	if _, err := pipeline.SimulateAnnotatedBatch(pw.Trace, []pipeline.BatchPoint{{Cfg: bad}}); err == nil {
		t.Fatal("invalid config accepted")
	}

	cfg := uarch.Default()
	ann := annotationFor(t, pw.Trace, cfg)
	short := pipeline.Annotation{Mem: trace.NewBytePlaneBuilder().Plane(), Br: ann.Br}
	if _, err := pipeline.SimulateAnnotatedBatch(pw.Trace, []pipeline.BatchPoint{{Cfg: cfg, Ann: short}}); err == nil {
		t.Fatal("mismatched annotation plane accepted")
	}
}

// TestBatchCancel verifies a cancelled context aborts the batch with
// ctx.Err() and an uncancelled run is unaffected.
func TestBatchCancel(t *testing.T) {
	spec, err := workloads.ByName("sha")
	if err != nil {
		t.Fatal(err)
	}
	pw, err := harness.ProfileProgram(spec.Build())
	if err != nil {
		t.Fatal(err)
	}
	cfg := uarch.Default()
	pts := batchPointsFor(t, pw.Trace, []uarch.Config{cfg})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pipeline.SimulateAnnotatedBatchCtx(ctx, pw.Trace, pts); err != context.Canceled {
		t.Fatalf("cancelled batch returned %v, want context.Canceled", err)
	}
	got, err := pipeline.SimulateAnnotatedBatch(pw.Trace, pts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := pipeline.SimulateAnnotated(pw.Trace, cfg, pts[0].Ann)
	if err != nil {
		t.Fatal(err)
	}
	diffResults(t, cfg.Name, want, got[0])
}
