package pipeline

import (
	"testing"

	"repro/internal/funcsim"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/trace"
	"repro/internal/uarch"
)

// testCfg returns the default configuration with the given width and
// front-end depth.
func testCfg(w, d int) uarch.Config {
	cfg := uarch.Default()
	cfg.Width = w
	cfg.FrontEndDepth = d
	return cfg
}

// coldCost returns the unavoidable cold-start cycles of a run: every
// cold I/D block comes from memory and every first page touch walks
// the TLB.
func coldCost(cfg uarch.Config, res Result) int64 {
	c := res.Cache
	return (c.IL1Misses-c.IL2Misses)*int64(cfg.L2HitCycles()) +
		c.IL2Misses*int64(cfg.L2MissCycles()) +
		(c.DL1Misses-c.DL2Misses)*int64(cfg.L2HitCycles()) +
		c.DL2Misses*int64(cfg.L2MissCycles()) +
		(c.ITLBMisses+c.DTLBMisses)*int64(cfg.TLBWalkCycles())
}

// traceOf runs a program and records its trace.
func traceOf(t *testing.T, p *program.Program) *trace.Trace {
	t.Helper()
	b := trace.NewBuilder()
	if _, err := funcsim.RunProgram(p, b); err != nil {
		t.Fatal(err)
	}
	return b.Trace()
}

// straightline builds n independent unit-latency instructions.
func straightline(n int) *program.Program {
	p := program.New("straight", 64)
	b := p.Block("main")
	for i := 0; i < n; i++ {
		b.Li(1, int64(i)) // no inter-instruction read dependencies
	}
	b.Halt()
	return p
}

func TestIdealThroughput(t *testing.T) {
	// N independent instructions on a W-wide machine: after the fill,
	// execute admits W per cycle; only cold misses deviate.
	const n = 4096
	tr := traceOf(t, straightline(n))
	for _, w := range []int{1, 2, 4} {
		cfg := testCfg(w, 2)
		res, err := Simulate(tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ideal := int64(n/w) + coldCost(cfg, res)
		if res.Cycles < int64(n/w) || res.Cycles > ideal+16 {
			t.Errorf("W=%d: cycles = %d, want within [%d, %d]", w, res.Cycles, n/w, ideal+16)
		}
	}
}

func TestWidthMonotone(t *testing.T) {
	tr := traceOf(t, straightline(4096))
	var prev int64 = 1 << 62
	for _, w := range []int{1, 2, 3, 4} {
		res, err := Simulate(tr, testCfg(w, 2))
		if err != nil {
			t.Fatal(err)
		}
		if res.Cycles > prev {
			t.Errorf("W=%d slower than W-1 on independent code (%d > %d)", w, res.Cycles, prev)
		}
		prev = res.Cycles
	}
}

// chain builds n serially dependent unit instructions (d=1 chain).
func chain(n int) *program.Program {
	p := program.New("chain", 64)
	b := p.Block("main")
	b.Li(1, 1)
	for i := 0; i < n; i++ {
		b.Addi(1, 1, 1)
	}
	b.Halt()
	return p
}

func TestSerialChainRunsAtOneIPC(t *testing.T) {
	// Fully dependent instructions execute one per cycle regardless of
	// width: back-to-back forwarding, no faster, no slower.
	const n = 2048
	tr := traceOf(t, chain(n))
	res, err := Simulate(tr, testCfg(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := int64(n), int64(n)+coldCost(testCfg(4, 2), res)+16
	if res.Cycles < lo || res.Cycles > hi {
		t.Errorf("cycles = %d, want within [%d, %d] (1 IPC)", res.Cycles, lo, hi)
	}
	// Every cycle still admits exactly one instruction, so no cycle is
	// a full dependency stall.
	if res.DepStallCycles != 0 {
		t.Errorf("DepStallCycles = %d, want 0 (partial admission every cycle)", res.DepStallCycles)
	}
}

func TestMulBlocksExecute(t *testing.T) {
	// Back-to-back muls: each occupies execute for MulLatency cycles.
	p := program.New("muls", 64)
	b := p.Block("main")
	b.Li(1, 3)
	b.Li(2, 5)
	const n = 512
	for i := 0; i < n; i++ {
		b.Mul(3, 1, 2)
	}
	b.Halt()
	tr := traceOf(t, p)
	cfg := testCfg(4, 2)
	res, err := Simulate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(n * cfg.MulLatency)
	// Cold fetch misses partially overlap the blocked execute stage,
	// so the upper bound includes them; the lower bound does not.
	if res.Cycles < want || res.Cycles > want+coldCost(cfg, res)+32 {
		t.Errorf("cycles = %d, want ≈ %d (+cold)", res.Cycles, want)
	}
	if res.LLBlocks != n {
		t.Errorf("LLBlocks = %d, want %d", res.LLBlocks, n)
	}
}

func TestDivCostsMoreThanMul(t *testing.T) {
	mk := func(div bool) *trace.Trace {
		p := program.New("ll", 64)
		b := p.Block("main")
		b.Li(1, 30)
		b.Li(2, 5)
		for i := 0; i < 256; i++ {
			if div {
				b.Div(3, 1, 2)
			} else {
				b.Mul(3, 1, 2)
			}
		}
		b.Halt()
		tb := trace.NewBuilder()
		if _, err := funcsim.RunProgram(p, tb); err != nil {
			t.Fatal(err)
		}
		return tb.Trace()
	}
	cfg := testCfg(4, 2)
	mres, _ := Simulate(mk(false), cfg)
	dres, _ := Simulate(mk(true), cfg)
	wantRatio := float64(cfg.DivLatency) / float64(cfg.MulLatency)
	// Compare net of cold-start costs, which are identical in shape.
	ratio := float64(dres.Cycles-coldCost(cfg, dres)) / float64(mres.Cycles-coldCost(cfg, mres))
	if ratio < wantRatio*0.6 || ratio > wantRatio*1.4 {
		t.Errorf("div/mul cycle ratio = %.2f, want ≈ %.2f", ratio, wantRatio)
	}
}

func TestLoadUseBubble(t *testing.T) {
	// Alternating load → use pairs at W=1: the consumer waits one
	// extra cycle for the value from the memory stage, so each pair
	// costs 3 cycles instead of 2 (steady state, after cold misses).
	p := program.New("loaduse", 64)
	p.SetData(8, 7)
	b := p.Block("main")
	const n = 512
	for i := 0; i < n; i++ {
		b.Ld(1, 0, 8)
		b.Add(2, 1, 1)
	}
	b.Halt()
	tr := traceOf(t, p)
	cfg := testCfg(1, 2)
	res, err := Simulate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(3 * n)
	if res.Cycles < want-8 || res.Cycles > want+coldCost(cfg, res)+32 {
		t.Errorf("cycles = %d, want ≈ %d (3 per load-use pair, +cold)", res.Cycles, want)
	}
}

func TestTakenBranchBubbleVisibleWhenNotStalled(t *testing.T) {
	// Loop body: counter update first, then eight independent
	// instructions, then the backedge (dep distance 9, no stall). The
	// ten instructions form three fetch groups (4+4+2) = 3 admission
	// cycles, plus the taken-redirect bubble = 4 cycles per iteration.
	p := program.New("loop", 64)
	b := p.Block("init")
	b.Li(1, 0)
	b.Li(2, 3000)
	b = p.Block("loop")
	b.Addi(1, 1, 1)
	for r := 3; r <= 10; r++ {
		b.Li(isa.Reg(r), int64(r))
	}
	b.Blt(1, 2, "loop")
	b = p.Block("end")
	b.Halt()
	tr := traceOf(t, p)
	cfg := testCfg(4, 2)
	res, err := Simulate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	iters := int64(3000)
	want := 4 * iters
	if res.Cycles < want-200 || res.Cycles > want+coldCost(cfg, res)+400 {
		t.Errorf("cycles = %d, want ≈ %d (4 per iteration)", res.Cycles, want)
	}
	if res.TakenBubbles < iters-100 {
		t.Errorf("TakenBubbles = %d, want ≈ %d", res.TakenBubbles, iters)
	}
}

// TestTakenBubbleHiddenBehindDependencyStall documents the overlap the
// first-order model ignores: in a 2-instruction dependent loop the
// redirect bubble dissolves behind the dependency stall, so iterations
// cost 2 cycles, not 3.
func TestTakenBubbleHiddenBehindDependencyStall(t *testing.T) {
	p := program.New("tight", 64)
	b := p.Block("init")
	b.Li(1, 0)
	b.Li(2, 3000)
	b = p.Block("loop")
	b.Addi(1, 1, 1)
	b.Blt(1, 2, "loop")
	b = p.Block("end")
	b.Halt()
	tr := traceOf(t, p)
	cfg := testCfg(4, 2)
	res, err := Simulate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	iters := int64(3000)
	want := 2 * iters
	if res.Cycles < want-100 || res.Cycles > want+coldCost(cfg, res)+200 {
		t.Errorf("cycles = %d, want ≈ %d (bubble hidden)", res.Cycles, want)
	}
}

func TestMispredictPenaltyScalesWithDepth(t *testing.T) {
	// A data-dependent 50/50 branch keeps any predictor near 50%
	// mispredicts; the flush penalty grows with front-end depth, so
	// deeper pipelines must take measurably more cycles.
	p := program.New("noisy", 4096)
	r := int64(12345)
	vals := make([]int64, 1024)
	for i := range vals {
		r = r*6364136223846793005 + 1442695040888963407
		vals[i] = (r >> 33) & 1
	}
	p.SetDataSlice(0, vals)
	b := p.Block("init")
	b.Li(1, 0)
	b.Li(2, 1024)
	b = p.Block("loop")
	b.Ld(3, 1, 0)
	b.Beq(3, 0, "skip")
	b.Addi(4, 4, 1)
	b = p.Block("skip")
	b.Addi(1, 1, 1)
	b.Blt(1, 2, "loop")
	b = p.Block("end")
	b.Halt()
	tr := traceOf(t, p)

	shallow, err := Simulate(tr, testCfg(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	deep, err := Simulate(tr, testCfg(4, 8))
	if err != nil {
		t.Fatal(err)
	}
	if shallow.Mispredicts == 0 {
		t.Fatal("expected mispredictions on random branch")
	}
	extra := deep.Cycles - shallow.Cycles
	// Six extra front-end stages cost about 6 cycles per mispredict.
	wantExtra := 6 * shallow.Mispredicts
	if extra < wantExtra/2 || extra > wantExtra*2 {
		t.Errorf("depth cost = %d cycles for %d mispredicts, want ≈ %d",
			extra, shallow.Mispredicts, wantExtra)
	}
}

func TestDCacheMissBlocksMemory(t *testing.T) {
	// Strided loads that touch a new block every time: each miss
	// blocks the memory stage for at least the L2 hit latency.
	p := program.New("misses", 300000)
	b := p.Block("init")
	b.Li(1, 0)
	b.Li(2, 4096)
	b = p.Block("loop")
	b.Shli(3, 1, 6)
	b.Ld(4, 3, 0)
	b.Addi(1, 1, 1)
	b.Blt(1, 2, "loop")
	b.Halt()
	tr := traceOf(t, p)
	cfg := testCfg(4, 2)
	res, err := Simulate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache.DL1Misses < 4000 {
		t.Fatalf("expected ~4096 D misses, got %d", res.Cache.DL1Misses)
	}
	minCycles := res.Cache.DL1Misses * int64(cfg.L2HitCycles())
	if res.Cycles < minCycles {
		t.Errorf("cycles = %d < miss-serialized bound %d", res.Cycles, minCycles)
	}
}

func TestEmptyTrace(t *testing.T) {
	res, err := Simulate(nil, testCfg(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 0 || res.Instructions != 0 {
		t.Errorf("empty trace: %+v", res)
	}
	if _, err := SimulateProgramTrace(nil, testCfg(4, 2)); err == nil {
		t.Error("SimulateProgramTrace accepted empty trace")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := testCfg(4, 2)
	cfg.Width = 99
	if _, err := Simulate(trace.Of(trace.DynInst{}), cfg); err == nil {
		t.Error("invalid width accepted")
	}
}

func TestDeterminism(t *testing.T) {
	tr := traceOf(t, chain(500))
	cfg := testCfg(3, 4)
	a, err := Simulate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("non-deterministic simulation: %+v vs %+v", a, b)
	}
}

func TestCPIHelper(t *testing.T) {
	r := Result{Cycles: 100, Instructions: 50}
	if r.CPI() != 2 {
		t.Errorf("CPI = %f", r.CPI())
	}
	if (Result{}).CPI() != 0 {
		t.Error("empty CPI not 0")
	}
}
